(* Attack-surface walkthrough: the three attacks of the paper's §4/§8 and
   what stops (or does not stop) each of them in this implementation.

     dune exec examples/attack_surface.exe *)

open Privagic_secure
open Privagic_pir
open Privagic_vm
module Plan = Privagic_partition.Plan

let build ?(mode = Mode.Hardened) ?(auth = false) src =
  let m = Privagic_minic.Driver.compile ~file:"victim.mc" src in
  let infer = Infer.run ~mode ~auth_pointers:auth m in
  assert (Infer.ok infer);
  let plan = Plan.build ~mode ~auth_pointers:auth infer in
  assert (Plan.ok plan);
  Pinterp.create ~config:Privagic_sgx.Config.machine_test plan

(* the victim sources live in lib/robust/progen.ml: the robust-safety
   suite (test/test_robust.ml) checks the same programs as seeded
   regressions, so walkthrough and test never drift apart *)
let victim = Privagic_robust.Progen.victim_forged_spawn

let () =
  Format.printf "=== attack 1: Iago — feeding the enclave untrusted data ===@.";
  let iago = "extern int read_input(); int color(blue) gate; entry void f() { gate = read_input(); }" in
  let m = Privagic_minic.Driver.compile ~file:"iago.mc" iago in
  let h = Infer.run ~mode:Mode.Hardened m in
  Format.printf "hardened mode: %s@."
    (match h.Infer.diagnostics with
    | d :: _ -> Diagnostic.to_string d
    | [] -> "accepted?!");
  Format.printf
    "relaxed mode accepts it: the documented tradeoff of Table 2.@.@.";

  Format.printf "=== attack 2: forged spawn messages (§8) ===@.";
  let pt = build victim in
  ignore (Pinterp.call_entry pt "set_vault" [ Rvalue.Int 1L ]);
  Format.printf "attacker injects a spawn of the internal blue chunk:@.";
  (match
     Pinterp.inject_spawn pt ~color:(Color.Named "blue")
       ~chunk:"audit@blue#blue" [ Rvalue.Int 666L ]
   with
  | Ok () -> Format.printf "  EXECUTED (no protection)@."
  | Error e -> Format.printf "  blocked by the spawn guard: %s@." e);
  Pinterp.set_spawn_guard pt false;
  (match
     Pinterp.inject_spawn pt ~color:(Color.Named "blue")
       ~chunk:"audit@blue#blue" [ Rvalue.Int 666L ]
   with
  | Ok () ->
    Format.printf
      "  with the guard disabled (the paper's open problem) it executes.@.@."
  | Error e -> Format.printf "  unexpectedly blocked: %s@.@." e);

  Format.printf "=== attack 3: redirecting a multi-color indirection (§8) ===@.";
  let multicolor = Privagic_robust.Progen.victim_multicolor in
  let corrupt pt =
    let heap = pt.Pinterp.exec.Exec.heap in
    let g = Hashtbl.find pt.Pinterp.exec.Exec.globals "slot" in
    let base = Int64.to_int (Heap.load heap g 8) in
    let forged = Heap.alloc heap Heap.Unsafe 16 in
    Heap.store heap forged 8 31337L;
    Heap.store heap base 8 (Int64.of_int forged)
  in
  Format.printf "without authenticated pointers (relaxed mode):@.";
  let pt = build ~mode:Mode.Relaxed multicolor in
  ignore (Pinterp.call_entry pt "init" []);
  ignore (Pinterp.call_entry pt "set_key" [ Rvalue.Int 9L ]);
  corrupt pt;
  let v = (Pinterp.call_entry pt "get_key" []).Pinterp.value in
  Format.printf "  the enclave read %s from attacker memory.@."
    (Rvalue.to_string v);
  Format.printf "with authenticated pointers (hardened mode, --auth-pointers):@.";
  let pt = build ~mode:Mode.Hardened ~auth:true multicolor in
  ignore (Pinterp.call_entry pt "init" []);
  ignore (Pinterp.call_entry pt "set_key" [ Rvalue.Int 9L ]);
  corrupt pt;
  (match Pinterp.call_entry pt "get_key" [] with
  | r -> Format.printf "  unexpectedly read %s@." (Rvalue.to_string r.Pinterp.value)
  | exception Pinterp.Error msg -> Format.printf "  FAULT: %s@." msg
  | exception Heap.Fault (_, msg) -> Format.printf "  FAULT: %s@." msg)
