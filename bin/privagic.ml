(* The privagic command-line compiler and runner.

   privagic check <file.mc>        type-check the secure types
   privagic ir <file.mc>           dump the PIR after mem2reg
   privagic partition <file.mc>    print the partition plan and the chunks
   privagic run <file.mc> <entry> [args...]
                                   execute the partitioned program
   privagic profile <file.mc> <entry> [args...]
                                   execute under telemetry; print metrics
                                   and the critical path (--live dumps the
                                   Prometheus exposition, --stalls writes
                                   the per-lane stall report)
   privagic tcb <file.mc>          per-enclave TCB report
   privagic experiments [names]    regenerate the paper's tables/figures *)

open Cmdliner
open Privagic_pir
open Privagic_secure

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Strict positive-integer option values: "--lanes 0" or a negative
   "--max-steps" is a usage error, reported by cmdliner before anything
   runs, not a hang or an array-size crash later. *)
let pos_int what =
  Arg.conv ~docv:"N"
    ( (fun s ->
        match int_of_string_opt s with
        | Some n when n > 0 -> Ok n
        | Some _ -> Error (`Msg (Printf.sprintf "%s must be positive" what))
        | None -> Error (`Msg (Printf.sprintf "%s must be an integer" what))),
      Format.pp_print_int )

(* TCP ports parse as 1..65535 ([serve] additionally allows 0 =
   ephemeral): a fat-fingered "--port 111311" is a usage error reported
   up front, not a connect timeout minutes later. *)
let port_conv ?(ephemeral = false) () =
  Arg.conv ~docv:"PORT"
    ( (fun s ->
        match int_of_string_opt s with
        | Some n when (n >= 1 || (ephemeral && n = 0)) && n <= 65535 -> Ok n
        | _ ->
          Error
            (`Msg
               (if ephemeral then "port must be in 0..65535 (0 = ephemeral)"
                else "port must be in 1..65535"))),
      Format.pp_print_int )

let hostport_conv =
  Arg.conv ~docv:"HOST:PORT"
    ( (fun s ->
        match String.rindex_opt s ':' with
        | None -> Error (`Msg "expected HOST:PORT")
        | Some i -> (
          let host = String.sub s 0 i in
          let p = String.sub s (i + 1) (String.length s - i - 1) in
          match int_of_string_opt p with
          | Some n when n >= 1 && n <= 65535 && host <> "" -> Ok (host, n)
          | _ -> Error (`Msg "port of HOST:PORT must be in 1..65535"))),
      fun fmt (h, p) -> Format.fprintf fmt "%s:%d" h p )

let backend_arg =
  let backend_conv =
    Arg.conv
      ( (fun s ->
          match s with
          | "sim" -> Ok `Sim
          | "parallel" -> Ok `Parallel
          | _ -> Error (`Msg "backend must be 'sim' or 'parallel'")),
        fun fmt b ->
          Format.pp_print_string fmt
            (match b with `Sim -> "sim" | `Parallel -> "parallel") )
  in
  fun default ->
    Arg.(
      value & opt backend_conv default
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:"Execution backend: 'sim' (deterministic virtual time on the \
                SGX simulator) or 'parallel' (OCaml 5 domains, one worker \
                per lane and partition, lock-free queues, wall-clock \
                time).")

let engine_arg =
  let engine_conv =
    Arg.conv
      ( (fun s ->
          match Privagic_vm.Exec.engine_of_string s with
          | Some e -> Ok e
          | None -> Error (`Msg "engine must be 'walk' or 'image'")),
        fun fmt e ->
          Format.pp_print_string fmt (Privagic_vm.Exec.engine_name e) )
  in
  Arg.(
    value
    & opt engine_conv (Privagic_vm.Exec.default_engine ())
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:"Execution engine: 'image' (default; the plan is lowered once \
              into a flattened linked image and executed by the \
              index-resolved hot loop) or 'walk' (the tree-walking \
              oracle the image engine is differentially tested against). \
              The default can also be set with \\$(b,PRIVAGIC_ENGINE).")

let lanes_arg =
  Arg.(
    value
    & opt (pos_int "lanes") 2
    & info [ "lanes" ] ~docv:"N"
        ~doc:"Worker lanes of the parallel backend: application threads \
              map onto N queues per color, bounding the domain count at \
              N × colors. The server also queues requests per lane.")

let auth_arg =
  Arg.(
    value & flag
    & info [ "auth-pointers" ]
        ~doc:"Enable the authenticated-pointer extension (paper §8 future \
              work): indirection pointers of multi-color structures carry a \
              MAC, making them legal in hardened mode and tamper-evident.")

let mode_arg =
  let mode_conv =
    Arg.conv
      ( (fun s ->
          match s with
          | "hardened" -> Ok Mode.Hardened
          | "relaxed" -> Ok Mode.Relaxed
          | _ -> Error (`Msg "mode must be 'hardened' or 'relaxed'")),
        fun fmt m -> Format.pp_print_string fmt (Mode.to_string m) )
  in
  Arg.(
    value
    & opt mode_conv Mode.Hardened
    & info [ "m"; "mode" ] ~docv:"MODE"
        ~doc:"Compiler mode: 'hardened' (confidentiality, integrity, Iago \
              protection) or 'relaxed' (no Iago protection; required for \
              multi-color structures).")

let file_arg =
  Arg.(
    required
    & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Annotated mini-C source file.")

let compile path =
  try Privagic_minic.Driver.compile ~file:path (read_file path) with
  | Privagic_minic.Driver.Error e ->
    prerr_endline (Privagic_minic.Driver.error_to_string e);
    exit 2

let check_action mode auth path =
  let m = compile path in
  let res = Infer.run ~mode ~auth_pointers:auth m in
  List.iter
    (fun d -> Format.printf "%s@." (Diagnostic.to_string d))
    res.Infer.diagnostics;
  if Infer.ok res then begin
    Format.printf "%s: OK (%s mode)@." path (Mode.to_string mode);
    List.iter
      (fun inst ->
        Format.printf "  %s: colorset {%s}@." inst.Infer.iname
          (String.concat ", "
             (List.map Color.to_string
                (Color.Set.elements (Infer.colorset inst)))))
      (Infer.instances res);
    0
  end
  else 1

let ir_action path =
  let m = compile path in
  print_string (Pmodule.to_string m);
  0

let build_plan ?(auth = false) mode path =
  let m = compile path in
  let res = Infer.run ~mode ~auth_pointers:auth m in
  if not (Infer.ok res) then begin
    List.iter
      (fun d -> prerr_endline (Diagnostic.to_string d))
      res.Infer.diagnostics;
    exit 1
  end;
  let plan = Privagic_partition.Plan.build ~mode ~auth_pointers:auth res in
  if plan.Privagic_partition.Plan.diagnostics <> [] then begin
    List.iter
      (fun d -> prerr_endline (Diagnostic.to_string d))
      plan.Privagic_partition.Plan.diagnostics;
    exit 1
  end;
  plan

let partition_action mode auth dump_chunks path =
  let plan = build_plan ~auth mode path in
  Format.printf "%a@." Privagic_partition.Plan.pp plan;
  if dump_chunks then
    Hashtbl.iter
      (fun _ (pf : Privagic_partition.Plan.pfunc) ->
        List.iter
          (fun (ci : Privagic_partition.Plan.chunk_info) ->
            Format.printf "%a@." Func.pp ci.Privagic_partition.Plan.ci_func)
          pf.Privagic_partition.Plan.pf_chunks)
      plan.Privagic_partition.Plan.pfuncs;
  0

let tcb_action mode auth path =
  let plan = build_plan ~auth mode path in
  Format.printf "%a@." Privagic_partition.Tcb.pp
    (Privagic_partition.Tcb.of_plan plan);
  0

module Tel = Privagic_telemetry

let write_trace rec_ out =
  try Tel.Chrome_trace.recorder_to_file rec_ out with
  | Sys_error msg ->
    prerr_endline ("cannot write trace: " ^ msg);
    exit 2

(* run --backend=parallel: same plan, executed on OCaml 5 domains with the
   lock-free queue; reports wall-clock time instead of simulated cycles. *)
let run_parallel_action trace lanes engine plan entry argv =
  let module Par = Privagic_parallel.Parallel in
  let pt = Par.create ~lanes ~engine plan in
  let rec_ =
    match trace with
    | None -> None
    | Some _ ->
      let r = Tel.Recorder.create () in
      Par.set_telemetry pt r;
      Some r
  in
  (match Par.call_entry pt entry argv with
  | r ->
    print_string (Par.output pt);
    (match (trace, rec_) with
    | Some out, Some rec_ ->
      write_trace rec_ out;
      Format.printf "trace: %d events on %d tracks -> %s@."
        (Tel.Recorder.length rec_)
        (List.length (Tel.Recorder.tracks rec_))
        out
    | _ -> ());
    Format.printf "=> %s  (wall: %.3f ms on %d domains)@."
      (Privagic_vm.Rvalue.to_string r.Par.value)
      (r.Par.wall_seconds *. 1e3) (Par.domain_count pt);
    ignore (Par.shutdown pt)
  | exception Par.Error msg ->
    ignore (Par.shutdown pt);
    prerr_endline ("runtime error: " ^ msg);
    exit 3
  | exception Privagic_vm.Exec.Trap msg ->
    ignore (Par.shutdown pt);
    prerr_endline ("trap: " ^ msg);
    exit 3);
  0

let run_action mode auth trace schedule max_steps backend lanes engine path
    entry args =
  let plan = build_plan ~auth mode path in
  let argv0 =
    List.map (fun a -> Privagic_vm.Rvalue.Int (Int64.of_string a)) args
  in
  if backend = `Parallel then
    run_parallel_action trace lanes engine plan entry argv0
  else begin
  let pt = Privagic_vm.Pinterp.create ~engine plan in
  let argv =
    List.map (fun a -> Privagic_vm.Rvalue.Int (Int64.of_string a)) args
  in
  let rec_ =
    match trace with
    | None -> None
    | Some _ ->
      let r = Tel.Recorder.create () in
      Privagic_vm.Pinterp.set_telemetry pt r;
      Some r
  in
  if schedule then Privagic_vm.Pinterp.start_trace pt;
  (match Privagic_vm.Pinterp.call_entry pt ?max_steps entry argv with
  | r ->
    print_string (Privagic_vm.Pinterp.output pt);
    if schedule then
      Format.printf "%a"
        Privagic_vm.Pinterp.pp_trace
        (Privagic_vm.Pinterp.stop_trace pt);
    (match (trace, rec_) with
    | Some out, Some rec_ ->
      write_trace rec_ out;
      Format.printf "trace: %d events on %d tracks -> %s@."
        (Tel.Recorder.length rec_)
        (List.length (Tel.Recorder.tracks rec_))
        out
    | _ -> ());
    Format.printf "=> %s  (latency: %.0f cycles)@."
      (Privagic_vm.Rvalue.to_string r.Privagic_vm.Pinterp.value)
      r.Privagic_vm.Pinterp.latency_cycles
  | exception Privagic_vm.Pinterp.Error msg ->
    prerr_endline ("runtime error: " ^ msg);
    (* a step-budget exhaustion (--max-steps) is reported distinctly *)
    if max_steps <> None then exit 4 else exit 3
  | exception Privagic_vm.Exec.Trap msg ->
    prerr_endline ("trap: " ^ msg);
    exit 3);
  0
  end

(* profile: run an entry under telemetry, then print the plain-text
   summary (counters, histograms, occupancy) and the critical path.
   --live additionally dumps the lib/obs Prometheus exposition of the
   run's VM counters; --stalls skips the single-entry run entirely and
   produces the per-lane stall-attribution report (BENCH_obs.json). *)
let profile_action mode auth trace engine stalls live quick path entry args =
  match (stalls, path, entry) with
  | true, _, _ ->
    ignore (Privagic_harness.Obsbench.run ~quick ());
    0
  | false, Some path, Some entry ->
    let plan = build_plan ~auth mode path in
    let pt = Privagic_vm.Pinterp.create ~engine plan in
    let argv =
      List.map (fun a -> Privagic_vm.Rvalue.Int (Int64.of_string a)) args
    in
    let rec_ = Tel.Recorder.create () in
    Privagic_vm.Pinterp.set_telemetry pt rec_;
    (match Privagic_vm.Pinterp.call_entry pt entry argv with
    | r ->
      print_string (Privagic_vm.Pinterp.output pt);
      let track_name = Tel.Recorder.track_name rec_ in
      let summary = Tel.Summary.of_recorder rec_ in
      Format.printf "%a@." (Tel.Summary.pp ~track_name) summary;
      let cp = Tel.Critical_path.analyze (Tel.Recorder.events rec_) in
      Format.printf "%a@." (Tel.Critical_path.pp ~track_name) cp;
      (match trace with
      | Some out ->
        write_trace rec_ out;
        Format.printf "trace written to %s@." out
      | None -> ());
      (if live then begin
         let module Obs = Privagic_obs in
         let reg = Obs.Registry.create () in
         let ex = pt.Privagic_vm.Pinterp.exec in
         Obs.Registry.gauge reg
           ~help:"Executed PIR instructions (all executors)"
           "privagic_vm_steps_total"
           (fun () -> float_of_int ex.Privagic_vm.Exec.steps);
         Obs.Registry.gauge reg ~help:"Extern dispatches"
           "privagic_vm_externs_total"
           (fun () -> float_of_int ex.Privagic_vm.Exec.externs);
         Obs.Registry.multi_gauge reg
           ~help:"Declassify calls by source color"
           "privagic_declassify_total"
           (fun () ->
             Hashtbl.fold
               (fun color r acc ->
                 ([ ("color", color) ], float_of_int !r) :: acc)
               ex.Privagic_vm.Exec.declass []
             |> List.sort compare);
         print_string (Obs.Registry.expose reg)
       end);
      Format.printf "=> %s  (latency: %.0f cycles)@."
        (Privagic_vm.Rvalue.to_string r.Privagic_vm.Pinterp.value)
        r.Privagic_vm.Pinterp.latency_cycles
    | exception Privagic_vm.Pinterp.Error msg ->
      prerr_endline ("runtime error: " ^ msg);
      exit 3
    | exception Privagic_vm.Exec.Trap msg ->
      prerr_endline ("trap: " ^ msg);
      exit 3);
    0
  | false, _, _ ->
    prerr_endline "profile: FILE and ENTRY are required (unless --stalls)";
    2

let graph_action mode auth path =
  let plan = build_plan ~auth mode path in
  print_string (Privagic_partition.Graphviz.to_string plan);
  0

let dataflow_action path =
  let m = compile path in
  let r = Privagic_dataflow.Taint.analyze m in
  Format.printf "sequential data-flow analysis (Glamdring-style baseline)@.";
  Format.printf "locations a data-flow tool would protect: {%s}@."
    (String.concat ", " (Privagic_dataflow.Taint.protected_locations r));
  0

let experiments_action quick names =
  Privagic_harness.Experiments.run ~quick ~names ();
  0

let bench_action quick out target =
  match target with
  | "vm" ->
    let path = Option.value out ~default:"BENCH_vm.json" in
    ignore (Privagic_harness.Vmbench.run ~quick ~path ());
    0
  | "replication" ->
    let path = Option.value out ~default:"BENCH_replication.json" in
    ignore (Privagic_harness.Replbench.run ~quick ~path ());
    0
  | "robust" ->
    let module R = Privagic_robust.Driver in
    let path = Option.value out ~default:"BENCH_robust.json" in
    let rp = R.fuzz ~seed:1 ~programs:(if quick then 40 else 500) () in
    R.write_json ~path rp;
    Printf.printf
      "robust: %d programs, %d violation(s), kill rate %.0f%% -> %s\n"
      rp.R.rp_programs (R.violations_total rp)
      (100. *. R.kill_rate rp)
      path;
    if R.passed rp then 0 else 1
  | "obs" ->
    let path = Option.value out ~default:"BENCH_obs.json" in
    ignore (Privagic_harness.Obsbench.run ~quick ~path ());
    0
  | "txn" ->
    let path = Option.value out ~default:"BENCH_txn.json" in
    let r = Privagic_harness.Txnbench.run ~quick ~path () in
    let module T = Privagic_harness.Txnbench in
    (* sanity gate for CI: commits happened, aborts matched the seeded
       stale guards, and no mix saw protocol errors *)
    if
      r.T.tb_txn.T.tp_commits = 0
      || r.T.tb_txn.T.tp_aborts = 0
      || List.exists (fun c -> c.T.tb_errors > 0) r.T.tb_mixes
    then begin
      prerr_endline "bench txn: counter sanity check failed";
      1
    end
    else 0
  | t ->
    prerr_endline
      ("bench: unknown target '" ^ t
     ^ "' (expected: vm, replication, robust, obs, txn)");
    2

(* --- the robust-safety fuzzer --- *)

let fuzz_action seed programs quick out =
  let module R = Privagic_robust.Driver in
  let programs = if quick then min programs 40 else programs in
  let checked = ref 0 in
  let progress (_ : R.case) =
    incr checked;
    if !checked mod 25 = 0 then Printf.eprintf "  %d programs checked\r%!" !checked
  in
  let rp = R.fuzz ~seed ~programs ~progress () in
  let path = Option.value out ~default:"BENCH_robust.json" in
  R.write_json ~path rp;
  let killed = List.length (List.filter (fun k -> k.R.k_killed) rp.R.rp_kills) in
  Printf.printf
    "robust: %d adversarial programs, %d actions, %d secrecy violation(s), \
     mutant kill rate %.0f%% (%d/%d), %.1fs\n"
    rp.R.rp_programs rp.R.rp_actions (R.violations_total rp)
    (100. *. R.kill_rate rp)
    killed (List.length rp.R.rp_kills) rp.R.rp_wall;
  List.iter
    (fun st ->
      Printf.printf "  %-14s %4d programs  %5d actions  %d violation(s)  %.1f prog/s\n"
        st.R.st_cell st.R.st_programs st.R.st_actions
        (List.fold_left
           (fun a (c : R.case) -> a + List.length c.R.cs_violations)
           0 st.R.st_failures)
        (if st.R.st_wall > 0. then float_of_int st.R.st_programs /. st.R.st_wall
         else 0.))
    rp.R.rp_cells;
  List.iter
    (fun (c : R.case) ->
      Printf.printf "FAIL %s victim=%s case-seed=%d\n" c.R.cs_cell c.R.cs_victim
        c.R.cs_seed;
      List.iter
        (fun v -> Printf.printf "  %s\n" (Privagic_robust.Monitor.pp_violation v))
        c.R.cs_violations;
      Printf.printf "  shrunk to %d action(s):\n" (List.length c.R.cs_repro);
      List.iter
        (fun a -> Printf.printf "    %s\n" (Privagic_robust.Gen.describe a))
        c.R.cs_repro;
      Printf.printf "  %s\n" (R.reproducer rp c))
    (R.failures rp);
  List.iter
    (fun (k : R.kill) ->
      if not k.R.k_killed then
        Printf.printf "UNCAUGHT MUTANT %s on %s\n" k.R.k_mutant k.R.k_cell)
    rp.R.rp_kills;
  Printf.printf "result: %s (record: %s)\n"
    (if R.passed rp then "PASS" else "FAIL")
    path;
  if R.passed rp then 0 else 1

(* --- the serving layer --- *)

module Server = Privagic_server.Server
module Loadgen = Privagic_loadgen.Loadgen
module Repl = Privagic_replication

let serve_action mode auth trace backend lanes engine host port queue_depth
    policy max_batch vsize shards capacity replica_of repl_sync
    repl_window cluster_key path =
  let plan = build_plan ~auth mode path in
  let bnd =
    match Server.bindings_of_plan plan with
    | Some b -> b
    | None ->
      prerr_endline
        "serve: the program exports no known key-value entry family \
         (expected e.g. mc_set/mc_get or hm_put/hm_get)";
      exit 1
  in
  if shards < 1 then begin
    prerr_endline "serve: --shards must be at least 1";
    exit 1
  end;
  let rec_ =
    match trace with Some _ -> Tel.Recorder.create () | None -> Tel.Recorder.null
  in
  (* one backend instance per shard: each shard's event loop owns its
     store exclusively, so the backends never contend *)
  let mk_store () =
    match backend with
    | `Parallel ->
      let module Par = Privagic_parallel.Parallel in
      let p = Par.create ~lanes ~engine plan in
      if rec_ != Tel.Recorder.null then Par.set_telemetry p rec_;
      Server.store_of_parallel p
    | `Sim ->
      let pt = Privagic_vm.Pinterp.create ~engine plan in
      if rec_ != Tel.Recorder.null then
        Privagic_vm.Pinterp.set_telemetry pt rec_;
      Server.store_of_pinterp pt
  in
  let stores = Array.init shards (fun _ -> mk_store ()) in
  (match bnd.Server.b_init with
  | Some entry ->
    Array.iter
      (fun store ->
        match
          store.Server.st_call entry
            [ Privagic_vm.Rvalue.Int (Int64.of_int capacity) ]
        with
        | Ok _ -> ()
        | Error m ->
          prerr_endline (Printf.sprintf "serve: %s failed: %s" entry m);
          exit 3)
      stores
  | None -> ());
  let cfg =
    {
      Server.host;
      port;
      shards;
      lanes;
      queue_depth;
      policy;
      max_batch;
      vsize;
      telemetry = rec_;
      repl_window;
      repl_cluster = cluster_key;
    }
  in
  let replica_disp =
    Option.map (fun (h, p) -> Printf.sprintf "%s:%d" h p) replica_of
  in
  let srv =
    try Server.start ?replica_of:replica_disp cfg bnd stores with Failure m ->
      prerr_endline ("serve: " ^ m);
      exit 2
  in
  Format.printf
    "listening on %s:%d (%s program, %s backend, %d shards x %d lanes%s)@."
    host (Server.port srv) bnd.Server.b_family stores.(0).Server.st_name shards
    lanes
    (match replica_disp with
    | Some a -> Printf.sprintf ", replica of %s" a
    | None -> "");
  Format.printf
    "protocol: get/set/del/getv/cas/scan/txn..exec/stats/quit/shutdown; \
     drain with SIGINT@.";
  (* as a replica: run the replication client against the primary, apply
     its stream into this server, and promote on primary loss *)
  let stopping = Atomic.make false in
  let repl_client =
    match replica_of with
    | None -> None
    | Some (rhost, rport) ->
      let apply (d : Repl.Delta.t) =
        match d.Repl.Delta.op with
        | Repl.Delta.Put { key; payload; _ } ->
          Server.apply_put srv ~seq:d.Repl.Delta.seq ~key ~payload
        | Repl.Delta.Del { key } ->
          Server.apply_del srv ~seq:d.Repl.Delta.seq ~key
      in
      let on_lost () =
        if (not (Atomic.get stopping)) && not (Server.is_draining srv) then begin
          Server.promote srv;
          Printf.printf "primary lost: promoted to primary\n%!"
        end
      in
      Some
        (Repl.Replica.start ~sync:repl_sync ~cluster:cluster_key ~on_lost
           ~host:rhost ~port:rport ~apply ())
  in
  (* a drain must not run inside the signal handler: handlers interrupt an
     arbitrary thread, possibly one the drain would join. The replication
     client stops first, so a drain is never seen as a lost primary. *)
  let on_signal _ =
    ignore
      (Thread.create
         (fun () ->
           Atomic.set stopping true;
           (match repl_client with
           | Some r -> Repl.Replica.stop r
           | None -> ());
           Server.drain srv)
         ())
  in
  Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal);
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal)
   with Invalid_argument _ -> ());
  Server.wait srv;
  Atomic.set stopping true;
  (match repl_client with Some r -> Repl.Replica.stop r | None -> ());
  Format.printf "drained.@.";
  List.iter
    (fun (k, v) -> Format.printf "  %-20s %s@." k v)
    (Server.stats_fields srv);
  (match trace with
  | Some out ->
    write_trace rec_ out;
    Format.printf "trace written to %s@." out
  | None -> ());
  0

let loadgen_action host port clients ops rate depth records vsize seed
    read_prop mix scan_len no_preload shutdown out =
  let cfg =
    {
      Loadgen.host;
      port;
      clients;
      ops;
      rate;
      depth;
      record_count = records;
      vsize;
      seed;
      read_prop;
      mix;
      scan_len;
      preload = not no_preload;
      shutdown;
    }
  in
  match Loadgen.run cfg with
  | r ->
    Format.printf "%a@." Loadgen.pp_result r;
    (match out with
    | Some path ->
      Loadgen.write_json ~path cfg r;
      Format.printf "wrote %s@." path
    | None -> ());
    if r.Loadgen.r_ops_ok = 0 then begin
      prerr_endline "loadgen: no operation completed";
      1
    end
    else if r.Loadgen.r_errors > 0 then begin
      prerr_endline
        (Printf.sprintf "loadgen: %d errors" r.Loadgen.r_errors);
      1
    end
    else 0
  | exception Failure m ->
    prerr_endline m;
    2

(* --- cmdliner wiring --- *)

let check_cmd =
  Cmd.v (Cmd.info "check" ~doc:"Type-check the secure types of a program")
    Term.(const check_action $ mode_arg $ auth_arg $ file_arg)

let ir_cmd =
  Cmd.v (Cmd.info "ir" ~doc:"Dump the PIR after mem2reg")
    Term.(const ir_action $ file_arg)

let partition_cmd =
  let dump =
    Arg.(value & flag & info [ "chunks" ] ~doc:"Also dump the chunk bodies.")
  in
  Cmd.v (Cmd.info "partition" ~doc:"Print the partition plan")
    Term.(const partition_action $ mode_arg $ auth_arg $ dump $ file_arg)

let tcb_cmd =
  Cmd.v (Cmd.info "tcb" ~doc:"Per-enclave trusted-computing-base report")
    Term.(const tcb_action $ mode_arg $ auth_arg $ file_arg)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"OUT.json"
        ~doc:"Record telemetry and write a Chrome trace-event JSON file \
              (open in chrome://tracing or Perfetto): one track per \
              worker, chunk spans, flow arrows for spawn/cont messages.")

let entry_pos =
  Arg.(
    required
    & pos 1 (some string) None
    & info [] ~docv:"ENTRY" ~doc:"Entry point to execute.")

let args_pos =
  Arg.(value & pos_right 1 string [] & info [] ~docv:"ARGS"
         ~doc:"Integer arguments.")

let run_cmd =
  let schedule =
    Arg.(
      value & flag
      & info [ "schedule" ]
          ~doc:"Print the message/chunk schedule in virtual time (the \
                runtime's own Figure 7).")
  in
  let max_steps =
    Arg.(
      value
      & opt (some (pos_int "max-steps")) None
      & info [ "max-steps" ] ~docv:"N"
          ~doc:"Bound the scheduler steps for the request; exhaustion \
                exits with code 4, distinguishable from non-completion.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a partitioned program on the SGX simulator \
                          or on real domains (--backend=parallel)")
    Term.(const run_action $ mode_arg $ auth_arg $ trace_arg $ schedule
          $ max_steps $ backend_arg `Sim $ lanes_arg $ engine_arg $ file_arg
          $ entry_pos $ args_pos)

let profile_cmd =
  let stalls =
    Arg.(
      value & flag
      & info [ "stalls" ]
          ~doc:"Per-lane stall attribution on the real-parallel backend: \
                decompose each lane's wall time into run / pump-wait / \
                queue-wait / barrier / park per workload family, print the \
                table and write BENCH_obs.json. FILE/ENTRY are not needed.")
  in
  let live =
    Arg.(
      value & flag
      & info [ "live" ]
          ~doc:"After the run, dump the run's VM counters (steps, extern \
                dispatches, declassify-per-color) in Prometheus text \
                exposition format — the same grammar 'stats metrics' \
                serves on a live server.")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"With --stalls: reduced record/operation counts (seconds).")
  in
  let file_opt =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"Annotated mini-C source file (not needed with --stalls).")
  in
  let entry_opt =
    Arg.(
      value
      & pos 1 (some string) None
      & info [] ~docv:"ENTRY"
          ~doc:"Entry point to execute (not needed with --stalls).")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Execute an entry point under telemetry and print the metrics \
             summary (counters, latency histograms, per-worker occupancy) \
             and the critical path through the partitioned execution; \
             --live dumps the Prometheus exposition of the run, --stalls \
             writes the per-lane stall-attribution report instead")
    Term.(const profile_action $ mode_arg $ auth_arg $ trace_arg $ engine_arg
          $ stalls $ live $ quick $ file_opt $ entry_opt $ args_pos)

let graph_cmd =
  Cmd.v
    (Cmd.info "graph"
       ~doc:"Emit the partition plan as a Graphviz DOT graph (chunks \
             grouped by partition; direct calls solid, spawns dashed, \
             cont-carried returns dotted)")
    Term.(const graph_action $ mode_arg $ auth_arg $ file_arg)

let dataflow_cmd =
  Cmd.v
    (Cmd.info "dataflow"
       ~doc:"Run the sequential data-flow baseline (unsound for threads, \
             Fig. 3) and print the locations it would protect")
    Term.(const dataflow_action $ file_arg)

let experiments_cmd =
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Reduced sizes (seconds instead of minutes).")
  in
  let names =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"NAMES"
          ~doc:"Experiments to run: fig3 fig8 fig9 fig10 table4 ablation. \
                Default: all.")
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate the paper's tables and figures")
    Term.(const experiments_action $ quick $ names)

let bench_cmd =
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Reduced record/operation counts (seconds).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Where to write the JSON record (default BENCH_<target>.json).")
  in
  let target =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TARGET"
          ~doc:"Benchmark target: 'vm' (walk-vs-image engine comparison, \
                steps/sec), 'replication' (sync/async delta shipping: \
                throughput, lag percentiles, failover time), 'robust' \
                (adversarial robust-safety campaign: programs/s checked, \
                mutant kill rate), 'obs' (per-lane stall attribution \
                plus instrumentation overhead), or 'txn' (YCSB-E/F mixes \
                plus multi-op transactions against the serving layer).")
  in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Run a runtime benchmark target; 'vm' compares the \
             tree-walking and linked-image engines across workloads on \
             both backends (BENCH_vm.json), 'replication' measures delta \
             shipping against in-process replicas (BENCH_replication.json), \
             'robust' runs the adversarial robust-safety campaign \
             (BENCH_robust.json), 'obs' measures stall attribution and \
             observability overhead (BENCH_obs.json)")
    Term.(const bench_action $ quick $ out $ target)

let fuzz_cmd =
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~docv:"N"
          ~doc:"Base seed of the campaign; every victim program, sentinel \
                and adversarial script derives from it, so one seed \
                reproduces the whole batch.")
  in
  let programs =
    Arg.(
      value & opt (pos_int "programs") 500
      & info [ "programs" ] ~docv:"N"
          ~doc:"Adversarial programs to check, spread across the \
                {walk,image} x {sim,parallel} matrix (default 500).")
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Cap the campaign at 40 programs (CI smoke).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Where to write the JSON record (default BENCH_robust.json).")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Adversarial robust-safety campaign: generate hostile \
             unsafe-side code against checked partitions and trace-check \
             that no secret leaks; also verifies the monitor kills every \
             planted leak mutant. Exits nonzero on any secrecy violation \
             or uncaught mutant.")
    Term.(const fuzz_action $ seed $ programs $ quick $ out)

let serve_cmd =
  let host =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Address to bind.")
  in
  let port =
    Arg.(
      value
      & opt (port_conv ~ephemeral:true ()) 11311
      & info [ "p"; "port" ] ~docv:"PORT"
          ~doc:"TCP port; 0 picks an ephemeral one (printed at startup).")
  in
  let queue_depth =
    Arg.(
      value & opt (pos_int "queue-depth") 64
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:"Per-lane request-queue high-water mark (backpressure \
                threshold).")
  in
  let policy =
    let policy_conv =
      Arg.conv
        ( (fun s ->
            match s with
            | "block" -> Ok Server.Block
            | "shed" -> Ok Server.Shed
            | _ -> Error (`Msg "policy must be 'block' or 'shed'")),
          fun fmt p ->
            Format.pp_print_string fmt
              (match p with Server.Block -> "block" | Server.Shed -> "shed") )
    in
    Arg.(
      value & opt policy_conv Server.Block
      & info [ "policy" ] ~docv:"POLICY"
          ~doc:"Above the high-water mark: 'block' the producing shard \
                (backpressure) or 'shed' with SERVER_BUSY.")
  in
  let max_batch =
    Arg.(
      value & opt (pos_int "batch") 8
      & info [ "batch" ] ~docv:"N"
          ~doc:"Requests executed per queue handoff; duplicate gets inside \
                a batch are answered once.")
  in
  let vsize =
    Arg.(
      value & opt (pos_int "vsize") 32
      & info [ "vsize" ] ~docv:"BYTES"
          ~doc:"Value-buffer size of the program (memcached_lite.mc: 32).")
  in
  let shards =
    Arg.(
      value & opt (pos_int "shards") 1
      & info [ "shards" ] ~docv:"N"
          ~doc:"Single-writer keyspace shards. Keys hash to a shard by \
                key mod N; each shard runs its own event loop (domain) and \
                owns a private backend instance, so reads and single-shard \
                writes never take a global lock. Multi-shard transactions \
                commit via two-phase commit.")
  in
  let capacity =
    Arg.(
      value & opt (pos_int "capacity") 4096
      & info [ "capacity" ] ~docv:"N"
          ~doc:"Capacity passed to the program's init entry (mc_init).")
  in
  let replica_of =
    Arg.(
      value
      & opt (some hostport_conv) None
      & info [ "replica-of" ] ~docv:"HOST:PORT"
          ~doc:"Run as a read-only replica of the primary at HOST:PORT: \
                connect, stream its committed deltas (secret-colored \
                payloads arrive sealed), apply them, and serve gets. When \
                the primary drains or dies the replica promotes itself and \
                starts accepting writes.")
  in
  let repl_sync =
    Arg.(
      value & flag
      & info [ "repl-sync" ]
          ~doc:"Replicate synchronously (with --replica-of): the primary \
                holds each write's response until this replica acknowledged \
                it, giving clients read-your-writes on replica reads.")
  in
  let repl_window =
    Arg.(
      value & opt (pos_int "repl-window") 1024
      & info [ "repl-window" ] ~docv:"N"
          ~doc:"Replication flow control: unacknowledged in-flight deltas \
                allowed per replica connection (as a primary).")
  in
  let cluster_key =
    Arg.(
      value & opt string "privagic"
      & info [ "cluster-key" ] ~docv:"SECRET"
          ~doc:"Cluster secret the per-enclave sealing keys derive from \
                (models attestation-time key provisioning); primary and \
                replicas must agree.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve a partitioned key-value program over TCP \
             (memcached-lite text protocol: get/set/del/stats/quit/shutdown)")
    Term.(const serve_action $ mode_arg $ auth_arg $ trace_arg
          $ backend_arg `Parallel $ lanes_arg $ engine_arg $ host $ port
          $ queue_depth $ policy $ max_batch $ vsize $ shards
          $ capacity $ replica_of $ repl_sync $ repl_window $ cluster_key
          $ file_arg)

let loadgen_cmd =
  let host =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"ADDR" ~doc:"Server address.")
  in
  let port =
    Arg.(
      value & opt (port_conv ()) 11311
      & info [ "p"; "port" ] ~docv:"PORT" ~doc:"Server port.")
  in
  let clients =
    Arg.(
      value & opt (pos_int "clients") 8
      & info [ "c"; "clients" ] ~docv:"N" ~doc:"Concurrent connections.")
  in
  let ops =
    Arg.(
      value & opt (pos_int "ops") 10_000
      & info [ "n"; "ops" ] ~docv:"N" ~doc:"Measured operations.")
  in
  let rate =
    Arg.(
      value & opt float 0.0
      & info [ "rate" ] ~docv:"OPS/S"
          ~doc:"Open-loop aggregate request rate; 0 (default) = closed \
                loop, --depth outstanding requests per connection.")
  in
  let depth =
    Arg.(
      value & opt (pos_int "depth") 1
      & info [ "depth" ] ~docv:"N"
          ~doc:"Closed-loop pipeline depth: in-flight requests kept per \
                connection (1 = classic closed loop; higher pipelines).")
  in
  let records =
    Arg.(
      value & opt (pos_int "records") 1024
      & info [ "records" ] ~docv:"N"
          ~doc:"Key-space size (and preload size).")
  in
  let vsize =
    Arg.(
      value & opt (pos_int "vsize") 32
      & info [ "vsize" ] ~docv:"BYTES" ~doc:"Value bytes per set.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Workload seed.")
  in
  let read_prop =
    Arg.(
      value & opt float 0.95
      & info [ "read-prop" ] ~docv:"P"
          ~doc:"Read proportion of the YCSB mix (default 0.95 = workload B).")
  in
  let mix =
    Arg.(
      value
      & opt
          (enum
             [ ("custom", Loadgen.Custom); ("ycsb-e", Loadgen.Ycsb_e);
               ("ycsb-f", Loadgen.Ycsb_f) ])
          Loadgen.Custom
      & info [ "mix" ] ~docv:"MIX"
          ~doc:"Workload mix: $(b,custom) (the --read-prop dial), \
                $(b,ycsb-e) (95% range scans / 5% inserts) or \
                $(b,ycsb-f) (50% reads / 50% read-modify-writes driven \
                as getv+cas).")
  in
  let scan_len =
    Arg.(
      value & opt (pos_int "scan-len") 16
      & info [ "scan-len" ] ~docv:"N"
          ~doc:"Maximum requested scan length in the ycsb-e mix \
                (lengths are uniform in [1, N]).")
  in
  let no_preload =
    Arg.(
      value & flag
      & info [ "no-preload" ]
          ~doc:"Skip the unmeasured preload phase (useful against an \
                already-loaded server).")
  in
  let shutdown =
    Arg.(
      value & flag
      & info [ "shutdown" ]
          ~doc:"Send the 'shutdown' verb when done: the server drains \
                gracefully and exits.")
  in
  let out =
    Arg.(
      value
      & opt (some string) (Some "BENCH_server.json")
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the JSON result record here (default \
                BENCH_server.json).")
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Drive a running privagic server with a YCSB-style workload \
             and report throughput and latency percentiles")
    Term.(const loadgen_action $ host $ port $ clients $ ops $ rate $ depth
          $ records $ vsize $ seed $ read_prop $ mix $ scan_len $ no_preload
          $ shutdown $ out)

let () =
  let doc = "automatic code partitioning with explicit secure typing" in
  let info = Cmd.info "privagic" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info
                     [ check_cmd; ir_cmd; partition_cmd; tcb_cmd; run_cmd;
                       profile_cmd; graph_cmd; dataflow_cmd;
                       experiments_cmd; bench_cmd; fuzz_cmd; serve_cmd;
                       loadgen_cmd ]))
