(* Dead-code elimination. The partitioner replicates every F instruction in
   every chunk (paper §7.3.1) and relies on this pass to delete the copies
   that turn out to be unused in a given chunk. *)

open Privagic_pir

(* An instruction is a root if it has a side effect (store, call). Everything
   transitively reaching a root or a terminator operand is live. *)
let run_func (f : Func.t) : int =
  let live = Hashtbl.create 64 in
  let def_of = Hashtbl.create 64 in
  Func.iter_instrs f (fun _ i ->
      match Instr.defines i with
      | Some id -> Hashtbl.replace def_of id i
      | None -> ());
  let worklist = ref [] in
  let mark_reg r =
    match Hashtbl.find_opt def_of r with
    | Some (i : Instr.t) ->
      if not (Hashtbl.mem live i.id) then begin
        Hashtbl.replace live i.id ();
        worklist := i :: !worklist
      end
    | None -> () (* parameter *)
  in
  Func.iter_instrs f (fun _ i ->
      if Instr.has_side_effect i then begin
        (match Instr.defines i with
        | Some id -> Hashtbl.replace live id ()
        | None -> ());
        worklist := i :: !worklist
      end);
  List.iter
    (fun (b : Block.t) -> List.iter mark_reg (Instr.term_uses b.term))
    f.blocks;
  while !worklist <> [] do
    let i = List.hd !worklist in
    worklist := List.tl !worklist;
    List.iter mark_reg (Instr.uses i)
  done;
  let removed = ref 0 in
  List.iter
    (fun (b : Block.t) ->
      b.instrs <-
        List.filter
          (fun (i : Instr.t) ->
            let keep =
              Instr.has_side_effect i
              ||
              match Instr.defines i with
              | Some id -> Hashtbl.mem live id
              | None -> true
            in
            if not keep then incr removed;
            keep)
          b.instrs)
    f.blocks;
  !removed

let run (m : Pmodule.t) : int =
  List.fold_left (fun n f -> n + run_func f) 0 (Pmodule.funcs_sorted m)
