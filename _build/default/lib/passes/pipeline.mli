(** The standard pass pipeline run on frontend output before the secure
    type analysis: unreachable-block removal, verification, mem2reg
    (§5.1), optional DCE, verification again. *)

type stats = { promoted : int; dce_removed : int }

val prepare : ?dce:bool -> Privagic_pir.Pmodule.t -> stats
