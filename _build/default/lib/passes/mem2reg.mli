(** SSA promotion of allocas — the LLVM [mem2reg] pass the paper runs before
    color inference (§5.1).

    A local is promoted only when its address never escapes (the exact
    condition under which the paper infers local colors: a non-escaping
    local cannot be touched by another thread) and when it carries no
    explicit color (a colored local is a declared memory location and must
    stay materialized for placement).

    Standard algorithm: phi insertion at the iterated dominance frontier of
    the store sites, then a renaming walk of the dominator tree. *)

(** Returns the number of promoted allocas. *)
val run_func : Privagic_pir.Func.t -> int

val run : Privagic_pir.Pmodule.t -> int
