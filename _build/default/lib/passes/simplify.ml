(* CFG cleanup: removal of blocks unreachable from the entry (created by the
   frontend after [return]/[break]/[continue]) and of phi entries whose
   predecessor edge disappeared with them. Runs before mem2reg, whose renaming
   walk only visits reachable blocks. *)

open Privagic_pir

let remove_unreachable_func (f : Func.t) : int =
  let g = Cfg.of_func f in
  let before = List.length f.Func.blocks in
  f.Func.blocks <-
    List.filter (fun (b : Block.t) -> Cfg.reachable g b.label) f.Func.blocks;
  let kept label =
    List.exists (fun (b : Block.t) -> String.equal b.label label) f.Func.blocks
  in
  List.iter
    (fun (b : Block.t) ->
      b.instrs <-
        List.map
          (fun (i : Instr.t) ->
            match i.op with
            | Instr.Phi entries ->
              { i with op = Instr.Phi (List.filter (fun (l, _) -> kept l) entries) }
            | _ -> i)
          b.instrs)
    f.Func.blocks;
  before - List.length f.Func.blocks

let remove_unreachable (m : Pmodule.t) : int =
  List.fold_left
    (fun n f -> n + remove_unreachable_func f)
    0 (Pmodule.funcs_sorted m)
