(* Constant folding and branch simplification.

   Folds arithmetic/comparisons/casts/selects over constants, propagates
   the results, and turns conditional branches on constants into jumps
   (the unreachable arm is then removed by [Simplify]). Colors are
   unaffected: constants are F, and folding an instruction away can only
   shrink chunks. *)

open Privagic_pir

let as_int (v : Value.t) : int64 option =
  match v with Value.Int (i, _) -> Some i | _ -> None

let as_float (v : Value.t) : float option =
  match v with Value.Float f -> Some f | _ -> None

let bool_val b : Value.t = Value.Int ((if b then 1L else 0L), Ty.i1)

let fold_binop (op : Instr.binop) (a : Value.t) (b : Value.t) : Value.t option
    =
  match op, as_int a, as_int b with
  | Instr.Add, Some x, Some y -> Some (Value.int_ (Int64.add x y))
  | Instr.Sub, Some x, Some y -> Some (Value.int_ (Int64.sub x y))
  | Instr.Mul, Some x, Some y -> Some (Value.int_ (Int64.mul x y))
  | Instr.Sdiv, Some x, Some y when not (Int64.equal y 0L) ->
    Some (Value.int_ (Int64.div x y))
  | Instr.Srem, Some x, Some y when not (Int64.equal y 0L) ->
    Some (Value.int_ (Int64.rem x y))
  | Instr.And, Some x, Some y -> Some (Value.int_ (Int64.logand x y))
  | Instr.Or, Some x, Some y -> Some (Value.int_ (Int64.logor x y))
  | Instr.Xor, Some x, Some y -> Some (Value.int_ (Int64.logxor x y))
  | Instr.Shl, Some x, Some y ->
    Some (Value.int_ (Int64.shift_left x (Int64.to_int y land 63)))
  | Instr.Ashr, Some x, Some y ->
    Some (Value.int_ (Int64.shift_right x (Int64.to_int y land 63)))
  | _ -> (
    match op, as_float a, as_float b with
    | Instr.Fadd, Some x, Some y -> Some (Value.float_ (x +. y))
    | Instr.Fsub, Some x, Some y -> Some (Value.float_ (x -. y))
    | Instr.Fmul, Some x, Some y -> Some (Value.float_ (x *. y))
    | Instr.Fdiv, Some x, Some y -> Some (Value.float_ (x /. y))
    | _ -> None)

let fold_icmp (op : Instr.icmp) (a : Value.t) (b : Value.t) : Value.t option =
  match as_int a, as_int b with
  | Some x, Some y ->
    let c = Int64.compare x y in
    Some
      (bool_val
         (match op with
         | Instr.Eq -> c = 0
         | Instr.Ne -> c <> 0
         | Instr.Slt -> c < 0
         | Instr.Sle -> c <= 0
         | Instr.Sgt -> c > 0
         | Instr.Sge -> c >= 0))
  | _ -> (
    (* null-pointer comparisons *)
    match a, b, op with
    | Value.Null _, Value.Null _, Instr.Eq -> Some (bool_val true)
    | Value.Null _, Value.Null _, Instr.Ne -> Some (bool_val false)
    | _ -> None)

let fold_cast (op : Instr.castop) (v : Value.t) (ty : Ty.t) : Value.t option =
  match op, v with
  | Instr.Zext, Value.Int (i, _) -> Some (Value.Int (i, ty))
  | Instr.Trunc, Value.Int (i, _) -> (
    match ty.Ty.desc with
    | Ty.I1 -> Some (Value.Int (Int64.logand i 1L, ty))
    | Ty.I8 -> Some (Value.Int (Int64.logand i 0xffL, ty))
    | _ -> Some (Value.Int (i, ty)))
  | Instr.Sitofp, Value.Int (i, _) -> Some (Value.float_ (Int64.to_float i))
  | Instr.Fptosi, Value.Float f -> Some (Value.int_ (Int64.of_float f))
  | _ -> None

(* One folding round over a function: returns the number of folds. *)
let fold_round (f : Func.t) : int =
  let subst : (int, Value.t) Hashtbl.t = Hashtbl.create 16 in
  let rw (v : Value.t) =
    match v with
    | Value.Reg r -> (
      match Hashtbl.find_opt subst r with Some c -> c | None -> v)
    | _ -> v
  in
  let folds = ref 0 in
  List.iter
    (fun (b : Block.t) ->
      b.Block.instrs <-
        List.filter_map
          (fun (i : Instr.t) ->
            let op =
              match i.Instr.op with
              | Instr.Binop (o, a, b') -> Instr.Binop (o, rw a, rw b')
              | Instr.Icmp (o, a, b') -> Instr.Icmp (o, rw a, rw b')
              | Instr.Fcmp (o, a, b') -> Instr.Fcmp (o, rw a, rw b')
              | Instr.Cast (o, v, ty) -> Instr.Cast (o, rw v, ty)
              | Instr.Select (c, a, b') -> Instr.Select (rw c, rw a, rw b')
              | Instr.Load p -> Instr.Load (rw p)
              | Instr.Store (v, p) -> Instr.Store (rw v, rw p)
              | Instr.Gep (ty, base, steps) ->
                Instr.Gep
                  ( ty,
                    rw base,
                    List.map
                      (function
                        | Instr.Field k -> Instr.Field k
                        | Instr.Index v -> Instr.Index (rw v))
                      steps )
              | Instr.Call (n, args) -> Instr.Call (n, List.map rw args)
              | Instr.Callind (fv, args) ->
                Instr.Callind (rw fv, List.map rw args)
              | Instr.Spawn (n, args) -> Instr.Spawn (n, List.map rw args)
              | Instr.Phi entries ->
                Instr.Phi (List.map (fun (l, v) -> (l, rw v)) entries)
              | Instr.Alloca _ as op -> op
            in
            let folded =
              match op with
              | Instr.Binop (o, a, b') -> fold_binop o a b'
              | Instr.Icmp (o, a, b') -> fold_icmp o a b'
              | Instr.Cast (o, v, ty) -> fold_cast o v ty
              | Instr.Select (Value.Int (c, _), a, b') ->
                Some (if not (Int64.equal c 0L) then a else b')
              | Instr.Phi entries -> (
                (* a phi whose live entries agree on a single value (e.g.
                   after branch folding removed the other arm) *)
                match List.sort_uniq compare (List.map snd entries) with
                | [ v ] when v <> Value.Reg i.Instr.id -> Some v
                | _ -> None)
              | _ -> None
            in
            match folded, Instr.defines i with
            | Some c, Some id ->
              Hashtbl.replace subst id c;
              incr folds;
              None
            | _ -> Some { i with op })
          b.Block.instrs;
      b.Block.term <-
        (match b.Block.term with
        | Instr.Condbr (c, tl, fl) -> (
          match rw c with
          | Value.Int (v, _) ->
            incr folds;
            Instr.Br (if Int64.equal v 0L then fl else tl)
          | c' -> Instr.Condbr (c', tl, fl))
        | Instr.Ret (Some v) -> Instr.Ret (Some (rw v))
        | t -> t))
    f.Func.blocks;
  !folds

let run_func (f : Func.t) : int =
  let total = ref 0 in
  let continue = ref true in
  while !continue do
    let n = fold_round f in
    total := !total + n;
    continue := n > 0
  done;
  if !total > 0 then ignore (Simplify.remove_unreachable_func f);
  !total

let run (m : Pmodule.t) : int =
  List.fold_left (fun n f -> n + run_func f) 0 (Pmodule.funcs_sorted m)
