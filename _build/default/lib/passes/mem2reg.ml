(* SSA promotion of allocas, the LLVM mem2reg pass the paper runs before
   color inference (§5.1). A local variable is promoted only when its address
   never escapes — exactly the condition under which the paper allows color
   inference, since a non-escaping local cannot be touched by another
   thread.

   Standard algorithm: phi insertion at the iterated dominance frontier of
   the store sites, then a renaming walk over the dominator tree. *)

open Privagic_pir

module SMap = Map.Make (String)

type promotable = { preg : int; pty : Ty.t }

(* An alloca is promotable iff every use of its address is a [Load] from it
   or the *pointer* operand of a [Store]. Any other use (gep, call argument,
   stored as a value, cast...) means the address escapes. *)
let promotable_allocas (f : Func.t) : promotable list =
  let allocas = Hashtbl.create 16 in
  Func.iter_instrs f (fun _ i ->
      match i.Instr.op with
      | Instr.Alloca ty -> Hashtbl.replace allocas i.id { preg = i.id; pty = ty }
      | _ -> ());
  let disqualify r = Hashtbl.remove allocas r in
  Func.iter_instrs f (fun _ i ->
      match i.Instr.op with
      | Instr.Load _ -> ()
      | Instr.Store (v, _) ->
        List.iter disqualify (Value.regs v) (* address stored as a value *)
      | _ -> List.iter disqualify (Instr.uses i));
  List.iter
    (fun (b : Block.t) -> List.iter disqualify (Instr.term_uses b.term))
    f.blocks;
  (* Colored allocas are never promoted: their color is an explicit secure
     type on a memory location, and the location must stay materialized so
     that the partitioner can place it. *)
  Hashtbl.fold
    (fun _ p acc ->
      match Ty.color_of p.pty with Some _ -> acc | None -> p :: acc)
    allocas []
  |> List.sort (fun a b -> Int.compare a.preg b.preg)

let run_func (f : Func.t) : int =
  let promoted = promotable_allocas f in
  if promoted = [] then 0
  else begin
    let g = Cfg.of_func f in
    let dom = Dom.dominators g in
    let by_reg = Hashtbl.create 16 in
    List.iter (fun p -> Hashtbl.replace by_reg p.preg p) promoted;
    let is_promoted v =
      match v with
      | Value.Reg r -> Hashtbl.find_opt by_reg r
      | _ -> None
    in
    (* Blocks containing a store to each promoted alloca. *)
    let def_blocks = Hashtbl.create 16 in
    Func.iter_instrs f (fun b i ->
        match i.Instr.op with
        | Instr.Store (_, p) -> (
          match is_promoted p with
          | Some a ->
            let existing =
              Option.value ~default:[] (Hashtbl.find_opt def_blocks a.preg)
            in
            if not (List.mem b.Block.label existing) then
              Hashtbl.replace def_blocks a.preg (b.Block.label :: existing)
          | None -> ())
        | _ -> ());
    (* Phi insertion at the iterated dominance frontier. phis maps
       (block, alloca) -> phi register; entries are filled during renaming. *)
    let phis : (string * int, int) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun a ->
        let worklist =
          ref (Option.value ~default:[] (Hashtbl.find_opt def_blocks a.preg))
        in
        let ever = Hashtbl.create 16 in
        List.iter (fun b -> Hashtbl.replace ever b ()) !worklist;
        while !worklist <> [] do
          let x = List.hd !worklist in
          worklist := List.tl !worklist;
          List.iter
            (fun y ->
              if Cfg.reachable g y && not (Hashtbl.mem phis (y, a.preg)) then begin
                Hashtbl.replace phis (y, a.preg) (Func.fresh_reg f);
                if not (Hashtbl.mem ever y) then begin
                  Hashtbl.replace ever y ();
                  worklist := y :: !worklist
                end
              end)
            (Dom.frontier dom x)
        done)
      promoted;
    (* Renaming walk. subst maps deleted load results to reaching values. *)
    let subst : (int, Value.t) Hashtbl.t = Hashtbl.create 64 in
    let stacks : (int, Value.t list ref) Hashtbl.t = Hashtbl.create 16 in
    List.iter (fun a -> Hashtbl.replace stacks a.preg (ref [])) promoted;
    let top a =
      match !(Hashtbl.find stacks a.preg) with
      | v :: _ -> v
      | [] -> Value.Undef a.pty
    in
    let rewrite_value v =
      match v with
      | Value.Reg r -> (
        match Hashtbl.find_opt subst r with Some v' -> v' | None -> v)
      | _ -> v
    in
    let rewrite_op op =
      let rw = rewrite_value in
      match op with
      | Instr.Alloca _ -> op
      | Instr.Load p -> Instr.Load (rw p)
      | Instr.Store (v, p) -> Instr.Store (rw v, rw p)
      | Instr.Binop (o, a, b) -> Instr.Binop (o, rw a, rw b)
      | Instr.Icmp (o, a, b) -> Instr.Icmp (o, rw a, rw b)
      | Instr.Fcmp (o, a, b) -> Instr.Fcmp (o, rw a, rw b)
      | Instr.Cast (o, v, ty) -> Instr.Cast (o, rw v, ty)
      | Instr.Gep (ty, base, steps) ->
        Instr.Gep
          ( ty,
            rw base,
            List.map
              (function
                | Instr.Field k -> Instr.Field k
                | Instr.Index v -> Instr.Index (rw v))
              steps )
      | Instr.Call (callee, args) -> Instr.Call (callee, List.map rw args)
      | Instr.Callind (fn, args) -> Instr.Callind (rw fn, List.map rw args)
      | Instr.Phi entries ->
        Instr.Phi (List.map (fun (l, v) -> (l, rw v)) entries)
      | Instr.Select (c, a, b) -> Instr.Select (rw c, rw a, rw b)
      | Instr.Spawn (f, args) -> Instr.Spawn (f, List.map rw args)
    in
    (* Dominator-tree children. *)
    let children = Hashtbl.create 16 in
    List.iter
      (fun l ->
        match Dom.idom dom l with
        | Some p ->
          Hashtbl.replace children p
            (l :: Option.value ~default:[] (Hashtbl.find_opt children p))
        | None -> ())
      (Cfg.reverse_postorder g);
    (* Phi entry accumulation: (block, phi_reg) -> entries. *)
    let phi_entries : (int, (string * Value.t) list ref) Hashtbl.t =
      Hashtbl.create 16
    in
    Hashtbl.iter
      (fun _ phi_reg -> Hashtbl.replace phi_entries phi_reg (ref []))
      phis;
    let rec rename label =
      let b = Func.find_block_exn f label in
      let pushed = ref [] in
      let push a v =
        let st = Hashtbl.find stacks a.preg in
        st := v :: !st;
        pushed := a.preg :: !pushed
      in
      (* Phis defined in this block become the current definition. *)
      List.iter
        (fun a ->
          match Hashtbl.find_opt phis (label, a.preg) with
          | Some phi_reg -> push a (Value.Reg phi_reg)
          | None -> ())
        promoted;
      let kept =
        List.filter_map
          (fun (i : Instr.t) ->
            let op = rewrite_op i.op in
            match op with
            | Instr.Alloca _ when Hashtbl.mem by_reg i.id -> None
            | Instr.Load p -> (
              match is_promoted p with
              | Some a ->
                Hashtbl.replace subst i.id (top a);
                None
              | None -> Some { i with op })
            | Instr.Store (v, p) -> (
              match is_promoted p with
              | Some a ->
                push a v;
                None
              | None -> Some { i with op })
            | _ -> Some { i with op })
          b.instrs
      in
      b.instrs <- kept;
      b.term <-
        (match b.term with
        | Instr.Condbr (c, t, fl) -> Instr.Condbr (rewrite_value c, t, fl)
        | Instr.Ret (Some v) -> Instr.Ret (Some (rewrite_value v))
        | t -> t);
      (* Record phi entries in successors for the edge label -> succ. *)
      List.iter
        (fun succ ->
          List.iter
            (fun a ->
              match Hashtbl.find_opt phis (succ, a.preg) with
              | Some phi_reg ->
                let entries = Hashtbl.find phi_entries phi_reg in
                if not (List.mem_assoc label !entries) then
                  entries := (label, top a) :: !entries
              | None -> ())
            promoted)
        (Cfg.successors g label);
      List.iter rename
        (List.sort String.compare
           (Option.value ~default:[] (Hashtbl.find_opt children label)));
      List.iter
        (fun preg ->
          let st = Hashtbl.find stacks preg in
          st := List.tl !st)
        !pushed
    in
    (match Cfg.reverse_postorder g with
    | [] -> ()
    | entry :: _ -> rename entry);
    (* Materialize the phi instructions at the head of their blocks. *)
    Hashtbl.iter
      (fun (label, preg) phi_reg ->
        let a = Hashtbl.find by_reg preg in
        let b = Func.find_block_exn f label in
        let entries = !(Hashtbl.find phi_entries phi_reg) in
        let preds = Cfg.predecessors g label in
        let full =
          List.map
            (fun p ->
              match List.assoc_opt p entries with
              | Some v -> (p, v)
              | None -> (p, Value.Undef a.pty))
            preds
        in
        b.instrs <-
          Instr.make ~id:phi_reg ~ty:a.pty (Instr.Phi full) :: b.instrs)
      phis;
    List.length promoted
  end

(* Returns the number of promoted allocas across the module. *)
let run (m : Pmodule.t) : int =
  List.fold_left (fun n f -> n + run_func f) 0 (Pmodule.funcs_sorted m)
