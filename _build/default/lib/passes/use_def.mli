(** Use-def and def-use chains over a function — the "simple use-def chain
    analysis" behind the paper's restricted type inference (§1). *)

open Privagic_pir

type t

val of_func : Func.t -> t

(** Defining instruction of a register ([None] for parameters). *)
val def : t -> int -> Instr.t option

val def_block : t -> int -> string option
val uses_of : t -> int -> Instr.t list
val is_param : t -> int -> bool

(** Registers transitively feeding [r] (backward slice through registers;
    memory is not followed). *)
val backward_slice : t -> int -> int list
