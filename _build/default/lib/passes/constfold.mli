(** Constant folding and branch simplification to a fixed point: folds
    arithmetic/comparisons/casts/selects over constants, simplifies phis
    whose entries agree, and turns conditional branches on constants into
    jumps (then prunes the dead arm). Color-neutral: constants are F.
    Returns the number of folds. *)

val run_func : Privagic_pir.Func.t -> int
val run : Privagic_pir.Pmodule.t -> int
