(** CFG cleanup: removal of blocks unreachable from the entry (created by
    the frontend after [return]/[break]/[continue], or by branch folding)
    and of phi entries whose predecessor edge disappeared with them.
    Returns the number of removed blocks. *)

val remove_unreachable_func : Privagic_pir.Func.t -> int
val remove_unreachable : Privagic_pir.Pmodule.t -> int
