(* The standard pass pipeline run on frontend output before the secure type
   analysis: verify, mem2reg (paper §5.1), verify again. *)

open Privagic_pir

type stats = { promoted : int; dce_removed : int }

let prepare ?(dce = false) (m : Pmodule.t) : stats =
  ignore (Simplify.remove_unreachable m);
  Verify.check_module_exn m;
  let promoted = Mem2reg.run m in
  let dce_removed = if dce then Dce.run m else 0 in
  Verify.check_module_exn m;
  { promoted; dce_removed }
