(* Use-def and def-use chains over a function, the "simple use-def chain
   analysis" the paper's restricted type inference relies on (§1). *)

open Privagic_pir

type t = {
  def_site : (int, Instr.t) Hashtbl.t;       (* register -> defining instr *)
  def_block : (int, string) Hashtbl.t;       (* register -> defining block *)
  uses : (int, Instr.t list) Hashtbl.t;      (* register -> using instrs *)
  param_count : int;
}

let of_func (f : Func.t) =
  let t =
    {
      def_site = Hashtbl.create 64;
      def_block = Hashtbl.create 64;
      uses = Hashtbl.create 64;
      param_count = Func.arity f;
    }
  in
  Func.iter_instrs f (fun b i ->
      (match Instr.defines i with
      | Some id ->
        Hashtbl.replace t.def_site id i;
        Hashtbl.replace t.def_block id b.Block.label
      | None -> ());
      List.iter
        (fun r ->
          let existing = Option.value ~default:[] (Hashtbl.find_opt t.uses r) in
          Hashtbl.replace t.uses r (i :: existing))
        (Instr.uses i));
  t

let def t r = Hashtbl.find_opt t.def_site r

let def_block t r = Hashtbl.find_opt t.def_block r

let uses_of t r = Option.value ~default:[] (Hashtbl.find_opt t.uses r)

let is_param t r = r < t.param_count

(* Transitive closure of registers feeding [r] (the backward slice through
   registers only; memory is not followed). *)
let backward_slice t r =
  let seen = Hashtbl.create 16 in
  let rec go r =
    if not (Hashtbl.mem seen r) then begin
      Hashtbl.replace seen r ();
      match def t r with
      | Some i -> List.iter go (Instr.uses i)
      | None -> ()
    end
  in
  go r;
  Hashtbl.fold (fun r () acc -> r :: acc) seen []
