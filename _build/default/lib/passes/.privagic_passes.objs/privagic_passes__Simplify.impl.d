lib/passes/simplify.ml: Block Cfg Func Instr List Pmodule Privagic_pir String
