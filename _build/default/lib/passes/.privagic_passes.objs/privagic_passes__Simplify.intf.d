lib/passes/simplify.mli: Privagic_pir
