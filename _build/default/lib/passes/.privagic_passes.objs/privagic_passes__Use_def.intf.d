lib/passes/use_def.mli: Func Instr Privagic_pir
