lib/passes/constfold.ml: Block Func Hashtbl Instr Int64 List Pmodule Privagic_pir Simplify Ty Value
