lib/passes/dce.mli: Privagic_pir
