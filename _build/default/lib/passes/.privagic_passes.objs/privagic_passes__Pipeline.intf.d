lib/passes/pipeline.mli: Privagic_pir
