lib/passes/mem2reg.ml: Block Cfg Dom Func Hashtbl Instr Int List Map Option Pmodule Privagic_pir String Ty Value
