lib/passes/use_def.ml: Block Func Hashtbl Instr List Option Privagic_pir
