lib/passes/pipeline.ml: Dce Mem2reg Pmodule Privagic_pir Simplify Verify
