lib/passes/dce.ml: Block Func Hashtbl Instr List Pmodule Privagic_pir
