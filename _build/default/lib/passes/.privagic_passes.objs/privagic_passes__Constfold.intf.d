lib/passes/constfold.mli: Privagic_pir
