lib/passes/mem2reg.mli: Privagic_pir
