(** Dead-code elimination: instructions that neither have side effects nor
    transitively reach one (or a terminator operand) are removed. The
    partitioner relies on this to delete the per-chunk replicas of F
    instructions that a chunk does not use (§7.3.1). Returns the number of
    removed instructions. *)

val run_func : Privagic_pir.Func.t -> int
val run : Privagic_pir.Pmodule.t -> int
