(** Trusted-computing-base accounting (paper §9.2.2, Table 4): per-enclave
    instruction counts and binary-size estimates vs the
    whole-application-in-one-enclave baseline. Size-model constants are
    the paper's: 268 KiB Privagic+SDK runtime per enclave; 36.2 MiB
    library OS + 14.7 MiB musl for the Scone-like TCB. *)

open Privagic_pir

type partition_stats = {
  color : Color.t;
  chunk_count : int;
  instr_count : int;
  tcb_bytes : int;
}

type t = {
  partitions : partition_stats list;  (** named enclaves only *)
  unsafe_instrs : int;
  total_instrs : int;
  whole_app_tcb_bytes : int;
  max_enclave_tcb_bytes : int;
}

val of_plan : Plan.t -> t

(** Whole-application TCB over the largest per-enclave TCB (the paper
    reports "a factor of more than 200" for memcached). *)
val reduction_factor : t -> float

val pp : Format.formatter -> t -> unit
