(* DOT rendering of a partition plan: one cluster per partition (enclaves
   plus the unsafe zone), one node per chunk, and the §7.3.2 call
   structure as edges — solid for direct calls, dashed for spawn messages,
   dotted for return values travelling in cont messages.

   Render with: privagic graph file.mc | dot -Tsvg > plan.svg *)

open Privagic_pir

let color_fill = function
  | Color.Named "blue" -> "#c6dbef"
  | Color.Named "red" -> "#fcbba1"
  | Color.Named "green" -> "#c7e9c0"
  | Color.Named _ -> "#dadaeb"
  | Color.Unsafe -> "#f0f0f0"
  | Color.Shared -> "#f0f0f0"
  | Color.Free -> "#ffffff"

let node_id name =
  "n" ^ String.concat "_" (String.split_on_char '#' name)
  |> String.map (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
         | _ -> '_')

let plan_dot fmt (plan : Plan.t) =
  Format.fprintf fmt "digraph privagic {@.";
  Format.fprintf fmt "  rankdir=LR; fontname=\"monospace\";@.";
  Format.fprintf fmt "  node [shape=box, fontname=\"monospace\"];@.";
  (* group chunks per partition *)
  let partitions : (string, (string * Color.t) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  Hashtbl.iter
    (fun _ (pf : Plan.pfunc) ->
      List.iter
        (fun (ci : Plan.chunk_info) ->
          let key = Color.to_string ci.Plan.ci_color in
          let cell =
            match Hashtbl.find_opt partitions key with
            | Some l -> l
            | None ->
              let l = ref [] in
              Hashtbl.replace partitions key l;
              l
          in
          cell := (ci.Plan.ci_func.Func.name, ci.Plan.ci_color) :: !cell)
        pf.Plan.pf_chunks)
    plan.Plan.pfuncs;
  Hashtbl.iter
    (fun pname chunks ->
      Format.fprintf fmt "  subgraph cluster_%s {@." (node_id pname);
      Format.fprintf fmt "    label=\"%s\"; style=filled; color=\"#999999\";@."
        (match pname with
        | "U" -> "unsafe memory"
        | "F" -> "replicated"
        | p -> "enclave " ^ p);
      List.iter
        (fun (name, color) ->
          Format.fprintf fmt
            "    %s [label=\"%s\", style=filled, fillcolor=\"%s\"];@."
            (node_id name) name (color_fill color))
        !chunks;
      Format.fprintf fmt "  }@.")
    partitions;
  (* edges from the call plans *)
  Hashtbl.iter
    (fun _ (pf : Plan.pfunc) ->
      Hashtbl.iter
        (fun _ (cp : Plan.call_plan) ->
          let callee = cp.Plan.cp_key in
          (* direct: caller chunk c -> callee chunk c *)
          List.iter
            (fun c ->
              let caller_chunk = Chunk.chunk_name pf.Plan.pf_key c in
              let callee_chunk = Chunk.chunk_name callee c in
              Format.fprintf fmt "  %s -> %s;@." (node_id caller_chunk)
                (node_id callee_chunk))
            cp.Plan.cp_direct;
          (* spawns: leader -> spawned chunks, dashed *)
          (match cp.Plan.cp_leader with
          | Some leader when cp.Plan.cp_spawned <> [] ->
            let caller_chunk = Chunk.chunk_name pf.Plan.pf_key leader in
            List.iter
              (fun d ->
                Format.fprintf fmt
                  "  %s -> %s [style=dashed, label=\"spawn\"];@."
                  (node_id caller_chunk)
                  (node_id (Chunk.chunk_name callee d)))
              cp.Plan.cp_spawned
          | _ -> ());
          (* return values by message, dotted *)
          if cp.Plan.cp_ret_to_msg <> [] then
            let sender =
              match cp.Plan.cp_direct @ cp.Plan.cp_spawned with
              | c :: _ -> Some (Chunk.chunk_name callee c)
              | [] -> None
            in
            Option.iter
              (fun s ->
                List.iter
                  (fun d ->
                    Format.fprintf fmt
                      "  %s -> %s [style=dotted, label=\"ret\"];@." (node_id s)
                      (node_id (Chunk.chunk_name pf.Plan.pf_key d)))
                  cp.Plan.cp_ret_to_msg)
              sender)
        pf.Plan.pf_calls)
    plan.Plan.pfuncs;
  (* entry interfaces *)
  List.iter
    (fun (ep : Plan.entry_plan) ->
      let iface = "client:" ^ ep.Plan.ep_name in
      Format.fprintf fmt "  %s [shape=ellipse, label=\"%s\"];@."
        (node_id iface) iface;
      List.iter
        (fun c ->
          Format.fprintf fmt "  %s -> %s [style=dashed, label=\"spawn\"];@."
            (node_id iface)
            (node_id (Chunk.chunk_name ep.Plan.ep_key c)))
        ep.Plan.ep_spawned;
      let direct_chunk = Chunk.chunk_name ep.Plan.ep_key ep.Plan.ep_direct in
      Format.fprintf fmt "  %s -> %s;@." (node_id iface) (node_id direct_chunk))
    plan.Plan.entries;
  Format.fprintf fmt "}@."

let to_string plan = Format.asprintf "%a" plan_dot plan
