(* Trusted-computing-base accounting (paper §9.2.2, Table 4).

   For each enclave color we count the PIR instructions of the chunks placed
   in it — the analog of the paper's "user code (LLVM)" lines — and derive a
   binary-size estimate. The runtime constant models the per-enclave footprint
   of the Intel SDK runtime plus the Privagic runtime that the paper measures
   at 268 KiB; a whole-application baseline (Scone-like) instead carries the
   application, a libc and a library OS. *)

open Privagic_pir

(* Size model constants, in bytes. *)
let bytes_per_instr = 12          (* x86-64 code density for IR-level ops *)
let privagic_runtime_bytes = 268 * 1024
let scone_runtime_bytes = (36 * 1024 * 1024) + (14 * 1024 * 1024 * 7 / 10)
    (* library OS (36.2 MiB) + musl libc (14.7 MiB) *)

type partition_stats = {
  color : Color.t;
  chunk_count : int;
  instr_count : int;               (* user code inside this enclave *)
  tcb_bytes : int;                 (* user code + per-enclave runtime *)
}

type t = {
  partitions : partition_stats list;   (* named enclaves only *)
  unsafe_instrs : int;                 (* U partition user code *)
  total_instrs : int;                  (* whole program, for the baseline *)
  whole_app_tcb_bytes : int;           (* Scone-like TCB *)
  max_enclave_tcb_bytes : int;
}

let of_plan (plan : Plan.t) : t =
  let per_color : (Color.t, int * int) Hashtbl.t = Hashtbl.create 8 in
  let add color n =
    let chunks, instrs =
      Option.value ~default:(0, 0) (Hashtbl.find_opt per_color color)
    in
    Hashtbl.replace per_color color (chunks + 1, instrs + n)
  in
  Hashtbl.iter
    (fun _ (pf : Plan.pfunc) ->
      List.iter
        (fun (ci : Plan.chunk_info) ->
          add ci.Plan.ci_color (Func.instr_count ci.Plan.ci_func))
        pf.Plan.pf_chunks)
    plan.Plan.pfuncs;
  let partitions =
    Hashtbl.fold
      (fun color (chunk_count, instr_count) acc ->
        if Color.is_enclave color then
          {
            color;
            chunk_count;
            instr_count;
            tcb_bytes = (instr_count * bytes_per_instr) + privagic_runtime_bytes;
          }
          :: acc
        else acc)
      per_color []
    |> List.sort (fun a b -> Color.compare a.color b.color)
  in
  let unsafe_instrs =
    match Hashtbl.find_opt per_color Color.Unsafe with
    | Some (_, n) -> n
    | None -> 0
  in
  let total_instrs =
    Hashtbl.fold
      (fun _ f acc -> acc + Func.instr_count f)
      plan.Plan.pmodule.Pmodule.funcs 0
  in
  {
    partitions;
    unsafe_instrs;
    total_instrs;
    whole_app_tcb_bytes =
      (total_instrs * bytes_per_instr) + scone_runtime_bytes;
    max_enclave_tcb_bytes =
      List.fold_left (fun acc p -> max acc p.tcb_bytes) 0 partitions;
  }

(* Ratio of the whole-application TCB over the largest per-enclave TCB:
   the paper reports "a factor of more than 200" for memcached. *)
let reduction_factor t =
  if t.max_enclave_tcb_bytes = 0 then infinity
  else float_of_int t.whole_app_tcb_bytes /. float_of_int t.max_enclave_tcb_bytes

let pp fmt t =
  List.iter
    (fun p ->
      Format.fprintf fmt "enclave %s: %d chunks, %d instrs, TCB %d KiB@."
        (Color.to_string p.color) p.chunk_count p.instr_count
        (p.tcb_bytes / 1024))
    t.partitions;
  Format.fprintf fmt "unsafe partition: %d instrs@." t.unsafe_instrs;
  Format.fprintf fmt "whole-app TCB (Scone-like): %d KiB; reduction %.0fx@."
    (t.whole_app_tcb_bytes / 1024)
    (reduction_factor t)
