(** Chunk construction (paper §7.3.1).

    For every color C of an instance's colorset, the chunk C contains the
    instance's C instructions plus a replica of every F instruction; dead
    replicas are removed by DCE. A conditional branch whose condition is
    colored D != C cannot be evaluated in chunk C — rule 4 guarantees the
    influence region has no C instructions, so chunk C jumps straight to
    the join point (the branch block's immediate postdominator), and the
    join's phis are repaired. Stores into S memory are placed into one
    designated chunk (footnote 6 of the paper). *)

open Privagic_pir
open Privagic_secure

(** ["iname#color"], e.g. ["f@blue#blue"]. *)
val chunk_name : Infer.instance_key -> Color.t -> string

(** The chunk hosting S stores/allocas: the U chunk when present, else the
    first of the colorset. *)
val s_host : Color.t list -> Color.t option

(** Which parameter positions a chunk of the given color receives (§7.3.2:
    "the C and F arguments, but not the others"). *)
val visible_params : Infer.instance_key -> Color.t -> bool list

val keep_instr : c:Color.t -> s_host:Color.t option -> Color.t -> bool

(** Build the chunk function for one color; register numbering is shared
    with the original instance. *)
val build : Infer.instance -> Color.t list -> Color.t -> Func.t
