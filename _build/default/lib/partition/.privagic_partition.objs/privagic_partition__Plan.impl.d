lib/partition/plan.ml: Annot Block Cenv Chunk Color Diagnostic Format Func Hashtbl Infer Instr List Loc Mode Pmodule Printf Privagic_pir Privagic_secure String Ty Value
