lib/partition/graphviz.ml: Chunk Color Format Func Hashtbl List Option Plan Privagic_pir String
