lib/partition/tcb.ml: Color Format Func Hashtbl List Option Plan Pmodule Privagic_pir
