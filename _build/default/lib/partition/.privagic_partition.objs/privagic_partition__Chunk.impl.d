lib/partition/chunk.ml: Block Cfg Color Dom Func Hashtbl Infer Instr List Option Printf Privagic_passes Privagic_pir Privagic_secure Ty Value
