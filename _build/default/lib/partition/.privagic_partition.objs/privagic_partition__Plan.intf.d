lib/partition/plan.mli: Color Diagnostic Format Func Hashtbl Infer Mode Pmodule Privagic_pir Privagic_secure
