lib/partition/tcb.mli: Color Format Plan Privagic_pir
