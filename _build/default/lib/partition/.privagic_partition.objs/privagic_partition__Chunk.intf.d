lib/partition/chunk.mli: Color Func Infer Privagic_pir Privagic_secure
