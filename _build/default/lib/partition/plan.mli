(** Whole-program partition plan (paper §7): the artifact the runtime
    executes. *)

open Privagic_pir
open Privagic_secure

type chunk_info = { ci_color : Color.t; ci_func : Func.t }

(** How a call site executes across partitions (§7.3.2). *)
type call_plan = {
  cp_key : Infer.instance_key;     (** callee instance *)
  cp_direct : Color.t list;        (** colors called directly *)
  cp_spawned : Color.t list;       (** callee chunks started by spawn msgs *)
  cp_leader : Color.t option;      (** caller chunk sending the spawns *)
  cp_ret_color : Color.t;
  cp_ret_to_msg : Color.t list;
      (** caller chunks receiving the return value through a cont message
          (relaxed mode; an error in hardened mode) *)
  cp_f_args_to_spawned : bool;
      (** spawned chunks need a *computed* F argument (trampoline +
          cont; constants replicate for free) *)
}

(** One partitioned function instance. *)
type pfunc = {
  pf_key : Infer.instance_key;
  pf_colorset : Color.t list;      (** sorted; [[]] means pure-F *)
  pf_chunks : chunk_info list;
  pf_calls : (int, call_plan) Hashtbl.t;   (** instr id -> plan *)
  pf_barriers : (int, unit) Hashtbl.t;     (** visible effects (§7.3.3) *)
}

(** Interface version of an entry point (§7.3.4). *)
type entry_plan = {
  ep_name : string;
  ep_key : Infer.instance_key;
  ep_spawned : Color.t list;
  ep_direct : Color.t;             (** the chunk the interface runs: U or F *)
}

type t = {
  mode : Mode.t;
  infer : Infer.t;
  pmodule : Pmodule.t;
  pfuncs : (Infer.instance_key, pfunc) Hashtbl.t;
  entries : entry_plan list;
  global_placement : (string * Color.t) list; (** §7.1 *)
  shared_globals : string list;    (** the S region of §7.1 *)
  multicolor_structs : string list;           (** §7.2 *)
  mutable diagnostics : Diagnostic.t list;
      (** partition-time errors: F values crossing partitions in hardened
          mode, chunks reading registers computed elsewhere *)
  auth_pointers : bool;
      (** §8 extension: indirection pointers of multi-color structures are
          MAC-authenticated, enabling them in hardened mode *)
  spawn_targets_cache : (string, string list) Hashtbl.t;
}

(** §8 extension — the valid-spawn-sequence guard. The plan knows which
    chunks can legitimately be started in each partition: exactly the
    spawn targets of some call plan, entry interface, or thread spawn.
    The runtime checks every spawn against this set, closing the
    "unexpected spawn message" attack the paper leaves open. *)
val valid_spawn_targets : t -> Color.t -> string list

(** [spawn_allowed plan color chunk_name] — may a worker of [color] be
    asked to start [chunk_name]? *)
val spawn_allowed : t -> Color.t -> string -> bool

(** Structs whose fields do not all share one memory color. *)
val multicolor_structs : Pmodule.t -> string list

(** Whether register [r] is read by an instruction of [f]. *)
val chunk_uses : Func.t -> int -> bool

(** Build the plan from a successful analysis. [auth_pointers] enables the
    §8 authenticated-pointer extension (multi-color structures become
    legal in hardened mode; see DESIGN.md §8.5). *)
val build : ?mode:Mode.t -> ?auth_pointers:bool -> Infer.t -> t

val find_pfunc : t -> Infer.instance_key -> pfunc option
val find_chunk : pfunc -> Color.t -> chunk_info option
val ok : t -> bool
val pp : Format.formatter -> t -> unit
