(* Chunk construction (paper §7.3.1).

   For every color C of an instance's colorset, the chunk C contains the
   instance's C instructions plus a replica of every F instruction; dead
   replicas are removed by DCE afterwards. Control flow: a conditional
   branch whose condition is colored D != C cannot be evaluated in chunk C —
   but rule 4 guarantees the influence region contains no C instructions,
   so chunk C jumps straight to the join point (the branch block's immediate
   postdominator).

   Stores into S memory are placed into one designated chunk (footnote 6 of
   the paper): the U chunk when it exists, otherwise the first chunk. *)

open Privagic_pir
open Privagic_secure

let chunk_name (key : Infer.instance_key) (c : Color.t) =
  Printf.sprintf "%s#%s" (Infer.instance_name key) (Color.to_string c)

(* The chunk that hosts S stores (and S allocas) for an instance. *)
let s_host (colorset : Color.t list) : Color.t option =
  if List.exists (Color.equal Color.Unsafe) colorset then Some Color.Unsafe
  else match colorset with c :: _ -> Some c | [] -> None

(* Parameters visible to a chunk: those whose effective color is C or F
   (§7.3.2: "the chunk of the caller calls the chunk of the callee with the
   C and F arguments, but not the other arguments"). Positions are kept so
   that register numbering is stable; invisible parameters become Undef at
   call time. *)
let visible_params (key : Infer.instance_key) (c : Color.t) =
  List.map
    (fun ac -> Color.equal ac Color.Free || Color.equal ac c)
    key.Infer.ik_args

(* Decide whether an instruction belongs to chunk [c]. *)
let keep_instr ~(c : Color.t) ~(s_host : Color.t option)
    (ic : Color.t) : bool =
  match ic with
  | Color.Free -> true
  | Color.Shared -> ( match s_host with Some h -> Color.equal h c | None -> false)
  | ic -> Color.equal ic c

(* When a foreign-colored branch is short-circuited to its join point, the
   join's phis lose the region predecessors and gain the branch block as a
   direct predecessor. A phi that survives in this chunk is F (rule 4 makes
   region-dependent phis colored), so its surviving meaning is the value
   that flowed around the region: every remaining entry carries it. Missing
   predecessor edges therefore reuse that value (or any entry value — they
   are all equal for a well-typed F phi). *)
let repair_phis (chunk : Func.t) =
  let g = Cfg.of_func chunk in
  List.iter
    (fun (b : Block.t) ->
      let preds = Cfg.predecessors g b.Block.label in
      b.Block.instrs <-
        List.map
          (fun (i : Instr.t) ->
            match i.Instr.op with
            | Instr.Phi entries ->
              let default =
                match entries with
                | (_, v) :: _ -> v
                | [] -> Value.Undef i.Instr.ty
              in
              let full =
                List.map
                  (fun p ->
                    match List.assoc_opt p entries with
                    | Some v -> (p, v)
                    | None -> (p, default))
                  preds
              in
              { i with op = Instr.Phi full }
            | _ -> i)
          b.Block.instrs)
    chunk.Func.blocks

(* Build the chunk function for color [c] of [inst]. The returned function
   reuses the original register numbering (the VM treats registers as a
   sparse map). *)
let build (inst : Infer.instance) (colorset : Color.t list) (c : Color.t) :
    Func.t =
  let key = inst.Infer.key in
  let host = s_host colorset in
  let f = inst.Infer.func in
  let pdom = inst.Infer.pdom in
  let instr_color (i : Instr.t) =
    Option.value ~default:Color.Free
      (Hashtbl.find_opt inst.Infer.instr_color i.Instr.id)
  in
  let chunk =
    Func.make ~annots:f.Func.annots ~name:(chunk_name key c)
      ~params:f.Func.params ~ret:f.Func.ret ()
  in
  chunk.Func.next_reg <- f.Func.next_reg;
  let exit_needed = ref false in
  let exit_label = "__chunk_exit" in
  let blocks =
    List.map
      (fun (b : Block.t) ->
        let instrs =
          List.filter (fun i -> keep_instr ~c ~s_host:host (instr_color i))
            b.Block.instrs
        in
        let term =
          match b.Block.term with
          | Instr.Condbr (cond, tl, fl) ->
            let cc =
              match cond with
              | Value.Reg r ->
                Option.value ~default:Color.Free
                  (Hashtbl.find_opt inst.Infer.reg_color r)
              | _ -> Color.Free
            in
            if Color.equal cc Color.Free || Color.equal cc c then
              Instr.Condbr (cond, tl, fl)
            else (
              (* foreign condition: skip the influence region *)
              match Dom.idom pdom b.Block.label with
              | Some join -> Instr.Br join
              | None ->
                (* the region reaches the end of the function *)
                exit_needed := true;
                Instr.Br exit_label)
          | t -> t
        in
        Block.make ~instrs ~term b.Block.label)
      f.Func.blocks
  in
  let blocks =
    if !exit_needed then
      blocks
      @ [
          Block.make ~term:
            (if Ty.equal f.Func.ret Ty.void then Instr.Ret None
             else Instr.Ret (Some (Value.Undef f.Func.ret)))
            exit_label;
        ]
    else blocks
  in
  chunk.Func.blocks <- blocks;
  (* Remove blocks that became unreachable, then dead F replicas. *)
  ignore (Privagic_passes.Simplify.remove_unreachable_func chunk);
  repair_phis chunk;
  ignore (Privagic_passes.Dce.run_func chunk);
  chunk
