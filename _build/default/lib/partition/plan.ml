(* Whole-program partition plan (paper §7).

   The plan is what the runtime executes: per-instance chunks, a call plan
   per call site (direct calls for common colors, spawn messages for the
   missing chunks, cont messages for F values crossing partitions in relaxed
   mode), barrier points for visible effects, and the placement of global
   variables. *)

open Privagic_pir
open Privagic_secure

type chunk_info = { ci_color : Color.t; ci_func : Func.t }

type call_plan = {
  cp_key : Infer.instance_key;     (* callee instance *)
  cp_direct : Color.t list;        (* colors called directly (§7.3.2) *)
  cp_spawned : Color.t list;       (* callee chunks started by spawn msgs *)
  cp_leader : Color.t option;      (* caller chunk sending the spawn msgs *)
  cp_ret_color : Color.t;
  cp_ret_to_msg : Color.t list;    (* caller chunks receiving the return
                                      value through a cont message *)
  cp_f_args_to_spawned : bool;     (* spawned chunks need F arguments
                                      (trampoline + cont messages) *)
}

type pfunc = {
  pf_key : Infer.instance_key;
  pf_colorset : Color.t list;      (* sorted; [] means pure-F function *)
  pf_chunks : chunk_info list;     (* one per colorset entry, or one F chunk *)
  pf_calls : (int, call_plan) Hashtbl.t;
  pf_barriers : (int, unit) Hashtbl.t; (* instrs with visible effects *)
}

type entry_plan = {
  ep_name : string;                (* original function name *)
  ep_key : Infer.instance_key;
  ep_spawned : Color.t list;       (* chunks the interface starts (§7.3.4) *)
  ep_direct : Color.t;             (* the chunk the interface runs: U or F *)
}

type t = {
  mode : Mode.t;
  infer : Infer.t;
  pmodule : Pmodule.t;
  pfuncs : (Infer.instance_key, pfunc) Hashtbl.t;
  entries : entry_plan list;
  global_placement : (string * Color.t) list; (* global -> partition *)
  shared_globals : string list;    (* the S region of §7.1 *)
  multicolor_structs : string list;
  mutable diagnostics : Diagnostic.t list;
  auth_pointers : bool;
  spawn_targets_cache : (string, string list) Hashtbl.t;
}

let diag t kind iname fmt =
  Format.kasprintf
    (fun msg ->
      t.diagnostics <-
        Diagnostic.make ~kind ~func:iname ~loc:Loc.none msg :: t.diagnostics)
    fmt

(* ------------------------------------------------------------------ *)

let colorset_list inst =
  Color.Set.elements (Infer.colorset inst) |> List.sort Color.compare

(* Whether register [r] is used by some kept instruction of [chunk]. *)
let chunk_uses (chunk : Func.t) (r : int) =
  let used = ref false in
  Func.iter_instrs chunk (fun _ i ->
      if List.mem r (Instr.uses i) then used := true);
  List.iter
    (fun (b : Block.t) ->
      if List.mem r (Instr.term_uses b.Block.term) then used := true)
    chunk.Func.blocks;
  !used

(* Calls with an effect visible outside the partitioned program: plain
   external calls (the OS) and indirect calls. Within/ignore externals run
   inside the enclave (mini-libc) and are not visible effects. *)
let is_extern_call (m : Pmodule.t) (i : Instr.t) =
  match i.Instr.op with
  | Instr.Call (callee, _) -> (
    (not (Pmodule.is_defined m callee))
    &&
    match Pmodule.find_extern m callee with
    | Some e ->
      not
        (List.exists
           (fun a -> Annot.equal a Annot.Within || Annot.equal a Annot.Ignore)
           e.Pmodule.eannots)
    | None -> true)
  | Instr.Callind _ | Instr.Spawn _ -> true
  | _ -> false

(* Closedness: every register an instruction of a chunk reads must be
   defined inside the same chunk (or be a parameter). A dangling register
   means a value computed in another partition would be needed — typically
   the address of an uncolored stack slot consumed by a colored
   instruction. Such programs need a shared location (a global) instead of
   a stack slot; we reject them with a clear diagnostic rather than let
   the runtime read garbage. Terminator operands are exempt: only the
   partition owning the return value returns it meaningfully. *)
let check_chunk_closed t (pf_key : Infer.instance_key) (ci : chunk_info) =
  let defined = Hashtbl.create 64 in
  List.iteri (fun k _ -> Hashtbl.replace defined k ()) ci.ci_func.Func.params;
  Func.iter_instrs ci.ci_func (fun _ i ->
      match Instr.defines i with
      | Some id -> Hashtbl.replace defined id ()
      | None -> ());
  Func.iter_instrs ci.ci_func (fun _ i ->
      match i.Instr.op with
      | Instr.Call (callee, _) when Pmodule.is_defined t.pmodule callee ->
        (* local-call arguments are plan-mediated: a chunk that actually
           executes the callee always has its own (C and F) arguments *)
        ()
      | Instr.Spawn _ -> ()
      | _ ->
        List.iter
          (fun r ->
            if not (Hashtbl.mem defined r) then
              diag t Diagnostic.Cross_enclave_f (Infer.instance_name pf_key)
                "chunk %s reads register %%%d computed in another partition \
                 (use a shared global instead of a stack slot)"
                ci.ci_func.Func.name r)
          (Instr.uses i))

let build_pfunc t (inst : Infer.instance) : pfunc =
  let cs = colorset_list inst in
  (* footnote 6 of the paper: stores into S need a host chunk. A function
     whose only placed instructions are S stores gets a U chunk, so the
     store executes exactly once (not replicated). *)
  let has_s_instr =
    let found = ref false in
    Func.iter_instrs inst.Infer.func (fun _ i ->
        if Color.equal (Infer.instruction_color inst i) Color.Shared then
          found := true);
    !found
  in
  let cs = if cs = [] && has_s_instr then [ Color.Unsafe ] else cs in
  let chunk_colors = if cs = [] then [ Color.Free ] else cs in
  let chunks =
    List.map
      (fun c -> { ci_color = c; ci_func = Chunk.build inst cs c })
      chunk_colors
  in
  List.iter (check_chunk_closed t inst.Infer.key) chunks;
  let pf =
    {
      pf_key = inst.Infer.key;
      pf_colorset = cs;
      pf_chunks = chunks;
      pf_calls = Hashtbl.create 8;
      pf_barriers = Hashtbl.create 8;
    }
  in
  (* barriers: external calls and S stores have visible effects (§7.3.3) *)
  Func.iter_instrs inst.Infer.func (fun _ i ->
      let ic = Infer.instruction_color inst i in
      let visible =
        is_extern_call t.pmodule i
        || (match i.Instr.op with
           | Instr.Store _ ->
             Color.equal ic Color.Shared || Color.equal ic Color.Unsafe
           | _ -> false)
      in
      if visible then Hashtbl.replace pf.pf_barriers i.Instr.id ());
  pf

let plan_call t (caller : Infer.instance) (pf : pfunc) (i : Instr.t) =
  match Infer.call_site t.infer caller.Infer.key i.Instr.id with
  | None -> ()
  | Some callee_key ->
    let callee_inst =
      match
        Infer.find_instance t.infer callee_key.Infer.ik_func
          callee_key.Infer.ik_args
      with
      | Some ci -> ci
      | None -> assert false
    in
    let caller_cs = pf.pf_colorset in
    let callee_cs = colorset_list callee_inst in
    if callee_cs = [] then
      (* pure-F callee: replicated and executed inline in every chunk *)
      Hashtbl.replace pf.pf_calls i.Instr.id
        {
          cp_key = callee_key;
          cp_direct = [];
          cp_spawned = [];
          cp_leader = None;
          cp_ret_color = callee_inst.Infer.ret_color;
          cp_ret_to_msg = [];
          cp_f_args_to_spawned = false;
        }
    else begin
    let direct = List.filter (fun c -> List.mem c caller_cs) callee_cs in
    let spawned = List.filter (fun c -> not (List.mem c caller_cs)) callee_cs in
    let leader =
      if spawned = [] then None
      else match caller_cs with c :: _ -> Some c | [] -> Some Color.Free
    in
    (* Does a spawned chunk need an F argument *computed* by the caller?
       Constants are embedded in the code and replicate for free; only
       register-carried F arguments must travel in cont messages (§7.3.2). *)
    let args =
      match i.Instr.op with
      | Instr.Call (_, args) | Instr.Spawn (_, args) -> args
      | _ -> []
    in
    let f_args_to_spawned =
      spawned <> []
      && List.exists2
           (fun c arg ->
             Color.equal c Color.Free
             && match arg with Value.Reg _ -> true | _ -> false)
           callee_key.Infer.ik_args args
    in
    if f_args_to_spawned && Mode.equal t.mode Mode.Hardened then
      diag t Diagnostic.Cross_enclave_f caller.Infer.iname
        "call to %s: an F argument would cross into spawned chunks {%s}"
        (Infer.instance_name callee_key)
        (String.concat ","
           (List.map Color.to_string spawned));
    (* return value routing *)
    let ret_color = callee_inst.Infer.ret_color in
    let ret_to_msg =
      match Instr.defines i with
      | None -> []
      | Some id ->
        List.filter_map
          (fun ci ->
            if List.mem ci.ci_color direct then None
            else if chunk_uses ci.ci_func id then Some ci.ci_color
            else None)
          pf.pf_chunks
    in
    if ret_to_msg <> [] && Mode.equal t.mode Mode.Hardened then
      diag t Diagnostic.Cross_enclave_f caller.Infer.iname
        "call to %s: the return value would cross into chunks {%s}"
        (Infer.instance_name callee_key)
        (String.concat "," (List.map Color.to_string ret_to_msg));
    Hashtbl.replace pf.pf_calls i.Instr.id
      {
        cp_key = callee_key;
        cp_direct = direct;
        cp_spawned = spawned;
        cp_leader = leader;
        cp_ret_color = ret_color;
        cp_ret_to_msg = ret_to_msg;
        cp_f_args_to_spawned = f_args_to_spawned;
      }
    end

(* Structs whose fields do not all live in the same memory color (§7.2). *)
let multicolor_structs (m : Pmodule.t) : string list =
  List.filter_map
    (fun (s : Pmodule.struct_def) ->
      let colors =
        List.sort_uniq Color.compare
          (List.filter_map (fun (_, ty) -> Cenv.root_color ty) s.fields)
      in
      let uncolored =
        List.exists (fun (_, ty) -> Cenv.root_color ty = None) s.fields
      in
      match colors with
      | [] -> None
      | [ _ ] when not uncolored -> None
      | _ -> Some s.sname)
    (Pmodule.structs_sorted m)

let build ?(mode = Mode.Hardened) ?(auth_pointers = false) (infer : Infer.t) :
    t =
  let m = infer.Infer.m in
  let t =
    {
      mode;
      infer;
      pmodule = m;
      pfuncs = Hashtbl.create 16;
      entries = [];
      global_placement = [];
      shared_globals = [];
      multicolor_structs = multicolor_structs m;
      diagnostics = [];
      auth_pointers;
      spawn_targets_cache = Hashtbl.create 8;
    }
  in
  (* chunks for every instance *)
  List.iter
    (fun inst ->
      Hashtbl.replace t.pfuncs inst.Infer.key (build_pfunc t inst))
    (Infer.instances infer);
  (* call plans (need every pfunc built first) *)
  List.iter
    (fun inst ->
      let pf = Hashtbl.find t.pfuncs inst.Infer.key in
      Func.iter_instrs inst.Infer.func (fun _ i ->
          match i.Instr.op with
          | Instr.Call _ | Instr.Spawn _ -> plan_call t inst pf i
          | _ -> ()))
    (Infer.instances infer);
  (* global placement (§7.1) *)
  let placement =
    List.map
      (fun (g : Pmodule.global) ->
        (g.Pmodule.gname, Cenv.global_color mode g))
      (Pmodule.globals_sorted m)
  in
  let shared =
    List.filter_map
      (fun (name, c) ->
        if Color.equal c Color.Shared then Some name else None)
      placement
  in
  (* entry interfaces (§7.3.4) *)
  let entries =
    List.filter_map
      (fun name ->
        match Pmodule.find_func m name with
        | None -> None
        | Some f ->
          let args =
            List.map
              (fun (_, pty) ->
                match Cenv.root_color pty with
                | Some c when not (Ty.is_pointer pty) -> c
                | _ -> Mode.entry_color mode)
              f.Func.params
          in
          let key = { Infer.ik_func = name; ik_args = args } in
          (match Hashtbl.find_opt t.pfuncs key with
          | None -> None
          | Some pf ->
            let direct =
              if List.mem Color.Unsafe pf.pf_colorset then Color.Unsafe
              else Color.Free
            in
            let spawned =
              List.filter
                (fun c -> not (Color.equal c direct))
                pf.pf_colorset
            in
            Some { ep_name = name; ep_key = key; ep_spawned = spawned;
                   ep_direct = direct }))
      (List.sort_uniq String.compare (Pmodule.entry_points m))
  in
  let t =
    { t with global_placement = placement; shared_globals = shared; entries }
  in
  t.diagnostics <- List.rev t.diagnostics;
  t

(* §8 extension: the set of chunk names that may legitimately be spawned
   into each partition — from call plans, entry interfaces, and thread
   spawns. The runtime rejects any other spawn message. *)
let valid_spawn_targets t (color : Color.t) : string list =
  match Hashtbl.find_opt t.spawn_targets_cache (Color.to_string color) with
  | Some l -> l
  | None ->
    let acc = ref [] in
    let add key c =
      if Color.equal c color then acc := Chunk.chunk_name key c :: !acc
    in
    Hashtbl.iter
      (fun _ (pf : pfunc) ->
        Hashtbl.iter
          (fun _ (cp : call_plan) -> List.iter (add cp.cp_key) cp.cp_spawned)
          pf.pf_calls)
      t.pfuncs;
    List.iter
      (fun (ep : entry_plan) -> List.iter (add ep.ep_key) ep.ep_spawned)
      t.entries;
    (* thread spawns start every chunk of the target instance; only sites
       whose instruction is an actual [spawn] count *)
    Hashtbl.iter
      (fun ((caller_key : Infer.instance_key), instr_id) callee_key ->
        let is_spawn =
          match
            Infer.find_instance t.infer caller_key.Infer.ik_func
              caller_key.Infer.ik_args
          with
          | None -> false
          | Some inst ->
            let found = ref false in
            Func.iter_instrs inst.Infer.func (fun _ i ->
                if i.Instr.id = instr_id then
                  match i.Instr.op with
                  | Instr.Spawn _ -> found := true
                  | _ -> ());
            !found
        in
        if is_spawn then
          match Hashtbl.find_opt t.pfuncs callee_key with
          | Some pf ->
            List.iter (add callee_key)
              (if pf.pf_colorset = [] then [ Color.Free ] else pf.pf_colorset)
          | None -> ())
      t.infer.Infer.call_sites;
    let l = List.sort_uniq String.compare !acc in
    Hashtbl.replace t.spawn_targets_cache (Color.to_string color) l;
    l

let spawn_allowed t color chunk_name =
  List.exists (String.equal chunk_name) (valid_spawn_targets t color)

let find_pfunc t key = Hashtbl.find_opt t.pfuncs key

let find_chunk pf color =
  List.find_opt (fun ci -> Color.equal ci.ci_color color) pf.pf_chunks

let ok t = t.diagnostics = []

let pp fmt t =
  Format.fprintf fmt "partition plan (%a)@." Mode.pp t.mode;
  Hashtbl.fold (fun k pf acc -> (k, pf) :: acc) t.pfuncs []
  |> List.sort (fun (a, _) (b, _) ->
         String.compare (Infer.instance_name a) (Infer.instance_name b))
  |> List.iter (fun (_, pf) ->
         Format.fprintf fmt "  %s: chunks [%s]@."
           (Infer.instance_name pf.pf_key)
           (String.concat "; "
              (List.map
                 (fun ci ->
                   Printf.sprintf "%s(%d instrs)"
                     (Color.to_string ci.ci_color)
                     (Func.instr_count ci.ci_func))
                 pf.pf_chunks)));
  List.iter
    (fun (name, c) ->
      Format.fprintf fmt "  global @%s -> %s@." name (Color.to_string c))
    t.global_placement;
  List.iter (fun d -> Format.fprintf fmt "  %a@." Diagnostic.pp d) t.diagnostics
