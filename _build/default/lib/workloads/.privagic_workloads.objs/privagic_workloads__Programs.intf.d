lib/workloads/programs.mli:
