lib/workloads/programs.ml: Array List Printf Str_replace String
