lib/workloads/ycsb.mli:
