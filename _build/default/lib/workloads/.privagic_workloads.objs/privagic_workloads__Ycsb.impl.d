lib/workloads/ycsb.ml: Bytes Char Int64 List
