lib/workloads/str_replace.ml: Buffer String
