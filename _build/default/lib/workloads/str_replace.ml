(* Literal (non-regex) substring replacement, used by the program template
   substitution. *)

let replace_all (s : string) ~(pattern : string) ~(with_ : string) : string =
  let plen = String.length pattern in
  if plen = 0 then s
  else begin
    let buf = Buffer.create (String.length s) in
    let n = String.length s in
    let i = ref 0 in
    while !i < n do
      if !i + plen <= n && String.equal (String.sub s !i plen) pattern then begin
        Buffer.add_string buf with_;
        i := !i + plen
      end
      else begin
        Buffer.add_char buf s.[!i];
        incr i
      end
    done;
    Buffer.contents buf
  end
