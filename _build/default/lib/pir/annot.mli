(** Function-level annotations (paper §6.2–§6.4). *)

type t =
  | Entry
      (** analysis entry point: callable from the untrusted world; its
          arguments take the mode's entry color *)
  | Within
      (** an external function also linked inside every enclave (the
          paper's mini-libc: malloc, memcpy, ...): a call with a colored
          argument executes inside that enclave, and every argument —
          including pointees — must be compatible with it *)
  | Ignore
      (** like [Within] but incompatible arguments are ignored rather than
          rejected: the classify/declassify escape hatch of §6.4 *)

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
