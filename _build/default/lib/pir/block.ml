(* A basic block: a label, a straight-line instruction list, and one
   terminator. Blocks are mutable because the passes (mem2reg, DCE, the
   partitioner) rewrite them in place. *)

type t = {
  label : string;
  mutable instrs : Instr.t list;
  mutable term : Instr.term;
}

let make ?(instrs = []) ?(term = Instr.Unreachable) label =
  { label; instrs; term }

let successors b =
  match b.term with
  | Instr.Br l -> [ l ]
  | Instr.Condbr (_, t, f) -> if String.equal t f then [ t ] else [ t; f ]
  | Instr.Ret _ | Instr.Unreachable -> []

let append b i = b.instrs <- b.instrs @ [ i ]

let pp fmt b =
  Format.fprintf fmt "%s:@." b.label;
  List.iter (fun i -> Format.fprintf fmt "  %a@." Instr.pp i) b.instrs;
  Format.fprintf fmt "  %a@." Instr.pp_term b.term
