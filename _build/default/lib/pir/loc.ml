(* Source locations carried from the mini-C frontend into PIR so that
   secure-typing diagnostics can point back at the offending source line. *)

type t = { file : string; line : int; col : int }

let none = { file = "<none>"; line = 0; col = 0 }

let make ~file ~line ~col = { file; line; col }

let is_none l = l.line = 0 && l.col = 0

let pp fmt l =
  if is_none l then Format.pp_print_string fmt "<no loc>"
  else Format.fprintf fmt "%s:%d:%d" l.file l.line l.col

let to_string l = Format.asprintf "%a" pp l
