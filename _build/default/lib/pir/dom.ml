type t = {
  root : string;
  idom : (string, string) Hashtbl.t; (* absent for the root *)
  nodes : string list;
  succs : string -> string list;
  preds : string -> string list;
}

(* Iterative dominator computation (Cooper, Harvey, Kennedy: "A Simple, Fast
   Dominance Algorithm"). Works on any graph given entry, nodes in reverse
   postorder, and a predecessor function. *)
let compute ~root ~order ~preds ~succs =
  let rpo_index = Hashtbl.create 16 in
  List.iteri (fun i n -> Hashtbl.replace rpo_index n i) order;
  let idom = Hashtbl.create 16 in
  Hashtbl.replace idom root root;
  let intersect a b =
    let a = ref a and b = ref b in
    while not (String.equal !a !b) do
      while Hashtbl.find rpo_index !a > Hashtbl.find rpo_index !b do
        a := Hashtbl.find idom !a
      done;
      while Hashtbl.find rpo_index !b > Hashtbl.find rpo_index !a do
        b := Hashtbl.find idom !b
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun n ->
        if not (String.equal n root) then begin
          let processed_preds =
            List.filter
              (fun p -> Hashtbl.mem idom p && Hashtbl.mem rpo_index p)
              (preds n)
          in
          match processed_preds with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if
              (not (Hashtbl.mem idom n))
              || not (String.equal (Hashtbl.find idom n) new_idom)
            then begin
              Hashtbl.replace idom n new_idom;
              changed := true
            end
        end)
      order
  done;
  Hashtbl.remove idom root;
  { root; idom; nodes = order; succs; preds }

let dominators (g : Cfg.t) =
  let order = Cfg.reverse_postorder g in
  match order with
  | [] -> invalid_arg "Dom.dominators: empty CFG"
  | root :: _ ->
    compute ~root ~order
      ~preds:(fun n -> Cfg.predecessors g n)
      ~succs:(fun n -> Cfg.successors g n)

let virtual_exit = "<exit>"

let postdominators (g : Cfg.t) =
  let exits = Cfg.exits g in
  (* Reversed graph rooted at a virtual exit joined to every return block. *)
  let succs n =
    if String.equal n virtual_exit then exits else Cfg.predecessors g n
  in
  let preds n =
    let from_exits =
      if List.exists (String.equal n) exits then [ virtual_exit ] else []
    in
    from_exits @ Cfg.successors g n
  in
  (* Reverse postorder of the reversed graph. *)
  let visited = Hashtbl.create 16 in
  let post = ref [] in
  let rec dfs n =
    if not (Hashtbl.mem visited n) then begin
      Hashtbl.add visited n ();
      List.iter dfs (succs n);
      post := n :: !post
    end
  in
  dfs virtual_exit;
  compute ~root:virtual_exit ~order:!post ~preds ~succs

let idom t n =
  match Hashtbl.find_opt t.idom n with
  | Some d when String.equal d virtual_exit -> None
  | other -> other

(* a dominates b iff walking b's idom chain reaches a (reflexive). *)
let dominates t a b =
  let rec walk n =
    String.equal a n
    || match Hashtbl.find_opt t.idom n with None -> false | Some d -> walk d
  in
  walk b

(* Standard dominance-frontier construction from the idom tree: for every
   join node y (>= 2 predecessors), walk each predecessor's idom chain up to
   (but excluding) idom(y); every node passed gets y in its frontier. *)
let frontier t n =
  let df = ref [] in
  let add y = if not (List.mem y !df) then df := y :: !df in
  List.iter
    (fun y ->
      let preds = t.preds y in
      if List.length preds >= 2 then
        let stop = Hashtbl.find_opt t.idom y in
        List.iter
          (fun p ->
            let rec walk runner =
              let at_stop =
                match stop with
                | Some s -> String.equal runner s
                | None -> false
              in
              if not at_stop then begin
                if String.equal runner n then add y;
                match Hashtbl.find_opt t.idom runner with
                | Some d -> walk d
                | None -> ()
              end
            in
            walk p)
          preds)
    t.nodes;
  !df

let influence_region (g : Cfg.t) pdom branch =
  let join = idom pdom branch in
  let stop label =
    match join with Some j -> String.equal label j | None -> false
  in
  let visited = Hashtbl.create 16 in
  let acc = ref [] in
  let rec walk label =
    if (not (Hashtbl.mem visited label)) && not (stop label) then begin
      Hashtbl.add visited label ();
      acc := label :: !acc;
      List.iter walk (Cfg.successors g label)
    end
  in
  List.iter walk (Cfg.successors g branch);
  List.filter (fun l -> not (String.equal l branch)) !acc
