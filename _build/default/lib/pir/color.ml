type t =
  | Free
  | Unsafe
  | Shared
  | Named of string

let equal a b =
  match a, b with
  | Free, Free | Unsafe, Unsafe | Shared, Shared -> true
  | Named x, Named y -> String.equal x y
  | (Free | Unsafe | Shared | Named _), _ -> false

let rank = function Free -> 0 | Unsafe -> 1 | Shared -> 2 | Named _ -> 3

let compare a b =
  match a, b with
  | Named x, Named y -> String.compare x y
  | _ -> Int.compare (rank a) (rank b)

let compatible a b = equal a b || equal a Free || equal b Free

let is_enclave = function Named _ -> true | Free | Unsafe | Shared -> false

let to_string = function
  | Free -> "F"
  | Unsafe -> "U"
  | Shared -> "S"
  | Named s -> s

let pp fmt c = Format.pp_print_string fmt (to_string c)

module Ord = struct
  type nonrec t = t
  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
