type binop =
  | Add | Sub | Mul | Sdiv | Srem
  | And | Or | Xor | Shl | Ashr
  | Fadd | Fsub | Fmul | Fdiv

type icmp = Eq | Ne | Slt | Sle | Sgt | Sge

type castop =
  | Bitcast
  | Zext
  | Trunc
  | Sitofp
  | Fptosi
  | Ptrtoint
  | Inttoptr

type gep_step = Field of int | Index of Value.t

type op =
  | Alloca of Ty.t
  | Load of Value.t
  | Store of Value.t * Value.t
  | Binop of binop * Value.t * Value.t
  | Icmp of icmp * Value.t * Value.t
  | Fcmp of icmp * Value.t * Value.t
  | Cast of castop * Value.t * Ty.t
  | Gep of Ty.t * Value.t * gep_step list
  | Call of string * Value.t list
  | Callind of Value.t * Value.t list
  | Phi of (string * Value.t) list
  | Select of Value.t * Value.t * Value.t
  | Spawn of string * Value.t list

type t = { id : int; ty : Ty.t; op : op; loc : Loc.t }

type term =
  | Br of string
  | Condbr of Value.t * string * string
  | Ret of Value.t option
  | Unreachable

let make ?(loc = Loc.none) ~id ~ty op = { id; ty; op; loc }

let operands i =
  match i.op with
  | Alloca _ -> []
  | Load p -> [ p ]
  | Store (v, p) -> [ v; p ]
  | Binop (_, a, b) | Icmp (_, a, b) | Fcmp (_, a, b) -> [ a; b ]
  | Cast (_, v, _) -> [ v ]
  | Gep (_, base, steps) ->
    base
    :: List.filter_map
         (function Field _ -> None | Index v -> Some v)
         steps
  | Call (_, args) -> args
  | Callind (f, args) -> f :: args
  | Phi entries -> List.map snd entries
  | Select (c, a, b) -> [ c; a; b ]
  | Spawn (_, args) -> args

let uses i = List.concat_map Value.regs (operands i)

let term_uses = function
  | Br _ | Unreachable | Ret None -> []
  | Condbr (c, _, _) -> Value.regs c
  | Ret (Some v) -> Value.regs v

let defines i =
  match i.op with
  | Store _ -> None
  | Call _ | Callind _ when Ty.equal i.ty Ty.void -> None
  | _ -> Some i.id

let has_side_effect i =
  match i.op with
  | Store _ | Call _ | Callind _ | Spawn _ -> true
  | _ -> false

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Sdiv -> "sdiv"
  | Srem -> "srem" | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Ashr -> "ashr"
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"

let icmp_name = function
  | Eq -> "eq" | Ne -> "ne" | Slt -> "slt" | Sle -> "sle"
  | Sgt -> "sgt" | Sge -> "sge"

let castop_name = function
  | Bitcast -> "bitcast" | Zext -> "zext" | Trunc -> "trunc"
  | Sitofp -> "sitofp" | Fptosi -> "fptosi"
  | Ptrtoint -> "ptrtoint" | Inttoptr -> "inttoptr"

let pp_args fmt args =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
    Value.pp fmt args

let pp fmt i =
  let def fmt = Format.fprintf fmt "%%%d = " i.id in
  match i.op with
  | Alloca ty -> Format.fprintf fmt "%t alloca %a" def Ty.pp ty
  | Load p -> Format.fprintf fmt "%t load %a, %a" def Ty.pp i.ty Value.pp p
  | Store (v, p) -> Format.fprintf fmt "store %a, %a" Value.pp v Value.pp p
  | Binop (op, a, b) ->
    Format.fprintf fmt "%t %s %a, %a" def (binop_name op) Value.pp a Value.pp b
  | Icmp (op, a, b) ->
    Format.fprintf fmt "%t icmp %s %a, %a" def (icmp_name op) Value.pp a
      Value.pp b
  | Fcmp (op, a, b) ->
    Format.fprintf fmt "%t fcmp %s %a, %a" def (icmp_name op) Value.pp a
      Value.pp b
  | Cast (op, v, ty) ->
    Format.fprintf fmt "%t %s %a to %a" def (castop_name op) Value.pp v Ty.pp
      ty
  | Gep (ty, base, steps) ->
    let pp_step fmt = function
      | Field k -> Format.fprintf fmt "field %d" k
      | Index v -> Format.fprintf fmt "index %a" Value.pp v
    in
    Format.fprintf fmt "%t gep %a, %a [%a]" def Ty.pp ty Value.pp base
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         pp_step)
      steps
  | Call (f, args) ->
    if Ty.equal i.ty Ty.void then
      Format.fprintf fmt "call @%s(%a)" f pp_args args
    else Format.fprintf fmt "%t call %a @%s(%a)" def Ty.pp i.ty f pp_args args
  | Callind (f, args) ->
    if Ty.equal i.ty Ty.void then
      Format.fprintf fmt "callind %a(%a)" Value.pp f pp_args args
    else
      Format.fprintf fmt "%t callind %a %a(%a)" def Ty.pp i.ty Value.pp f
        pp_args args
  | Phi entries ->
    let pp_entry fmt (label, v) =
      Format.fprintf fmt "[%a, %%%s]" Value.pp v label
    in
    Format.fprintf fmt "%t phi %a" def
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         pp_entry)
      entries
  | Select (c, a, b) ->
    Format.fprintf fmt "%t select %a, %a, %a" def Value.pp c Value.pp a
      Value.pp b
  | Spawn (f, args) -> Format.fprintf fmt "spawn @%s(%a)" f pp_args args

let pp_term fmt = function
  | Br label -> Format.fprintf fmt "br %%%s" label
  | Condbr (c, t, f) ->
    Format.fprintf fmt "br %a, %%%s, %%%s" Value.pp c t f
  | Ret None -> Format.pp_print_string fmt "ret void"
  | Ret (Some v) -> Format.fprintf fmt "ret %a" Value.pp v
  | Unreachable -> Format.pp_print_string fmt "unreachable"
