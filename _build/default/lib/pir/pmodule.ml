(* A PIR module: struct definitions, globals, function definitions, and
   external declarations — the equivalent of the whole-program LLVM bitcode
   file Privagic takes as input (paper §5, Figure 5). *)

type struct_def = { sname : string; fields : (string * Ty.t) list }

type global = {
  gname : string;
  gty : Ty.t;                     (* may carry a color *)
  ginit : Value.t option;
  gloc : Loc.t;
}

type extern_decl = {
  ename : string;
  esig : Ty.t;                    (* Fun type *)
  eannots : Annot.t list;
}

type t = {
  structs : (string, struct_def) Hashtbl.t;
  globals : (string, global) Hashtbl.t;
  funcs : (string, Func.t) Hashtbl.t;
  externs : (string, extern_decl) Hashtbl.t;
  mutable entry_points : string list;
      (* explicit entry points; empty means "every function" (library mode) *)
}

let create () =
  {
    structs = Hashtbl.create 16;
    globals = Hashtbl.create 16;
    funcs = Hashtbl.create 16;
    externs = Hashtbl.create 16;
    entry_points = [];
  }

let add_struct m (s : struct_def) = Hashtbl.replace m.structs s.sname s

let find_struct m name = Hashtbl.find_opt m.structs name

let find_struct_exn m name =
  match find_struct m name with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Pmodule.find_struct: %%%s" name)

let field_index m sname fname =
  let s = find_struct_exn m sname in
  let rec go k = function
    | [] ->
      invalid_arg (Printf.sprintf "Pmodule.field_index: %%%s.%s" sname fname)
    | (f, _) :: rest -> if String.equal f fname then k else go (k + 1) rest
  in
  go 0 s.fields

let field_ty m sname k =
  let s = find_struct_exn m sname in
  match List.nth_opt s.fields k with
  | Some (_, ty) -> ty
  | None ->
    invalid_arg (Printf.sprintf "Pmodule.field_ty: %%%s has no field %d" sname k)

let add_global m (g : global) = Hashtbl.replace m.globals g.gname g

let find_global m name = Hashtbl.find_opt m.globals name

let add_func m (f : Func.t) = Hashtbl.replace m.funcs f.Func.name f

let find_func m name = Hashtbl.find_opt m.funcs name

let find_func_exn m name =
  match find_func m name with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Pmodule.find_func: @%s" name)

let add_extern m (e : extern_decl) = Hashtbl.replace m.externs e.ename e

let find_extern m name = Hashtbl.find_opt m.externs name

let is_defined m name = Hashtbl.mem m.funcs name

(* Entry points for the analysis (paper §6.2): the explicit list if the
   developer gave one, otherwise every defined function (the conservative
   "any extern function may be called from another project" default). *)
let entry_points m =
  match m.entry_points with
  | [] -> Hashtbl.fold (fun name _ acc -> name :: acc) m.funcs []
  | l -> l

let set_entry_points m l = m.entry_points <- l

let struct_field_tys m name =
  List.map snd (find_struct_exn m name).fields

let sizeof m ty = Ty.sizeof ~structs:(struct_field_tys m) ty

(* Byte offset of field [k] inside struct [sname]. *)
let field_offset m sname k =
  let s = find_struct_exn m sname in
  let rec go off i = function
    | [] -> invalid_arg "Pmodule.field_offset"
    | (_, ty) :: rest ->
      if i = k then off else go (off + sizeof m ty) (i + 1) rest
  in
  go 0 0 s.fields

let iter_funcs m fn = Hashtbl.iter (fun _ f -> fn f) m.funcs

let funcs_sorted m =
  Hashtbl.fold (fun _ f acc -> f :: acc) m.funcs []
  |> List.sort (fun (a : Func.t) b -> String.compare a.name b.name)

let globals_sorted m =
  Hashtbl.fold (fun _ g acc -> g :: acc) m.globals []
  |> List.sort (fun a b -> String.compare a.gname b.gname)

let structs_sorted m =
  Hashtbl.fold (fun _ s acc -> s :: acc) m.structs []
  |> List.sort (fun a b -> String.compare a.sname b.sname)

let externs_sorted m =
  Hashtbl.fold (fun _ e acc -> e :: acc) m.externs []
  |> List.sort (fun a b -> String.compare a.ename b.ename)

let pp fmt m =
  List.iter
    (fun s ->
      Format.fprintf fmt "%%%s = type { %a }@." s.sname
        (Format.pp_print_list
           ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
           (fun fmt (n, ty) -> Format.fprintf fmt "%s: %a" n Ty.pp ty))
        s.fields)
    (structs_sorted m);
  List.iter
    (fun g ->
      Format.fprintf fmt "@%s = global %a%s@." g.gname Ty.pp g.gty
        (match g.ginit with
        | None -> ""
        | Some v -> " " ^ Value.to_string v))
    (globals_sorted m);
  List.iter
    (fun e ->
      Format.fprintf fmt "declare @%s : %a%s@." e.ename Ty.pp e.esig
        (match e.eannots with
        | [] -> ""
        | l -> " " ^ String.concat " " (List.map Annot.to_string l)))
    (externs_sorted m);
  List.iter (fun f -> Func.pp fmt f) (funcs_sorted m)

let to_string m = Format.asprintf "%a" pp m
