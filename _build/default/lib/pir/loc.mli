(** Source locations, threaded from the mini-C frontend into PIR so that
    secure-typing diagnostics point back at the offending source line. *)

type t = { file : string; line : int; col : int }

val none : t
val make : file:string -> line:int -> col:int -> t
val is_none : t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
