(** PIR instructions and terminators. *)

type binop =
  | Add | Sub | Mul | Sdiv | Srem
  | And | Or | Xor | Shl | Ashr
  | Fadd | Fsub | Fmul | Fdiv

type icmp = Eq | Ne | Slt | Sle | Sgt | Sge

type castop =
  | Bitcast          (** pointer-to-pointer reinterpretation *)
  | Zext             (** i1/i8 -> i64 *)
  | Trunc            (** i64 -> i8/i1 *)
  | Sitofp
  | Fptosi
  | Ptrtoint
  | Inttoptr

(** GEP-style address computation steps. [Field i] selects struct field [i];
    [Index v] scales by the element size of an array/pointer. *)
type gep_step = Field of int | Index of Value.t

type op =
  | Alloca of Ty.t                       (** stack slot; result is a pointer *)
  | Load of Value.t                      (** load from pointer operand *)
  | Store of Value.t * Value.t           (** [Store (v, p)] stores [v] at [p] *)
  | Binop of binop * Value.t * Value.t
  | Icmp of icmp * Value.t * Value.t
  | Fcmp of icmp * Value.t * Value.t
  | Cast of castop * Value.t * Ty.t
  | Gep of Ty.t * Value.t * gep_step list
      (** [Gep (pointee_ty, base, steps)]: address arithmetic rooted at
          [base], whose pointee type is [pointee_ty]. *)
  | Call of string * Value.t list
  | Callind of Value.t * Value.t list    (** indirect call through a pointer *)
  | Phi of (string * Value.t) list       (** one entry per CFG predecessor *)
  | Select of Value.t * Value.t * Value.t
  | Spawn of string * Value.t list
      (** start a new application thread running the named function
          (mini-C [spawn f(args)]; pthread_create in the paper's C) *)

(** An instruction writes SSA register [id] (ignored when [ty] is void). *)
type t = { id : int; ty : Ty.t; op : op; loc : Loc.t }

type term =
  | Br of string
  | Condbr of Value.t * string * string
  | Ret of Value.t option
  | Unreachable

val make : ?loc:Loc.t -> id:int -> ty:Ty.t -> op -> t

(** Operand values read by the instruction. *)
val operands : t -> Value.t list

(** Registers read by the instruction. *)
val uses : t -> int list

(** Registers read by a terminator. *)
val term_uses : term -> int list

(** [defines i] is [Some i.id] when the instruction produces a value. *)
val defines : t -> int option

(** Whether the instruction has an effect observable outside the thread
    (store to memory or any call): these are never dead-code-eliminated and
    order-sensitive ones need synchronization barriers when partitioned. *)
val has_side_effect : t -> bool

val pp : Format.formatter -> t -> unit
val pp_term : Format.formatter -> term -> unit
