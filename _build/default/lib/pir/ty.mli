(** PIR types.

    PIR is a small LLVM-like typed IR. A type carries an optional color
    qualifier, mirroring the paper's secure types: [int color(blue)] in
    mini-C becomes [{ desc = I64; color = Some (Named "blue") }].

    The color qualifies the *memory location* described by the type: for a
    global, an alloca, or a struct field, it says in which enclave the
    location lives. A pointer type [Ptr t] whose pointee [t] is colored is a
    "pointer to blue" (paper rule 4). *)

type t = { desc : desc; color : Color.t option }

and desc =
  | Void
  | I1                       (** booleans / icmp results *)
  | I8                       (** bytes, chars *)
  | I64                      (** the only integer width mini-C exposes *)
  | F64
  | Ptr of t
  | Arr of t * int
  | Struct of string         (** reference to a named struct definition *)
  | Fun of t * t list        (** return type, parameter types *)

(** Uncolored constructors. *)

val void : t
val i1 : t
val i8 : t
val i64 : t
val f64 : t
val ptr : t -> t
val arr : t -> int -> t
val struct_ : string -> t
val fun_ : t -> t list -> t

(** [colored c t] is [t] requalified with color [c]. *)
val colored : Color.t -> t -> t

(** [color_of t] is the declared color, or [None]. *)
val color_of : t -> Color.t option

(** Structural equality. [ignore_color] (default [false]) compares the bare
    shapes, which is what load/store well-formedness uses; the secure type
    system separately enforces color agreement. *)
val equal : ?ignore_color:bool -> t -> t -> bool

(** [deref t] is the pointee of a pointer type.
    @raise Invalid_argument if [t] is not a pointer. *)
val deref : t -> t

val is_pointer : t -> bool
val is_integer : t -> bool
val is_float : t -> bool

(** [sizeof ~structs t] is the byte size used by the VM heap and the cache
    model. [structs] resolves named struct references to their field lists. *)
val sizeof : structs:(string -> t list) -> t -> int

val pp : Format.formatter -> t -> unit
val to_string : t -> string
