(* A PIR function. Parameters occupy SSA registers [0 .. arity-1]; the
   instruction stream allocates registers from [next_reg] upward. Parameter
   types may carry colors (explicit secure types on arguments). *)

type t = {
  name : string;
  params : (string * Ty.t) list;
  ret : Ty.t;
  mutable blocks : Block.t list;
  annots : Annot.t list;
  mutable next_reg : int;
}

let make ?(annots = []) ~name ~params ~ret () =
  { name; params; ret; blocks = []; annots; next_reg = List.length params }

let arity f = List.length f.params

let fresh_reg f =
  let r = f.next_reg in
  f.next_reg <- r + 1;
  r

let entry_block f =
  match f.blocks with
  | [] -> invalid_arg (Printf.sprintf "Func.entry_block: %s has no blocks" f.name)
  | b :: _ -> b

let find_block f label =
  List.find_opt (fun (b : Block.t) -> String.equal b.label label) f.blocks

let find_block_exn f label =
  match find_block f label with
  | Some b -> b
  | None ->
    invalid_arg (Printf.sprintf "Func.find_block: no block %%%s in %s" label f.name)

let has_annot f a = List.exists (Annot.equal a) f.annots

let iter_instrs f fn =
  List.iter (fun (b : Block.t) -> List.iter (fn b) b.instrs) f.blocks

let fold_instrs f fn acc =
  List.fold_left
    (fun acc (b : Block.t) ->
      List.fold_left (fun acc i -> fn acc b i) acc b.instrs)
    acc f.blocks

let instr_count f = fold_instrs f (fun n _ _ -> n + 1) 0

(* Signature as a function type, colors included. *)
let signature f = Ty.fun_ f.ret (List.map snd f.params)

let pp fmt f =
  let pp_param fmt (name, ty) = Format.fprintf fmt "%a %%%s" Ty.pp ty name in
  Format.fprintf fmt "define %a @%s(%a)%s {@." Ty.pp f.ret f.name
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
       pp_param)
    f.params
    (match f.annots with
    | [] -> ""
    | l -> " " ^ String.concat " " (List.map Annot.to_string l));
  List.iter (fun b -> Block.pp fmt b) f.blocks;
  Format.fprintf fmt "}@."
