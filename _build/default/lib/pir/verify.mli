(** Structural well-formedness checks for PIR modules, run after the
    frontend and after every rewriting pass: unique register definitions,
    uses of defined registers, existing branch targets, phi/predecessor
    agreement, call arities, known globals. A violation is a compiler bug,
    not a user error. *)

val check_func : Pmodule.t -> Func.t -> string list
val check_module : Pmodule.t -> (unit, string list) result

exception Invalid of string list

val check_module_exn : Pmodule.t -> unit
