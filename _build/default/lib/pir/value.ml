type t =
  | Reg of int
  | Int of int64 * Ty.t
  | Float of float
  | Str of string
  | Global of string
  | Func of string
  | Null of Ty.t
  | Undef of Ty.t

let reg i = Reg i
let int_ i = Int (i, Ty.i64)
let of_int i = Int (Int64.of_int i, Ty.i64)
let bool_ b = Int ((if b then 1L else 0L), Ty.i1)
let i8_ c = Int (Int64.of_int c, Ty.i8)
let float_ f = Float f

let equal a b =
  match a, b with
  | Reg x, Reg y -> x = y
  | Int (x, tx), Int (y, ty) -> Int64.equal x y && Ty.equal tx ty
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | Global x, Global y | Func x, Func y -> String.equal x y
  | Null tx, Null ty | Undef tx, Undef ty -> Ty.equal tx ty
  | (Reg _ | Int _ | Float _ | Str _ | Global _ | Func _ | Null _ | Undef _), _
    -> false

let regs = function Reg i -> [ i ] | _ -> []

let pp fmt = function
  | Reg i -> Format.fprintf fmt "%%%d" i
  | Int (i, ty) ->
    if Ty.equal ty Ty.i1 then
      Format.pp_print_string fmt (if Int64.equal i 0L then "false" else "true")
    else Format.fprintf fmt "%Ld" i
  | Float f -> Format.fprintf fmt "%g" f
  | Str s -> Format.fprintf fmt "%S" s
  | Global g -> Format.fprintf fmt "@%s" g
  | Func f -> Format.fprintf fmt "@%s" f
  | Null _ -> Format.pp_print_string fmt "null"
  | Undef _ -> Format.pp_print_string fmt "undef"

let to_string v = Format.asprintf "%a" pp v
