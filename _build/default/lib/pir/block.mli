(** Basic blocks: a label, a straight-line instruction list, and one
    terminator. Mutable because the rewriting passes (mem2reg, DCE, the
    partitioner) edit them in place. *)

type t = {
  label : string;
  mutable instrs : Instr.t list;
  mutable term : Instr.term;
}

(** [make label] creates an empty block terminated by [Unreachable] (the
    builder replaces it). *)
val make : ?instrs:Instr.t list -> ?term:Instr.term -> string -> t

(** Labels this block can branch to (deduplicated). *)
val successors : t -> string list

val append : t -> Instr.t -> unit
val pp : Format.formatter -> t -> unit
