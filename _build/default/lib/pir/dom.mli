(** Dominators and postdominators.

    The mem2reg pass needs dominance to place phi nodes; the implicit-leak
    rule (paper Rule 4, Fig. 4) needs postdominance to find the join point of
    a conditional branch on a colored value: the blocks that are control
    dependent on the branch — i.e. between the branch and its immediate
    postdominator — inherit the branch color. *)

type t

(** Dominator tree of the function's CFG (iterative Cooper–Harvey–Kennedy). *)
val dominators : Cfg.t -> t

(** Postdominator tree: dominators of the reversed CFG with a virtual exit
    connecting every return block. *)
val postdominators : Cfg.t -> t

(** [idom t label] is the immediate (post)dominator, [None] for the root
    (or the virtual exit). *)
val idom : t -> string -> string option

(** [dominates t a b]: does [a] (post)dominate [b]? Reflexive. *)
val dominates : t -> string -> string -> bool

(** Dominance frontier of a block (only meaningful for forward dominators). *)
val frontier : t -> string -> string list

(** [influence_region cfg pdom branch]: the blocks control-dependent on the
    terminator of [branch] — every block on a path from a successor of
    [branch] to [branch]'s immediate postdominator, exclusive of the join
    point itself. This is the region Rule 4 colors. *)
val influence_region : Cfg.t -> t -> string -> string list
