lib/pir/ty.mli: Color Format
