lib/pir/dom.mli: Cfg
