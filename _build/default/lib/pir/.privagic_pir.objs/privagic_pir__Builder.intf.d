lib/pir/builder.mli: Func Instr Loc Pmodule Ty Value
