lib/pir/annot.ml: Format
