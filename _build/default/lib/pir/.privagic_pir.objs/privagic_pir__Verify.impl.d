lib/pir/verify.ml: Block Cfg Format Func Hashtbl Instr List Option Pmodule Printf String Ty Value
