lib/pir/pmodule.mli: Annot Format Func Hashtbl Loc Ty Value
