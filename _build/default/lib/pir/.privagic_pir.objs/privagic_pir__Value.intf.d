lib/pir/value.mli: Format Ty
