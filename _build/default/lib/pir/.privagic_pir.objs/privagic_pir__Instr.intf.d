lib/pir/instr.mli: Format Loc Ty Value
