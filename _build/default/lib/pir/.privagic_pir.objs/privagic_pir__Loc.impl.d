lib/pir/loc.ml: Format
