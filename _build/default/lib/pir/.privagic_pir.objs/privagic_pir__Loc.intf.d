lib/pir/loc.mli: Format
