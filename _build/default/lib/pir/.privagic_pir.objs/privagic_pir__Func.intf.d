lib/pir/func.mli: Annot Block Format Instr Ty
