lib/pir/color.mli: Format Map Set
