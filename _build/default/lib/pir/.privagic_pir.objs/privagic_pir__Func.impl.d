lib/pir/func.ml: Annot Block Format List Printf String Ty
