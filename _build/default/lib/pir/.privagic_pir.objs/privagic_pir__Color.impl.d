lib/pir/color.ml: Format Int Map Set String
