lib/pir/dom.ml: Cfg Hashtbl List String
