lib/pir/ty.ml: Color Format List String
