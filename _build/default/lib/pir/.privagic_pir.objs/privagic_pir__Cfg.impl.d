lib/pir/cfg.ml: Block Func Hashtbl Instr List Map Option String
