lib/pir/value.ml: Float Format Int64 String Ty
