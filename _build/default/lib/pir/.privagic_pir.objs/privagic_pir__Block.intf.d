lib/pir/block.mli: Format Instr
