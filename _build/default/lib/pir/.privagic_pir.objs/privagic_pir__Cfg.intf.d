lib/pir/cfg.mli: Func
