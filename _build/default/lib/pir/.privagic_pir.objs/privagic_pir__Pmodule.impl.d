lib/pir/pmodule.ml: Annot Format Func Hashtbl List Loc Printf String Ty Value
