lib/pir/verify.mli: Func Pmodule
