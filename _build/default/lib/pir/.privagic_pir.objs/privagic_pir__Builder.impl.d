lib/pir/builder.ml: Block Func Instr Pmodule Printf Ty Value
