lib/pir/block.ml: Format Instr List String
