lib/pir/instr.ml: Format List Loc Ty Value
