lib/pir/annot.mli: Format
