(* Structural well-formedness checks for PIR modules, run after the frontend
   and after every rewriting pass. These are the invariants the rest of the
   pipeline assumes; violating them is a compiler bug, not a user error. *)

let check_func (m : Pmodule.t) (f : Func.t) : string list =
  let errors = ref [] in
  let err fmt =
    Format.kasprintf (fun s -> errors := Printf.sprintf "%s: %s" f.name s :: !errors) fmt
  in
  let defined = Hashtbl.create 64 in
  List.iteri (fun i _ -> Hashtbl.replace defined i ()) f.params;
  (* Pass 1: register definitions are unique. *)
  Func.iter_instrs f (fun _ i ->
      match Instr.defines i with
      | None -> ()
      | Some id ->
        if Hashtbl.mem defined id then err "register %%%d defined twice" id
        else Hashtbl.replace defined id ());
  (* Pass 2: uses refer to defined registers; CFG targets exist; phi
     predecessors match the CFG. *)
  let g = Cfg.of_func f in
  let block_exists l = Option.is_some (Func.find_block f l) in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) ->
          List.iter
            (fun r ->
              if not (Hashtbl.mem defined r) then
                err "use of undefined register %%%d in %a" r Instr.pp i)
            (Instr.uses i);
          (match i.op with
          | Instr.Call (callee, args) ->
            let expected =
              match Pmodule.find_func m callee with
              | Some callee_f -> Some (Func.arity callee_f)
              | None -> (
                match Pmodule.find_extern m callee with
                | Some e -> (
                  match e.esig.Ty.desc with
                  | Ty.Fun (_, params) -> Some (List.length params)
                  | _ -> None)
                | None ->
                  err "call to unknown function @%s" callee;
                  None)
            in
            (match expected with
            | Some n when n <> List.length args ->
              err "call to @%s with %d args, expected %d" callee
                (List.length args) n
            | _ -> ())
          | Instr.Phi entries ->
            let preds = Cfg.predecessors g b.label in
            if Cfg.reachable g b.label then begin
              List.iter
                (fun (p, _) ->
                  if not (List.exists (String.equal p) preds) then
                    err "phi in %%%s mentions non-predecessor %%%s" b.label p)
                entries;
              List.iter
                (fun p ->
                  if not (List.exists (fun (q, _) -> String.equal p q) entries)
                  then err "phi in %%%s misses predecessor %%%s" b.label p)
                preds
            end
          | Instr.Load p | Instr.Store (_, p) -> (
            match p with
            | Value.Reg _ | Value.Global _ | Value.Str _ -> ()
            | Value.Null _ -> err "memory access through null in %a" Instr.pp i
            | Value.Int _ | Value.Float _ | Value.Func _ | Value.Undef _ ->
              err "memory access through non-pointer in %a" Instr.pp i)
          | _ -> ());
          ())
        b.instrs;
      match b.term with
      | Instr.Br l -> if not (block_exists l) then err "br to unknown %%%s" l
      | Instr.Condbr (_, t, fl) ->
        if not (block_exists t) then err "br to unknown %%%s" t;
        if not (block_exists fl) then err "br to unknown %%%s" fl
      | Instr.Ret _ | Instr.Unreachable -> ())
    f.blocks;
  (* Pass 3: globals referenced exist. *)
  Func.iter_instrs f (fun _ i ->
      List.iter
        (function
          | Value.Global gname ->
            if Option.is_none (Pmodule.find_global m gname) then
              err "reference to unknown global @%s" gname
          | Value.Func fname ->
            if
              (not (Pmodule.is_defined m fname))
              && Option.is_none (Pmodule.find_extern m fname)
            then err "reference to unknown function @%s" fname
          | _ -> ())
        (Instr.operands i));
  List.rev !errors

let check_module (m : Pmodule.t) : (unit, string list) result =
  let errors =
    List.concat_map (fun f -> check_func m f) (Pmodule.funcs_sorted m)
  in
  if errors = [] then Ok () else Error errors

exception Invalid of string list

let check_module_exn m =
  match check_module m with Ok () -> () | Error errs -> raise (Invalid errs)
