(** Secure-typing colors (paper §1, §5.3, Table 2).

    A color identifies the enclave a value belongs to. Besides the
    user-declared named colors ([Named "blue"]), the analysis uses three
    built-in colors for unannotated elements:

    - [Free]: registers/instructions whose color is still to be inferred; at
      the end of the analysis a register that is still [Free] is not bound to
      any enclave and is replicated in every chunk.
    - [Unsafe]: unannotated memory in hardened mode. Incompatible with every
      other color; a value loaded from [Unsafe] stays [Unsafe], which is what
      blocks Iago attacks.
    - [Shared]: unannotated memory in relaxed mode. Incompatible as a memory
      color, but a value loaded from [Shared] becomes [Free]. *)

type t =
  | Free
  | Unsafe
  | Shared
  | Named of string

val equal : t -> t -> bool

val compare : t -> t -> int

(** [compatible a b] is the paper's [a ~ b]: equal, or one side is [Free]. *)
val compatible : t -> t -> bool

(** [is_enclave c] is [true] for colors that denote an actual enclave, i.e.
    [Named _]. [Unsafe] and [Shared] denote unsafe memory; [Free] denotes no
    placement. *)
val is_enclave : t -> bool

val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** Total order usable as a [Map]/[Set] key. *)
module Ord : sig
  type nonrec t = t
  val compare : t -> t -> int
end

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
