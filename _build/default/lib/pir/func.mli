(** PIR functions. Parameters occupy SSA registers [0 .. arity-1]; the
    instruction stream allocates registers from [next_reg] upward.
    Parameter types may carry colors (explicit secure types on
    arguments). *)

type t = {
  name : string;
  params : (string * Ty.t) list;
  ret : Ty.t;
  mutable blocks : Block.t list;
  annots : Annot.t list;
  mutable next_reg : int;
}

val make :
  ?annots:Annot.t list ->
  name:string ->
  params:(string * Ty.t) list ->
  ret:Ty.t ->
  unit ->
  t

val arity : t -> int

(** Allocate a fresh SSA register id. *)
val fresh_reg : t -> int

(** @raise Invalid_argument if the function has no blocks. *)
val entry_block : t -> Block.t

val find_block : t -> string -> Block.t option
val find_block_exn : t -> string -> Block.t
val has_annot : t -> Annot.t -> bool

(** Iterate the instructions in block order; the callback receives the
    enclosing block. *)
val iter_instrs : t -> (Block.t -> Instr.t -> unit) -> unit

val fold_instrs : t -> ('a -> Block.t -> Instr.t -> 'a) -> 'a -> 'a
val instr_count : t -> int

(** The function's type (colors included). *)
val signature : t -> Ty.t

val pp : Format.formatter -> t -> unit
