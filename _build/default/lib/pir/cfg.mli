(** Control-flow-graph view of a function: successor/predecessor maps and
    reverse-postorder traversal, shared by the dominator computation, the
    verifier, and the stabilizing color analysis. *)

type t

val of_func : Func.t -> t
val successors : t -> string -> string list
val predecessors : t -> string -> string list

(** Blocks in reverse postorder from the entry; unreachable blocks are
    excluded. *)
val reverse_postorder : t -> string list

val reachable : t -> string -> bool

(** Blocks terminated by [Ret] (plus reachable [Unreachable] blocks). *)
val exits : t -> string list
