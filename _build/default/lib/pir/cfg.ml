(* Control-flow graph view of a function: successor and predecessor maps,
   plus reverse-postorder traversal used by the dominator computation and by
   the stabilizing color analysis. *)

module SMap = Map.Make (String)

type t = {
  func : Func.t;
  succs : string list SMap.t;
  preds : string list SMap.t;
  order : string list; (* reverse postorder from the entry block *)
}

let of_func (f : Func.t) =
  let succs =
    List.fold_left
      (fun acc (b : Block.t) -> SMap.add b.label (Block.successors b) acc)
      SMap.empty f.blocks
  in
  let preds =
    List.fold_left
      (fun acc (b : Block.t) ->
        List.fold_left
          (fun acc s ->
            let existing = Option.value ~default:[] (SMap.find_opt s acc) in
            SMap.add s (existing @ [ b.label ]) acc)
          acc (Block.successors b))
      (List.fold_left
         (fun acc (b : Block.t) -> SMap.add b.label [] acc)
         SMap.empty f.blocks)
      f.blocks
  in
  (* Reverse postorder via DFS from the entry block. *)
  let visited = Hashtbl.create 16 in
  let post = ref [] in
  let rec dfs label =
    if not (Hashtbl.mem visited label) then begin
      Hashtbl.add visited label ();
      List.iter dfs (Option.value ~default:[] (SMap.find_opt label succs));
      post := label :: !post
    end
  in
  (match f.blocks with [] -> () | b :: _ -> dfs b.label);
  { func = f; succs; preds; order = !post }

let successors g label = Option.value ~default:[] (SMap.find_opt label g.succs)
let predecessors g label = Option.value ~default:[] (SMap.find_opt label g.preds)

(* Blocks in reverse postorder; unreachable blocks are excluded. *)
let reverse_postorder g = g.order

let reachable g label = List.exists (String.equal label) g.order

(* Exit blocks: blocks terminated by Ret (or Unreachable). *)
let exits g =
  List.filter_map
    (fun (b : Block.t) ->
      match b.term with
      | Instr.Ret _ -> Some b.label
      | Instr.Unreachable -> if reachable g b.label then Some b.label else None
      | Instr.Br _ | Instr.Condbr _ -> None)
    g.func.Func.blocks
