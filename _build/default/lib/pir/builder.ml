type t = {
  pmodule : Pmodule.t;
  func : Func.t;
  mutable current : Block.t;
  mutable label_counter : int;
  mutable term_set : bool;
}

let create m f =
  let entry = Block.make "entry" in
  f.Func.blocks <- [ entry ];
  Pmodule.add_func m f;
  { pmodule = m; func = f; current = entry; label_counter = 0; term_set = false }

let func b = b.func
let pmodule b = b.pmodule

let block b hint =
  b.label_counter <- b.label_counter + 1;
  let label = Printf.sprintf "%s%d" hint b.label_counter in
  let blk = Block.make label in
  b.func.Func.blocks <- b.func.Func.blocks @ [ blk ];
  label

let position b label =
  b.current <- Func.find_block_exn b.func label;
  (* A freshly created block has the Unreachable placeholder terminator. *)
  b.term_set <-
    (match b.current.Block.term with Instr.Unreachable -> false | _ -> true)

let current_label b = b.current.Block.label

let instr ?loc b ty op =
  let id = Func.fresh_reg b.func in
  Block.append b.current (Instr.make ?loc ~id ~ty op);
  Value.reg id

(* Void instructions also consume an id so that analyses can key
   per-instruction facts on [Instr.id]; [Instr.defines] still reports them
   as defining nothing. *)
let effect ?loc b op =
  let id = Func.fresh_reg b.func in
  Block.append b.current (Instr.make ?loc ~id ~ty:Ty.void op)

let term b t =
  if not b.term_set then begin
    b.current.Block.term <- t;
    b.term_set <- true
  end

let terminated b = b.term_set

let alloca ?loc b ty = instr ?loc b (Ty.ptr ty) (Instr.Alloca ty)
let load ?loc b ty p = instr ?loc b ty (Instr.Load p)
let store ?loc b v p = effect ?loc b (Instr.Store (v, p))
let binop ?loc b op ty a b' = instr ?loc b ty (Instr.Binop (op, a, b'))
let icmp ?loc b op a b' = instr ?loc b Ty.i1 (Instr.Icmp (op, a, b'))

let call ?loc b ty f args =
  if Ty.equal ty Ty.void then begin
    effect ?loc b (Instr.Call (f, args));
    Value.Undef Ty.void
  end
  else instr ?loc b ty (Instr.Call (f, args))

let spawn ?loc b f args = effect ?loc b (Instr.Spawn (f, args))

let gep ?loc b ~ty ~pointee base steps =
  instr ?loc b ty (Instr.Gep (pointee, base, steps))

let phi ?loc b ty entries = instr ?loc b ty (Instr.Phi entries)
let br b label = term b (Instr.Br label)
let condbr b c t f = term b (Instr.Condbr (c, t, f))
let ret b v = term b (Instr.Ret v)
