(** Imperative construction of PIR functions.

    A builder owns one function and a current insertion block; [instr]
    appends to the current block and returns the operand naming the result.
    Used by the mini-C lowering and by the tests to build IR directly. *)

type t

(** [create m f] makes a builder for function [f] of module [m], positioned
    at a fresh entry block. The function is registered in [m]. *)
val create : Pmodule.t -> Func.t -> t

val func : t -> Func.t
val pmodule : t -> Pmodule.t

(** [block b label] creates (and returns the label of) a new empty block.
    Labels are uniquified with a counter. *)
val block : t -> string -> string

(** Move the insertion point to an existing block. *)
val position : t -> string -> unit

val current_label : t -> string

(** Append an instruction computing a value of type [ty]; returns the operand
    for its result register. *)
val instr : ?loc:Loc.t -> t -> Ty.t -> Instr.op -> Value.t

(** Append a void instruction (store or void call). *)
val effect : ?loc:Loc.t -> t -> Instr.op -> unit

(** Set the terminator of the current block (only if not already set). *)
val term : t -> Instr.term -> unit

(** Whether the current block already has a terminator. *)
val terminated : t -> bool

(** Convenience wrappers. *)

val alloca : ?loc:Loc.t -> t -> Ty.t -> Value.t
val load : ?loc:Loc.t -> t -> Ty.t -> Value.t -> Value.t
val store : ?loc:Loc.t -> t -> Value.t -> Value.t -> unit
val binop : ?loc:Loc.t -> t -> Instr.binop -> Ty.t -> Value.t -> Value.t -> Value.t
val icmp : ?loc:Loc.t -> t -> Instr.icmp -> Value.t -> Value.t -> Value.t
val call : ?loc:Loc.t -> t -> Ty.t -> string -> Value.t list -> Value.t
val spawn : ?loc:Loc.t -> t -> string -> Value.t list -> unit
val gep : ?loc:Loc.t -> t -> ty:Ty.t -> pointee:Ty.t -> Value.t -> Instr.gep_step list -> Value.t
val phi : ?loc:Loc.t -> t -> Ty.t -> (string * Value.t) list -> Value.t
val br : t -> string -> unit
val condbr : t -> Value.t -> string -> string -> unit
val ret : t -> Value.t option -> unit
