(** PIR operands.

    An operand is either an SSA register (identified per-function by a small
    integer), a constant, or a reference to a module-level symbol. *)

type t =
  | Reg of int                 (** SSA register *)
  | Int of int64 * Ty.t        (** integer constant of type I1/I8/I64 *)
  | Float of float
  | Str of string              (** pointer to a read-only string in U memory *)
  | Global of string           (** address of a global variable *)
  | Func of string             (** address of a function (function pointer) *)
  | Null of Ty.t               (** null pointer of the given pointer type *)
  | Undef of Ty.t

val reg : int -> t
val int_ : int64 -> t
val of_int : int -> t
val bool_ : bool -> t
val i8_ : int -> t
val float_ : float -> t

val equal : t -> t -> bool

(** Registers mentioned by the operand (0 or 1). *)
val regs : t -> int list

val pp : Format.formatter -> t -> unit
val to_string : t -> string
