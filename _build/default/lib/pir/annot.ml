(* Function-level annotations (paper §6.2-§6.4).

   - [Entry]: analysis entry point (paper: extern functions by default, or
     the functions the developer listed).
   - [Within]: an external function also available inside every enclave
     (paper's mini-libc case: memcpy, malloc, ...). A call whose arguments
     carry a color C executes inside C; all arguments must be compatible
     with C.
   - [Ignore]: like [Within] but incompatible arguments are ignored rather
     than rejected; used to classify/declassify values (e.g. encrypt). *)

type t = Entry | Within | Ignore

let equal (a : t) (b : t) = a = b

let to_string = function
  | Entry -> "entry"
  | Within -> "within"
  | Ignore -> "ignore"

let pp fmt a = Format.pp_print_string fmt (to_string a)
