(** A PIR module: struct definitions, globals, function definitions and
    external declarations — the whole-program artifact Privagic consumes
    (paper §5, Figure 5). *)

type struct_def = { sname : string; fields : (string * Ty.t) list }

type global = {
  gname : string;
  gty : Ty.t;                     (** may carry a color *)
  ginit : Value.t option;
  gloc : Loc.t;
}

type extern_decl = {
  ename : string;
  esig : Ty.t;                    (** a [Fun] type *)
  eannots : Annot.t list;
}

type t = {
  structs : (string, struct_def) Hashtbl.t;
  globals : (string, global) Hashtbl.t;
  funcs : (string, Func.t) Hashtbl.t;
  externs : (string, extern_decl) Hashtbl.t;
  mutable entry_points : string list;
}

val create : unit -> t

val add_struct : t -> struct_def -> unit
val find_struct : t -> string -> struct_def option
val find_struct_exn : t -> string -> struct_def
val field_index : t -> string -> string -> int
val field_ty : t -> string -> int -> Ty.t

val add_global : t -> global -> unit
val find_global : t -> string -> global option

val add_func : t -> Func.t -> unit
val find_func : t -> string -> Func.t option
val find_func_exn : t -> string -> Func.t

val add_extern : t -> extern_decl -> unit
val find_extern : t -> string -> extern_decl option
val is_defined : t -> string -> bool

(** Analysis roots (§6.2): the explicit entry list when the developer gave
    one, otherwise every defined function (library mode). *)
val entry_points : t -> string list

val set_entry_points : t -> string list -> unit

val struct_field_tys : t -> string -> Ty.t list

(** Byte size with the plain (non-rewritten) layout; the VM's [Layout]
    owns the §7.2-rewritten sizes. *)
val sizeof : t -> Ty.t -> int

val field_offset : t -> string -> int -> int

val iter_funcs : t -> (Func.t -> unit) -> unit
val funcs_sorted : t -> Func.t list
val globals_sorted : t -> global list
val structs_sorted : t -> struct_def list
val externs_sorted : t -> extern_decl list

val pp : Format.formatter -> t -> unit
val to_string : t -> string
