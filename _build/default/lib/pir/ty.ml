type t = { desc : desc; color : Color.t option }

and desc =
  | Void
  | I1
  | I8
  | I64
  | F64
  | Ptr of t
  | Arr of t * int
  | Struct of string
  | Fun of t * t list

let mk desc = { desc; color = None }

let void = mk Void
let i1 = mk I1
let i8 = mk I8
let i64 = mk I64
let f64 = mk F64
let ptr t = mk (Ptr t)
let arr t n = mk (Arr (t, n))
let struct_ name = mk (Struct name)
let fun_ ret params = mk (Fun (ret, params))

let colored c t = { t with color = Some c }

let color_of t = t.color

let rec equal ?(ignore_color = false) a b =
  (ignore_color
  ||
  match a.color, b.color with
  | None, None -> true
  | Some x, Some y -> Color.equal x y
  | None, Some _ | Some _, None -> false)
  && equal_desc ~ignore_color a.desc b.desc

and equal_desc ~ignore_color a b =
  match a, b with
  | Void, Void | I1, I1 | I8, I8 | I64, I64 | F64, F64 -> true
  | Ptr x, Ptr y -> equal ~ignore_color x y
  | Arr (x, n), Arr (y, m) -> n = m && equal ~ignore_color x y
  | Struct x, Struct y -> String.equal x y
  | Fun (r1, p1), Fun (r2, p2) ->
    equal ~ignore_color r1 r2
    && List.length p1 = List.length p2
    && List.for_all2 (fun x y -> equal ~ignore_color x y) p1 p2
  | (Void | I1 | I8 | I64 | F64 | Ptr _ | Arr _ | Struct _ | Fun _), _ -> false

let deref t =
  match t.desc with
  | Ptr u -> u
  | _ -> invalid_arg "Ty.deref: not a pointer"

let is_pointer t = match t.desc with Ptr _ -> true | _ -> false

let is_integer t = match t.desc with I1 | I8 | I64 -> true | _ -> false

let is_float t = match t.desc with F64 -> true | _ -> false

let rec sizeof ~structs t =
  match t.desc with
  | Void -> 0
  | I1 | I8 -> 1
  | I64 | F64 | Ptr _ | Fun _ -> 8
  | Arr (u, n) -> n * sizeof ~structs u
  | Struct name ->
    List.fold_left (fun acc f -> acc + sizeof ~structs f) 0 (structs name)

let rec pp fmt t =
  (match t.color with
  | Some c -> Format.fprintf fmt "color(%a) " Color.pp c
  | None -> ());
  match t.desc with
  | Void -> Format.pp_print_string fmt "void"
  | I1 -> Format.pp_print_string fmt "i1"
  | I8 -> Format.pp_print_string fmt "i8"
  | I64 -> Format.pp_print_string fmt "i64"
  | F64 -> Format.pp_print_string fmt "f64"
  | Ptr u -> Format.fprintf fmt "%a*" pp u
  | Arr (u, n) -> Format.fprintf fmt "[%d x %a]" n pp u
  | Struct name -> Format.fprintf fmt "%%%s" name
  | Fun (ret, params) ->
    Format.fprintf fmt "%a(%a)" pp ret
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         pp)
      params

let to_string t = Format.asprintf "%a" pp t
