lib/baselines/system.mli: Diagnostic Heap Mode Privagic_secure Privagic_sgx Privagic_telemetry Privagic_vm Rvalue
