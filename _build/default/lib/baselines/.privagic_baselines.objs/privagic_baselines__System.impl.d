lib/baselines/system.ml: Char Diagnostic Exec Heap Infer Int64 Interp Mode Pinterp Privagic_minic Privagic_partition Privagic_secure Privagic_sgx Privagic_telemetry Privagic_vm Rvalue String
