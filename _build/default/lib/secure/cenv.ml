(* Static color environment: how declared types translate into the colors of
   memory locations. All of these are syntactic facts independent of the
   analysis state. *)

open Privagic_pir

(* Root color of a memory location's type: arrays inherit the color of their
   elements ([char color(blue) name[256]] is blue memory). *)
let rec root_color (ty : Ty.t) : Color.t option =
  match Ty.color_of ty with
  | Some c -> Some c
  | None -> (
    match ty.Ty.desc with Ty.Arr (elt, _) -> root_color elt | _ -> None)

(* Color of the memory a pointer type points into; unannotated memory gets
   the mode's default (Table 2). *)
let pointee_color_of_ty mode (ty : Ty.t) : Color.t =
  match ty.Ty.desc with
  | Ty.Ptr t ->
    Option.value ~default:(Mode.default_memory_color mode) (root_color t)
  | _ -> Mode.default_memory_color mode

(* Declared color of a global variable's storage. *)
let global_color mode (g : Pmodule.global) : Color.t =
  Option.value ~default:(Mode.default_memory_color mode) (root_color g.gty)

(* Static types of all registers of a function: parameters then instruction
   results. Used to recover the pointee color of pointer operands. *)
let reg_types (f : Func.t) : (int, Ty.t) Hashtbl.t =
  let tys = Hashtbl.create 64 in
  List.iteri (fun i (_, ty) -> Hashtbl.replace tys i ty) f.Func.params;
  Func.iter_instrs f (fun _ i ->
      match Instr.defines i with
      | Some id -> Hashtbl.replace tys id i.Instr.ty
      | None -> ());
  tys

(* Value color of constant operands. Addresses are *not* secret values in
   the paper's model (Fig. 3b stores &a, a pointer to blue memory, into an
   unannotated global without error): rule 4 of §4 is a check on pointee
   colors, enforced separately. All constants are therefore F. *)
let const_color _mode (_m : Pmodule.t) (v : Value.t) : Color.t =
  match v with
  | Value.Reg _ -> invalid_arg "Cenv.const_color: register"
  | Value.Global _ | Value.Int _ | Value.Float _ | Value.Str _ | Value.Func _
  | Value.Null _ | Value.Undef _ ->
    Color.Free

(* Pointee color of a pointer operand: where does the memory it designates
   live? *)
let pointee_color mode (m : Pmodule.t) (reg_tys : (int, Ty.t) Hashtbl.t)
    (p : Value.t) : Color.t =
  match p with
  | Value.Reg r -> (
    match Hashtbl.find_opt reg_tys r with
    | Some ty -> pointee_color_of_ty mode ty
    | None -> Mode.default_memory_color mode)
  | Value.Global g -> (
    match Pmodule.find_global m g with
    | Some gl -> global_color mode gl
    | None -> Mode.default_memory_color mode)
  | Value.Str _ ->
    (* read-only constants are replicated per partition, hence F memory *)
    Color.Free
  | Value.Int _ | Value.Float _ | Value.Func _ | Value.Null _ | Value.Undef _
    ->
    Mode.default_memory_color mode

(* Whether a struct mixes memory colors (§7.2): some enclave-colored field
   plus either another color or unannotated fields. *)
let is_multicolor_struct mode (m : Pmodule.t) (sname : string) : bool =
  match Pmodule.find_struct m sname with
  | None -> false
  | Some s ->
    let colors =
      List.sort_uniq Color.compare
        (List.map
           (fun (_, ty) ->
             Option.value ~default:(Mode.default_memory_color mode)
               (root_color ty))
           s.Pmodule.fields)
    in
    List.length colors > 1 && List.exists Color.is_enclave colors
