lib/secure/mode.ml: Color Format Privagic_pir
