lib/secure/infer.ml: Annot Block Cenv Cfg Color Diagnostic Dom Format Func Hashtbl Instr List Loc Mode Option Pmodule Printf Privagic_pir String Ty Value
