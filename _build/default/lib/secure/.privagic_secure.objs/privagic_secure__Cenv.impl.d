lib/secure/cenv.ml: Color Func Hashtbl Instr List Mode Option Pmodule Privagic_pir Ty Value
