lib/secure/diagnostic.mli: Format Loc Privagic_pir
