lib/secure/infer.mli: Cfg Color Diagnostic Dom Format Func Hashtbl Instr Mode Pmodule Privagic_pir Ty
