lib/secure/diagnostic.ml: Format Loc Privagic_pir
