lib/secure/mode.mli: Color Format Privagic_pir
