(** The secure type system of Privagic (paper §5–§6, Table 3).

    [run] analyzes a whole PIR module: it assigns to every SSA register a
    *value color* (which enclave's secret the value carries) and to every
    instruction an *executing color* (which partition runs it); pointer
    registers additionally carry a *memory color* (where the designated
    memory lives — the paper's "a pointer to a C location is itself C").
    Functions are specialized per call-site argument colors (§6.2); the
    stabilizing algorithm (§5.2) repeats whole-module passes until no
    color changes, then a final pass collects diagnostics. *)

open Privagic_pir

(** A specialization key: the function plus the colors of its actual
    arguments. *)
type instance_key = { ik_func : string; ik_args : Color.t list }

(** Display name: ["f"] when all arguments are F, else ["f@blue,F"]. *)
val instance_name : instance_key -> string

(** One analyzed specialization. The hash tables expose the final coloring
    to the partitioner. *)
type instance = {
  key : instance_key;
  iname : string;
  func : Func.t;                           (** shared, not copied *)
  reg_tys : (int, Ty.t) Hashtbl.t;
  reg_color : (int, Color.t) Hashtbl.t;    (** value colors *)
  ptr_mem : (int, Color.t) Hashtbl.t;      (** memory colors of pointers *)
  instr_color : (int, Color.t) Hashtbl.t;  (** executing colors *)
  block_color : (string, Color.t) Hashtbl.t; (** rule-4 region colors *)
  mutable ret_color : Color.t;
  mutable ret_mem : Color.t option;
  cfg : Cfg.t;
  pdom : Dom.t;
}

(** Whole-module analysis state and result. *)
type t = {
  mode : Mode.t;
  auth : bool;  (** §8 extension: authenticated indirection pointers *)
  m : Pmodule.t;
  instances : (instance_key, instance) Hashtbl.t;
  mutable order : instance_key list;
  call_sites : (instance_key * int, instance_key) Hashtbl.t;
  mutable diagnostics : Diagnostic.t list;
  mutable changed : bool;
  mutable collect : bool;
}

(** Analyze a module. Roots are the module's entry points (explicit
    [entry] annotations, or every defined function in library mode) plus
    every address-taken function (§6.3). *)
val run : ?mode:Mode.t -> ?auth_pointers:bool -> Pmodule.t -> t

(** No diagnostics were produced. *)
val ok : t -> bool

(** Instances in creation order. *)
val instances : t -> instance list

val find_instance : t -> string -> Color.t list -> instance option

(** Callee instance resolved at a call/spawn site (keyed by the caller
    instance and the instruction id). *)
val call_site : t -> instance_key -> int -> instance_key option

(** Final value color of a register ([Color.Free] when never colored). *)
val register_color : instance -> int -> Color.t

(** Final executing color of an instruction. *)
val instruction_color : instance -> Instr.t -> Color.t

(** Colorset of an instance (§7.3.1): the executing colors of its
    instructions plus its argument colors, F and S excluded. *)
val colorset : instance -> Color.Set.t

val pp_report : Format.formatter -> t -> unit
