(* The two compiler modes (paper §5, Table 2).

   - Hardened: enforces confidentiality, integrity, and Iago protection.
     Unannotated memory is U; a value loaded from U stays U, so an enclave
     can never consume it.
   - Relaxed: enforces confidentiality and integrity only. Unannotated
     memory is S; a value loaded from S becomes F and may be consumed by an
     enclave (the Iago attack surface the paper accepts in this mode). *)

open Privagic_pir

type t = Hardened | Relaxed

let equal (a : t) (b : t) = a = b

(* Color of unannotated memory locations (Table 2). *)
let default_memory_color = function
  | Hardened -> Color.Unsafe
  | Relaxed -> Color.Shared

(* Color of entry-point arguments and of values produced by the untrusted
   world (external call results) (§6.2, §5.3). *)
let entry_color = function Hardened -> Color.Unsafe | Relaxed -> Color.Free

let to_string = function Hardened -> "hardened" | Relaxed -> "relaxed"

let pp fmt m = Format.pp_print_string fmt (to_string m)
