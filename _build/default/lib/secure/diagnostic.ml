(* Secure-typing diagnostics. Each kind maps to one of the guarantees of §4:
   confidentiality rules 1-5, integrity, and Iago protection, plus the two
   structural restrictions (multi-color structures in hardened mode, §8;
   F arguments crossing enclaves in hardened mode, §7.3.2). *)

open Privagic_pir

type kind =
  | Confidentiality   (* a colored value would escape its enclave *)
  | Integrity         (* a store into an enclave from outside it *)
  | Iago              (* an enclave would consume an untrusted value *)
  | Implicit_leak     (* rule 4: leak through a conditional (Fig. 4) *)
  | Pointer_cast      (* rule 4 of §4: cast changing a pointee color *)
  | Multicolor_struct (* §8: multi-color structure in hardened mode *)
  | Cross_enclave_f   (* §7.3.2: F value crossing enclaves in hardened mode *)

type t = {
  kind : kind;
  func : string;          (* specialized instance name *)
  loc : Loc.t;
  msg : string;
}

let kind_to_string = function
  | Confidentiality -> "confidentiality"
  | Integrity -> "integrity"
  | Iago -> "iago"
  | Implicit_leak -> "implicit-leak"
  | Pointer_cast -> "pointer-cast"
  | Multicolor_struct -> "multicolor-struct"
  | Cross_enclave_f -> "cross-enclave-f"

let make ~kind ~func ~loc msg = { kind; func; loc; msg }

let pp fmt d =
  Format.fprintf fmt "%a: [%s] in %s: %s" Loc.pp d.loc (kind_to_string d.kind)
    d.func d.msg

let to_string d = Format.asprintf "%a" pp d
