(* The secure type system of Privagic (paper §5-§6, Table 3).

   The analysis assigns to every SSA register a *value color* (which
   enclave's secret the value carries) and to every instruction an
   *executing color* (which partition must run it). Pointer registers
   additionally carry a *memory color*: the color of the location they
   designate — the paper's rule "if p points to a C memory location, p is
   itself C" makes the value color of well-typed pointers equal to their
   memory color, and the memory color is what loads/stores check against.

   Functions are specialized per call-site argument colors (§6.2); the
   stabilizing algorithm (§5.2) repeats full passes until no color changes.
   Colors only evolve monotonically from F to a concrete color, so the
   fixed point exists; incompatibilities are collected as diagnostics in a
   final reporting pass. *)

open Privagic_pir

type instance_key = { ik_func : string; ik_args : Color.t list }

let instance_name k =
  if List.for_all (Color.equal Color.Free) k.ik_args then k.ik_func
  else
    Printf.sprintf "%s@%s" k.ik_func
      (String.concat "," (List.map Color.to_string k.ik_args))

type instance = {
  key : instance_key;
  iname : string;
  func : Func.t;
  reg_tys : (int, Ty.t) Hashtbl.t;
  reg_color : (int, Color.t) Hashtbl.t;    (* value colors *)
  ptr_mem : (int, Color.t) Hashtbl.t;      (* memory colors of pointers *)
  instr_color : (int, Color.t) Hashtbl.t;  (* executing colors *)
  block_color : (string, Color.t) Hashtbl.t;
  mutable ret_color : Color.t;
  mutable ret_mem : Color.t option;        (* memory color of returned ptr *)
  cfg : Cfg.t;
  pdom : Dom.t;
}

type t = {
  mode : Mode.t;
  auth : bool;  (* §8 extension: authenticated indirection pointers *)
  m : Pmodule.t;
  instances : (instance_key, instance) Hashtbl.t;
  mutable order : instance_key list;       (* creation order, for reports *)
  call_sites : (instance_key * int, instance_key) Hashtbl.t;
      (* (caller instance, call/spawn instr id) -> callee instance *)
  mutable diagnostics : Diagnostic.t list;
  mutable changed : bool;
  mutable collect : bool;
}

(* ------------------------------------------------------------------ *)
(* small state helpers: all color updates are monotone F -> C          *)

let diag t inst kind loc fmt =
  Format.kasprintf
    (fun msg ->
      if t.collect then
        t.diagnostics <-
          Diagnostic.make ~kind ~func:inst.iname ~loc msg :: t.diagnostics)
    fmt

let reg_color inst r =
  Option.value ~default:Color.Free (Hashtbl.find_opt inst.reg_color r)

let set_reg_color t inst r c =
  if not (Color.equal c Color.Free) then begin
    let cur = reg_color inst r in
    if Color.equal cur Color.Free then begin
      Hashtbl.replace inst.reg_color r c;
      t.changed <- true
    end
  end

let instr_color inst (i : Instr.t) =
  Option.value ~default:Color.Free (Hashtbl.find_opt inst.instr_color i.id)

let set_instr_color t inst (i : Instr.t) c =
  if not (Color.equal c Color.Free) then begin
    let cur = instr_color inst i in
    if Color.equal cur Color.Free then begin
      Hashtbl.replace inst.instr_color i.id c;
      t.changed <- true
    end
    else if not (Color.compatible cur c) then
      diag t inst Diagnostic.Confidentiality i.loc
        "instruction requires both %s and %s" (Color.to_string cur)
        (Color.to_string c)
  end

let block_color inst label =
  Option.value ~default:Color.Free (Hashtbl.find_opt inst.block_color label)

let mem_color t inst (p : Value.t) : Color.t =
  match p with
  | Value.Reg r -> (
    match Hashtbl.find_opt inst.ptr_mem r with
    | Some c -> c
    | None -> (
      match Hashtbl.find_opt inst.reg_tys r with
      | Some ty -> Cenv.pointee_color_of_ty t.mode ty
      | None -> Mode.default_memory_color t.mode))
  | _ -> Cenv.pointee_color t.mode t.m inst.reg_tys p

(* Memory colors evolve monotonically towards enclave colors: a pointer
   first seen flowing from an unknown/default source may later be
   discovered to designate enclave memory (phi over a loop backedge). An
   established enclave color never downgrades; conflicts surface through
   the pointer-assignment rule. *)
let set_mem_color t inst r c =
  match Hashtbl.find_opt inst.ptr_mem r with
  | Some cur when Color.equal cur c -> ()
  | Some cur when Color.is_enclave cur -> ()
  | Some _ when not (Color.is_enclave c) -> ()
  | Some _ | None ->
    Hashtbl.replace inst.ptr_mem r c;
    t.changed <- true

(* value color of an operand *)
let vcolor t inst (v : Value.t) : Color.t =
  match v with
  | Value.Reg r -> reg_color inst r
  | _ -> Cenv.const_color t.mode t.m v

let is_ptr_reg inst r =
  match Hashtbl.find_opt inst.reg_tys r with
  | Some ty -> Ty.is_pointer ty
  | None -> false

(* Memory designated by a pointer-valued operand; F when the operand does
   not designate statically-known memory (null, constants, strings —
   compatible with any pointee color). *)
let val_mem t inst (v : Value.t) : Color.t =
  match v with
  | Value.Reg r ->
    if is_ptr_reg inst r then mem_color t inst v else Color.Free
  | Value.Global g -> (
    match Pmodule.find_global t.m g with
    | Some gl -> Cenv.global_color t.mode gl
    | None -> Color.Free)
  | Value.Str _ | Value.Null _ | Value.Undef _ | Value.Func _ | Value.Int _
  | Value.Float _ ->
    Color.Free

(* Rule 4 of §4 as a pointer-assignment check: a pointer designating
   [vm]-colored memory may only be stored into (or passed as, or returned
   through) a slot whose declared pointee color is the same. This is the
   check that rejects [x = &b] in Fig. 3b. *)
let check_ptr_assign t inst loc ~(target_elem : Ty.t) what v =
  match target_elem.Ty.desc with
  | Ty.Ptr _ ->
    let d = Cenv.pointee_color_of_ty t.mode target_elem in
    let vm = val_mem t inst v in
    if (not (Color.equal vm Color.Free)) && not (Color.equal vm d) then
      diag t inst Diagnostic.Pointer_cast loc
        "%s: a pointer to %s memory cannot become a pointer to %s memory"
        what (Color.to_string vm) (Color.to_string d)
  | _ -> ()

(* Static element type behind a pointer operand (what a store through it
   writes into). *)
let elem_ty_of_ptr t inst (p : Value.t) : Ty.t option =
  match p with
  | Value.Reg r -> (
    match Hashtbl.find_opt inst.reg_tys r with
    | Some { Ty.desc = Ty.Ptr e; _ } -> Some e
    | _ -> None)
  | Value.Global g -> (
    match Pmodule.find_global t.m g with
    | Some gl -> Some gl.Pmodule.gty
    | None -> None)
  | Value.Str _ -> Some Ty.i8
  | _ -> None

(* x <- y with a compatibility check (the paper's arrow). [kind] classifies
   the violation when the two colors are incompatible. *)
let flow t inst loc kind ~into:(r : int) (c : Color.t) what =
  let cur = reg_color inst r in
  if Color.compatible cur c then set_reg_color t inst r c
  else
    diag t inst kind loc "%s: %s flows into a %s register" what
      (Color.to_string c) (Color.to_string cur)

(* kind of a compatibility failure between a value color and a memory
   color, matching §4's three guarantees. *)
let store_kind mode ~value ~memory =
  match value, memory with
  | Color.Named _, (Color.Unsafe | Color.Shared) -> Diagnostic.Confidentiality
  | Color.Named _, Color.Named _ -> Diagnostic.Confidentiality
  | (Color.Unsafe | Color.Shared), Color.Named _ ->
    if Mode.equal mode Mode.Hardened then Diagnostic.Iago
    else Diagnostic.Integrity
  | _ -> Diagnostic.Confidentiality

(* ------------------------------------------------------------------ *)
(* instance management                                                 *)

let mk_instance t key =
  let func = Pmodule.find_func_exn t.m key.ik_func in
  let cfg = Cfg.of_func func in
  let inst =
    {
      key;
      iname = instance_name key;
      func;
      reg_tys = Cenv.reg_types func;
      reg_color = Hashtbl.create 64;
      ptr_mem = Hashtbl.create 16;
      instr_color = Hashtbl.create 64;
      block_color = Hashtbl.create 16;
      ret_color = Color.Free;
      ret_mem = None;
      cfg;
      pdom = Dom.postdominators cfg;
    }
  in
  (* Parameters take the specialization's argument colors; a parameter with
     a declared secure type keeps its declared color. *)
  List.iteri
    (fun i (_, pty) ->
      let c = List.nth key.ik_args i in
      if not (Color.equal c Color.Free) then Hashtbl.replace inst.reg_color i c;
      match Cenv.root_color pty with
      | Some pc when Ty.is_pointer pty |> not ->
        if not (Color.equal pc Color.Free) then
          Hashtbl.replace inst.reg_color i pc
      | _ -> ())
    func.Func.params;
  inst

let instance t key =
  match Hashtbl.find_opt t.instances key with
  | Some inst -> inst
  | None ->
    let inst = mk_instance t key in
    Hashtbl.replace t.instances key inst;
    t.order <- key :: t.order;
    t.changed <- true;
    inst

(* ------------------------------------------------------------------ *)
(* call handling (§6.2-§6.4)                                           *)

(* Effective argument colors for a call to a defined function: declared
   parameter colors win; actual colors must be compatible with them.
   Pointer parameters additionally enforce the pointee-color agreement of
   rule 4. *)
let effective_arg_colors t inst loc callee args =
  let f = Pmodule.find_func_exn t.m callee in
  List.map2
    (fun (_, pty) arg ->
      check_ptr_assign t inst loc ~target_elem:pty
        (Printf.sprintf "argument of @%s" callee)
        arg;
      let actual = vcolor t inst arg in
      match Cenv.root_color pty with
      | Some declared when not (Ty.is_pointer pty) ->
        if not (Color.compatible actual declared) then
          diag t inst
            (store_kind t.mode ~value:actual ~memory:declared)
            loc "argument of @%s: %s value passed to a %s parameter" callee
            (Color.to_string actual) (Color.to_string declared);
        declared
      | _ -> actual)
    f.Func.params args

(* The executing color of a within/ignore call: the unique non-F color among
   the argument values and the memory designated by pointer arguments —
   [memcpy(p, ...)] with [p] pointing into blue memory executes in blue
   (named colors take precedence over U/S). *)
let within_color t inst loc callee args =
  let arg_color arg =
    let vc = vcolor t inst arg in
    if Color.is_enclave vc then vc
    else
      let mc = val_mem t inst arg in
      if Color.is_enclave mc then mc else vc
  in
  let colors =
    List.filter (fun c -> not (Color.equal c Color.Free))
      (List.map arg_color args)
  in
  let named = List.filter Color.is_enclave colors in
  match List.sort_uniq Color.compare named with
  | [] -> (
    match List.sort_uniq Color.compare colors with c :: _ -> Some c | [] -> None)
  | [ c ] -> Some c
  | c :: rest ->
    diag t inst Diagnostic.Confidentiality loc
      "call to @%s mixes enclave colors %s and %s" callee (Color.to_string c)
      (String.concat "," (List.map Color.to_string rest));
    Some c

let visit_call t inst (i : Instr.t) callee args =
  let loc = i.Instr.loc in
  match Pmodule.find_func t.m callee with
  | Some _ ->
    (* local function: specialize on the effective argument colors (§6.2) *)
    let eff = effective_arg_colors t inst loc callee args in
    let callee_key = { ik_func = callee; ik_args = eff } in
    Hashtbl.replace t.call_sites (inst.key, i.Instr.id) callee_key;
    let callee_inst = instance t callee_key in
    (match Instr.defines i with
    | Some id ->
      flow t inst loc Diagnostic.Confidentiality ~into:id callee_inst.ret_color
        (Printf.sprintf "result of @%s" callee);
      if is_ptr_reg inst id then
        Option.iter (set_mem_color t inst id) callee_inst.ret_mem
    | None -> ())
    (* the call itself is control: replicated across common chunks *)
  | None ->
    let ext = Pmodule.find_extern t.m callee in
    let annots =
      match ext with Some e -> e.Pmodule.eannots | None -> []
    in
    let has a = List.exists (Annot.equal a) annots in
    if has Annot.Within || has Annot.Ignore then begin
      (* §6.3-§6.4: executes inside the enclave of its colored arguments *)
      let c = within_color t inst loc callee args in
      (match c with
      | Some c ->
        if has Annot.Within then
          List.iter
            (fun arg ->
              let ac = vcolor t inst arg in
              if not (Color.compatible ac c) then
                diag t inst
                  (store_kind t.mode ~value:ac ~memory:c)
                  loc "argument of within @%s: %s incompatible with call color %s"
                  callee (Color.to_string ac) (Color.to_string c);
              (* pointer arguments: the pointed value must be compatible,
                 so nothing escapes through the pointer during the call.
                 S memory is readable from any partition (its loads become
                 F), so S pointees are acceptable in relaxed mode. *)
              match val_mem t inst arg with
              | Color.Free | Color.Shared -> ()
              | mc ->
                if not (Color.compatible mc c) then
                  diag t inst
                    (store_kind t.mode ~value:mc ~memory:c)
                    loc
                    "pointer argument of within @%s reaches %s memory from a %s call"
                    callee (Color.to_string mc) (Color.to_string c))
            args;
        set_instr_color t inst i c;
        (match Instr.defines i with
        | Some id ->
          flow t inst loc Diagnostic.Confidentiality ~into:id c
            (Printf.sprintf "result of @%s" callee);
          if is_ptr_reg inst id then set_mem_color t inst id c
        | None -> ())
      | None ->
        (* all arguments F: usable from any partition, like an F instr *)
        ())
    end
    else begin
      (* plain external call: belongs to the untrusted partition (§6.3) *)
      List.iter
        (fun arg ->
          let ac = vcolor t inst arg in
          if not (Color.compatible ac Color.Unsafe) then
            diag t inst Diagnostic.Confidentiality loc
              "argument of external @%s leaks a %s value to the untrusted world"
              callee (Color.to_string ac))
        args;
      set_instr_color t inst i Color.Unsafe;
      match Instr.defines i with
      | Some id ->
        let rc = Mode.entry_color t.mode in
        flow t inst loc Diagnostic.Iago ~into:id rc
          (Printf.sprintf "result of external @%s" callee)
      | None -> ()
    end

(* ------------------------------------------------------------------ *)
(* per-instruction rules (Table 3)                                     *)

let visit_instr t inst (blk : Block.t) (i : Instr.t) =
  let loc = i.Instr.loc in
  let result_flow kind c what =
    match Instr.defines i with
    | Some id -> flow t inst loc kind ~into:id c what
    | None -> ()
  in
  (match i.op with
  | Instr.Alloca ty ->
    let c =
      Option.value
        ~default:(Mode.default_memory_color t.mode)
        (Cenv.root_color ty)
    in
    (match Instr.defines i with
    | Some id -> set_mem_color t inst id c
    | None -> ());
    (* addresses are F values; the slot itself lives in c-colored memory *)
    set_instr_color t inst i
      (if Color.equal c Color.Shared then Color.Free else c)
  | Instr.Load p ->
    (* Rule 1: *p ~ p ; r <- *p (S loads become F) *)
    let mc = mem_color t inst p in
    let pc = vcolor t inst p in
    if not (Color.compatible pc mc) then
      diag t inst
        (store_kind t.mode ~value:pc ~memory:mc)
        loc "load through a %s pointer from %s memory" (Color.to_string pc)
        (Color.to_string mc);
    (* With authenticated pointers (§8 extension), a pointer to a
       multi-color structure loaded from unsafe memory is usable anywhere:
       any tampering is caught by the MAC at the field access. Such loads
       are replicated (F) instead of pinned to the unsafe partition. *)
    let auth_base_load =
      t.auth
      &&
      match i.ty.Ty.desc with
      | Ty.Ptr { Ty.desc = Ty.Struct sname; _ } ->
        Cenv.is_multicolor_struct t.mode t.m sname
      | _ -> false
    in
    let rc =
      if Color.equal mc Color.Shared || auth_base_load then Color.Free
      else mc
    in
    result_flow Diagnostic.Confidentiality rc "loaded value";
    (* a loaded pointer designates the memory its static type declares *)
    (match Instr.defines i with
    | Some id when is_ptr_reg inst id ->
      set_mem_color t inst id (Cenv.pointee_color_of_ty t.mode i.ty)
    | _ -> ());
    (* a load from S is replicated: every partition may read unsafe memory
       directly (SGX lets enclave code read outside memory); so is an
       authenticated multi-color base load *)
    set_instr_color t inst i
      (if Color.equal mc Color.Shared || auth_base_load then Color.Free
       else mc)
  | Instr.Store (v, p) ->
    (* Rule 3: *p ~ p ; r ~ *p ; the store executes in *p (integrity) *)
    let mc = mem_color t inst p in
    let pc = vcolor t inst p in
    let vc = vcolor t inst v in
    if not (Color.compatible pc mc) then
      diag t inst
        (store_kind t.mode ~value:pc ~memory:mc)
        loc "store through a %s pointer into %s memory" (Color.to_string pc)
        (Color.to_string mc);
    if not (Color.compatible vc mc) then
      diag t inst
        (store_kind t.mode ~value:vc ~memory:mc)
        loc "storing a %s value into %s memory" (Color.to_string vc)
        (Color.to_string mc);
    (* rule 4: storing a pointer may not change its pointee color *)
    (match elem_ty_of_ptr t inst p with
    | Some elem -> check_ptr_assign t inst loc ~target_elem:elem "store" v
    | None -> ());
    set_instr_color t inst i mc
  | Instr.Binop (_, a, b) | Instr.Icmp (_, a, b) | Instr.Fcmp (_, a, b) ->
    (* Rule 2: r <- each input *)
    let ca = vcolor t inst a and cb = vcolor t inst b in
    result_flow Diagnostic.Confidentiality ca "operand";
    result_flow
      (if Mode.equal t.mode Mode.Hardened then Diagnostic.Iago
       else Diagnostic.Confidentiality)
      cb "operand";
    (match Instr.defines i with
    | Some id -> set_instr_color t inst i (reg_color inst id)
    | None -> ())
  | Instr.Select (c, a, b) ->
    List.iter
      (fun v -> result_flow Diagnostic.Confidentiality (vcolor t inst v) "operand")
      [ c; a; b ];
    (match Instr.defines i with
    | Some id ->
      if is_ptr_reg inst id then begin
        (* null/constants are mem-neutral (F); enclave colors win *)
        let mems =
          List.filter
            (fun m -> not (Color.equal m Color.Free))
            [ val_mem t inst a; val_mem t inst b ]
        in
        match List.filter Color.is_enclave mems with
        | mc :: _ -> set_mem_color t inst id mc
        | [] -> (
          match mems with mc :: _ -> set_mem_color t inst id mc | [] -> ())
      end;
      set_instr_color t inst i (reg_color inst id)
    | None -> ())
  | Instr.Phi entries ->
    List.iter
      (fun (_, v) ->
        result_flow Diagnostic.Confidentiality (vcolor t inst v) "phi operand")
      entries;
    (* rule 4, SSA form: choosing between the incoming values reveals which
       path executed, so the phi inherits the region color of its incoming
       edges (the mem2reg image of Fig. 4's store-in-branch) *)
    List.iter
      (fun (pred, _) ->
        result_flow Diagnostic.Implicit_leak (block_color inst pred)
          "phi over a secret-dependent edge")
      entries;
    (match Instr.defines i with
    | Some id ->
      if is_ptr_reg inst id then begin
        let mems =
          List.filter
            (fun m -> not (Color.equal m Color.Free))
            (List.map (fun (_, v) -> val_mem t inst v) entries)
        in
        match List.filter Color.is_enclave mems with
        | mc :: _ -> set_mem_color t inst id mc
        | [] -> (
          match mems with mc :: _ -> set_mem_color t inst id mc | [] -> ())
      end;
      set_instr_color t inst i (reg_color inst id)
    | None -> ())
  | Instr.Cast (op, v, ty) ->
    let vc = vcolor t inst v in
    result_flow Diagnostic.Confidentiality vc "cast operand";
    (match op, Instr.defines i with
    | (Instr.Bitcast | Instr.Inttoptr), Some id when Ty.is_pointer ty ->
      (* Rule 4 of §4: a cast cannot change a pointee color. *)
      let src_mem =
        match v with
        | Value.Reg _ | Value.Global _ | Value.Str _ -> mem_color t inst v
        | _ -> Mode.default_memory_color t.mode
      in
      let declared = Cenv.root_color (Ty.deref ty) in
      (match declared with
      | Some dst when Color.is_enclave dst ->
        if Color.is_enclave src_mem && not (Color.equal src_mem dst) then
          diag t inst Diagnostic.Pointer_cast loc
            "cast changes pointee color from %s to %s"
            (Color.to_string src_mem) (Color.to_string dst);
        set_mem_color t inst id dst
      | _ -> set_mem_color t inst id src_mem)
    | _ -> ());
    (match Instr.defines i with
    | Some id -> set_instr_color t inst i (reg_color inst id)
    | None -> ())
  | Instr.Gep (pointee, base, steps) ->
    (* Address computation. The result designates memory whose color is the
       accessed field/element's declared color, or the base's memory color
       when the field is unannotated (a field of a blue struct is blue). *)
    let base_mem =
      match base with
      | Value.Reg _ | Value.Global _ | Value.Str _ -> mem_color t inst base
      | _ -> Mode.default_memory_color t.mode
    in
    let declared = Cenv.root_color (Ty.deref i.ty) in
    let result_mem =
      match declared with
      | Some c when Color.is_enclave c -> c
      | _ -> base_mem
    in
    (* a colored field inside differently-colored storage is a multi-color
       structure: only representable in relaxed mode (§7.2, §8), unless
       the authenticated-pointer extension guarantees the integrity of the
       indirection loaded from unsafe memory *)
    let multicolor_access =
      match declared with
      | Some c ->
        Color.is_enclave c
        && (not (Color.equal base_mem c))
        && not (Color.equal base_mem Color.Free)
      | None -> false
    in
    (if multicolor_access && Mode.equal t.mode Mode.Hardened && not t.auth then
       match declared with
       | Some c ->
         diag t inst Diagnostic.Multicolor_struct loc
           "multi-color structure: %s field inside %s storage requires \
            relaxed mode (or the authenticated-pointer extension)"
           (Color.to_string c) (Color.to_string base_mem)
       | None -> ());
    ignore pointee;
    (match Instr.defines i with
    | Some id ->
      set_mem_color t inst id result_mem;
      (* indices computed from colored data taint the address (a secret-
         dependent access into another color is an indirect leak) *)
      List.iter
        (fun step ->
          match step with
          | Instr.Index v ->
            flow t inst loc Diagnostic.Confidentiality ~into:id
              (vcolor t inst v) "gep index"
          | Instr.Field _ -> ())
        steps;
      (* base pointer taint flows to the computed address — except through
         an authenticated multi-color indirection, whose MAC check launders
         the untrusted provenance of the base (§8 extension) *)
      if not (t.auth && multicolor_access) then
        flow t inst loc Diagnostic.Confidentiality ~into:id
          (vcolor t inst base) "gep base";
      set_instr_color t inst i (reg_color inst id)
    | None -> ())
  | Instr.Call (callee, args) -> visit_call t inst i callee args
  | Instr.Callind (fv, args) ->
    (* §6.3: an indirect call is a call to an external function in the
       untrusted part; arguments must be compatible with U *)
    List.iter
      (fun arg ->
        let ac = vcolor t inst arg in
        if not (Color.compatible ac Color.Unsafe) then
          diag t inst Diagnostic.Confidentiality i.loc
            "argument of indirect call leaks a %s value" (Color.to_string ac))
      (fv :: args);
    set_instr_color t inst i Color.Unsafe;
    (match Instr.defines i with
    | Some id ->
      flow t inst i.loc Diagnostic.Iago ~into:id (Mode.entry_color t.mode)
        "result of indirect call"
    | None -> ())
  | Instr.Spawn (callee, args) ->
    (* thread creation crosses the OS: arguments transit unsafe memory *)
    List.iter
      (fun arg ->
        let ac = vcolor t inst arg in
        if not (Color.compatible ac Color.Unsafe) then
          diag t inst Diagnostic.Confidentiality i.loc
            "spawn argument leaks a %s value through unsafe memory"
            (Color.to_string ac))
      args;
    if Pmodule.is_defined t.m callee then begin
      let eff = effective_arg_colors t inst i.loc callee args in
      let callee_key = { ik_func = callee; ik_args = eff } in
      Hashtbl.replace t.call_sites (inst.key, i.id) callee_key;
      ignore (instance t callee_key)
    end;
    set_instr_color t inst i Color.Unsafe);
  (* Rule 4: inside a block colored C, every output register and every
     instruction takes a color compatible with C (Fig. 4). *)
  let bc = block_color inst blk.Block.label in
  if not (Color.equal bc Color.Free) then begin
    result_flow Diagnostic.Implicit_leak bc "secret-dependent block";
    let ic = instr_color inst i in
    if not (Color.compatible ic bc) then
      diag t inst Diagnostic.Implicit_leak loc
        "%s instruction inside a %s-controlled region" (Color.to_string ic)
        (Color.to_string bc)
    else set_instr_color t inst i bc
  end

(* Rule 4 block coloring: blocks control-dependent on a conditional branch
   whose condition is colored take the condition's color. *)
let color_blocks t inst =
  List.iter
    (fun (b : Block.t) ->
      match b.term with
      | Instr.Condbr (c, _, _) ->
        let cc =
          match vcolor t inst c with
          | Color.Shared -> Color.Free
          | cc -> cc
        in
        let cc =
          (* a branch inside a colored region propagates the region color *)
          let bc = block_color inst b.label in
          if Color.equal cc Color.Free then bc else cc
        in
        if not (Color.equal cc Color.Free) then
          List.iter
            (fun label ->
              let cur = block_color inst label in
              if Color.equal cur Color.Free then begin
                Hashtbl.replace inst.block_color label cc;
                t.changed <- true
              end
              else if not (Color.compatible cur cc) then
                diag t inst Diagnostic.Implicit_leak Loc.none
                  "block %%%s is controlled by both %s and %s secrets" label
                  (Color.to_string cur) (Color.to_string cc))
            (Dom.influence_region inst.cfg inst.pdom b.label)
      | _ -> ())
    inst.func.Func.blocks

let visit_term t inst (b : Block.t) =
  match b.Block.term with
  | Instr.Ret v ->
    let vc =
      match v with Some v -> vcolor t inst v | None -> Color.Free
    in
    (* returning from a secret-dependent region reveals the path: the
       return value inherits the block color *)
    let vc =
      let bc = block_color inst b.label in
      if Color.equal vc Color.Free then bc else vc
    in
    if not (Color.equal vc Color.Free) then begin
      if Color.equal inst.ret_color Color.Free then begin
        inst.ret_color <- vc;
        t.changed <- true
      end
      else if not (Color.compatible inst.ret_color vc) then
        diag t inst Diagnostic.Confidentiality Loc.none
          "function returns both %s and %s values"
          (Color.to_string inst.ret_color) (Color.to_string vc)
    end;
    (match v with
    | Some v when Ty.is_pointer inst.func.Func.ret ->
      check_ptr_assign t inst Loc.none ~target_elem:inst.func.Func.ret
        "return" v;
      let mc = val_mem t inst v in
      (match inst.ret_mem with
      | Some cur when Color.is_enclave cur || Color.equal cur mc -> ()
      | Some _ when not (Color.is_enclave mc) -> ()
      | _ ->
        if not (Color.equal mc Color.Free) then begin
          inst.ret_mem <- Some mc;
          t.changed <- true
        end)
    | _ -> ())
  | Instr.Br _ | Instr.Condbr _ | Instr.Unreachable -> ()

let analyze_instance t inst =
  color_blocks t inst;
  List.iter
    (fun label ->
      let b = Func.find_block_exn inst.func label in
      List.iter (fun i -> visit_instr t inst b i) b.Block.instrs;
      visit_term t inst b)
    (Cfg.reverse_postorder inst.cfg)

(* ------------------------------------------------------------------ *)
(* whole-module analysis                                               *)

(* Functions whose address is taken anywhere get an entry-like instance:
   an indirect call may reach them from the untrusted part (§6.3). *)
let address_taken_funcs (m : Pmodule.t) : string list =
  let taken = Hashtbl.create 8 in
  Pmodule.iter_funcs m (fun f ->
      Func.iter_instrs f (fun _ i ->
          let ops =
            match i.Instr.op with
            | Instr.Call (_, args) -> args
            | _ -> Instr.operands i
          in
          List.iter
            (function
              | Value.Func name -> Hashtbl.replace taken name ()
              | _ -> ())
            ops));
  Hashtbl.fold (fun name () acc -> name :: acc) taken []
  |> List.sort String.compare

let root_instances t =
  let root name =
    match Pmodule.find_func t.m name with
    | None -> ()
    | Some f ->
      let args =
        List.map
          (fun (_, pty) ->
            match Cenv.root_color pty with
            | Some c when not (Ty.is_pointer pty) -> c
            | _ -> Mode.entry_color t.mode)
          f.Func.params
      in
      ignore (instance t { ik_func = name; ik_args = args })
  in
  List.iter root (List.sort String.compare (Pmodule.entry_points t.m));
  List.iter root (address_taken_funcs t.m)

let max_passes = 64

let run ?(mode = Mode.Hardened) ?(auth_pointers = false) (m : Pmodule.t) : t =
  let t =
    {
      mode;
      auth = auth_pointers;
      m;
      instances = Hashtbl.create 16;
      order = [];
      call_sites = Hashtbl.create 64;
      diagnostics = [];
      changed = false;
      collect = false;
    }
  in
  root_instances t;
  let pass () =
    (* instances created during the pass are analyzed within the same pass *)
    let seen = Hashtbl.create 16 in
    let rec drain () =
      let todo =
        List.filter (fun k -> not (Hashtbl.mem seen k)) (List.rev t.order)
      in
      if todo <> [] then begin
        List.iter
          (fun k ->
            Hashtbl.replace seen k ();
            analyze_instance t (Hashtbl.find t.instances k))
          todo;
        drain ()
      end
    in
    drain ()
  in
  let passes = ref 0 in
  t.changed <- true;
  while t.changed && !passes < max_passes do
    t.changed <- false;
    incr passes;
    pass ()
  done;
  (* final reporting pass *)
  t.collect <- true;
  pass ();
  t.diagnostics <- List.rev t.diagnostics;
  t

let ok t = t.diagnostics = []

let instances t =
  List.rev_map (fun k -> Hashtbl.find t.instances k) t.order

let find_instance t name args =
  Hashtbl.find_opt t.instances { ik_func = name; ik_args = args }

(* Callee instance resolved at a given call/spawn site. *)
let call_site t key instr_id = Hashtbl.find_opt t.call_sites (key, instr_id)

(* Value color of a register in an instance (F when never colored). *)
let register_color inst r = reg_color inst r

(* Executing color of an instruction in an instance. *)
let instruction_color inst (i : Instr.t) = instr_color inst i

(* Colorset of an instance (§7.3.1): executing colors of its instructions,
   F and S excluded (S stores are placed into an existing chunk). *)
let colorset (inst : instance) : Color.Set.t =
  let add c set =
    match c with
    | Color.Free | Color.Shared -> set
    | c -> Color.Set.add c set
  in
  let set =
    Hashtbl.fold (fun _ c set -> add c set) inst.instr_color Color.Set.empty
  in
  (* parameter colors count: the chunk must receive its colored arguments *)
  List.fold_left (fun set c -> add c set) set inst.key.ik_args

let pp_report fmt t =
  Format.fprintf fmt "mode: %a@." Mode.pp t.mode;
  List.iter
    (fun inst ->
      Format.fprintf fmt "instance %s: colorset {%s} ret %a@." inst.iname
        (String.concat ", "
           (List.map Color.to_string (Color.Set.elements (colorset inst))))
        Color.pp inst.ret_color)
    (instances t);
  List.iter (fun d -> Format.fprintf fmt "%a@." Diagnostic.pp d) t.diagnostics
