(** The two compiler modes (paper §5, Table 2). *)

open Privagic_pir

type t =
  | Hardened
      (** Enforces confidentiality, integrity, and Iago protection.
          Unannotated memory is U; values loaded from U stay U, so an
          enclave can never consume them. *)
  | Relaxed
      (** Enforces confidentiality and integrity only. Unannotated memory
          is S; values loaded from S become F and may be consumed inside
          enclaves — the accepted Iago surface. Required for multi-color
          structures (§7.2). *)

val equal : t -> t -> bool

(** Color given to unannotated memory locations (Table 2). *)
val default_memory_color : t -> Color.t

(** Color of entry-point arguments and of values produced by the untrusted
    world (§6.2, §5.3): U in hardened mode, F in relaxed mode. *)
val entry_color : t -> Color.t

val to_string : t -> string
val pp : Format.formatter -> t -> unit
