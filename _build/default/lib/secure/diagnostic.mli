(** Secure-typing diagnostics, each mapping to one of §4's guarantees. *)

open Privagic_pir

type kind =
  | Confidentiality   (** a colored value would escape its enclave *)
  | Integrity         (** a store into an enclave from outside it *)
  | Iago              (** an enclave would consume an untrusted value *)
  | Implicit_leak     (** rule 4: leak through a conditional (Fig. 4) *)
  | Pointer_cast      (** rule 4 of §4: a pointee color would change *)
  | Multicolor_struct (** §8: multi-color structure in hardened mode *)
  | Cross_enclave_f   (** §7.3.2: an F value would cross partitions in
                          hardened mode, or a chunk reads a register
                          computed in another partition *)

type t = {
  kind : kind;
  func : string;  (** specialized instance name, e.g. ["f@blue"] *)
  loc : Loc.t;
  msg : string;
}

val kind_to_string : kind -> string
val make : kind:kind -> func:string -> loc:Loc.t -> string -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
