(* Critical-path analysis over the recorded happens-before edges.

   The virtual-time execution gives every event an exact causal timestamp,
   so the critical path can be recovered by walking *backward* from the
   makespan: at any point (track, t) the predecessor is the latest binding
   causal entry on that track at or before t —

   - a [Msg_recv] whose matching [Msg_send] lives on another track and
     whose receive time equals the send time (the receiver waited: the
     message was binding; a receive later than its send means the
     receiver's own clock dominated and the wait was free);
   - a [Fiber_start] (the fiber could not run before its spawn; the
     matching [Fiber_spawn] names the spawning track);
   - a [Fiber_resume] whose arrival timestamp exceeds the clock it blocked
     at, matched by timestamp against a send-like event on another track
     (the fallback for schedulers used without the VM's flow ids).

   Each hop lands at exactly the same virtual time on the predecessor
   track, so the path segments tile [0, makespan] with no gaps and their
   lengths sum to the makespan — the invariant the property tests check
   against [Sched.max_clock]. *)

type segment = {
  s_track : int;
  s_from : float;
  s_upto : float;
  s_via : string;      (* how the path entered this segment *)
}

type t = {
  cp_makespan : float;
  cp_segments : segment list;        (* chronological, tiling [0, makespan] *)
  cp_by_track : (int * float) list;  (* cycles attributed per track *)
  cp_by_chunk : (string * float) list; (* cycles attributed per chunk *)
  cp_complete : bool;                (* the walk reached time 0 *)
}

let total t =
  List.fold_left (fun acc s -> acc +. (s.s_upto -. s.s_from)) 0.0 t.cp_segments

let eps = 1e-6

(* Chunk spans per track, from paired Chunk_begin/Chunk_end events. *)
let chunk_spans (evs : Event.t array) =
  let stacks : (int, (string * float) list ref) Hashtbl.t = Hashtbl.create 8 in
  let spans = ref [] in
  Array.iter
    (fun (e : Event.t) ->
      let stack =
        match Hashtbl.find_opt stacks e.Event.track with
        | Some s -> s
        | None ->
          let s = ref [] in
          Hashtbl.replace stacks e.Event.track s;
          s
      in
      match e.Event.kind with
      | Event.Chunk_begin -> stack := (e.Event.name, e.Event.at) :: !stack
      | Event.Chunk_end -> (
        match !stack with
        | (name, t0) :: rest ->
          stack := rest;
          spans := (e.Event.track, name, t0, e.Event.at) :: !spans
        | [] -> ())
      | _ -> ())
    evs;
  !spans

(* [since] bounds the walk on the left: the path tiles [since, makespan]
   and anything earlier is out of the analysis window (e.g. a discarded
   warm-up phase whose events were cleared from the recorder). *)
let analyze ?(since = 0.0) (evs : Event.t array) : t =
  if Array.length evs = 0 then
    { cp_makespan = 0.0; cp_segments = []; cp_by_track = []; cp_by_chunk = [];
      cp_complete = true }
  else begin
    (* per-track event lists, sorted by time (stable: record order breaks
       ties, which is chronological per fiber) *)
    let by_track : (int, Event.t array) Hashtbl.t = Hashtbl.create 8 in
    let tmp : (int, Event.t list ref) Hashtbl.t = Hashtbl.create 8 in
    Array.iter
      (fun (e : Event.t) ->
        match Hashtbl.find_opt tmp e.Event.track with
        | Some l -> l := e :: !l
        | None -> Hashtbl.replace tmp e.Event.track (ref [ e ]))
      evs;
    Hashtbl.iter
      (fun k l ->
        let a = Array.of_list (List.rev !l) in
        let a' = Array.copy a in
        (* stable sort by timestamp *)
        let idx = Array.mapi (fun i e -> (i, e)) a' in
        Array.sort
          (fun (i, (x : Event.t)) (j, (y : Event.t)) ->
            match Float.compare x.Event.at y.Event.at with
            | 0 -> compare i j
            | c -> c)
          idx;
        Hashtbl.replace by_track k (Array.map snd idx))
      tmp;
    (* sends by flow id *)
    let send_by_flow : (int, Event.t) Hashtbl.t = Hashtbl.create 64 in
    Array.iter
      (fun (e : Event.t) ->
        match e.Event.kind with
        | Event.Msg_send -> Hashtbl.replace send_by_flow e.Event.arg e
        | _ -> ())
      evs;
    (* spawns by child track: list sorted by time *)
    let spawns : (int, Event.t list ref) Hashtbl.t = Hashtbl.create 8 in
    Array.iter
      (fun (e : Event.t) ->
        match e.Event.kind with
        | Event.Fiber_spawn -> (
          match Hashtbl.find_opt spawns e.Event.track with
          | Some l -> l := e :: !l
          | None -> Hashtbl.replace spawns e.Event.track (ref [ e ]))
        | _ -> ())
      evs;
    (* send-like events usable for timestamp matching (the scheduler-only
       fallback when no flow id is available) *)
    let send_like =
      Array.of_list
        (List.filter
           (fun (e : Event.t) ->
             match e.Event.kind with
             | Event.Msg_send | Event.Fiber_finish | Event.Chunk_end -> true
             | _ -> false)
           (Array.to_list evs))
    in
    let makespan =
      Array.fold_left (fun acc (e : Event.t) -> Float.max acc e.Event.at) 0.0
        evs
    in
    (* the walk starts at the track holding the latest event *)
    let last =
      Array.fold_left
        (fun (best : Event.t) (e : Event.t) ->
          if e.Event.at > best.Event.at then e else best)
        evs.(0) evs
    in
    let segments = ref [] in
    let complete = ref false in
    let guard = ref (Array.length evs + 8) in
    let cur_track = ref last.Event.track in
    let cur_time = ref makespan in
    let finished = ref false in
    while not !finished && !guard > 0 do
      decr guard;
      let track_evs =
        match Hashtbl.find_opt by_track !cur_track with
        | Some a -> a
        | None -> [||]
      in
      (* latest binding causal entry on [cur_track] at or before cur_time *)
      let entry = ref None in
      (try
         for i = Array.length track_evs - 1 downto 0 do
           let e = track_evs.(i) in
           if e.Event.at <= !cur_time +. eps then begin
             match e.Event.kind with
             | Event.Msg_recv -> (
               match Hashtbl.find_opt send_by_flow e.Event.arg with
               | Some s
                 when s.Event.track <> !cur_track
                      && e.Event.at <= s.Event.at +. eps ->
                 (* binding receive: the receiver waited for this send *)
                 entry :=
                   Some (e.Event.at, s.Event.track,
                         Printf.sprintf "msg:%s" s.Event.name);
                 raise Exit
               | _ -> () (* non-binding or local: keep scanning *))
             | Event.Fiber_start -> (
               (* the spawn that started this fiber: latest spawn on this
                  track at or before the start *)
               match Hashtbl.find_opt spawns !cur_track with
               | Some l ->
                 let cands =
                   List.filter
                     (fun (s : Event.t) -> s.Event.at <= e.Event.at +. eps)
                     !l
                 in
                 let parent =
                   List.fold_left
                     (fun acc (s : Event.t) ->
                       match acc with
                       | Some (a : Event.t) when a.Event.at >= s.Event.at ->
                         acc
                       | _ -> Some s)
                     None cands
                 in
                 (match parent with
                 | Some s when s.Event.arg >= 0 && s.Event.arg <> !cur_track
                   ->
                   entry := Some (e.Event.at, s.Event.arg, "spawn");
                   raise Exit
                 | Some s when s.Event.arg = !cur_track ->
                   (* serialized after earlier work on this same track
                      (e.g. the previous request of the thread): the
                      fiber boundary is not a causal entry — keep
                      scanning backward *)
                   ()
                 | _ ->
                   (* externally spawned: the chain ends here *)
                   entry := Some (e.Event.at, -1, "origin");
                   raise Exit)
               | None ->
                 entry := Some (e.Event.at, -1, "origin");
                 raise Exit)
             | Event.Fiber_resume when e.Event.farg > 0.0 -> (
               (* binding only if the arrival moved the clock: find the
                  send-like event at that timestamp on another track *)
               let arr = e.Event.farg in
               if arr >= e.Event.at -. eps then begin
                 let cause = ref None in
                 Array.iter
                   (fun (s : Event.t) ->
                     if
                       s.Event.track <> !cur_track
                       && Float.abs (s.Event.at -. arr) <= eps
                       && !cause = None
                     then cause := Some s)
                   send_like;
                 match !cause with
                 | Some s ->
                   entry := Some (e.Event.at, s.Event.track, "resume");
                   raise Exit
                 | None -> ()
               end)
             | _ -> ()
           end
         done
       with Exit -> ());
      match !entry with
      | Some (t0, next_track, via) ->
        let t0 = Float.min t0 !cur_time in
        segments :=
          { s_track = !cur_track; s_from = t0; s_upto = !cur_time; s_via = via }
          :: !segments;
        if next_track < 0 || t0 <= since +. eps then begin
          complete := t0 <= since +. eps;
          (* attribute any remaining head segment to the origin track *)
          if t0 > since +. eps then
            segments :=
              { s_track = !cur_track; s_from = since; s_upto = t0;
                s_via = "unattributed" }
              :: !segments;
          finished := true
        end
        else begin
          cur_track := next_track;
          cur_time := t0
        end
      | None ->
        (* no causal entry: the whole prefix belongs to this track *)
        segments :=
          { s_track = !cur_track; s_from = since; s_upto = !cur_time;
            s_via = "start" }
          :: !segments;
        complete := true;
        finished := true
    done;
    if not !finished then
      (* walk guard tripped: close the path so lengths still tile *)
      segments :=
        { s_track = !cur_track; s_from = since; s_upto = !cur_time;
          s_via = "guard" }
        :: !segments;
    let segments = !segments in
    let by_track = Hashtbl.create 8 in
    List.iter
      (fun s ->
        let d = s.s_upto -. s.s_from in
        Hashtbl.replace by_track s.s_track
          (d
          +. match Hashtbl.find_opt by_track s.s_track with
             | Some x -> x
             | None -> 0.0))
      segments;
    (* attribute path time to chunks by intersecting with chunk spans *)
    let spans = chunk_spans evs in
    let by_chunk = Hashtbl.create 8 in
    let add_chunk name d =
      if d > 0.0 then
        Hashtbl.replace by_chunk name
          (d
          +. match Hashtbl.find_opt by_chunk name with
             | Some x -> x
             | None -> 0.0)
    in
    List.iter
      (fun s ->
        let covered = ref 0.0 in
        List.iter
          (fun (track, name, t0, t1) ->
            if track = s.s_track then begin
              let lo = Float.max t0 s.s_from and hi = Float.min t1 s.s_upto in
              if hi > lo then begin
                add_chunk name (hi -. lo);
                covered := !covered +. (hi -. lo)
              end
            end)
          spans;
        (* innermost spans may overlap (nested chunks): clamp the residue *)
        let residue = Float.max 0.0 (s.s_upto -. s.s_from -. !covered) in
        add_chunk "<runtime>" residue)
      segments;
    {
      cp_makespan = makespan;
      cp_segments = segments;
      cp_by_track =
        List.sort
          (fun (_, a) (_, b) -> Float.compare b a)
          (Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_track []);
      cp_by_chunk =
        List.sort
          (fun (_, a) (_, b) -> Float.compare b a)
          (Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_chunk []);
      cp_complete = !complete;
    }
  end

let pp ?(track_name = fun k -> Printf.sprintf "track-%d" k) fmt t =
  let open Format in
  fprintf fmt "critical path (makespan %.0f cycles):@." t.cp_makespan;
  List.iter
    (fun s ->
      fprintf fmt "  %10.0f .. %-10.0f  %-24s  (+%.0f, via %s)@." s.s_from
        s.s_upto (track_name s.s_track) (s.s_upto -. s.s_from) s.s_via)
    t.cp_segments;
  fprintf fmt "attribution by worker:@.";
  List.iter
    (fun (k, d) ->
      fprintf fmt "  %-24s %12.0f cycles (%4.1f%%)@." (track_name k) d
        (if t.cp_makespan > 0.0 then 100.0 *. d /. t.cp_makespan else 0.0))
    t.cp_by_track;
  fprintf fmt "attribution by chunk:@.";
  List.iter
    (fun (name, d) ->
      fprintf fmt "  %-24s %12.0f cycles (%4.1f%%)@." name d
        (if t.cp_makespan > 0.0 then 100.0 *. d /. t.cp_makespan else 0.0))
    t.cp_by_chunk;
  fprintf fmt "path total: %.0f cycles%s@." (total t)
    (if t.cp_complete then "" else "  (incomplete walk)")
