lib/telemetry/chrome_trace.ml: Array Buffer Char Event Hashtbl List Printf Recorder String
