lib/telemetry/event.ml:
