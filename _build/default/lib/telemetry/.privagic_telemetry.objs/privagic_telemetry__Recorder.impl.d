lib/telemetry/recorder.ml: Array Event Hashtbl List Printf
