lib/telemetry/metrics.ml: Array Float Format Hashtbl List
