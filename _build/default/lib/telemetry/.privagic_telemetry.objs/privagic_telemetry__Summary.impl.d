lib/telemetry/summary.ml: Array Critical_path Event Float Format Hashtbl List Metrics Option Printf Recorder
