lib/telemetry/critical_path.ml: Array Event Float Format Hashtbl List Printf
