(* Deterministic virtual-time scheduler.

   Workers are cooperative fibers (OCaml effect handlers). Each worker owns
   a virtual clock (a [float ref] of simulated cycles) that its code
   advances as it accounts work; a worker blocks by performing
   [Block (cond, arrival)]: it becomes runnable again when [cond ()] holds,
   and on resumption its clock jumps to at least [arrival ()] — the causal
   timestamp of whatever it waited for. The scheduler always resumes the
   runnable worker with the smallest clock, making the simulation a
   deterministic discrete-event execution: no wall clock, no races,
   reproducible benchmark numbers. *)

type _ Effect.t +=
  | Block : (unit -> bool) * (unit -> float) -> unit Effect.t

type worker_state =
  | Not_started of (float ref -> unit)
  | Blocked of (unit -> bool) * (unit -> float)
      * (unit, unit) Effect.Deep.continuation
  | Running
  | Finished

type worker = {
  wid : int;
  name : string;
  clock : float ref;
  mutable state : worker_state;
}

type t = { mutable workers : worker list; mutable next_id : int;
           mutable steps : int }

exception Deadlock of string list

let create () = { workers = []; next_id = 0; steps = 0 }

let spawn t ~name ~at body =
  let w =
    { wid = t.next_id; name; clock = ref at; state = Not_started body }
  in
  t.next_id <- t.next_id + 1;
  t.workers <- t.workers @ [ w ];
  w

(* Called from inside a worker fiber: wait until [cond] holds; the clock
   then advances to at least [arrival ()]. *)
let block cond arrival = Effect.perform (Block (cond, arrival))

let handler (w : worker) =
  let open Effect.Deep in
  {
    retc = (fun () -> w.state <- Finished);
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Block (cond, arrival) ->
          Some
            (fun (k : (a, unit) continuation) ->
              w.state <- Blocked (cond, arrival, k))
        | _ -> None);
  }

let step_worker w =
  match w.state with
  | Not_started body ->
    w.state <- Running;
    Effect.Deep.match_with (fun () -> body w.clock) () (handler w)
  | Blocked (_, arrival, k) ->
    w.clock := Float.max !(w.clock) (arrival ());
    w.state <- Running;
    Effect.Deep.continue k ()
  | Running | Finished -> invalid_arg "Sched.step_worker"

let runnable w =
  match w.state with
  | Not_started _ -> true
  | Blocked (cond, _, _) -> cond ()
  | Running | Finished -> false

(* Run until every worker is finished or blocked on an unsatisfiable
   condition. New workers spawned during the run are picked up. Workers
   left blocked are not an error when [allow_blocked] — they are servers
   waiting for their next message. *)
let run ?(allow_blocked = true) ?(max_steps = max_int) t =
  let continue = ref true in
  while !continue do
    t.steps <- t.steps + 1;
    if t.steps > max_steps then failwith "Sched.run: step budget exceeded";
    (* drop finished fibers so long sessions do not accumulate garbage *)
    t.workers <-
      List.filter (fun w -> match w.state with Finished -> false | _ -> true)
        t.workers;
    let candidates = List.filter runnable t.workers in
    match candidates with
    | [] ->
      let blocked =
        List.filter_map
          (fun w ->
            match w.state with Blocked _ -> Some w.name | _ -> None)
          t.workers
      in
      if blocked <> [] && not allow_blocked then raise (Deadlock blocked);
      continue := false
    | first :: rest ->
      let best =
        List.fold_left
          (fun best w ->
            if
              !(w.clock) < !(best.clock)
              || (!(w.clock) = !(best.clock) && w.wid < best.wid)
            then w
            else best)
          first rest
      in
      step_worker best
  done

(* Largest clock across workers: the makespan of the simulated execution. *)
let max_clock t =
  List.fold_left (fun acc w -> Float.max acc !(w.clock)) 0.0 t.workers

let worker_count t = List.length t.workers
