(* Inter-enclave messages of the Privagic runtime (paper §7.3.2).

   - [Spawn] starts a missing chunk in the receiving worker; it names the
     chunk (instance + color) and carries the arguments the receiving
     enclave is allowed to see (its own color's and the constants).
   - [Cont] carries an F value (relaxed mode only): a trampolined argument,
     a returned value, or a barrier token.

   This module documents the wire protocol; the payload type is generic
   over the value representation. The partitioned VM keeps an equivalent
   internal variant specialized to its runtime values (selective receive
   over a mailbox); the envelopes here travel through the real lock-free
   queue in the runtime tests. *)

type 'v t =
  | Spawn of {
      chunk : string;            (* chunk name, e.g. "f@blue#blue" *)
      args : 'v option array;    (* None = argument withheld (foreign color) *)
      frame : int;               (* shared-frame id for S stack slots *)
      seq : int;                 (* call sequence number, for matching *)
    }
  | Cont of {
      seq : int;                 (* matches the call/barrier it belongs to *)
      tag : cont_tag;
      value : 'v option;
    }

and cont_tag =
  | Arg of int                   (* trampolined F argument at position i *)
  | Retval                       (* returned F value *)
  | Token                        (* synchronization barrier token (§7.3.3) *)

(* A timestamped envelope: virtual-time simulation attaches the sender's
   clock plus the transfer cost so the receiver can advance causally. *)
type 'v envelope = { sent_at : float; payload : 'v t }
