(** Deterministic virtual-time scheduler.

    Workers are cooperative fibers (OCaml effect handlers). Each worker
    owns a virtual clock — a [float ref] of simulated cycles — that its
    code advances as it accounts work. A worker blocks by performing
    {!block}[ cond arrival]: it becomes runnable again when [cond ()]
    holds, and on resumption its clock jumps to at least [arrival ()]
    (the causal timestamp of whatever it waited for). The scheduler always
    resumes the runnable worker with the smallest clock, which makes the
    simulation a deterministic discrete-event execution. *)

type worker_state =
  | Not_started of (float ref -> unit)
  | Blocked of (unit -> bool) * (unit -> float)
      * (unit, unit) Effect.Deep.continuation
  | Running
  | Finished

type worker = {
  wid : int;
  name : string;
  clock : float ref;
  mutable state : worker_state;
}

type t = {
  mutable workers : worker list;
  mutable next_id : int;
  mutable steps : int;
}

exception Deadlock of string list
(** Names of the workers blocked on unsatisfiable conditions (raised only
    when [run ~allow_blocked:false]). *)

val create : unit -> t

(** [spawn t ~name ~at body] registers a fiber whose clock starts at [at];
    it runs when the scheduler first picks it. May be called from inside a
    running fiber. *)
val spawn : t -> name:string -> at:float -> (float ref -> unit) -> worker

(** Block the calling fiber; only valid inside a fiber run by {!run}. *)
val block : (unit -> bool) -> (unit -> float) -> unit

(** Run until every worker has finished or is blocked on a false condition.
    Workers left blocked are servers awaiting messages unless
    [allow_blocked] is [false], in which case {!Deadlock} is raised.
    Finished fibers are pruned. *)
val run : ?allow_blocked:bool -> ?max_steps:int -> t -> unit

(** Largest clock across live workers (the makespan). *)
val max_clock : t -> float

val worker_count : t -> int
