lib/runtime/msqueue.mli:
