lib/runtime/message.ml:
