lib/runtime/msqueue.ml: Atomic
