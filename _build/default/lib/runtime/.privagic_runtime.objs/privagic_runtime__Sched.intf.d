lib/runtime/sched.mli: Effect
