lib/runtime/sched.mli: Effect Privagic_telemetry
