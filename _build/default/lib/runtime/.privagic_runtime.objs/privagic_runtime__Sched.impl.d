lib/runtime/sched.ml: Effect Float List
