lib/runtime/sched.ml: Effect Float List Privagic_telemetry
