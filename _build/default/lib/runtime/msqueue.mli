(** Lock-free multi-producer multi-consumer FIFO queue (Michael & Scott,
    1996), the communication channel the Privagic runtime stores in unsafe
    memory between worker threads (paper §7.3.2, refs [21, 28]).

    The implementation relies on [Atomic] compare-and-set on the head and
    tail pointers; OCaml's GC plays the role of the hazard pointers of the
    original algorithm, so no manual reclamation is needed. Safe under true
    parallelism (domains). *)

type 'a t

val create : unit -> 'a t

(** Enqueue at the tail. Lock-free: at least one of any set of concurrently
    enqueueing threads makes progress. *)
val push : 'a t -> 'a -> unit

(** Dequeue from the head; [None] when the queue is observed empty. *)
val pop : 'a t -> 'a option

val is_empty : 'a t -> bool

(** Snapshot length — exact only in quiescent states; used by tests and by
    the simulator's queue-depth statistics. *)
val length : 'a t -> int
