(** Recursive-descent parser for mini-C. Deviations from C are documented
    in the implementation header (one 64-bit [int], the color qualifier
    after the base type or a [*], [entry]/[within]/[ignore] annotations,
    [spawn f(args)] for threads). *)

open Privagic_pir

exception Error of Loc.t * string

(** Parser state over a token array. *)
type t

val create : (Token.t * Loc.t) list -> t

(** Exposed for tests: parse a single type from the current position. *)
val parse_type : t -> Ty.t

(** @raise Error on syntax errors, [Lexer.Error] on lexical ones. *)
val parse_program : ?file:string -> string -> Ast.program
