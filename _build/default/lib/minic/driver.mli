(** Front door of the frontend: annotated mini-C source text to a
    verified, mem2reg'd PIR module — the exact artifact the Privagic
    analysis consumes (paper Figure 5). *)

open Privagic_pir

type error = { loc : Loc.t; msg : string; phase : string }
(** [phase] is one of ["lex"], ["parse"], ["type"], ["lower"]. *)

exception Error of error

(** [compile ~file src] runs lexer, parser, sema, lowering, unreachable
    cleanup, verification, and (unless [mem2reg:false]) the §5.1 pipeline.
    @raise Error with the failing phase and location. *)
val compile : ?file:string -> ?mem2reg:bool -> string -> Pmodule.t

val error_to_string : error -> string
