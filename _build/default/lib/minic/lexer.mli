(** Hand-written lexer for mini-C: //- and /* */-comments, decimal and
    hexadecimal integers, floats, character and string literals with the
    usual escapes. *)

open Privagic_pir

exception Error of Loc.t * string

type t

val create : ?file:string -> string -> t

(** Next token with its source location. *)
val next : t -> Token.t * Loc.t

(** Whole input, ending with [EOF].
    @raise Error on lexical errors. *)
val tokenize : ?file:string -> string -> (Token.t * Loc.t) list
