(* Semantic analysis: symbol resolution, C-style type checking with implicit
   conversions, array decay, lvalue classification. Produces a typed AST
   consumed by [Lower].

   Colors are deliberately *not* checked here: exactly as clang passes the
   annotate attribute through to LLVM IR (paper §2.2), the frontend only
   threads colors into the types; all security checking happens in the
   secure type system on PIR. *)

open Privagic_pir

exception Error of Loc.t * string

let error loc fmt = Format.kasprintf (fun s -> raise (Error (loc, s))) fmt

(* --- typed AST --- *)

type texpr = { tdesc : tdesc; tty : Ty.t; tloc : Loc.t }

and tdesc =
  | TInt of int64
  | TFloat of float
  | TString of string
  | TNull
  | TLocal of string            (* local variable or parameter *)
  | TGlobal of string
  | TUnop of Ast.unop * texpr
  | TBinop of Ast.binop * texpr * texpr
  | TPtradd of texpr * texpr    (* pointer + integer (element-scaled) *)
  | TAssign of texpr * texpr    (* lvalue, value *)
  | TCall of string * texpr list
  | TCallptr of texpr * texpr list
  | TIndex of texpr * texpr     (* base (pointer or array lvalue), index *)
  | TField of texpr * string * int   (* struct expr (lvalue), struct name, field idx *)
  | TCast of Ty.t * texpr
  | TSizeof of Ty.t
  | TFuncaddr of string
  | TDecay of texpr             (* array lvalue used as a pointer value *)

type tstmt = { tsdesc : tsdesc; tsloc : Loc.t }

and tsdesc =
  | TExpr of texpr
  | TDecl of Ty.t * string * texpr option
  | TIf of texpr * tstmt list * tstmt list
  | TWhile of texpr * tstmt list
  | TFor of tstmt option * texpr option * tstmt option * tstmt list
  | TReturn of texpr option
  | TBreak
  | TContinue
  | TBlock of tstmt list
  | TSpawn of string * texpr list

type tfunc = {
  tfname : string;
  tfret : Ty.t;
  tfparams : (string * Ty.t) list;
  tfbody : tstmt list;
  tfannots : Annot.t list;
  tfloc : Loc.t;
}

type tprogram = {
  tstructs : (string * (string * Ty.t) list) list;
  tglobals : (string * Ty.t * texpr option * Loc.t) list;
  tfuncs : tfunc list;
  texterns : (string * Ty.t * (string * Ty.t) list * Annot.t list) list;
}

(* --- environment --- *)

type env = {
  structs : (string, (string * Ty.t) list) Hashtbl.t;
  globals : (string, Ty.t) Hashtbl.t;
  funcs : (string, Ty.t * Ty.t list * Annot.t list) Hashtbl.t; (* ret, params *)
  mutable scopes : (string, Ty.t) Hashtbl.t list;
  mutable current_ret : Ty.t;
}

let create_env () =
  {
    structs = Hashtbl.create 16;
    globals = Hashtbl.create 16;
    funcs = Hashtbl.create 16;
    scopes = [];
    current_ret = Ty.void;
  }

let push_scope env = env.scopes <- Hashtbl.create 8 :: env.scopes
let pop_scope env = env.scopes <- List.tl env.scopes

let declare_local env loc name ty =
  match env.scopes with
  | [] -> error loc "internal: no scope"
  | scope :: _ ->
    if Hashtbl.mem scope name then error loc "redeclaration of %s" name;
    Hashtbl.replace scope name ty

let lookup_local env name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
      match Hashtbl.find_opt scope name with
      | Some ty -> Some ty
      | None -> go rest)
  in
  go env.scopes

let struct_fields env loc name =
  match Hashtbl.find_opt env.structs name with
  | Some fs -> fs
  | None -> error loc "unknown struct %s" name

(* --- type utilities --- *)

let is_void t = match t.Ty.desc with Ty.Void -> true | _ -> false
let is_arr t = match t.Ty.desc with Ty.Arr _ -> true | _ -> false
let is_struct t = match t.Ty.desc with Ty.Struct _ -> true | _ -> false

let rec check_complete env loc (t : Ty.t) =
  match t.Ty.desc with
  | Ty.Struct name ->
    ignore (struct_fields env loc name)
  | Ty.Arr (u, _) | Ty.Ptr u -> check_complete_shallow env loc u
  | _ -> ()

and check_complete_shallow env loc (t : Ty.t) =
  (* Pointee structs may be forward references in C; we require structs to be
     defined before use at all, which our programs satisfy; only check
     direct struct/array types. *)
  match t.Ty.desc with
  | Ty.Arr (u, _) -> check_complete env loc u
  | _ -> ()

(* Implicit conversion of [e] to target type [want]; inserts casts/decay.
   Returns None when no implicit conversion exists. *)
let rec convert (e : texpr) (want : Ty.t) : texpr option =
  let have = e.tty in
  if Ty.equal ~ignore_color:true have want then Some e
  else
    match have.Ty.desc, want.Ty.desc with
    | Ty.I8, Ty.I64 | Ty.I1, Ty.I64 | Ty.I1, Ty.I8 ->
      Some { e with tdesc = TCast (want, e); tty = want }
    | Ty.I64, Ty.I8 | Ty.I64, Ty.I1 | Ty.I8, Ty.I1 ->
      Some { e with tdesc = TCast (want, e); tty = want }
    | (Ty.I8 | Ty.I64), Ty.F64 | Ty.F64, (Ty.I8 | Ty.I64) ->
      Some { e with tdesc = TCast (want, e); tty = want }
    | Ty.Ptr _, Ty.Ptr { Ty.desc = Ty.Void; _ } ->
      Some { e with tdesc = TCast (want, e); tty = want }
    | Ty.Ptr { Ty.desc = Ty.Void; _ }, Ty.Ptr _ ->
      Some { e with tdesc = TCast (want, e); tty = want }
    | Ty.Arr (elt, _), Ty.Ptr want_elt
      when Ty.equal ~ignore_color:true elt want_elt ->
      Some { e with tdesc = TDecay e; tty = Ty.ptr elt }
    | Ty.Arr (elt, _), Ty.Ptr { Ty.desc = Ty.Void; _ } ->
      let decayed = { e with tdesc = TDecay e; tty = Ty.ptr elt } in
      convert decayed want
    | _, Ty.Ptr _ when e.tdesc = TNull -> Some { e with tty = want }
    | Ty.Fun _, Ty.Ptr { Ty.desc = Ty.Fun _; _ } -> Some { e with tty = want }
    | _ -> None

let convert_exn e want =
  match convert e want with
  | Some e -> e
  | None ->
    error e.tloc "cannot convert %s to %s" (Ty.to_string e.tty)
      (Ty.to_string want)

(* Array-to-pointer decay in value contexts. *)
let decay (e : texpr) : texpr =
  match e.tty.Ty.desc with
  | Ty.Arr (elt, _) -> { e with tdesc = TDecay e; tty = Ty.ptr elt }
  | _ -> e

let is_lvalue (e : texpr) =
  match e.tdesc with
  | TLocal _ | TGlobal _ | TIndex _ | TField _ -> true
  | TUnop (Ast.Deref, _) -> true
  | _ -> false

(* --- expressions --- *)

let rec check_expr env (e : Ast.expr) : texpr =
  let loc = e.Ast.eloc in
  let mk tdesc tty = { tdesc; tty; tloc = loc } in
  match e.Ast.edesc with
  | Ast.Int_lit n -> mk (TInt n) Ty.i64
  | Ast.Float_lit f -> mk (TFloat f) Ty.f64
  | Ast.Char_lit c -> mk (TInt (Int64.of_int (Char.code c))) Ty.i8
  | Ast.String_lit s -> mk (TString s) (Ty.ptr Ty.i8)
  | Ast.Null_lit -> mk TNull (Ty.ptr Ty.void)
  | Ast.Var name -> (
    match lookup_local env name with
    | Some ty -> mk (TLocal name) ty
    | None -> (
      match Hashtbl.find_opt env.globals name with
      | Some ty -> mk (TGlobal name) ty
      | None -> (
        match Hashtbl.find_opt env.funcs name with
        | Some (ret, params, _) ->
          (* function used as a value: function pointer *)
          mk (TFuncaddr name) (Ty.ptr (Ty.fun_ ret params))
        | None -> error loc "unknown identifier %s" name)))
  | Ast.Unop (op, sub) -> check_unop env loc op sub
  | Ast.Binop (op, a, b) -> check_binop env loc op a b
  | Ast.Assign (lhs, rhs) ->
    let tl = check_expr env lhs in
    if not (is_lvalue tl) then error loc "left side of assignment is not an lvalue";
    if is_arr tl.tty then error loc "cannot assign to an array";
    if is_struct tl.tty then
      error loc "cannot copy whole structs; take a pointer instead";
    let tr = convert_exn (decay (check_expr env rhs)) tl.tty in
    mk (TAssign (tl, tr)) tl.tty
  | Ast.Call (fname, args) -> (
    match Hashtbl.find_opt env.funcs fname with
    | Some (ret, params, _) ->
      let targs = check_args env loc fname params args in
      mk (TCall (fname, targs)) ret
    | None -> (
      (* calling through a variable holding a function pointer *)
      let var_ty =
        match lookup_local env fname with
        | Some ty -> Some ty
        | None -> Hashtbl.find_opt env.globals fname
      in
      match var_ty with
      | Some { Ty.desc = Ty.Ptr { Ty.desc = Ty.Fun (ret, params); _ }; _ } ->
        let callee = check_expr env { e with Ast.edesc = Ast.Var fname } in
        let targs = check_args env loc fname params args in
        mk (TCallptr (callee, targs)) ret
      | Some _ -> error loc "%s is not a function" fname
      | None -> error loc "call to unknown function %s" fname))
  | Ast.Call_ptr (callee, args) -> (
    let tc = decay (check_expr env callee) in
    match tc.tty.Ty.desc with
    | Ty.Ptr { Ty.desc = Ty.Fun (ret, params); _ } ->
      let targs = check_args env loc "<indirect>" params args in
      mk (TCallptr (tc, targs)) ret
    | _ -> error loc "called expression is not a function pointer")
  | Ast.Index (base, idx) -> (
    let tb = check_expr env base in
    let ti = convert_exn (check_expr env idx) Ty.i64 in
    match tb.tty.Ty.desc with
    | Ty.Arr (elt, _) -> mk (TIndex (tb, ti)) elt
    | Ty.Ptr elt -> mk (TIndex (tb, ti)) elt
    | _ -> error loc "indexed expression is neither array nor pointer")
  | Ast.Field (base, fname) -> (
    let tb = check_expr env base in
    match tb.tty.Ty.desc with
    | Ty.Struct sname ->
      let fields = struct_fields env loc sname in
      let idx, fty = find_field loc sname fields fname in
      mk (TField (tb, sname, idx)) fty
    | _ -> error loc ".%s applied to a non-struct" fname)
  | Ast.Arrow (base, fname) -> (
    let tb = decay (check_expr env base) in
    match tb.tty.Ty.desc with
    | Ty.Ptr { Ty.desc = Ty.Struct sname; _ } ->
      let fields = struct_fields env loc sname in
      let idx, fty = find_field loc sname fields fname in
      let deref =
        { tdesc = TUnop (Ast.Deref, tb); tty = Ty.deref tb.tty; tloc = loc }
      in
      mk (TField (deref, sname, idx)) fty
    | _ -> error loc "->%s applied to a non-struct-pointer" fname)
  | Ast.Cast (ty, sub) ->
    let ts = decay (check_expr env sub) in
    check_cast loc ty ts
  | Ast.Sizeof ty ->
    (* the actual byte count is computed at lowering, when struct layouts
       are available *)
    mk (TSizeof ty) Ty.i64
  | Ast.Func_addr f -> (
    match Hashtbl.find_opt env.funcs f with
    | Some (ret, params, _) -> mk (TFuncaddr f) (Ty.ptr (Ty.fun_ ret params))
    | None -> error loc "unknown function %s" f)

and find_field loc sname fields fname =
  let rec go k = function
    | [] -> error loc "struct %s has no field %s" sname fname
    | (f, ty) :: rest -> if String.equal f fname then (k, ty) else go (k + 1) rest
  in
  go 0 fields

and check_args env loc fname params args =
  if List.length params <> List.length args then
    error loc "%s expects %d arguments, got %d" fname (List.length params)
      (List.length args);
  List.map2
    (fun want arg -> convert_exn (decay (check_expr env arg)) want)
    params args

and check_unop env loc op sub : texpr =
  let mk tdesc tty = { tdesc; tty; tloc = loc } in
  match op with
  | Ast.Neg ->
    let t = decay (check_expr env sub) in
    if Ty.is_float t.tty then mk (TUnop (op, t)) t.tty
    else mk (TUnop (op, convert_exn t Ty.i64)) Ty.i64
  | Ast.Lognot ->
    let t = decay (check_expr env sub) in
    mk (TUnop (op, t)) Ty.i64
  | Ast.Bitnot ->
    let t = convert_exn (decay (check_expr env sub)) Ty.i64 in
    mk (TUnop (op, t)) Ty.i64
  | Ast.Deref -> (
    let t = decay (check_expr env sub) in
    match t.tty.Ty.desc with
    | Ty.Ptr elt when not (is_void elt) -> mk (TUnop (op, t)) elt
    | Ty.Ptr _ -> error loc "cannot dereference void*"
    | _ -> error loc "dereference of a non-pointer")
  | Ast.Addrof -> (
    let t = check_expr env sub in
    match t.tdesc with
    | TFuncaddr _ -> t
    | _ ->
      if not (is_lvalue t) then error loc "& requires an lvalue";
      mk (TUnop (op, t)) (Ty.ptr t.tty))

and check_binop env loc op a b : texpr =
  let mk tdesc tty = { tdesc; tty; tloc = loc } in
  let ta = decay (check_expr env a) in
  let tb = decay (check_expr env b) in
  let arith () =
    (* usual arithmetic conversions, reduced to i64/f64 *)
    if Ty.is_float ta.tty || Ty.is_float tb.tty then
      (convert_exn ta Ty.f64, convert_exn tb Ty.f64, Ty.f64)
    else (convert_exn ta Ty.i64, convert_exn tb Ty.i64, Ty.i64)
  in
  match op with
  | Ast.Add | Ast.Sub -> (
    match ta.tty.Ty.desc, tb.tty.Ty.desc with
    | Ty.Ptr _, _ ->
      let ti = convert_exn tb Ty.i64 in
      let ti =
        if op = Ast.Sub then { ti with tdesc = TUnop (Ast.Neg, ti) } else ti
      in
      mk (TPtradd (ta, ti)) ta.tty
    | _, Ty.Ptr _ when op = Ast.Add ->
      let ti = convert_exn ta Ty.i64 in
      mk (TPtradd (tb, ti)) tb.tty
    | _ ->
      let x, y, ty = arith () in
      mk (TBinop (op, x, y)) ty)
  | Ast.Mul | Ast.Div ->
    let x, y, ty = arith () in
    mk (TBinop (op, x, y)) ty
  | Ast.Rem | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Shl | Ast.Shr ->
    let x = convert_exn ta Ty.i64 and y = convert_exn tb Ty.i64 in
    mk (TBinop (op, x, y)) Ty.i64
  | Ast.Eq | Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge -> (
    match ta.tty.Ty.desc, tb.tty.Ty.desc with
    | Ty.Ptr _, Ty.Ptr _ -> mk (TBinop (op, ta, tb)) Ty.i64
    | Ty.Ptr _, _ -> mk (TBinop (op, ta, convert_exn tb ta.tty)) Ty.i64
    | _, Ty.Ptr _ -> mk (TBinop (op, convert_exn ta tb.tty, tb)) Ty.i64
    | _ ->
      let x, y, _ = arith () in
      mk (TBinop (op, x, y)) Ty.i64)
  | Ast.Land | Ast.Lor -> mk (TBinop (op, ta, tb)) Ty.i64

and check_cast loc (want : Ty.t) (ts : texpr) : texpr =
  let mk tdesc tty = { tdesc; tty; tloc = loc } in
  match ts.tty.Ty.desc, want.Ty.desc with
  | _, Ty.Void -> mk (TCast (want, ts)) want
  | (Ty.I1 | Ty.I8 | Ty.I64 | Ty.F64), (Ty.I1 | Ty.I8 | Ty.I64 | Ty.F64) ->
    mk (TCast (want, ts)) want
  | Ty.Ptr _, Ty.Ptr _ -> mk (TCast (want, ts)) want
  | Ty.Ptr _, Ty.I64 | Ty.I64, Ty.Ptr _ -> mk (TCast (want, ts)) want
  | _ ->
    error loc "invalid cast from %s to %s" (Ty.to_string ts.tty)
      (Ty.to_string want)

(* --- statements --- *)

(* Condition expressions follow C truthiness: integers and pointers. *)
let check_cond env (e : Ast.expr) : texpr =
  let t = decay (check_expr env e) in
  match t.tty.Ty.desc with
  | Ty.I1 | Ty.I8 | Ty.I64 | Ty.Ptr _ -> t
  | _ -> error t.tloc "condition is neither integer nor pointer"

let rec check_stmt env (s : Ast.stmt) : tstmt =
  let loc = s.Ast.sloc in
  let mk tsdesc = { tsdesc; tsloc = loc } in
  match s.Ast.sdesc with
  | Ast.Expr e -> mk (TExpr (check_expr env e))
  | Ast.Decl (ty, name, init) ->
    check_complete env loc ty;
    if is_void ty then error loc "variable %s has type void" name;
    let tinit =
      match init with
      | None -> None
      | Some e ->
        if is_arr ty then error loc "array %s cannot have an initializer" name;
        Some (convert_exn (decay (check_expr env e)) ty)
    in
    declare_local env loc name ty;
    mk (TDecl (ty, name, tinit))
  | Ast.If (cond, then_, else_) ->
    let tc = check_cond env cond in
    mk (TIf (tc, check_block env then_, check_block env else_))
  | Ast.While (cond, body) ->
    let tc = check_cond env cond in
    mk (TWhile (tc, check_block env body))
  | Ast.For (init, cond, step, body) ->
    push_scope env;
    let tinit = Option.map (check_stmt env) init in
    let tcond = Option.map (check_cond env) cond in
    let tbody = check_block env body in
    let tstep = Option.map (check_stmt env) step in
    pop_scope env;
    mk (TFor (tinit, tcond, tstep, tbody))
  | Ast.Return None ->
    if not (is_void env.current_ret) then
      error loc "return without a value in a non-void function";
    mk (TReturn None)
  | Ast.Return (Some e) ->
    if is_void env.current_ret then error loc "return with a value in a void function";
    let t = convert_exn (decay (check_expr env e)) env.current_ret in
    mk (TReturn (Some t))
  | Ast.Break -> mk TBreak
  | Ast.Continue -> mk TContinue
  | Ast.Block body ->
    push_scope env;
    let tbody = List.map (check_stmt env) body in
    pop_scope env;
    mk (TBlock tbody)
  | Ast.Spawn (fname, args) -> (
    match Hashtbl.find_opt env.funcs fname with
    | Some (_, params, _) ->
      let targs = check_args env loc fname params args in
      mk (TSpawn (fname, targs))
    | None -> error loc "spawn of unknown function %s" fname)

and check_block env body =
  push_scope env;
  let tbody = List.map (check_stmt env) body in
  pop_scope env;
  tbody

(* --- global initializers: literal constants only --- *)

let check_global_init env (ty : Ty.t) (e : Ast.expr) : texpr =
  let loc = e.Ast.eloc in
  match e.Ast.edesc with
  | Ast.Int_lit _ | Ast.Float_lit _ | Ast.Char_lit _ | Ast.Null_lit
  | Ast.String_lit _ ->
    convert_exn (decay (check_expr env e)) ty
  | Ast.Unop (Ast.Neg, inner) -> (
    match inner.Ast.edesc with
    | Ast.Int_lit _ | Ast.Float_lit _ ->
      convert_exn (check_expr env e) ty
    | _ -> error loc "global initializer must be a literal constant")
  | _ -> error loc "global initializer must be a literal constant"

(* --- whole program --- *)

let check_program (prog : Ast.program) : tprogram =
  let env = create_env () in
  (* Pass 1: declarations. *)
  List.iter
    (fun d ->
      match d with
      | Ast.Struct_def (name, fields, loc) ->
        if Hashtbl.mem env.structs name then error loc "struct %s redefined" name;
        List.iter (fun (_, ty) -> check_complete env loc ty) fields;
        let rec dup = function
          | [] -> ()
          | (f, _) :: rest ->
            if List.mem_assoc f rest then
              error loc "struct %s: duplicate field %s" name f;
            dup rest
        in
        dup fields;
        Hashtbl.replace env.structs name fields
      | Ast.Global (ty, name, _, loc) ->
        if Hashtbl.mem env.globals name then error loc "global %s redefined" name;
        check_complete env loc ty;
        if is_void ty then error loc "global %s has type void" name;
        Hashtbl.replace env.globals name ty
      | Ast.Func_def f ->
        if Hashtbl.mem env.funcs f.Ast.fname then
          error f.Ast.floc "function %s redefined" f.Ast.fname;
        Hashtbl.replace env.funcs f.Ast.fname
          (f.Ast.fret, List.map snd f.Ast.fparams, f.Ast.fannots)
      | Ast.Extern_decl (name, ret, params, annots, loc) ->
        if Hashtbl.mem env.funcs name then error loc "function %s redefined" name;
        Hashtbl.replace env.funcs name (ret, List.map snd params, annots))
    prog;
  (* Pass 2: bodies and global initializers. *)
  let tstructs = ref [] and tglobals = ref [] and tfuncs = ref [] in
  let texterns = ref [] in
  List.iter
    (fun d ->
      match d with
      | Ast.Struct_def (name, fields, _) ->
        tstructs := (name, fields) :: !tstructs
      | Ast.Global (ty, name, init, loc) ->
        let tinit = Option.map (check_global_init env ty) init in
        tglobals := (name, ty, tinit, loc) :: !tglobals
      | Ast.Extern_decl (name, ret, params, annots, _) ->
        texterns := (name, ret, params, annots) :: !texterns
      | Ast.Func_def f ->
        env.current_ret <- f.Ast.fret;
        env.scopes <- [];
        push_scope env;
        List.iter
          (fun (pname, pty) ->
            check_complete env f.Ast.floc pty;
            declare_local env f.Ast.floc pname pty)
          f.Ast.fparams;
        let tbody = List.map (check_stmt env) f.Ast.fbody in
        pop_scope env;
        tfuncs :=
          {
            tfname = f.Ast.fname;
            tfret = f.Ast.fret;
            tfparams = f.Ast.fparams;
            tfbody = tbody;
            tfannots = f.Ast.fannots;
            tfloc = f.Ast.floc;
          }
          :: !tfuncs)
    prog;
  {
    tstructs = List.rev !tstructs;
    tglobals = List.rev !tglobals;
    tfuncs = List.rev !tfuncs;
    texterns = List.rev !texterns;
  }
