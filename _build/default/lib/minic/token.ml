(* Tokens of mini-C, the annotated C subset Privagic consumes. The [color],
   [within], [ignore] and [entry] keywords are the paper's annotations
   (Figures 1, 6; §6.2-§6.4); everything else is plain C. *)

type t =
  | IDENT of string
  | INT_LIT of int64
  | FLOAT_LIT of float
  | CHAR_LIT of char
  | STRING_LIT of string
  (* keywords *)
  | KW_VOID | KW_INT | KW_DOUBLE | KW_CHAR | KW_STRUCT
  | KW_IF | KW_ELSE | KW_WHILE | KW_FOR | KW_RETURN | KW_BREAK | KW_CONTINUE
  | KW_EXTERN | KW_SIZEOF | KW_SPAWN | KW_NULL
  | KW_COLOR | KW_ENTRY | KW_WITHIN | KW_IGNORE
  (* punctuation *)
  | LPAREN | RPAREN | LBRACE | RBRACE | LBRACKET | RBRACKET
  | SEMI | COMMA | DOT | ARROW
  | PLUS | MINUS | STAR | SLASH | PERCENT
  | AMP | PIPE | CARET | TILDE | SHL | SHR
  | NOT | ANDAND | OROR
  | ASSIGN | PLUS_ASSIGN | MINUS_ASSIGN
  | EQ | NE | LT | LE | GT | GE
  | PLUSPLUS | MINUSMINUS
  | EOF

let keyword_table =
  [
    ("void", KW_VOID); ("int", KW_INT); ("double", KW_DOUBLE);
    ("char", KW_CHAR); ("struct", KW_STRUCT); ("if", KW_IF);
    ("else", KW_ELSE); ("while", KW_WHILE); ("for", KW_FOR);
    ("return", KW_RETURN); ("break", KW_BREAK); ("continue", KW_CONTINUE);
    ("extern", KW_EXTERN); ("sizeof", KW_SIZEOF); ("spawn", KW_SPAWN);
    ("NULL", KW_NULL); ("color", KW_COLOR); ("entry", KW_ENTRY);
    ("within", KW_WITHIN); ("ignore", KW_IGNORE);
  ]

let to_string = function
  | IDENT s -> Printf.sprintf "identifier %S" s
  | INT_LIT i -> Printf.sprintf "integer %Ld" i
  | FLOAT_LIT f -> Printf.sprintf "float %g" f
  | CHAR_LIT c -> Printf.sprintf "char %C" c
  | STRING_LIT s -> Printf.sprintf "string %S" s
  | KW_VOID -> "'void'" | KW_INT -> "'int'" | KW_DOUBLE -> "'double'"
  | KW_CHAR -> "'char'" | KW_STRUCT -> "'struct'" | KW_IF -> "'if'"
  | KW_ELSE -> "'else'" | KW_WHILE -> "'while'" | KW_FOR -> "'for'"
  | KW_RETURN -> "'return'" | KW_BREAK -> "'break'"
  | KW_CONTINUE -> "'continue'" | KW_EXTERN -> "'extern'"
  | KW_SIZEOF -> "'sizeof'" | KW_SPAWN -> "'spawn'" | KW_NULL -> "'NULL'"
  | KW_COLOR -> "'color'" | KW_ENTRY -> "'entry'" | KW_WITHIN -> "'within'"
  | KW_IGNORE -> "'ignore'"
  | LPAREN -> "'('" | RPAREN -> "')'" | LBRACE -> "'{'" | RBRACE -> "'}'"
  | LBRACKET -> "'['" | RBRACKET -> "']'" | SEMI -> "';'" | COMMA -> "','"
  | DOT -> "'.'" | ARROW -> "'->'" | PLUS -> "'+'" | MINUS -> "'-'"
  | STAR -> "'*'" | SLASH -> "'/'" | PERCENT -> "'%'" | AMP -> "'&'"
  | PIPE -> "'|'" | CARET -> "'^'" | TILDE -> "'~'" | SHL -> "'<<'"
  | SHR -> "'>>'" | NOT -> "'!'" | ANDAND -> "'&&'" | OROR -> "'||'"
  | ASSIGN -> "'='" | PLUS_ASSIGN -> "'+='" | MINUS_ASSIGN -> "'-='"
  | EQ -> "'=='" | NE -> "'!='" | LT -> "'<'" | LE -> "'<='" | GT -> "'>'"
  | GE -> "'>='" | PLUSPLUS -> "'++'" | MINUSMINUS -> "'--'"
  | EOF -> "end of input"
