(* Hand-written lexer for mini-C. Supports //- and /* */-style comments,
   decimal and hexadecimal integers, floats, character and string literals
   with the usual escapes. *)

open Privagic_pir

exception Error of Loc.t * string

type t = {
  src : string;
  file : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of the beginning of the current line *)
}

let create ?(file = "<input>") src = { src; file; pos = 0; line = 1; bol = 0 }

let loc lx = Loc.make ~file:lx.file ~line:lx.line ~col:(lx.pos - lx.bol + 1)

let error lx msg = raise (Error (loc lx, msg))

let peek lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let peek2 lx =
  if lx.pos + 1 < String.length lx.src then Some lx.src.[lx.pos + 1] else None

let advance lx =
  (match peek lx with
  | Some '\n' ->
    lx.line <- lx.line + 1;
    lx.bol <- lx.pos + 1
  | _ -> ());
  lx.pos <- lx.pos + 1

let rec skip_ws lx =
  match peek lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance lx;
    skip_ws lx
  | Some '/' when peek2 lx = Some '/' ->
    while peek lx <> None && peek lx <> Some '\n' do
      advance lx
    done;
    skip_ws lx
  | Some '/' when peek2 lx = Some '*' ->
    advance lx;
    advance lx;
    let rec close () =
      match peek lx with
      | None -> error lx "unterminated comment"
      | Some '*' when peek2 lx = Some '/' ->
        advance lx;
        advance lx
      | Some _ ->
        advance lx;
        close ()
    in
    close ();
    skip_ws lx
  | _ -> ()

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_ident_start c || is_digit c
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let read_escape lx =
  match peek lx with
  | Some 'n' -> advance lx; '\n'
  | Some 't' -> advance lx; '\t'
  | Some 'r' -> advance lx; '\r'
  | Some '0' -> advance lx; '\000'
  | Some '\\' -> advance lx; '\\'
  | Some '\'' -> advance lx; '\''
  | Some '"' -> advance lx; '"'
  | Some c -> error lx (Printf.sprintf "unknown escape '\\%c'" c)
  | None -> error lx "unterminated escape"

let next lx : Token.t * Loc.t =
  skip_ws lx;
  let l = loc lx in
  let tok =
    match peek lx with
    | None -> Token.EOF
    | Some c when is_ident_start c ->
      let start = lx.pos in
      while (match peek lx with Some c -> is_ident_char c | None -> false) do
        advance lx
      done;
      let word = String.sub lx.src start (lx.pos - start) in
      (match List.assoc_opt word Token.keyword_table with
      | Some kw -> kw
      | None -> Token.IDENT word)
    | Some c when is_digit c ->
      let start = lx.pos in
      if c = '0' && (peek2 lx = Some 'x' || peek2 lx = Some 'X') then begin
        advance lx;
        advance lx;
        while (match peek lx with Some c -> is_hex c | None -> false) do
          advance lx
        done;
        Token.INT_LIT (Int64.of_string (String.sub lx.src start (lx.pos - start)))
      end
      else begin
        while (match peek lx with Some c -> is_digit c | None -> false) do
          advance lx
        done;
        if peek lx = Some '.' && (match peek2 lx with Some d -> is_digit d | None -> false)
        then begin
          advance lx;
          while (match peek lx with Some c -> is_digit c | None -> false) do
            advance lx
          done;
          Token.FLOAT_LIT (float_of_string (String.sub lx.src start (lx.pos - start)))
        end
        else Token.INT_LIT (Int64.of_string (String.sub lx.src start (lx.pos - start)))
      end
    | Some '\'' ->
      advance lx;
      let c =
        match peek lx with
        | Some '\\' ->
          advance lx;
          read_escape lx
        | Some c ->
          advance lx;
          c
        | None -> error lx "unterminated char literal"
      in
      if peek lx <> Some '\'' then error lx "unterminated char literal";
      advance lx;
      Token.CHAR_LIT c
    | Some '"' ->
      advance lx;
      let buf = Buffer.create 16 in
      let rec go () =
        match peek lx with
        | Some '"' -> advance lx
        | Some '\\' ->
          advance lx;
          Buffer.add_char buf (read_escape lx);
          go ()
        | Some c ->
          advance lx;
          Buffer.add_char buf c;
          go ()
        | None -> error lx "unterminated string literal"
      in
      go ();
      Token.STRING_LIT (Buffer.contents buf)
    | Some c ->
      advance lx;
      let two expect yes no =
        if peek lx = Some expect then begin
          advance lx;
          yes
        end
        else no
      in
      (match c with
      | '(' -> Token.LPAREN
      | ')' -> Token.RPAREN
      | '{' -> Token.LBRACE
      | '}' -> Token.RBRACE
      | '[' -> Token.LBRACKET
      | ']' -> Token.RBRACKET
      | ';' -> Token.SEMI
      | ',' -> Token.COMMA
      | '.' -> Token.DOT
      | '~' -> Token.TILDE
      | '^' -> Token.CARET
      | '+' ->
        if peek lx = Some '+' then (advance lx; Token.PLUSPLUS)
        else two '=' Token.PLUS_ASSIGN Token.PLUS
      | '-' ->
        if peek lx = Some '>' then (advance lx; Token.ARROW)
        else if peek lx = Some '-' then (advance lx; Token.MINUSMINUS)
        else two '=' Token.MINUS_ASSIGN Token.MINUS
      | '*' -> Token.STAR
      | '/' -> Token.SLASH
      | '%' -> Token.PERCENT
      | '&' -> two '&' Token.ANDAND Token.AMP
      | '|' -> two '|' Token.OROR Token.PIPE
      | '!' -> two '=' Token.NE Token.NOT
      | '=' -> two '=' Token.EQ Token.ASSIGN
      | '<' ->
        if peek lx = Some '<' then (advance lx; Token.SHL)
        else two '=' Token.LE Token.LT
      | '>' ->
        if peek lx = Some '>' then (advance lx; Token.SHR)
        else two '=' Token.GE Token.GT
      | c -> error lx (Printf.sprintf "unexpected character %C" c))
  in
  (tok, l)

let tokenize ?file src =
  let lx = create ?file src in
  let rec go acc =
    let tok, l = next lx in
    match tok with
    | Token.EOF -> List.rev ((tok, l) :: acc)
    | _ -> go ((tok, l) :: acc)
  in
  go []
