(* Recursive-descent parser for mini-C.

   Deviations from C, chosen to keep the surface small while covering every
   construct the paper's examples and evaluation programs need:
   - one integer type ([int], 64-bit) plus [char] (8-bit) and [double];
   - the color qualifier follows the base type and qualifies it:
     [int color(blue)* p] declares a pointer to a blue int (Fig. 3b);
   - [entry], [within], [ignore] annotate function definitions/externs;
   - [spawn f(args);] starts a thread running [f] (the paper's multithreaded
     applications; the VM gives it pthread_create semantics);
   - postfix [e++] evaluates to the *new* value (it is only used in
     statement position in our programs). *)

open Privagic_pir

exception Error of Loc.t * string

type t = { toks : (Token.t * Loc.t) array; mutable pos : int }

let create toks = { toks = Array.of_list toks; pos = 0 }

let peek p = fst p.toks.(p.pos)
let peek_loc p = snd p.toks.(p.pos)

let peek_at p k =
  let i = min (p.pos + k) (Array.length p.toks - 1) in
  fst p.toks.(i)

let advance p = if p.pos < Array.length p.toks - 1 then p.pos <- p.pos + 1

let error p msg = raise (Error (peek_loc p, msg))

let expect p tok =
  if peek p = tok then advance p
  else
    error p
      (Printf.sprintf "expected %s but found %s" (Token.to_string tok)
         (Token.to_string (peek p)))

let accept p tok =
  if peek p = tok then begin
    advance p;
    true
  end
  else false

let expect_ident p =
  match peek p with
  | Token.IDENT s ->
    advance p;
    s
  | t -> error p (Printf.sprintf "expected identifier, found %s" (Token.to_string t))

(* --- types --- *)

let color_of_name = function
  | "U" -> Color.Unsafe
  | "S" -> Color.Shared
  | "F" -> Color.Free
  | name -> Color.Named name

let starts_type p =
  match peek p with
  | Token.KW_VOID | Token.KW_INT | Token.KW_DOUBLE | Token.KW_CHAR
  | Token.KW_STRUCT ->
    true
  | _ -> false

(* type := basety [color(IDENT)] '*'* *)
let parse_type p : Ty.t =
  let base =
    match peek p with
    | Token.KW_VOID -> advance p; Ty.void
    | Token.KW_INT -> advance p; Ty.i64
    | Token.KW_DOUBLE -> advance p; Ty.f64
    | Token.KW_CHAR -> advance p; Ty.i8
    | Token.KW_STRUCT ->
      advance p;
      let name = expect_ident p in
      Ty.struct_ name
    | t -> error p (Printf.sprintf "expected a type, found %s" (Token.to_string t))
  in
  let base =
    if accept p Token.KW_COLOR then begin
      expect p Token.LPAREN;
      let name = expect_ident p in
      expect p Token.RPAREN;
      Ty.colored (color_of_name name) base
    end
    else base
  in
  (* each '*' may be followed by its own color qualifying the pointer
     itself: [struct node color(blue)* color(blue) next] is a blue pointer
     to a blue node *)
  let rec stars ty =
    if accept p Token.STAR then begin
      let pty = Ty.ptr ty in
      let pty =
        if accept p Token.KW_COLOR then begin
          expect p Token.LPAREN;
          let name = expect_ident p in
          expect p Token.RPAREN;
          Ty.colored (color_of_name name) pty
        end
        else pty
      in
      stars pty
    end
    else ty
  in
  stars base

(* Array suffixes on a declarator: name[256][4] ... *)
let parse_array_suffix p ty =
  let rec go dims =
    if accept p Token.LBRACKET then begin
      let n =
        match peek p with
        | Token.INT_LIT n ->
          advance p;
          Int64.to_int n
        | t -> error p (Printf.sprintf "expected array size, found %s" (Token.to_string t))
      in
      expect p Token.RBRACKET;
      go (n :: dims)
    end
    else dims
  in
  List.fold_left (fun ty n -> Ty.arr ty n) ty (go [])

(* --- expressions --- *)

let rec parse_expr p = parse_assign p

and parse_assign p : Ast.expr =
  let lhs = parse_lor p in
  let loc = peek_loc p in
  match peek p with
  | Token.ASSIGN ->
    advance p;
    let rhs = parse_assign p in
    { Ast.edesc = Ast.Assign (lhs, rhs); eloc = loc }
  | Token.PLUS_ASSIGN ->
    advance p;
    let rhs = parse_assign p in
    let sum = { Ast.edesc = Ast.Binop (Ast.Add, lhs, rhs); eloc = loc } in
    { Ast.edesc = Ast.Assign (lhs, sum); eloc = loc }
  | Token.MINUS_ASSIGN ->
    advance p;
    let rhs = parse_assign p in
    let diff = { Ast.edesc = Ast.Binop (Ast.Sub, lhs, rhs); eloc = loc } in
    { Ast.edesc = Ast.Assign (lhs, diff); eloc = loc }
  | _ -> lhs

and binop_level p level =
  (* Binary operator precedence climbing; level 0 is ||. *)
  let table =
    [|
      [ (Token.OROR, Ast.Lor) ];
      [ (Token.ANDAND, Ast.Land) ];
      [ (Token.PIPE, Ast.Bor) ];
      [ (Token.CARET, Ast.Bxor) ];
      [ (Token.AMP, Ast.Band) ];
      [ (Token.EQ, Ast.Eq); (Token.NE, Ast.Ne) ];
      [ (Token.LT, Ast.Lt); (Token.LE, Ast.Le); (Token.GT, Ast.Gt); (Token.GE, Ast.Ge) ];
      [ (Token.SHL, Ast.Shl); (Token.SHR, Ast.Shr) ];
      [ (Token.PLUS, Ast.Add); (Token.MINUS, Ast.Sub) ];
      [ (Token.STAR, Ast.Mul); (Token.SLASH, Ast.Div); (Token.PERCENT, Ast.Rem) ];
    |]
  in
  if level >= Array.length table then parse_unary p
  else begin
    let lhs = ref (binop_level p (level + 1)) in
    let continue = ref true in
    while !continue do
      match List.assoc_opt (peek p) table.(level) with
      | Some op ->
        let loc = peek_loc p in
        advance p;
        let rhs = binop_level p (level + 1) in
        lhs := { Ast.edesc = Ast.Binop (op, !lhs, rhs); eloc = loc }
      | None -> continue := false
    done;
    !lhs
  end

and parse_lor p = binop_level p 0

and parse_unary p : Ast.expr =
  let loc = peek_loc p in
  match peek p with
  | Token.MINUS ->
    advance p;
    { Ast.edesc = Ast.Unop (Ast.Neg, parse_unary p); eloc = loc }
  | Token.NOT ->
    advance p;
    { Ast.edesc = Ast.Unop (Ast.Lognot, parse_unary p); eloc = loc }
  | Token.TILDE ->
    advance p;
    { Ast.edesc = Ast.Unop (Ast.Bitnot, parse_unary p); eloc = loc }
  | Token.STAR ->
    advance p;
    { Ast.edesc = Ast.Unop (Ast.Deref, parse_unary p); eloc = loc }
  | Token.AMP ->
    advance p;
    { Ast.edesc = Ast.Unop (Ast.Addrof, parse_unary p); eloc = loc }
  | Token.PLUSPLUS | Token.MINUSMINUS ->
    let op = if peek p = Token.PLUSPLUS then Ast.Add else Ast.Sub in
    advance p;
    let e = parse_unary p in
    let one = { Ast.edesc = Ast.Int_lit 1L; eloc = loc } in
    let sum = { Ast.edesc = Ast.Binop (op, e, one); eloc = loc } in
    { Ast.edesc = Ast.Assign (e, sum); eloc = loc }
  | Token.KW_SIZEOF ->
    advance p;
    expect p Token.LPAREN;
    let ty = parse_type p in
    expect p Token.RPAREN;
    { Ast.edesc = Ast.Sizeof ty; eloc = loc }
  | Token.LPAREN when starts_type { p with pos = p.pos + 1 } ->
    (* cast: (type) unary *)
    advance p;
    let ty = parse_type p in
    expect p Token.RPAREN;
    { Ast.edesc = Ast.Cast (ty, parse_unary p); eloc = loc }
  | _ -> parse_postfix p

and parse_postfix p : Ast.expr =
  let e = ref (parse_primary p) in
  let continue = ref true in
  while !continue do
    let loc = peek_loc p in
    match peek p with
    | Token.LBRACKET ->
      advance p;
      let idx = parse_expr p in
      expect p Token.RBRACKET;
      e := { Ast.edesc = Ast.Index (!e, idx); eloc = loc }
    | Token.DOT ->
      advance p;
      let f = expect_ident p in
      e := { Ast.edesc = Ast.Field (!e, f); eloc = loc }
    | Token.ARROW ->
      advance p;
      let f = expect_ident p in
      e := { Ast.edesc = Ast.Arrow (!e, f); eloc = loc }
    | Token.LPAREN -> (
      advance p;
      let args = parse_args p in
      match !e with
      | { Ast.edesc = Ast.Var f; _ } ->
        e := { Ast.edesc = Ast.Call (f, args); eloc = loc }
      | callee -> e := { Ast.edesc = Ast.Call_ptr (callee, args); eloc = loc })
    | Token.PLUSPLUS | Token.MINUSMINUS ->
      let op = if peek p = Token.PLUSPLUS then Ast.Add else Ast.Sub in
      advance p;
      let one = { Ast.edesc = Ast.Int_lit 1L; eloc = loc } in
      let sum = { Ast.edesc = Ast.Binop (op, !e, one); eloc = loc } in
      e := { Ast.edesc = Ast.Assign (!e, sum); eloc = loc }
    | _ -> continue := false
  done;
  !e

and parse_args p =
  if accept p Token.RPAREN then []
  else begin
    let rec go acc =
      let e = parse_expr p in
      if accept p Token.COMMA then go (e :: acc)
      else begin
        expect p Token.RPAREN;
        List.rev (e :: acc)
      end
    in
    go []
  end

and parse_primary p : Ast.expr =
  let loc = peek_loc p in
  match peek p with
  | Token.INT_LIT n ->
    advance p;
    { Ast.edesc = Ast.Int_lit n; eloc = loc }
  | Token.FLOAT_LIT f ->
    advance p;
    { Ast.edesc = Ast.Float_lit f; eloc = loc }
  | Token.CHAR_LIT c ->
    advance p;
    { Ast.edesc = Ast.Char_lit c; eloc = loc }
  | Token.STRING_LIT s ->
    advance p;
    { Ast.edesc = Ast.String_lit s; eloc = loc }
  | Token.KW_NULL ->
    advance p;
    { Ast.edesc = Ast.Null_lit; eloc = loc }
  | Token.IDENT name ->
    advance p;
    { Ast.edesc = Ast.Var name; eloc = loc }
  | Token.LPAREN ->
    advance p;
    let e = parse_expr p in
    expect p Token.RPAREN;
    e
  | t -> error p (Printf.sprintf "expected an expression, found %s" (Token.to_string t))

(* --- statements --- *)

let rec parse_stmt p : Ast.stmt =
  let loc = peek_loc p in
  match peek p with
  | Token.LBRACE ->
    advance p;
    let body = parse_stmts_until_rbrace p in
    { Ast.sdesc = Ast.Block body; sloc = loc }
  | Token.KW_IF ->
    advance p;
    expect p Token.LPAREN;
    let cond = parse_expr p in
    expect p Token.RPAREN;
    let then_ = parse_stmt_as_list p in
    let else_ = if accept p Token.KW_ELSE then parse_stmt_as_list p else [] in
    { Ast.sdesc = Ast.If (cond, then_, else_); sloc = loc }
  | Token.KW_WHILE ->
    advance p;
    expect p Token.LPAREN;
    let cond = parse_expr p in
    expect p Token.RPAREN;
    let body = parse_stmt_as_list p in
    { Ast.sdesc = Ast.While (cond, body); sloc = loc }
  | Token.KW_FOR ->
    advance p;
    expect p Token.LPAREN;
    let init =
      if peek p = Token.SEMI then begin
        advance p;
        None
      end
      else begin
        let s = parse_simple_stmt p in
        expect p Token.SEMI;
        Some s
      end
    in
    let cond =
      if peek p = Token.SEMI then None
      else Some (parse_expr p)
    in
    expect p Token.SEMI;
    let step =
      if peek p = Token.RPAREN then None
      else Some { Ast.sdesc = Ast.Expr (parse_expr p); sloc = loc }
    in
    expect p Token.RPAREN;
    let body = parse_stmt_as_list p in
    { Ast.sdesc = Ast.For (init, cond, step, body); sloc = loc }
  | Token.KW_RETURN ->
    advance p;
    let v = if peek p = Token.SEMI then None else Some (parse_expr p) in
    expect p Token.SEMI;
    { Ast.sdesc = Ast.Return v; sloc = loc }
  | Token.KW_BREAK ->
    advance p;
    expect p Token.SEMI;
    { Ast.sdesc = Ast.Break; sloc = loc }
  | Token.KW_CONTINUE ->
    advance p;
    expect p Token.SEMI;
    { Ast.sdesc = Ast.Continue; sloc = loc }
  | Token.KW_SPAWN ->
    advance p;
    let f = expect_ident p in
    expect p Token.LPAREN;
    let args = parse_args p in
    expect p Token.SEMI;
    { Ast.sdesc = Ast.Spawn (f, args); sloc = loc }
  | _ ->
    let s = parse_simple_stmt p in
    expect p Token.SEMI;
    s

(* A declaration or an expression statement (no trailing ';'). *)
and parse_simple_stmt p : Ast.stmt =
  let loc = peek_loc p in
  if starts_type p then begin
    let ty = parse_type p in
    let name = expect_ident p in
    let ty = parse_array_suffix p ty in
    let init = if accept p Token.ASSIGN then Some (parse_expr p) else None in
    { Ast.sdesc = Ast.Decl (ty, name, init); sloc = loc }
  end
  else { Ast.sdesc = Ast.Expr (parse_expr p); sloc = loc }

and parse_stmt_as_list p =
  match parse_stmt p with
  | { Ast.sdesc = Ast.Block body; _ } -> body
  | s -> [ s ]

and parse_stmts_until_rbrace p =
  let rec go acc =
    if accept p Token.RBRACE then List.rev acc else go (parse_stmt p :: acc)
  in
  go []

(* --- top level --- *)

let parse_annots p =
  let rec go acc =
    match peek p with
    | Token.KW_ENTRY -> advance p; go (Annot.Entry :: acc)
    | Token.KW_WITHIN -> advance p; go (Annot.Within :: acc)
    | Token.KW_IGNORE -> advance p; go (Annot.Ignore :: acc)
    | _ -> List.rev acc
  in
  go []

let parse_params p =
  expect p Token.LPAREN;
  if accept p Token.RPAREN then []
  else if peek p = Token.KW_VOID && peek_at p 1 = Token.RPAREN then begin
    advance p;
    advance p;
    []
  end
  else begin
    let rec go acc =
      let ty = parse_type p in
      let name = expect_ident p in
      if accept p Token.COMMA then go ((name, ty) :: acc)
      else begin
        expect p Token.RPAREN;
        List.rev ((name, ty) :: acc)
      end
    in
    go []
  end

let parse_topdecl p : Ast.topdecl option =
  let loc = peek_loc p in
  let annots = parse_annots p in
  if peek p = Token.KW_STRUCT && (match peek_at p 2 with Token.LBRACE -> true | _ -> false)
  then begin
    advance p;
    let name = expect_ident p in
    expect p Token.LBRACE;
    let rec fields acc =
      if accept p Token.RBRACE then List.rev acc
      else begin
        let ty = parse_type p in
        let fname = expect_ident p in
        let ty = parse_array_suffix p ty in
        expect p Token.SEMI;
        fields ((fname, ty) :: acc)
      end
    in
    let fs = fields [] in
    expect p Token.SEMI;
    Some (Ast.Struct_def (name, fs, loc))
  end
  else if accept p Token.KW_EXTERN then begin
    let ret = parse_type p in
    let name = expect_ident p in
    let params = parse_params p in
    expect p Token.SEMI;
    Some (Ast.Extern_decl (name, ret, params, annots, loc))
  end
  else begin
    let ty = parse_type p in
    let name = expect_ident p in
    if peek p = Token.LPAREN then begin
      let params = parse_params p in
      if accept p Token.SEMI then None (* forward prototype: resolved globally *)
      else begin
        expect p Token.LBRACE;
        let body = parse_stmts_until_rbrace p in
        Some
          (Ast.Func_def
             {
               Ast.fname = name;
               fret = ty;
               fparams = params;
               fbody = body;
               fannots = annots;
               floc = loc;
             })
      end
    end
    else begin
      let ty = parse_array_suffix p ty in
      let init = if accept p Token.ASSIGN then Some (parse_expr p) else None in
      expect p Token.SEMI;
      Some (Ast.Global (ty, name, init, loc))
    end
  end

let parse_program ?file src : Ast.program =
  let toks = Lexer.tokenize ?file src in
  let p = create toks in
  let rec go acc =
    if peek p = Token.EOF then List.rev acc
    else
      match parse_topdecl p with
      | Some d -> go (d :: acc)
      | None -> go acc
  in
  go []
