(* Front-door of the frontend: source text -> verified, mem2reg'd PIR
   module, i.e. the exact artifact the Privagic analysis consumes
   (paper Figure 5). *)

open Privagic_pir

type error = { loc : Loc.t; msg : string; phase : string }

exception Error of error

let compile ?(file = "<input>") ?(mem2reg = true) (src : string) : Pmodule.t =
  let fail phase loc msg = raise (Error { loc; msg; phase }) in
  let ast =
    try Parser.parse_program ~file src with
    | Lexer.Error (loc, msg) -> fail "lex" loc msg
    | Parser.Error (loc, msg) -> fail "parse" loc msg
  in
  let tprog =
    try Sema.check_program ast with Sema.Error (loc, msg) -> fail "type" loc msg
  in
  let m =
    try Lower.lower_program tprog with
    | Lower.Error (loc, msg) -> fail "lower" loc msg
  in
  if mem2reg then ignore (Privagic_passes.Pipeline.prepare m)
  else begin
    ignore (Privagic_passes.Simplify.remove_unreachable m);
    Verify.check_module_exn m
  end;
  m

let error_to_string e =
  Printf.sprintf "%s: %s error: %s" (Loc.to_string e.loc) e.phase e.msg
