(* Lowering of the typed AST to PIR.

   Every local variable and parameter starts as an [alloca] plus loads and
   stores; the mem2reg pass then promotes the ones whose address does not
   escape, exactly matching the pipeline the paper describes in §5.1.

   GEP semantics (shared with the VM and the secure type system): starting
   from [base : Ptr pointee], steps are applied in order:
   - [Field k]  on a struct type steps to field [k];
   - [Index v]  on an array type steps to element [v];
   - [Index v]  on a non-array type is pointer arithmetic: advance by
     [v * sizeof current] and keep the type. *)

open Privagic_pir

exception Error of Loc.t * string

let error loc fmt = Format.kasprintf (fun s -> raise (Error (loc, s))) fmt

type env = {
  m : Pmodule.t;
  b : Builder.t;
  mutable vars : (string * (Value.t * Ty.t)) list; (* name -> alloca, declared ty *)
  mutable loops : (string * string) list; (* (break target, continue target) *)
}

let lookup env loc name =
  match List.assoc_opt name env.vars with
  | Some v -> v
  | None -> error loc "internal: unbound local %s" name

let is_struct t = match t.Ty.desc with Ty.Struct _ -> true | _ -> false

(* --- addresses of lvalues --- *)

let rec lower_lvalue env (e : Sema.texpr) : Value.t =
  match e.Sema.tdesc with
  | Sema.TLocal name -> fst (lookup env e.tloc name)
  | Sema.TGlobal name -> Value.Global name
  | Sema.TUnop (Ast.Deref, p) -> lower_expr env p
  | Sema.TIndex (base, idx) -> (
    let iv = lower_expr env idx in
    match base.Sema.tty.Ty.desc with
    | Ty.Arr (elt, _) ->
      let addr = lower_lvalue env base in
      Builder.gep ~loc:e.tloc env.b ~ty:(Ty.ptr elt) ~pointee:base.Sema.tty
        addr
        [ Instr.Index iv ]
    | Ty.Ptr elt ->
      let p = lower_expr env base in
      Builder.gep ~loc:e.tloc env.b ~ty:(Ty.ptr elt) ~pointee:elt p
        [ Instr.Index iv ]
    | _ -> error e.tloc "internal: bad index base")
  | Sema.TField (base, sname, k) ->
    let addr = lower_lvalue env base in
    let fty = Pmodule.field_ty env.m sname k in
    Builder.gep ~loc:e.tloc env.b ~ty:(Ty.ptr fty) ~pointee:(Ty.struct_ sname)
      addr
      [ Instr.Field k ]
  | _ -> error e.tloc "internal: not an lvalue"

(* --- truthiness: produce an i1 from a C condition --- *)

and lower_cond env (e : Sema.texpr) : Value.t =
  let v = lower_expr env e in
  match e.Sema.tty.Ty.desc with
  | Ty.Ptr _ ->
    Builder.instr env.b Ty.i1 (Instr.Icmp (Instr.Ne, v, Value.Null e.Sema.tty))
  | Ty.F64 ->
    Builder.instr env.b Ty.i1 (Instr.Fcmp (Instr.Ne, v, Value.float_ 0.0))
  | _ -> Builder.icmp env.b Instr.Ne v (Value.Int (0L, e.Sema.tty))

(* --- expressions (rvalues) --- *)

and lower_expr env (e : Sema.texpr) : Value.t =
  let loc = e.Sema.tloc in
  match e.Sema.tdesc with
  | Sema.TInt n -> Value.Int (n, e.tty)
  | Sema.TFloat f -> Value.float_ f
  | Sema.TString s -> Value.Str s
  | Sema.TNull -> Value.Null e.tty
  | Sema.TLocal _ | Sema.TGlobal _ | Sema.TIndex _ | Sema.TField _
  | Sema.TUnop (Ast.Deref, _) ->
    if is_struct e.tty then
      error loc "struct values cannot be copied; take a pointer instead";
    let addr = lower_lvalue env e in
    Builder.load ~loc env.b e.tty addr
  | Sema.TUnop (Ast.Neg, sub) ->
    let v = lower_expr env sub in
    if Ty.is_float sub.Sema.tty then
      Builder.binop ~loc env.b Instr.Fsub Ty.f64 (Value.float_ 0.0) v
    else Builder.binop ~loc env.b Instr.Sub Ty.i64 (Value.int_ 0L) v
  | Sema.TUnop (Ast.Lognot, sub) ->
    let z =
      match sub.Sema.tty.Ty.desc with
      | Ty.Ptr _ -> Value.Null sub.Sema.tty
      | Ty.F64 -> Value.float_ 0.0
      | _ -> Value.Int (0L, sub.Sema.tty)
    in
    let v = lower_expr env sub in
    let flag =
      if Ty.is_float sub.Sema.tty then
        Builder.instr env.b Ty.i1 (Instr.Fcmp (Instr.Eq, v, z))
      else Builder.icmp env.b Instr.Eq v z
    in
    Builder.instr ~loc env.b Ty.i64 (Instr.Cast (Instr.Zext, flag, Ty.i64))
  | Sema.TUnop (Ast.Bitnot, sub) ->
    let v = lower_expr env sub in
    Builder.binop ~loc env.b Instr.Xor Ty.i64 v (Value.int_ (-1L))
  | Sema.TUnop (Ast.Addrof, sub) -> lower_lvalue env sub
  | Sema.TBinop ((Ast.Land | Ast.Lor) as op, a, b) ->
    lower_shortcircuit env loc op a b
  | Sema.TBinop (op, a, b) -> lower_binop env loc op a b
  | Sema.TPtradd (p, i) ->
    let pv = lower_expr env p in
    let iv = lower_expr env i in
    let elt = Ty.deref p.Sema.tty in
    Builder.gep ~loc env.b ~ty:p.Sema.tty ~pointee:elt pv [ Instr.Index iv ]
  | Sema.TAssign (lv, rhs) ->
    let v = lower_expr env rhs in
    let addr = lower_lvalue env lv in
    Builder.store ~loc env.b v addr;
    v
  | Sema.TCall (f, args) ->
    let avs = List.map (lower_expr env) args in
    Builder.call ~loc env.b e.tty f avs
  | Sema.TCallptr (callee, args) ->
    let fv = lower_expr env callee in
    let avs = List.map (lower_expr env) args in
    if Ty.equal e.tty Ty.void then begin
      Builder.effect ~loc env.b (Instr.Callind (fv, avs));
      Value.Undef Ty.void
    end
    else Builder.instr ~loc env.b e.tty (Instr.Callind (fv, avs))
  | Sema.TCast (want, sub) -> lower_cast env loc want sub
  | Sema.TSizeof ty -> Value.of_int (Pmodule.sizeof env.m ty)
  | Sema.TFuncaddr f -> Value.Func f
  | Sema.TDecay sub -> (
    match sub.Sema.tty.Ty.desc with
    | Ty.Arr (elt, _) ->
      let addr = lower_lvalue env sub in
      Builder.gep ~loc env.b ~ty:(Ty.ptr elt) ~pointee:sub.Sema.tty addr
        [ Instr.Index (Value.int_ 0L) ]
    | _ -> error loc "internal: decay of non-array")

and lower_binop env loc op a b : Value.t =
  let av = lower_expr env a in
  let bv = lower_expr env b in
  let fl = Ty.is_float a.Sema.tty in
  let arith iop fop =
    Builder.binop ~loc env.b (if fl then fop else iop)
      (if fl then Ty.f64 else Ty.i64)
      av bv
  in
  let cmp c =
    let flag =
      if fl then Builder.instr env.b Ty.i1 (Instr.Fcmp (c, av, bv))
      else Builder.icmp env.b c av bv
    in
    Builder.instr ~loc env.b Ty.i64 (Instr.Cast (Instr.Zext, flag, Ty.i64))
  in
  match op with
  | Ast.Add -> arith Instr.Add Instr.Fadd
  | Ast.Sub -> arith Instr.Sub Instr.Fsub
  | Ast.Mul -> arith Instr.Mul Instr.Fmul
  | Ast.Div -> arith Instr.Sdiv Instr.Fdiv
  | Ast.Rem -> Builder.binop ~loc env.b Instr.Srem Ty.i64 av bv
  | Ast.Band -> Builder.binop ~loc env.b Instr.And Ty.i64 av bv
  | Ast.Bor -> Builder.binop ~loc env.b Instr.Or Ty.i64 av bv
  | Ast.Bxor -> Builder.binop ~loc env.b Instr.Xor Ty.i64 av bv
  | Ast.Shl -> Builder.binop ~loc env.b Instr.Shl Ty.i64 av bv
  | Ast.Shr -> Builder.binop ~loc env.b Instr.Ashr Ty.i64 av bv
  | Ast.Eq -> cmp Instr.Eq
  | Ast.Ne -> cmp Instr.Ne
  | Ast.Lt -> cmp Instr.Slt
  | Ast.Le -> cmp Instr.Sle
  | Ast.Gt -> cmp Instr.Sgt
  | Ast.Ge -> cmp Instr.Sge
  | Ast.Land | Ast.Lor -> assert false (* handled by lower_shortcircuit *)

and lower_shortcircuit env loc op a b : Value.t =
  (* a && b / a || b with C short-circuit evaluation, producing 0/1 : i64. *)
  let rhs_label = Builder.block env.b "sc_rhs" in
  let join_label = Builder.block env.b "sc_join" in
  let av = lower_cond env a in
  let lhs_label = Builder.current_label env.b in
  (match op with
  | Ast.Land -> Builder.condbr env.b av rhs_label join_label
  | Ast.Lor -> Builder.condbr env.b av join_label rhs_label
  | _ -> assert false);
  Builder.position env.b rhs_label;
  let bv = lower_cond env b in
  let bv64 = Builder.instr env.b Ty.i64 (Instr.Cast (Instr.Zext, bv, Ty.i64)) in
  let rhs_end = Builder.current_label env.b in
  Builder.br env.b join_label;
  Builder.position env.b join_label;
  let short_value =
    match op with Ast.Land -> Value.int_ 0L | _ -> Value.int_ 1L
  in
  Builder.phi ~loc env.b Ty.i64 [ (lhs_label, short_value); (rhs_end, bv64) ]

and lower_cast env loc (want : Ty.t) (sub : Sema.texpr) : Value.t =
  let v = lower_expr env sub in
  let have = sub.Sema.tty in
  let cast op = Builder.instr ~loc env.b want (Instr.Cast (op, v, want)) in
  let rank t =
    match t.Ty.desc with Ty.I1 -> 1 | Ty.I8 -> 8 | Ty.I64 -> 64 | _ -> 0
  in
  match have.Ty.desc, want.Ty.desc with
  | _, Ty.Void -> Value.Undef Ty.void
  | (Ty.I1 | Ty.I8 | Ty.I64), (Ty.I1 | Ty.I8 | Ty.I64) ->
    if rank have = rank want then v
    else if rank have < rank want then cast Instr.Zext
    else cast Instr.Trunc
  | (Ty.I1 | Ty.I8 | Ty.I64), Ty.F64 -> cast Instr.Sitofp
  | Ty.F64, (Ty.I1 | Ty.I8 | Ty.I64) -> cast Instr.Fptosi
  | Ty.F64, Ty.F64 -> v
  | Ty.Ptr _, Ty.Ptr _ -> cast Instr.Bitcast
  | Ty.Ptr _, Ty.I64 -> cast Instr.Ptrtoint
  | Ty.I64, Ty.Ptr _ -> cast Instr.Inttoptr
  | _ ->
    error loc "internal: cast %s -> %s" (Ty.to_string have) (Ty.to_string want)

(* --- statements --- *)

let rec lower_stmt env (s : Sema.tstmt) : unit =
  let loc = s.Sema.tsloc in
  match s.Sema.tsdesc with
  | Sema.TExpr e -> ignore (lower_expr env e)
  | Sema.TDecl (ty, name, init) ->
    let slot = Builder.alloca ~loc env.b ty in
    env.vars <- (name, (slot, ty)) :: env.vars;
    (match init with
    | Some e ->
      let v = lower_expr env e in
      Builder.store ~loc env.b v slot
    | None -> ())
  | Sema.TIf (cond, then_, else_) ->
    let then_label = Builder.block env.b "if_then" in
    let else_label =
      if else_ = [] then None else Some (Builder.block env.b "if_else")
    in
    let join_label = Builder.block env.b "if_join" in
    let cv = lower_cond env cond in
    Builder.condbr env.b cv then_label
      (Option.value ~default:join_label else_label);
    Builder.position env.b then_label;
    lower_block env then_;
    Builder.br env.b join_label;
    (match else_label with
    | Some l ->
      Builder.position env.b l;
      lower_block env else_;
      Builder.br env.b join_label
    | None -> ());
    Builder.position env.b join_label
  | Sema.TWhile (cond, body) ->
    let head = Builder.block env.b "while_head" in
    let body_label = Builder.block env.b "while_body" in
    let exit = Builder.block env.b "while_exit" in
    Builder.br env.b head;
    Builder.position env.b head;
    let cv = lower_cond env cond in
    Builder.condbr env.b cv body_label exit;
    Builder.position env.b body_label;
    env.loops <- (exit, head) :: env.loops;
    lower_block env body;
    env.loops <- List.tl env.loops;
    Builder.br env.b head;
    Builder.position env.b exit
  | Sema.TFor (init, cond, step, body) ->
    let saved_vars = env.vars in
    Option.iter (lower_stmt env) init;
    let head = Builder.block env.b "for_head" in
    let body_label = Builder.block env.b "for_body" in
    let step_label = Builder.block env.b "for_step" in
    let exit = Builder.block env.b "for_exit" in
    Builder.br env.b head;
    Builder.position env.b head;
    (match cond with
    | Some c ->
      let cv = lower_cond env c in
      Builder.condbr env.b cv body_label exit
    | None -> Builder.br env.b body_label);
    Builder.position env.b body_label;
    env.loops <- (exit, step_label) :: env.loops;
    lower_block env body;
    env.loops <- List.tl env.loops;
    Builder.br env.b step_label;
    Builder.position env.b step_label;
    Option.iter (lower_stmt env) step;
    Builder.br env.b head;
    Builder.position env.b exit;
    env.vars <- saved_vars
  | Sema.TReturn v ->
    let rv = Option.map (lower_expr env) v in
    Builder.ret env.b rv;
    (* continue lowering any (dead) trailing statements in a fresh block *)
    let dead = Builder.block env.b "dead" in
    Builder.position env.b dead
  | Sema.TBreak -> (
    match env.loops with
    | (brk, _) :: _ ->
      Builder.br env.b brk;
      let dead = Builder.block env.b "dead" in
      Builder.position env.b dead
    | [] -> error loc "break outside a loop")
  | Sema.TContinue -> (
    match env.loops with
    | (_, cont) :: _ ->
      Builder.br env.b cont;
      let dead = Builder.block env.b "dead" in
      Builder.position env.b dead
    | [] -> error loc "continue outside a loop")
  | Sema.TBlock body -> lower_block env body
  | Sema.TSpawn (f, args) ->
    let avs = List.map (lower_expr env) args in
    Builder.effect ~loc env.b (Instr.Spawn (f, avs))

and lower_block env body =
  let saved = env.vars in
  List.iter (lower_stmt env) body;
  env.vars <- saved

(* --- top level --- *)

let lower_global_init (e : Sema.texpr) : Value.t =
  match e.Sema.tdesc with
  | Sema.TInt n -> Value.Int (n, e.tty)
  | Sema.TFloat f -> Value.float_ f
  | Sema.TString s -> Value.Str s
  | Sema.TNull -> Value.Null e.tty
  | Sema.TCast (_, sub) -> (
    match sub.Sema.tdesc with
    | Sema.TInt n -> Value.Int (n, e.tty)
    | Sema.TFloat f -> Value.Int (Int64.of_float f, e.tty)
    | _ -> error e.tloc "unsupported global initializer")
  | Sema.TUnop (Ast.Neg, { Sema.tdesc = Sema.TInt n; _ }) ->
    Value.Int (Int64.neg n, e.tty)
  | Sema.TUnop (Ast.Neg, { Sema.tdesc = Sema.TFloat f; _ }) ->
    Value.float_ (-.f)
  | _ -> error e.tloc "unsupported global initializer"

let lower_func (m : Pmodule.t) (tf : Sema.tfunc) : unit =
  let f =
    Func.make ~annots:tf.Sema.tfannots ~name:tf.Sema.tfname
      ~params:tf.Sema.tfparams ~ret:tf.Sema.tfret ()
  in
  let b = Builder.create m f in
  let env = { m; b; vars = []; loops = [] } in
  (* Spill parameters to stack slots; mem2reg will promote the clean ones. *)
  List.iteri
    (fun i (pname, pty) ->
      let slot = Builder.alloca ~loc:tf.Sema.tfloc b pty in
      Builder.store ~loc:tf.Sema.tfloc b (Value.reg i) slot;
      env.vars <- (pname, (slot, pty)) :: env.vars)
    tf.Sema.tfparams;
  List.iter (lower_stmt env) tf.Sema.tfbody;
  (* Implicit return at the end of the function. *)
  if not (Builder.terminated b) then
    if Ty.equal tf.Sema.tfret Ty.void then Builder.ret b None
    else Builder.ret b (Some (Value.Undef tf.Sema.tfret))

let lower_program (tp : Sema.tprogram) : Pmodule.t =
  let m = Pmodule.create () in
  List.iter
    (fun (sname, fields) -> Pmodule.add_struct m { Pmodule.sname; fields })
    tp.Sema.tstructs;
  List.iter
    (fun (gname, gty, init, gloc) ->
      Pmodule.add_global m
        { Pmodule.gname; gty; ginit = Option.map lower_global_init init; gloc })
    tp.Sema.tglobals;
  List.iter
    (fun (ename, ret, params, eannots) ->
      Pmodule.add_extern m
        { Pmodule.ename; esig = Ty.fun_ ret (List.map snd params); eannots })
    tp.Sema.texterns;
  List.iter (fun tf -> lower_func m tf) tp.Sema.tfuncs;
  let entries =
    List.filter_map
      (fun tf ->
        if List.exists (Annot.equal Annot.Entry) tf.Sema.tfannots then
          Some tf.Sema.tfname
        else None)
      tp.Sema.tfuncs
  in
  Pmodule.set_entry_points m entries;
  m
