(* Mini-C abstract syntax. Types reuse [Pir.Ty] directly (with colors), so
   the frontend, the secure type system, and the partitioner share one type
   language — mirroring how Privagic works on annotated LLVM IR rather than
   on C semantics (paper §2.2). *)

open Privagic_pir

type unop =
  | Neg          (* -e *)
  | Lognot       (* !e *)
  | Bitnot       (* ~e *)
  | Deref        (* *e *)
  | Addrof       (* &e *)

type binop =
  | Add | Sub | Mul | Div | Rem
  | Band | Bor | Bxor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | Land | Lor   (* short-circuit *)

type expr = { edesc : edesc; eloc : Loc.t }

and edesc =
  | Int_lit of int64
  | Float_lit of float
  | Char_lit of char
  | String_lit of string
  | Null_lit
  | Var of string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Assign of expr * expr                  (* lvalue = value, yields value *)
  | Call of string * expr list
  | Call_ptr of expr * expr list           (* indirect call *)
  | Index of expr * expr                   (* e[i] *)
  | Field of expr * string                 (* e.f *)
  | Arrow of expr * string                 (* e->f *)
  | Cast of Ty.t * expr
  | Sizeof of Ty.t
  | Func_addr of string                    (* &f resolved by sema *)

type stmt = { sdesc : sdesc; sloc : Loc.t }

and sdesc =
  | Expr of expr
  | Decl of Ty.t * string * expr option
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | For of stmt option * expr option * stmt option * stmt list
  | Return of expr option
  | Break
  | Continue
  | Block of stmt list
  | Spawn of string * expr list            (* spawn f(args): start a thread *)

type func = {
  fname : string;
  fret : Ty.t;
  fparams : (string * Ty.t) list;
  fbody : stmt list;
  fannots : Annot.t list;
  floc : Loc.t;
}

type topdecl =
  | Struct_def of string * (string * Ty.t) list * Loc.t
  | Global of Ty.t * string * expr option * Loc.t
  | Func_def of func
  | Extern_decl of string * Ty.t * (string * Ty.t) list * Annot.t list * Loc.t

type program = topdecl list
