lib/minic/parser.ml: Annot Array Ast Color Int64 Lexer List Loc Printf Privagic_pir Token Ty
