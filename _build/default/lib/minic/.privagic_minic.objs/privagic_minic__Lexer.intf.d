lib/minic/lexer.mli: Loc Privagic_pir Token
