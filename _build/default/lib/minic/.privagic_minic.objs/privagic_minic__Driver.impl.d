lib/minic/driver.ml: Lexer Loc Lower Parser Pmodule Printf Privagic_passes Privagic_pir Sema Verify
