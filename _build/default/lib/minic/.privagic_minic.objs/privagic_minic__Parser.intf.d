lib/minic/parser.mli: Ast Loc Privagic_pir Token Ty
