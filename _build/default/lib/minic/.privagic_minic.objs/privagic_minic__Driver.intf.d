lib/minic/driver.mli: Loc Pmodule Privagic_pir
