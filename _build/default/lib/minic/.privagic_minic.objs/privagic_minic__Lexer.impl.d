lib/minic/lexer.ml: Buffer Int64 List Loc Printf Privagic_pir String Token
