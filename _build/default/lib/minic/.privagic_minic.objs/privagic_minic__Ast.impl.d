lib/minic/ast.ml: Annot Loc Privagic_pir Ty
