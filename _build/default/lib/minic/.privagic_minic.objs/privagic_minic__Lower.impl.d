lib/minic/lower.ml: Annot Ast Builder Format Func Instr Int64 List Loc Option Pmodule Privagic_pir Sema Ty Value
