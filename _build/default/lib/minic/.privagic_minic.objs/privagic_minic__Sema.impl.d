lib/minic/sema.ml: Annot Ast Char Format Hashtbl Int64 List Loc Option Privagic_pir String Ty
