(** Latency model in CPU cycles. Sources: HotCalls [43] for transitions
    and syscalls, FastSGX [40] for the lock-free message and the
    contended lock-based switchless call, Eleos [30] for the in-enclave
    LLC-miss multiplier (5.6–9.5x), VAULT [39] for EPC faults, SCONE [5]
    for in-enclave proxied syscalls. Constants justified in
    DESIGN.md §8.4. *)

type t = {
  cycles_per_instr : float;
  l1_hit : float;
  llc_hit : float;
  llc_miss : float;
  enclave_miss_factor : float;
  epc_fault : float;
  ecall : float;
  switchless_lock : float;
  queue_msg : float;
  syscall : float;
  enclave_syscall : float;
  thread_spawn : float;
  auth_check : float;
}

val default : t

(** One cycle per instruction, everything else free: instruction-count
    virtual time for the interleaving oracle. *)
val unit_steps : t

val with_queue_msg : t -> float -> t
val with_enclave_miss_factor : t -> float -> t
