lib/sgx/config.ml:
