lib/sgx/cost.ml:
