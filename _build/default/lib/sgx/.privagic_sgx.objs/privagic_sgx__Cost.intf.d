lib/sgx/cost.mli:
