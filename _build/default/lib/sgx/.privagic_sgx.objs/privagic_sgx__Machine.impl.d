lib/sgx/machine.ml: Cache Config Cost
