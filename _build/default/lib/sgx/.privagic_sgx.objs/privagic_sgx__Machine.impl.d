lib/sgx/machine.ml: Cache Config Cost Privagic_telemetry
