lib/sgx/cache.ml: Array
