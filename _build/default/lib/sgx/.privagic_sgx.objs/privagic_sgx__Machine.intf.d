lib/sgx/machine.mli: Cache Config Cost Privagic_telemetry
