lib/sgx/machine.mli: Cache Config Cost
