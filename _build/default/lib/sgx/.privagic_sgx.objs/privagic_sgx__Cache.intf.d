lib/sgx/cache.mli:
