lib/sgx/config.mli:
