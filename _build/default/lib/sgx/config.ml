(* Hardware configurations. Machines A and B reproduce the paper's §9.1
   setups; the cache hierarchy parameters are typical for those parts. *)

type t = {
  name : string;
  freq_ghz : float;
  l1_kib : int;
  l1_assoc : int;
  llc_kib : int;
  llc_assoc : int;
  line_bytes : int;
  epc_mib : int;                (* usable EPC for enclave pages *)
  sgx_version : int;
}

(* Intel i5-9500, 6 cores, SGX v1, 93 MiB usable EPC, 9 MiB LLC. *)
let machine_a =
  {
    name = "machine-A (i5-9500, SGXv1)";
    freq_ghz = 3.0;
    l1_kib = 32;
    l1_assoc = 8;
    llc_kib = 9 * 1024;
    llc_assoc = 12;
    line_bytes = 64;
    epc_mib = 93;
    sgx_version = 1;
  }

(* Intel Xeon Gold 5415+, 16 CPUs, SGX v2, 8131 MiB EPC, 22.5 MiB LLC. *)
let machine_b =
  {
    name = "machine-B (Xeon Gold 5415+, SGXv2)";
    freq_ghz = 2.9;
    l1_kib = 48;
    l1_assoc = 12;
    llc_kib = 22 * 1024 + 512;
    llc_assoc = 15;
    line_bytes = 64;
    epc_mib = 8131;
    sgx_version = 2;
  }

(* Machine B with the EPC scaled down 32x (8131 MiB -> 254 MiB). The
   Fig. 8 sweep is scaled the same way (the paper's 1 MiB - 32 GiB becomes
   1 MiB - 1 GiB), so the dataset crosses the LLC and the EPC at the same
   relative points and the curve keeps its shape at simulable sizes. *)
let machine_b_scaled =
  { machine_b with name = "machine-B/32 (scaled EPC)"; epc_mib = 254 }

(* A deliberately small machine for fast unit tests: a few KiB of cache so
   that miss behaviour is exercised by tiny workloads. *)
let machine_test =
  {
    name = "machine-test";
    freq_ghz = 1.0;
    l1_kib = 1;
    l1_assoc = 2;
    llc_kib = 8;
    llc_assoc = 4;
    line_bytes = 64;
    epc_mib = 1;
    sgx_version = 1;
  }
