(** The simulated machine: cache hierarchy, EPC working set, cost and
    event counters. The VM charges every simulated memory access and every
    control event here and adds the returned cycles to the current
    worker's virtual clock. *)

type zone = Normal | Enclave of string

type counters = {
  mutable instrs : int;
  mutable mem_accesses : int;
  mutable l1_misses : int;
  mutable llc_misses : int;
  mutable enclave_llc_misses : int;
  mutable epc_faults : int;
  mutable ecalls : int;
  mutable switchless_calls : int;
  mutable queue_msgs : int;
  mutable syscalls : int;
  mutable enclave_syscalls : int;
  mutable threads_spawned : int;
}

val fresh_counters : unit -> counters

type t = {
  config : Config.t;
  cost : Cost.t;
  l1 : Cache.t;
  llc : Cache.t;
  epc : Cache.t;
  c : counters;
}

val create : ?cost:Cost.t -> Config.t -> t

(** Optional access trace for debugging cache behaviour: receives
    [(addr, size)] before each access. *)
val trace : (int * int -> unit) option ref

val instr_cost : t -> int -> float

(** [mem_cost m ~cpu ~data addr size]: [cpu] is the processor mode (misses
    taken in enclave mode pay the Eleos multiplier), [data] is where the
    memory lives (enclave pages occupy EPC and may fault). *)
val mem_cost : t -> cpu:zone -> data:zone -> int -> int -> float

val ecall_cost : t -> float
val switchless_cost : t -> float
val queue_msg_cost : t -> float
val syscall_cost : t -> zone:zone -> float
val thread_spawn_cost : t -> float
val counters : t -> counters
val llc_miss_ratio : t -> float

(** Convert cycles to seconds at this machine's frequency. *)
val seconds : t -> float -> float

val reset_stats : t -> unit
