(** Hardware configurations (paper §9.1). *)

type t = {
  name : string;
  freq_ghz : float;
  l1_kib : int;
  l1_assoc : int;
  llc_kib : int;
  llc_assoc : int;
  line_bytes : int;
  epc_mib : int;                (** usable EPC for enclave pages *)
  sgx_version : int;
}

(** Intel i5-9500: SGX v1, 93 MiB EPC, 9 MiB LLC. *)
val machine_a : t

(** Intel Xeon Gold 5415+: SGX v2, 8131 MiB EPC, 22.5 MiB LLC. *)
val machine_b : t

(** Machine B with the EPC scaled 32x down, so the Fig. 8 sweep crosses
    the LLC/EPC boundaries at simulable dataset sizes. *)
val machine_b_scaled : t

(** Tiny caches for fast unit tests. *)
val machine_test : t
