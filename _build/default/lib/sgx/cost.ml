(* Latency model, in CPU cycles. Sources:
   - enclave transitions and switchless calls: HotCalls [43] measures a
     classic ECALL at ~8 600 cycles and a syscall at ~1 500; switchless
     calls with a shared lock cost a few thousand cycles [40, 43];
   - the lock-free FIFO message of the Privagic runtime is a couple of
     cache-line transfers plus two atomics [40];
   - an LLC miss served while the CPU runs in enclave mode is 5.6-9.5 times
     more expensive than in normal mode (Eleos [30], quoted in §9.2.3);
   - an EPC page fault costs tens of thousands of cycles (encryption,
     eviction, TLB shootdown — VAULT [39]). *)

type t = {
  cycles_per_instr : float;
  l1_hit : float;
  llc_hit : float;
  llc_miss : float;             (* normal-mode DRAM access *)
  enclave_miss_factor : float;  (* in-enclave multiplier for LLC misses *)
  epc_fault : float;
  ecall : float;                (* classic EDL ECALL/OCALL round trip *)
  switchless_lock : float;      (* SDK switchless call (lock-based) *)
  queue_msg : float;            (* lock-free FIFO message transfer *)
  syscall : float;              (* normal-mode syscall *)
  enclave_syscall : float;      (* syscall issued from inside an enclave
                                   through a switchless proxy (Scone) *)
  thread_spawn : float;
  auth_check : float;           (* verifying one authenticated pointer
                                   (PAC-style MAC, §8 extension) *)
}

let default =
  {
    cycles_per_instr = 1.0;
    l1_hit = 4.0;
    llc_hit = 40.0;
    llc_miss = 200.0;
    enclave_miss_factor = 7.0;
    epc_fault = 40_000.0;
    ecall = 8_600.0;
    (* lock-based switchless calls degrade badly under the 6-client
       contention of the paper's setup [40, 43] *)
    switchless_lock = 4_000.0;
    queue_msg = 600.0;
    syscall = 1_500.0;
    (* syscall proxied out of the enclave by switchless threads, incl. the
       in-enclave wait [5, 30] *)
    enclave_syscall = 15_000.0;
    thread_spawn = 20_000.0;
    auth_check = 30.0;
  }

(* Unit-step model: one cycle per instruction, everything else free. Used
   by the interleaving oracle, where virtual time must equal instruction
   count so that schedules can be enumerated at instruction granularity. *)
let unit_steps =
  {
    cycles_per_instr = 1.0;
    l1_hit = 0.0;
    llc_hit = 0.0;
    llc_miss = 0.0;
    enclave_miss_factor = 1.0;
    epc_fault = 0.0;
    ecall = 0.0;
    switchless_lock = 0.0;
    queue_msg = 0.0;
    syscall = 0.0;
    enclave_syscall = 0.0;
    thread_spawn = 0.0;
    auth_check = 0.0;
  }

(* Sensitivity variants used by the ablation benches. *)
let with_queue_msg c v = { c with queue_msg = v }
let with_enclave_miss_factor c v = { c with enclave_miss_factor = v }
