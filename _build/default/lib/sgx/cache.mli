(** Set-associative LRU cache model, used for the L1, the shared LLC and —
    at page granularity — the EPC working set. Addresses are simulated
    byte addresses; the model answers hit/miss, latencies live in
    {!Cost}. *)

type t = {
  line_bits : int;
  set_bits : int;
  assoc : int;
  sets : int array array;
  lengths : int array;
  mutable accesses : int;
  mutable misses : int;
}

(** [create ~size_bytes ~line_bytes ~assoc]; sizes round up to powers of
    two. *)
val create : size_bytes:int -> line_bytes:int -> assoc:int -> t

(** Access one line; [true] = hit. *)
val access_line : t -> int -> bool

(** Access [size] bytes at [addr]; returns [(line_misses, lines_touched)]. *)
val access : t -> int -> int -> int * int

val miss_ratio : t -> float
val reset_stats : t -> unit
