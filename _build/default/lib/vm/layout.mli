(** Data layout, including the multi-color structure rewriting of §7.2.

    A structure whose fields do not all share one memory color cannot stay
    packed (an enclave is contiguous in the address space): each colored
    field of a multi-color struct becomes an indirection slot, the pointed
    storage allocated in the field's enclave; accessing such a field costs
    one extra load. With [auth_pointers] (§8 extension) the slot also
    carries a PAC-style MAC that {!field_address} verifies. Single-color
    structs keep the plain packed layout. *)

open Privagic_pir
open Privagic_secure

type field_slot =
  | Inline of int * int            (** offset, byte size *)
  | Indirect of int * Color.t * int
      (** slot offset, field color, pointee byte size *)

type struct_layout = {
  ls_name : string;
  ls_size : int;                   (** rewritten size *)
  ls_fields : field_slot array;
  ls_multicolor : bool;
}

type t = {
  m : Pmodule.t;
  mode : Mode.t;
  auth : bool;
  structs : (string, struct_layout) Hashtbl.t;
}

(** The MAC over a pointer value (models the integrity tag, not
    cryptographic strength). *)
val mac : int -> int64

val zone_of_color : Color.t -> Heap.zone
val create : ?auth_pointers:bool -> Pmodule.t -> Mode.t -> t

(** Rewritten byte size (indirection slots count 8, or 16 with auth). *)
val sizeof : t -> Ty.t -> int

val struct_layout : t -> string -> struct_layout

(** Allocate a value, splitting multi-color structs across zones and
    initializing the indirection slots (and MACs). *)
val alloc : t -> Heap.t -> Heap.zone -> Ty.t -> int

(** Same, on the zone's stack region. *)
val alloc_stack : t -> Heap.t -> Heap.zone -> Ty.t -> int

(** Field address; [true] when an indirection was followed (the caller
    charges its cost).
    @raise Heap.Fault with "pointer authentication failure" when the MAC
    does not match the stored pointer. *)
val field_address : t -> Heap.t -> string -> int -> int -> int * bool

(** Address of the indirection slot itself (what the cache model sees). *)
val field_slot_address : t -> string -> int -> int -> int
