(* Runtime values of the VM. Pointers are simulated byte addresses into the
   zoned heap; everything is 64-bit. *)

type t =
  | Int of int64
  | Flt of float
  | Ptr of int
  | Unit

let zero = Int 0L

let to_int64 = function
  | Int i -> i
  | Ptr p -> Int64.of_int p
  | Flt f -> Int64.of_float f
  | Unit -> 0L

let to_int v = Int64.to_int (to_int64 v)

let to_float = function
  | Flt f -> f
  | Int i -> Int64.to_float i
  | Ptr p -> float_of_int p
  | Unit -> 0.0

let to_addr = function
  | Ptr p -> p
  | Int i -> Int64.to_int i
  | Flt _ | Unit -> invalid_arg "Rvalue.to_addr"

let truthy = function
  | Int i -> not (Int64.equal i 0L)
  | Ptr p -> p <> 0
  | Flt f -> f <> 0.0
  | Unit -> false

let equal a b =
  match a, b with
  | Int x, Int y -> Int64.equal x y
  | Flt x, Flt y -> Float.equal x y
  | Ptr x, Ptr y -> x = y
  | Unit, Unit -> true
  | (Int _ | Ptr _), (Int _ | Ptr _) -> Int64.equal (to_int64 a) (to_int64 b)
  | _ -> false

let pp fmt = function
  | Int i -> Format.fprintf fmt "%Ld" i
  | Flt f -> Format.fprintf fmt "%g" f
  | Ptr p -> Format.fprintf fmt "0x%x" p
  | Unit -> Format.pp_print_string fmt "()"

let to_string v = Format.asprintf "%a" pp v
