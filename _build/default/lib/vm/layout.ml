(* Data layout, including the multi-color structure rewriting of §7.2.

   A structure whose fields do not all share one memory color cannot stay
   packed (an enclave is contiguous); Privagic stores the colored fields
   behind pointers. The VM realizes this: in the rewritten layout each
   colored field of a multi-color struct becomes an 8-byte indirection slot,
   the pointed storage being allocated in the field's enclave. Accessing
   such a field costs one extra load (the indirection the paper describes).

   Single-color structs (or fields whose color matches the struct's own
   storage) keep the plain packed layout. *)

open Privagic_pir
open Privagic_secure

type field_slot =
  | Inline of int * int          (* offset, byte size *)
  | Indirect of int * Color.t * int
      (* slot offset (8-byte pointer), field color, pointee byte size *)

type struct_layout = {
  ls_name : string;
  ls_size : int;                 (* rewritten size *)
  ls_fields : field_slot array;
  ls_multicolor : bool;
}

type t = {
  m : Pmodule.t;
  mode : Mode.t;
  auth : bool;    (* authenticated indirection pointers (§8 extension) *)
  structs : (string, struct_layout) Hashtbl.t;
}

(* A PAC-style MAC over the pointer value: a keyed 64-bit mix. This models
   the integrity tag, not cryptographic strength. *)
let mac_key = 0x5AC3D1E7A9B4F06L

let mac (ptr : int) : int64 =
  let z = Int64.logxor (Int64.of_int ptr) mac_key in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  Int64.logxor z (Int64.shift_right_logical z 27)

let zone_of_color (c : Color.t) : Heap.zone =
  match c with
  | Color.Named e -> Heap.Enclave e
  | Color.Unsafe | Color.Shared | Color.Free -> Heap.Unsafe

(* Rewritten byte size of a type (colored fields of multi-color structs
   count 8 bytes for the indirection slot). *)
let rec sizeof t (ty : Ty.t) : int =
  match ty.Ty.desc with
  | Ty.Void -> 0
  | Ty.I1 | Ty.I8 -> 1
  | Ty.I64 | Ty.F64 | Ty.Ptr _ | Ty.Fun _ -> 8
  | Ty.Arr (elt, n) -> n * sizeof t elt
  | Ty.Struct name -> (struct_layout t name).ls_size

and struct_layout t name : struct_layout =
  match Hashtbl.find_opt t.structs name with
  | Some l -> l
  | None ->
    let s = Pmodule.find_struct_exn t.m name in
    let colors =
      List.sort_uniq Color.compare
        (List.map
           (fun (_, ty) ->
             Option.value ~default:(Mode.default_memory_color t.mode)
               (Cenv.root_color ty))
           s.Pmodule.fields)
    in
    let multicolor = List.length colors > 1 in
    let fields =
      Array.make (List.length s.Pmodule.fields) (Inline (0, 0))
    in
    let off = ref 0 in
    List.iteri
      (fun k (_, fty) ->
        match Cenv.root_color fty with
        | Some c when multicolor && Color.is_enclave c ->
          fields.(k) <- Indirect (!off, c, sizeof t fty);
          (* with authenticated pointers the slot also holds the MAC *)
          off := !off + (if t.auth then 16 else 8)
        | _ ->
          let size = sizeof t fty in
          fields.(k) <- Inline (!off, size);
          off := !off + size)
      s.Pmodule.fields;
    let l =
      { ls_name = name; ls_size = !off; ls_fields = fields;
        ls_multicolor = multicolor }
    in
    Hashtbl.replace t.structs name l;
    l

let create ?(auth_pointers = false) (m : Pmodule.t) (mode : Mode.t) : t =
  let t = { m; mode; auth = auth_pointers; structs = Hashtbl.create 16 } in
  List.iter
    (fun (s : Pmodule.struct_def) -> ignore (struct_layout t s.sname))
    (Pmodule.structs_sorted m);
  t

(* Allocate one value of type [ty] in [zone], initializing the indirection
   slots of multi-color structs (their colored fields are allocated in their
   own enclaves). Returns the address. *)
let rec alloc t (heap : Heap.t) (zone : Heap.zone) (ty : Ty.t) : int =
  let addr = Heap.alloc heap zone (max 1 (sizeof t ty)) in
  init_struct_slots t heap ty addr;
  addr

(* Same, on the zone's stack region (alloca). *)
and alloc_stack t (heap : Heap.t) (zone : Heap.zone) (ty : Ty.t) : int =
  let addr = Heap.alloc_stack heap zone (max 1 (sizeof t ty)) in
  init_struct_slots t heap ty addr;
  addr

and init_struct_slots t heap (ty : Ty.t) addr =
  match ty.Ty.desc with
  | Ty.Struct name ->
    let l = struct_layout t name in
    Array.iter
      (fun slot ->
        match slot with
        | Indirect (off, color, pointee_size) ->
          let field_addr =
            Heap.alloc heap (zone_of_color color) (max 1 pointee_size)
          in
          Heap.store heap (addr + off) 8 (Int64.of_int field_addr);
          if t.auth then Heap.store heap (addr + off + 8) 8 (mac field_addr)
        | Inline _ -> ())
      l.ls_fields;
    (* nested inline structs also need their slots initialized *)
    let s = Pmodule.find_struct_exn t.m name in
    List.iteri
      (fun k (_, fty) ->
        match l.ls_fields.(k) with
        | Inline (off, _) -> init_struct_slots t heap fty (addr + off)
        | Indirect _ -> ())
      s.Pmodule.fields
  | Ty.Arr (elt, n) ->
    let stride = sizeof t elt in
    for k = 0 to n - 1 do
      init_struct_slots t heap elt (addr + (k * stride))
    done
  | _ -> ()

(* Field access: given the struct base address, return the field address and
   whether an indirection load was taken (the caller charges its cost).
   With authenticated pointers, the MAC next to the slot is verified —
   a tampered indirection faults instead of redirecting the enclave. *)
let field_address t heap sname k base :
    int * (* address *) bool (* indirection taken *) =
  let l = struct_layout t sname in
  match l.ls_fields.(k) with
  | Inline (off, _) -> (base + off, false)
  | Indirect (off, _, _) ->
    let ptr = Int64.to_int (Heap.load heap (base + off) 8) in
    if t.auth then begin
      let tag = Heap.load heap (base + off + 8) 8 in
      if not (Int64.equal tag (mac ptr)) then
        raise (Heap.Fault (base + off, "pointer authentication failure"))
    end;
    (ptr, true)

(* Address of the indirection slot itself (what the cache model sees being
   loaded during the indirection). *)
let field_slot_address t sname k base =
  let l = struct_layout t sname in
  match l.ls_fields.(k) with
  | Inline (off, _) -> base + off
  | Indirect (off, _, _) -> base + off
