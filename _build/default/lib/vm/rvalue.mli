(** Runtime values of the VM: 64-bit integers, floats, and simulated byte
    addresses. *)

type t =
  | Int of int64
  | Flt of float
  | Ptr of int   (** a simulated byte address into the zoned heap *)
  | Unit

val zero : t
val to_int64 : t -> int64
val to_int : t -> int
val to_float : t -> float

(** @raise Invalid_argument on [Flt]/[Unit]. *)
val to_addr : t -> int

(** C truthiness: nonzero / non-null. *)
val truthy : t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
