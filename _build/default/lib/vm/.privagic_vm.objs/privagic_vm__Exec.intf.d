lib/vm/exec.mli: Buffer Func Hashtbl Heap Instr Layout Pmodule Privagic_pir Privagic_sgx Rvalue Ty
