lib/vm/rvalue.ml: Float Format Int64
