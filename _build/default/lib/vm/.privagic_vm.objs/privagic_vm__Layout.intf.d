lib/vm/layout.mli: Color Hashtbl Heap Mode Pmodule Privagic_pir Privagic_secure Ty
