lib/vm/interp.mli: Exec Hashtbl Heap Privagic_pir Privagic_secure Privagic_sgx Rvalue
