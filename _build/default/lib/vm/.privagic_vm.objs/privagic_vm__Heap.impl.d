lib/vm/heap.ml: Buffer Bytes Char Hashtbl Int64 String
