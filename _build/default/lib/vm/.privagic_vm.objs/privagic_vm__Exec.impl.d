lib/vm/exec.ml: Array Block Buffer Func Hashtbl Heap Instr Int64 Layout List Pmodule Printf Privagic_pir Privagic_secure Privagic_sgx Rvalue Ty Value
