lib/vm/layout.ml: Array Cenv Color Hashtbl Heap Int64 List Mode Option Pmodule Privagic_pir Privagic_secure Ty
