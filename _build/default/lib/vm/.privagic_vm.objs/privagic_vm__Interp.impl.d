lib/vm/interp.ml: Array Buffer Exec Externals Hashtbl Heap Instr Layout Pmodule Privagic_pir Privagic_secure Privagic_sgx Rvalue Ty
