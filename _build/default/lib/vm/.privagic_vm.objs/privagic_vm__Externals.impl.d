lib/vm/externals.ml: Array Buffer Exec Heap Int64 Printf Rvalue
