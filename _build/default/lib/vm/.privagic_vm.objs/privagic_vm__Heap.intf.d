lib/vm/heap.mli:
