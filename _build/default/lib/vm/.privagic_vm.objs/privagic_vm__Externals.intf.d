lib/vm/externals.mli: Exec Heap Rvalue
