lib/vm/pinterp.mli: Color Exec Format Hashtbl Infer Plan Privagic_partition Privagic_pir Privagic_runtime Privagic_secure Privagic_sgx Privagic_telemetry Rvalue Ty
