lib/vm/rvalue.mli: Format
