(** Implementations of the external functions the mini-C programs declare:
    the paper's mini-libc ([within] helpers available inside every
    enclave: malloc, memcpy, string functions, classify/declassify) and
    the OS interface (network, locks, printing — syscalls whose cost
    depends on the CPU zone). *)

(** How many OS interactions an external performs (0 = not a syscall).
    [net_recv] models memcached's event-loop read side (epoll + reads),
    [net_send] the response path, locks are futexes. *)
val syscall_weight : string -> int

val is_syscall : string -> bool

val copy_bytes : Heap.t -> dst:int -> src:int -> int -> unit
val set_bytes : Heap.t -> dst:int -> int -> int -> unit

(** Execute external [name]; [None] when unknown (the driver traps).
    [malloc_zone] is where allocation externals place memory — the enclave
    executing the within-call, per §6.3. *)
val dispatch :
  Exec.t -> malloc_zone:Heap.zone -> string -> Rvalue.t array ->
  Rvalue.t option
