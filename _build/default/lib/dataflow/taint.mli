(** The sequential data-flow baseline (the technique of the tools in the
    paper's Table 1: Glamdring's abstract interpretation, Privtrans'
    use-def chains, SeCage's taint analysis).

    The color annotations are reused as sensitivity *sources*; the
    analysis computes which memory locations the sensitive values flow
    into assuming SEQUENTIAL execution — a store through a pointer uses
    the points-to set established earlier in the same function and cannot
    see a concurrent thread redirecting the pointer in between. This is
    the unsoundness Fig. 3 demonstrates. *)

module SSet : Set.S with type elt = string

type result = {
  tainted_globals : SSet.t;
  sources : SSet.t;
  warnings : string list;
}

val analyze : Privagic_pir.Pmodule.t -> result

(** The partition the tool would build: the tainted locations go into the
    enclave. *)
val protected_locations : result -> string list

(** Whether [location] stays outside the derived partition. *)
val leaks_to : result -> string -> bool
