lib/dataflow/interleave.ml: Buffer Exec Externals Hashtbl Heap Layout List Pmodule Printf Privagic_pir Privagic_runtime Privagic_secure Privagic_sgx Privagic_vm Ty
