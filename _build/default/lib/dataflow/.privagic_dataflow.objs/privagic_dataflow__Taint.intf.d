lib/dataflow/taint.mli: Privagic_pir Set
