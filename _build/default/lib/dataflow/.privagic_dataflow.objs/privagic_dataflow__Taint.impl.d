lib/dataflow/taint.ml: Block Color Func Hashtbl Instr List Option Pmodule Privagic_pir Privagic_secure Set String Value
