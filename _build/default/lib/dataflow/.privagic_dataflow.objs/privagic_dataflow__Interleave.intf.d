lib/dataflow/interleave.mli: Privagic_pir
