(** Concrete interleaving explorer — the ground-truth oracle of the Fig. 3
    experiment. Executes a multi-threaded mini-C program under schedules
    produced by sliding the spawned threads' start offsets (virtual time =
    instruction count), then exposes the final memory. *)

type outcome = {
  offsets : float list;            (** start offset of each spawned thread *)
  globals : (string * int64) list; (** final values of scalar globals *)
  output : string;
}

(** Run [entry] with the k-th spawned thread starting at [offsets.(k)]
    (missing entries start at the spawner's clock). Deterministic. *)
val run :
  Privagic_pir.Pmodule.t -> entry:string -> offsets:float list -> outcome

(** Slide the second thread across the first and return the distinct
    outcomes. *)
val explore :
  Privagic_pir.Pmodule.t -> entry:string -> max_offset:int -> outcome list

val global_value : outcome -> string -> int64 option
