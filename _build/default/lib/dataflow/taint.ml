(* Sequential data-flow analysis in the style of the tools of Table 1
   (Glamdring's abstract interpretation, Privtrans' use-def chains, SeCage's
   taint analysis). The developer marks sensitive *sources* (we reuse the
   color annotations as source markers); the analysis then computes which
   memory locations the sensitive values flow into, assuming SEQUENTIAL
   execution — each function is analyzed in isolation, statement after
   statement, with flow-sensitive points-to information.

   This is the baseline of the Fig. 3 experiment: on a multi-threaded
   program, the analysis is unsound — a store through a pointer uses the
   points-to set established earlier in the SAME function, and cannot see
   a concurrent thread redirecting the pointer in between. The partition it
   derives (protect exactly the tainted locations) then leaks. *)

open Privagic_pir

module SSet = Set.Make (String)

type result = {
  tainted_globals : SSet.t;   (* locations the analysis wants in the enclave *)
  sources : SSet.t;           (* the annotated locations *)
  warnings : string list;
}

(* Abstract value: taint bit + points-to set (names of globals). *)
type aval = { taint : bool; pts : SSet.t }

let bot = { taint = false; pts = SSet.empty }

let join a b = { taint = a.taint || b.taint; pts = SSet.union a.pts b.pts }

let analyze (m : Pmodule.t) : result =
  (* sources: globals and parameters carrying a color annotation *)
  let sources =
    List.fold_left
      (fun acc (g : Pmodule.global) ->
        match Privagic_secure.Cenv.root_color g.gty with
        | Some (Color.Named _) -> SSet.add g.gname acc
        | _ -> acc)
      SSet.empty (Pmodule.globals_sorted m)
  in
  (* taint state of globals, accumulated across functions (no concurrency:
     each function's effects are applied atomically, one after another) *)
  let tainted = ref sources in
  let warnings = ref [] in
  let changed = ref true in
  let analyze_func (f : Func.t) =
    let regs : (int, aval) Hashtbl.t = Hashtbl.create 64 in
    let get r = Option.value ~default:bot (Hashtbl.find_opt regs r) in
    let set r v =
      let old = get r in
      let v = join old v in
      if v <> old then begin
        Hashtbl.replace regs r v;
        changed := true
      end
    in
    (* parameters with colored types are sensitive *)
    List.iteri
      (fun k (_, pty) ->
        match Privagic_secure.Cenv.root_color pty with
        | Some (Color.Named _) -> Hashtbl.replace regs k { bot with taint = true }
        | _ -> ())
      f.Func.params;
    let aval_of (v : Value.t) =
      match v with
      | Value.Reg r -> get r
      | Value.Global g ->
        { taint = false; pts = SSet.singleton g }
      | _ -> bot
    in
    (* flow-sensitive pass over blocks in layout order: the sequential
       assumption — pointer contents observed at program point p are the
       ones established by the latest dominating store in THIS function *)
    let ptr_state : (string, SSet.t) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (b : Block.t) ->
        List.iter
          (fun (i : Instr.t) ->
            match i.Instr.op with
            | Instr.Load p -> (
              let pv = aval_of p in
              (* loading through a pointer: taint if any target tainted *)
              let targets =
                match p with
                | Value.Global g -> (
                  match Hashtbl.find_opt ptr_state g with
                  | Some pts -> pts
                  | None -> SSet.singleton g)
                | _ -> pv.pts
              in
              let taint =
                SSet.exists (fun l -> SSet.mem l !tainted) targets
                ||
                match p with
                | Value.Global g -> SSet.mem g !tainted
                | _ -> pv.taint
              in
              (* a loaded pointer designates whatever the slot was last
                 observed (sequentially!) to contain *)
              let pts =
                match p with
                | Value.Global g ->
                  Option.value ~default:SSet.empty (Hashtbl.find_opt ptr_state g)
                | _ -> SSet.empty
              in
              set i.id { taint; pts })
            | Instr.Store (v, p) -> (
              let vv = aval_of v in
              match p with
              | Value.Global g ->
                (* store into global g directly *)
                if vv.taint && not (SSet.mem g !tainted) then begin
                  tainted := SSet.add g !tainted;
                  changed := true
                end;
                (* pointer assignment: strong update of the points-to set *)
                if not (SSet.is_empty vv.pts) then
                  Hashtbl.replace ptr_state g vv.pts
              | Value.Reg r ->
                let targets =
                  let pv = get r in
                  SSet.fold
                    (fun g acc ->
                      match Hashtbl.find_opt ptr_state g with
                      | Some pts -> SSet.union pts acc
                      | None -> SSet.add g acc)
                    pv.pts SSet.empty
                  |> fun s -> if SSet.is_empty s then (get r).pts else s
                in
                if vv.taint then
                  SSet.iter
                    (fun g ->
                      if not (SSet.mem g !tainted) then begin
                        tainted := SSet.add g !tainted;
                        changed := true
                      end)
                    targets
              | _ -> ())
            | Instr.Binop (_, a, b') | Instr.Icmp (_, a, b')
            | Instr.Fcmp (_, a, b') ->
              set i.id (join (aval_of a) (aval_of b'))
            | Instr.Cast (_, v, _) -> set i.id (aval_of v)
            | Instr.Gep (_, base, steps) ->
              let acc =
                List.fold_left
                  (fun acc s ->
                    match s with
                    | Instr.Index v -> join acc (aval_of v)
                    | Instr.Field _ -> acc)
                  (aval_of base) steps
              in
              set i.id acc
            | Instr.Phi entries ->
              set i.id
                (List.fold_left (fun acc (_, v) -> join acc (aval_of v)) bot
                   entries)
            | Instr.Select (c, a, b') ->
              set i.id (join (aval_of c) (join (aval_of a) (aval_of b')))
            | Instr.Call (_, args) | Instr.Callind (_, args)
            | Instr.Spawn (_, args) ->
              (* conservative: result tainted if any argument is *)
              let acc =
                List.fold_left (fun acc v -> join acc (aval_of v)) bot args
              in
              set i.id { acc with pts = SSet.empty }
            | Instr.Alloca _ -> set i.id bot)
          b.Block.instrs)
      f.Func.blocks
  in
  let rounds = ref 0 in
  while !changed && !rounds < 16 do
    changed := false;
    incr rounds;
    List.iter analyze_func (Pmodule.funcs_sorted m)
  done;
  { tainted_globals = !tainted; sources; warnings = !warnings }

(* The partition the data-flow tool would build: the tainted locations go
   into the enclave, everything else stays unprotected. *)
let protected_locations r = SSet.elements r.tainted_globals

let leaks_to (r : result) (location : string) =
  not (SSet.mem location r.tainted_globals)
