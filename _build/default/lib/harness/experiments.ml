(* One entry point that regenerates every table and figure of the paper's
   evaluation (the per-experiment index lives in DESIGN.md). [quick] runs
   scaled-down sizes for CI; the full sizes take minutes. *)

let all_names = [ "fig3"; "table4"; "fig8"; "fig9"; "fig10"; "ablation" ]

let run_one ~quick name =
  match name with
  | "fig3" -> Report.print (Fig3.report (Fig3.run ()))
  | "table4" -> Report.print (Table4.report (Table4.default_rows ()))
  | "fig8" ->
    let points =
      if quick then Fig8.run ~sizes_mib:[ 1; 4; 16 ] ~operations:500 ()
      else Fig8.run ()
    in
    Report.print (Fig8.report points)
  | "fig9" ->
    let rows =
      if quick then
        Fig9.run
          ~spec:
            [ (Kv.Hashmap, 4000, 300); (Kv.Rbtree, 4000, 300);
              (Kv.Linked_list, 400, 60) ]
          ()
      else Fig9.run ()
    in
    Report.print (Fig9.report rows)
  | "fig10" ->
    let results =
      if quick then Fig10.run ~record_count:800 ~operations:150 ()
      else Fig10.run ()
    in
    Report.print (Fig10.report results)
  | "ablation" ->
    if quick then begin
      Report.print (Ablation.crossing_sweep ~record_count:1000 ~operations:150 ());
      Report.print (Ablation.mode_comparison ~record_count:1000 ~operations:150 ());
      Report.print (Ablation.miss_factor_sweep ~record_count:4000 ~operations:150 ());
      Report.print (Ablation.auth_pointer_overhead ~record_count:800 ~operations:100 ())
    end
    else begin
      Report.print (Ablation.crossing_sweep ());
      Report.print (Ablation.mode_comparison ());
      Report.print (Ablation.miss_factor_sweep ());
      Report.print (Ablation.auth_pointer_overhead ())
    end
  | other -> Format.printf "unknown experiment %S (known: %s)@." other
               (String.concat " " all_names)

let run ?(quick = false) ?(names = []) () =
  let names = if names = [] then all_names else names in
  List.iter
    (fun name ->
      let t0 = Unix.gettimeofday () in
      run_one ~quick name;
      Format.printf "[%s finished in %.1fs]@.@." name
        (Unix.gettimeofday () -. t0))
    names
