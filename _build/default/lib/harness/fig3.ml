(* Figure 3 / motivation experiment: data-flow analysis vs explicit secure
   typing on the two-thread pointer-swap program.

   1. The sequential taint analysis (the Glamdring-like baseline) marks
      only [a] sensitive, so its partition leaves [b] unprotected.
   2. The interleaving oracle exhibits a schedule in which the secret ends
      up in [b] — the derived partition leaks.
   3. The secure-typing checker rejects the annotated version of the same
      program at the [x = &b] line, before anything runs. *)

module Programs = Privagic_workloads.Programs
module Taint = Privagic_dataflow.Taint
module Interleave = Privagic_dataflow.Interleave
open Privagic_secure

type outcome = {
  tainted : string list;           (* locations the data-flow tool protects *)
  leak_found : bool;               (* some schedule leaks into b *)
  leaking_offsets : float list;
  secure_typing_rejects : bool;    (* Privagic catches it statically *)
  rejection : string option;
}

let secret = 4242L

let run () : outcome =
  (* the data-flow baseline on the unannotated-pointer variant *)
  let m_df = Privagic_minic.Driver.compile ~file:"fig3a.mc" Programs.fig3_dataflow in
  let taint = Taint.analyze m_df in
  (* ground truth: explore interleavings *)
  let outcomes = Interleave.explore m_df ~entry:"main" ~max_offset:20 in
  let leaking =
    List.find_opt
      (fun oc ->
        match Interleave.global_value oc "b" with
        | Some v -> Int64.equal v secret
        | None -> false)
      outcomes
  in
  (* Privagic on the explicitly-typed variant *)
  let m_st = Privagic_minic.Driver.compile ~file:"fig3b.mc" Programs.fig3_secure in
  let infer = Infer.run ~mode:Mode.Relaxed m_st in
  {
    tainted = Taint.protected_locations taint;
    leak_found = leaking <> None;
    leaking_offsets =
      (match leaking with Some oc -> oc.Interleave.offsets | None -> []);
    secure_typing_rejects = not (Infer.ok infer);
    rejection =
      (match infer.Infer.diagnostics with
      | d :: _ -> Some (Diagnostic.to_string d)
      | [] -> None);
  }

let report (o : outcome) : Report.t =
  let t =
    Report.create ~title:"Figure 3: multi-threaded partitioning"
      ~header:[ "check"; "result" ]
  in
  Report.add_row t
    [ "data-flow protects"; String.concat "," o.tainted ];
  Report.add_row t
    [ "data-flow protects b?";
      string_of_bool (List.mem "b" o.tainted) ];
  Report.add_row t
    [ "schedule leaking secret into b found?"; string_of_bool o.leak_found ];
  Report.add_row t
    [ "secure typing rejects statically?";
      string_of_bool o.secure_typing_rejects ];
  Report.add_row t
    [ "rejection";
      (match o.rejection with Some r -> r | None -> "-") ];
  t
