(** One entry point regenerating every table and figure of the paper's
    evaluation (the per-experiment index lives in DESIGN.md §4). *)

val all_names : string list
(** ["fig3"; "table4"; "fig8"; "fig9"; "fig10"; "ablation"] *)

(** Run the named experiments ([all_names] when empty) and print their
    reports; [quick] uses scaled-down sizes for CI. *)
val run : ?quick:bool -> ?names:string list -> unit -> unit
