(* Figure 10: the hashmap with two colors (keys blue, values red), relaxed
   mode, on machine A — latency of Unprotected vs Privagic-2 vs
   Intel-sdk-2. Crossing several enclaves per request dominates; Privagic's
   lock-free messages divide the latency vs the SDK's lock-based
   switchless calls (the paper reports 6.4-9.2x). *)

module System = Privagic_baselines.System
module Sgx = Privagic_sgx
open Privagic_secure

let systems =
  [ System.Unprotected; System.Privagic Mode.Relaxed;
    System.Intel_sdk Mode.Relaxed ]

let run ?(config = Sgx.Config.machine_a) ?cost ?(record_count = 4_000)
    ?(operations = 500) ?(vsize = 1024) () : Kv.result list =
  List.map
    (fun kind ->
      Kv.run ~config ?cost ~vsize Kv.Hashmap2 kind ~record_count ~operations
        ())
    systems

let report (results : Kv.result list) : Report.t =
  let t =
    Report.create
      ~title:"Figure 10: hashmap with two colors, relaxed mode (machine A)"
      ~header:[ "system"; "latency us"; "tput kops/s"; "sdk/this latency" ]
  in
  let sdk_lat =
    List.fold_left
      (fun acc (r : Kv.result) ->
        if String.equal r.Kv.system "intel-sdk-relaxed" then
          r.Kv.mean_latency_us
        else acc)
      0.0 results
  in
  List.iter
    (fun (r : Kv.result) ->
      Report.add_row t
        [
          r.Kv.system;
          Report.f2 r.Kv.mean_latency_us;
          Report.f1 r.Kv.throughput_kops;
          Report.f2 (sdk_lat /. r.Kv.mean_latency_us);
        ])
    results;
  t
