(** Figure 9: the three data structures protected with one color on
    machine A — Unprotected vs Privagic-1 vs Intel-sdk-1. Zipfian access
    for the hashmap, uniform for treemap/list (§9.3.2). *)

module System = Privagic_baselines.System
module Sgx = Privagic_sgx

type row = { family : Kv.family; results : Kv.result list }

val systems : System.kind list

(** [(family, record_count, operations)] per structure. *)
val default_spec : (Kv.family * int * int) list

val run :
  ?config:Sgx.Config.t -> ?cost:Sgx.Cost.t ->
  ?spec:(Kv.family * int * int) list -> ?vsize:int -> unit -> row list

val report : row list -> Report.t
