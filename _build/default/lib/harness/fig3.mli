(** The Figure 3 motivation experiment: the sequential data-flow baseline
    vs the interleaving oracle vs the secure type system on the racy
    pointer-swap program. *)

type outcome = {
  tainted : string list;        (** what the data-flow tool protects *)
  leak_found : bool;            (** some schedule leaks the secret into b *)
  leaking_offsets : float list;
  secure_typing_rejects : bool;
  rejection : string option;
}

val secret : int64
val run : unit -> outcome
val report : outcome -> Report.t
