(* Plain-text table rendering for the experiment reports. *)

type t = { title : string; header : string list; mutable rows : string list list }

let create ~title ~header = { title; header; rows = [] }

let add_row t row = t.rows <- t.rows @ [ row ]

let widths t =
  let all = t.header :: t.rows in
  let cols = List.length t.header in
  List.init cols (fun c ->
      List.fold_left
        (fun acc row ->
          match List.nth_opt row c with
          | Some cell -> max acc (String.length cell)
          | None -> acc)
        0 all)

let pp fmt t =
  let ws = widths t in
  let line row =
    String.concat "  "
      (List.mapi
         (fun c cell ->
           let w = List.nth ws c in
           cell ^ String.make (max 0 (w - String.length cell)) ' ')
         row)
  in
  Format.fprintf fmt "== %s ==@." t.title;
  Format.fprintf fmt "%s@." (line t.header);
  Format.fprintf fmt "%s@."
    (String.make (List.fold_left (fun a w -> a + w + 2) (-2) ws) '-');
  List.iter (fun row -> Format.fprintf fmt "%s@." (line row)) t.rows

let print t = Format.printf "%a@." pp t

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let i n = string_of_int n
