lib/harness/fig10.ml: Kv List Mode Privagic_baselines Privagic_secure Privagic_sgx Report String
