lib/harness/fig9.ml: Kv List Mode Privagic_baselines Privagic_secure Privagic_sgx Privagic_workloads Report String
