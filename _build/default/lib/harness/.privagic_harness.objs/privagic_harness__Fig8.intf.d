lib/harness/fig8.mli: Kv Privagic_baselines Privagic_sgx Report
