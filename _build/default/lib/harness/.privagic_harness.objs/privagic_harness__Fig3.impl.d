lib/harness/fig3.ml: Diagnostic Infer Int64 List Mode Privagic_dataflow Privagic_minic Privagic_secure Privagic_workloads Report String
