lib/harness/fig10.mli: Kv Privagic_baselines Privagic_sgx Report
