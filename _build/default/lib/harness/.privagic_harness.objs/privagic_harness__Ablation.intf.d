lib/harness/ablation.mli: Report
