lib/harness/experiments.mli:
