lib/harness/fig3.mli: Report
