lib/harness/experiments.ml: Ablation Fig10 Fig3 Fig8 Fig9 Format Kv List Report String Table4 Unix
