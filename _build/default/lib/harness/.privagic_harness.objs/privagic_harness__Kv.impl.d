lib/harness/kv.ml: Int64 Privagic_baselines Privagic_secure Privagic_sgx Privagic_vm Privagic_workloads Rvalue
