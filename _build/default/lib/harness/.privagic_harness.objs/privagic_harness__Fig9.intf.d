lib/harness/fig9.mli: Kv Privagic_baselines Privagic_sgx Report
