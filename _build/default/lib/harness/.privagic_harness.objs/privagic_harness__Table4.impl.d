lib/harness/table4.ml: Infer List Mode Printf Privagic_minic Privagic_partition Privagic_secure Privagic_workloads Report
