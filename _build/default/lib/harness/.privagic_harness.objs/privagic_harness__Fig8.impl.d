lib/harness/fig8.ml: Kv List Mode Printf Privagic_baselines Privagic_secure Privagic_sgx Report String
