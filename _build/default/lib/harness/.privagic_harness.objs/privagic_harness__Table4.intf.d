lib/harness/table4.mli: Mode Privagic_secure Report
