lib/harness/kv.mli: Privagic_baselines Privagic_secure Privagic_sgx Privagic_workloads
