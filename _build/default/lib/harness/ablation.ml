(* Ablations of the design choices DESIGN.md calls out:

   A1 — crossing mechanism: the lock-free queue of the Privagic runtime vs
        the lock-based switchless call of the Intel SDK (the paper credits
        the Fig. 9 gap to this choice);
   A2 — hardened vs relaxed mode on the same single-color program (relaxed
        drops the Iago protection but the partitioning is identical —
        the cost difference should be negligible);
   A3 — the in-enclave LLC-miss multiplier (Eleos reports 5.6-9.5x): how
        the Privagic-vs-Unprotected gap responds to it. *)

module System = Privagic_baselines.System
module Sgx = Privagic_sgx
open Privagic_secure

let crossing_sweep ?(record_count = 5_000) ?(operations = 500) () =
  let t =
    Report.create ~title:"Ablation A1: crossing cost (cycles) vs throughput"
      ~header:[ "crossing cycles"; "tput kops/s"; "latency us" ]
  in
  List.iter
    (fun cycles ->
      let cost = Sgx.Cost.with_queue_msg Sgx.Cost.default cycles in
      let r =
        Kv.run ~cost Kv.Hashmap (System.Privagic Mode.Hardened) ~record_count
          ~operations ()
      in
      Report.add_row t
        [ Report.f1 cycles; Report.f1 r.Kv.throughput_kops;
          Report.f2 r.Kv.mean_latency_us ])
    [ 200.0; 600.0; 1_000.0; 3_000.0; 8_600.0 ];
  t

let mode_comparison ?(record_count = 5_000) ?(operations = 500) () =
  let t =
    Report.create ~title:"Ablation A2: hardened vs relaxed mode"
      ~header:[ "mode"; "tput kops/s"; "latency us"; "queue msgs" ]
  in
  List.iter
    (fun mode ->
      let r =
        Kv.run Kv.Hashmap (System.Privagic mode) ~record_count ~operations ()
      in
      Report.add_row t
        [ Mode.to_string mode; Report.f1 r.Kv.throughput_kops;
          Report.f2 r.Kv.mean_latency_us; Report.i r.Kv.queue_msgs ])
    [ Mode.Hardened; Mode.Relaxed ];
  t

(* A4 — the §8 authenticated-pointer extension: overhead of MAC-verified
   indirections on the two-color hashmap (wider slots, one check per
   colored-field access). *)
let auth_pointer_overhead ?(record_count = 4_000) ?(operations = 500) () =
  let t =
    Report.create
      ~title:"Ablation A4: authenticated pointers (two-color hashmap)"
      ~header:[ "configuration"; "tput kops/s"; "latency us" ]
  in
  List.iter
    (fun (label, auth) ->
      let r =
        Kv.run ~config:Sgx.Config.machine_a ~auth_pointers:auth Kv.Hashmap2
          (System.Privagic Mode.Relaxed) ~record_count ~operations ()
      in
      Report.add_row t
        [ label; Report.f1 r.Kv.throughput_kops;
          Report.f2 r.Kv.mean_latency_us ])
    [ ("plain indirections", false); ("authenticated (MAC)", true) ];
  t

let miss_factor_sweep ?(record_count = 30_000) ?(operations = 500) () =
  let t =
    Report.create
      ~title:"Ablation A3: in-enclave LLC miss multiplier vs slowdown"
      ~header:[ "multiplier"; "privagic kops/s"; "unprotected kops/s"; "slowdown" ]
  in
  (* uniform access on a dataset larger than machine A's LLC: every lookup
     misses, so the in-enclave multiplier dominates (the treemap case of
     §9.3.2) *)
  let config = Sgx.Config.machine_a in
  let distribution = Privagic_workloads.Ycsb.Uniform in
  List.iter
    (fun factor ->
      let cost = Sgx.Cost.with_enclave_miss_factor Sgx.Cost.default factor in
      let rp =
        Kv.run ~config ~cost ~distribution Kv.Rbtree
          (System.Privagic Mode.Hardened) ~record_count ~operations ()
      in
      let ru =
        Kv.run ~config ~cost ~distribution Kv.Rbtree System.Unprotected
          ~record_count ~operations ()
      in
      Report.add_row t
        [ Report.f1 factor; Report.f1 rp.Kv.throughput_kops;
          Report.f1 ru.Kv.throughput_kops;
          Report.f2 (ru.Kv.throughput_kops /. rp.Kv.throughput_kops) ])
    [ 1.0; 5.6; 7.0; 9.5 ];
  t
