(** Figure 10: the two-color hashmap (keys blue, values red) in relaxed
    mode on machine A — latency of Unprotected vs Privagic-2 vs
    Intel-sdk-2. *)

module System = Privagic_baselines.System
module Sgx = Privagic_sgx

val systems : System.kind list

val run :
  ?config:Sgx.Config.t -> ?cost:Sgx.Cost.t -> ?record_count:int ->
  ?operations:int -> ?vsize:int -> unit -> Kv.result list

val report : Kv.result list -> Report.t
