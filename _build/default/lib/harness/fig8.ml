(* Figure 8: memcached under YCSB, throughput and latency as the dataset
   grows, for Unprotected / Scone / Privagic (hardened). The paper sweeps
   1 MiB - 32 GiB on machine B; we sweep a scaled range (the crossover
   behaviour is driven by the LLC and EPC sizes, which scale together via
   the machine configuration). *)

module System = Privagic_baselines.System
module Sgx = Privagic_sgx
open Privagic_secure

type point = {
  dataset_mib : float;
  results : Kv.result list; (* one per system *)
}

let systems = [ System.Unprotected; System.Scone; System.Privagic Mode.Hardened ]

let default_sizes_mib = [ 1; 4; 16; 64; 256; 512 ]

let run ?(config = Sgx.Config.machine_b_scaled) ?cost
    ?(sizes_mib = default_sizes_mib) ?(operations = 2000) ?(vsize = 1024) () :
    point list =
  List.map
    (fun mib ->
      let record_count = mib * 1024 * 1024 / vsize in
      (* scale buckets with the dataset so chains stay short, as
         memcached's hash table expansion does *)
      let rec pow2 n = if n >= record_count then n else pow2 (2 * n) in
      let nbuckets = max 1024 (pow2 1024) in
      let results =
        List.map
          (fun kind ->
            Kv.run ~config ?cost ~nbuckets ~vsize Kv.Memcached kind
              ~record_count ~operations ())
          systems
      in
      { dataset_mib = float_of_int mib; results })
    sizes_mib

let report (points : point list) : Report.t =
  let t =
    Report.create ~title:"Figure 8: memcached with YCSB (machine B)"
      ~header:
        [ "dataset"; "system"; "tput kops/s"; "latency us"; "LLC miss";
          "vs scone" ]
  in
  List.iter
    (fun p ->
      let scone_tput =
        List.fold_left
          (fun acc (r : Kv.result) ->
            if String.equal r.Kv.system "scone" then r.Kv.throughput_kops
            else acc)
          1.0 p.results
      in
      List.iter
        (fun (r : Kv.result) ->
          Report.add_row t
            [
              Printf.sprintf "%gMiB" p.dataset_mib;
              r.Kv.system;
              Report.f1 r.Kv.throughput_kops;
              Report.f2 r.Kv.mean_latency_us;
              Report.f2 r.Kv.llc_miss_ratio;
              Report.f2 (r.Kv.throughput_kops /. scone_tput);
            ])
        p.results)
    points;
  t
