(** Ablations of the design choices DESIGN.md §5 calls out. *)

(** A1: lock-free queue vs dearer crossing mechanisms — per-op cost as the
    crossing price sweeps from 200 cycles to the 8600-cycle ECALL. *)
val crossing_sweep : ?record_count:int -> ?operations:int -> unit -> Report.t

(** A2: hardened vs relaxed mode on the same single-color program. *)
val mode_comparison : ?record_count:int -> ?operations:int -> unit -> Report.t

(** A3: the in-enclave LLC-miss multiplier (Eleos' 5.6–9.5x) vs the
    Privagic slowdown, on a uniform treemap larger than the LLC. *)
val miss_factor_sweep : ?record_count:int -> ?operations:int -> unit -> Report.t

(** A4: the §8 authenticated-pointer extension — MAC-verified indirection
    overhead on the two-color hashmap. *)
val auth_pointer_overhead :
  ?record_count:int -> ?operations:int -> unit -> Report.t
