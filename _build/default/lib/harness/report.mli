(** Plain-text table rendering for the experiment reports. *)

type t

val create : title:string -> header:string list -> t
val add_row : t -> string list -> unit
val pp : Format.formatter -> t -> unit
val print : t -> unit

(** Formatting helpers: one decimal, two decimals, integer. *)
val f1 : float -> string

val f2 : float -> string
val i : int -> string
