(* Figure 9: the three data structures protected with one color, on
   machine A: Unprotected vs Privagic-1 vs Intel-sdk-1. The paper
   pre-loads 100 000 keys of 1 KiB values and reports throughput; the
   linked list is the pathological case (a get visits half the list). *)

module System = Privagic_baselines.System
module Sgx = Privagic_sgx
open Privagic_secure

let systems =
  [ System.Unprotected; System.Privagic Mode.Hardened;
    System.Intel_sdk Mode.Hardened ]

type row = { family : Kv.family; results : Kv.result list }

(* Record counts scaled from the paper's 100 000: the datasets sit at the
   same position relative to machine A's LLC as in the paper, which is what
   the per-system ratios depend on (see EXPERIMENTS.md). *)
let default_spec =
  [ (Kv.Hashmap, 8_000, 1000); (Kv.Rbtree, 8_000, 1000);
    (Kv.Linked_list, 2_000, 200) ]

let run ?(config = Sgx.Config.machine_a) ?cost ?(spec = default_spec)
    ?(vsize = 1024) () : row list =
  List.map
    (fun (family, record_count, operations) ->
      (* the treemap's pain point in the paper is its uniform access
         pattern (§9.3.2); the hashmap benefits from the zipfian skew *)
      let distribution =
        match family with
        | Kv.Rbtree | Kv.Linked_list -> Privagic_workloads.Ycsb.Uniform
        | _ -> Privagic_workloads.Ycsb.Zipfian
      in
      let results =
        List.map
          (fun kind ->
            Kv.run ~config ?cost ~vsize ~distribution family kind
              ~record_count ~operations ())
          systems
      in
      { family; results })
    spec

let find_tput rows name =
  List.fold_left
    (fun acc (r : Kv.result) ->
      if String.equal r.Kv.system name then r.Kv.throughput_kops else acc)
    0.0 rows

let report (rows : row list) : Report.t =
  let t =
    Report.create
      ~title:"Figure 9: data structures with YCSB, one color (machine A)"
      ~header:
        [ "structure"; "system"; "tput kops/s"; "latency us"; "vs sdk";
          "unprot/this" ]
  in
  List.iter
    (fun row ->
      let sdk = find_tput row.results "intel-sdk" in
      let unprot = find_tput row.results "unprotected" in
      List.iter
        (fun (r : Kv.result) ->
          Report.add_row t
            [
              Kv.family_name row.family;
              r.Kv.system;
              Report.f1 r.Kv.throughput_kops;
              Report.f2 r.Kv.mean_latency_us;
              Report.f2 (r.Kv.throughput_kops /. sdk);
              Report.f2 (unprot /. r.Kv.throughput_kops);
            ])
        row.results)
    rows;
  t
