(** Table 4 and §9.3.1: engineering effort (modified LoC, by diff against
    the legacy variant) and trusted computing base per program. *)

open Privagic_secure

type row = {
  program : string;
  modified_lines : int;
  enclave_instrs : int;
  total_instrs : int;
  tcb_privagic_kib : int;
  tcb_scone_kib : int;
  reduction : float;
}

val analyze : name:string -> mode:Mode.t -> colored:string -> plain:string -> row

(** The five evaluation programs. *)
val default_rows : unit -> row list

val report : row list -> Report.t
