(** Figure 8: memcached-lite under YCSB, throughput and latency as the
    dataset grows, for Unprotected / Scone / Privagic. Runs on
    [machine_b_scaled] so the sweep crosses the LLC and EPC boundaries at
    simulable sizes (DESIGN.md §8.3). *)

module System = Privagic_baselines.System
module Sgx = Privagic_sgx

type point = { dataset_mib : float; results : Kv.result list }

val systems : System.kind list
val default_sizes_mib : int list

val run :
  ?config:Sgx.Config.t -> ?cost:Sgx.Cost.t -> ?sizes_mib:int list ->
  ?operations:int -> ?vsize:int -> unit -> point list

val report : point list -> Report.t
