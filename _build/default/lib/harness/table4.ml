(* Table 4 (and §9.3.1): engineering effort and trusted computing base.

   - "Modified" lines: the diff between the colored and the plain variant
     of each program (the paper reports 9 for memcached, <= 6 for the data
     structures).
   - TCB: bytes loaded into each enclave with Privagic vs the
     whole-application (Scone-like) TCB.
   - User code: PIR instructions placed inside the enclave vs the whole
     program. *)

open Privagic_secure
module Programs = Privagic_workloads.Programs
module Tcb = Privagic_partition.Tcb
module Plan = Privagic_partition.Plan

type row = {
  program : string;
  modified_lines : int;
  enclave_instrs : int;
  total_instrs : int;
  tcb_privagic_kib : int;
  tcb_scone_kib : int;
  reduction : float;
}

let analyze ~name ~mode ~(colored : string) ~(plain : string) : row =
  let m = Privagic_minic.Driver.compile ~file:(name ^ ".mc") colored in
  let infer = Infer.run ~mode m in
  let plan = Plan.build ~mode infer in
  let tcb = Tcb.of_plan plan in
  let enclave_instrs =
    List.fold_left
      (fun acc (p : Tcb.partition_stats) -> acc + p.Tcb.instr_count)
      0 tcb.Tcb.partitions
  in
  {
    program = name;
    modified_lines = Programs.modified_lines colored plain;
    enclave_instrs;
    total_instrs = tcb.Tcb.total_instrs;
    tcb_privagic_kib = tcb.Tcb.max_enclave_tcb_bytes / 1024;
    tcb_scone_kib = tcb.Tcb.whole_app_tcb_bytes / 1024;
    reduction = Tcb.reduction_factor tcb;
  }

let default_rows () =
  [
    analyze ~name:"memcached" ~mode:Mode.Hardened
      ~colored:(Programs.memcached `Colored)
      ~plain:(Programs.memcached `Plain);
    analyze ~name:"hashmap" ~mode:Mode.Hardened
      ~colored:(Programs.hashmap `Colored)
      ~plain:(Programs.hashmap `Plain);
    analyze ~name:"linked-list" ~mode:Mode.Hardened
      ~colored:(Programs.linked_list `Colored)
      ~plain:(Programs.linked_list `Plain);
    analyze ~name:"treemap" ~mode:Mode.Hardened
      ~colored:(Programs.rbtree `Colored)
      ~plain:(Programs.rbtree `Plain);
    analyze ~name:"hashmap-2color" ~mode:Mode.Relaxed
      ~colored:(Programs.hashmap_two_color `Colored)
      ~plain:(Programs.hashmap_two_color `Plain);
  ]

let report (rows : row list) : Report.t =
  let t =
    Report.create
      ~title:"Table 4 / §9.3.1: engineering effort and TCB"
      ~header:
        [ "program"; "modified locs"; "enclave instrs"; "total instrs";
          "TCB KiB"; "whole-app TCB KiB"; "reduction" ]
  in
  List.iter
    (fun r ->
      Report.add_row t
        [
          r.program;
          Report.i r.modified_lines;
          Report.i r.enclave_instrs;
          Report.i r.total_instrs;
          Report.i r.tcb_privagic_kib;
          Report.i r.tcb_scone_kib;
          Printf.sprintf "%.0fx" r.reduction;
        ])
    rows;
  t
