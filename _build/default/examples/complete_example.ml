(* The paper's complete example (Figures 6 and 7): three partitions (blue,
   red, untrusted), specialized functions, chunks, spawn/cont messages.

     dune exec examples/complete_example.exe *)

open Privagic_secure
open Privagic_vm
module P = Privagic_workloads.Programs

let () =
  Format.printf "=== the program (paper Figure 6) ===@.%s@." P.fig6;

  let m = Privagic_minic.Driver.compile ~file:"fig6.mc" P.fig6 in
  let res = Infer.run ~mode:Mode.Relaxed m in
  assert (Infer.ok res);

  Format.printf "=== color analysis ===@.";
  Format.printf "%a@." Infer.pp_report res;

  Format.printf "=== chunks (paper Figure 7) ===@.";
  let plan = Privagic_partition.Plan.build ~mode:Mode.Relaxed res in
  Hashtbl.iter
    (fun _ (pf : Privagic_partition.Plan.pfunc) ->
      List.iter
        (fun (ci : Privagic_partition.Plan.chunk_info) ->
          Format.printf "%a@." Privagic_pir.Func.pp
            ci.Privagic_partition.Plan.ci_func)
        pf.Privagic_partition.Plan.pf_chunks)
    plan.Privagic_partition.Plan.pfuncs;

  Format.printf "=== execution ===@.";
  let pt = Pinterp.create plan in
  let r = Pinterp.call_entry pt "main" [] in
  Format.printf "output: %s" (Pinterp.output pt);
  Format.printf "main() = %s after %.0f simulated cycles@."
    (Rvalue.to_string r.Pinterp.value)
    r.Pinterp.latency_cycles;
  let c = Privagic_sgx.Machine.counters (Pinterp.machine pt) in
  Format.printf
    "runtime messages: %d (the s1-s3 spawns, the c1-c5 conts and the \
     completion signals of Fig. 7)@."
    c.Privagic_sgx.Machine.queue_msgs
