(* A realistic scenario from the paper's introduction: protect the central
   map of an in-memory key-value cache (memcached-lite) and serve a YCSB
   workload, comparing Privagic with running the whole server in one
   enclave (Scone-like) and with no protection.

     dune exec examples/secure_kv_store.exe *)

module Kv = Privagic_harness.Kv
module System = Privagic_baselines.System
module P = Privagic_workloads.Programs
open Privagic_secure

let () =
  Format.printf
    "memcached-lite: LRU cache with eviction; the central map is colored \
     blue (%d annotation lines vs the legacy code)@.@."
    (P.modified_lines
       (P.memcached ~nbuckets:1024 ~vsize:1024 `Colored)
       (P.memcached ~nbuckets:1024 ~vsize:1024 `Plain));
  let record_count = 4_000 and operations = 1_000 in
  Format.printf "dataset: %d records of 1 KiB; %d YCSB-B operations@.@."
    record_count operations;
  let rows =
    List.map
      (fun kind ->
        Kv.run Kv.Memcached kind ~record_count ~operations ())
      [ System.Unprotected; System.Scone; System.Privagic Mode.Hardened ]
  in
  let t =
    Privagic_harness.Report.create ~title:"memcached-lite under YCSB-B"
      ~header:[ "system"; "tput kops/s"; "latency us"; "hit rate" ]
  in
  List.iter
    (fun (r : Kv.result) ->
      Privagic_harness.Report.add_row t
        [
          r.Kv.system;
          Privagic_harness.Report.f1 r.Kv.throughput_kops;
          Privagic_harness.Report.f2 r.Kv.mean_latency_us;
          Privagic_harness.Report.f2 r.Kv.p_found;
        ])
    rows;
  Privagic_harness.Report.print t;
  match rows with
  | [ _u; s; p ] ->
    Format.printf
      "Privagic is %.1fx faster than running the whole server in the \
       enclave (the paper reports 8.5-10x on small datasets).@."
      (p.Kv.throughput_kops /. s.Kv.throughput_kops)
  | _ -> ()
