(* Quickstart: annotate a C program with secure types, check it, partition
   it, and run it on the SGX simulator.

     dune exec examples/quickstart.exe *)

open Privagic_secure
open Privagic_vm

(* The paper's Figure 1, extended with a deposit and a declassified balance
   query. The account name lives in the blue enclave, the balance in the
   red enclave; the struct itself is multi-colored, so this program needs
   the relaxed mode (paper §7.2/§8). *)
let source =
  {|
within extern void* malloc(int n);
within extern char* strncpy(char* dst, char* src, int n);
ignore extern void declassify_i64(int* dst, int v);

struct account {
  char color(blue) name[64];
  double color(red) balance;
};

struct account* the_account;
int rstatus;

entry void create(char* name) {
  struct account* res = (struct account*) malloc(sizeof(struct account));
  strncpy(res->name, name, 64);
  res->balance = 0.0;
  the_account = res;
}

entry void deposit(int cents) {
  struct account* a = the_account;
  a->balance = a->balance + cents / 100.0;
}

entry int balance_cents() {
  struct account* a = the_account;
  int c = (int) (a->balance * 100.0);
  declassify_i64(&rstatus, c);
  return rstatus;
}
|}

let () =
  Format.printf "=== 1. compile (mini-C -> PIR, mem2reg) ===@.";
  let m = Privagic_minic.Driver.compile ~file:"account.mc" source in
  Format.printf "functions: %s@.@."
    (String.concat ", "
       (List.map
          (fun (f : Privagic_pir.Func.t) -> f.Privagic_pir.Func.name)
          (Privagic_pir.Pmodule.funcs_sorted m)));

  Format.printf "=== 2. secure type checking ===@.";
  (* hardened mode rejects the multi-color structure... *)
  let hardened = Infer.run ~mode:Mode.Hardened m in
  Format.printf "hardened mode: %d diagnostic(s), e.g.@."
    (List.length hardened.Infer.diagnostics);
  (match hardened.Infer.diagnostics with
  | d :: _ -> Format.printf "  %s@." (Diagnostic.to_string d)
  | [] -> ());
  (* ...relaxed mode accepts it *)
  let relaxed = Infer.run ~mode:Mode.Relaxed m in
  assert (Infer.ok relaxed);
  Format.printf "relaxed mode: OK@.";
  List.iter
    (fun inst ->
      Format.printf "  %s -> colorset {%s}@." inst.Infer.iname
        (String.concat ", "
           (List.map Privagic_pir.Color.to_string
              (Privagic_pir.Color.Set.elements (Infer.colorset inst)))))
    (Infer.instances relaxed);

  Format.printf "@.=== 3. partitioning ===@.";
  let plan = Privagic_partition.Plan.build ~mode:Mode.Relaxed relaxed in
  assert (plan.Privagic_partition.Plan.diagnostics = []);
  Format.printf "%a@." Privagic_partition.Plan.pp plan;
  Format.printf "%a@." Privagic_partition.Tcb.pp
    (Privagic_partition.Tcb.of_plan plan);

  Format.printf "=== 4. execution on the SGX simulator ===@.";
  let pt = Pinterp.create plan in
  let heap = pt.Pinterp.exec.Exec.heap in
  let name = Heap.alloc heap Heap.Unsafe 64 in
  String.iteri
    (fun i c -> Heap.store heap (name + i) 1 (Int64.of_int (Char.code c)))
    "alice";
  ignore (Pinterp.call_entry pt "create" [ Rvalue.Ptr name ]);
  ignore (Pinterp.call_entry pt "deposit" [ Rvalue.Int 250L ]);
  let r = Pinterp.call_entry pt "deposit" [ Rvalue.Int 199L ] in
  Format.printf "deposit latency: %.0f simulated cycles@."
    r.Pinterp.latency_cycles;
  let b = Pinterp.call_entry pt "balance_cents" [] in
  Format.printf "balance: %s cents@." (Rvalue.to_string b.Pinterp.value);
  let c = Privagic_sgx.Machine.counters (Pinterp.machine pt) in
  Format.printf "enclave crossings so far: %d lock-free messages@."
    c.Privagic_sgx.Machine.queue_msgs
