(* The motivation experiment (paper §3, Figure 3): why data-flow analysis
   cannot partition multi-threaded C, and how explicit secure typing
   rejects the same program statically.

     dune exec examples/multithreaded_leak.exe *)

open Privagic_secure
module P = Privagic_workloads.Programs
module Taint = Privagic_dataflow.Taint
module Interleave = Privagic_dataflow.Interleave

let () =
  Format.printf "=== the racy program (paper Figure 3a) ===@.%s@."
    P.fig3_dataflow;

  Format.printf
    "=== 1. what a sequential data-flow tool (Glamdring-style) concludes ===@.";
  let m = Privagic_minic.Driver.compile ~file:"fig3a.mc" P.fig3_dataflow in
  let taint = Taint.analyze m in
  Format.printf "sensitive data flows into: {%s}@."
    (String.concat ", " (Taint.protected_locations taint));
  Format.printf
    "so the tool would place only those in the enclave; 'b' stays outside.@.";

  Format.printf "@.=== 2. ground truth: exploring thread interleavings ===@.";
  let outcomes = Interleave.explore m ~entry:"main" ~max_offset:20 in
  List.iter
    (fun oc ->
      let v name =
        match Interleave.global_value oc name with
        | Some v -> Int64.to_string v
        | None -> "?"
      in
      Format.printf "schedule offsets [%s]: a=%s b=%s%s@."
        (String.concat "; " (List.map string_of_float oc.Interleave.offsets))
        (v "a") (v "b")
        (if Interleave.global_value oc "b" = Some 4242L then
           "   <- SECRET LEAKED into the unprotected location"
         else ""))
    outcomes;

  Format.printf
    "@.=== 3. the same program with explicit secure types (Figure 3b) ===@.%s@."
    P.fig3_secure;
  let m2 = Privagic_minic.Driver.compile ~file:"fig3b.mc" P.fig3_secure in
  let res = Infer.run ~mode:Mode.Relaxed m2 in
  if Infer.ok res then Format.printf "unexpectedly accepted?!@."
  else begin
    Format.printf "Privagic rejects it at compile time:@.";
    List.iter
      (fun d -> Format.printf "  %s@." (Diagnostic.to_string d))
      res.Infer.diagnostics;
    Format.printf
      "(the line 'x = &b': a pointer to unannotated memory cannot flow into \
       a pointer-to-blue — exactly the paper's FAIL comment)@."
  end
