(* Multiple colors in one structure (paper §9.3, Fig. 10): keys in the blue
   enclave, values in the red enclave. Hardened mode rejects the layout
   (the paper's §8 limitation); relaxed mode partitions it into three
   pieces connected by lock-free messages.

     dune exec examples/two_enclaves.exe *)

open Privagic_secure
open Privagic_vm
module P = Privagic_workloads.Programs

let () =
  let src = P.hashmap_two_color ~nbuckets:256 ~vsize:256 `Colored in
  let m = Privagic_minic.Driver.compile ~file:"hashmap2.mc" src in

  Format.printf "=== hardened mode: the paper's negative result ===@.";
  let hardened = Infer.run ~mode:Mode.Hardened m in
  List.iteri
    (fun i d ->
      if i < 3 then Format.printf "  %s@." (Diagnostic.to_string d))
    hardened.Infer.diagnostics;
  Format.printf
    "  -> a multi-color structure needs the indirection of §7.2, which only \
     relaxed mode supports.@.@.";

  Format.printf "=== relaxed mode ===@.";
  let relaxed = Infer.run ~mode:Mode.Relaxed m in
  assert (Infer.ok relaxed);
  let plan = Privagic_partition.Plan.build ~mode:Mode.Relaxed relaxed in
  Format.printf "%a@." Privagic_partition.Plan.pp plan;
  Format.printf "multi-color structures rewritten with indirections: %s@.@."
    (String.concat ", " plan.Privagic_partition.Plan.multicolor_structs);

  let pt = Pinterp.create plan in
  let heap = pt.Pinterp.exec.Exec.heap in
  let vbuf = Heap.alloc heap Heap.Unsafe 256 in
  let obuf = Heap.alloc heap Heap.Unsafe 256 in
  String.iteri
    (fun i c -> Heap.store heap (vbuf + i) 1 (Int64.of_int (Char.code c)))
    "top-secret-value";
  ignore (Pinterp.call_entry pt "h2_put" [ Rvalue.Int 1234L; Rvalue.Ptr vbuf ]);
  let r = Pinterp.call_entry pt "h2_get" [ Rvalue.Int 1234L; Rvalue.Ptr obuf ] in
  Format.printf "h2_get(1234) = %s, copied back: %S@."
    (Rvalue.to_string r.Pinterp.value)
    (Heap.read_string heap obuf);
  Format.printf "request latency: %.0f cycles (%d messages so far)@."
    r.Pinterp.latency_cycles
    (Privagic_sgx.Machine.counters (Pinterp.machine pt))
      .Privagic_sgx.Machine.queue_msgs;
  Format.printf
    "@.The keys live in the blue zone, the values in the red zone:@.";
  Format.printf "  blue bytes: %d, red bytes: %d, unsafe bytes: %d@."
    (Heap.live_bytes heap (Heap.Enclave "blue"))
    (Heap.live_bytes heap (Heap.Enclave "red"))
    (Heap.live_bytes heap Heap.Unsafe)
