examples/attack_surface.ml: Color Diagnostic Exec Format Hashtbl Heap Infer Int64 Mode Pinterp Privagic_minic Privagic_partition Privagic_pir Privagic_secure Privagic_sgx Privagic_vm Rvalue
