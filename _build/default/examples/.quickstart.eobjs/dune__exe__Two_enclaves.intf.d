examples/two_enclaves.mli:
