examples/secure_kv_store.mli:
