examples/quickstart.ml: Char Diagnostic Exec Format Heap Infer Int64 List Mode Pinterp Privagic_minic Privagic_partition Privagic_pir Privagic_secure Privagic_sgx Privagic_vm Rvalue String
