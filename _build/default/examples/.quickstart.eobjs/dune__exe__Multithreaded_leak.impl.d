examples/multithreaded_leak.ml: Diagnostic Format Infer Int64 List Mode Privagic_dataflow Privagic_minic Privagic_secure Privagic_workloads String
