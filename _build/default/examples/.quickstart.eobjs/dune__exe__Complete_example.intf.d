examples/complete_example.mli:
