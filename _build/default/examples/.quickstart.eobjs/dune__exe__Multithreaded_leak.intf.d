examples/multithreaded_leak.mli:
