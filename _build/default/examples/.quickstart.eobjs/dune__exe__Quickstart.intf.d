examples/quickstart.mli:
