(* Plain interpreter correctness: arithmetic, control flow, memory,
   structs, strings, recursion, function pointers, externals. Includes a
   property test pitting randomly generated expressions against a direct
   OCaml evaluation. *)

open Privagic_vm

let run ?policy src entry args = Helpers.run_plain ?policy src entry args

let check_int name src entry args expected =
  let v, _ = run src entry args in
  Alcotest.(check int64) name (Int64.of_int expected) (Rvalue.to_int64 v)

let test_arith () =
  check_int "add" "entry int f() { return 40 + 2; }" "f" [] 42;
  check_int "precedence" "entry int f() { return 2 + 3 * 4; }" "f" [] 14;
  check_int "division" "entry int f() { return 17 / 5; }" "f" [] 3;
  check_int "modulo" "entry int f() { return 17 % 5; }" "f" [] 2;
  check_int "negative" "entry int f() { return -7 + 3; }" "f" [] (-4);
  check_int "bitops" "entry int f() { return (12 & 10) | (1 << 4); }" "f" [] 24;
  check_int "xor" "entry int f() { return 255 ^ 170; }" "f" [] 85;
  check_int "shr" "entry int f() { return 1024 >> 3; }" "f" [] 128;
  check_int "compare chain" "entry int f() { return (3 < 4) + (4 <= 4) + (5 > 6); }"
    "f" [] 2

let test_float () =
  let v, _ = run "entry double f() { return 1.5 * 4.0; }" "f" [] in
  Alcotest.(check (float 1e-9)) "float mul" 6.0 (Rvalue.to_float v);
  check_int "float to int" "entry int f() { double d = 7.9; return (int) d; }"
    "f" [] 7;
  let v, _ =
    run "entry double f(int n) { return n / 2.0; }" "f" [ Helpers.rvalue_int 7 ]
  in
  Alcotest.(check (float 1e-9)) "int to float" 3.5 (Rvalue.to_float v)

let test_control_flow () =
  check_int "if else"
    "entry int f(int x) { if (x > 10) return 1; else return 2; }" "f"
    [ Helpers.rvalue_int 11 ] 1;
  check_int "while"
    "entry int f(int n) { int s = 0; int i = 0; while (i < n) { s = s + i; i = i + 1; } return s; }"
    "f" [ Helpers.rvalue_int 10 ] 45;
  check_int "for with break"
    "entry int f() { int s = 0; for (int i = 0; i < 100; i++) { if (i == 5) break; s += i; } return s; }"
    "f" [] 10;
  check_int "continue"
    "entry int f() { int s = 0; for (int i = 0; i < 10; i++) { if (i % 2 == 0) continue; s += i; } return s; }"
    "f" [] 25;
  check_int "shortcircuit and"
    "int g() { return 7; } entry int f(int x) { if (x > 0 && g() > 5) return 1; return 0; }"
    "f" [ Helpers.rvalue_int 1 ] 1;
  check_int "shortcircuit or"
    "entry int f(int x) { int y = 0; if (x == 1 || x == 2) y = 5; return y; }"
    "f" [ Helpers.rvalue_int 2 ] 5

let test_recursion () =
  check_int "factorial"
    "int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); } entry int f() { return fact(10); }"
    "f" [] 3628800;
  check_int "fibonacci"
    "int fib(int n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } entry int f() { return fib(15); }"
    "f" [] 610;
  check_int "mutual recursion"
    {|
int is_odd(int n);
int is_even(int n) { if (n == 0) return 1; return is_odd(n - 1); }
int is_odd(int n) { if (n == 0) return 0; return is_even(n - 1); }
entry int f() { return is_even(10) + is_odd(7); }
|}
    "f" [] 2

let test_arrays_and_pointers () =
  check_int "global array"
    "int a[8]; entry int f() { for (int i = 0; i < 8; i++) a[i] = i * i; return a[5]; }"
    "f" [] 25;
  check_int "pointer arith"
    "int a[8]; entry int f() { int* p = a; p = p + 3; *p = 77; return a[3]; }"
    "f" [] 77;
  check_int "address of"
    "entry int f() { int x = 5; int* p = &x; *p = 9; return x; }" "f" [] 9;
  check_int "char array"
    "char buf[4]; entry int f() { buf[0] = 'A'; buf[1] = buf[0] + 1; return buf[1]; }"
    "f" [] 66

let test_structs () =
  check_int "field access"
    {|
struct point { int x; int y; };
struct point g;
entry int f() { g.x = 3; g.y = 4; return g.x * g.x + g.y * g.y; }
|}
    "f" [] 25;
  check_int "struct via pointer"
    {|
within extern void* malloc(int n);
struct pair { int a; int b; };
entry int f() {
  struct pair* p = (struct pair*) malloc(sizeof(struct pair));
  p->a = 10;
  p->b = 32;
  return p->a + p->b;
}
|}
    "f" [] 42;
  check_int "nested struct"
    {|
struct inner { int v; };
struct outer { int tag; struct inner in_; };
struct outer g;
entry int f() { g.in_.v = 8; g.tag = 1; return g.in_.v + g.tag; }
|}
    "f" [] 9;
  check_int "linked nodes"
    {|
within extern void* malloc(int n);
struct n { int v; struct n* next; };
entry int f() {
  struct n* a = (struct n*) malloc(sizeof(struct n));
  struct n* b = (struct n*) malloc(sizeof(struct n));
  a->v = 1; a->next = b; b->v = 2; b->next = NULL;
  int s = 0;
  struct n* it = a;
  while (it != NULL) { s += it->v; it = it->next; }
  return s;
}
|}
    "f" [] 3

let test_strings_and_output () =
  let _, out =
    run
      {|
extern void print_str(char* s);
extern void print_int(int x);
entry void f() { print_str("hello"); print_int(42); }
|}
      "f" []
  in
  Alcotest.(check string) "output" "hello\n42\n" out;
  check_int "strlen"
    {|
within extern int strlen(char* s);
entry int f() { return strlen("privagic"); }
|}
    "f" [] 8;
  check_int "strcmp"
    {|
within extern int strcmp(char* a, char* b);
entry int f() { if (strcmp("abc", "abc") == 0) return 1; return 0; }
|}
    "f" [] 1

let test_memcpy_memset () =
  check_int "memcpy/memset"
    {|
within extern char* memcpy(char* d, char* s, int n);
within extern char* memset(char* d, int c, int n);
char a[16];
char b[16];
entry int f() {
  memset(a, 7, 16);
  memcpy(b, a, 16);
  return b[0] + b[15];
}
|}
    "f" [] 14

(* Indirect calls are exercised at the IR level (mini-C has no function
   pointer declarator): build a module where main calls through a loaded
   function address. *)
let test_function_pointers () =
  let open Privagic_pir in
  let m = Pmodule.create () in
  let dbl = Func.make ~name:"dbl" ~params:[ ("x", Ty.i64) ] ~ret:Ty.i64 () in
  let b = Builder.create m dbl in
  let r = Builder.binop b Instr.Mul Ty.i64 (Value.reg 0) (Value.int_ 2L) in
  Builder.ret b (Some r);
  let main = Func.make ~name:"main" ~params:[] ~ret:Ty.i64 () in
  let b = Builder.create m main in
  let v =
    Builder.instr b Ty.i64 (Instr.Callind (Value.Func "dbl", [ Value.int_ 21L ]))
  in
  Builder.ret b (Some v);
  let machine = Privagic_sgx.Machine.create Privagic_sgx.Config.machine_test in
  let heap = Heap.create () in
  let layout = Layout.create m Privagic_secure.Mode.Relaxed in
  let hooks : Exec.hooks =
    {
      Exec.h_call = (fun ex _ callee args ->
          Exec.exec_func ex (Pmodule.find_func_exn m callee) args);
      h_callind = (fun ex _ fv args ->
          Exec.exec_func ex
            (Pmodule.find_func_exn m (Exec.resolve_func ex fv))
            args);
      h_spawn = (fun _ _ _ _ -> ());
      h_pre_instr = (fun _ _ -> ());
      h_alloca_zone = (fun _ _ -> Heap.Unsafe);
    }
  in
  let ex = Exec.create m heap layout machine hooks in
  Exec.init_globals ex (fun _ -> Heap.Unsafe);
  let r = Exec.exec_func ex main [||] in
  Alcotest.(check int64) "callind result" 42L (Rvalue.to_int64 r)

let test_sizeof () =
  check_int "sizeof struct"
    "struct s { int a; char b[12]; }; entry int f() { return sizeof(struct s); }"
    "f" [] 20;
  check_int "sizeof scalar" "entry int f() { return sizeof(int) + sizeof(char); }"
    "f" [] 9

let test_div_by_zero_traps () =
  let it = Helpers.interp "entry int f(int x) { return 10 / x; }" in
  match Privagic_vm.Interp.call it "f" [ Helpers.rvalue_int 0 ] with
  | exception Exec.Trap msg ->
    Alcotest.(check bool) "mentions zero" true (Helpers.contains msg "zero")
  | _ -> Alcotest.fail "expected a trap"

let test_null_deref_faults () =
  let it = Helpers.interp "entry int f() { int* p = NULL; return *p; }" in
  match Privagic_vm.Interp.call it "f" [] with
  | exception Heap.Fault _ -> ()
  | _ -> Alcotest.fail "expected a fault"

(* --- property test: random expressions vs OCaml evaluation --- *)

type rexpr =
  | Lit of int
  | Var of int        (* one of three parameters *)
  | Add of rexpr * rexpr
  | Sub of rexpr * rexpr
  | Mul of rexpr * rexpr
  | Lt of rexpr * rexpr
  | Ifnz of rexpr * rexpr * rexpr

let rec to_src = function
  | Lit n -> string_of_int n
  | Var k -> Printf.sprintf "x%d" k
  | Add (a, b) -> Printf.sprintf "(%s + %s)" (to_src a) (to_src b)
  | Sub (a, b) -> Printf.sprintf "(%s - %s)" (to_src a) (to_src b)
  | Mul (a, b) -> Printf.sprintf "(%s * %s)" (to_src a) (to_src b)
  | Lt (a, b) -> Printf.sprintf "(%s < %s)" (to_src a) (to_src b)
  | Ifnz (c, a, b) ->
    Printf.sprintf "(%s ? ... )" (to_src c) |> ignore;
    (* lowered via a helper function call since mini-C has no ?: *)
    Printf.sprintf "ifnz(%s, %s, %s)" (to_src c) (to_src a) (to_src b)

let rec eval env = function
  | Lit n -> Int64.of_int n
  | Var k -> env.(k)
  | Add (a, b) -> Int64.add (eval env a) (eval env b)
  | Sub (a, b) -> Int64.sub (eval env a) (eval env b)
  | Mul (a, b) -> Int64.mul (eval env a) (eval env b)
  | Lt (a, b) -> if Int64.compare (eval env a) (eval env b) < 0 then 1L else 0L
  | Ifnz (c, a, b) ->
    if not (Int64.equal (eval env c) 0L) then eval env a else eval env b

let gen_rexpr =
  QCheck.Gen.(
    sized_size (int_bound 24)
    @@ fix (fun self n ->
           if n <= 0 then
             oneof
               [ map (fun i -> Lit i) (int_range (-100) 100);
                 map (fun k -> Var k) (int_range 0 2) ]
           else
             let sub = self (n / 2) in
             oneof
               [
                 map2 (fun a b -> Add (a, b)) sub sub;
                 map2 (fun a b -> Sub (a, b)) sub sub;
                 map2 (fun a b -> Mul (a, b)) sub sub;
                 map2 (fun a b -> Lt (a, b)) sub sub;
                 map3 (fun c a b -> Ifnz (c, a, b)) sub sub sub;
               ]))

let arb_rexpr = QCheck.make ~print:to_src (QCheck.Gen.map (fun e -> e) gen_rexpr)

let prop_expr_vs_ocaml =
  QCheck.Test.make ~count:60 ~name:"interpreter matches OCaml on expressions"
    (QCheck.pair arb_rexpr
       (QCheck.triple QCheck.small_signed_int QCheck.small_signed_int
          QCheck.small_signed_int))
    (fun (e, (a, b, c)) ->
      let src =
        Printf.sprintf
          {|
int ifnz(int c, int a, int b) { if (c != 0) return a; return b; }
entry int f(int x0, int x1, int x2) { return %s; }
|}
          (to_src e)
      in
      let v, _ =
        run src "f"
          [ Helpers.rvalue_int a; Helpers.rvalue_int b; Helpers.rvalue_int c ]
      in
      let expected =
        eval [| Int64.of_int a; Int64.of_int b; Int64.of_int c |] e
      in
      Int64.equal (Rvalue.to_int64 v) expected)

let suite =
  [
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "floats" `Quick test_float;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "recursion" `Quick test_recursion;
    Alcotest.test_case "arrays and pointers" `Quick test_arrays_and_pointers;
    Alcotest.test_case "structs" `Quick test_structs;
    Alcotest.test_case "strings and output" `Quick test_strings_and_output;
    Alcotest.test_case "memcpy memset" `Quick test_memcpy_memset;
    Alcotest.test_case "function pointers" `Quick test_function_pointers;
    Alcotest.test_case "sizeof" `Quick test_sizeof;
    Alcotest.test_case "division by zero" `Quick test_div_by_zero_traps;
    Alcotest.test_case "null dereference" `Quick test_null_deref_faults;
    QCheck_alcotest.to_alcotest prop_expr_vs_ocaml;
  ]
