(* Cache model, cost model, machine counters, heap, layout. *)

module Cache = Privagic_sgx.Cache
module Machine = Privagic_sgx.Machine
module Config = Privagic_sgx.Config
module Cost = Privagic_sgx.Cost
open Privagic_vm

let test_cache_hit_miss () =
  let c = Cache.create ~size_bytes:1024 ~line_bytes:64 ~assoc:2 in
  let m1, _ = Cache.access c 0 8 in
  Alcotest.(check int) "first access misses" 1 m1;
  let m2, _ = Cache.access c 0 8 in
  Alcotest.(check int) "second hits" 0 m2;
  let m3, _ = Cache.access c 32 8 in
  Alcotest.(check int) "same line hits" 0 m3;
  let m4, _ = Cache.access c 64 8 in
  Alcotest.(check int) "next line misses" 1 m4

let test_cache_eviction () =
  (* 2-way, 8 sets of 64B lines; three lines mapping to the same set *)
  let c = Cache.create ~size_bytes:1024 ~line_bytes:64 ~assoc:2 in
  let set_stride = 8 * 64 in
  ignore (Cache.access c 0 8);
  ignore (Cache.access c set_stride 8);
  ignore (Cache.access c (2 * set_stride) 8);
  (* line 0 was LRU and must have been evicted *)
  let m, _ = Cache.access c 0 8 in
  Alcotest.(check int) "evicted" 1 m;
  (* most recently used line is still there *)
  let m, _ = Cache.access c (2 * set_stride) 8 in
  Alcotest.(check int) "mru kept" 0 m

let test_cache_multiline () =
  let c = Cache.create ~size_bytes:4096 ~line_bytes:64 ~assoc:4 in
  let misses, lines = Cache.access c 0 256 in
  Alcotest.(check int) "4 lines" 4 lines;
  Alcotest.(check int) "4 misses" 4 misses

let prop_cache_misses_bounded =
  QCheck.Test.make ~count:100 ~name:"misses never exceed touched lines"
    QCheck.(list (pair (int_bound 100_000) (int_range 1 64)))
    (fun accesses ->
      let c = Cache.create ~size_bytes:2048 ~line_bytes:64 ~assoc:2 in
      List.for_all
        (fun (addr, size) ->
          let misses, lines = Cache.access c addr size in
          misses <= lines && lines >= 1)
        accesses)

let test_machine_enclave_miss_amplification () =
  let mk () = Machine.create ~cost:Cost.default Config.machine_test in
  let m1 = mk () in
  let normal = Machine.mem_cost m1 ~cpu:Machine.Normal ~data:Machine.Normal 0x100000 8 in
  let m2 = mk () in
  let enclave =
    Machine.mem_cost m2 ~cpu:(Machine.Enclave "e") ~data:Machine.Normal 0x100000 8
  in
  Alcotest.(check bool) "enclave miss costs more" true (enclave > normal)

let test_machine_epc_fault () =
  (* machine_test has a 1 MiB EPC: touching 2 MiB of enclave pages twice
     must fault on the second pass *)
  let m = Machine.create Config.machine_test in
  let touch () =
    for page = 0 to 511 do
      ignore
        (Machine.mem_cost m ~cpu:(Machine.Enclave "e") ~data:(Machine.Enclave "e")
           (page * 4096) 8)
    done
  in
  touch ();
  let faults_before = (Machine.counters m).Machine.epc_faults in
  touch ();
  let faults_after = (Machine.counters m).Machine.epc_faults in
  Alcotest.(check bool) "epc faults occur" true (faults_after > faults_before);
  (* normal-zone data never occupies EPC *)
  let m2 = Machine.create Config.machine_test in
  for page = 0 to 1023 do
    ignore
      (Machine.mem_cost m2 ~cpu:Machine.Normal ~data:Machine.Normal (page * 4096) 8)
  done;
  Alcotest.(check int) "no epc faults for normal data" 0
    (Machine.counters m2).Machine.epc_faults

let test_machine_counters () =
  let m = Machine.create Config.machine_test in
  ignore (Machine.ecall_cost m);
  ignore (Machine.switchless_cost m);
  ignore (Machine.queue_msg_cost m);
  ignore (Machine.syscall_cost m ~zone:Machine.Normal);
  ignore (Machine.syscall_cost m ~zone:(Machine.Enclave "e"));
  let c = Machine.counters m in
  Alcotest.(check int) "ecalls" 1 c.Machine.ecalls;
  Alcotest.(check int) "switchless" 1 c.Machine.switchless_calls;
  Alcotest.(check int) "msgs" 1 c.Machine.queue_msgs;
  Alcotest.(check int) "syscalls" 1 c.Machine.syscalls;
  Alcotest.(check int) "enclave syscalls" 1 c.Machine.enclave_syscalls;
  Machine.reset_stats m;
  Alcotest.(check int) "reset" 0 (Machine.counters m).Machine.ecalls

let test_seconds () =
  let m = Machine.create Config.machine_test in
  (* 1 GHz -> 1e9 cycles per second *)
  Alcotest.(check (float 1e-9)) "seconds" 1.0 (Machine.seconds m 1e9)

(* --- heap --- *)

let test_heap_roundtrip () =
  let h = Heap.create () in
  let a = Heap.alloc h Heap.Unsafe 64 in
  Heap.store h a 8 0x1122334455667788L;
  Alcotest.(check int64) "load 8" 0x1122334455667788L (Heap.load h a 8);
  Alcotest.(check int64) "load byte LE" 0x88L (Heap.load h a 1);
  Heap.store h (a + 9) 1 0xffL;
  Alcotest.(check int64) "byte" 0xffL (Heap.load h (a + 9) 1);
  Heap.store_f64 h (a + 16) 3.25;
  Alcotest.(check (float 1e-12)) "float" 3.25 (Heap.load_f64 h (a + 16))

let test_heap_zones () =
  let h = Heap.create () in
  let a = Heap.alloc h Heap.Unsafe 8 in
  let b = Heap.alloc h (Heap.Enclave "blue") 8 in
  Alcotest.(check bool) "zone unsafe" true (Heap.zone_of h a = Heap.Unsafe);
  Alcotest.(check bool) "zone blue" true
    (Heap.zone_of h b = Heap.Enclave "blue");
  Alcotest.(check bool) "distinct regions" true (abs (a - b) > 1_000_000)

let test_heap_null () =
  let h = Heap.create () in
  Alcotest.(check bool) "null load faults" true
    (match Heap.load h 0 8 with exception Heap.Fault _ -> true | _ -> false)

let test_heap_strings () =
  let h = Heap.create () in
  let a = Heap.intern_string h "hello" in
  let b = Heap.intern_string h "hello" in
  Alcotest.(check int) "interned once" a b;
  Alcotest.(check string) "read back" "hello" (Heap.read_string h a)

let test_heap_stack_reset () =
  let h = Heap.create () in
  let a = Heap.alloc_stack h Heap.Unsafe 32 in
  let _b = Heap.alloc_stack h Heap.Unsafe 32 in
  Heap.reset_stacks h;
  let c = Heap.alloc_stack h Heap.Unsafe 32 in
  Alcotest.(check int) "stack reuses addresses" a c;
  (* heap allocations are unaffected by stack reset *)
  let d = Heap.alloc h Heap.Unsafe 32 in
  let e = Heap.alloc h Heap.Unsafe 32 in
  Alcotest.(check bool) "heap monotone" true (e > d)

let test_heap_alignment () =
  let h = Heap.create () in
  let big = Heap.alloc h Heap.Unsafe 100 in
  Alcotest.(check int) "64B aligned" 0 (big mod 64);
  let small = Heap.alloc h Heap.Unsafe 5 in
  Alcotest.(check int) "8B aligned" 0 (small mod 8)

let prop_heap_roundtrip =
  QCheck.Test.make ~count:200 ~name:"heap store/load roundtrip"
    QCheck.(pair (int_bound 4000) int64)
    (fun (off, v) ->
      let h = Heap.create () in
      let base = Heap.alloc h Heap.Unsafe 8192 in
      Heap.store h (base + off) 8 v;
      Int64.equal (Heap.load h (base + off) 8) v)

(* --- layout: multi-color struct splitting --- *)

let test_layout_multicolor () =
  let src =
    {|
struct acc {
  char color(blue) name[16];
  double color(red) balance;
  int plain;
};
entry void f() { }
|}
  in
  let m = Helpers.compile src in
  let layout = Layout.create m Privagic_secure.Mode.Relaxed in
  let l = Layout.struct_layout layout "acc" in
  Alcotest.(check bool) "multicolor" true l.Layout.ls_multicolor;
  (* two 8-byte indirection slots + one inline int *)
  Alcotest.(check int) "rewritten size" 24 l.Layout.ls_size;
  (match l.Layout.ls_fields.(0) with
  | Layout.Indirect (0, Privagic_pir.Color.Named "blue", 16) -> ()
  | _ -> Alcotest.fail "field 0 shape");
  (* allocation splits the fields across zones *)
  let heap = Heap.create () in
  let addr = Layout.alloc layout heap Heap.Unsafe (Privagic_pir.Ty.struct_ "acc") in
  Alcotest.(check bool) "base unsafe" true (Heap.zone_of heap addr = Heap.Unsafe);
  let faddr, indirect = Layout.field_address layout heap "acc" 0 addr in
  Alcotest.(check bool) "field 0 indirect" true indirect;
  Alcotest.(check bool) "field 0 in blue" true
    (Heap.zone_of heap faddr = Heap.Enclave "blue");
  let vaddr, _ = Layout.field_address layout heap "acc" 1 addr in
  Alcotest.(check bool) "field 1 in red" true
    (Heap.zone_of heap vaddr = Heap.Enclave "red")

let test_layout_single_color_inline () =
  let src =
    {|
struct node { int color(blue) key; char color(blue) v[8]; };
entry void f() { }
|}
  in
  let m = Helpers.compile src in
  let layout = Layout.create m Privagic_secure.Mode.Hardened in
  let l = Layout.struct_layout layout "node" in
  Alcotest.(check bool) "not multicolor" false l.Layout.ls_multicolor;
  Alcotest.(check int) "packed size" 16 l.Layout.ls_size

let suite =
  [
    Alcotest.test_case "cache hit/miss" `Quick test_cache_hit_miss;
    Alcotest.test_case "cache eviction" `Quick test_cache_eviction;
    Alcotest.test_case "cache multiline" `Quick test_cache_multiline;
    QCheck_alcotest.to_alcotest prop_cache_misses_bounded;
    Alcotest.test_case "enclave miss amplification" `Quick
      test_machine_enclave_miss_amplification;
    Alcotest.test_case "epc faults" `Quick test_machine_epc_fault;
    Alcotest.test_case "machine counters" `Quick test_machine_counters;
    Alcotest.test_case "cycles to seconds" `Quick test_seconds;
    Alcotest.test_case "heap roundtrip" `Quick test_heap_roundtrip;
    Alcotest.test_case "heap zones" `Quick test_heap_zones;
    Alcotest.test_case "heap null" `Quick test_heap_null;
    Alcotest.test_case "heap strings" `Quick test_heap_strings;
    Alcotest.test_case "heap stack reset" `Quick test_heap_stack_reset;
    Alcotest.test_case "heap alignment" `Quick test_heap_alignment;
    QCheck_alcotest.to_alcotest prop_heap_roundtrip;
    Alcotest.test_case "layout multicolor" `Quick test_layout_multicolor;
    Alcotest.test_case "layout single color" `Quick test_layout_single_color_inline;
  ]
