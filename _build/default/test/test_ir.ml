(* PIR structure, CFG, dominators, verification, mem2reg, DCE. *)

open Privagic_pir

(* Build a diamond CFG by hand:
   entry -> (a | b) -> join -> ret *)
let diamond () =
  let m = Pmodule.create () in
  let f = Func.make ~name:"d" ~params:[ ("c", Ty.i1) ] ~ret:Ty.i64 () in
  let b = Builder.create m f in
  let la = Builder.block b "a" in
  let lb = Builder.block b "b" in
  let lj = Builder.block b "join" in
  Builder.condbr b (Value.reg 0) la lb;
  Builder.position b la;
  let va = Builder.binop b Instr.Add Ty.i64 (Value.int_ 1L) (Value.int_ 2L) in
  Builder.br b lj;
  Builder.position b lb;
  let vb = Builder.binop b Instr.Add Ty.i64 (Value.int_ 10L) (Value.int_ 20L) in
  Builder.br b lj;
  Builder.position b lj;
  let phi = Builder.phi b Ty.i64 [ (la, va); (lb, vb) ] in
  Builder.ret b (Some phi);
  (m, f)

let test_cfg () =
  let _, f = diamond () in
  let g = Cfg.of_func f in
  Alcotest.(check (list string)) "entry succs"
    [ "a1"; "b2" ] (Cfg.successors g "entry");
  Alcotest.(check (list string)) "join preds"
    [ "a1"; "b2" ] (List.sort compare (Cfg.predecessors g "join3"));
  Alcotest.(check bool) "entry first in RPO" true
    (List.hd (Cfg.reverse_postorder g) = "entry");
  Alcotest.(check (list string)) "exits" [ "join3" ] (Cfg.exits g)

let test_dominators () =
  let _, f = diamond () in
  let g = Cfg.of_func f in
  let dom = Dom.dominators g in
  Alcotest.(check bool) "entry dom a" true (Dom.dominates dom "entry" "a1");
  Alcotest.(check bool) "entry dom join" true (Dom.dominates dom "entry" "join3");
  Alcotest.(check bool) "a not dom join" false (Dom.dominates dom "a1" "join3");
  Alcotest.(check bool) "idom join = entry" true
    (Dom.idom dom "join3" = Some "entry");
  Alcotest.(check (list string)) "frontier of a" [ "join3" ]
    (Dom.frontier dom "a1")

let test_postdominators () =
  let _, f = diamond () in
  let g = Cfg.of_func f in
  let pdom = Dom.postdominators g in
  Alcotest.(check bool) "join pdom entry" true
    (Dom.dominates pdom "join3" "entry");
  Alcotest.(check bool) "a does not pdom entry" false
    (Dom.dominates pdom "a1" "entry");
  Alcotest.(check bool) "ipdom of entry is join" true
    (Dom.idom pdom "entry" = Some "join3")

let test_influence_region () =
  let _, f = diamond () in
  let g = Cfg.of_func f in
  let pdom = Dom.postdominators g in
  let region = List.sort compare (Dom.influence_region g pdom "entry") in
  Alcotest.(check (list string)) "region = both arms" [ "a1"; "b2" ] region

let test_verify_ok () =
  let m, _ = diamond () in
  match Verify.check_module m with
  | Ok () -> ()
  | Error errs -> Alcotest.failf "unexpected: %s" (String.concat "; " errs)

let test_verify_catches () =
  let m = Pmodule.create () in
  let f = Func.make ~name:"bad" ~params:[] ~ret:Ty.i64 () in
  let b = Builder.create m f in
  (* use of an undefined register *)
  let _ = Builder.binop b Instr.Add Ty.i64 (Value.reg 99) (Value.int_ 1L) in
  Builder.ret b (Some (Value.int_ 0L));
  (match Verify.check_module m with
  | Error (e :: _) ->
    Alcotest.(check bool) "mentions %99" true (Helpers.contains e "%99")
  | _ -> Alcotest.fail "expected an error");
  (* branch to an unknown block *)
  let m2 = Pmodule.create () in
  let f2 = Func.make ~name:"bad2" ~params:[] ~ret:Ty.void () in
  let b2 = Builder.create m2 f2 in
  Builder.br b2 "nowhere";
  match Verify.check_module m2 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "expected an error"

(* mem2reg on source programs *)

let test_mem2reg_promotes () =
  let src = "int f(int a, int b) { int x = a + b; int y = x * 2; return y; }" in
  let m = Privagic_minic.Driver.compile src in
  let f = Pmodule.find_func_exn m "f" in
  (* no allocas should remain *)
  let allocas = ref 0 in
  Func.iter_instrs f (fun _ i ->
      match i.Instr.op with Instr.Alloca _ -> incr allocas | _ -> ());
  Alcotest.(check int) "no allocas" 0 !allocas

let test_mem2reg_keeps_escaping () =
  let src =
    "extern void g(int* p); int f() { int x = 1; g(&x); return x; }"
  in
  let m = Privagic_minic.Driver.compile src in
  let f = Pmodule.find_func_exn m "f" in
  let allocas = ref 0 in
  Func.iter_instrs f (fun _ i ->
      match i.Instr.op with Instr.Alloca _ -> incr allocas | _ -> ());
  Alcotest.(check int) "escaping alloca kept" 1 !allocas

let test_mem2reg_keeps_colored () =
  let src = "int f() { int color(blue) x; x = 1; return 0; }" in
  let m = Privagic_minic.Driver.compile src in
  let f = Pmodule.find_func_exn m "f" in
  let allocas = ref 0 in
  Func.iter_instrs f (fun _ i ->
      match i.Instr.op with Instr.Alloca _ -> incr allocas | _ -> ());
  Alcotest.(check int) "colored alloca kept" 1 !allocas

let test_mem2reg_loop_phi () =
  let src =
    "int f(int n) { int acc = 0; int i = 0; while (i < n) { acc = acc + i; i = i + 1; } return acc; }"
  in
  let m = Privagic_minic.Driver.compile src in
  let f = Pmodule.find_func_exn m "f" in
  let phis = ref 0 in
  Func.iter_instrs f (fun _ i ->
      match i.Instr.op with Instr.Phi _ -> incr phis | _ -> ());
  Alcotest.(check bool) "loop phis inserted" true (!phis >= 2);
  match Verify.check_module m with
  | Ok () -> ()
  | Error errs -> Alcotest.failf "verify: %s" (String.concat "; " errs)

let test_dce () =
  let m = Pmodule.create () in
  let f = Func.make ~name:"f" ~params:[] ~ret:Ty.i64 () in
  let b = Builder.create m f in
  let _dead = Builder.binop b Instr.Add Ty.i64 (Value.int_ 1L) (Value.int_ 2L) in
  let live = Builder.binop b Instr.Mul Ty.i64 (Value.int_ 3L) (Value.int_ 4L) in
  Builder.ret b (Some live);
  let removed = Privagic_passes.Dce.run m in
  Alcotest.(check int) "one dead instr removed" 1 removed;
  Alcotest.(check int) "one instr left" 1 (Func.instr_count f)

let test_unreachable_removal () =
  let src = "int f() { return 1; return 2; }" in
  let m = Privagic_minic.Driver.compile src in
  let f = Pmodule.find_func_exn m "f" in
  let g = Cfg.of_func f in
  List.iter
    (fun (bl : Block.t) ->
      Alcotest.(check bool)
        ("block " ^ bl.Block.label ^ " reachable")
        true (Cfg.reachable g bl.Block.label))
    f.Func.blocks


(* --- constant folding --- *)

let count_instrs f = Privagic_pir.Func.instr_count f

let test_constfold_arith () =
  let m = Privagic_minic.Driver.compile ~mem2reg:true
      "entry int f() { return (2 + 3) * 4 - 6 / 2; }" in
  let f = Pmodule.find_func_exn m "f" in
  let before = count_instrs f in
  let folds = Privagic_passes.Constfold.run m in
  Alcotest.(check bool) "folded something" true (folds > 0);
  Alcotest.(check bool) "fewer instrs" true (count_instrs f < before);
  (* the function still computes 17 *)
  let it = Helpers.interp "entry int f() { return (2 + 3) * 4 - 6 / 2; }" in
  Alcotest.(check int64) "still 17" 17L
    (Privagic_vm.Rvalue.to_int64 (Privagic_vm.Interp.call it "f" []))

let test_constfold_branch () =
  let m = Privagic_minic.Driver.compile
      "entry int f() { if (1 < 2) return 10; return 20; }" in
  let f = Pmodule.find_func_exn m "f" in
  ignore (Privagic_passes.Constfold.run m);
  (* the false arm is gone *)
  let condbrs = ref 0 in
  List.iter
    (fun (b : Block.t) ->
      match b.Block.term with Instr.Condbr _ -> incr condbrs | _ -> ())
    f.Func.blocks;
  Alcotest.(check int) "no conditional left" 0 !condbrs;
  (match Verify.check_module m with
  | Ok () -> ()
  | Error e -> Alcotest.failf "verify: %s" (String.concat ";" e))

let test_constfold_preserves_semantics () =
  (* fold, then execute: same result as unfolded *)
  let src =
    "entry int f(int x) { int a = 3 * 7; int b = a + x; if (a == 21) b = b + 100; return b; }"
  in
  let m = Privagic_minic.Driver.compile src in
  ignore (Privagic_passes.Constfold.run m);
  let machine = Privagic_sgx.Machine.create Privagic_sgx.Config.machine_test in
  let heap = Privagic_vm.Heap.create () in
  let layout = Privagic_vm.Layout.create m Privagic_secure.Mode.Relaxed in
  let hooks : Privagic_vm.Exec.hooks =
    { Privagic_vm.Exec.h_call = (fun ex _ callee args ->
          Privagic_vm.Exec.exec_func ex (Pmodule.find_func_exn m callee) args);
      h_callind = (fun _ _ _ _ -> Privagic_vm.Rvalue.zero);
      h_spawn = (fun _ _ _ _ -> ());
      h_pre_instr = (fun _ _ -> ());
      h_alloca_zone = (fun _ _ -> Privagic_vm.Heap.Unsafe) }
  in
  let ex = Privagic_vm.Exec.create m heap layout machine hooks in
  Privagic_vm.Exec.init_globals ex (fun _ -> Privagic_vm.Heap.Unsafe);
  let r = Privagic_vm.Exec.exec_func ex (Pmodule.find_func_exn m "f")
      [| Privagic_vm.Rvalue.Int 5L |] in
  Alcotest.(check int64) "3*7+5+100" 126L (Privagic_vm.Rvalue.to_int64 r)

(* --- property: dominator facts on random structured CFGs --- *)

(* Generate a random structured function: a sequence of nested if/while
   statements over a few globals, compile it, and check textbook dominator
   facts hold on the resulting CFG. *)
let gen_structured_src =
  QCheck.Gen.(
    let rec stmt depth =
      if depth <= 0 then return "g = g + 1;"
      else
        frequency
          [
            (3, return "g = g + 1;");
            ( 2,
              map2
                (fun a b -> Printf.sprintf "if (g < h) { %s } else { %s }" a b)
                (stmt (depth - 1)) (stmt (depth - 1)) );
            ( 1,
              map
                (fun a ->
                  Printf.sprintf
                    "{ int i = 0; while (i < 3) { %s i = i + 1; } }" a)
                (stmt (depth - 1)) );
          ]
    in
    map
      (fun body ->
        Printf.sprintf "int g; int h; entry void f() { %s %s }" body body)
      (stmt 4))

let prop_dominators_sound =
  QCheck.Test.make ~count:40 ~name:"dominator facts on random CFGs"
    (QCheck.make ~print:(fun s -> s) gen_structured_src)
    (fun src ->
      let m = Privagic_minic.Driver.compile src in
      let f = Pmodule.find_func_exn m "f" in
      let g = Cfg.of_func f in
      let dom = Dom.dominators g in
      let labels = Cfg.reverse_postorder g in
      let entry = List.hd labels in
      List.for_all
        (fun l ->
          (* the entry dominates everything; domination is reflexive; the
             idom (when present) dominates its node and is dominated by
             the entry *)
          Dom.dominates dom entry l
          && Dom.dominates dom l l
          &&
          match Dom.idom dom l with
          | None -> l = entry
          | Some p -> Dom.dominates dom p l && Dom.dominates dom entry p)
        labels
      &&
      (* postdominators: every reachable block postdominates itself and is
         postdominated by some exit *)
      let pdom = Dom.postdominators g in
      List.for_all (fun l -> Dom.dominates pdom l l) labels)

let suite =
  [
    Alcotest.test_case "cfg" `Quick test_cfg;
    Alcotest.test_case "dominators" `Quick test_dominators;
    Alcotest.test_case "postdominators" `Quick test_postdominators;
    Alcotest.test_case "influence region" `Quick test_influence_region;
    Alcotest.test_case "verify ok" `Quick test_verify_ok;
    Alcotest.test_case "verify catches" `Quick test_verify_catches;
    Alcotest.test_case "mem2reg promotes" `Quick test_mem2reg_promotes;
    Alcotest.test_case "mem2reg keeps escaping" `Quick test_mem2reg_keeps_escaping;
    Alcotest.test_case "mem2reg keeps colored" `Quick test_mem2reg_keeps_colored;
    Alcotest.test_case "mem2reg loop phi" `Quick test_mem2reg_loop_phi;
    Alcotest.test_case "dce" `Quick test_dce;
    Alcotest.test_case "constfold arith" `Quick test_constfold_arith;
    Alcotest.test_case "constfold branch" `Quick test_constfold_branch;
    Alcotest.test_case "constfold semantics" `Quick test_constfold_preserves_semantics;
    QCheck_alcotest.to_alcotest prop_dominators_sound;
    Alcotest.test_case "unreachable removal" `Quick test_unreachable_removal;
  ]
