(* Partitioned execution tests: functional equivalence with the plain
   interpreter, message accounting, virtual-time latencies, persistence
   across requests, thread spawning. *)

open Privagic_secure
open Privagic_vm
module P = Privagic_workloads.Programs
module Sgx = Privagic_sgx

let test_fig6_equivalence () =
  let plain_v, plain_out = Helpers.run_plain P.fig6 "main" [] in
  let part_v, part_out = Helpers.run_partitioned ~mode:Mode.Relaxed P.fig6 "main" [] in
  Alcotest.(check int64) "same value" (Rvalue.to_int64 plain_v)
    (Rvalue.to_int64 part_v);
  Alcotest.(check string) "same output" plain_out part_out

let test_fig6_messages () =
  let pt = Helpers.pinterp ~mode:Mode.Relaxed P.fig6 in
  let _ = Pinterp.call_entry pt "main" [] in
  let c = Sgx.Machine.counters (Pinterp.machine pt) in
  (* Fig. 7: s1..s3 spawns, c1..c5 conts, completions — several crossings,
     but bounded *)
  Alcotest.(check bool) "crossings happened" true (c.Sgx.Machine.queue_msgs >= 4);
  Alcotest.(check bool) "crossings bounded" true (c.Sgx.Machine.queue_msgs <= 16)

let test_latency_positive_and_persistent () =
  let pt = Helpers.pinterp ~mode:Mode.Relaxed P.fig6 in
  let r1 = Pinterp.call_entry pt "main" [] in
  let r2 = Pinterp.call_entry pt "main" [] in
  Alcotest.(check bool) "latency > 0" true (r1.Pinterp.latency_cycles > 0.0);
  Alcotest.(check bool) "virtual time advances" true
    (r2.Pinterp.completed_at > r1.Pinterp.completed_at);
  (* warm caches: the second request is no slower *)
  Alcotest.(check bool) "warm request not slower" true
    (r2.Pinterp.latency_cycles <= r1.Pinterp.latency_cycles)

let test_state_persists_across_requests () =
  let src =
    {|
ignore extern void classify_i64(int* d, int v);
ignore extern void declassify_i64(int* d, int v);
int color(blue) counter;
int rstatus;
entry int bump(int by) {
  int color(blue) k;
  classify_i64(&k, by);
  counter = counter + k;
  declassify_i64(&rstatus, counter);
  return rstatus;
}
|}
  in
  let pt = Helpers.pinterp ~mode:Mode.Hardened src in
  let v1 = (Pinterp.call_entry pt "bump" [ Helpers.rvalue_int 5 ]).Pinterp.value in
  let v2 = (Pinterp.call_entry pt "bump" [ Helpers.rvalue_int 7 ]).Pinterp.value in
  Alcotest.(check int64) "first" 5L (Rvalue.to_int64 v1);
  Alcotest.(check int64) "accumulated" 12L (Rvalue.to_int64 v2)

let roundtrip_structure ~mode src ~put ~get =
  let pt = Helpers.pinterp ~mode src in
  let heap = pt.Pinterp.exec.Exec.heap in
  let vbuf = Heap.alloc heap Heap.Unsafe 128 in
  let obuf = Heap.alloc heap Heap.Unsafe 128 in
  for i = 0 to 7 do
    Heap.store heap (vbuf + i) 1 (Int64.of_int (65 + i))
  done;
  (* insert three keys, update one, then read *)
  List.iter
    (fun k ->
      ignore
        (Pinterp.call_entry pt put [ Helpers.rvalue_int k; Rvalue.Ptr vbuf ]))
    [ 3; 11; 19 ];
  Heap.store heap vbuf 1 90L;
  ignore (Pinterp.call_entry pt put [ Helpers.rvalue_int 11; Rvalue.Ptr vbuf ]);
  let hit k =
    Rvalue.to_int64
      (Pinterp.call_entry pt get [ Helpers.rvalue_int k; Rvalue.Ptr obuf ])
        .Pinterp.value
  in
  Alcotest.(check int64) "hit 3" 1L (hit 3);
  Alcotest.(check int64) "miss 4" 0L (hit 4);
  Alcotest.(check int64) "hit 11" 1L (hit 11);
  Alcotest.(check int64) "updated value visible" 90L
    (Heap.load heap obuf 1)

let test_hashmap_partitioned () =
  roundtrip_structure ~mode:Mode.Hardened
    (P.hashmap ~nbuckets:64 ~vsize:32 `Colored)
    ~put:"hm_put" ~get:"hm_get"

let test_llist_partitioned () =
  roundtrip_structure ~mode:Mode.Hardened
    (P.linked_list ~vsize:32 `Colored)
    ~put:"ll_put" ~get:"ll_get"

let test_rbtree_partitioned () =
  roundtrip_structure ~mode:Mode.Hardened
    (P.rbtree ~vsize:32 `Colored)
    ~put:"tm_put" ~get:"tm_get"

let test_two_color_partitioned () =
  roundtrip_structure ~mode:Mode.Relaxed
    (P.hashmap_two_color ~nbuckets:64 ~vsize:32 `Colored)
    ~put:"h2_put" ~get:"h2_get"

let test_rbtree_ordering_respected () =
  (* many keys: the tree must stay a valid search structure under the
     partitioned execution *)
  let pt =
    Helpers.pinterp ~mode:Mode.Hardened (P.rbtree ~vsize:16 `Colored)
  in
  let heap = pt.Pinterp.exec.Exec.heap in
  let vbuf = Heap.alloc heap Heap.Unsafe 64 in
  let obuf = Heap.alloc heap Heap.Unsafe 64 in
  let keys = List.init 64 (fun i -> (i * 37) mod 101) in
  List.iter
    (fun k ->
      ignore
        (Pinterp.call_entry pt "tm_put" [ Helpers.rvalue_int k; Rvalue.Ptr vbuf ]))
    keys;
  List.iter
    (fun k ->
      let v =
        (Pinterp.call_entry pt "tm_get" [ Helpers.rvalue_int k; Rvalue.Ptr obuf ])
          .Pinterp.value
      in
      Alcotest.(check int64)
        (Printf.sprintf "key %d found" k)
        1L (Rvalue.to_int64 v))
    keys;
  let missing =
    (Pinterp.call_entry pt "tm_get" [ Helpers.rvalue_int 9999; Rvalue.Ptr obuf ])
      .Pinterp.value
  in
  Alcotest.(check int64) "absent key" 0L (Rvalue.to_int64 missing)

let test_memcached_partitioned () =
  let pt =
    Helpers.pinterp ~mode:Mode.Hardened
      (P.memcached ~nbuckets:64 ~vsize:32 `Colored)
  in
  let heap = pt.Pinterp.exec.Exec.heap in
  let vbuf = Heap.alloc heap Heap.Unsafe 64 in
  let obuf = Heap.alloc heap Heap.Unsafe 64 in
  ignore (Pinterp.call_entry pt "mc_init" [ Helpers.rvalue_int 3 ]);
  List.iter
    (fun k ->
      ignore
        (Pinterp.call_entry pt "mc_set" [ Helpers.rvalue_int k; Rvalue.Ptr vbuf ]))
    [ 1; 2; 3; 4; 5 ];
  (* capacity 3: keys 1 and 2 evicted in LRU order *)
  let get k =
    Rvalue.to_int64
      (Pinterp.call_entry pt "mc_get" [ Helpers.rvalue_int k; Rvalue.Ptr obuf ])
        .Pinterp.value
  in
  Alcotest.(check int64) "evicted 1" 0L (get 1);
  Alcotest.(check int64) "evicted 2" 0L (get 2);
  Alcotest.(check int64) "kept 4" 1L (get 4);
  let count =
    Rvalue.to_int64 (Pinterp.call_entry pt "mc_count" []).Pinterp.value
  in
  Alcotest.(check int64) "count" 3L count;
  let evictions =
    Rvalue.to_int64
      (Pinterp.call_entry pt "mc_stat" [ Helpers.rvalue_int 3 ]).Pinterp.value
  in
  Alcotest.(check int64) "evictions" 2L evictions

let test_memcached_maintenance_thread () =
  (* shrink the capacity, then let the background thread evict the excess
     — the paper's multi-threaded memcached structure (§9.2) *)
  let pt =
    Helpers.pinterp ~mode:Mode.Hardened
      (P.memcached ~nbuckets:64 ~vsize:32 `Colored)
  in
  let heap = pt.Pinterp.exec.Exec.heap in
  let vbuf = Heap.alloc heap Heap.Unsafe 64 in
  ignore (Pinterp.call_entry pt "mc_init" [ Helpers.rvalue_int 100 ]);
  List.iter
    (fun k ->
      ignore
        (Pinterp.call_entry pt "mc_set" [ Helpers.rvalue_int k; Rvalue.Ptr vbuf ]))
    [ 1; 2; 3; 4; 5 ];
  ignore (Pinterp.call_entry pt "mc_set_capacity" [ Helpers.rvalue_int 2 ]);
  ignore (Pinterp.call_entry pt "mc_maintain" []);
  let count =
    Rvalue.to_int64 (Pinterp.call_entry pt "mc_count" []).Pinterp.value
  in
  Alcotest.(check int64) "crawler evicted down to capacity" 2L count

let test_spawned_thread () =
  (* a spawned thread writes into the blue enclave via its own workers *)
  let src =
    {|
ignore extern void classify_i64(int* d, int v);
ignore extern void declassify_i64(int* d, int v);
int color(blue) cell;
int rstatus;
void worker(int v) {
  int color(blue) k;
  classify_i64(&k, v);
  cell = k;
}
entry void start(int v) { spawn worker(v); }
entry int read_cell() {
  declassify_i64(&rstatus, cell);
  return rstatus;
}
|}
  in
  let pt = Helpers.pinterp ~mode:Mode.Hardened src in
  ignore (Pinterp.call_entry pt "start" [ Helpers.rvalue_int 77 ]);
  let v = (Pinterp.call_entry pt "read_cell" []).Pinterp.value in
  Alcotest.(check int64) "thread effect visible" 77L (Rvalue.to_int64 v)

let test_crossing_cost_scales_latency () =
  let mk crossing =
    let plan = Helpers.plan_of ~mode:Mode.Relaxed P.fig6 in
    Pinterp.create ~config:Sgx.Config.machine_test ~crossing plan
  in
  let cheap = mk (fun _ -> 100.0) in
  let expensive = mk (fun _ -> 10_000.0) in
  let l1 = (Pinterp.call_entry cheap "main" []).Pinterp.latency_cycles in
  let l2 = (Pinterp.call_entry expensive "main" []).Pinterp.latency_cycles in
  Alcotest.(check bool) "latency grows with crossing cost" true (l2 > l1 +. 9_000.0)

let test_concurrent_client_threads () =
  (* the paper's headline claim: partitioning stays correct with multiple
     threads. Two client threads (distinct worker sets, shared map)
     interleave sets and gets; the map must stay coherent and each
     thread's virtual clock advances independently. *)
  let pt =
    Helpers.pinterp ~mode:Mode.Hardened (P.hashmap ~nbuckets:64 ~vsize:32 `Colored)
  in
  let heap = pt.Pinterp.exec.Exec.heap in
  let vbuf = Heap.alloc heap Heap.Unsafe 64 in
  let obuf = Heap.alloc heap Heap.Unsafe 64 in
  for i = 0 to 9 do
    let thread = i mod 2 in
    ignore
      (Pinterp.call_entry pt ~thread "hm_put"
         [ Helpers.rvalue_int i; Rvalue.Ptr vbuf ])
  done;
  (* either thread sees every key *)
  for i = 0 to 9 do
    let thread = (i + 1) mod 2 in
    let v =
      (Pinterp.call_entry pt ~thread "hm_get"
         [ Helpers.rvalue_int i; Rvalue.Ptr obuf ])
        .Pinterp.value
    in
    Alcotest.(check int64) (Printf.sprintf "key %d visible cross-thread" i) 1L
      (Rvalue.to_int64 v)
  done;
  (* both threads have their own blue workers *)
  Alcotest.(check bool) "thread 0 blue worker" true
    (Hashtbl.mem pt.Pinterp.workers (0, "blue"));
  Alcotest.(check bool) "thread 1 blue worker" true
    (Hashtbl.mem pt.Pinterp.workers (1, "blue"))

let test_trace () =
  let pt = Helpers.pinterp ~mode:Mode.Relaxed P.fig6 in
  Pinterp.start_trace pt;
  ignore (Pinterp.call_entry pt "main" []);
  let evs = Pinterp.stop_trace pt in
  let has pred = List.exists pred evs in
  Alcotest.(check bool) "spawned main#blue" true
    (has (fun (te : Pinterp.traced_event) ->
         match te.Pinterp.ev with
         | Pinterp.Ev_spawn { chunk; _ } -> chunk = "main#blue"
         | _ -> false));
  Alcotest.(check bool) "retval cont to U" true
    (has (fun te ->
         match te.Pinterp.ev with
         | Pinterp.Ev_cont { target = Privagic_pir.Color.Unsafe; tag } ->
           tag = "retval"
         | _ -> false));
  Alcotest.(check bool) "g executed in red" true
    (has (fun te ->
         match te.Pinterp.ev with
         | Pinterp.Ev_chunk_end { chunk; _ } -> chunk = "g#red"
         | _ -> false));
  (* timestamps are monotone within each worker's chunk execution *)
  List.iter
    (fun (te : Pinterp.traced_event) ->
      Alcotest.(check bool) "non-negative time" true (te.Pinterp.ev_at >= 0.0))
    evs;
  (* tracing off by default: a fresh request records nothing *)
  ignore (Pinterp.call_entry pt "main" []);
  Alcotest.(check int) "no trace once stopped" 0
    (List.length (Pinterp.stop_trace pt))

let suite =
  [
    Alcotest.test_case "fig6 equivalence" `Quick test_fig6_equivalence;
    Alcotest.test_case "fig6 messages" `Quick test_fig6_messages;
    Alcotest.test_case "latency and persistence" `Quick
      test_latency_positive_and_persistent;
    Alcotest.test_case "state across requests" `Quick
      test_state_persists_across_requests;
    Alcotest.test_case "hashmap partitioned" `Quick test_hashmap_partitioned;
    Alcotest.test_case "linked list partitioned" `Quick test_llist_partitioned;
    Alcotest.test_case "rbtree partitioned" `Quick test_rbtree_partitioned;
    Alcotest.test_case "two colors partitioned" `Quick test_two_color_partitioned;
    Alcotest.test_case "rbtree ordering" `Quick test_rbtree_ordering_respected;
    Alcotest.test_case "memcached partitioned" `Quick test_memcached_partitioned;
    Alcotest.test_case "spawned thread" `Quick test_spawned_thread;
    Alcotest.test_case "memcached maintenance thread" `Quick
      test_memcached_maintenance_thread;
    Alcotest.test_case "crossing cost scales" `Quick
      test_crossing_cost_scales_latency;
    Alcotest.test_case "execution trace" `Quick test_trace;
    Alcotest.test_case "concurrent client threads" `Quick
      test_concurrent_client_threads;
  ]
