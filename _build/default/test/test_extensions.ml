(* The §8 future-work extensions: the valid-spawn-sequence guard and
   authenticated pointers — plus the Iago attack surface demonstration
   (hardened vs relaxed). *)

open Privagic_secure
open Privagic_pir
open Privagic_vm
module Plan = Privagic_partition.Plan

(* a two-partition program with a sensitive operation in the blue chunk *)
let victim_src =
  {|
ignore extern void classify_i64(int* d, int v);
ignore extern void declassify_i64(int* d, int v);
int color(blue) vault;
int rstatus;
// internal helper: only ever direct-called from the blue chunk, so it is
// never a legitimate spawn target
void audit(int color(blue) x) {
  vault = x + 1;
}
entry void set_vault(int v) {
  int color(blue) k;
  classify_i64(&k, v);
  vault = k;
  audit(k);
}
entry int read_vault() {
  declassify_i64(&rstatus, vault);
  return rstatus;
}
|}

let build ?(mode = Mode.Hardened) ?(auth = false) src =
  let m = Helpers.compile src in
  let infer = Infer.run ~mode ~auth_pointers:auth m in
  if not (Infer.ok infer) then
    Alcotest.failf "diagnostics: %s"
      (String.concat "; "
         (List.map Diagnostic.to_string infer.Infer.diagnostics));
  let plan = Plan.build ~mode ~auth_pointers:auth infer in
  Alcotest.(check bool) "plan ok" true (Plan.ok plan);
  plan

(* --- spawn guard --- *)

let test_valid_spawn_targets () =
  let plan = build victim_src in
  let blue_targets = Plan.valid_spawn_targets plan (Color.Named "blue") in
  (* the entry interfaces legitimately spawn the blue chunks *)
  Alcotest.(check bool) "set_vault's blue chunk spawnable" true
    (List.exists (fun n -> Helpers.contains n "set_vault") blue_targets);
  (* nothing is ever spawned into red *)
  Alcotest.(check (list string)) "no red targets" []
    (Plan.valid_spawn_targets plan (Color.Named "red"))

let test_guard_blocks_forged_spawn () =
  let plan = build victim_src in
  let pt = Pinterp.create ~config:Privagic_sgx.Config.machine_test plan in
  ignore (Pinterp.call_entry pt "set_vault" [ Helpers.rvalue_int 41 ]);
  (* the attacker tries to start the blue set_vault chunk directly with a
     chosen argument: that chunk IS a valid spawn target (the interface
     spawns it), so sequence-level replay is still possible... *)
  let legit_chunk = "set_vault@U#blue" in
  (match Pinterp.inject_spawn pt ~color:(Color.Named "blue") ~chunk:legit_chunk
           [ Helpers.rvalue_int 666 ] with
  | Ok () -> () (* replay of a legitimate target is accepted by design *)
  | Error e -> Alcotest.failf "legitimate target rejected: %s" e);
  (* ...but a chunk that is only ever direct-called is rejected *)
  (match Pinterp.inject_spawn pt ~color:(Color.Named "blue")
           ~chunk:"audit@blue#blue" [ Helpers.rvalue_int 1 ] with
  | Ok () -> Alcotest.fail "guard should reject a never-spawned chunk"
  | Error e ->
    Alcotest.(check bool) "guard message" true (Helpers.contains e "guard"))

let test_guard_off_executes_attack () =
  let plan = build victim_src in
  let pt = Pinterp.create ~config:Privagic_sgx.Config.machine_test plan in
  ignore (Pinterp.call_entry pt "set_vault" [ Helpers.rvalue_int 41 ]);
  Pinterp.set_spawn_guard pt false;
  (* without the guard, the forged spawn of the internal blue chunk runs
     with an attacker-chosen argument *)
  match Pinterp.inject_spawn pt ~color:(Color.Named "blue")
          ~chunk:"audit@blue#blue" [ Helpers.rvalue_int 665 ] with
  | Ok () -> ()
  | Error e -> Alcotest.failf "attack unexpectedly blocked: %s" e

(* --- authenticated pointers (§8: multi-color structures in hardened) --- *)

(* The struct mixes two colors; accesses go through indirections that the
   attacker (who controls unsafe memory) could redirect. *)
let multicolor_src =
  {|
within extern void* malloc(int n);
ignore extern void classify_i64(int* d, int v);
ignore extern void declassify_i64(int* d, int v);

struct rec_ {
  int color(blue) key;
  int color(red) val;
};

struct rec_* slot;
int rstatus;

entry void init() {
  slot = (struct rec_*) malloc(sizeof(struct rec_));
}

entry void set_key(int v) {
  int color(blue) k;
  classify_i64(&k, v);
  struct rec_* r = slot;
  r->key = k;
}

entry int get_key() {
  struct rec_* r = slot;
  declassify_i64(&rstatus, r->key);
  return rstatus;
}
|}

let test_hardened_rejects_without_auth () =
  let m = Helpers.compile multicolor_src in
  let infer = Infer.run ~mode:Mode.Hardened m in
  Alcotest.(check bool) "rejected without auth pointers" true
    (List.exists
       (fun d -> d.Diagnostic.kind = Diagnostic.Multicolor_struct)
       infer.Infer.diagnostics)

let test_hardened_accepts_with_auth () =
  let plan = build ~mode:Mode.Hardened ~auth:true multicolor_src in
  let pt = Pinterp.create ~config:Privagic_sgx.Config.machine_test plan in
  ignore (Pinterp.call_entry pt "init" []);
  ignore (Pinterp.call_entry pt "set_key" [ Helpers.rvalue_int 77 ]);
  let v = (Pinterp.call_entry pt "get_key" []).Pinterp.value in
  Alcotest.(check int64) "roundtrip through authenticated indirection" 77L
    (Rvalue.to_int64 v)

let test_auth_slot_layout () =
  let m = Helpers.compile multicolor_src in
  let plain = Layout.create m Mode.Relaxed in
  let authd = Layout.create ~auth_pointers:true m Mode.Relaxed in
  Alcotest.(check int) "plain: two 8B slots" 16
    (Layout.struct_layout plain "rec_").Layout.ls_size;
  Alcotest.(check int) "auth: two 16B slots (ptr + MAC)" 32
    (Layout.struct_layout authd "rec_").Layout.ls_size

(* the attack: corrupt the blue indirection pointer so that the enclave's
   next access is redirected — authenticated pointers must fault *)
let corrupt_indirection pt =
  let heap = pt.Pinterp.exec.Exec.heap in
  (* read the struct base from the unsafe global, then overwrite the
     first slot (the blue key's indirection) with an attacker address *)
  let slot_global = Hashtbl.find pt.Pinterp.exec.Exec.globals "slot" in
  let base = Int64.to_int (Heap.load heap slot_global 8) in
  let attacker_target = Heap.alloc heap Heap.Unsafe 16 in
  Heap.store heap base 8 (Int64.of_int attacker_target);
  attacker_target

let test_auth_detects_tampering () =
  let plan = build ~mode:Mode.Hardened ~auth:true multicolor_src in
  let pt = Pinterp.create ~config:Privagic_sgx.Config.machine_test plan in
  ignore (Pinterp.call_entry pt "init" []);
  ignore (Pinterp.call_entry pt "set_key" [ Helpers.rvalue_int 9 ]);
  ignore (corrupt_indirection pt);
  match Pinterp.call_entry pt "get_key" [] with
  | _ -> Alcotest.fail "tampered access should fault"
  | exception Pinterp.Error msg ->
    Alcotest.(check bool) "authentication failure reported" true
      (Helpers.contains msg "authentication")
  | exception Heap.Fault (_, msg) ->
    Alcotest.(check bool) "authentication failure reported" true
      (Helpers.contains msg "authentication")

let test_unauthenticated_tampering_redirects () =
  (* the same attack in relaxed mode without auth pointers silently follows
     the forged pointer: the enclave reads attacker-chosen memory *)
  let plan = build ~mode:Mode.Relaxed ~auth:false multicolor_src in
  let pt = Pinterp.create ~config:Privagic_sgx.Config.machine_test plan in
  ignore (Pinterp.call_entry pt "init" []);
  ignore (Pinterp.call_entry pt "set_key" [ Helpers.rvalue_int 9 ]);
  let target = corrupt_indirection pt in
  let heap = pt.Pinterp.exec.Exec.heap in
  Heap.store heap target 8 31337L;
  let v = (Pinterp.call_entry pt "get_key" []).Pinterp.value in
  Alcotest.(check int64) "enclave read attacker memory" 31337L
    (Rvalue.to_int64 v)

(* --- Iago surface demonstration --- *)

let iago_src =
  {|
extern int read_untrusted();
int color(blue) gate;
entry void f() { gate = read_untrusted(); }
|}

let test_iago_modes () =
  (* hardened forbids consuming untrusted values inside the enclave;
     relaxed accepts them (the paper's documented tradeoff) *)
  let m = Helpers.compile iago_src in
  Alcotest.(check bool) "hardened rejects" true
    (not (Infer.ok (Infer.run ~mode:Mode.Hardened m)));
  let m2 = Helpers.compile iago_src in
  Alcotest.(check bool) "relaxed accepts" true
    (Infer.ok (Infer.run ~mode:Mode.Relaxed m2))

let suite =
  [
    Alcotest.test_case "valid spawn targets" `Quick test_valid_spawn_targets;
    Alcotest.test_case "guard blocks forged spawn" `Quick
      test_guard_blocks_forged_spawn;
    Alcotest.test_case "guard off executes attack" `Quick
      test_guard_off_executes_attack;
    Alcotest.test_case "hardened rejects multicolor w/o auth" `Quick
      test_hardened_rejects_without_auth;
    Alcotest.test_case "hardened accepts with auth" `Quick
      test_hardened_accepts_with_auth;
    Alcotest.test_case "auth slot layout" `Quick test_auth_slot_layout;
    Alcotest.test_case "auth detects tampering" `Quick test_auth_detects_tampering;
    Alcotest.test_case "unauthenticated tampering redirects" `Quick
      test_unauthenticated_tampering_redirects;
    Alcotest.test_case "iago mode split" `Quick test_iago_modes;
  ]
