test/test_pinterp.ml: Alcotest Exec Hashtbl Heap Helpers Int64 List Mode Pinterp Printf Privagic_pir Privagic_secure Privagic_sgx Privagic_vm Privagic_workloads Rvalue
