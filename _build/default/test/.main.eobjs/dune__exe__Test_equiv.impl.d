test/test_equiv.ml: Diagnostic Exec Hashtbl Heap Infer Interp List Mode Pinterp Printf Privagic_minic Privagic_partition Privagic_secure Privagic_sgx Privagic_vm QCheck QCheck_alcotest String
