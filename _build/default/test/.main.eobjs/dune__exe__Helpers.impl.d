test/helpers.ml: Alcotest Diagnostic Infer Int64 List Mode Pmodule Privagic_minic Privagic_partition Privagic_pir Privagic_secure Privagic_sgx Privagic_vm String
