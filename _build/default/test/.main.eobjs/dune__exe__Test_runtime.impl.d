test/test_runtime.ml: Alcotest Array Atomic Domain Float Fun List Option Privagic_runtime QCheck QCheck_alcotest Queue
