test/test_exec.ml: Alcotest Array Builder Exec Func Heap Helpers Instr Int64 Layout Pmodule Printf Privagic_pir Privagic_secure Privagic_sgx Privagic_vm QCheck QCheck_alcotest Rvalue Ty Value
