test/test_sgx.ml: Alcotest Array Heap Helpers Int64 Layout List Privagic_pir Privagic_secure Privagic_sgx Privagic_vm QCheck QCheck_alcotest
