test/test_infer2.ml: Alcotest Color Diagnostic Func Helpers Infer Instr List Mode Option Privagic_pir Privagic_secure Privagic_vm String
