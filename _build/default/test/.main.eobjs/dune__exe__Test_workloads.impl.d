test/test_workloads.ml: Alcotest Array Hashtbl Privagic_workloads QCheck QCheck_alcotest String
