test/test_partition.ml: Alcotest Block Color Diagnostic Func Hashtbl Helpers Infer Instr List Mode Plan Privagic_partition Privagic_pir Privagic_secure Privagic_workloads Tcb Value
