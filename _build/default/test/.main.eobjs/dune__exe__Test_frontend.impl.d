test/test_frontend.ml: Alcotest Annot Ast Color Helpers Lexer List Parser Privagic_minic Privagic_pir Sema String Token Ty
