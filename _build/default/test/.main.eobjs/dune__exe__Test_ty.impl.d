test/test_ty.ml: Alcotest Cenv Color Privagic_pir Privagic_secure Ty
