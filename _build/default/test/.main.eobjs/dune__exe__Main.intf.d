test/main.mli:
