test/test_exec2.ml: Alcotest Exec Externals Heap Helpers Int64 Interp Layout Privagic_pir Privagic_secure Privagic_sgx Privagic_vm Rvalue
