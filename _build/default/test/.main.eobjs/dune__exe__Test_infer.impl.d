test/test_infer.ml: Alcotest Color Diagnostic Helpers Infer List Mode Privagic_pir Privagic_secure Privagic_workloads String
