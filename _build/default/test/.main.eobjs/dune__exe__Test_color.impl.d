test/test_color.ml: Alcotest Color Privagic_pir QCheck QCheck_alcotest
