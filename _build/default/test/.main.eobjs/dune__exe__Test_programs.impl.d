test/test_programs.ml: Alcotest Diagnostic Exec Heap Helpers Int64 Interp List Mode Pinterp Printf Privagic_minic Privagic_secure Privagic_vm Privagic_workloads Rvalue String
