(* Execution, second batch: externals, policies, zones, fuel, edge cases. *)

open Privagic_vm
module Sgx = Privagic_sgx

let run = Helpers.run_plain

let check_int name src entry args expected =
  let v, _ = run src entry args in
  Alcotest.(check int64) name (Int64.of_int expected) (Rvalue.to_int64 v)

let test_calloc () =
  check_int "calloc zeroes"
    {|
within extern void* calloc(int n, int sz);
entry int f() {
  int* p = (int*) calloc(4, 8);
  return p[0] + p[3];
}
|}
    "f" [] 0

let test_memcmp () =
  check_int "memcmp"
    {|
within extern char* memset(char* d, int c, int n);
within extern int memcmp(char* a, char* b, int n);
char a[8];
char b[8];
entry int f() {
  memset(a, 5, 8);
  memset(b, 5, 8);
  int same = memcmp(a, b, 8);
  b[7] = 6;
  int diff = memcmp(a, b, 8);
  if (same == 0 && diff < 0) return 1;
  return 0;
}
|}
    "f" [] 1

let test_strncpy_pads () =
  check_int "strncpy NUL-pads"
    {|
within extern char* strncpy(char* d, char* s, int n);
char buf[8];
entry int f() {
  buf[7] = 99;
  strncpy(buf, "ab", 8);
  return buf[0] + buf[2] + buf[7];
}
|}
    "f" [] 97 (* 'a' + 0 + 0 *)

let test_classify_i64_roundtrip () =
  check_int "classify_i64"
    {|
ignore extern void classify_i64(int* d, int v);
int cell;
entry int f(int v) {
  classify_i64(&cell, v);
  return cell;
}
|}
    "f" [ Helpers.rvalue_int 99 ] 99

let test_unknown_external_traps () =
  let it = Helpers.interp "extern void mystery(); entry void f() { mystery(); }" in
  match Interp.call it "f" [] with
  | exception Exec.Trap msg ->
    Alcotest.(check bool) "names the function" true
      (Helpers.contains msg "mystery")
  | _ -> Alcotest.fail "expected a trap"

let test_fuel_limit () =
  let m = Helpers.compile "entry void f() { while (1) { } }" in
  let machine = Sgx.Machine.create Sgx.Config.machine_test in
  let heap = Heap.create () in
  let layout = Layout.create m Privagic_secure.Mode.Relaxed in
  let hooks : Exec.hooks =
    {
      Exec.h_call = (fun _ _ _ _ -> Rvalue.zero);
      h_callind = (fun _ _ _ _ -> Rvalue.zero);
      h_spawn = (fun _ _ _ _ -> ());
      h_pre_instr = (fun _ _ -> ());
      h_alloca_zone = (fun _ _ -> Heap.Unsafe);
    }
  in
  let ex = Exec.create ~fuel:10_000 m heap layout machine hooks in
  Exec.init_globals ex (fun _ -> Heap.Unsafe);
  match
    Exec.exec_func ex (Privagic_pir.Pmodule.find_func_exn m "f") [||]
  with
  | exception Exec.Trap msg ->
    Alcotest.(check bool) "fuel trap" true (Helpers.contains msg "fuel")
  | _ -> Alcotest.fail "expected a fuel trap"

let test_scone_policy_zones () =
  (* under the Scone policy everything lives in the enclave: enclave data
     occupies the EPC; under the unprotected policy nothing does *)
  let src =
    {|
within extern char* memset(char* d, int c, int n);
char big[20000];
entry void f() { memset(big, 1, 20000); }
|}
  in
  let scone = Helpers.interp ~policy:Interp.scone src in
  ignore (Interp.call scone "f" []);
  let cs = Sgx.Machine.counters (Interp.machine scone) in
  Alcotest.(check bool) "scone: enclave misses happen" true
    (cs.Sgx.Machine.enclave_llc_misses > 0);
  let unprot = Helpers.interp ~policy:Interp.unprotected src in
  ignore (Interp.call unprot "f" []);
  let cu = Sgx.Machine.counters (Interp.machine unprot) in
  Alcotest.(check int) "unprotected: none" 0 cu.Sgx.Machine.enclave_llc_misses

let test_intel_sdk_policy_charges_ecall () =
  let src = "entry int f() { return 1; }" in
  let it = Helpers.interp ~policy:Interp.intel_sdk src in
  ignore (Interp.call it "f" []);
  let c = Sgx.Machine.counters (Interp.machine it) in
  Alcotest.(check int) "one switchless call" 1 c.Sgx.Machine.switchless_calls

let test_syscall_weights () =
  Alcotest.(check int) "net_recv" 3 (Externals.syscall_weight "net_recv");
  Alcotest.(check int) "net_send" 2 (Externals.syscall_weight "net_send");
  Alcotest.(check int) "lock" 1 (Externals.syscall_weight "lock");
  Alcotest.(check int) "malloc is not a syscall" 0
    (Externals.syscall_weight "malloc");
  Alcotest.(check bool) "print is" true (Externals.is_syscall "print_int")

let test_negative_division_semantics () =
  (* C truncates toward zero; so does Int64.div *)
  check_int "-7/2" "entry int f() { return -7 / 2; }" "f" [] (-3);
  check_int "-7%2" "entry int f() { return -7 % 2; }" "f" [] (-1)

let test_char_wraparound () =
  check_int "char truncation"
    "entry int f() { char c = 300; return c; }" "f" [] 44

let test_globals_initialized () =
  check_int "initializers"
    {|
int a = 42;
int b = -7;
double d = 2.5;
entry int f() { return a + b + (int) (d * 2.0); }
|}
    "f" [] 40

let test_spawn_sequential_in_plain () =
  (* the plain interpreter runs spawned threads synchronously *)
  let v, _ =
    run
      {|
int cell;
void w(int x) { cell = x; }
entry int f() { spawn w(9); return cell; }
|}
      "f" []
  in
  Alcotest.(check int64) "spawn ran before return" 9L (Rvalue.to_int64 v)

let test_output_buffering () =
  let _, out =
    run
      {|
extern void print_int(int x);
entry void f() { for (int i = 0; i < 3; i++) print_int(i); }
|}
      "f" []
  in
  Alcotest.(check string) "lines" "0\n1\n2\n" out

let suite =
  [
    Alcotest.test_case "calloc" `Quick test_calloc;
    Alcotest.test_case "memcmp" `Quick test_memcmp;
    Alcotest.test_case "strncpy pads" `Quick test_strncpy_pads;
    Alcotest.test_case "classify_i64" `Quick test_classify_i64_roundtrip;
    Alcotest.test_case "unknown external" `Quick test_unknown_external_traps;
    Alcotest.test_case "fuel limit" `Quick test_fuel_limit;
    Alcotest.test_case "scone policy zones" `Quick test_scone_policy_zones;
    Alcotest.test_case "intel-sdk entry cost" `Quick
      test_intel_sdk_policy_charges_ecall;
    Alcotest.test_case "syscall weights" `Quick test_syscall_weights;
    Alcotest.test_case "negative division" `Quick test_negative_division_semantics;
    Alcotest.test_case "char wraparound" `Quick test_char_wraparound;
    Alcotest.test_case "global initializers" `Quick test_globals_initialized;
    Alcotest.test_case "plain spawn is sequential" `Quick
      test_spawn_sequential_in_plain;
    Alcotest.test_case "output buffering" `Quick test_output_buffering;
  ]
