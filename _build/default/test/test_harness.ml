(* Benchmark harness smoke tests: tiny runs of every experiment must
   produce sane, correctly-shaped results. *)

module Kv = Privagic_harness.Kv
module System = Privagic_baselines.System
open Privagic_secure

let tiny family kind =
  Kv.run ~config:Privagic_sgx.Config.machine_test ~nbuckets:64 ~vsize:64 family
    kind ~record_count:200 ~operations:100 ()

let test_kv_run_sane () =
  let r = tiny Kv.Hashmap System.Unprotected in
  Alcotest.(check bool) "throughput > 0" true (r.Kv.throughput_kops > 0.0);
  Alcotest.(check bool) "latency > 0" true (r.Kv.mean_latency_us > 0.0);
  Alcotest.(check (float 0.01)) "reads find their keys" 1.0 r.Kv.p_found

let test_kv_all_systems_agree_on_found () =
  List.iter
    (fun kind ->
      let r = tiny Kv.Hashmap kind in
      Alcotest.(check (float 0.01))
        ("found rate for " ^ r.Kv.system)
        1.0 r.Kv.p_found)
    [ System.Unprotected; System.Scone; System.Privagic Mode.Hardened;
      System.Intel_sdk Mode.Hardened ]

let test_privagic_uses_queue_msgs () =
  let r = tiny Kv.Hashmap (System.Privagic Mode.Hardened) in
  Alcotest.(check bool) "queue msgs used" true (r.Kv.queue_msgs > 0);
  Alcotest.(check int) "no switchless" 0 r.Kv.ecalls_switchless;
  let r2 = tiny Kv.Hashmap (System.Intel_sdk Mode.Hardened) in
  Alcotest.(check bool) "sdk uses switchless" true (r2.Kv.ecalls_switchless > 0);
  Alcotest.(check int) "sdk has no queue msgs" 0 r2.Kv.queue_msgs

let test_protected_slower_than_unprotected () =
  let u = tiny Kv.Hashmap System.Unprotected in
  let p = tiny Kv.Hashmap (System.Privagic Mode.Hardened) in
  Alcotest.(check bool) "privagic slower than unprotected" true
    (p.Kv.mean_latency_us > u.Kv.mean_latency_us);
  (* the Scone gap comes from in-enclave syscalls, which only memcached
     performs (network + locks per request, §9.2.3) *)
  let pm = tiny Kv.Memcached (System.Privagic Mode.Hardened) in
  let sm = tiny Kv.Memcached System.Scone in
  Alcotest.(check bool) "privagic memcached beats scone" true
    (pm.Kv.mean_latency_us < sm.Kv.mean_latency_us)

let test_two_color_runs () =
  let r =
    Kv.run ~config:Privagic_sgx.Config.machine_test ~nbuckets:64 ~vsize:64
      Kv.Hashmap2 (System.Privagic Mode.Relaxed) ~record_count:100
      ~operations:50 ()
  in
  Alcotest.(check (float 0.01)) "two-color found rate" 1.0 r.Kv.p_found

let test_rejected_configs () =
  (* the Privagic system refuses programs its checker rejects *)
  match
    System.create System.(Privagic Mode.Hardened)
      (Privagic_workloads.Programs.hashmap_two_color ~nbuckets:64 ~vsize:64
         `Colored)
  with
  | exception System.Rejected _ -> ()
  | _ -> Alcotest.fail "expected rejection of two colors in hardened mode"

let test_table4_rows () =
  let rows = Privagic_harness.Table4.default_rows () in
  Alcotest.(check int) "five programs" 5 (List.length rows);
  List.iter
    (fun (r : Privagic_harness.Table4.row) ->
      Alcotest.(check bool)
        (r.Privagic_harness.Table4.program ^ " modified lines sane")
        true
        (r.Privagic_harness.Table4.modified_lines > 0
        && r.Privagic_harness.Table4.modified_lines < 60);
      Alcotest.(check bool)
        (r.Privagic_harness.Table4.program ^ " tcb reduction")
        true
        (r.Privagic_harness.Table4.reduction > 50.0))
    rows

let test_reports_render () =
  let t = Privagic_harness.Report.create ~title:"t" ~header:[ "a"; "bb" ] in
  Privagic_harness.Report.add_row t [ "1"; "2" ];
  Privagic_harness.Report.add_row t [ "333"; "4" ];
  let s = Format.asprintf "%a" Privagic_harness.Report.pp t in
  Alcotest.(check bool) "title" true (Helpers.contains s "== t ==");
  Alcotest.(check bool) "rows" true (Helpers.contains s "333")

let suite =
  [
    Alcotest.test_case "kv run sane" `Quick test_kv_run_sane;
    Alcotest.test_case "found rate across systems" `Slow
      test_kv_all_systems_agree_on_found;
    Alcotest.test_case "crossing mechanisms" `Quick test_privagic_uses_queue_msgs;
    Alcotest.test_case "ordering of systems" `Quick
      test_protected_slower_than_unprotected;
    Alcotest.test_case "two-color run" `Quick test_two_color_runs;
    Alcotest.test_case "rejected configs" `Quick test_rejected_configs;
    Alcotest.test_case "table4 rows" `Quick test_table4_rows;
    Alcotest.test_case "report rendering" `Quick test_reports_render;
  ]
