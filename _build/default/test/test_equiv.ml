(* Property: partitioning preserves semantics. Random structured programs
   — generated to be well-typed by construction (blue-conditioned regions
   write only blue state, unsafe regions only unsafe state, F-conditioned
   loops may mix) — must leave the plain interpreter and the partitioned
   VM with identical global state. *)

open Privagic_secure
open Privagic_vm

(* statement generator; [ctx] is the region color we are inside *)
type ctx = Top | Blue | Unsafe_r

let gen_stmt =
  QCheck.Gen.(
    let blue_write =
      map2
        (fun g k -> Printf.sprintf "b%d = b%d + %d;" g ((g + 1) mod 2) k)
        (int_bound 1) (int_range 1 9)
    in
    let u_write =
      map2
        (fun g k -> Printf.sprintf "u%d = u%d * %d + %d;" g g k (k + 1))
        (int_bound 1) (int_range 1 3)
    in
    let rec stmt ctx depth =
      if depth <= 0 then
        match ctx with
        | Blue -> blue_write
        | Unsafe_r -> u_write
        | Top -> oneof [ blue_write; u_write ]
      else
        let sub ctx' = stmt ctx' (depth - 1) in
        let choices =
          match ctx with
          | Blue ->
            [
              (3, blue_write);
              ( 1,
                map2
                  (fun k body ->
                    Printf.sprintf "if (b0 < %d) { %s }" k body)
                  (int_range 1 50) (sub Blue) );
            ]
          | Unsafe_r ->
            [
              (3, u_write);
              ( 1,
                map2
                  (fun k body -> Printf.sprintf "if (u0 < %d) { %s }" k body)
                  (int_range 1 50) (sub Unsafe_r) );
            ]
          | Top ->
            [
              (2, blue_write);
              (2, u_write);
              ( 1,
                map2
                  (fun k body ->
                    Printf.sprintf "if (b0 < %d) { %s }" k body)
                  (int_range 1 50) (sub Blue) );
              ( 1,
                map2
                  (fun k body ->
                    Printf.sprintf "if (u1 < %d) { %s }" k body)
                  (int_range 1 50) (sub Unsafe_r) );
              ( 1,
                map2
                  (fun n body ->
                    Printf.sprintf
                      "{ int i = 0; while (i < %d) { %s i = i + 1; } }" n body)
                  (int_range 1 4) (sub Top) );
            ]
        in
        frequency choices
    in
    map
      (fun body ->
        Printf.sprintf
          {|
int color(blue) b0;
int color(blue) b1;
int u0;
int u1;
entry void f() {
%s
}
|}
          body)
      (stmt Top 5))

let read_globals (globals : (string, int) Hashtbl.t) heap =
  List.map
    (fun g -> (g, Heap.load heap (Hashtbl.find globals g) 8))
    [ "b0"; "b1"; "u0"; "u1" ]

let run_plain src =
  let it =
    Interp.create ~config:Privagic_sgx.Config.machine_test
      (Privagic_minic.Driver.compile src)
      Interp.unprotected
  in
  ignore (Interp.call it "f" []);
  read_globals it.Interp.exec.Exec.globals it.Interp.exec.Exec.heap

let run_partitioned src =
  let m = Privagic_minic.Driver.compile src in
  let infer = Infer.run ~mode:Mode.Hardened m in
  if not (Infer.ok infer) then
    QCheck.Test.fail_reportf "generated program rejected: %s"
      (String.concat "; "
         (List.map Diagnostic.to_string infer.Infer.diagnostics));
  let plan = Privagic_partition.Plan.build ~mode:Mode.Hardened infer in
  let pt = Pinterp.create ~config:Privagic_sgx.Config.machine_test plan in
  ignore (Pinterp.call_entry pt "f" []);
  read_globals pt.Pinterp.exec.Exec.globals pt.Pinterp.exec.Exec.heap

let prop_partitioning_preserves_semantics =
  QCheck.Test.make ~count:60
    ~name:"partitioning preserves semantics (random programs)"
    (QCheck.make ~print:(fun s -> s) gen_stmt)
    (fun src -> run_plain src = run_partitioned src)

let suite = [ QCheck_alcotest.to_alcotest prop_partitioning_preserves_semantics ]
