open Privagic_pir

let blue = Color.Named "blue"
let red = Color.Named "red"

let test_compatible () =
  Alcotest.(check bool) "F ~ F" true (Color.compatible Color.Free Color.Free);
  Alcotest.(check bool) "F ~ blue" true (Color.compatible Color.Free blue);
  Alcotest.(check bool) "blue ~ F" true (Color.compatible blue Color.Free);
  Alcotest.(check bool) "blue ~ blue" true (Color.compatible blue blue);
  Alcotest.(check bool) "blue !~ red" false (Color.compatible blue red);
  Alcotest.(check bool) "U !~ blue" false (Color.compatible Color.Unsafe blue);
  Alcotest.(check bool) "U !~ S" false
    (Color.compatible Color.Unsafe Color.Shared);
  Alcotest.(check bool) "S ~ F" true (Color.compatible Color.Shared Color.Free)

let test_equal () =
  Alcotest.(check bool) "blue = blue" true (Color.equal blue (Color.Named "blue"));
  Alcotest.(check bool) "blue <> red" false (Color.equal blue red);
  Alcotest.(check bool) "U <> S" false (Color.equal Color.Unsafe Color.Shared)

let test_is_enclave () =
  Alcotest.(check bool) "blue is enclave" true (Color.is_enclave blue);
  Alcotest.(check bool) "U is not" false (Color.is_enclave Color.Unsafe);
  Alcotest.(check bool) "S is not" false (Color.is_enclave Color.Shared);
  Alcotest.(check bool) "F is not" false (Color.is_enclave Color.Free)

let test_to_string () =
  Alcotest.(check string) "F" "F" (Color.to_string Color.Free);
  Alcotest.(check string) "U" "U" (Color.to_string Color.Unsafe);
  Alcotest.(check string) "S" "S" (Color.to_string Color.Shared);
  Alcotest.(check string) "named" "blue" (Color.to_string blue)

let test_set_map () =
  let s = Color.Set.of_list [ blue; red; blue; Color.Unsafe ] in
  Alcotest.(check int) "set dedups" 3 (Color.Set.cardinal s);
  Alcotest.(check bool) "mem blue" true (Color.Set.mem blue s);
  let m = Color.Map.(add blue 1 (add red 2 empty)) in
  Alcotest.(check int) "map find" 1 (Color.Map.find blue m)

(* property tests *)

let gen_color =
  QCheck.Gen.(
    oneof
      [
        return Color.Free;
        return Color.Unsafe;
        return Color.Shared;
        map (fun s -> Color.Named s) (oneofl [ "blue"; "red"; "green" ]);
      ])

let arb_color = QCheck.make ~print:Color.to_string gen_color

let prop_compat_reflexive =
  QCheck.Test.make ~name:"compatible is reflexive" arb_color (fun c ->
      Color.compatible c c)

let prop_compat_symmetric =
  QCheck.Test.make ~name:"compatible is symmetric"
    (QCheck.pair arb_color arb_color) (fun (a, b) ->
      Color.compatible a b = Color.compatible b a)

let prop_compare_total =
  QCheck.Test.make ~name:"compare is a total order"
    (QCheck.triple arb_color arb_color arb_color) (fun (a, b, c) ->
      let ( <= ) x y = Color.compare x y <= 0 in
      (* antisymmetry + transitivity spot checks *)
      (Color.compare a b = 0) = Color.equal a b
      && (not (a <= b && b <= c)) || a <= c)

let prop_free_compatible_with_all =
  QCheck.Test.make ~name:"F is compatible with everything" arb_color (fun c ->
      Color.compatible Color.Free c && Color.compatible c Color.Free)

let suite =
  [
    Alcotest.test_case "compatible" `Quick test_compatible;
    Alcotest.test_case "equal" `Quick test_equal;
    Alcotest.test_case "is_enclave" `Quick test_is_enclave;
    Alcotest.test_case "to_string" `Quick test_to_string;
    Alcotest.test_case "set and map" `Quick test_set_map;
    QCheck_alcotest.to_alcotest prop_compat_reflexive;
    QCheck_alcotest.to_alcotest prop_compat_symmetric;
    QCheck_alcotest.to_alcotest prop_compare_total;
    QCheck_alcotest.to_alcotest prop_free_compatible_with_all;
  ]
