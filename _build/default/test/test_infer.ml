(* Secure type system tests: each of the paper's rules (§4, §6, Table 3)
   has accepting and rejecting programs. *)

open Privagic_secure
open Privagic_pir
module P = Privagic_workloads.Programs

let kinds = Helpers.diagnostic_kinds
let ok = Helpers.checks_ok

let has kind l = List.mem kind l

(* --- confidentiality: direct leaks (rules 1-3) --- *)

let test_direct_leak_store () =
  (* a blue value stored into unsafe memory *)
  let src = "int color(blue) s; int u; entry void f() { u = s; }" in
  Alcotest.(check bool) "hardened rejects" true
    (has Diagnostic.Confidentiality (kinds ~mode:Mode.Hardened src));
  Alcotest.(check bool) "relaxed rejects too" true
    (has Diagnostic.Confidentiality (kinds ~mode:Mode.Relaxed src))

let test_store_within_color_ok () =
  let src = "int color(blue) a; int color(blue) b; entry void f() { a = b; }" in
  Alcotest.(check bool) "blue to blue ok" true (ok ~mode:Mode.Hardened src)

let test_cross_enclave_store () =
  let src = "int color(blue) a; int color(red) b; entry void f() { a = b; }" in
  Alcotest.(check bool) "red into blue rejected" true
    (not (ok ~mode:Mode.Relaxed src))

let test_indirect_leak_via_arith () =
  (* rule 2: computing with a secret taints the result *)
  let src =
    "int color(blue) s; int u; entry void f() { int x = s + 1; u = x; }"
  in
  Alcotest.(check bool) "rejected" true
    (has Diagnostic.Confidentiality (kinds ~mode:Mode.Hardened src))

let test_constant_into_colored_ok () =
  (* storing an embedded constant into an enclave is fine (F ~ C) *)
  let src = "int color(blue) s; entry void f() { s = 42; }" in
  Alcotest.(check bool) "ok" true (ok ~mode:Mode.Hardened src)

(* --- Iago protection (hardened only) --- *)

let test_iago_hardened_vs_relaxed () =
  (* an unannotated global holds attacker-controllable data; consuming it
     to compute a blue value must fail in hardened mode only *)
  let src = "int u; int color(blue) s; entry void f() { s = u; }" in
  Alcotest.(check bool) "hardened rejects" true
    (not (ok ~mode:Mode.Hardened src));
  Alcotest.(check bool) "relaxed accepts (S loads become F)" true
    (ok ~mode:Mode.Relaxed src)

let test_external_result_is_untrusted () =
  let src =
    "extern int read_input(); int color(blue) s; entry void f() { s = read_input(); }"
  in
  Alcotest.(check bool) "hardened rejects" true
    (not (ok ~mode:Mode.Hardened src));
  Alcotest.(check bool) "relaxed accepts" true (ok ~mode:Mode.Relaxed src)

let test_colored_arg_to_external () =
  let src =
    "extern void send(int x); int color(blue) s; entry void f() { send(s); }"
  in
  Alcotest.(check bool) "leak to external rejected" true
    (has Diagnostic.Confidentiality (kinds ~mode:Mode.Hardened src))

(* --- rule 4: implicit leaks through conditionals (Fig. 4) --- *)

let test_fig4 () =
  List.iter
    (fun mode ->
      Alcotest.(check bool)
        ("fig4 rejected in " ^ Mode.to_string mode)
        true
        (has Diagnostic.Implicit_leak (kinds ~mode P.fig4)))
    [ Mode.Hardened; Mode.Relaxed ]

let test_fig4_join_ok () =
  (* writing after the join point is fine *)
  let src =
    "int y; int color(blue) b; entry void f() { if (b == 42) { b = 1; } y = 2; }"
  in
  Alcotest.(check bool) "join write accepted" true (ok ~mode:Mode.Relaxed src)

let test_blue_region_blue_work_ok () =
  let src =
    "int color(blue) b; int color(blue) x; entry void f() { if (b == 42) x = 1; }"
  in
  Alcotest.(check bool) "blue store in blue region ok" true
    (ok ~mode:Mode.Hardened src)

let test_nested_region_conflict () =
  let src =
    {|
int color(blue) b;
int color(red) r;
int color(blue) x;
entry void f() {
  if (b == 1) {
    if (r == 2) {
      x = 3;
    }
  }
}
|}
  in
  Alcotest.(check bool) "blue+red region conflict" true
    (has Diagnostic.Implicit_leak (kinds ~mode:Mode.Relaxed src))

(* --- rule 4 of §4: pointer colors (Fig. 3b) --- *)

let test_fig3b () =
  let ds = Helpers.diagnostics ~mode:Mode.Relaxed P.fig3_secure in
  Alcotest.(check bool) "x = &b rejected" true
    (List.exists (fun d -> d.Diagnostic.kind = Diagnostic.Pointer_cast) ds);
  (* the error is at the x = &b line, in g *)
  Alcotest.(check bool) "error inside g" true
    (List.exists (fun d -> Helpers.contains d.Diagnostic.func "g") ds)

let test_fig3b_correct_assign_ok () =
  let src =
    {|
int color(blue) a;
int color(blue)* x;
void f(int color(blue) s) { x = &a; *x = s; }
entry int main() { f(0); return 0; }
|}
  in
  Alcotest.(check bool) "x = &a accepted" true (ok ~mode:Mode.Relaxed src)

let test_pointer_cast_between_colors () =
  let src =
    {|
int color(blue) a;
entry void f() {
  int color(red)* p = (int color(red)*) &a;
}
|}
  in
  Alcotest.(check bool) "blue* to red* rejected" true
    (has Diagnostic.Pointer_cast (kinds ~mode:Mode.Relaxed src))

let test_attacker_forged_pointer () =
  (* an integer from untrusted input turned into an enclave pointer: the
     load through it must be rejected in hardened mode *)
  let src =
    {|
extern int read_input();
int color(blue) s;
entry int f() {
  int color(blue)* p = (int color(blue)*) read_input();
  return *p;
}
|}
  in
  Alcotest.(check bool) "forged pointer rejected" true
    (not (ok ~mode:Mode.Hardened src))

(* --- within / ignore (§6.3, §6.4) --- *)

let test_within_executes_in_enclave () =
  let src =
    {|
within extern char* memcpy(char* d, char* s, int n);
char color(blue) buf[64];
char color(blue) src_[64];
entry void f() { memcpy(buf, src_, 64); }
|}
  in
  Alcotest.(check bool) "within blue->blue ok" true (ok ~mode:Mode.Hardened src)

let test_within_rejects_mixed () =
  let src =
    {|
within extern char* memcpy(char* d, char* s, int n);
char color(blue) buf[64];
char color(red) other[64];
entry void f() { memcpy(buf, other, 64); }
|}
  in
  Alcotest.(check bool) "within blue+red rejected" true
    (not (ok ~mode:Mode.Relaxed src))

let test_within_rejects_unsafe_pointer () =
  let src =
    {|
within extern char* memcpy(char* d, char* s, int n);
char color(blue) buf[64];
char plain[64];
entry void f() { memcpy(buf, plain, 64); }
|}
  in
  Alcotest.(check bool) "within blue+U rejected in hardened" true
    (not (ok ~mode:Mode.Hardened src))

let test_ignore_declassifies () =
  let src =
    {|
ignore extern void declassify(char* d, char* s, int n);
char color(blue) buf[64];
char plain[64];
entry void f() { declassify(plain, buf, 64); }
|}
  in
  Alcotest.(check bool) "ignore accepts mixed colors" true
    (ok ~mode:Mode.Hardened src)

(* --- function specialization (§6.2) --- *)

let test_specialization () =
  let src =
    {|
int color(blue) b;
int color(red) r;
int id(int x) { return x; }
entry void f() {
  b = id(b);
  r = id(r);
}
|}
  in
  let m = Helpers.compile src in
  let res = Infer.run ~mode:Mode.Relaxed m in
  Alcotest.(check bool) "no errors" true (Infer.ok res);
  let blue = Infer.find_instance res "id" [ Color.Named "blue" ] in
  let red = Infer.find_instance res "id" [ Color.Named "red" ] in
  Alcotest.(check bool) "blue instance exists" true (blue <> None);
  Alcotest.(check bool) "red instance exists" true (red <> None);
  (match blue with
  | Some i ->
    Alcotest.(check string) "blue ret" "blue" (Color.to_string i.Infer.ret_color)
  | None -> ());
  match red with
  | Some i ->
    Alcotest.(check string) "red ret" "red" (Color.to_string i.Infer.ret_color)
  | None -> ()

let test_fig6_colorsets () =
  let m = Helpers.compile P.fig6 in
  let res = Infer.run ~mode:Mode.Relaxed m in
  Alcotest.(check bool) "fig6 checks" true (Infer.ok res);
  let colorset name args =
    match Infer.find_instance res name args with
    | Some i ->
      Infer.colorset i |> Color.Set.elements |> List.map Color.to_string
      |> String.concat ","
    | None -> "<missing>"
  in
  Alcotest.(check string) "main colorset" "U,blue"
    (colorset "main" []);
  Alcotest.(check string) "f@blue colorset" "blue"
    (colorset "f" [ Color.Named "blue" ]);
  Alcotest.(check string) "g colorset" "U,blue,red"
    (colorset "g" [ Color.Free ])

let test_declared_param_color () =
  (* passing an incompatible value to a declared colored parameter fails *)
  let src =
    {|
int color(red) r;
void f(int color(blue) x) { }
entry void g() { f(r); }
|}
  in
  Alcotest.(check bool) "red into blue param rejected" true
    (not (ok ~mode:Mode.Relaxed src))

let test_recursion_stabilizes () =
  let src =
    {|
int color(blue) b;
int fact(int n) { if (n <= 1) return 1; return n * fact(n - 1); }
entry void f() { b = fact(b); }
|}
  in
  Alcotest.(check bool) "recursive specialization" true
    (ok ~mode:Mode.Hardened src)

(* --- multi-color structures (§7.2, §8) --- *)

let test_multicolor_struct_modes () =
  Alcotest.(check bool) "fig1 rejected in hardened" true
    (has Diagnostic.Multicolor_struct (kinds ~mode:Mode.Hardened P.fig1));
  Alcotest.(check bool) "fig1 accepted in relaxed" true
    (ok ~mode:Mode.Relaxed P.fig1)

(* --- return colors --- *)

let test_return_color_conflict () =
  let src =
    {|
int color(blue) b;
int color(red) r;
int pick(int c) { if (c == 1) return b; return r; }
entry void f() { int x = pick(0); }
|}
  in
  Alcotest.(check bool) "mixed returns rejected" true
    (not (ok ~mode:Mode.Relaxed src))

(* --- spawn --- *)

let test_spawn_colored_arg_rejected () =
  let src =
    {|
int color(blue) b;
void worker(int x) { }
entry void f() { spawn worker(b); }
|}
  in
  Alcotest.(check bool) "blue through spawn rejected" true
    (not (ok ~mode:Mode.Hardened src))

let test_spawn_plain_ok () =
  let src = "void worker(int x) { } entry void f() { spawn worker(1); }" in
  Alcotest.(check bool) "plain spawn ok" true (ok ~mode:Mode.Hardened src)

(* --- nested specialization --- *)

let test_indirect_call_colored_arg () =
  let src =
    {|
int color(blue) b;
int h(int x) { return x; }
int apply(int v) {
  int r = h(v);
  return r;
}
entry void f() { b = apply(b); }
|}
  in
  Alcotest.(check bool) "nested specialization ok" true
    (ok ~mode:Mode.Relaxed src)

let suite =
  [
    Alcotest.test_case "direct leak via store" `Quick test_direct_leak_store;
    Alcotest.test_case "store within color" `Quick test_store_within_color_ok;
    Alcotest.test_case "cross-enclave store" `Quick test_cross_enclave_store;
    Alcotest.test_case "indirect leak via arith" `Quick test_indirect_leak_via_arith;
    Alcotest.test_case "constant into colored" `Quick test_constant_into_colored_ok;
    Alcotest.test_case "iago hardened vs relaxed" `Quick test_iago_hardened_vs_relaxed;
    Alcotest.test_case "external result untrusted" `Quick test_external_result_is_untrusted;
    Alcotest.test_case "colored arg to external" `Quick test_colored_arg_to_external;
    Alcotest.test_case "fig4 implicit leak" `Quick test_fig4;
    Alcotest.test_case "fig4 join ok" `Quick test_fig4_join_ok;
    Alcotest.test_case "blue region blue work" `Quick test_blue_region_blue_work_ok;
    Alcotest.test_case "nested region conflict" `Quick test_nested_region_conflict;
    Alcotest.test_case "fig3b rejection" `Quick test_fig3b;
    Alcotest.test_case "fig3b correct assign" `Quick test_fig3b_correct_assign_ok;
    Alcotest.test_case "pointer cast colors" `Quick test_pointer_cast_between_colors;
    Alcotest.test_case "forged pointer" `Quick test_attacker_forged_pointer;
    Alcotest.test_case "within in enclave" `Quick test_within_executes_in_enclave;
    Alcotest.test_case "within mixed colors" `Quick test_within_rejects_mixed;
    Alcotest.test_case "within unsafe pointer" `Quick test_within_rejects_unsafe_pointer;
    Alcotest.test_case "ignore declassifies" `Quick test_ignore_declassifies;
    Alcotest.test_case "specialization" `Quick test_specialization;
    Alcotest.test_case "fig6 colorsets" `Quick test_fig6_colorsets;
    Alcotest.test_case "declared param color" `Quick test_declared_param_color;
    Alcotest.test_case "recursion stabilizes" `Quick test_recursion_stabilizes;
    Alcotest.test_case "multicolor struct modes" `Quick test_multicolor_struct_modes;
    Alcotest.test_case "return color conflict" `Quick test_return_color_conflict;
    Alcotest.test_case "spawn colored arg" `Quick test_spawn_colored_arg_rejected;
    Alcotest.test_case "spawn plain" `Quick test_spawn_plain_ok;
    Alcotest.test_case "nested specialization" `Quick test_indirect_call_colored_arg;
  ]
