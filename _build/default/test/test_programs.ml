(* The evaluation programs: both variants compile; the colored variants
   pass the checker in their intended modes; plain and partitioned
   executions agree on a scripted workload; engineering-effort counts are
   in a sane range. *)

open Privagic_secure
open Privagic_vm
module P = Privagic_workloads.Programs

let programs =
  [
    ("hashmap", P.hashmap ~nbuckets:64 ~vsize:32, Mode.Hardened, "hm_put", "hm_get");
    ("linked-list", (fun v -> P.linked_list ~vsize:32 v), Mode.Hardened, "ll_put", "ll_get");
    ("rbtree", (fun v -> P.rbtree ~vsize:32 v), Mode.Hardened, "tm_put", "tm_get");
    ("hashmap2", P.hashmap_two_color ~nbuckets:64 ~vsize:32, Mode.Relaxed, "h2_put", "h2_get");
    ("memcached", P.memcached ~nbuckets:64 ~vsize:32, Mode.Hardened, "mc_set", "mc_get");
  ]

let test_variants_compile () =
  List.iter
    (fun (name, src, _, _, _) ->
      List.iter
        (fun v ->
          match Helpers.compile (src v) with
          | _ -> ()
          | exception Privagic_minic.Driver.Error e ->
            Alcotest.failf "%s: %s" name
              (Privagic_minic.Driver.error_to_string e))
        [ `Colored; `Plain ])
    programs

let test_colored_variants_check () =
  List.iter
    (fun (name, src, mode, _, _) ->
      let ds = Helpers.diagnostics ~mode (src `Colored) in
      if ds <> [] then
        Alcotest.failf "%s: %s" name
          (String.concat "; " (List.map Diagnostic.to_string ds)))
    programs

let test_two_color_needs_relaxed () =
  (* the multi-color node is rejected in hardened mode (§8) *)
  let ds =
    Helpers.diagnostic_kinds ~mode:Mode.Hardened
      (P.hashmap_two_color ~nbuckets:64 ~vsize:32 `Colored)
  in
  Alcotest.(check bool) "hardened rejects two colors" true
    (List.mem Diagnostic.Multicolor_struct ds)

(* Scripted workload: the same sequence of ops on the plain interpreter
   (reference) and the partitioned one must return the same results and
   leave the same observable bytes. *)
let equivalence_script name src mode put get =
  let keys = [ 5; 13; 5; 99; 42; 13 ] in
  let run_with call heap =
    let vbuf = Heap.alloc heap Heap.Unsafe 64 in
    let obuf = Heap.alloc heap Heap.Unsafe 64 in
    let results = ref [] in
    List.iteri
      (fun i k ->
        Heap.store heap vbuf 1 (Int64.of_int (65 + i));
        ignore (call put [ Helpers.rvalue_int k; Rvalue.Ptr vbuf ]))
      keys;
    List.iter
      (fun k ->
        let v = call get [ Helpers.rvalue_int k; Rvalue.Ptr obuf ] in
        let byte = Heap.load heap obuf 1 in
        results := (Rvalue.to_int64 v, byte) :: !results)
      [ 5; 13; 42; 99; 7; 0 ];
    List.rev !results
  in
  let it = Helpers.interp (src `Plain) in
  let plain =
    run_with (fun e a -> Privagic_vm.Interp.call it e a) it.Interp.exec.Exec.heap
  in
  let pt = Helpers.pinterp ~mode (src `Colored) in
  let part =
    run_with
      (fun e a -> (Pinterp.call_entry pt e a).Pinterp.value)
      pt.Pinterp.exec.Exec.heap
  in
  if plain <> part then
    Alcotest.failf "%s: plain %s <> partitioned %s" name
      (String.concat ","
         (List.map (fun (a, b) -> Printf.sprintf "(%Ld,%Ld)" a b) plain))
      (String.concat ","
         (List.map (fun (a, b) -> Printf.sprintf "(%Ld,%Ld)" a b) part))

let test_equivalence () =
  List.iter
    (fun (name, src, mode, put, get) ->
      if name <> "memcached" then equivalence_script name src mode put get)
    programs

let test_memcached_equivalence () =
  (* memcached needs init first *)
  let src = P.memcached ~nbuckets:64 ~vsize:32 in
  let it = Helpers.interp (src `Plain) in
  ignore (Interp.call it "mc_init" [ Helpers.rvalue_int 100 ]);
  let pt = Helpers.pinterp ~mode:Mode.Hardened (src `Colored) in
  ignore (Pinterp.call_entry pt "mc_init" [ Helpers.rvalue_int 100 ]);
  let script call heap =
    let vbuf = Heap.alloc heap Heap.Unsafe 64 in
    let obuf = Heap.alloc heap Heap.Unsafe 64 in
    let r = ref [] in
    List.iter
      (fun k -> ignore (call "mc_set" [ Helpers.rvalue_int k; Rvalue.Ptr vbuf ]))
      [ 1; 2; 3; 2; 1 ];
    List.iter
      (fun k ->
        r :=
          Rvalue.to_int64 (call "mc_get" [ Helpers.rvalue_int k; Rvalue.Ptr obuf ])
          :: !r)
      [ 1; 2; 3; 4 ];
    r := Rvalue.to_int64 (call "mc_count" []) :: !r;
    r := Rvalue.to_int64 (call "mc_delete" [ Helpers.rvalue_int 2 ]) :: !r;
    r := Rvalue.to_int64 (call "mc_count" []) :: !r;
    List.rev !r
  in
  let plain = script (fun e a -> Interp.call it e a) it.Interp.exec.Exec.heap in
  let part =
    script
      (fun e a -> (Pinterp.call_entry pt e a).Pinterp.value)
      pt.Pinterp.exec.Exec.heap
  in
  Alcotest.(check (list int64)) "memcached equivalent" plain part

let test_modified_lines_budget () =
  (* the paper reports single-digit counts; our mini-C needs per-field
     annotations and explicit helper calls, so we accept a small multiple
     of that — but each program must stay small and the plain variant must
     differ only on the annotation lines *)
  List.iter
    (fun (name, src, expected_max) ->
      let n = P.modified_lines (src `Colored) (src `Plain) in
      if n = 0 || n > expected_max then
        Alcotest.failf "%s: %d modified lines (expected 1..%d)" name n
          expected_max)
    [
      ("hashmap", P.hashmap ~nbuckets:64 ~vsize:32, 20);
      ("linked-list", (fun v -> P.linked_list ~vsize:32 v), 20);
      ("rbtree", (fun v -> P.rbtree ~vsize:32 v), 25);
      ("hashmap2", P.hashmap_two_color ~nbuckets:64 ~vsize:32, 20);
      ("memcached", P.memcached ~nbuckets:64 ~vsize:32, 50);
    ]

let test_figures_compile () =
  List.iter
    (fun (name, src) ->
      match Helpers.compile src with
      | _ -> ()
      | exception Privagic_minic.Driver.Error e ->
        Alcotest.failf "%s: %s" name (Privagic_minic.Driver.error_to_string e))
    [ ("fig1", P.fig1); ("fig3a", P.fig3_dataflow); ("fig3b", P.fig3_secure);
      ("fig4", P.fig4); ("fig6", P.fig6) ]

let suite =
  [
    Alcotest.test_case "variants compile" `Quick test_variants_compile;
    Alcotest.test_case "colored variants check" `Quick test_colored_variants_check;
    Alcotest.test_case "two colors need relaxed" `Quick test_two_color_needs_relaxed;
    Alcotest.test_case "plain vs partitioned equivalence" `Quick test_equivalence;
    Alcotest.test_case "memcached equivalence" `Quick test_memcached_equivalence;
    Alcotest.test_case "modified lines budget" `Quick test_modified_lines_budget;
    Alcotest.test_case "figures compile" `Quick test_figures_compile;
  ]
