(* Shared helpers for the test suites. *)

open Privagic_pir
open Privagic_secure

let compile ?(file = "<test>") src = Privagic_minic.Driver.compile ~file src

(* Compile, run the secure analysis, and return the diagnostics. *)
let diagnostics ?(mode = Mode.Hardened) src =
  let m = compile src in
  (Infer.run ~mode m).Infer.diagnostics

let diagnostic_kinds ?mode src =
  List.map (fun d -> d.Diagnostic.kind) (diagnostics ?mode src)
  |> List.sort_uniq compare

let checks_ok ?mode src = diagnostics ?mode src = []

(* Compile + check + partition; fails the test on any diagnostic. *)
let plan_of ?(mode = Mode.Hardened) src =
  let m = compile src in
  let infer = Infer.run ~mode m in
  if not (Infer.ok infer) then
    Alcotest.failf "unexpected diagnostics: %s"
      (String.concat "; "
         (List.map Diagnostic.to_string infer.Infer.diagnostics));
  let plan = Privagic_partition.Plan.build ~mode infer in
  if plan.Privagic_partition.Plan.diagnostics <> [] then
    Alcotest.failf "unexpected plan diagnostics: %s"
      (String.concat "; "
         (List.map Diagnostic.to_string
            plan.Privagic_partition.Plan.diagnostics));
  plan

(* Plain interpreter over an unpartitioned module. *)
let interp ?(policy = Privagic_vm.Interp.unprotected) src =
  Privagic_vm.Interp.create ~config:Privagic_sgx.Config.machine_test
    (compile src) policy

let pinterp ?(mode = Mode.Hardened) src =
  Privagic_vm.Pinterp.create ~config:Privagic_sgx.Config.machine_test
    (plan_of ~mode src)

(* Run [entry] in the plain interpreter and return (value, output). *)
let run_plain ?policy src entry args =
  let it = interp ?policy src in
  let v = Privagic_vm.Interp.call it entry args in
  (v, Privagic_vm.Interp.output it)

let run_partitioned ?mode src entry args =
  let pt = pinterp ?mode src in
  let r = Privagic_vm.Pinterp.call_entry pt entry args in
  (r.Privagic_vm.Pinterp.value, Privagic_vm.Pinterp.output pt)

let int64_testable = Alcotest.int64

let rvalue_int v = Privagic_vm.Rvalue.Int (Int64.of_int v)

let to_int (v : Privagic_vm.Rvalue.t) = Privagic_vm.Rvalue.to_int v

(* Find a function in a module. *)
let func m name = Pmodule.find_func_exn m name

(* Substring test for diagnostics. *)
let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0
