(* Lexer, parser and sema tests. *)

open Privagic_minic
open Privagic_pir

let toks src = List.map fst (Lexer.tokenize src)

let test_lexer_basics () =
  Alcotest.(check int) "token count" 6
    (List.length (toks "int x = 42;"));
  (match toks "0x10 3.5 'a' \"hi\\n\"" with
  | [ Token.INT_LIT 16L; Token.FLOAT_LIT f; Token.CHAR_LIT 'a';
      Token.STRING_LIT "hi\n"; Token.EOF ] ->
    Alcotest.(check (float 0.001)) "float" 3.5 f
  | _ -> Alcotest.fail "unexpected tokens");
  match toks "a->b == c && d || !e" with
  | [ Token.IDENT "a"; Token.ARROW; Token.IDENT "b"; Token.EQ;
      Token.IDENT "c"; Token.ANDAND; Token.IDENT "d"; Token.OROR; Token.NOT;
      Token.IDENT "e"; Token.EOF ] ->
    ()
  | _ -> Alcotest.fail "operator tokens"

let test_lexer_comments () =
  Alcotest.(check int) "line comment" 2
    (List.length (toks "// hello\nx"));
  Alcotest.(check int) "block comment" 2
    (List.length (toks "/* a\nb*c */ x"))

let test_lexer_keywords () =
  (match toks "color within ignore entry spawn NULL" with
  | [ Token.KW_COLOR; Token.KW_WITHIN; Token.KW_IGNORE; Token.KW_ENTRY;
      Token.KW_SPAWN; Token.KW_NULL; Token.EOF ] ->
    ()
  | _ -> Alcotest.fail "keywords");
  (* identifiers that merely contain keywords stay identifiers *)
  match toks "colored interned" with
  | [ Token.IDENT "colored"; Token.IDENT "interned"; Token.EOF ] -> ()
  | _ -> Alcotest.fail "keyword prefixes"

let test_lexer_errors () =
  Alcotest.(check bool) "bad char" true
    (match Lexer.tokenize "int @ x;" with
    | exception Lexer.Error _ -> true
    | _ -> false);
  Alcotest.(check bool) "unterminated string" true
    (match Lexer.tokenize "\"abc" with
    | exception Lexer.Error _ -> true
    | _ -> false);
  Alcotest.(check bool) "unterminated comment" true
    (match Lexer.tokenize "/* abc" with
    | exception Lexer.Error _ -> true
    | _ -> false)

let parse src = Parser.parse_program src

let test_parser_globals () =
  match parse "int x = 3;\ndouble color(red) y;\nchar buf[16];" with
  | [ Ast.Global (tx, "x", Some _, _); Ast.Global (ty, "y", None, _);
      Ast.Global (tb, "buf", None, _) ] ->
    Alcotest.(check bool) "x int" true (Ty.equal tx Ty.i64);
    Alcotest.(check bool) "y colored" true
      (Ty.color_of ty = Some (Color.Named "red"));
    Alcotest.(check bool) "buf arr" true
      (match tb.Ty.desc with Ty.Arr (_, 16) -> true | _ -> false)
  | _ -> Alcotest.fail "globals"

let test_parser_struct () =
  match parse "struct s { int a; char b[4]; struct s* next; };" with
  | [ Ast.Struct_def ("s", fields, _) ] ->
    Alcotest.(check int) "3 fields" 3 (List.length fields)
  | _ -> Alcotest.fail "struct"

let test_parser_pointer_colors () =
  (* color after a star qualifies the pointer itself *)
  match parse "struct s { int x; };\nstruct s color(blue)* color(blue) p;" with
  | [ _; Ast.Global (tp, "p", None, _) ] ->
    Alcotest.(check bool) "pointer colored" true
      (Ty.color_of tp = Some (Color.Named "blue"));
    Alcotest.(check bool) "pointee colored" true
      (Ty.color_of (Ty.deref tp) = Some (Color.Named "blue"))
  | _ -> Alcotest.fail "pointer colors"

let test_parser_precedence () =
  (* 1 + 2 * 3 parses as 1 + (2 * 3) *)
  match parse "int f() { return 1 + 2 * 3; }" with
  | [ Ast.Func_def { Ast.fbody = [ { Ast.sdesc = Ast.Return (Some e); _ } ]; _ } ]
    -> (
    match e.Ast.edesc with
    | Ast.Binop (Ast.Add, _, { Ast.edesc = Ast.Binop (Ast.Mul, _, _); _ }) ->
      ()
    | _ -> Alcotest.fail "precedence shape")
  | _ -> Alcotest.fail "precedence"

let test_parser_annots () =
  match parse "within extern void* malloc(int n);\nentry int main() { return 0; }" with
  | [ Ast.Extern_decl ("malloc", _, _, [ Annot.Within ], _);
      Ast.Func_def { Ast.fannots = [ Annot.Entry ]; _ } ] ->
    ()
  | _ -> Alcotest.fail "annotations"

let test_parser_statements () =
  let src =
    {|
int f(int n) {
  int acc = 0;
  for (int i = 0; i < n; i++) {
    if (i % 2 == 0) continue;
    acc += i;
    if (acc > 100) break;
  }
  while (acc > 10) acc -= 10;
  return acc;
}
|}
  in
  match parse src with
  | [ Ast.Func_def f ] ->
    Alcotest.(check int) "4 stmts" 4 (List.length f.Ast.fbody)
  | _ -> Alcotest.fail "statements"

let test_parser_errors () =
  let fails src =
    match parse src with exception Parser.Error _ -> true | _ -> false
  in
  Alcotest.(check bool) "missing semi" true (fails "int f() { return 1 }");
  Alcotest.(check bool) "bad type" true (fails "foo x;");
  Alcotest.(check bool) "unbalanced" true (fails "int f() { if (1) { }")

let sema_error src =
  match Sema.check_program (parse src) with
  | exception Sema.Error (_, msg) -> Some msg
  | _ -> None

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let check_sema_error name src fragment =
  match sema_error src with
  | Some msg ->
    Alcotest.(check bool)
      (name ^ ": " ^ msg)
      true (contains msg fragment)
  | None -> Alcotest.failf "%s: expected a sema error" name

let test_sema_errors () =
  check_sema_error "unknown var" "int f() { return y; }" "unknown identifier";
  check_sema_error "unknown func" "int f() { return g(); }" "unknown function";
  check_sema_error "arity" "int g(int x) { return x; } int f() { return g(); }"
    "expects 1 arguments";
  check_sema_error "bad assign" "int f() { 3 = 4; return 0; }" "lvalue";
  check_sema_error "redecl" "int f() { int x; int x; return 0; }"
    "redeclaration";
  check_sema_error "bad field"
    "struct s { int a; }; int f(struct s* p) { return p->b; }" "no field";
  check_sema_error "deref int" "int f(int x) { return *x; }"
    "dereference of a non-pointer";
  check_sema_error "void var" "int f() { void x; return 0; }" "type void";
  (* break placement is validated during lowering *)
  (match Privagic_minic.Driver.compile "int f() { break; return 0; }" with
  | exception Privagic_minic.Driver.Error e ->
    Alcotest.(check bool) "break outside loop" true
      (Helpers.contains e.Privagic_minic.Driver.msg "outside a loop")
  | _ -> Alcotest.fail "break: expected a lowering error");
  check_sema_error "return value from void" "void f() { return 3; }"
    "void function";
  check_sema_error "struct copy"
    "struct s { int a; }; struct s g1; struct s g2; int f() { g1 = g2; return 0; }"
    "cannot copy whole structs"

let test_sema_conversions () =
  (* these must all typecheck *)
  let ok src = Alcotest.(check bool) src true (sema_error src = None) in
  ok "int f(double d) { int x = d; return x; }";
  ok "int f(char c) { return c + 1; }";
  ok "within extern void* malloc(int n); int* f() { return (int*) malloc(8); }";
  ok "int f(int* p) { if (p == NULL) return 0; return 1; }";
  ok "char f(char* s) { return s[3]; }";
  ok "int arr[4]; int f(int* p) { return p[0]; } int g() { return f(arr); }"

let suite =
  [
    Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
    Alcotest.test_case "lexer comments" `Quick test_lexer_comments;
    Alcotest.test_case "lexer keywords" `Quick test_lexer_keywords;
    Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
    Alcotest.test_case "parser globals" `Quick test_parser_globals;
    Alcotest.test_case "parser struct" `Quick test_parser_struct;
    Alcotest.test_case "parser pointer colors" `Quick test_parser_pointer_colors;
    Alcotest.test_case "parser precedence" `Quick test_parser_precedence;
    Alcotest.test_case "parser annotations" `Quick test_parser_annots;
    Alcotest.test_case "parser statements" `Quick test_parser_statements;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "sema errors" `Quick test_sema_errors;
    Alcotest.test_case "sema conversions" `Quick test_sema_conversions;
  ]
