(* Secure type system, second batch: inference details, U-value tracking,
   gep taint, entry handling, library mode, regression cases. *)

open Privagic_secure
open Privagic_pir

let kinds = Helpers.diagnostic_kinds
let ok = Helpers.checks_ok

let test_local_inference () =
  (* an uncolored local whose address never escapes is promoted and its
     color inferred — the paper's §5.1 condition *)
  let src =
    {|
int color(blue) a;
int color(blue) b;
entry void f() {
  int tmp = a;
  b = tmp;
}
|}
  in
  Alcotest.(check bool) "inferred blue local ok" true (ok ~mode:Mode.Hardened src)

let test_escaping_local_is_memory () =
  (* once the address escapes, the local is unannotated memory (U in
     hardened): a blue store into it is rejected *)
  let src =
    {|
extern void g(int* p);
int color(blue) a;
entry void f() {
  int tmp;
  g(&tmp);
  tmp = a;
}
|}
  in
  Alcotest.(check bool) "escaping local rejected" true
    (not (ok ~mode:Mode.Hardened src))

let test_load_from_u_stays_u () =
  (* hardened: an unannotated global's value cannot be mixed with blue *)
  let src =
    {|
int u;
int color(blue) b;
entry void f() { int x = u + b; }
|}
  in
  Alcotest.(check bool) "U + blue rejected" true (not (ok ~mode:Mode.Hardened src))

let test_gep_index_taint () =
  (* indexing public memory with a secret index is an indirect leak *)
  let src =
    {|
int color(blue) secret;
int table[64];
entry int f() { return table[secret & 63]; }
|}
  in
  Alcotest.(check bool) "secret index into U table rejected" true
    (not (ok ~mode:Mode.Hardened src));
  (* indexing blue memory with a blue index is fine *)
  let src2 =
    {|
int color(blue) secret;
int color(blue) table[64];
int color(blue) out;
entry void f() { out = table[secret & 63]; }
|}
  in
  Alcotest.(check bool) "blue index into blue table ok" true
    (ok ~mode:Mode.Hardened src2)

let test_colored_array_global () =
  let src =
    {|
char color(blue) buf[128];
entry void f() { buf[3] = 'x'; }
|}
  in
  Alcotest.(check bool) "store constant into blue array" true
    (ok ~mode:Mode.Hardened src)

let test_region_without_else () =
  let src =
    {|
int color(blue) b;
int u;
entry void f() {
  if (b > 0) {
    u = 1;
  }
}
|}
  in
  Alcotest.(check bool) "then-only region still colored" true
    (List.mem Diagnostic.Implicit_leak (kinds ~mode:Mode.Hardened src))

let test_loop_on_secret () =
  (* iterating a secret number of times and writing U inside: rejected *)
  let src =
    {|
int color(blue) n;
int u;
entry void f() {
  int i = 0;
  while (i < n) {
    u = u + 1;
    i = i + 1;
  }
}
|}
  in
  Alcotest.(check bool) "secret loop bound leaks" true
    (List.mem Diagnostic.Implicit_leak (kinds ~mode:Mode.Hardened src))

let test_phi_edge_color_regression () =
  (* regression: after mem2reg a flag set inside a colored region becomes
     a phi at the join; it must be colored (see DESIGN.md §8.1) *)
  let src =
    {|
ignore extern void declassify_i64(int* d, int v);
int color(blue) b;
int rstatus;
entry int f() {
  int fnd = 0;
  if (b == 7) { fnd = 1; }
  declassify_i64(&rstatus, fnd);
  return rstatus;
}
|}
  in
  let m = Helpers.compile src in
  let res = Infer.run ~mode:Mode.Hardened m in
  Alcotest.(check bool) "accepted (declassified)" true (Infer.ok res);
  (* the declassify call must be colored blue, not replicated *)
  let inst =
    Option.get
      (Infer.find_instance res "f" [])
  in
  let found = ref false in
  Func.iter_instrs inst.Infer.func (fun _ i ->
      match i.Instr.op with
      | Instr.Call ("declassify_i64", _) ->
        found := true;
        Alcotest.(check string) "declassify executes in blue" "blue"
          (Color.to_string (Infer.instruction_color inst i))
      | _ -> ());
  Alcotest.(check bool) "found the call" true !found

let test_entry_param_declared_color () =
  (* a declared colored parameter on an entry point keeps its color *)
  let src =
    {|
int color(blue) sink;
entry void f(int color(blue) x) { sink = x; }
|}
  in
  Alcotest.(check bool) "colored entry param" true (ok ~mode:Mode.Hardened src)

let test_library_mode_roots () =
  (* without any 'entry', every defined function is analyzed (§6.2) *)
  let src = "int color(blue) b; void helper() { b = 1; }" in
  let m = Helpers.compile src in
  let res = Infer.run ~mode:Mode.Hardened m in
  Alcotest.(check bool) "helper analyzed" true
    (Infer.find_instance res "helper" [] <> None)

let test_string_literals_are_free () =
  (* string constants are replicated per partition: usable in enclaves *)
  let src =
    {|
within extern char* strncpy(char* d, char* s, int n);
char color(blue) name[16];
entry void f() { strncpy(name, "alice", 16); }
|}
  in
  Alcotest.(check bool) "string into blue ok" true (ok ~mode:Mode.Hardened src)

let test_within_all_free_args () =
  (* a within call with only F arguments binds to no enclave *)
  let src =
    {|
within extern void* malloc(int n);
entry int f() {
  int* p = (int*) malloc(8);
  *p = 3;
  return *p;
}
|}
  in
  Alcotest.(check bool) "free within ok" true (ok ~mode:Mode.Hardened src)

let test_two_instances_two_colorsets () =
  let src =
    {|
int color(blue) b;
int color(red) r;
void set(int color(blue) x) { b = x; }
void set2(int color(red) x) { r = x; }
entry void f() { set(b); set2(r); }
|}
  in
  let m = Helpers.compile src in
  let res = Infer.run ~mode:Mode.Relaxed m in
  Alcotest.(check bool) "ok" true (Infer.ok res);
  let cs name args =
    match Infer.find_instance res name args with
    | Some i ->
      String.concat ","
        (List.map Color.to_string (Color.Set.elements (Infer.colorset i)))
    | None -> "<none>"
  in
  Alcotest.(check string) "set is blue" "blue" (cs "set" [ Color.Named "blue" ]);
  Alcotest.(check string) "set2 is red" "red" (cs "set2" [ Color.Named "red" ])

let test_ret_mem_flows_to_caller () =
  (* a function returning a blue pointer: dereferencing the result in the
     caller is a blue access *)
  let src =
    {|
int color(blue) cell;
int color(blue)* addr() { return &cell; }
entry void f(int color(blue) v) {
  int color(blue)* p = addr();
  *p = v;
}
|}
  in
  Alcotest.(check bool) "returned blue pointer usable" true
    (ok ~mode:Mode.Hardened src)

let test_ret_mem_mismatch () =
  (* note: functions unreachable from the entry points are not analyzed
     (the stabilizing passes start from the roots, §6.2), so the bad
     function must actually be called *)
  let src =
    {|
int color(blue) cell;
int* addr() { return &cell; }
entry void f() { int* p = addr(); }
|}
  in
  Alcotest.(check bool) "blue pointer under uncolored return type rejected"
    true
    (not (ok ~mode:Mode.Relaxed src))

let test_s_store_only_function_keeps_store () =
  (* regression for the footnote-6 fix: a relaxed-mode function whose only
     placed instruction is an S store must still execute it *)
  let src = "int g; entry int f() { g = 7; return g; }" in
  let v, _ = Helpers.run_partitioned ~mode:Mode.Relaxed src "f" [] in
  Alcotest.(check int64) "store executed" 7L (Privagic_vm.Rvalue.to_int64 v)

let suite =
  [
    Alcotest.test_case "local inference" `Quick test_local_inference;
    Alcotest.test_case "escaping local" `Quick test_escaping_local_is_memory;
    Alcotest.test_case "U stays U" `Quick test_load_from_u_stays_u;
    Alcotest.test_case "gep index taint" `Quick test_gep_index_taint;
    Alcotest.test_case "colored array global" `Quick test_colored_array_global;
    Alcotest.test_case "then-only region" `Quick test_region_without_else;
    Alcotest.test_case "secret loop bound" `Quick test_loop_on_secret;
    Alcotest.test_case "phi edge color (regression)" `Quick
      test_phi_edge_color_regression;
    Alcotest.test_case "entry param color" `Quick test_entry_param_declared_color;
    Alcotest.test_case "library mode roots" `Quick test_library_mode_roots;
    Alcotest.test_case "string literals free" `Quick test_string_literals_are_free;
    Alcotest.test_case "within all-F" `Quick test_within_all_free_args;
    Alcotest.test_case "independent colorsets" `Quick test_two_instances_two_colorsets;
    Alcotest.test_case "returned blue pointer" `Quick test_ret_mem_flows_to_caller;
    Alcotest.test_case "return type mismatch" `Quick test_ret_mem_mismatch;
    Alcotest.test_case "S-store-only function (regression)" `Quick
      test_s_store_only_function_keeps_store;
  ]
