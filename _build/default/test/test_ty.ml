open Privagic_pir

let blue = Color.Named "blue"

let no_structs = fun name -> Alcotest.failf "unexpected struct %s" name

let test_scalar_sizes () =
  let s ty = Ty.sizeof ~structs:no_structs ty in
  Alcotest.(check int) "i8" 1 (s Ty.i8);
  Alcotest.(check int) "i1" 1 (s Ty.i1);
  Alcotest.(check int) "i64" 8 (s Ty.i64);
  Alcotest.(check int) "f64" 8 (s Ty.f64);
  Alcotest.(check int) "ptr" 8 (s (Ty.ptr Ty.i8));
  Alcotest.(check int) "void" 0 (s Ty.void);
  Alcotest.(check int) "arr" 24 (s (Ty.arr Ty.i64 3));
  Alcotest.(check int) "arr of arr" 12 (s (Ty.arr (Ty.arr Ty.i8 4) 3))

let test_struct_size () =
  let fields = function
    | "pair" -> [ Ty.i64; Ty.arr Ty.i8 4 ]
    | n -> Alcotest.failf "unexpected struct %s" n
  in
  Alcotest.(check int) "struct" 12
    (Ty.sizeof ~structs:fields (Ty.struct_ "pair"))

let test_equality () =
  Alcotest.(check bool) "i64 = i64" true (Ty.equal Ty.i64 Ty.i64);
  Alcotest.(check bool) "i64 <> i8" false (Ty.equal Ty.i64 Ty.i8);
  Alcotest.(check bool) "colored <> plain" false
    (Ty.equal (Ty.colored blue Ty.i64) Ty.i64);
  Alcotest.(check bool) "ignore_color" true
    (Ty.equal ~ignore_color:true (Ty.colored blue Ty.i64) Ty.i64);
  Alcotest.(check bool) "nested color" false
    (Ty.equal (Ty.ptr (Ty.colored blue Ty.i64)) (Ty.ptr Ty.i64));
  Alcotest.(check bool) "nested ignore" true
    (Ty.equal ~ignore_color:true
       (Ty.ptr (Ty.colored blue Ty.i64))
       (Ty.ptr Ty.i64))

let test_predicates () =
  Alcotest.(check bool) "ptr" true (Ty.is_pointer (Ty.ptr Ty.i8));
  Alcotest.(check bool) "not ptr" false (Ty.is_pointer Ty.i64);
  Alcotest.(check bool) "int" true (Ty.is_integer Ty.i8);
  Alcotest.(check bool) "float" true (Ty.is_float Ty.f64);
  Alcotest.(check bool) "float not int" false (Ty.is_integer Ty.f64)

let test_deref () =
  Alcotest.(check bool) "deref ptr" true
    (Ty.equal (Ty.deref (Ty.ptr Ty.i64)) Ty.i64);
  Alcotest.check_raises "deref non-ptr"
    (Invalid_argument "Ty.deref: not a pointer") (fun () ->
      ignore (Ty.deref Ty.i64))

let test_color_of () =
  Alcotest.(check bool) "colored" true
    (Ty.color_of (Ty.colored blue Ty.i64) = Some blue);
  Alcotest.(check bool) "plain" true (Ty.color_of Ty.i64 = None)

let test_pp () =
  Alcotest.(check string) "i64*" "i64*" (Ty.to_string (Ty.ptr Ty.i64));
  Alcotest.(check string) "colored" "color(blue) i64"
    (Ty.to_string (Ty.colored blue Ty.i64));
  Alcotest.(check string) "arr" "[4 x i8]" (Ty.to_string (Ty.arr Ty.i8 4))

let test_root_color () =
  let open Privagic_secure in
  Alcotest.(check bool) "direct" true
    (Cenv.root_color (Ty.colored blue Ty.i64) = Some blue);
  Alcotest.(check bool) "through array" true
    (Cenv.root_color (Ty.arr (Ty.colored blue Ty.i8) 16) = Some blue);
  Alcotest.(check bool) "pointer does not leak pointee" true
    (Cenv.root_color (Ty.ptr (Ty.colored blue Ty.i64)) = None);
  Alcotest.(check bool) "none" true (Cenv.root_color Ty.i64 = None)

let suite =
  [
    Alcotest.test_case "scalar sizes" `Quick test_scalar_sizes;
    Alcotest.test_case "struct size" `Quick test_struct_size;
    Alcotest.test_case "equality" `Quick test_equality;
    Alcotest.test_case "predicates" `Quick test_predicates;
    Alcotest.test_case "deref" `Quick test_deref;
    Alcotest.test_case "color_of" `Quick test_color_of;
    Alcotest.test_case "pretty printing" `Quick test_pp;
    Alcotest.test_case "root color" `Quick test_root_color;
  ]
