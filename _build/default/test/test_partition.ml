(* Partitioning tests: chunks, call plans, global placement, barriers,
   TCB accounting, closedness diagnostics (paper §7). *)

open Privagic_pir
open Privagic_secure
open Privagic_partition
module P = Privagic_workloads.Programs

let blue = Color.Named "blue"
let red = Color.Named "red"

let fig6_plan () = Helpers.plan_of ~mode:Mode.Relaxed P.fig6

let pfunc plan name args =
  match Plan.find_pfunc plan { Infer.ik_func = name; ik_args = args } with
  | Some pf -> pf
  | None -> Alcotest.failf "missing pfunc %s" name

let chunk pf c =
  match Plan.find_chunk pf c with
  | Some ci -> ci.Plan.ci_func
  | None -> Alcotest.failf "missing chunk %s" (Color.to_string c)

let test_fig6_chunks () =
  let plan = fig6_plan () in
  let g = pfunc plan "g" [ Color.Free ] in
  Alcotest.(check int) "g has 3 chunks" 3 (List.length g.Plan.pf_chunks);
  (* the U chunk contains the external call, the blue chunk the blue store,
     the red chunk the red store (Fig. 7) *)
  let has_call f =
    let found = ref false in
    Func.iter_instrs f (fun _ i ->
        match i.Instr.op with
        | Instr.Call ("printf_hello", _) -> found := true
        | _ -> ());
    !found
  in
  let stores_to f gname =
    let found = ref false in
    Func.iter_instrs f (fun _ i ->
        match i.Instr.op with
        | Instr.Store (_, Value.Global n) when n = gname -> found := true
        | _ -> ());
    !found
  in
  Alcotest.(check bool) "U chunk calls printf" true
    (has_call (chunk g Color.Unsafe));
  Alcotest.(check bool) "U chunk has no blue store" false
    (stores_to (chunk g Color.Unsafe) "blue");
  Alcotest.(check bool) "blue chunk stores blue" true
    (stores_to (chunk g blue) "blue");
  Alcotest.(check bool) "blue chunk has no red store" false
    (stores_to (chunk g blue) "red");
  Alcotest.(check bool) "red chunk stores red" true (stores_to (chunk g red) "red")

let test_fig6_call_plans () =
  let plan = fig6_plan () in
  let main = pfunc plan "main" [] in
  (* the call to f in main: blue is common, nothing spawned *)
  let f_plan =
    Hashtbl.fold
      (fun _ (cp : Plan.call_plan) acc ->
        if cp.Plan.cp_key.Infer.ik_func = "f" then Some cp else acc)
      main.Plan.pf_calls None
  in
  (match f_plan with
  | Some cp ->
    Alcotest.(check bool) "f direct in blue" true
      (List.mem blue cp.Plan.cp_direct);
    Alcotest.(check (list string)) "nothing spawned for f" []
      (List.map Color.to_string cp.Plan.cp_spawned);
    Alcotest.(check bool) "ret crosses to U via msg" true
      (List.mem Color.Unsafe cp.Plan.cp_ret_to_msg)
  | None -> Alcotest.fail "no plan for call to f");
  (* the call to g in f@blue: red and U spawned *)
  let f = pfunc plan "f" [ blue ] in
  let g_plan =
    Hashtbl.fold
      (fun _ (cp : Plan.call_plan) acc ->
        if cp.Plan.cp_key.Infer.ik_func = "g" then Some cp else acc)
      f.Plan.pf_calls None
  in
  match g_plan with
  | Some cp ->
    Alcotest.(check (list string)) "g direct" [ "blue" ]
      (List.map Color.to_string cp.Plan.cp_direct);
    Alcotest.(check (list string)) "g spawned" [ "U"; "red" ]
      (List.sort compare (List.map Color.to_string cp.Plan.cp_spawned));
    (* g(21): the constant argument is embedded in the replicated code, so
       no cont message is needed (unlike a computed F value) *)
    Alcotest.(check bool) "constant arg needs no cont" false
      cp.Plan.cp_f_args_to_spawned
  | None -> Alcotest.fail "no plan for call to g"

let test_global_placement () =
  let plan = fig6_plan () in
  let place name =
    Color.to_string (List.assoc name plan.Plan.global_placement)
  in
  Alcotest.(check string) "blue global" "blue" (place "blue");
  Alcotest.(check string) "red global" "red" (place "red");
  Alcotest.(check string) "unsafe global" "U" (place "unsafe")

let test_shared_globals () =
  let plan =
    Helpers.plan_of ~mode:Mode.Relaxed
      "int g1; int color(blue) b; entry void f() { g1 = 1; b = 2; }"
  in
  Alcotest.(check (list string)) "g1 gathered in S region" [ "g1" ]
    plan.Plan.shared_globals

let test_entry_plans () =
  let plan = fig6_plan () in
  match plan.Plan.entries with
  | [ ep ] ->
    Alcotest.(check string) "entry is main" "main" ep.Plan.ep_name;
    Alcotest.(check string) "interface runs U" "U"
      (Color.to_string ep.Plan.ep_direct);
    Alcotest.(check (list string)) "interface spawns blue" [ "blue" ]
      (List.map Color.to_string ep.Plan.ep_spawned)
  | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l)

let test_barriers () =
  let plan = fig6_plan () in
  let g = pfunc plan "g" [ Color.Free ] in
  (* printf is a visible effect -> barrier *)
  Alcotest.(check bool) "g has a barrier" true
    (Hashtbl.length g.Plan.pf_barriers >= 1);
  (* within/ignore calls are not barriers *)
  let plan2 =
    Helpers.plan_of ~mode:Mode.Hardened
      {|
within extern void* malloc(int n);
int color(blue) b;
entry void f() { if (b == 0) { int color(blue)* p = (int color(blue)*) malloc(8); *p = 1; } }
|}
  in
  let f = pfunc plan2 "f" [] in
  Alcotest.(check int) "no barriers for within calls" 0
    (Hashtbl.length f.Plan.pf_barriers)

let test_tcb_accounting () =
  let plan = fig6_plan () in
  let tcb = Tcb.of_plan plan in
  Alcotest.(check int) "two enclaves" 2 (List.length tcb.Tcb.partitions);
  List.iter
    (fun (p : Tcb.partition_stats) ->
      Alcotest.(check bool) "enclave instrs positive" true (p.Tcb.instr_count > 0))
    tcb.Tcb.partitions;
  Alcotest.(check bool) "reduction is large" true (Tcb.reduction_factor tcb > 50.0)

let test_closedness_diagnostic () =
  (* an uncolored stack slot written through an ignore helper from an
     enclave: its address register dangles in the blue chunk *)
  let src =
    {|
ignore extern void declassify_i64(int* d, int v);
int color(blue) b;
entry int f() {
  int res;
  res = 0;
  if (b == 1) {
    declassify_i64(&res, 1);
  }
  return res;
}
|}
  in
  let m = Helpers.compile src in
  let infer = Infer.run ~mode:Mode.Hardened m in
  Alcotest.(check bool) "checker accepts" true (Infer.ok infer);
  let plan = Plan.build ~mode:Mode.Hardened infer in
  Alcotest.(check bool) "partitioner flags the dangling slot" true
    (List.exists
       (fun d -> d.Diagnostic.kind = Diagnostic.Cross_enclave_f)
       plan.Plan.diagnostics)

let test_pure_f_function_single_chunk () =
  let plan =
    Helpers.plan_of ~mode:Mode.Hardened
      "int add(int a, int b) { return a + b; } entry int f() { return add(1, 2); }"
  in
  let add = pfunc plan "add" [ Color.Free; Color.Free ] in
  Alcotest.(check (list string)) "empty colorset" []
    (List.map Color.to_string add.Plan.pf_colorset);
  Alcotest.(check int) "single F chunk" 1 (List.length add.Plan.pf_chunks)

let test_chunk_branch_skipping () =
  (* in the U chunk, a blue-conditioned region collapses to a jump to the
     join point *)
  let plan =
    Helpers.plan_of ~mode:Mode.Hardened
      {|
int color(blue) b;
int u;
entry void f() {
  u = 1;
  if (b == 42) { b = 1; }
  u = 2;
}
|}
  in
  let f = pfunc plan "f" [] in
  let uchunk = chunk f Color.Unsafe in
  (* both U stores survive; no blue instructions *)
  let stores = ref 0 in
  Func.iter_instrs uchunk (fun _ i ->
      match i.Instr.op with Instr.Store _ -> incr stores | _ -> ());
  Alcotest.(check int) "two U stores" 2 !stores;
  (* no conditional branches remain in the U chunk *)
  let condbrs = ref 0 in
  List.iter
    (fun (b : Block.t) ->
      match b.Block.term with Instr.Condbr _ -> incr condbrs | _ -> ())
    uchunk.Func.blocks;
  Alcotest.(check int) "no condbr in U chunk" 0 !condbrs

let suite =
  [
    Alcotest.test_case "fig6 chunks" `Quick test_fig6_chunks;
    Alcotest.test_case "fig6 call plans" `Quick test_fig6_call_plans;
    Alcotest.test_case "global placement" `Quick test_global_placement;
    Alcotest.test_case "shared globals" `Quick test_shared_globals;
    Alcotest.test_case "entry plans" `Quick test_entry_plans;
    Alcotest.test_case "barriers" `Quick test_barriers;
    Alcotest.test_case "tcb accounting" `Quick test_tcb_accounting;
    Alcotest.test_case "closedness diagnostic" `Quick test_closedness_diagnostic;
    Alcotest.test_case "pure F single chunk" `Quick test_pure_f_function_single_chunk;
    Alcotest.test_case "chunk branch skipping" `Quick test_chunk_branch_skipping;
  ]
