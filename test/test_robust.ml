(* The adversarial robust-safety subsystem (lib/robust): monitor
   semantics, the shrinker, a quick fuzz campaign over the full
   {walk,image} x {sim,parallel} matrix, mutant kill rate, the
   attack-surface and Fig. 3 known-leak regressions, and the wire taps
   of the serving and replication layers. *)

open Privagic_secure
open Privagic_vm
module Plan = Privagic_partition.Plan
module Driver = Privagic_robust.Driver
module Monitor = Privagic_robust.Monitor
module Gen = Privagic_robust.Gen
module Progen = Privagic_robust.Progen
module Rng = Privagic_robust.Rng
module Delta = Privagic_replication.Delta
module Log = Privagic_replication.Log
module Shipper = Privagic_replication.Shipper
module Server = Privagic_server.Server
module Protocol = Privagic_server.Protocol
module Taint = Privagic_dataflow.Taint
module Interleave = Privagic_dataflow.Interleave
module Programs = Privagic_workloads.Programs

(* shifted by main.ml's [--seed]; 1 keeps the pinned corpus *)
let base_seed = ref 1

let with_repro f =
  try f ()
  with e ->
    Printf.eprintf
      "\nreproduce: dune exec test/main.exe -- test robust --seed %d\n%!"
      !base_seed;
    raise e

let sentinel_of seed = Rng.sentinel (Rng.make seed)

(* ------------------------------------------------------------------ *)
(* monitor semantics                                                   *)

let test_monitor_store_tap () =
  let mon = Monitor.create () in
  let s = sentinel_of 42 in
  Monitor.plant mon s;
  (* a live secret stored inside an enclave zone is fine *)
  Monitor.store_tap mon 0x10 8 s (Heap.Enclave "blue");
  Alcotest.(check bool) "enclave store ok" true (Monitor.ok mon);
  (* the same store into unprotected memory is the leak *)
  Monitor.store_tap mon 0x20 8 s Heap.Unsafe;
  match Monitor.violations mon with
  | [ v ] -> Alcotest.(check string) "kind" "store" v.Monitor.v_kind
  | vs -> Alcotest.failf "expected one violation, got %d" (List.length vs)

let test_monitor_declassify_window () =
  let mon = Monitor.create () in
  let s = sentinel_of 43 in
  Monitor.plant mon s;
  (* a legitimate declassification retires the sentinel... *)
  Monitor.declassify_value mon ~where:"test" s;
  Alcotest.(check bool) "authorized declassify" true (Monitor.ok mon);
  (* ...after which it may appear in unprotected memory *)
  Monitor.store_tap mon 0x20 8 s Heap.Unsafe;
  Alcotest.(check bool) "retired secret may leave" true (Monitor.ok mon);
  (* a declassification coerced by a forged spawn is a leak *)
  let s2 = sentinel_of 44 in
  Monitor.plant mon s2;
  Monitor.set_adversarial mon true;
  Monitor.declassify_value mon ~where:"test" s2;
  Monitor.set_adversarial mon false;
  match Monitor.violations mon with
  | [ v ] -> Alcotest.(check string) "kind" "declassify" v.Monitor.v_kind
  | vs -> Alcotest.failf "expected one violation, got %d" (List.length vs)

let test_monitor_scan_and_wire () =
  let mon = Monitor.create () in
  let s = sentinel_of 45 in
  (* plant after writing: the sweep must still find the residue *)
  let heap = Heap.create () in
  let a = Heap.alloc heap Heap.Unsafe 64 in
  Heap.store heap (a + 16) 8 s;
  Monitor.plant mon s;
  Monitor.scan_heap mon ~where:"test" heap;
  (match Monitor.violations mon with
  | [ v ] -> Alcotest.(check string) "kind" "memory" v.Monitor.v_kind
  | vs -> Alcotest.failf "expected one violation, got %d" (List.length vs));
  (* wire capture: plaintext pattern is flagged, a sealed frame is not *)
  let mon2 = Monitor.create () in
  Monitor.plant mon2 s;
  let d =
    { Delta.seq = 1; op = Delta.Put { key = 1; color = "blue"; payload = Monitor.le_bytes s } }
  in
  Monitor.check_wire mon2 ~where:"plain" (Delta.render ~sealer:None d);
  Alcotest.(check bool) "plaintext frame flagged" false (Monitor.ok mon2);
  let mon3 = Monitor.create () in
  Monitor.plant mon3 s;
  let sealer ~color ~nonce payload =
    Privagic_replication.Seal.seal
      ~key:(Privagic_replication.Seal.derive ~cluster:"test" color)
      ~nonce payload
  in
  Monitor.check_wire mon3 ~where:"sealed" (Delta.render ~sealer:(Some sealer) d);
  Alcotest.(check bool) "sealed frame clean" true (Monitor.ok mon3)

(* ------------------------------------------------------------------ *)
(* the shrinker                                                        *)

let test_shrink_greedy () =
  (* a synthetic failure needing exactly the probes at offsets 3 and 7:
     greedy one-at-a-time removal must reduce to those two actions *)
  let acts = List.init 10 (fun k -> Gen.Probe { global = "g"; off = k }) in
  let has off l =
    List.exists (function Gen.Probe { off = o; _ } -> o = off | _ -> false) l
  in
  let recheck l = has 3 l && has 7 l in
  let shrunk = Driver.shrink ~recheck acts in
  Alcotest.(check int) "two actions left" 2 (List.length shrunk);
  Alcotest.(check bool) "kept 3" true (has 3 shrunk);
  Alcotest.(check bool) "kept 7" true (has 7 shrunk)

(* ------------------------------------------------------------------ *)
(* the campaign: quick batch over the full matrix, all mutants killed  *)

let test_fuzz_smoke () =
  with_repro (fun () ->
      let rp = Driver.fuzz ~seed:!base_seed ~programs:12 () in
      Alcotest.(check int) "all four cells ran" 4 (List.length rp.Driver.rp_cells);
      Alcotest.(check int) "zero secrecy violations" 0
        (Driver.violations_total rp);
      Alcotest.(check int) "16 mutant runs" 16 (List.length rp.Driver.rp_kills);
      Alcotest.(check (float 0.0)) "full kill rate" 1.0 (Driver.kill_rate rp);
      Alcotest.(check bool) "campaign passed" true (Driver.passed rp))

let test_mutants_killed_everywhere () =
  with_repro (fun () ->
      List.iter
        (fun cell ->
          List.iter
            (fun m ->
              let k = Driver.run_mutant cell m ~seed:!base_seed in
              if not k.Driver.k_killed then
                Alcotest.failf "mutant %s survived on %s" k.Driver.k_mutant
                  k.Driver.k_cell)
            Driver.all_mutants)
        Driver.all_cells)

(* ------------------------------------------------------------------ *)
(* seeded known-leak regressions (the examples, wired into the suite)  *)

(* examples/attack_surface.ml, attack 2: the audit chunk exists in the
   plan but is not a valid spawn target — the §8 guard must reject a
   forged spawn of it, and dropping the guard is exactly the leak the
   drop_guard mutant plants *)
let test_forged_spawn_guard () =
  let plan = Helpers.plan_of ~mode:Mode.Hardened Progen.victim_forged_spawn in
  let srf = Gen.surface plan in
  Alcotest.(check bool) "an illegal spawn target exists" true
    (srf.Gen.s_illegal <> []);
  let color, chunk, _ = List.hd srf.Gen.s_illegal in
  let pt = Pinterp.create ~config:Privagic_sgx.Config.machine_test plan in
  ignore (Pinterp.call_entry pt "set_vault" [ Rvalue.Int 1L ]);
  (match Pinterp.inject_spawn pt ~color ~chunk [ Rvalue.Int 666L ] with
  | Ok () -> Alcotest.failf "guard accepted forged spawn of %s" chunk
  | Error _ -> ());
  Pinterp.set_spawn_guard pt false;
  match Pinterp.inject_spawn pt ~color ~chunk [ Rvalue.Int 666L ] with
  | Ok () -> ()
  | Error e -> Alcotest.failf "guard off, spawn still blocked: %s" e

(* examples/attack_surface.ml, attack 3: corrupting the unsafe [slot]
   pointer redirects the enclave's secret store into attacker memory —
   the monitor catches the leak in relaxed mode, and authenticated
   pointers prevent it outright in hardened mode *)
let multicolor_pinterp ~mode ~auth =
  let m =
    Privagic_minic.Driver.compile ~file:"multicolor.mc" Progen.victim_multicolor
  in
  let infer = Infer.run ~mode ~auth_pointers:auth m in
  Alcotest.(check bool) "multicolor accepted" true (Infer.ok infer);
  let plan = Plan.build ~mode ~auth_pointers:auth infer in
  Alcotest.(check bool) "multicolor plan ok" true (Plan.ok plan);
  Pinterp.create ~config:Privagic_sgx.Config.machine_test plan

let corrupt_slot pt =
  let heap = pt.Pinterp.exec.Exec.heap in
  let g = Hashtbl.find pt.Pinterp.exec.Exec.globals "slot" in
  let base = Int64.to_int (Heap.load heap g 8) in
  let forged = Heap.alloc heap Heap.Unsafe 16 in
  Heap.store heap base 8 (Int64.of_int forged)

let test_multicolor_corruption () =
  (* relaxed, unauthenticated pointers: the redirected store leaks, and
     the monitor sees the live secret land in the Unsafe zone *)
  let pt = multicolor_pinterp ~mode:Mode.Relaxed ~auth:false in
  let mon = Monitor.create () in
  Monitor.attach mon pt.Pinterp.exec;
  ignore (Pinterp.call_entry pt "init" []);
  ignore (Pinterp.call_entry pt "set_key" [ Rvalue.Int 9L ]);
  corrupt_slot pt;
  let s = sentinel_of 46 in
  Monitor.plant mon s;
  ignore (Pinterp.call_entry pt "set_key" [ Rvalue.Int s ]);
  (match Monitor.violations mon with
  | v :: _ -> Alcotest.(check string) "leak kind" "store" v.Monitor.v_kind
  | [] -> Alcotest.fail "redirected secret store not caught");
  Monitor.detach pt.Pinterp.exec;
  (* hardened with authenticated pointers: the corrupted indirection
     faults instead, and no secret reaches unprotected memory *)
  let pt = multicolor_pinterp ~mode:Mode.Hardened ~auth:true in
  let mon = Monitor.create () in
  Monitor.attach mon pt.Pinterp.exec;
  ignore (Pinterp.call_entry pt "init" []);
  ignore (Pinterp.call_entry pt "set_key" [ Rvalue.Int 9L ]);
  corrupt_slot pt;
  let s2 = sentinel_of 47 in
  Monitor.plant mon s2;
  let faulted =
    match Pinterp.call_entry pt "set_key" [ Rvalue.Int s2 ] with
    | _ -> false
    | exception Pinterp.Error _ -> true
    | exception Heap.Fault _ -> true
  in
  Monitor.scan_heap mon ~where:"post-fault" pt.Pinterp.exec.Exec.heap;
  Alcotest.(check bool) "authenticated pointer faults" true faulted;
  Alcotest.(check bool) "no secret escaped" true (Monitor.ok mon);
  Monitor.detach pt.Pinterp.exec

(* examples/multithreaded_leak.ml (paper Fig. 3): the sequential taint
   baseline misses the racy leak the interleaving oracle exhibits —
   the ground-truth "known leak" the trace monitor's dynamic view is
   built against — while explicit secure typing rejects it statically *)
let test_fig3_known_leak () =
  let m = Helpers.compile Programs.fig3_dataflow in
  let taint = Taint.analyze m in
  Alcotest.(check bool) "static taint leaves b unprotected" true
    (Taint.leaks_to taint "b");
  let outcomes = Interleave.explore m ~entry:"main" ~max_offset:20 in
  Alcotest.(check bool) "an interleaving leaks the secret" true
    (List.exists
       (fun oc -> Interleave.global_value oc "b" = Some 4242L)
       outcomes);
  Alcotest.(check bool) "secure typing rejects it statically" true
    (Helpers.diagnostics ~mode:Mode.Relaxed Programs.fig3_secure <> [])

(* ------------------------------------------------------------------ *)
(* wire taps                                                           *)

(* the replication shipper: frames pass the tap on their way to the
   socket; a secret-colored payload is sealed, so the monitor finds no
   live pattern on the wire *)
let test_shipper_wire_tap () =
  let s = sentinel_of 48 in
  let mon = Monitor.create () in
  Monitor.plant mon s;
  let captured = Buffer.create 256 in
  Shipper.set_wire_tap
    (Some
       (fun frame ->
         Buffer.add_string captured frame;
         Monitor.check_wire mon ~where:"shipper" frame));
  let log = Log.create () in
  ignore
    (Log.append log (Delta.Put { key = 1; color = "blue"; payload = Monitor.le_bytes s })
      : int);
  let hub = Shipper.create ~cluster:"robust-test" ~log () in
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.set_nonblock a;
  Shipper.register hub a ~sync:false ~from_seq:0;
  (* read the replica side until the frame arrived (bounded) *)
  let buf = Bytes.create 4096 in
  let got = Buffer.create 256 in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Buffer.length got < 16 && Unix.gettimeofday () < deadline do
    match Unix.select [ b ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.read b buf 0 (Bytes.length buf) with
      | 0 -> Buffer.add_string got "" (* EOF *)
      | n -> Buffer.add_subbytes got buf 0 n
      | exception Unix.Unix_error (Unix.EAGAIN, _, _) -> ())
  done;
  Shipper.drain hub ~timeout_s:1.0;
  Shipper.set_wire_tap None;
  Unix.close b;
  Alcotest.(check bool) "tap saw the stream" true (Buffer.length captured > 0);
  Alcotest.(check bool) "replica saw the stream" true (Buffer.length got > 0);
  Alcotest.(check bool) "secret sealed on the wire" true (Monitor.ok mon);
  Alcotest.(check bool) "payload was sealed" true (Shipper.sealed_count hub >= 1)

(* the serving layer: every rendered response passes the tap *)
let test_server_wire_tap () =
  let plan = Driver.plan_of (Progen.kv_hashmap ~nbuckets:8 ~vsize:32) in
  let store = Server.store_of_pinterp (Pinterp.create ~config:Privagic_sgx.Config.machine_test plan) in
  let bnd =
    match Server.bindings_of_plan plan with
    | Some b -> b
    | None -> Alcotest.fail "bindings_of_plan failed"
  in
  let captured = Buffer.create 256 in
  Server.set_wire_tap (Some (fun resp -> Buffer.add_string captured resp));
  let cfg = { Server.default_config with Server.port = 0; vsize = 32 } in
  let srv = Server.start cfg bnd [| store |] in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port srv));
  let req = Protocol.render_request (Protocol.Set (1, "abc")) in
  let rb = Bytes.of_string req in
  ignore (Unix.write fd rb 0 (Bytes.length rb) : int);
  let buf = Bytes.create 1024 in
  let deadline = Unix.gettimeofday () +. 5.0 in
  let got = ref 0 in
  while !got = 0 && Unix.gettimeofday () < deadline do
    match Unix.select [ fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> got := Unix.read fd buf 0 (Bytes.length buf)
  done;
  Unix.close fd;
  Server.drain srv;
  Server.set_wire_tap None;
  Alcotest.(check bool) "client got a response" true (!got > 0);
  Alcotest.(check bool) "tap saw the response" true (Buffer.length captured > 0)

let suite =
  [
    Alcotest.test_case "monitor: store tap" `Quick test_monitor_store_tap;
    Alcotest.test_case "monitor: declassify window" `Quick
      test_monitor_declassify_window;
    Alcotest.test_case "monitor: sweep and wire" `Quick
      test_monitor_scan_and_wire;
    Alcotest.test_case "shrinker is greedy-minimal" `Quick test_shrink_greedy;
    Alcotest.test_case "fuzz smoke: full matrix" `Quick test_fuzz_smoke;
    Alcotest.test_case "mutants killed on every cell" `Quick
      test_mutants_killed_everywhere;
    Alcotest.test_case "regression: forged spawn guard" `Quick
      test_forged_spawn_guard;
    Alcotest.test_case "regression: multicolor corruption" `Quick
      test_multicolor_corruption;
    Alcotest.test_case "regression: fig3 known leak" `Quick
      test_fig3_known_leak;
    Alcotest.test_case "wire tap: replication shipper" `Quick
      test_shipper_wire_tap;
    Alcotest.test_case "wire tap: serving layer" `Quick test_server_wire_tap;
  ]
