(* The alcotest runner, with one extra flag alcotest does not know:

     dune exec test/main.exe -- [alcotest args] --seed N

   [--seed N] re-bases every seeded random harness (the image-engine
   differential corpus and the robust-safety fuzz smoke) on N — the
   flag a failing run prints in its one-line reproducer. The default
   base (1) keeps the pinned corpora. *)

let () =
  let argv = Array.to_list Sys.argv in
  let rec split acc = function
    | "--seed" :: n :: rest -> (List.rev acc @ rest, Some n)
    | a :: rest -> split (a :: acc) rest
    | [] -> (List.rev acc, None)
  in
  let argv, seed = split [] argv in
  (match seed with
  | Some n -> (
    match int_of_string_opt n with
    | Some n ->
      Test_image.base_seed := n;
      Test_robust.base_seed := n
    | None ->
      prerr_endline ("main: --seed expects an integer, got '" ^ n ^ "'");
      exit 2)
  | None -> ());
  Alcotest.run ~argv:(Array.of_list argv) "privagic"
    [
      ("color", Test_color.suite);
      ("ty", Test_ty.suite);
      ("frontend", Test_frontend.suite);
      ("ir", Test_ir.suite);
      ("infer", Test_infer.suite);
      ("infer2", Test_infer2.suite);
      ("exec", Test_exec.suite);
      ("exec2", Test_exec2.suite);
      ("runtime", Test_runtime.suite);
      ("telemetry", Test_telemetry.suite);
      ("sgx", Test_sgx.suite);
      ("partition", Test_partition.suite);
      ("pinterp", Test_pinterp.suite);
      ("parallel", Test_parallel.suite);
      ("dataflow", Test_dataflow.suite);
      ("programs", Test_programs.suite);
      ("workloads", Test_workloads.suite);
      ("harness", Test_harness.suite);
      ("extensions", Test_extensions.suite);
      ("equivalence", Test_equiv.suite);
      ("image", Test_image.suite);
      ("server", Test_server.suite);
      ("txn", Test_txn.suite);
      ("replication", Test_replication.suite);
      ("wire_fuzz", Test_wire_fuzz.suite);
      ("robust", Test_robust.suite);
      ("obs", Test_obs.suite);
    ]
