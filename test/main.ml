let () =
  Alcotest.run "privagic"
    [
      ("color", Test_color.suite);
      ("ty", Test_ty.suite);
      ("frontend", Test_frontend.suite);
      ("ir", Test_ir.suite);
      ("infer", Test_infer.suite);
      ("infer2", Test_infer2.suite);
      ("exec", Test_exec.suite);
      ("exec2", Test_exec2.suite);
      ("runtime", Test_runtime.suite);
      ("telemetry", Test_telemetry.suite);
      ("sgx", Test_sgx.suite);
      ("partition", Test_partition.suite);
      ("pinterp", Test_pinterp.suite);
      ("parallel", Test_parallel.suite);
      ("dataflow", Test_dataflow.suite);
      ("programs", Test_programs.suite);
      ("workloads", Test_workloads.suite);
      ("harness", Test_harness.suite);
      ("extensions", Test_extensions.suite);
      ("equivalence", Test_equiv.suite);
      ("image", Test_image.suite);
      ("server", Test_server.suite);
      ("replication", Test_replication.suite);
      ("wire_fuzz", Test_wire_fuzz.suite);
    ]
