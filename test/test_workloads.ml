(* YCSB generators: determinism, distribution shape, workload mixes. *)

module Ycsb = Privagic_workloads.Ycsb

let test_rng_deterministic () =
  let a = Ycsb.rng 7 and b = Ycsb.rng 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Ycsb.next_int64 a) (Ycsb.next_int64 b)
  done

let test_uniform_range () =
  let r = Ycsb.rng 11 in
  for _ = 1 to 1000 do
    let v = Ycsb.next_int r 50 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 50)
  done

let test_float_range () =
  let r = Ycsb.rng 13 in
  for _ = 1 to 1000 do
    let f = Ycsb.next_float r in
    Alcotest.(check bool) "[0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_zipfian_skew () =
  (* with the YCSB constant, item 0 is by far the hottest *)
  let z = Ycsb.zipfian 10_000 in
  let r = Ycsb.rng 17 in
  let counts = Array.make 10_000 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let v = Ycsb.zipfian_next z r in
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "item 0 hot" true
    (float_of_int counts.(0) /. float_of_int n > 0.05);
  let top10 = Array.sub counts 0 10 |> Array.fold_left ( + ) 0 in
  Alcotest.(check bool) "head heavy" true
    (float_of_int top10 /. float_of_int n > 0.2)

let test_scrambled_spreads () =
  let z = Ycsb.zipfian 10_000 in
  let r = Ycsb.rng 19 in
  let seen = Hashtbl.create 64 in
  for _ = 1 to 2000 do
    Hashtbl.replace seen (Ycsb.scrambled_zipfian_next z r) ()
  done;
  (* hot keys are spread across the space, not clustered at 0 *)
  let far = Hashtbl.fold (fun k () acc -> if k > 1000 then acc + 1 else acc) seen 0 in
  Alcotest.(check bool) "spread beyond the head" true (far > 10)

let test_workload_mixes () =
  let spec =
    Ycsb.workload_b ~record_count:1000 ~operation_count:10_000 ~value_size:64 ()
  in
  let t = Ycsb.create spec in
  let reads = ref 0 and updates = ref 0 in
  for _ = 1 to spec.Ycsb.operation_count do
    match Ycsb.next_op t with
    | Ycsb.Read _ -> incr reads
    | Ycsb.Update _ -> incr updates
    | Ycsb.Insert _ | Ycsb.Scan _ | Ycsb.Rmw _ -> ()
  done;
  let ratio = float_of_int !reads /. float_of_int (!reads + !updates) in
  Alcotest.(check bool) "workload B is ~95% reads" true
    (ratio > 0.92 && ratio < 0.98)

let test_keys_in_range () =
  let spec =
    Ycsb.workload_a ~record_count:500 ~operation_count:2_000 ~value_size:64 ()
  in
  let t = Ycsb.create spec in
  for _ = 1 to spec.Ycsb.operation_count do
    match Ycsb.next_op t with
    | Ycsb.Read k | Ycsb.Update k | Ycsb.Scan (k, _) | Ycsb.Rmw k ->
      Alcotest.(check bool) "key in range" true (k >= 0 && k < 500)
    | Ycsb.Insert _ -> ()
  done

let test_workload_e_f () =
  let spec =
    Ycsb.workload_e ~max_scan_len:10 ~record_count:1000
      ~operation_count:10_000 ~value_size:64 ()
  in
  let t = Ycsb.create spec in
  let scans = ref 0 and inserts = ref 0 in
  for _ = 1 to spec.Ycsb.operation_count do
    match Ycsb.next_op t with
    | Ycsb.Scan (k, len) ->
      incr scans;
      Alcotest.(check bool) "scan start in range" true (k >= 0 && k < 1000);
      Alcotest.(check bool) "scan len in [1,10]" true (len >= 1 && len <= 10)
    | Ycsb.Insert _ -> incr inserts
    | _ -> Alcotest.fail "workload E only scans and inserts"
  done;
  let ratio = float_of_int !scans /. float_of_int (!scans + !inserts) in
  Alcotest.(check bool) "workload E is ~95% scans" true
    (ratio > 0.92 && ratio < 0.98);
  let spec =
    Ycsb.workload_f ~record_count:1000 ~operation_count:10_000 ~value_size:64 ()
  in
  let t = Ycsb.create spec in
  let reads = ref 0 and rmws = ref 0 in
  for _ = 1 to spec.Ycsb.operation_count do
    match Ycsb.next_op t with
    | Ycsb.Read _ -> incr reads
    | Ycsb.Rmw _ -> incr rmws
    | _ -> Alcotest.fail "workload F only reads and RMWs"
  done;
  let ratio = float_of_int !reads /. float_of_int (!reads + !rmws) in
  Alcotest.(check bool) "workload F is ~50% reads" true
    (ratio > 0.45 && ratio < 0.55)

let test_value_payload () =
  let v1 = Ycsb.value_for ~size:128 42 in
  let v2 = Ycsb.value_for ~size:128 42 in
  let v3 = Ycsb.value_for ~size:128 43 in
  Alcotest.(check string) "deterministic" v1 v2;
  Alcotest.(check bool) "distinct keys differ" true (v1 <> v3);
  Alcotest.(check int) "size" 128 (String.length v1)

let prop_zipfian_bounds =
  QCheck.Test.make ~count:50 ~name:"zipfian values stay in range"
    QCheck.(pair (int_range 2 5000) small_int)
    (fun (items, seed) ->
      let z = Ycsb.zipfian items in
      let r = Ycsb.rng seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let v = Ycsb.zipfian_next z r in
        if v < 0 || v >= items then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "uniform range" `Quick test_uniform_range;
    Alcotest.test_case "float range" `Quick test_float_range;
    Alcotest.test_case "zipfian skew" `Quick test_zipfian_skew;
    Alcotest.test_case "scrambled spreads" `Quick test_scrambled_spreads;
    Alcotest.test_case "workload mixes" `Quick test_workload_mixes;
    Alcotest.test_case "workload E and F mixes" `Quick test_workload_e_f;
    Alcotest.test_case "keys in range" `Quick test_keys_in_range;
    Alcotest.test_case "value payload" `Quick test_value_payload;
    QCheck_alcotest.to_alcotest prop_zipfian_bounds;
  ]
