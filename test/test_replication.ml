(* The replication subsystem (DESIGN.md §8.10): the sealing model, the
   delta codec, commit-log numbering, and the end-to-end property the
   design exists for — a replica fed only the primary's delta stream
   converges to globals bit-equal to a virtual-time oracle replaying the
   committed write log, for every program family, both engines, and both
   sync and async shipping. Plus the transport rule as a trace property:
   a secret-colored payload never appears in plaintext on the wire. *)

module Server = Privagic_server.Server
module Protocol = Privagic_server.Protocol
module Parallel = Privagic_parallel.Parallel
module Programs = Privagic_workloads.Programs
module Mode = Privagic_secure.Mode
module Seal = Privagic_replication.Seal
module Delta = Privagic_replication.Delta
module Log = Privagic_replication.Log
module Replica = Privagic_replication.Replica
module Shipper = Privagic_replication.Shipper
module Pmodule = Privagic_pir.Pmodule
module Ty = Privagic_pir.Ty
open Privagic_vm

let vsize = 32
let capacity = 512

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let plan_of ?(mode = Mode.Hardened) src =
  let m = Privagic_minic.Driver.compile ~file:"repl.mc" src in
  let infer = Privagic_secure.Infer.run ~mode m in
  Alcotest.(check bool) "program accepted" true (Privagic_secure.Infer.ok infer);
  let plan = Privagic_partition.Plan.build ~mode infer in
  Alcotest.(check bool) "plan ok" true (Privagic_partition.Plan.ok plan);
  plan

(* the declassified final state: every integer-typed global, read
   straight out of the backend heap (test_parallel's comparison) *)
let int_globals m =
  List.filter_map
    (fun (g : Pmodule.global) ->
      match g.Pmodule.gty.Ty.desc with
      | Ty.I64 -> Some g.Pmodule.gname
      | _ -> None)
    (Pmodule.globals_sorted m)

let read_globals (ex : Exec.t) names =
  List.map
    (fun n -> (n, Heap.load ex.Exec.heap (Hashtbl.find ex.Exec.globals n) 8))
    names

(* ------------------------------------------------------------------ *)
(* seal model *)

let test_seal () =
  let k = Seal.derive ~cluster:"privagic" "red" in
  let p = "attack at dawn" in
  let ct = Seal.seal ~key:k ~nonce:7 p in
  Alcotest.(check int) "tag overhead"
    (String.length p + Seal.overhead)
    (String.length ct);
  Alcotest.(check bool) "ciphertext hides plaintext" false
    (contains ~needle:p ct);
  (match Seal.unseal ~key:k ~nonce:7 ct with
  | Ok p' -> Alcotest.(check string) "roundtrip" p p'
  | Error e -> Alcotest.failf "unseal: %s" e);
  (* authenticated: flipping any single byte is detected *)
  String.iteri
    (fun i _ ->
      let b = Bytes.of_string ct in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
      match Seal.unseal ~key:k ~nonce:7 (Bytes.to_string b) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "tampered byte %d accepted" i)
    ct;
  (* wrong nonce, wrong color, wrong cluster all fail *)
  (match Seal.unseal ~key:k ~nonce:8 ct with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong nonce accepted");
  (match
     Seal.unseal ~key:(Seal.derive ~cluster:"privagic" "blue") ~nonce:7 ct
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong color key accepted");
  (match Seal.unseal ~key:(Seal.derive ~cluster:"other" "red") ~nonce:7 ct with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong cluster key accepted");
  (* nonce separation *)
  Alcotest.(check bool) "nonce-separated ciphertexts" false
    (Seal.seal ~key:k ~nonce:1 p = Seal.seal ~key:k ~nonce:2 p);
  (* short input and empty payload *)
  (match Seal.unseal ~key:k ~nonce:1 "xy" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short input accepted");
  (match Seal.unseal ~key:k ~nonce:3 (Seal.seal ~key:k ~nonce:3 "") with
  | Ok "" -> ()
  | _ -> Alcotest.fail "empty payload roundtrip");
  Alcotest.(check bool) "cost grows with size" true
    (Seal.cost_cycles 4096 > Seal.cost_cycles 16)

(* ------------------------------------------------------------------ *)
(* delta codec *)

let test_delta_codec () =
  let k = Seal.derive ~cluster:"c" "red" in
  let sealer =
    Some (fun ~color:_ ~nonce p -> Seal.seal ~key:k ~nonce p)
  in
  (* a binary payload exercising \r\n and NUL inside the length-prefixed
     block *)
  let binary = String.init 32 Char.chr in
  let ds =
    [ { Delta.seq = 1; op = Delta.Put { key = 5; color = "red"; payload = "hello\r\nworld" } };
      { Delta.seq = 2; op = Delta.Put { key = 6; color = "U"; payload = binary } };
      { Delta.seq = 3; op = Delta.Del { key = 5 } } ]
  in
  let wire =
    Delta.render_ok 1 ^ String.concat "" (List.map (Delta.render ~sealer) ds)
  in
  let rd = Delta.reader () in
  let frames = Delta.feed rd (Bytes.of_string wire) (String.length wire) in
  (match frames with
  | [ Delta.Ok_hello 1;
      Delta.Frame { d = { seq = 1; op = Delta.Put { key = 5; color = "red"; payload = sealed_p } }; sealed = true };
      Delta.Frame { d = { seq = 2; op = Delta.Put { key = 6; color = "U"; payload = plain_p } }; sealed = false };
      Delta.Frame { d = { seq = 3; op = Delta.Del { key = 5 } }; sealed = false } ] ->
    Alcotest.(check string) "plain binary payload survives" binary plain_p;
    (match Seal.unseal ~key:k ~nonce:1 sealed_p with
    | Ok p -> Alcotest.(check string) "sealed payload unseals" "hello\r\nworld" p
    | Error e -> Alcotest.failf "unseal: %s" e)
  | l -> Alcotest.failf "unexpected frames (%d)" (List.length l));
  (* a corrupt frame poisons the reader: it stops consuming *)
  let rd2 = Delta.reader () in
  let bad = "DBOGUS 1 2\r\n" in
  (match Delta.feed rd2 (Bytes.of_string bad) (String.length bad) with
  | [ Delta.Corrupt _ ] -> ()
  | _ -> Alcotest.fail "corrupt frame not flagged");
  let ok = Delta.render ~sealer:None (List.nth ds 2) in
  Alcotest.(check int) "poisoned reader consumes nothing" 0
    (List.length (Delta.feed rd2 (Bytes.of_string ok) (String.length ok)));
  (* ack lines *)
  let ar = Delta.ack_reader () in
  let s = Delta.render_ack 5 ^ Delta.render_ack 9 ^ "junk\r\n" in
  (match Delta.feed_acks ar (Bytes.of_string s) (String.length s) with
  | [ Ok 5; Ok 9; Error _ ] -> ()
  | _ -> Alcotest.fail "ack parse");
  (* the hello line is a serving-protocol request *)
  let hello = Delta.render_hello ~sync:true ~from_seq:7 in
  let pr = Protocol.reader () in
  match Protocol.feed pr (Bytes.of_string hello) (String.length hello) with
  | [ `Req (Protocol.Repl { r_sync = true; r_from = 7 }) ] -> ()
  | _ -> Alcotest.fail "repl hello not parsed by the serving protocol"

(* ------------------------------------------------------------------ *)
(* commit log *)

let test_log () =
  let l = Log.create () in
  Alcotest.(check int) "empty head" 0 (Log.head l);
  let d1 = Delta.Put { key = 1; color = "U"; payload = "a" } in
  let d2 = Delta.Del { key = 1 } in
  Alcotest.(check int) "first seq" 1 (Log.append l d1);
  Alcotest.(check int) "second seq" 2 (Log.append l d2);
  (match Log.get l 2 with
  | Some { Delta.seq = 2; op = Delta.Del { key = 1 } } -> ()
  | _ -> Alcotest.fail "get");
  Alcotest.(check bool) "get out of range" true (Log.get l 3 = None);
  (* a replica mirror must extend exactly head + 1 *)
  let m = Log.create () in
  Log.append_at m ~seq:1 d1;
  (try
     Log.append_at m ~seq:3 d2;
     Alcotest.fail "gap accepted"
   with Invalid_argument _ -> ());
  (try
     Log.append_at m ~seq:1 d1;
     Alcotest.fail "replay accepted"
   with Invalid_argument _ -> ());
  Log.append_at m ~seq:2 d2;
  Alcotest.(check int) "mirror head" 2 (Log.head m);
  Alcotest.(check int) "to_list length" 2 (List.length (Log.to_list m))

(* ------------------------------------------------------------------ *)
(* end-to-end nodes over loopback TCP *)

(* one backend exec per shard, in shard order, so per-shard globals can
   be compared against per-shard oracles *)
type node = { n_srv : Server.t; n_execs : Exec.t list }

let make_node ?replica_of ?(shards = 1) ~engine ~backend plan =
  let bnd = Option.get (Server.bindings_of_plan plan) in
  let cells =
    Array.init shards (fun _ ->
        let n_exec, store =
          match backend with
          | `Sim ->
            let pt = Pinterp.create ~engine plan in
            (pt.Pinterp.exec, Server.store_of_pinterp pt)
          | `Parallel ->
            let p = Parallel.create ~lanes:2 ~engine plan in
            (Parallel.exec p, Server.store_of_parallel p)
        in
        (match bnd.Server.b_init with
        | Some entry -> (
          match
            store.Server.st_call entry [ Rvalue.Int (Int64.of_int capacity) ]
          with
          | Ok _ -> ()
          | Error m -> Alcotest.failf "%s: %s" entry m)
        | None -> ());
        (n_exec, store))
  in
  let srv =
    Server.start ?replica_of
      { Server.default_config with Server.port = 0; shards; vsize }
      bnd
      (Array.map snd cells)
  in
  { n_srv = srv; n_execs = Array.to_list (Array.map fst cells) }

let attach ~sync node pport =
  let apply (d : Delta.t) =
    match d.Delta.op with
    | Delta.Put { key; payload; _ } ->
      Server.apply_put node.n_srv ~seq:d.Delta.seq ~key ~payload
    | Delta.Del { key } -> Server.apply_del node.n_srv ~seq:d.Delta.seq ~key
  in
  Replica.start ~sync ~host:"127.0.0.1" ~port:pport ~apply ()

(* a minimal blocking client (test_server has its own copy; kept local
   so this file stands alone) *)
type client = { fd : Unix.file_descr; rd : Protocol.resp_reader }

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.setsockopt fd Unix.TCP_NODELAY true;
  { fd; rd = Protocol.resp_reader () }

let send_all fd s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then go (off + Unix.write fd b off (Bytes.length b - off))
  in
  go 0

let read_responses ?(timeout = 10.0) c n =
  let buf = Bytes.create 8192 in
  let deadline = Unix.gettimeofday () +. timeout in
  let acc = ref [] and count = ref 0 and eof = ref false in
  while (not !eof) && !count < n && Unix.gettimeofday () < deadline do
    match Unix.select [ c.fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.read c.fd buf 0 (Bytes.length buf) with
      | 0 -> eof := true
      | nread ->
        List.iter
          (fun r ->
            acc := r :: !acc;
            incr count)
          (Protocol.feed_resp c.rd buf nread))
  done;
  List.rev !acc

let rpc c req =
  send_all c.fd (Protocol.render_request req);
  match read_responses c 1 with
  | [ r ] -> r
  | _ -> Alcotest.fail "rpc: no response"

(* ------------------------------------------------------------------ *)
(* convergence: replica globals bit-equal an oracle replaying the log *)

(* The oracle repeats a replica shard's exact allocation history on a
   fresh simulated backend: init, then the server's vbuf/obuf
   allocations, then one b_set/b_del call per logged delta owned by that
   shard (key mod shards, in merged-sequence order) with the server's
   zero-padding. Any divergence in how a replica applied the stream
   shows up as a bit difference in some integer global. *)
let oracle_replay_shard ~engine ~mode ~shards ~shard src log =
  let plan = plan_of ~mode src in
  let pt = Pinterp.create ~engine plan in
  let store = Server.store_of_pinterp pt in
  let bnd = Option.get (Server.bindings_of_plan plan) in
  (match bnd.Server.b_init with
  | Some entry -> (
    match store.Server.st_call entry [ Rvalue.Int (Int64.of_int capacity) ] with
    | Ok _ -> ()
    | Error m -> Alcotest.failf "oracle %s: %s" entry m)
  | None -> ());
  let vbuf = store.Server.st_alloc (max 1 vsize) in
  let _obuf = store.Server.st_alloc (max 1 vsize) in
  List.iter
    (fun (d : Delta.t) ->
      let apply key f = if key mod shards = shard then f () in
      match d.Delta.op with
      | Delta.Put { key; payload; _ } ->
        apply key (fun () ->
            let padded =
              if String.length payload >= vsize then payload
              else payload ^ String.make (vsize - String.length payload) '\000'
            in
            store.Server.st_write vbuf padded;
            match
              store.Server.st_call bnd.Server.b_set
                [ Rvalue.Int (Int64.of_int key); Rvalue.Ptr vbuf ]
            with
            | Ok _ -> ()
            | Error m -> Alcotest.failf "oracle set: %s" m)
      | Delta.Del { key } -> (
        match bnd.Server.b_del with
        | None -> Alcotest.fail "oracle: del delta for a del-less family"
        | Some del ->
          apply key (fun () ->
              match
                store.Server.st_call del [ Rvalue.Int (Int64.of_int key) ]
              with
              | Ok _ -> ()
              | Error m -> Alcotest.failf "oracle del: %s" m)))
    (Log.to_list log);
  (plan, pt)

let converge_cell ?(shards = 1) ~mode ~backend ~engine src () =
  let plan_p = plan_of ~mode src in
  let has_del =
    (Option.get (Server.bindings_of_plan plan_p)).Server.b_del <> None
  in
  let primary = make_node ~shards ~engine ~backend plan_p in
  let pport = Server.port primary.n_srv in
  (* one sync and one async replica per cell *)
  let reps =
    List.map
      (fun sync ->
        let plan = plan_of ~mode src in
        let node =
          make_node
            ~replica_of:(Printf.sprintf "127.0.0.1:%d" pport)
            ~shards ~engine ~backend plan
        in
        (node, attach ~sync node pport, plan))
      [ true; false ]
  in
  (* a deterministic write-heavy mix; gets on the primary perturb its
     own LRU state, which is exactly why the oracle — not the primary —
     is the reference *)
  let c = connect pport in
  for i = 0 to 119 do
    let key = i mod 40 in
    let req =
      if has_del && i mod 7 = 3 then Protocol.Del key
      else if i mod 5 = 4 then Protocol.Get key
      else
        Protocol.Set (key, Printf.sprintf "v%03d%s" i (String.make (i mod 20) 'x'))
    in
    ignore (rpc c req)
  done;
  Unix.close c.fd;
  (* drain ships the log tail and closes the replica links *)
  Server.drain primary.n_srv;
  let log = Server.repl_log primary.n_srv in
  Alcotest.(check bool) "log is non-empty" true (Log.head log > 0);
  (* one oracle per shard, each replaying its slice of the merged log *)
  let wants =
    List.init shards (fun shard ->
        let oplan, opt =
          oracle_replay_shard ~engine ~mode ~shards ~shard src log
        in
        let names = int_globals oplan.Privagic_partition.Plan.pmodule in
        Alcotest.(check bool) "program has integer globals" true (names <> []);
        read_globals opt.Pinterp.exec names)
  in
  List.iter
    (fun ((node, client, plan), sync) ->
      let tag = if sync then "sync" else "async" in
      Alcotest.(check bool) (tag ^ " link closed") true
        (Replica.wait_lost client ~timeout_s:10.0);
      Alcotest.(check int)
        (tag ^ " applied the whole log")
        (Log.head log) (Replica.applied_seq client);
      Replica.stop client;
      let names = int_globals plan.Privagic_partition.Plan.pmodule in
      List.iteri
        (fun shard (want, ex) ->
          let got = read_globals ex names in
          Alcotest.(check (list (pair string int64)))
            (Printf.sprintf "%s replica shard %d globals bit-equal the oracle"
               tag shard)
            want got)
        (List.combine wants node.n_execs);
      Server.drain node.n_srv)
    (List.combine reps [ true; false ])

let convergence_cases =
  let fam name ?(mode = Mode.Hardened) src =
    List.concat_map
      (fun (ename, engine) ->
        [ Alcotest.test_case
            (Printf.sprintf "converge: %s, sim, %s engine" name ename)
            `Quick
            (converge_cell ~mode ~backend:`Sim ~engine src);
          Alcotest.test_case
            (Printf.sprintf "converge: %s, sim, %s engine, 3 shards" name
               ename)
            `Quick
            (converge_cell ~shards:3 ~mode ~backend:`Sim ~engine src) ])
      [ ("walk", Exec.Walk); ("image", Exec.Image) ]
  in
  List.concat
    [ fam "memcached" (Programs.memcached ~nbuckets:64 ~vsize `Colored);
      fam "hashmap" (Programs.hashmap ~nbuckets:64 ~vsize `Colored);
      fam "hashmap-2color" ~mode:Mode.Relaxed
        (Programs.hashmap_two_color ~nbuckets:64 ~vsize `Colored);
      fam "treemap" (Programs.rbtree ~vsize `Colored);
      fam "linked-list" (Programs.linked_list ~vsize `Colored);
      [ Alcotest.test_case "converge: memcached, parallel backend" `Quick
          (converge_cell ~mode:Mode.Hardened ~backend:`Parallel
             ~engine:(Exec.default_engine ())
             (Programs.memcached ~nbuckets:64 ~vsize `Colored));
        Alcotest.test_case "converge: memcached, parallel backend, 2 shards"
          `Quick
          (converge_cell ~shards:2 ~mode:Mode.Hardened ~backend:`Parallel
             ~engine:(Exec.default_engine ())
             (Programs.memcached ~nbuckets:64 ~vsize `Colored)) ] ]

(* ------------------------------------------------------------------ *)
(* the transport rule, as a trace property over captured wire bytes *)

let wire_capture variant expect_sealed () =
  let src = Programs.memcached ~nbuckets:64 ~vsize variant in
  let plan = plan_of src in
  let primary = make_node ~engine:(Exec.default_engine ()) ~backend:`Sim plan in
  let pport = Server.port primary.n_srv in
  (* a bare socket standing in for a replica: hello, then just record
     every byte the primary ships *)
  let rfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect rfd (Unix.ADDR_INET (Unix.inet_addr_loopback, pport));
  send_all rfd (Delta.render_hello ~sync:false ~from_seq:1);
  let c = connect pport in
  let secret i = Printf.sprintf "TOPSECRETPAYLOAD%04d" i in
  for i = 0 to 9 do
    match rpc c (Protocol.Set (i, secret i)) with
    | Protocol.Stored -> ()
    | _ -> Alcotest.fail "set failed"
  done;
  let raw = Buffer.create 4096 in
  let rd = Delta.reader () in
  let frames = ref [] in
  let buf = Bytes.create 4096 in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while List.length !frames < 11 && Unix.gettimeofday () < deadline do
    match Unix.select [ rfd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.read rfd buf 0 (Bytes.length buf) with
      | 0 -> Alcotest.fail "primary closed the replication link"
      | n ->
        Buffer.add_subbytes raw buf 0 n;
        frames := !frames @ Delta.feed rd buf n)
  done;
  (match !frames with
  | Delta.Ok_hello 1 :: rest when List.length rest = 10 ->
    let key = Seal.derive ~cluster:"privagic" (Server.value_color plan) in
    List.iteri
      (fun i f ->
        match f with
        | Delta.Frame { d = { Delta.seq; op = Delta.Put { key = k; payload; _ } }; sealed } ->
          Alcotest.(check int) "stream seq" (i + 1) seq;
          Alcotest.(check int) "stream key" i k;
          Alcotest.(check bool) "sealed flag" expect_sealed sealed;
          if expect_sealed then (
            match Seal.unseal ~key ~nonce:seq payload with
            | Ok p -> Alcotest.(check string) "unseals to the value" (secret i) p
            | Error e -> Alcotest.failf "replica-side unseal: %s" e)
          else Alcotest.(check string) "plaintext value" (secret i) payload
        | _ -> Alcotest.fail "unexpected frame")
      rest
  | l -> Alcotest.failf "bad stream (%d frames)" (List.length l));
  let captured = Buffer.contents raw in
  if expect_sealed then
    Alcotest.(check bool) "no secret plaintext on the wire" false
      (contains ~needle:"TOPSECRET" captured)
  else
    Alcotest.(check bool) "plain program ships plaintext" true
      (contains ~needle:"TOPSECRET" captured);
  Unix.close rfd;
  Unix.close c.fd;
  Server.drain primary.n_srv

(* ------------------------------------------------------------------ *)
(* sync fencing (read-your-writes on the replica) and promotion *)

let test_sync_ryw_and_promotion () =
  let src = Programs.memcached ~nbuckets:64 ~vsize `Colored in
  let engine = Exec.default_engine () in
  let primary = make_node ~engine ~backend:`Sim (plan_of src) in
  let pport = Server.port primary.n_srv in
  let rplan = plan_of src in
  let rnode =
    make_node ~replica_of:(Printf.sprintf "127.0.0.1:%d" pport) ~engine
      ~backend:`Sim rplan
  in
  let client = attach ~sync:true rnode pport in
  (* wait for the sync link to register before writing, so every write
     below is fenced *)
  let hub = Server.repl_hub primary.n_srv in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while Shipper.sync_connected hub < 1 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.005
  done;
  Alcotest.(check int) "sync replica registered" 1 (Shipper.sync_connected hub);
  let pc = connect pport in
  let rc = connect (Server.port rnode.n_srv) in
  (* a replica refuses client writes *)
  (match rpc rc (Protocol.Set (1, "nope")) with
  | Protocol.Error_msg _ -> ()
  | _ -> Alcotest.fail "replica accepted a client write");
  Alcotest.(check bool) "replica role" true (Server.is_replica rnode.n_srv);
  (* read-your-writes: once the primary answered STORED, the sync fence
     guarantees the replica already applied *)
  for k = 0 to 19 do
    let v = Printf.sprintf "fenced%02d" k in
    (match rpc pc (Protocol.Set (k, v)) with
    | Protocol.Stored -> ()
    | _ -> Alcotest.fail "set failed");
    match rpc rc (Protocol.Get k) with
    | Protocol.Value (k', v') when k' = k && v' = v -> ()
    | r ->
      Alcotest.failf "replica read after fenced write: %s"
        (String.trim (Protocol.render r))
  done;
  let st = Server.stats primary.n_srv in
  Alcotest.(check string) "primary role" "primary" st.Server.s_role;
  Alcotest.(check int) "one replica connected" 1 st.Server.s_replicas;
  Alcotest.(check int) "no fence timeouts" 0 st.Server.s_fence_timeouts;
  Alcotest.(check bool) "stats verb reports the role" true
    (List.mem_assoc "role" (Server.stats_fields primary.n_srv));
  (* drain the primary; the replica notices and (the harness wiring)
     promotes *)
  Unix.close pc.fd;
  let promoted = ref false in
  let t = Thread.create (fun () ->
      if Replica.wait_lost client ~timeout_s:10.0 then begin
        Server.promote rnode.n_srv;
        promoted := true
      end) ()
  in
  Server.drain primary.n_srv;
  Thread.join t;
  Alcotest.(check bool) "link lost after the drain" true !promoted;
  Replica.stop client;
  Alcotest.(check string) "promoted role" "primary" (Server.role_name rnode.n_srv);
  (* the promoted replica serves writes and kept the replicated data *)
  (match rpc rc (Protocol.Set (40, "after")) with
  | Protocol.Stored -> ()
  | _ -> Alcotest.fail "promoted replica refused a write");
  (match rpc rc (Protocol.Get 40) with
  | Protocol.Value (40, "after") -> ()
  | _ -> Alcotest.fail "promoted write lost");
  (match rpc rc (Protocol.Get 5) with
  | Protocol.Value (5, "fenced05") -> ()
  | _ -> Alcotest.fail "replicated data lost at promotion");
  Unix.close rc.fd;
  Server.drain rnode.n_srv

(* ------------------------------------------------------------------ *)
(* the replica apply path rejects stream gaps *)

let test_apply_gap () =
  let src = Programs.memcached ~nbuckets:64 ~vsize `Colored in
  let node =
    make_node ~replica_of:"127.0.0.1:1" ~engine:(Exec.default_engine ())
      ~backend:`Sim (plan_of src)
  in
  let put seq =
    Server.apply_put node.n_srv ~seq ~key:seq ~payload:"x"
  in
  (match put 2 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "gap accepted");
  (match put 1 with
  | Ok () -> ()
  | Error m -> Alcotest.failf "first delta: %s" m);
  (match put 1 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "replay accepted");
  (match put 2 with
  | Ok () -> ()
  | Error m -> Alcotest.failf "second delta: %s" m);
  (match Server.apply_del node.n_srv ~seq:4 ~key:1 with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "del gap accepted");
  (* a delete of an absent key still mirrors: numbering stays dense *)
  (match Server.apply_del node.n_srv ~seq:3 ~key:99 with
  | Ok () -> ()
  | Error m -> Alcotest.failf "miss del: %s" m);
  Alcotest.(check int) "mirrored log head" 3
    (Log.head (Server.repl_log node.n_srv));
  let st = Server.stats node.n_srv in
  Alcotest.(check int) "applied counter" 3 st.Server.s_applied;
  Server.drain node.n_srv

let suite =
  [ Alcotest.test_case "seal model" `Quick test_seal;
    Alcotest.test_case "delta codec" `Quick test_delta_codec;
    Alcotest.test_case "commit log" `Quick test_log;
    Alcotest.test_case "wire: colored payloads sealed" `Quick
      (wire_capture `Colored true);
    Alcotest.test_case "wire: plain payloads unsealed" `Quick
      (wire_capture `Plain false);
    Alcotest.test_case "sync read-your-writes, promotion" `Quick
      test_sync_ryw_and_promotion;
    Alcotest.test_case "apply rejects stream gaps" `Quick test_apply_gap ]
  @ convergence_cases
