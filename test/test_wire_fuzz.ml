(* Byte-split fuzz over every incremental wire parser: feeding a valid
   stream in random 1..7-byte chunks must produce exactly the same parse
   as feeding it whole. The parsers are two-state machines carrying
   partial lines and partial binary payload blocks across feeds — the
   chunking property is what lets the serving and replication layers
   read from TCP without framing assumptions. Deterministic: the chunk
   boundaries come from the workload generator's splitmix64 rng. *)

module Protocol = Privagic_server.Protocol
module Delta = Privagic_replication.Delta
module Seal = Privagic_replication.Seal
module Y = Privagic_workloads.Ycsb

let trials = 50

(* split [String.length wire] into random chunk sizes in [1, 7] *)
let rec chunk_sizes rng remaining acc =
  if remaining = 0 then List.rev acc
  else
    let n = 1 + Y.next_int rng (min 7 remaining) in
    chunk_sizes rng (remaining - n) (n :: acc)

(* feed [wire] to a fresh reader in the given chunks *)
let feed_chunked mk feed wire sizes =
  let r = mk () in
  let out = ref [] and pos = ref 0 in
  List.iter
    (fun n ->
      let b = Bytes.of_string (String.sub wire !pos n) in
      pos := !pos + n;
      out := !out @ feed r b n)
    sizes;
  !out

let whole mk feed wire = feed_chunked mk feed wire [ String.length wire ]

(* the chunking property for one (reader, wire) pair *)
let check_parser ~name mk feed wire =
  let reference = whole mk feed wire in
  Alcotest.(check bool)
    (name ^ ": whole-buffer parse is non-empty")
    true (reference <> []);
  let rng = Y.rng 0x5eed in
  for trial = 1 to trials do
    let sizes = chunk_sizes rng (String.length wire) [] in
    let got = feed_chunked mk feed wire sizes in
    if got <> reference then
      Alcotest.failf "%s: chunked parse diverges (trial %d, %d chunks)" name
        trial (List.length sizes)
  done

(* ------------------------------------------------------------------ *)

let test_request_reader () =
  let wire =
    String.concat ""
      [ Protocol.render_request (Protocol.Set (7, "hello"));
        (* a value containing the line terminator: only the length
           prefix can frame it *)
        Protocol.render_request (Protocol.Set (8, "cr\r\nlf\r\n\000bin"));
        Protocol.render_request (Protocol.Get 7);
        Protocol.render_request (Protocol.Del 7);
        Protocol.render_request (Protocol.Getv 7);
        (* cas and txn payloads with embedded terminators: only the
           length prefixes can frame them *)
        Protocol.render_request
          (Protocol.Cas { c_key = 7; c_ver = 3; c_val = "v\r\n\000cas" });
        Protocol.render_request
          (Protocol.Scan { sc_start = 2; sc_stop = 40; sc_limit = 10 });
        Protocol.render_request
          (Protocol.Txn
             [ Protocol.T_get 1; Protocol.T_set (2, "tx\r\nval");
               Protocol.T_del 3; Protocol.T_cas (4, 9, "guard\000ed") ]);
        Protocol.render_request Protocol.Stats;
        Delta.render_hello ~sync:true ~from_seq:3;
        "bogus line\r\n";
        Protocol.render_request Protocol.Quit ]
  in
  check_parser ~name:"requests" Protocol.reader Protocol.feed wire;
  (* the reference parse itself is what the server would see *)
  match whole Protocol.reader Protocol.feed wire with
  | [ `Req (Protocol.Set (7, "hello"));
      `Req (Protocol.Set (8, "cr\r\nlf\r\n\000bin"));
      `Req (Protocol.Get 7); `Req (Protocol.Del 7);
      `Req (Protocol.Getv 7);
      `Req (Protocol.Cas { c_key = 7; c_ver = 3; c_val = "v\r\n\000cas" });
      `Req (Protocol.Scan { sc_start = 2; sc_stop = 40; sc_limit = 10 });
      `Req
        (Protocol.Txn
           [ Protocol.T_get 1; Protocol.T_set (2, "tx\r\nval");
             Protocol.T_del 3; Protocol.T_cas (4, 9, "guard\000ed") ]);
      `Req Protocol.Stats;
      `Req (Protocol.Repl { r_sync = true; r_from = 3 }); `Bad _;
      `Req Protocol.Quit ] -> ()
  | l -> Alcotest.failf "unexpected request parse (%d items)" (List.length l)

let test_response_reader () =
  let wire =
    String.concat ""
      (List.map Protocol.render
         [ Protocol.Value (3, "abc"); Protocol.Value (4, "x\r\ny\000z");
           Protocol.Miss; Protocol.Stored; Protocol.Deleted;
           Protocol.Not_found; Protocol.Busy;
           Protocol.Stats_reply [ ("a", "1"); ("b", "x y") ];
           Protocol.Version { v_key = 3; v_ver = 5; v_val = Some "ver\r\nval" };
           Protocol.Version { v_key = 4; v_ver = 0; v_val = None };
           Protocol.Cas_conflict 6;
           (* a scan reply mixing value-carrying (SVAL) and key-only
              (SKEY, secret-colored) items *)
           Protocol.Scan_reply
             [ { Protocol.si_key = 1; si_ver = 2; si_val = Some "sv\r\n\000" };
               { Protocol.si_key = 3; si_ver = 4; si_val = None } ];
           Protocol.Scan_reply [];
           Protocol.Txn_reply
             [ Protocol.R_value (Some "tx\r\nout"); Protocol.R_value None;
               Protocol.R_stored; Protocol.R_deleted; Protocol.R_not_found ];
           Protocol.Txn_abort { ta_key = 9; ta_expected = 4; ta_found = 7 };
           Protocol.Error_msg "nope"; Protocol.Ok_msg ])
  in
  check_parser ~name:"responses" Protocol.resp_reader Protocol.feed_resp wire

let test_delta_reader () =
  let key = Seal.derive ~cluster:"fuzz" "red" in
  let sealer = Some (fun ~color:_ ~nonce p -> Seal.seal ~key ~nonce p) in
  let binary = String.init 48 (fun i -> Char.chr ((i * 37 + 13) land 0xff)) in
  let wire =
    Delta.render_ok 1
    ^ String.concat ""
        (List.map
           (Delta.render ~sealer)
           [ { Delta.seq = 1; op = Delta.Put { key = 9; color = "red"; payload = binary } };
             { Delta.seq = 2; op = Delta.Put { key = 10; color = "U"; payload = "plain\r\nvalue" } };
             { Delta.seq = 3; op = Delta.Del { key = 9 } };
             { Delta.seq = 4; op = Delta.Put { key = 11; color = "red"; payload = "" } } ])
  in
  check_parser ~name:"delta stream" Delta.reader Delta.feed wire

let test_ack_reader () =
  let wire =
    String.concat ""
      (List.map Delta.render_ack [ 1; 2; 40; 41; 1000000; 7 ])
  in
  check_parser ~name:"acks" Delta.ack_reader Delta.feed_acks wire

(* ------------------------------------------------------------------ *)
(* the chunking property end-to-end: a pipelined burst of interleaved
   requests on ONE live connection, delivered in random 1..7-byte
   chunks, must produce byte-identical responses to the same burst sent
   whole. This is the property the sharded event loop's incremental
   parser + in-order response flush must uphold while earlier requests
   of the same burst are already executing (possibly on other shards). *)

module Server = Privagic_server.Server

let test_pipelined_socket_chunking () =
  let vsize = 32 and capacity = 256 and shards = 2 in
  let src =
    Privagic_workloads.Programs.memcached ~nbuckets:64 ~vsize `Colored
  in
  let m = Privagic_minic.Driver.compile ~file:"fuzz.mc" src in
  let infer =
    Privagic_secure.Infer.run ~mode:Privagic_secure.Mode.Hardened m
  in
  let plan =
    Privagic_partition.Plan.build ~mode:Privagic_secure.Mode.Hardened infer
  in
  let bnd = Option.get (Server.bindings_of_plan plan) in
  let stores =
    Array.init shards (fun _ ->
        let s = Server.store_of_pinterp (Privagic_vm.Pinterp.create plan) in
        (match
           s.Server.st_call "mc_init"
             [ Privagic_vm.Rvalue.Int (Int64.of_int capacity) ]
         with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "mc_init: %s" e);
        s)
  in
  let srv =
    Server.start
      { Server.default_config with Server.port = 0; shards; vsize }
      bnd stores
  in
  (* interleaved read-after-write chains across both shards; the burst
     ends by deleting every key, so the store state (and therefore the
     response stream) is identical for every fresh connection *)
  let reqs =
    List.concat
      (List.init 12 (fun i ->
           let k = i mod 6 in
           [ Protocol.Set (k, Printf.sprintf "v\r\n%02d" i);
             Protocol.Get k;
             Protocol.Get ((k + 1) mod 6);
             (if i mod 4 = 3 then Protocol.Del k else Protocol.Get k) ]))
    @ List.init 6 (fun k -> Protocol.Del k)
  in
  let n = List.length reqs in
  let wire = String.concat "" (List.map Protocol.render_request reqs) in
  let run_burst sizes =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        Unix.connect fd
          (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port srv));
        Unix.setsockopt fd Unix.TCP_NODELAY true;
        (* writer thread dribbles the chunks while we read responses,
           so parse/execute/flush genuinely overlap *)
        let writer =
          Thread.create
            (fun () ->
              let pos = ref 0 in
              List.iter
                (fun sz ->
                  let b = Bytes.of_string (String.sub wire !pos sz) in
                  pos := !pos + sz;
                  let rec wr off =
                    if off < sz then
                      wr (off + Unix.write fd b off (sz - off))
                  in
                  wr 0)
                sizes)
            ()
        in
        let rd = Protocol.resp_reader () in
        let buf = Bytes.create 4096 in
        let got = ref [] and count = ref 0 in
        let deadline = Unix.gettimeofday () +. 20.0 in
        while !count < n && Unix.gettimeofday () < deadline do
          match Unix.select [ fd ] [] [] 0.2 with
          | [], _, _ -> ()
          | _ -> (
            match Unix.read fd buf 0 (Bytes.length buf) with
            | 0 -> Alcotest.fail "server closed mid-burst"
            | nread ->
              List.iter
                (fun r ->
                  got := r :: !got;
                  incr count)
                (Protocol.feed_resp rd buf nread))
        done;
        Thread.join writer;
        Alcotest.(check int) "burst fully answered" n !count;
        List.rev !got)
  in
  let reference = run_burst [ String.length wire ] in
  let rng = Y.rng 0x9173 in
  for trial = 1 to 5 do
    let sizes = chunk_sizes rng (String.length wire) [] in
    if run_burst sizes <> reference then
      Alcotest.failf "pipelined chunked burst diverged (trial %d)" trial
  done;
  Server.drain srv

let suite =
  [ Alcotest.test_case "byte-split: request reader" `Quick test_request_reader;
    Alcotest.test_case "byte-split: response reader" `Quick test_response_reader;
    Alcotest.test_case "byte-split: delta reader" `Quick test_delta_reader;
    Alcotest.test_case "byte-split: ack reader" `Quick test_ack_reader;
    Alcotest.test_case "byte-split: pipelined burst over a live socket"
      `Quick test_pipelined_socket_chunking ]
