(* Differential tests for the flattened linked image engine (lib/vm/image).

   The walker is the oracle: randomized mini-C programs — seeded, so every
   run sees the same corpus — execute under both engines and must agree on
   per-call return values, per-call virtual-time latencies (bit-exact),
   total executed steps, and the final integer globals. A few seeds also
   run through the real-parallel backend under both engines.

   The phi fidelity corner is pinned with hand-built IR: a phi that misses
   a CFG predecessor passes under mini-C (Verify rejects it there), but a
   hand-built module executes — both engines must trap with the same
   message when control arrives over the missing edge, and Verify must
   flag the module. *)

open Privagic_pir
open Privagic_secure
open Privagic_vm
module Plan = Privagic_partition.Plan
module Parallel = Privagic_parallel.Parallel

(* ------------------------------------------------------------------ *)
(* Seeded program generator                                            *)
(* ------------------------------------------------------------------ *)

(* the shared deterministic stream (lib/robust/rng.ml): same LCG and
   seed mixing this suite always used, so the corpus is bit-identical —
   and a "--seed N" reproducer works across every seeded harness *)
module Rng = Privagic_robust.Rng

let rand = Rng.int

(* shifted by main.ml's [--seed]; the default keeps the pinned corpus *)
let base_seed = ref 1

let sp = Printf.sprintf

(* public integer expressions over the entry parameter, the public
   globals, the local accumulator and a helper call; operators are the
   total ones (no division), so any generated program is well defined *)
(* [helper] gates calls to the helper function: a call inside a loop
   that also writes blue would be replicated into the blue chunk, and
   its return value would be an F value crossing enclaves — a plan
   diagnostic, so the generator never produces it inside loop bodies *)
let rec gen_expr r ~helper depth =
  if depth = 0 || rand r 3 = 0 then
    match rand r 5 with
    | 0 -> string_of_int (1 + rand r 96)
    | 1 -> "a"
    | 2 -> "y"
    | 3 -> "z"
    | _ -> "t"
  else
    match rand r (if helper then 6 else 5) with
    | 0 ->
      sp "(%s + %s)" (gen_expr r ~helper (depth - 1))
        (gen_expr r ~helper (depth - 1))
    | 1 ->
      sp "(%s - %s)" (gen_expr r ~helper (depth - 1))
        (gen_expr r ~helper (depth - 1))
    | 2 ->
      sp "(%s * %s)" (gen_expr r ~helper (depth - 1))
        (gen_expr r ~helper (depth - 1))
    | 3 ->
      sp "(%s & %s)" (gen_expr r ~helper (depth - 1))
        (gen_expr r ~helper (depth - 1))
    | 4 -> sp "(%s >> %d)" (gen_expr r ~helper (depth - 1)) (1 + rand r 3)
    | _ -> sp "helper(%s)" (gen_expr r ~helper (depth - 1))

let gen_cond r =
  let op = match rand r 4 with 0 -> "<" | 1 -> ">" | 2 -> "==" | _ -> "!=" in
  sp "(%s %s %s)" (gen_expr r ~helper:true 1) op (gen_expr r ~helper:true 1)

(* straight-line statement. The entry parameter [a] is untrusted in
   Hardened mode, and y/z/t can carry its taint, so the only legal blue
   write is a constant increment — and only where [blue] says control is
   not conditioned on untrusted data (top level, or counter-driven
   loops at top level): otherwise the checker flags an iago flow or an
   implicit leak, which would be a generator bug, not a VM bug. *)
let gen_simple r ~blue ~helper =
  match rand r (if blue then 4 else 3) with
  | 0 -> sp "y = %s;" (gen_expr r ~helper 2)
  | 1 -> sp "z = %s;" (gen_expr r ~helper 2)
  | 2 -> sp "t = %s;" (gen_expr r ~helper 2)
  | _ -> sp "b = b + %d;" (1 + rand r 9)

(* [loops] allocates the pre-declared counters c0..c2; once exhausted,
   control constructs degrade to simple statements *)
let rec gen_stmt r loops ~blue depth =
  if depth = 0 then gen_simple r ~blue ~helper:true
  else
    match rand r 5 with
    | 0 | 1 -> gen_simple r ~blue ~helper:true
    | 2 ->
      (* generated conditions may be untrusted-tainted: no blue inside *)
      sp "if %s { %s } else { %s }" (gen_cond r)
        (gen_block r loops ~blue:false (depth - 1))
        (gen_block r loops ~blue:false (depth - 1))
    | _ ->
      if !loops >= 3 then gen_simple r ~blue ~helper:true
      else begin
        let c = sp "c%d" !loops in
        incr loops;
        let n = 2 + rand r 5 in
        (* the counter is public, so the loop keeps the caller's [blue] *)
        let body =
          String.concat " "
            (List.init (1 + rand r 3)
               (fun _ -> gen_simple r ~blue ~helper:false))
        in
        sp "%s = 0; while (%s < %d) { %s %s = %s + 1; }" c c n body c c
      end

and gen_block r loops ~blue depth =
  String.concat " "
    (List.init (2 + rand r 3) (fun _ -> gen_stmt r loops ~blue depth))

let gen_entry r name =
  let loops = ref 0 in
  sp
    "entry int %s(int a) {\n\
    \  int t = 0;\n\
    \  int c0 = 0;\n\
    \  int c1 = 0;\n\
    \  int c2 = 0;\n\
    \  %s\n\
    \  return y + z + t;\n\
     }\n"
    name
    (gen_block r loops ~blue:true 2)

let gen_program seed =
  let r = Rng.make seed in
  sp
    {|
ignore extern void declassify_i64(int* d, int v);
int color(blue) b;
int y;
int z;
int rstatus;
int helper(int a) {
  return a * 3 + 1;
}
%s%s
entry int readb() {
  declassify_i64(&rstatus, b);
  return rstatus;
}
|}
    (gen_entry r "f0") (gen_entry r "f1")

(* ------------------------------------------------------------------ *)
(* Differential runs                                                   *)
(* ------------------------------------------------------------------ *)

let obs = function
  | Rvalue.Int n -> Int64.to_string n
  | Rvalue.Ptr p -> if p = 0 then "null" else "ptr"
  | Rvalue.Flt f -> Printf.sprintf "%h" f
  | Rvalue.Unit -> "unit"

let int_globals m =
  List.filter_map
    (fun (g : Pmodule.global) ->
      match g.Pmodule.gty.Ty.desc with
      | Ty.I64 -> Some g.Pmodule.gname
      | _ -> None)
    (Pmodule.globals_sorted m)

let read_globals (ex : Exec.t) names =
  List.map
    (fun n -> (n, Heap.load ex.Exec.heap (Hashtbl.find ex.Exec.globals n) 8))
    names

let ops =
  [ ("f0", [ Rvalue.Int 3L ]); ("readb", []); ("f1", [ Rvalue.Int 7L ]);
    ("f0", [ Rvalue.Int 11L ]); ("readb", []); ("f1", [ Rvalue.Int 2L ]);
    ("readb", []) ]

(* one oracle run: per-call values and latencies, total steps, globals *)
let run_sim engine plan =
  let pt =
    Pinterp.create ~config:Privagic_sgx.Config.machine_test ~engine plan
  in
  let results =
    List.map (fun (entry, args) -> Pinterp.call_entry pt entry args) ops
  in
  ( List.map (fun r -> obs r.Pinterp.value) results,
    List.map (fun r -> r.Pinterp.latency_cycles) results,
    pt.Pinterp.exec.Exec.steps,
    read_globals pt.Pinterp.exec (int_globals plan.Plan.pmodule) )

let run_par engine plan =
  let p = Parallel.create ~lanes:2 ~engine plan in
  let vals =
    List.map
      (fun (entry, args) ->
        obs (Parallel.call_entry p entry args).Parallel.value)
      ops
  in
  let gs = read_globals (Parallel.exec p) (int_globals plan.Plan.pmodule) in
  let quiet = Parallel.shutdown p in
  Alcotest.(check bool) "pool quiesced" true quiet;
  (vals, gs)

let check_sim_seed seed =
  let src = gen_program seed in
  let plan () = Helpers.plan_of ~mode:Mode.Hardened src in
  let w_vals, w_lats, w_steps, w_globals = run_sim Exec.Walk (plan ()) in
  let i_vals, i_lats, i_steps, i_globals = run_sim Exec.Image (plan ()) in
  let tag fmt = sp ("seed %d: " ^^ fmt) seed in
  Alcotest.(check (list string)) (tag "per-call values") w_vals i_vals;
  (* virtual time must be bit-exact, not approximately equal: the image
     charges the same costs in the same order as the walker *)
  Alcotest.(check (list (float 0.0))) (tag "per-call latencies") w_lats i_lats;
  Alcotest.(check int) (tag "total steps") w_steps i_steps;
  Alcotest.(check (list (pair string int64)))
    (tag "final globals") w_globals i_globals

(* on failure, print the one-line reproducer before the alcotest report:
   rerunning with the failing seed as the base checks it first *)
let with_repro ~suite seed f =
  try f ()
  with e ->
    Printf.eprintf
      "\nreproduce: dune exec test/main.exe -- test %s --seed %d\n%!" suite seed;
    raise e

let test_random_sim () =
  for k = 0 to 24 do
    let seed = !base_seed + k in
    with_repro ~suite:"image" seed (fun () -> check_sim_seed seed)
  done

let test_random_parallel () =
  List.iter
    (fun off ->
      let seed = !base_seed + off in
      with_repro ~suite:"image" seed (fun () ->
          let src = gen_program seed in
          let plan () = Helpers.plan_of ~mode:Mode.Hardened src in
          let w_vals, _, _, w_globals = run_sim Exec.Walk (plan ()) in
          List.iter
            (fun engine ->
              let p_vals, p_globals = run_par engine (plan ()) in
              let tag = "parallel/" ^ Exec.engine_name engine in
              Alcotest.(check (list string)) (tag ^ ": values") w_vals p_vals;
              Alcotest.(check (list (pair string int64)))
                (tag ^ ": globals") w_globals p_globals)
            [ Exec.Walk; Exec.Image ]))
    [ 1; 8; 16 ]

(* ------------------------------------------------------------------ *)
(* Phi missing-predecessor: Verify rule and the execution trap         *)
(* ------------------------------------------------------------------ *)

(* a diamond whose join phi only covers the [a] arm; [extra] appends
   additional phi entries (to build the mentions-non-predecessor case) *)
let partial_phi_module ?(extra = []) () =
  let m = Pmodule.create () in
  let f = Func.make ~name:"f" ~params:[ ("c", Ty.i1) ] ~ret:Ty.i64 () in
  let b = Builder.create m f in
  let la = Builder.block b "a" in
  let lb = Builder.block b "b" in
  let lj = Builder.block b "join" in
  Builder.condbr b (Value.reg 0) la lb;
  Builder.position b la;
  let va = Builder.binop b Instr.Add Ty.i64 (Value.int_ 1L) (Value.int_ 2L) in
  Builder.br b lj;
  Builder.position b lb;
  let _vb =
    Builder.binop b Instr.Add Ty.i64 (Value.int_ 10L) (Value.int_ 20L)
  in
  Builder.br b lj;
  Builder.position b lj;
  let p = Builder.phi b Ty.i64 ((la, va) :: extra) in
  Builder.ret b (Some p);
  (m, f, la, lb, lj)

let test_verify_rejects_partial_phi () =
  let m, f, _, lb, lj = partial_phi_module () in
  (match Verify.check_module m with
  | Ok () -> Alcotest.fail "Verify accepted a phi missing a predecessor"
  | Error errs ->
    Alcotest.(check bool)
      "misses-predecessor reported" true
      (List.exists
         (fun e ->
           Helpers.contains e
             (sp "phi in %%%s misses predecessor %%%s" lj lb))
         errs));
  ignore f;
  (* and the dual rule: an entry for a block that is not a predecessor *)
  let m, _, _, _, lj =
    partial_phi_module ~extra:[ ("entry", Value.int_ 0L) ] ()
  in
  match Verify.check_module m with
  | Ok () -> Alcotest.fail "Verify accepted a phi with a non-predecessor"
  | Error errs ->
    Alcotest.(check bool)
      "non-predecessor reported" true
      (List.exists
         (fun e ->
           Helpers.contains e
             (sp "phi in %%%s mentions non-predecessor %%entry" lj))
         errs)

(* run the partial-phi function on a raw executor under one engine *)
let run_partial_phi ~engine cond =
  let m, f, _, _, _ = partial_phi_module () in
  let machine = Privagic_sgx.Machine.create Privagic_sgx.Config.machine_test in
  let heap = Heap.create () in
  let layout = Layout.create m Mode.Relaxed in
  let hooks : Exec.hooks =
    {
      Exec.h_call =
        (fun ex _ callee args ->
          Exec.exec_func ex (Pmodule.find_func_exn m callee) args);
      h_callind =
        (fun ex _ fv args ->
          Exec.exec_func ex
            (Pmodule.find_func_exn m (Exec.resolve_func ex fv))
            args);
      h_spawn = (fun _ _ _ _ -> ());
      h_pre_instr = (fun _ _ -> ());
      h_alloca_zone = (fun _ _ -> Heap.Unsafe);
    }
  in
  let ex = Exec.create m heap layout machine hooks in
  Exec.init_globals ex (fun _ -> Heap.Unsafe);
  (match engine with
  | Exec.Walk -> ()
  | Exec.Image -> Image.install ex (Image.build ex));
  Exec.exec_func ex f [| Rvalue.Int (if cond then 1L else 0L) |]

let test_partial_phi_trap () =
  let _, f, _, lb, lj = partial_phi_module () in
  let expected =
    sp "phi in %%%s of @%s has no entry for predecessor %%%s" lj
      f.Func.name lb
  in
  List.iter
    (fun engine ->
      let tag = Exec.engine_name engine in
      (* the covered edge still runs *)
      Alcotest.(check int64)
        (tag ^ ": covered edge value") 3L
        (Rvalue.to_int64 (run_partial_phi ~engine true));
      (* the missing edge traps, with the same message on both engines *)
      match run_partial_phi ~engine false with
      | _ -> Alcotest.fail (tag ^ ": expected a trap on the missing edge")
      | exception Exec.Trap msg ->
        Alcotest.(check string) (tag ^ ": trap message") expected msg)
    [ Exec.Walk; Exec.Image ]

let suite =
  [
    Alcotest.test_case "random programs: walk vs image (sim)" `Quick
      test_random_sim;
    Alcotest.test_case "random programs: walk vs image (parallel)" `Quick
      test_random_parallel;
    Alcotest.test_case "verify rejects partial phi" `Quick
      test_verify_rejects_partial_phi;
    Alcotest.test_case "partial phi traps identically" `Quick
      test_partial_phi_trap;
  ]
