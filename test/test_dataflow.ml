(* The Fig. 3 motivation experiment: sequential data-flow analysis vs the
   interleaving oracle vs the secure type system. *)

module Taint = Privagic_dataflow.Taint
module Interleave = Privagic_dataflow.Interleave
module P = Privagic_workloads.Programs
open Privagic_secure

let test_taint_sequential_result () =
  let m = Helpers.compile P.fig3_dataflow in
  let r = Taint.analyze m in
  Alcotest.(check (list string)) "only a is protected" [ "a" ]
    (Taint.protected_locations r);
  Alcotest.(check bool) "b left unprotected" true (Taint.leaks_to r "b")

let test_taint_direct_flow () =
  (* sequential flows are found *)
  let src =
    {|
int color(blue) s;
int sink1;
int sink2;
entry void f() {
  sink1 = s;
  int x = sink1 + 1;
  sink2 = x;
}
|}
  in
  let m = Helpers.compile src in
  let r = Taint.analyze m in
  let p = Taint.protected_locations r in
  Alcotest.(check bool) "sink1 tainted" true (List.mem "sink1" p);
  Alcotest.(check bool) "sink2 tainted" true (List.mem "sink2" p)

let test_taint_through_pointer () =
  let src =
    {|
int color(blue) s;
int a;
int* p;
entry void f() {
  p = &a;
  *p = s;
}
|}
  in
  let m = Helpers.compile src in
  let r = Taint.analyze m in
  Alcotest.(check bool) "a tainted through pointer" true
    (List.mem "a" (Taint.protected_locations r))

let test_interleavings_expose_leak () =
  let m = Helpers.compile P.fig3_dataflow in
  let outcomes = Interleave.explore m ~entry:"main" ~max_offset:20 in
  Alcotest.(check bool) "several distinct outcomes" true
    (List.length outcomes >= 2);
  let leak =
    List.exists
      (fun oc -> Interleave.global_value oc "b" = Some 4242L)
      outcomes
  in
  let safe =
    List.exists
      (fun oc -> Interleave.global_value oc "a" = Some 4242L)
      outcomes
  in
  Alcotest.(check bool) "a leaking schedule exists" true leak;
  Alcotest.(check bool) "a safe schedule exists" true safe

let test_interleave_deterministic () =
  let m = Helpers.compile P.fig3_dataflow in
  let o1 = Interleave.run m ~entry:"main" ~offsets:[ 0.0; 0.5 ] in
  let o2 = Interleave.run m ~entry:"main" ~offsets:[ 0.0; 0.5 ] in
  Alcotest.(check bool) "same schedule, same outcome" true
    (o1.Interleave.globals = o2.Interleave.globals)

let test_secure_typing_catches_statically () =
  let ds = Helpers.diagnostics ~mode:Mode.Relaxed P.fig3_secure in
  Alcotest.(check bool) "rejected" true (ds <> [])

let test_full_experiment () =
  let o = Privagic_harness.Fig3.run () in
  Alcotest.(check bool) "dataflow misses b" true
    (not (List.mem "b" o.Privagic_harness.Fig3.tainted));
  Alcotest.(check bool) "oracle finds the leak" true
    o.Privagic_harness.Fig3.leak_found;
  Alcotest.(check bool) "secure typing rejects" true
    o.Privagic_harness.Fig3.secure_typing_rejects

(* --- corner cases of the sequential baseline (reused by the robust
   suite's monitor as the static side of the comparison) --- *)

(* a phi joining a secret-colored operand with a public one: the join
   must keep the taint, so the sink global lands in the partition *)
let test_taint_phi_mixed_colors () =
  let src =
    {|
int color(blue) s;
int sink;
entry void f(int c) {
  int x = 0;
  if (c > 0) { x = s; } else { x = 1; }
  sink = x;
}
|}
  in
  let r = Taint.analyze (Helpers.compile src) in
  Alcotest.(check bool) "phi join keeps taint" true
    (List.mem "sink" (Taint.protected_locations r))

(* an alias derived by gep arithmetic: a store through a field pointer
   taints the root object, and a load back through another gep of the
   same root carries it on *)
let test_taint_gep_alias () =
  let src =
    {|
int color(blue) s;
struct pair_ { int a; int b; };
struct pair_ g;
int sink;
entry void f() {
  g.b = s;
  sink = g.b;
}
|}
  in
  let r = Taint.analyze (Helpers.compile src) in
  let p = Taint.protected_locations r in
  Alcotest.(check bool) "gep store taints the root" true (List.mem "g" p);
  Alcotest.(check bool) "gep load carries it to the sink" true
    (List.mem "sink" p)

(* taint through a call-site argument: the callee is analyzed per call
   site conservatively — a tainted argument taints the result *)
let test_taint_call_argument () =
  let src =
    {|
int color(blue) s;
int sink;
int id(int x) { return x; }
entry void f() {
  sink = id(s);
}
|}
  in
  let r = Taint.analyze (Helpers.compile src) in
  Alcotest.(check bool) "call result tainted by its argument" true
    (List.mem "sink" (Taint.protected_locations r))

let suite =
  [
    Alcotest.test_case "sequential taint result" `Quick test_taint_sequential_result;
    Alcotest.test_case "phi join of mixed colors" `Quick
      test_taint_phi_mixed_colors;
    Alcotest.test_case "gep-derived alias" `Quick test_taint_gep_alias;
    Alcotest.test_case "taint through call argument" `Quick
      test_taint_call_argument;
    Alcotest.test_case "direct flows found" `Quick test_taint_direct_flow;
    Alcotest.test_case "pointer flows found" `Quick test_taint_through_pointer;
    Alcotest.test_case "interleavings expose leak" `Quick
      test_interleavings_expose_leak;
    Alcotest.test_case "interleave deterministic" `Quick
      test_interleave_deterministic;
    Alcotest.test_case "secure typing static" `Quick
      test_secure_typing_catches_statically;
    Alcotest.test_case "full fig3 experiment" `Quick test_full_experiment;
  ]
