(* The observability layer (DESIGN.md §8.12): event-ring wraparound and
   deterministic merge, concurrent ring writers on real domains, the
   zero-allocation record path, lane phase-accounting arithmetic, the
   registry's Prometheus exposition grammar, and the 'stats metrics'
   protocol verb. *)

module Obs = Privagic_obs
module Ring = Privagic_obs.Ring
module Lane = Privagic_obs.Lane
module Phase = Privagic_obs.Phase
module Registry = Privagic_obs.Registry
module Protocol = Privagic_server.Protocol
module Metrics = Privagic_telemetry.Metrics

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let check_contains what needle hay =
  if not (contains ~needle hay) then
    Alcotest.failf "%s: expected %S in:\n%s" what needle hay

(* --- ring: overwrite-oldest wraparound --- *)

let test_ring_wraparound () =
  let r = Ring.create ~cap:8 ~id:3 ~label:"w" () in
  Alcotest.(check int) "capacity" 8 (Ring.capacity r);
  for i = 0 to 19 do
    Ring.record r ~code:1 ~arg:i ~t_us:(100 + i)
  done;
  Alcotest.(check int) "total" 20 (Ring.total r);
  Alcotest.(check int) "length" 8 (Ring.length r);
  Alcotest.(check int) "dropped" 12 (Ring.dropped r);
  let evs = Ring.to_events r in
  Alcotest.(check int) "surviving" 8 (Array.length evs);
  Array.iteri
    (fun k e ->
      Alcotest.(check int) "oldest-first arg" (12 + k) e.Ring.ev_arg;
      Alcotest.(check int) "seq" (12 + k) e.Ring.ev_seq;
      Alcotest.(check int) "ts" (112 + k) e.Ring.ev_t_us)
    evs

let test_ring_cap_rounding () =
  let r = Ring.create ~cap:5 ~id:0 ~label:"r" () in
  Alcotest.(check int) "5 -> 8" 8 (Ring.capacity r);
  let r = Ring.create ~cap:1 ~id:0 ~label:"r" () in
  Alcotest.(check int) "1 -> 2" 2 (Ring.capacity r)

(* --- ring: concurrent writers, deterministic post-merge order --- *)

let test_concurrent_merge () =
  let n = 1000 in
  let mk id = Ring.create ~cap:2048 ~id ~label:(string_of_int id) () in
  let rings = [ mk 0; mk 1; mk 2 ] in
  let doms =
    List.map
      (fun r ->
        Domain.spawn (fun () ->
            (* deliberately colliding timestamps across rings: the
               (ring, seq) tiebreak must make the merge total *)
            for i = 0 to n - 1 do
              Ring.record r ~code:2 ~arg:(Ring.id r) ~t_us:i
            done))
      rings
  in
  List.iter Domain.join doms;
  let a = Ring.merge rings in
  let b = Ring.merge rings in
  let c = Ring.merge [ List.nth rings 2; List.nth rings 0; List.nth rings 1 ] in
  Alcotest.(check int) "all events survive" (3 * n) (Array.length a);
  Alcotest.(check bool) "merge is reproducible" true (a = b);
  Alcotest.(check bool) "merge is input-order independent" true (a = c);
  Array.iteri
    (fun k e ->
      if k > 0 then begin
        let p = a.(k - 1) in
        let ordered =
          p.Ring.ev_t_us < e.Ring.ev_t_us
          || (p.Ring.ev_t_us = e.Ring.ev_t_us
             && (p.Ring.ev_ring < e.Ring.ev_ring
                || (p.Ring.ev_ring = e.Ring.ev_ring
                   && p.Ring.ev_seq < e.Ring.ev_seq)))
        in
        if not ordered then
          Alcotest.failf "merge not strictly ordered at %d" k
      end)
    a

(* --- ring: zero allocation on the record path --- *)

let test_zero_alloc_record () =
  let minor_words_for n =
    let r = Ring.create ~cap:64 ~id:9 ~label:"z" () in
    Ring.record r ~code:0 ~arg:0 ~t_us:0;
    let w0 = Gc.minor_words () in
    for i = 1 to n do
      Ring.record r ~code:1 ~arg:i ~t_us:i
    done;
    Gc.minor_words () -. w0
  in
  (* both measurements carry the same constant harness cost (the boxed
     floats of Gc.minor_words itself); any per-record allocation would
     make the 50x loop strictly larger *)
  let small = minor_words_for 1_000 in
  let large = minor_words_for 50_000 in
  Alcotest.(check (float 0.0)) "per-record allocation is zero" small large

(* --- lane: phase accounting arithmetic --- *)

let test_lane_accounting () =
  let l = Lane.create ~id:7 ~label:"d0/blue" ~now_us:0 () in
  Alcotest.(check int) "starts in queue-wait"
    (Phase.index Phase.Queue_wait) (Lane.current l);
  Lane.enter l Phase.Run ~now_us:100;
  Lane.enter l Phase.Run ~now_us:120 (* same phase: no-op *);
  Lane.enter l Phase.Queue_wait ~now_us:250;
  Lane.enter l Phase.Park ~now_us:400;
  let b = Lane.snapshot l ~now_us:1000 in
  Alcotest.(check int) "wall" 1000 b.Lane.b_wall_us;
  Alcotest.(check string) "label" "d0/blue" b.Lane.b_label;
  let us p = b.Lane.b_phase_us.(Phase.index p) in
  Alcotest.(check int) "run" 150 (us Phase.Run);
  Alcotest.(check int) "queue-wait" 250 (us Phase.Queue_wait);
  Alcotest.(check int) "park (open tail closed)" 600 (us Phase.Park);
  Alcotest.(check int) "pump-wait" 0 (us Phase.Pump_wait);
  Alcotest.(check int) "barrier" 0 (us Phase.Barrier);
  Alcotest.(check (float 1e-9)) "coverage" 1.0 (Lane.coverage b);
  Alcotest.(check string) "dominant stall" "park"
    (Phase.name (Lane.dominant_stall b));
  (* the three transitions each dropped a phase-entry event *)
  Alcotest.(check int) "ring events" 3 (Ring.total (Lane.ring l))

(* --- registry: exposition grammar --- *)

let test_registry_exposition () =
  let reg = Registry.create () in
  let c =
    Registry.counter reg
      ~labels:[ ("op", "get") ]
      ~help:"Requests served" "test_ops_total"
  in
  for _ = 1 to 7 do
    Atomic.incr c
  done;
  Registry.gauge reg ~help:"Queue depth" "test_depth" (fun () -> 3.5);
  Registry.multi_gauge reg ~help:"Per-lane series" "test_lane" (fun () ->
      [ ([ ("lane", "0") ], 1.0); ([ ("lane", "1") ], 2.0) ]);
  Registry.summary reg ~help:"Latency" "test_lat" (fun () ->
      {
        Metrics.n = 4;
        p_mean = 2.5;
        p50 = 2.0;
        p95 = 4.0;
        p99 = 4.0;
        p999 = 4.0;
        p_max = 4.0;
      });
  let text = Registry.expose reg in
  check_contains "counter type" "# TYPE test_ops_total counter" text;
  check_contains "counter sample" "test_ops_total{op=\"get\"} 7" text;
  check_contains "gauge type" "# TYPE test_depth gauge" text;
  check_contains "gauge sample" "test_depth 3.5" text;
  check_contains "multi type" "# TYPE test_lane gauge" text;
  check_contains "multi sample 0" "test_lane{lane=\"0\"} 1" text;
  check_contains "multi sample 1" "test_lane{lane=\"1\"} 2" text;
  check_contains "summary type" "# TYPE test_lat summary" text;
  check_contains "p999 quantile" "test_lat{quantile=\"0.999\"} 4" text;
  check_contains "max quantile" "test_lat{quantile=\"1\"} 4" text;
  check_contains "sum" "test_lat_sum 10" text;
  check_contains "count" "test_lat_count 4" text;
  (* idempotent counter registration returns the same atomic *)
  let c' =
    Registry.counter reg
      ~labels:[ ("op", "get") ]
      ~help:"Requests served" "test_ops_total"
  in
  Alcotest.(check bool) "same counter" true (c == c')

let test_registry_label_escaping () =
  let reg = Registry.create () in
  Registry.gauge reg
    ~labels:[ ("k", "a\"b\\c\nd") ]
    ~help:"" "test_esc" (fun () -> 1.0);
  check_contains "escaped label" "test_esc{k=\"a\\\"b\\\\c\\nd\"} 1"
    (Registry.expose reg)

(* --- metrics: the latency quartet gained p99.9 and max --- *)

let test_pctiles_p999 () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" in
  for i = 1 to 1000 do
    Metrics.observe h (float_of_int i)
  done;
  let p = Metrics.pctiles h in
  Alcotest.(check int) "n" 1000 p.Metrics.n;
  Alcotest.(check (float 1e-9)) "max is exact" 1000.0 p.Metrics.p_max;
  let ordered =
    p.Metrics.p50 <= p.Metrics.p95
    && p.Metrics.p95 <= p.Metrics.p99
    && p.Metrics.p99 <= p.Metrics.p999
    && p.Metrics.p999 <= p.Metrics.p_max
  in
  Alcotest.(check bool) "p50 <= p95 <= p99 <= p99.9 <= max" true ordered

(* --- protocol: the stats-metrics verb --- *)

let test_protocol_stats_metrics () =
  let rd = Protocol.reader () in
  let s = Bytes.of_string "stats metrics\r\n" in
  (match Protocol.feed rd s (Bytes.length s) with
  | [ `Req Protocol.Stats_metrics ] -> ()
  | _ -> Alcotest.fail "expected Stats_metrics");
  Alcotest.(check string) "round-trips" "stats metrics\r\n"
    (Protocol.render_request Protocol.Stats_metrics);
  let out = Protocol.render (Protocol.Metrics_reply "a 1\nb 2\n") in
  Alcotest.(check string) "exposition + END" "a 1\nb 2\nEND\r\n" out;
  Alcotest.(check string) "trailing newline is normalized" "a 1\nEND\r\n"
    (Protocol.render (Protocol.Metrics_reply "a 1"))

let suite =
  [
    Alcotest.test_case "ring wraparound overwrites oldest" `Quick
      test_ring_wraparound;
    Alcotest.test_case "ring capacity rounds to pow2" `Quick
      test_ring_cap_rounding;
    Alcotest.test_case "concurrent writers merge deterministically" `Quick
      test_concurrent_merge;
    Alcotest.test_case "record path allocates nothing" `Quick
      test_zero_alloc_record;
    Alcotest.test_case "lane phase accounting" `Quick test_lane_accounting;
    Alcotest.test_case "registry exposition grammar" `Quick
      test_registry_exposition;
    Alcotest.test_case "registry label escaping" `Quick
      test_registry_label_escaping;
    Alcotest.test_case "pctiles p99.9/max" `Quick test_pctiles_p999;
    Alcotest.test_case "protocol stats metrics" `Quick
      test_protocol_stats_metrics;
  ]
