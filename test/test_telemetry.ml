(* The telemetry subsystem: recorder ring buffer, metrics, the Chrome
   trace sink, the critical-path analyzer, and the cross-layer wiring
   through the partitioned interpreter.

   The two load-bearing properties:
   - the critical path tiles [0, makespan] exactly, so its segment lengths
     sum to [Sched.max_clock] (checked on fig6 and under random op
     sequences against a partitioned hashmap);
   - the Chrome trace of a two-enclave program is deterministic
     (golden-file comparison) and valid JSON (a real parser, not a
     substring check). *)

module Tel = Privagic_telemetry
module Vclock = Privagic_runtime.Vclock
module Sched = Privagic_runtime.Sched
module Msqueue = Privagic_runtime.Msqueue
module P = Privagic_workloads.Programs
module Sgx = Privagic_sgx
open Privagic_secure
open Privagic_vm

(* --- recorder --- *)

let test_recorder_disabled () =
  Alcotest.(check bool) "null disabled" false (Tel.Recorder.enabled Tel.Recorder.null);
  Tel.Recorder.record Tel.Recorder.null ~at:1.0 ~track:0 Tel.Event.Barrier;
  Alcotest.(check int) "null records nothing" 0
    (Tel.Recorder.length Tel.Recorder.null);
  let r = Tel.Recorder.create ~capacity:8 () in
  Tel.Recorder.set_enabled r false;
  Tel.Recorder.record r ~at:1.0 ~track:0 Tel.Event.Barrier;
  Alcotest.(check int) "disabled records nothing" 0 (Tel.Recorder.length r)

let test_recorder_ring_wrap () =
  let r = Tel.Recorder.create ~capacity:4 () in
  for i = 0 to 9 do
    Tel.Recorder.record r ~at:(float_of_int i) ~track:i Tel.Event.Barrier
  done;
  Alcotest.(check int) "capacity retained" 4 (Tel.Recorder.length r);
  Alcotest.(check int) "dropped counted" 6 (Tel.Recorder.dropped r);
  let evs = Tel.Recorder.events r in
  Alcotest.(check (list int)) "oldest evicted, order kept" [ 6; 7; 8; 9 ]
    (Array.to_list (Array.map (fun (e : Tel.Event.t) -> e.Tel.Event.track) evs))

let test_recorder_tracks_and_flows () =
  let r = Tel.Recorder.create ~capacity:16 () in
  let a = Tel.Recorder.fresh_track r "alpha" in
  let b = Tel.Recorder.fresh_track r "beta" in
  Alcotest.(check bool) "distinct tracks" true (a <> b);
  Alcotest.(check string) "name kept" "alpha" (Tel.Recorder.track_name r a);
  let f1 = Tel.Recorder.fresh_flow r in
  let f2 = Tel.Recorder.fresh_flow r in
  Alcotest.(check bool) "flows distinct" true (f1 <> f2);
  Tel.Recorder.record r ~at:5.0 ~track:a Tel.Event.Ecall;
  Tel.Recorder.clear r;
  Alcotest.(check int) "clear empties events" 0 (Tel.Recorder.length r);
  Alcotest.(check bool) "flow ids survive clear" true
    (Tel.Recorder.fresh_flow r > f2);
  Alcotest.(check string) "tracks survive clear" "beta"
    (Tel.Recorder.track_name r b)

(* --- metrics --- *)

let test_metrics_histogram () =
  let m = Tel.Metrics.create () in
  let h = Tel.Metrics.histogram m "lat" in
  List.iter (Tel.Metrics.observe h) [ 1.0; 2.0; 4.0; 8.0; 1024.0 ];
  Alcotest.(check int) "count" 5 h.Tel.Metrics.h_count;
  Alcotest.(check (float 0.001)) "mean" 207.8 (Tel.Metrics.mean h);
  let p50 = Tel.Metrics.percentile h 0.5 in
  Alcotest.(check bool) "p50 in the middle decade" true
    (p50 >= 1.0 && p50 <= 8.0);
  Alcotest.(check (float 0.001)) "p100 clamps to max" 1024.0
    (Tel.Metrics.percentile h 1.0);
  Alcotest.(check (float 0.001)) "p0 clamps to min" 1.0
    (Tel.Metrics.percentile h 0.0);
  let c = Tel.Metrics.counter m "n" in
  Tel.Metrics.incr c;
  Tel.Metrics.incr ~by:4 c;
  Alcotest.(check int) "counter" 5 c.Tel.Metrics.count

(* --- a tiny JSON validator (no json library in the tree) --- *)

exception Bad_json of string

let validate_json (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal w =
    String.iter expect w
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> string_lit ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "value"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then advance ()
    else begin
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> advance (); members ()
        | Some '}' -> advance ()
        | _ -> fail "object"
      in
      members ()
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then advance ()
    else begin
      let rec elems () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' -> advance (); elems ()
        | Some ']' -> advance ()
        | _ -> fail "array"
      in
      elems ()
    end
  and string_lit () =
    expect '"';
    let rec go () =
      match peek () with
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
          advance (); go ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail "unicode escape"
          done;
          go ()
        | _ -> fail "escape")
      | Some c when Char.code c >= 0x20 -> advance (); go ()
      | _ -> fail "string"
    in
    go ()
  and number () =
    let num_char = function
      | '-' | '+' | '.' | 'e' | 'E' | '0' .. '9' -> true
      | _ -> false
    in
    let rec go () =
      match peek () with Some c when num_char c -> advance (); go () | _ -> ()
    in
    go ()
  in
  value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

(* --- the partitioned fig6 run: trace + critical path --- *)

let fig6_recorder () =
  let pt = Helpers.pinterp ~mode:Mode.Relaxed P.fig6 in
  let r = Tel.Recorder.create () in
  Pinterp.set_telemetry pt r;
  let res = Pinterp.call_entry pt "main" [] in
  (pt, r, res)

let test_chrome_trace_valid_json () =
  let _, r, _ = fig6_recorder () in
  let json = Tel.Chrome_trace.of_recorder r in
  (match validate_json json with
  | () -> ()
  | exception Bad_json msg -> Alcotest.failf "invalid JSON: %s" msg);
  Alcotest.(check bool) "has traceEvents" true
    (Helpers.contains json "\"traceEvents\"");
  (* one thread_name metadata record per worker: U, blue, red *)
  let count_sub needle hay =
    let ln = String.length needle and lh = String.length hay in
    let c = ref 0 in
    for i = 0 to lh - ln do
      if String.sub hay i ln = needle then incr c
    done;
    !c
  in
  Alcotest.(check int) "one track per worker" 3
    (count_sub "\"thread_name\"" json);
  Alcotest.(check bool) "has flow starts" true
    (Helpers.contains json "\"ph\":\"s\"");
  Alcotest.(check bool) "has flow finishes" true
    (Helpers.contains json "\"ph\":\"f\"");
  Alcotest.(check bool) "has chunk spans" true
    (Helpers.contains json "\"ph\":\"B\"")

let test_chrome_trace_golden () =
  (* the virtual-time execution is deterministic, so the exported trace of
     the two-enclave fig6 program is byte-stable *)
  let _, r, _ = fig6_recorder () in
  let json = Tel.Chrome_trace.of_recorder r in
  (* found in the sandbox under [dune runtest], in test/ under [dune exec]
     from the repo root *)
  let golden_file =
    List.find Sys.file_exists
      [ "golden_fig6_trace.json"; "test/golden_fig6_trace.json" ]
  in
  let ic = open_in golden_file in
  let golden = really_input_string ic (in_channel_length ic) in
  close_in ic;
  if String.trim json <> String.trim golden then begin
    let oc = open_out (golden_file ^ ".actual") in
    output_string oc json;
    close_out oc;
    Alcotest.failf
      "trace deviates from %s (actual written next to it; promote it if \
       the change is intended)"
      golden_file
  end

let test_critical_path_fig6 () =
  let pt, r, res = fig6_recorder () in
  let cp = Tel.Critical_path.analyze (Tel.Recorder.events r) in
  let makespan = Sched.max_clock pt.Pinterp.sched in
  Alcotest.(check bool) "walk complete" true cp.Tel.Critical_path.cp_complete;
  Alcotest.(check (float 0.001)) "path total = scheduler makespan" makespan
    (Tel.Critical_path.total cp);
  Alcotest.(check (float 0.001)) "analyzer makespan agrees" makespan
    cp.Tel.Critical_path.cp_makespan;
  Alcotest.(check (float 0.001)) "request latency is the makespan"
    makespan res.Pinterp.completed_at;
  (* the three-partition program has cross-partition hops on the path *)
  Alcotest.(check bool) "more than one worker on the path" true
    (List.length cp.Tel.Critical_path.cp_by_track > 1)

(* property: for any op sequence against the partitioned hashmap, the
   critical path tiles [0, makespan] and sums to Sched.max_clock *)
let hashmap_plan =
  lazy
    (Helpers.plan_of ~mode:Mode.Hardened
       (P.hashmap ~nbuckets:16 ~vsize:32 `Colored))

let prop_critical_path_tiles =
  QCheck.Test.make ~count:20 ~name:"critical path sums to Sched.max_clock"
    QCheck.(list_of_size Gen.(1 -- 12) (pair bool (int_bound 31)))
    (fun ops ->
      let pt =
        Pinterp.create ~config:Sgx.Config.machine_test (Lazy.force hashmap_plan)
      in
      let r = Tel.Recorder.create () in
      Pinterp.set_telemetry pt r;
      let vbuf = Heap.alloc pt.Pinterp.exec.Exec.heap Heap.Unsafe 64 in
      List.iter
        (fun (is_put, k) ->
          let entry = if is_put then "hm_put" else "hm_get" in
          ignore
            (Pinterp.call_entry pt entry
               [ Helpers.rvalue_int k; Rvalue.Ptr vbuf ]))
        ops;
      let cp = Tel.Critical_path.analyze (Tel.Recorder.events r) in
      let makespan = Sched.max_clock pt.Pinterp.sched in
      cp.Tel.Critical_path.cp_complete
      && Float.abs (Tel.Critical_path.total cp -. makespan) <= 1e-3
      && Float.abs (cp.Tel.Critical_path.cp_makespan -. makespan) <= 1e-3)

(* --- msqueue under adversarial scheduler interleavings --- *)

(* Each generated case is a set of fibers with per-op virtual delays; the
   deterministic scheduler turns the delays into an interleaving (ties
   broken by spawn order, so every seed is reproducible). Because fibers
   are cooperative, the queue must agree with a functional FIFO model at
   every step of the interleaved history. *)
let prop_queue_linearizable =
  let case =
    QCheck.(
      list_of_size Gen.(1 -- 4)
        (list_of_size Gen.(0 -- 8) (pair (int_bound 50) bool)))
  in
  QCheck.Test.make ~count:100
    ~name:"msqueue FIFO under adversarial interleavings" case
    (fun fibers ->
      let q = Msqueue.create () in
      let model = Queue.create () in
      let ok = ref true in
      let sched = Sched.create () in
      let next_val = ref 0 in
      List.iteri
        (fun i ops ->
          ignore
            (Sched.spawn sched ~name:(Printf.sprintf "fiber-%d" i)
               ~at:(float_of_int (i mod 2))
               (fun clock ->
                 List.iter
                   (fun (delay, is_push) ->
                     (* the delay schedules this op among the other
                        fibers' ops: the adversarial interleaving *)
                     Vclock.add clock (float_of_int delay);
                     Sched.block (fun () -> true) (fun () -> (Vclock.get clock));
                     if is_push then begin
                       let v = !next_val in
                       incr next_val;
                       Msqueue.push q v;
                       Queue.push v model
                     end
                     else begin
                       let expected =
                         if Queue.is_empty model then None
                         else Some (Queue.pop model)
                       in
                       if Msqueue.pop q <> expected then ok := false
                     end)
                   ops)))
        fibers;
      (match Sched.run sched with
      | Sched.Completed -> ()
      | _ -> ok := false);
      !ok && Msqueue.length q = Queue.length model)

(* --- summary sink --- *)

let test_summary_fig6 () =
  let _, r, _ = fig6_recorder () in
  let s = Tel.Summary.of_recorder r in
  Alcotest.(check int) "no events dropped" 0 s.Tel.Summary.dropped;
  Alcotest.(check bool) "events recorded" true (s.Tel.Summary.event_count > 0);
  let messages =
    Tel.Metrics.fold_counters s.Tel.Summary.metrics
      (fun acc c ->
        if c.Tel.Metrics.c_name = "messages" then c.Tel.Metrics.count else acc)
      0
  in
  Alcotest.(check bool) "cross-partition messages counted" true (messages > 0);
  List.iter
    (fun (_, f) ->
      Alcotest.(check bool) "occupancy within [0, 1]" true
        (f >= 0.0 && f <= 1.0 +. 1e-9))
    s.Tel.Summary.occupancy

(* telemetry detached: the same run records nothing and costs no events *)
let test_disabled_records_nothing () =
  let pt = Helpers.pinterp ~mode:Mode.Relaxed P.fig6 in
  let r = Tel.Recorder.create () in
  Tel.Recorder.set_enabled r false;
  Pinterp.set_telemetry pt r;
  let res = Pinterp.call_entry pt "main" [] in
  Alcotest.(check int) "nothing recorded" 0 (Tel.Recorder.length r);
  (* and the virtual-time result is identical to an untraced run *)
  let pt' = Helpers.pinterp ~mode:Mode.Relaxed P.fig6 in
  let res' = Pinterp.call_entry pt' "main" [] in
  Alcotest.(check (float 0.001)) "identical virtual time"
    res'.Pinterp.latency_cycles res.Pinterp.latency_cycles

let suite =
  [
    Alcotest.test_case "recorder disabled" `Quick test_recorder_disabled;
    Alcotest.test_case "recorder ring wrap" `Quick test_recorder_ring_wrap;
    Alcotest.test_case "recorder tracks/flows" `Quick
      test_recorder_tracks_and_flows;
    Alcotest.test_case "metrics histogram" `Quick test_metrics_histogram;
    Alcotest.test_case "chrome trace valid json" `Quick
      test_chrome_trace_valid_json;
    Alcotest.test_case "chrome trace golden (two-enclave)" `Quick
      test_chrome_trace_golden;
    Alcotest.test_case "critical path fig6" `Quick test_critical_path_fig6;
    QCheck_alcotest.to_alcotest prop_critical_path_tiles;
    QCheck_alcotest.to_alcotest prop_queue_linearizable;
    Alcotest.test_case "summary fig6" `Quick test_summary_fig6;
    Alcotest.test_case "disabled records nothing" `Quick
      test_disabled_records_nothing;
  ]
