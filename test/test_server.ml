(* The serving layer: protocol parsing, differential socket-vs-direct
   execution on both backends, graceful drain without losing parsed
   requests, and load shedding at a tiny queue bound. *)

module Server = Privagic_server.Server
module Protocol = Privagic_server.Protocol
module Loadgen = Privagic_loadgen.Loadgen
module Parallel = Privagic_parallel.Parallel
module Programs = Privagic_workloads.Programs
open Privagic_vm

let vsize = 32
let capacity = 512

let plan () =
  let src = Programs.memcached ~nbuckets:64 ~vsize `Colored in
  let m = Privagic_minic.Driver.compile ~file:"memcached.mc" src in
  let infer = Privagic_secure.Infer.run ~mode:Privagic_secure.Mode.Hardened m in
  Alcotest.(check bool) "program accepted" true (Privagic_secure.Infer.ok infer);
  let plan = Privagic_partition.Plan.build ~mode:Privagic_secure.Mode.Hardened infer in
  Alcotest.(check bool) "plan ok" true (Privagic_partition.Plan.ok plan);
  plan

let store_of backend plan =
  match backend with
  | `Sim -> Server.store_of_pinterp (Pinterp.create plan)
  | `Parallel -> Server.store_of_parallel (Parallel.create ~lanes:2 plan)

let init_store store =
  match store.Server.st_call "mc_init" [ Rvalue.Int (Int64.of_int capacity) ] with
  | Ok _ -> ()
  | Error m -> Alcotest.failf "mc_init: %s" m

(* one initialized backend instance per shard *)
let stores_of backend plan ~shards =
  Array.init shards (fun _ ->
      let s = store_of backend plan in
      init_store s;
      s)

(* ------------------------------------------------------------------ *)
(* a minimal blocking socket client *)

type client = { fd : Unix.file_descr; rd : Protocol.resp_reader }

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.setsockopt fd Unix.TCP_NODELAY true;
  { fd; rd = Protocol.resp_reader () }

let send_all c s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      go (off + Unix.write c.fd b off (Bytes.length b - off))
  in
  go 0

(* Read until [n] responses arrived (or EOF / 10 s timeout). *)
let read_responses ?(timeout = 10.0) c n =
  let buf = Bytes.create 8192 in
  let deadline = Unix.gettimeofday () +. timeout in
  let acc = ref [] and count = ref 0 and eof = ref false in
  while (not !eof) && !count < n && Unix.gettimeofday () < deadline do
    match Unix.select [ c.fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.read c.fd buf 0 (Bytes.length buf) with
      | 0 -> eof := true
      | nread ->
        List.iter
          (fun r ->
            acc := r :: !acc;
            incr count)
          (Protocol.feed_resp c.rd buf nread))
  done;
  List.rev !acc

let request c req = send_all c (Protocol.render_request req)

let rpc c req =
  request c req;
  match read_responses c 1 with
  | [ r ] -> r
  | [] -> Alcotest.fail "no response"
  | _ -> Alcotest.fail "extra responses"

(* ------------------------------------------------------------------ *)

let test_protocol () =
  (* a request stream fed one byte at a time parses identically *)
  let stream = "set 7 5\r\nhello\r\nget 7\r\ndel 7\r\nstats\r\nbogus x\r\nquit\r\n" in
  let r = Protocol.reader () in
  let got = ref [] in
  String.iter
    (fun ch ->
      got := !got @ Protocol.feed r (Bytes.make 1 ch) 1)
    stream;
  (match !got with
  | [ `Req (Protocol.Set (7, "hello")); `Req (Protocol.Get 7);
      `Req (Protocol.Del 7); `Req Protocol.Stats; `Bad _;
      `Req Protocol.Quit ] -> ()
  | l -> Alcotest.failf "unexpected parse (%d items)" (List.length l));
  (* responses survive a render -> fragmented-parse roundtrip *)
  let resps =
    [ Protocol.Value (3, "abc"); Protocol.Miss; Protocol.Stored;
      Protocol.Deleted; Protocol.Not_found; Protocol.Busy;
      Protocol.Stats_reply [ ("a", "1"); ("b", "x y") ];
      Protocol.Error_msg "nope"; Protocol.Ok_msg ]
  in
  let wire = String.concat "" (List.map Protocol.render resps) in
  let pr = Protocol.resp_reader () in
  let parsed = ref [] in
  String.iter
    (fun ch -> parsed := !parsed @ Protocol.feed_resp pr (Bytes.make 1 ch) 1)
    wire;
  Alcotest.(check int) "all responses parsed" (List.length resps)
    (List.length !parsed);
  List.iter2
    (fun want got ->
      if want <> got then Alcotest.fail "response roundtrip mismatch")
    resps !parsed;
  (* oversized set is rejected without killing the parser *)
  let r2 = Protocol.reader () in
  let big = Printf.sprintf "set 1 %d\r\n" (Protocol.max_value_len + 1) in
  (match Protocol.feed r2 (Bytes.of_string big) (String.length big) with
  | [ `Bad _ ] -> ()
  | _ -> Alcotest.fail "oversized set not rejected");
  match Protocol.feed r2 (Bytes.of_string "get 1\r\n") 7 with
  | [ `Req (Protocol.Get 1) ] -> ()
  | _ -> Alcotest.fail "parser dead after oversized set"

(* Differential: the same operation sequence over a socket (server on
   backend A, possibly sharded) and directly against an unsharded
   instance (same backend); every observable response must agree —
   each key lives wholly in one shard, so sharding must be invisible. *)
let test_differential backend ~shards () =
  let bnd =
    match Server.bindings_of_plan (plan ()) with
    | Some b -> b
    | None -> Alcotest.fail "bindings_of_plan failed"
  in
  let cfg = { Server.default_config with Server.port = 0; shards; vsize } in
  let srv = Server.start cfg bnd (stores_of backend (plan ()) ~shards) in
  (* the direct side: a fresh instance of the same program *)
  let dstore = store_of backend (plan ()) in
  init_store dstore;
  let dvbuf = dstore.Server.st_alloc vsize
  and dobuf = dstore.Server.st_alloc vsize in
  let dlengths = Hashtbl.create 64 in
  let direct op =
    match op with
    | Protocol.Set (k, v) -> (
      dstore.Server.st_write dvbuf
        (v ^ String.make (vsize - String.length v) '\000');
      match
        dstore.Server.st_call "mc_set"
          [ Rvalue.Int (Int64.of_int k); Rvalue.Ptr dvbuf ]
      with
      | Ok _ ->
        Hashtbl.replace dlengths k (String.length v);
        Protocol.Stored
      | Error m -> Alcotest.failf "direct set: %s" m)
    | Protocol.Get k -> (
      match
        dstore.Server.st_call "mc_get"
          [ Rvalue.Int (Int64.of_int k); Rvalue.Ptr dobuf ]
      with
      | Ok v when Rvalue.truthy v ->
        let len = try Hashtbl.find dlengths k with Not_found -> vsize in
        Protocol.Value (k, dstore.Server.st_read dobuf len)
      | Ok _ -> Protocol.Miss
      | Error m -> Alcotest.failf "direct get: %s" m)
    | Protocol.Del k -> (
      match dstore.Server.st_call "mc_delete" [ Rvalue.Int (Int64.of_int k) ] with
      | Ok v when Rvalue.truthy v ->
        Hashtbl.remove dlengths k;
        Protocol.Deleted
      | Ok _ -> Protocol.Not_found
      | Error m -> Alcotest.failf "direct del: %s" m)
    | _ -> Alcotest.fail "direct: unsupported op"
  in
  let c = connect (Server.port srv) in
  (* a deterministic mixed sequence exercising hit/miss/del/overwrite *)
  let rng = Privagic_workloads.Ycsb.rng 7 in
  let ops =
    List.init 200 (fun i ->
        let k = Privagic_workloads.Ycsb.next_int rng 24 in
        match i mod 5 with
        | 0 | 3 ->
          Protocol.Set
            (k, Privagic_workloads.Ycsb.value_for ~size:(8 + (i mod 20)) k)
        | 1 | 2 -> Protocol.Get k
        | _ -> Protocol.Del k)
  in
  List.iteri
    (fun i op ->
      let got = rpc c op in
      let want = direct op in
      if got <> want then
        Alcotest.failf "op %d diverged: socket=%s direct=%s" i
          (Protocol.render got) (Protocol.render want))
    ops;
  (* stats must flow through the same connection unharmed *)
  (match rpc c Protocol.Stats with
  | Protocol.Stats_reply kvs ->
    Alcotest.(check bool) "stats has ops" true (List.mem_assoc "ops" kvs)
  | _ -> Alcotest.fail "stats failed");
  (match rpc c Protocol.Quit with
  | exception _ -> ()
  | _ -> Alcotest.fail "quit answered");
  Server.drain srv;
  dstore.Server.st_drain ()

(* Graceful drain: requests already parsed by the server are answered
   before the connection closes, even with the store slowed down and the
   queue bound at 1. With shards > 1 most of the burst crosses shards,
   so the drain barrier must also flush in-flight inbox handoffs. *)
let test_drain_no_loss ~shards () =
  let p = plan () in
  let slow_stores =
    Array.init shards (fun _ ->
        let inner = store_of `Sim p in
        init_store inner;
        { inner with
          Server.st_call =
            (fun name args ->
              Unix.sleepf 0.003;
              inner.Server.st_call name args) })
  in
  let bnd = Option.get (Server.bindings_of_plan p) in
  let cfg =
    { Server.default_config with
      Server.port = 0; shards; vsize; lanes = 1; queue_depth = 1;
      max_batch = 1; policy = Server.Block }
  in
  let srv = Server.start cfg bnd slow_stores in
  let c = connect (Server.port srv) in
  let n = 20 in
  let reqs = Buffer.create 256 in
  for k = 0 to n - 1 do
    Buffer.add_string reqs (Protocol.render_request (Protocol.Set (k, "v")))
  done;
  send_all c (Buffer.contents reqs);
  (* let the worker parse the burst, then drain mid-flight *)
  Unix.sleepf 0.2;
  let drainer = Thread.create (fun () -> Server.drain srv) () in
  let resps = read_responses c n in
  Thread.join drainer;
  Alcotest.(check int) "every parsed set answered" n (List.length resps);
  List.iter
    (fun r ->
      if r <> Protocol.Stored then Alcotest.fail "non-STORED under drain")
    resps;
  let s = Server.stats srv in
  Alcotest.(check int) "server counted them" n s.Server.s_sets

(* 'stats metrics' loopback: the Prometheus exposition must arrive over
   a plain socket, closed by END, carrying the serving/pool/vm/replication
   metric families — the same probe the CI serve smoke runs with nc. *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* Metrics_reply is deliberately not parsed by resp_reader: read the raw
   stream until the END line, like an external probe would. *)
let read_until_end ?(timeout = 10.0) c =
  let buf = Bytes.create 8192 in
  let acc = Buffer.create 4096 in
  let deadline = Unix.gettimeofday () +. timeout in
  let eof = ref false in
  while
    (not !eof)
    && (not (contains ~needle:"END\r\n" (Buffer.contents acc)))
    && Unix.gettimeofday () < deadline
  do
    match Unix.select [ c.fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.read c.fd buf 0 (Bytes.length buf) with
      | 0 -> eof := true
      | n -> Buffer.add_subbytes acc buf 0 n)
  done;
  Buffer.contents acc

let test_stats_metrics_loopback () =
  Privagic_obs.set_enabled true;
  let store = store_of `Parallel (plan ()) in
  init_store store;
  let bnd = Option.get (Server.bindings_of_plan (plan ())) in
  let srv =
    Server.start { Server.default_config with Server.port = 0; vsize } bnd
      [| store |]
  in
  let c = connect (Server.port srv) in
  (* a served op first, so op counters have something to show *)
  (match rpc c (Protocol.Set (1, "v")) with
  | Protocol.Stored -> ()
  | r -> Alcotest.failf "set: %s" (Protocol.render r));
  send_all c "stats metrics\r\n";
  let text = read_until_end c in
  List.iter
    (fun needle ->
      if not (contains ~needle text) then
        Alcotest.failf "metrics exposition missing %S in:\n%s" needle text)
    [
      "# TYPE privagic_server_ops_total";
      "privagic_server_ops_total{op=\"set\"} 1";
      "privagic_server_conns_open";
      "privagic_server_queue_depth{shard=";
      "# TYPE privagic_server_latency_us summary";
      "quantile=\"0.999\"";
      "privagic_repl_lag_us";
      "privagic_pool_lanes";
      "privagic_vm_steps_total";
      "privagic_lane_phase_us{lane=";
      "END\r\n";
    ];
  (* the connection must keep serving normal requests afterwards *)
  (match rpc c (Protocol.Get 1) with
  | Protocol.Value _ -> ()
  | r -> Alcotest.failf "get after metrics: %s" (Protocol.render r));
  Unix.close c.fd;
  Server.drain srv

(* Shedding: queue bound 1, one lane, slow store, several closed-loop
   clients — SERVER_BUSY must fire, and every shed op must succeed on
   retry (the load generator retries and demands zero errors). *)
let test_shedding () =
  let inner = store_of `Sim (plan ()) in
  init_store inner;
  let slow =
    { inner with
      Server.st_call =
        (fun name args ->
          Unix.sleepf 0.004;
          inner.Server.st_call name args) }
  in
  let bnd = Option.get (Server.bindings_of_plan (plan ())) in
  let cfg =
    { Server.default_config with
      Server.port = 0; vsize; lanes = 1; queue_depth = 1; max_batch = 1;
      policy = Server.Shed }
  in
  let srv = Server.start cfg bnd [| slow |] in
  let lg =
    { Loadgen.default_config with
      Loadgen.port = Server.port srv; clients = 6; ops = 150;
      record_count = 16; vsize = 8; preload = false; shutdown = false }
  in
  let r = Loadgen.run lg in
  Server.drain srv;
  Alcotest.(check int) "all ops eventually answered" 150 r.Loadgen.r_ops_ok;
  Alcotest.(check int) "no errors" 0 r.Loadgen.r_errors;
  Alcotest.(check bool)
    (Printf.sprintf "shedding fired (busy=%d)" r.Loadgen.r_busy)
    true (r.Loadgen.r_busy > 0);
  let s = Server.stats srv in
  Alcotest.(check bool) "server counted sheds" true (s.Server.s_shed > 0)

(* Pipelining: one connection, a single write carrying a long burst of
   interdependent requests (same-key read-after-write chains spread over
   every shard, plus multi-shard barriers: a cross-shard txn and a scan
   mid-burst). Responses must come back exactly in request order, and
   per-key program order must hold even though the keys' shards execute
   concurrently. *)
let test_pipelined_burst () =
  let shards = 4 in
  let bnd = Option.get (Server.bindings_of_plan (plan ())) in
  let cfg =
    { Server.default_config with Server.port = 0; shards; vsize }
  in
  let srv = Server.start cfg bnd (stores_of `Sim (plan ()) ~shards) in
  let c = connect (Server.port srv) in
  let reqs = ref [] and want = ref [] in
  let push req resp =
    reqs := req :: !reqs;
    want := resp :: !want
  in
  for k = 0 to 15 do
    (* k covers every shard (k mod 4); each key: set, overwrite, read *)
    push (Protocol.Set (k, Printf.sprintf "a%d" k)) Protocol.Stored;
    push (Protocol.Set (k, Printf.sprintf "b%d" k)) Protocol.Stored;
    push (Protocol.Get k) (Protocol.Value (k, Printf.sprintf "b%d" k))
  done;
  (* a cross-shard transaction mid-pipeline: a barrier that must still
     answer in order *)
  push
    (Protocol.Txn [ Protocol.T_set (100, "x"); Protocol.T_set (101, "y") ])
    (Protocol.Txn_reply [ Protocol.R_stored; Protocol.R_stored ]);
  push (Protocol.Get 100) (Protocol.Value (100, "x"));
  push (Protocol.Get 101) (Protocol.Value (101, "y"));
  (* and a scan merging all four shards' cursors (the colored plan's
     index entries are key+version only) *)
  push
    (Protocol.Scan { sc_start = 0; sc_stop = 3; sc_limit = 10 })
    (Protocol.Scan_reply
       (List.init 4 (fun k ->
            { Protocol.si_key = k; si_ver = 2; si_val = None })));
  for k = 0 to 15 do
    push (Protocol.Del k) Protocol.Deleted
  done;
  let reqs = List.rev !reqs and want = List.rev !want in
  let burst =
    String.concat "" (List.map Protocol.render_request reqs)
  in
  send_all c burst;
  let got = read_responses c (List.length want) in
  Alcotest.(check int) "every pipelined request answered"
    (List.length want) (List.length got);
  List.iteri
    (fun i (w, g) ->
      if w <> g then
        Alcotest.failf "pipelined response %d out of order/wrong: want %s got %s"
          i (Protocol.render w) (Protocol.render g))
    (List.combine want got);
  Unix.close c.fd;
  Server.drain srv;
  let s = Server.stats srv in
  Alcotest.(check int) "shards reported" shards s.Server.s_shards;
  Alcotest.(check bool) "cross-shard requests flowed" true
    (s.Server.s_xshard > 0)

let suite =
  [
    Alcotest.test_case "protocol: fragmented parse + roundtrip" `Quick
      test_protocol;
    Alcotest.test_case "differential socket-vs-direct (sim)" `Quick
      (test_differential `Sim ~shards:1);
    Alcotest.test_case "differential socket-vs-direct (sim, 4 shards)" `Quick
      (test_differential `Sim ~shards:4);
    Alcotest.test_case "differential socket-vs-direct (parallel)" `Slow
      (test_differential `Parallel ~shards:1);
    Alcotest.test_case "differential socket-vs-direct (parallel, 2 shards)"
      `Slow
      (test_differential `Parallel ~shards:2);
    Alcotest.test_case "graceful drain loses no parsed request" `Quick
      (test_drain_no_loss ~shards:1);
    Alcotest.test_case "sharded drain loses no parsed request" `Quick
      (test_drain_no_loss ~shards:4);
    Alcotest.test_case "pipelined burst: in-order responses across shards"
      `Quick test_pipelined_burst;
    Alcotest.test_case "stats metrics loopback" `Quick
      test_stats_metrics_loopback;
    Alcotest.test_case "shedding at queue bound 1" `Quick test_shedding;
  ]
