(* Lock-free queue (sequential, property-based, and truly parallel with
   domains) and the virtual-time scheduler. *)

module Msqueue = Privagic_runtime.Msqueue
module Vclock = Privagic_runtime.Vclock
module Sched = Privagic_runtime.Sched

let test_queue_fifo () =
  let q = Msqueue.create () in
  Alcotest.(check bool) "empty" true (Msqueue.is_empty q);
  Alcotest.(check (option int)) "pop empty" None (Msqueue.pop q);
  for i = 1 to 5 do
    Msqueue.push q i
  done;
  Alcotest.(check int) "length" 5 (Msqueue.length q);
  for i = 1 to 5 do
    Alcotest.(check (option int)) "fifo order" (Some i) (Msqueue.pop q)
  done;
  Alcotest.(check bool) "empty again" true (Msqueue.is_empty q)

let test_queue_interleaved () =
  let q = Msqueue.create () in
  Msqueue.push q 1;
  Msqueue.push q 2;
  Alcotest.(check (option int)) "1" (Some 1) (Msqueue.pop q);
  Msqueue.push q 3;
  Alcotest.(check (option int)) "2" (Some 2) (Msqueue.pop q);
  Alcotest.(check (option int)) "3" (Some 3) (Msqueue.pop q);
  Alcotest.(check (option int)) "none" None (Msqueue.pop q)

(* model-based property: queue behaves like a functional FIFO *)
let prop_queue_model =
  QCheck.Test.make ~count:200 ~name:"queue matches a FIFO model"
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let q = Msqueue.create () in
      let model = Queue.create () in
      List.for_all
        (fun (is_push, v) ->
          if is_push then begin
            Msqueue.push q v;
            Queue.push v model;
            true
          end
          else
            let expected = if Queue.is_empty model then None else Some (Queue.pop model) in
            Msqueue.pop q = expected)
        ops)

(* true parallelism: producers and consumers on separate domains; every
   pushed element is popped exactly once, FIFO per producer *)
let test_queue_parallel () =
  let q = Msqueue.create () in
  let n = 2000 in
  let producers = 2 in
  let producer id () =
    for i = 0 to n - 1 do
      Msqueue.push q ((id * n) + i)
    done
  in
  let popped = Atomic.make 0 in
  let seen = Array.make (producers * n) false in
  let consumer () =
    while Atomic.get popped < producers * n do
      match Msqueue.pop q with
      | Some v ->
        seen.(v) <- true;
        Atomic.incr popped
      | None -> Domain.cpu_relax ()
    done
  in
  let doms =
    [ Domain.spawn (producer 0); Domain.spawn (producer 1);
      Domain.spawn consumer ]
  in
  List.iter Domain.join doms;
  Alcotest.(check int) "all popped" (producers * n) (Atomic.get popped);
  Alcotest.(check bool) "each exactly once" true (Array.for_all Fun.id seen)

(* the shutdown drain protocol (msqueue.mli) under real contention:
   producers push from their own domains, the owner closes once they are
   done, and consumers exit only on a None pop observed *after* the close
   flag — nothing pushed before close may be lost or duplicated *)
let drain_exactly_once ~producers ~n ~consumers =
  let q = Msqueue.create () in
  let total = producers * n in
  let seen = Array.make (max total 1) 0 in
  let popped = Atomic.make 0 in
  let producer id () =
    for i = 0 to n - 1 do
      Msqueue.push q ((id * n) + i)
    done
  in
  let consumer () =
    let stop = ref false in
    while not !stop do
      match Msqueue.pop q with
      | Some v ->
        seen.(v) <- seen.(v) + 1;
        Atomic.incr popped
      | None ->
        if Msqueue.is_closed q then (
          match Msqueue.pop q with
          | Some v ->
            seen.(v) <- seen.(v) + 1;
            Atomic.incr popped
          | None -> stop := true)
        else Domain.cpu_relax ()
    done
  in
  let prods = List.init producers (fun i -> Domain.spawn (producer i)) in
  let cons = List.init consumers (fun _ -> Domain.spawn consumer) in
  List.iter Domain.join prods;
  Msqueue.close q;
  List.iter Domain.join cons;
  Atomic.get popped = total
  && (total = 0 || Array.for_all (fun c -> c = 1) seen)

let test_queue_close_drain () =
  Alcotest.(check bool) "drained exactly once" true
    (drain_exactly_once ~producers:3 ~n:2000 ~consumers:2);
  (* close on an empty queue releases an idle consumer immediately *)
  Alcotest.(check bool) "empty close" true
    (drain_exactly_once ~producers:1 ~n:0 ~consumers:2)

let prop_queue_close_drain =
  QCheck.Test.make ~count:15
    ~name:"close protocol drains exactly once (random shapes, domains)"
    QCheck.(triple (int_range 1 3) (int_range 0 300) (int_range 1 3))
    (fun (producers, n, consumers) ->
      drain_exactly_once ~producers ~n ~consumers)

let test_queue_close_flag () =
  let q = Msqueue.create () in
  Alcotest.(check bool) "open at creation" false (Msqueue.is_closed q);
  Msqueue.push q 1;
  Msqueue.close q;
  Alcotest.(check bool) "closed" true (Msqueue.is_closed q);
  (* the flag is advisory: pending elements survive, close is idempotent *)
  Msqueue.close q;
  Alcotest.(check (option int)) "pending element survives" (Some 1)
    (Msqueue.pop q);
  Alcotest.(check (option int)) "then empty" None (Msqueue.pop q)

(* the wire-protocol datatype used with the queue *)
let test_message_envelopes () =
  let module M = Privagic_runtime.Message in
  let q : int M.envelope Msqueue.t = Msqueue.create () in
  Msqueue.push q
    { M.sent_at = 10.0;
      payload = M.Spawn { chunk = "f@blue#blue"; args = [| Some 1 |];
                          frame = 0; seq = 7 } };
  Msqueue.push q
    { M.sent_at = 12.5; payload = M.Cont { seq = 7; tag = M.Retval; value = Some 42 } };
  (match Msqueue.pop q with
  | Some { M.sent_at; payload = M.Spawn { chunk; seq; _ } } ->
    Alcotest.(check (float 0.001)) "timestamp" 10.0 sent_at;
    Alcotest.(check string) "chunk" "f@blue#blue" chunk;
    Alcotest.(check int) "seq" 7 seq
  | _ -> Alcotest.fail "expected the spawn first");
  match Msqueue.pop q with
  | Some { M.payload = M.Cont { tag = M.Retval; value = Some 42; _ }; _ } -> ()
  | _ -> Alcotest.fail "expected the cont"

(* --- scheduler --- *)

let test_sched_runs_by_clock () =
  let sched = Sched.create () in
  let order = ref [] in
  ignore
    (Sched.spawn sched ~name:"late" ~at:100.0 (fun _ -> order := "late" :: !order));
  ignore
    (Sched.spawn sched ~name:"early" ~at:1.0 (fun _ -> order := "early" :: !order));
  (match Sched.run sched with
  | Sched.Completed -> ()
  | _ -> Alcotest.fail "expected Completed");
  Alcotest.(check (list string)) "clock order" [ "late"; "early" ] !order

let test_sched_block_resume () =
  let sched = Sched.create () in
  let flag = ref false in
  let observed = ref (-1.0) in
  ignore
    (Sched.spawn sched ~name:"waiter" ~at:0.0 (fun clock ->
         Sched.block (fun () -> !flag) (fun () -> 55.0);
         Vclock.set clock (Float.max (Vclock.get clock) 55.0);
         observed := (Vclock.get clock)));
  ignore
    (Sched.spawn sched ~name:"setter" ~at:10.0 (fun _ -> flag := true));
  ignore (Sched.run sched : Sched.outcome);
  Alcotest.(check (float 0.001)) "resumed at arrival time" 55.0 !observed

let test_sched_spawn_during_run () =
  let sched = Sched.create () in
  let hits = ref 0 in
  ignore
    (Sched.spawn sched ~name:"parent" ~at:0.0 (fun _ ->
         incr hits;
         ignore
           (Sched.spawn sched ~name:"child" ~at:5.0 (fun _ -> incr hits))));
  ignore (Sched.run sched : Sched.outcome);
  Alcotest.(check int) "both ran" 2 !hits

let test_sched_blocked_stays () =
  let sched = Sched.create () in
  ignore
    (Sched.spawn sched ~name:"stuck" ~at:0.0 (fun _ ->
         Sched.block (fun () -> false) (fun () -> 0.0)));
  (* default allows blocked workers (servers waiting for messages) and
     reports them in the outcome *)
  (match Sched.run sched with
  | Sched.Blocked_workers [ "stuck" ] -> ()
  | _ -> Alcotest.fail "expected Blocked_workers [stuck]");
  Alcotest.(check bool) "deadlock raised" true
    (match Sched.run ~allow_blocked:false sched with
    | exception Sched.Deadlock [ "stuck" ] -> true
    | exception Sched.Deadlock _ -> true
    | _ -> false)

let test_sched_virtual_time_causality () =
  (* a consumer blocked on a produced value inherits its timestamp *)
  let sched = Sched.create () in
  let mailbox = ref None in
  let consumer_clock = ref 0.0 in
  ignore
    (Sched.spawn sched ~name:"producer" ~at:0.0 (fun clock ->
         Vclock.add clock (500.0);
         mailbox := Some (Vclock.get clock)));
  ignore
    (Sched.spawn sched ~name:"consumer" ~at:0.0 (fun clock ->
         Sched.block
           (fun () -> !mailbox <> None)
           (fun () -> match !mailbox with Some t -> t | None -> 0.0);
         Vclock.set clock (Float.max (Vclock.get clock) (Option.value ~default:0.0 !mailbox));
         consumer_clock := Vclock.get clock));
  ignore (Sched.run sched : Sched.outcome);
  Alcotest.(check (float 0.001)) "consumer advanced to 500" 500.0
    !consumer_clock

let suite =
  [
    Alcotest.test_case "queue fifo" `Quick test_queue_fifo;
    Alcotest.test_case "queue interleaved" `Quick test_queue_interleaved;
    QCheck_alcotest.to_alcotest prop_queue_model;
    Alcotest.test_case "queue parallel (domains)" `Slow test_queue_parallel;
    Alcotest.test_case "queue close flag" `Quick test_queue_close_flag;
    Alcotest.test_case "queue close drain (domains)" `Slow
      test_queue_close_drain;
    QCheck_alcotest.to_alcotest prop_queue_close_drain;
    Alcotest.test_case "message envelopes" `Quick test_message_envelopes;
    Alcotest.test_case "sched clock order" `Quick test_sched_runs_by_clock;
    Alcotest.test_case "sched block/resume" `Quick test_sched_block_resume;
    Alcotest.test_case "sched spawn during run" `Quick test_sched_spawn_during_run;
    Alcotest.test_case "sched blocked stays" `Quick test_sched_blocked_stays;
    Alcotest.test_case "sched causality" `Quick test_sched_virtual_time_causality;
  ]
