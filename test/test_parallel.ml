(* Differential tests: the real-parallel backend (OCaml 5 domains,
   lock-free queues, wall-clock time) against the virtual-time oracle.
   The same program replays the same operation sequence on both backends;
   per-call return values and the final integer-typed globals — the
   heap-visible declassified state — must agree call for call.

   Pointer-valued observations compare by constructor only: absolute
   simulated addresses need not match across backends (allocation order
   inside one activation is only partially ordered). *)

open Privagic_pir
open Privagic_secure
open Privagic_vm
module P = Privagic_workloads.Programs
module Parallel = Privagic_parallel.Parallel
module Pmodule = Privagic_pir.Pmodule
module Ty = Privagic_pir.Ty

(* an operation's argument: an int literal, the shared value buffer, or
   the scratch output buffer *)
type arg = I of int | V | O

let vsize = 48

let obs = function
  | Rvalue.Int n -> Int64.to_string n
  | Rvalue.Ptr p -> if p = 0 then "null" else "ptr"
  | Rvalue.Flt f -> Printf.sprintf "%h" f
  | Rvalue.Unit -> "unit"

(* the integer-typed globals of a module, in a fixed order *)
let int_globals m =
  List.filter_map
    (fun (g : Pmodule.global) ->
      match g.Pmodule.gty.Ty.desc with
      | Ty.I64 -> Some g.Pmodule.gname
      | _ -> None)
    (Pmodule.globals_sorted m)

let read_globals (ex : Exec.t) names =
  List.map
    (fun n ->
      (n, Heap.load ex.Exec.heap (Hashtbl.find ex.Exec.globals n) 8))
    names

let payload = String.init vsize (fun i -> Char.chr (65 + (i mod 26)))

let buffers heap =
  let vbuf = Heap.alloc heap Heap.Unsafe vsize in
  let obuf = Heap.alloc heap Heap.Unsafe vsize in
  String.iteri
    (fun i c -> Heap.store heap (vbuf + i) 1 (Int64.of_int (Char.code c)))
    payload;
  (vbuf, obuf)

let argv ~vbuf ~obuf args =
  List.map
    (function
      | I n -> Rvalue.Int (Int64.of_int n)
      | V -> Rvalue.Ptr vbuf
      | O -> Rvalue.Ptr obuf)
    args

(* one run on the oracle: per-call observations + final int globals *)
let run_sim ?engine plan (ops : (string * arg list) list) =
  let pt = Pinterp.create ~config:Privagic_sgx.Config.machine_test ?engine plan in
  let vbuf, obuf = buffers pt.Pinterp.exec.Exec.heap in
  let vals =
    List.map
      (fun (entry, args) ->
        (Pinterp.call_entry pt entry (argv ~vbuf ~obuf args)).Pinterp.value
        |> obs)
      ops
  in
  (vals, read_globals pt.Pinterp.exec (int_globals plan.Privagic_partition.Plan.pmodule))

(* the same run on domains *)
let run_par ?(lanes = 2) ?engine plan (ops : (string * arg list) list) =
  let p = Parallel.create ~lanes ?engine plan in
  let vbuf, obuf = buffers (Parallel.exec p).Exec.heap in
  let vals =
    List.map
      (fun (entry, args) ->
        (Parallel.call_entry p entry (argv ~vbuf ~obuf args)).Parallel.value
        |> obs)
      ops
  in
  let gs =
    read_globals (Parallel.exec p)
      (int_globals plan.Privagic_partition.Plan.pmodule)
  in
  let domains = Parallel.domain_count p in
  let quiet = Parallel.shutdown p in
  Alcotest.(check bool) "pool quiesced and joined" true quiet;
  (vals, gs, domains)

(* the full engine matrix: the virtual-time oracle and the domains
   backend each run under both executors; all four runs must agree on
   per-call observations and on the final integer globals *)
let check_equiv ?lanes ?(min_domains = 2) ~mode src ops =
  let plan () = Helpers.plan_of ~mode src in
  let sim_vals, sim_globals = run_sim ~engine:Exec.Walk (plan ()) ops in
  let simi_vals, simi_globals = run_sim ~engine:Exec.Image (plan ()) ops in
  Alcotest.(check (list string)) "sim: walk vs image values" sim_vals
    simi_vals;
  Alcotest.(check (list (pair string int64)))
    "sim: walk vs image globals" sim_globals simi_globals;
  List.iter
    (fun engine ->
      let par_vals, par_globals, domains =
        run_par ?lanes ~engine (plan ()) ops
      in
      let tag = Exec.engine_name engine in
      Alcotest.(check (list string))
        (tag ^ ": per-call return values")
        sim_vals par_vals;
      Alcotest.(check (list (pair string int64)))
        (tag ^ ": final integer globals")
        sim_globals par_globals;
      Alcotest.(check bool)
        (Printf.sprintf "%s: ran on >= %d domains (got %d)" tag min_domains
           domains)
        true
        (domains >= min_domains))
    [ Exec.Walk; Exec.Image ]

(* deterministic mixed workload over a keyspace twice the loaded range, so
   gets also miss and puts also insert *)
let kv_ops ~records ~ops (put, get) =
  List.init records (fun k -> (put, [ I k; V ]))
  @ List.init ops (fun i ->
        if i mod 3 = 0 then (put, [ I (i * 7 mod (2 * records)); V ])
        else (get, [ I (i * 13 mod (2 * records)); O ]))

let test_hashmap () =
  check_equiv ~mode:Mode.Hardened
    (P.hashmap ~nbuckets:16 ~vsize `Colored)
    (kv_ops ~records:24 ~ops:48 ("hm_put", "hm_get")
    @ [ ("hm_size", []) ])

let test_linked_list () =
  check_equiv ~mode:Mode.Hardened
    (P.linked_list ~vsize `Colored)
    (kv_ops ~records:12 ~ops:24 ("ll_put", "ll_get"))

let test_rbtree () =
  check_equiv ~mode:Mode.Hardened
    (P.rbtree ~vsize `Colored)
    (kv_ops ~records:24 ~ops:48 ("tm_put", "tm_get"))

let test_hashmap_two_color () =
  (* two enclaves + U: three partitions, so ≥3 domains *)
  check_equiv ~mode:Mode.Relaxed ~min_domains:3
    (P.hashmap_two_color ~nbuckets:16 ~vsize `Colored)
    (kv_ops ~records:24 ~ops:48 ("h2_put", "h2_get"))

let test_memcached () =
  (* eviction at capacity, the crawler thread ([spawn]!), statistics *)
  check_equiv ~mode:Mode.Hardened
    (P.memcached ~nbuckets:16 ~vsize `Colored)
    ([ ("mc_init", [ I 8 ]) ]
    @ List.init 12 (fun k -> ("mc_set", [ I k; V ]))
    @ List.init 16 (fun i -> ("mc_get", [ I (i * 5 mod 14); O ]))
    @ [ ("mc_delete", [ I 9 ]); ("mc_touch", [ I 10 ]);
        ("mc_set_capacity", [ I 3 ]); ("mc_maintain", []);
        ("mc_count", []); ("mc_stat", [ I 0 ]); ("mc_stat", [ I 1 ]);
        ("mc_stat", [ I 3 ]) ])

let test_fig1 () =
  (* the multi-color account of Fig. 1: [create] returns a fresh struct
     whose fields live in two enclaves *)
  check_equiv ~mode:Mode.Relaxed P.fig1
    [ ("create", [ V ]); ("create", [ V ]) ]

let test_replicated_loop () =
  (* an F-conditioned loop writing both blue and unsafe state: the loop
     is replicated into every chunk, synchronized at §7.3.3 barriers *)
  let src =
    {|
ignore extern void declassify_i64(int* d, int v);
int color(blue) b;
int y = 0;
int rstatus;
entry void f() {
  int i = 0;
  while (i < 4) {
    b = b + 3;
    y = y + 2;
    i = i + 1;
  }
}
entry int readb() {
  declassify_i64(&rstatus, b);
  return rstatus;
}
|}
  in
  check_equiv ~mode:Mode.Hardened src
    [ ("f", []); ("readb", []); ("f", []); ("readb", []) ]

let test_fig6 () =
  (* three partitions; also the one program where we compare stdout *)
  let plan () = Helpers.plan_of ~mode:Mode.Relaxed P.fig6 in
  let pt = Pinterp.create ~config:Privagic_sgx.Config.machine_test (plan ()) in
  let sim = Pinterp.call_entry pt "main" [] in
  let p = Parallel.create (plan ()) in
  let par = Parallel.call_entry p "main" [] in
  Alcotest.(check string)
    "return value" (obs sim.Pinterp.value) (obs par.Parallel.value);
  Alcotest.(check string) "output" (Pinterp.output pt) (Parallel.output p);
  Alcotest.(check bool) "three partitions -> >= 3 domains" true
    (Parallel.domain_count p >= 3);
  Alcotest.(check bool) "clean shutdown" true (Parallel.shutdown p)

let test_spawned_thread () =
  (* a background thread crossing into the blue enclave: quiescence must
     cover it before the entry call returns *)
  let src =
    {|
ignore extern void classify_i64(int* d, int v);
ignore extern void declassify_i64(int* d, int v);
int color(blue) cell;
int rstatus;
void worker(int v) {
  int color(blue) k;
  classify_i64(&k, v);
  cell = k;
}
entry void start(int v) { spawn worker(v); }
entry int read_cell() {
  declassify_i64(&rstatus, cell);
  return rstatus;
}
|}
  in
  check_equiv ~mode:Mode.Hardened src
    [ ("start", [ I 77 ]); ("read_cell", []);
      ("start", [ I 1234 ]); ("read_cell", []) ]

let test_spawn_guard () =
  (* the §8 forged-spawn attack against the real pool: the guard rejects
     at dequeue, and a legitimate chunk is still rejected when aimed at
     the wrong partition *)
  let plan = Helpers.plan_of ~mode:Mode.Relaxed P.fig6 in
  let p = Parallel.create plan in
  ignore (Parallel.call_entry p "main" []);
  let victim =
    (* any enclave chunk of the plan *)
    let found = ref None in
    Hashtbl.iter
      (fun _ (pf : Privagic_partition.Plan.pfunc) ->
        List.iter
          (fun (ci : Privagic_partition.Plan.chunk_info) ->
            if
              !found = None
              && Color.is_enclave ci.Privagic_partition.Plan.ci_color
            then
              found :=
                Some
                  ( ci.Privagic_partition.Plan.ci_func.Privagic_pir.Func.name,
                    ci.Privagic_partition.Plan.ci_color ))
          pf.Privagic_partition.Plan.pf_chunks)
      plan.Privagic_partition.Plan.pfuncs;
    Option.get !found
  in
  let chunk, color = victim in
  (match Parallel.inject_spawn p ~color ~chunk [] with
  | Result.Error msg ->
    Alcotest.(check bool) "guard names the rejection" true
      (Helpers.contains msg "spawn guard")
  | Result.Ok () -> Alcotest.fail "forged spawn accepted");
  Parallel.set_spawn_guard p false;
  ignore (Parallel.shutdown p)

let test_timeout_is_an_error () =
  (* the fail-fast path: an impossible deadline must surface as Error
     mentioning the timeout, not hang the suite *)
  let plan = Helpers.plan_of ~mode:Mode.Relaxed P.fig6 in
  let p = Parallel.create plan in
  (match Parallel.call_entry p ~timeout_s:0.0 "main" [] with
  | _ -> Alcotest.fail "expected a timeout"
  | exception Parallel.Error msg ->
    Alcotest.(check bool) "mentions the timeout" true
      (Helpers.contains msg "timed out"));
  ignore (Parallel.shutdown ~timeout_s:30.0 p)

let suite =
  [
    Alcotest.test_case "hashmap sim=parallel" `Quick test_hashmap;
    Alcotest.test_case "linked-list sim=parallel" `Quick test_linked_list;
    Alcotest.test_case "rbtree sim=parallel" `Quick test_rbtree;
    Alcotest.test_case "two-color hashmap sim=parallel" `Quick
      test_hashmap_two_color;
    Alcotest.test_case "memcached sim=parallel" `Quick test_memcached;
    Alcotest.test_case "fig1 sim=parallel" `Quick test_fig1;
    Alcotest.test_case "replicated loop sim=parallel" `Quick
      test_replicated_loop;
    Alcotest.test_case "fig6 sim=parallel (+output)" `Quick test_fig6;
    Alcotest.test_case "spawned thread sim=parallel" `Quick
      test_spawned_thread;
    Alcotest.test_case "forged spawn rejected at dequeue" `Quick
      test_spawn_guard;
    Alcotest.test_case "timeout surfaces as error" `Quick
      test_timeout_is_an_error;
  ]
