(* The transaction subsystem (lib/txn): snapshot-read multi-key RMW
   transactions with first-writer-wins CAS guards, the color-inheriting
   secondary indexes, and range scans — from pure semantics over a mock
   store up to the full serving stack: a differential transcript over
   {walk,image} x {sim,parallel}, replica convergence of versions and
   indexes, a socket roundtrip of every new verb, and the
   indexed-accounts example on both engines. *)

module Txn = Privagic_txn.Txn
module Index = Privagic_txn.Index
module Server = Privagic_server.Server
module Protocol = Privagic_server.Protocol
module Parallel = Privagic_parallel.Parallel
module Programs = Privagic_workloads.Programs
module Ycsb = Privagic_workloads.Ycsb
module Mode = Privagic_secure.Mode
module Delta = Privagic_replication.Delta
module Replica = Privagic_replication.Replica
open Privagic_vm

let vsize = 32
let capacity = 512

let plan_of ?(mode = Mode.Hardened) src =
  let m = Privagic_minic.Driver.compile ~file:"txn.mc" src in
  let infer = Privagic_secure.Infer.run ~mode m in
  Alcotest.(check bool) "program accepted" true (Privagic_secure.Infer.ok infer);
  let plan = Privagic_partition.Plan.build ~mode infer in
  Alcotest.(check bool) "plan ok" true (Privagic_partition.Plan.ok plan);
  plan

(* ------------------------------------------------------------------ *)
(* pure transaction semantics over a mock store *)

let mock_store ?(max_value = max_int) ?(can_del = true) () =
  let h : (int, string) Hashtbl.t = Hashtbl.create 16 in
  let ops =
    {
      Txn.o_get = (fun k -> Ok (Hashtbl.find_opt h k));
      o_set =
        (fun k v ->
          Hashtbl.replace h k v;
          Ok ());
      o_del =
        (fun k ->
          let had = Hashtbl.mem h k in
          Hashtbl.remove h k;
          Ok had);
      o_max_value = max_value;
      o_can_del = can_del;
    }
  in
  (h, ops)

let test_execute_pure () =
  let h, ops = mock_store () in
  let t = Txn.create ~value_color:Index.unprotected_color () in
  Alcotest.(check int) "fresh key at version 0" 0 (Txn.version t 1);
  (* a committed multi-op txn: reads see the txn's own buffered writes,
     cas expect=0 inserts, del of an absent key is NOT_FOUND *)
  (match
     Txn.execute t ops
       [ Txn.T_set (1, "a"); Txn.T_get 1; Txn.T_cas (2, 0, "b");
         Txn.T_get 2; Txn.T_del 3 ]
   with
  | Txn.Committed (results, writes) ->
    (match results with
    | [ Txn.R_stored; Txn.R_value (Some "a"); Txn.R_stored;
        Txn.R_value (Some "b"); Txn.R_not_found ] -> ()
    | _ -> Alcotest.fail "unexpected per-op results");
    (match writes with
    | [ Txn.W_put { w_key = 1; w_value = "a" };
        Txn.W_put { w_key = 2; w_value = "b" } ] -> ()
    | _ -> Alcotest.failf "unexpected write batch (%d writes)"
             (List.length writes))
  | _ -> Alcotest.fail "txn 1 did not commit");
  Alcotest.(check int) "key 1 at version 1" 1 (Txn.version t 1);
  Alcotest.(check int) "key 2 at version 1" 1 (Txn.version t 2);
  Alcotest.(check int) "key 3 untouched" 0 (Txn.version t 3);
  Alcotest.(check (option string)) "store holds a" (Some "a")
    (Hashtbl.find_opt h 1);
  (* a lost CAS guard aborts with the guard's evidence *)
  (match Txn.execute t ops [ Txn.T_cas (1, 5, "x") ] with
  | Txn.Aborted { a_key = 1; a_expected = 5; a_found = 1 } -> ()
  | _ -> Alcotest.fail "stale cas not aborted");
  (* atomicity: an abort leaves earlier ops of the same txn unapplied *)
  (match Txn.execute t ops [ Txn.T_set (1, "zz"); Txn.T_cas (2, 9, "y") ] with
  | Txn.Aborted { a_key = 2; a_expected = 9; a_found = 1 } -> ()
  | _ -> Alcotest.fail "guarded txn not aborted");
  Alcotest.(check (option string)) "abort applied nothing" (Some "a")
    (Hashtbl.find_opt h 1);
  Alcotest.(check int) "abort bumped no version" 1 (Txn.version t 1);
  (* first-writer-wins: the correct version commits and bumps *)
  (match Txn.execute t ops [ Txn.T_cas (1, 1, "a2") ] with
  | Txn.Committed ([ Txn.R_stored ], [ Txn.W_put { w_key = 1; w_value = "a2" } ])
    -> ()
  | _ -> Alcotest.fail "in-version cas did not commit");
  Alcotest.(check int) "cas bumped the version" 2 (Txn.version t 1);
  (* a committed del bumps too, and emits a W_del *)
  (match Txn.execute t ops [ Txn.T_del 2 ] with
  | Txn.Committed ([ Txn.R_deleted ], [ Txn.W_del { w_key = 2 } ]) -> ()
  | _ -> Alcotest.fail "del did not commit");
  Alcotest.(check int) "del bumped the version" 2 (Txn.version t 2);
  Alcotest.(check bool) "del removed the key" false (Hashtbl.mem h 2);
  (* non-transactional commit hooks advance the same version space *)
  Txn.note_put t ~key:9 ~value:"v9";
  Txn.note_put t ~key:9 ~value:"v9b";
  Txn.note_del t ~key:9;
  Alcotest.(check int) "note hooks bump versions" 3 (Txn.version t 9);
  Alcotest.(check int) "commits counted" 3 (Txn.commits t);
  Alcotest.(check int) "aborts counted" 2 (Txn.aborts t)

(* An inapplicable write — an oversize value, a del without a del entry
   — must fail the whole transaction during validation: nothing reaches
   the store, no version bumps, and [f_applied] is empty. This is the
   atomicity guarantee for doomed transactions; without the phase-1
   gate, a txn [set small; set oversize] would commit its prefix and
   then report failure. *)
let test_execute_applicability () =
  let h, ops = mock_store ~max_value:4 () in
  let t = Txn.create ~value_color:Index.unprotected_color () in
  (match Txn.execute t ops [ Txn.T_set (1, "ok"); Txn.T_set (2, "toolarge") ] with
  | Txn.Failed { f_applied = []; _ } -> ()
  | Txn.Failed _ -> Alcotest.fail "oversize txn applied a prefix"
  | _ -> Alcotest.fail "oversize txn did not fail");
  Alcotest.(check int) "oversize txn left the store empty" 0
    (Hashtbl.length h);
  Alcotest.(check int) "oversize txn bumped no version" 0 (Txn.version t 1);
  (* the same gate guards the CAS value *)
  (match Txn.execute t ops [ Txn.T_cas (1, 0, "toolarge") ] with
  | Txn.Failed { f_applied = []; _ } -> ()
  | _ -> Alcotest.fail "oversize cas did not fail cleanly");
  (* a guard that loses still reports Aborted, not Failed *)
  (match Txn.execute t ops [ Txn.T_cas (1, 7, "toolarge") ] with
  | Txn.Aborted { a_key = 1; a_expected = 7; a_found = 0 } -> ()
  | _ -> Alcotest.fail "lost guard outranks the size check");
  (* del on a del-less store: only a del that would reach the store
     fails; del of an absent key stays NOT_FOUND *)
  let h2, ops2 = mock_store ~can_del:false () in
  let t2 = Txn.create ~value_color:Index.unprotected_color () in
  (match Txn.execute t2 ops2 [ Txn.T_del 5 ] with
  | Txn.Committed ([ Txn.R_not_found ], []) -> ()
  | _ -> Alcotest.fail "absent-key del should commit as NOT_FOUND");
  (match Txn.execute t2 ops2 [ Txn.T_set (5, "v"); Txn.T_del 5 ] with
  | Txn.Failed { f_applied = []; _ } -> ()
  | _ -> Alcotest.fail "del-less txn did not fail cleanly");
  Alcotest.(check int) "failed del-less txn applied nothing" 0
    (Hashtbl.length h2);
  Alcotest.(check int) "failed del-less txn bumped no version" 0
    (Txn.version t2 5);
  Alcotest.(check int) "only the NOT_FOUND txn committed" 1 (Txn.commits t2)

(* ------------------------------------------------------------------ *)
(* the color-inheritance rule of the index *)

let test_index_color_rule () =
  let ix = Index.create ~lanes:2 in
  (* a secret-colored value: the index keeps (key, version, len) only,
     whatever the caller passes as value bytes *)
  Index.put ix ~key:5 ~version:1 ~len:3 ~color:"red" ~value:(Some "abc");
  (match Index.find ix 5 with
  | Some { Index.e_color = "red"; e_value = None; e_len = 3; e_version = 1; _ }
    -> ()
  | _ -> Alcotest.fail "secret entry leaked value bytes");
  Alcotest.(check int) "no reverse lookup for secrets" 0
    (List.length (Index.lookup ix "abc"));
  (* an unprotected value is cached and reverse-indexed *)
  Index.put ix ~key:6 ~version:1 ~len:3 ~color:Index.unprotected_color
    ~value:(Some "abc");
  (match Index.lookup ix "abc" with
  | [ { Index.e_key = 6; e_value = Some "abc"; _ } ] -> ()
  | _ -> Alcotest.fail "unprotected value not reverse-indexed");
  (* a range over both shows value bytes only for the "U" entry *)
  (match Index.range ix ~start:0 ~stop:10 ~limit:10 with
  | [ { Index.e_key = 5; e_value = None; _ };
      { Index.e_key = 6; e_value = Some "abc"; _ } ] -> ()
  | l -> Alcotest.failf "unexpected range (%d entries)" (List.length l));
  (* overwrite remaps the fingerprint *)
  Index.put ix ~key:6 ~version:2 ~len:3 ~color:Index.unprotected_color
    ~value:(Some "xyz");
  Alcotest.(check int) "old fingerprint unmapped" 0
    (List.length (Index.lookup ix "abc"));
  (match Index.lookup ix "xyz" with
  | [ { Index.e_key = 6; e_version = 2; _ } ] -> ()
  | _ -> Alcotest.fail "new fingerprint not mapped");
  Index.del ix ~key:6;
  Alcotest.(check int) "deleted key left the hash index" 0
    (List.length (Index.lookup ix "xyz"));
  Alcotest.(check int) "deleted key left the ordered index" 1
    (List.length (Index.range ix ~start:0 ~stop:10 ~limit:10));
  (* the extreme key is not a merge-cursor sentinel: an entry at
     max_int is still scannable *)
  Index.put ix ~key:max_int ~version:1 ~len:2 ~color:Index.unprotected_color
    ~value:(Some "mx");
  (match Index.range ix ~start:max_int ~stop:max_int ~limit:4 with
  | [ { Index.e_key = k; e_value = Some "mx"; _ } ] when k = max_int -> ()
  | l -> Alcotest.failf "max_int entry not scanned (%d entries)"
           (List.length l));
  Index.del ix ~key:max_int;
  (* the same rule through the txn layer: a secret store scans key-only
     and is unreachable by value *)
  let t = Txn.create ~value_color:"blue" () in
  Txn.note_put t ~key:1 ~value:"secret-bytes";
  (match Txn.scan t ~start:0 ~stop:10 ~limit:10 with
  | [ { Index.e_key = 1; e_value = None; e_color = "blue"; _ } ] -> ()
  | _ -> Alcotest.fail "secret scan entry carried bytes");
  Alcotest.(check int) "secret store has no value lookup" 0
    (List.length (Txn.lookup t ~value:"secret-bytes"))

(* ------------------------------------------------------------------ *)
(* range scans against a reference model (merge across lanes) *)

let test_range_oracle () =
  let t = Txn.create ~lanes:3 ~value_color:Index.unprotected_color () in
  let model : (int, int * string) Hashtbl.t = Hashtbl.create 64 in
  let versions : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let bump k =
    let v = 1 + (try Hashtbl.find versions k with Not_found -> 0) in
    Hashtbl.replace versions k v;
    v
  in
  let rng = Ycsb.rng 0x5ca9 in
  for i = 1 to 300 do
    let k = Ycsb.next_int rng 100 in
    if Ycsb.next_int rng 4 < 3 then begin
      let v = Printf.sprintf "v%d-%d" k i in
      Txn.note_put t ~key:k ~value:v;
      Hashtbl.replace model k (bump k, v)
    end
    else if Hashtbl.mem model k then begin
      Txn.note_del t ~key:k;
      ignore (bump k : int);
      Hashtbl.remove model k
    end
  done;
  let reference ~start ~stop ~limit =
    let live =
      Hashtbl.fold
        (fun k (ver, v) acc ->
          if k >= start && k <= stop then (k, ver, v) :: acc else acc)
        model []
    in
    let sorted = List.sort (fun (a, _, _) (b, _, _) -> compare a b) live in
    List.filteri (fun i _ -> i < limit) sorted
  in
  for _ = 1 to 50 do
    let start = Ycsb.next_int rng 100 in
    let stop = start + Ycsb.next_int rng 40 in
    let limit = 1 + Ycsb.next_int rng 12 in
    let got =
      List.map
        (fun (e : Index.entry) ->
          match e.Index.e_value with
          | Some v -> (e.Index.e_key, e.Index.e_version, v)
          | None -> Alcotest.fail "unprotected entry without bytes")
        (Txn.scan t ~start ~stop ~limit)
    in
    let want = reference ~start ~stop ~limit in
    if got <> want then
      Alcotest.failf "scan [%d,%d] limit %d diverged from the model" start
        stop limit
  done

(* ------------------------------------------------------------------ *)
(* serving-stack helpers (local copies; test_server has its own) *)

type client = { fd : Unix.file_descr; rd : Protocol.resp_reader }

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.setsockopt fd Unix.TCP_NODELAY true;
  { fd; rd = Protocol.resp_reader () }

let send_all c s =
  let b = Bytes.of_string s in
  let rec go off =
    if off < Bytes.length b then
      go (off + Unix.write c.fd b off (Bytes.length b - off))
  in
  go 0

let read_responses ?(timeout = 10.0) c n =
  let buf = Bytes.create 8192 in
  let deadline = Unix.gettimeofday () +. timeout in
  let acc = ref [] and count = ref 0 and eof = ref false in
  while (not !eof) && !count < n && Unix.gettimeofday () < deadline do
    match Unix.select [ c.fd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
      match Unix.read c.fd buf 0 (Bytes.length buf) with
      | 0 -> eof := true
      | nread ->
        List.iter
          (fun r ->
            acc := r :: !acc;
            incr count)
          (Protocol.feed_resp c.rd buf nread))
  done;
  List.rev !acc

let rpc c req =
  send_all c (Protocol.render_request req);
  match read_responses c 1 with
  | [ r ] -> r
  | _ -> Alcotest.fail "rpc: no response"

let start_server ?replica_of ?(shards = 1) ~engine ~backend plan =
  let bnd = Option.get (Server.bindings_of_plan plan) in
  let stores =
    Array.init shards (fun _ ->
        let store =
          match backend with
          | `Sim -> Server.store_of_pinterp (Pinterp.create ~engine plan)
          | `Parallel ->
            Server.store_of_parallel (Parallel.create ~lanes:2 ~engine plan)
        in
        (match bnd.Server.b_init with
        | Some entry -> (
          match
            store.Server.st_call entry [ Rvalue.Int (Int64.of_int capacity) ]
          with
          | Ok _ -> ()
          | Error m -> Alcotest.failf "%s: %s" entry m)
        | None -> ());
        store)
  in
  Server.start ?replica_of
    { Server.default_config with Server.port = 0; shards; vsize }
    bnd stores

(* ------------------------------------------------------------------ *)
(* differential transcripts: the same deterministic client session must
   render bit-equal response streams on every engine x backend cell *)

(* One closed-loop session exercising every verb. CAS versions are read
   back through getv on the same connection, so success and conflict
   paths are both deterministic. Returns the concatenated rendered
   responses. *)
let session port =
  let c = connect port in
  let out = Buffer.create 4096 in
  let ask req = Buffer.add_string out (Protocol.render (rpc c req)) in
  let rng = Ycsb.rng 0x7a11 in
  for i = 0 to 159 do
    let k = Ycsb.next_int rng 24 in
    match i mod 8 with
    | 0 | 1 -> ask (Protocol.Set (k, Ycsb.value_for ~size:(6 + (i mod 20)) k))
    | 2 -> ask (Protocol.Getv k)
    | 3 ->
      (* read the live version, then guard on it (commit) or on a
         stale one (conflict), alternating *)
      let ver =
        match rpc c (Protocol.Getv k) with
        | Protocol.Version { v_ver; _ } -> v_ver
        | r -> Alcotest.failf "getv: %s" (Protocol.render r)
      in
      let guard = if i mod 16 < 8 then ver else ver + 7 in
      ask
        (Protocol.Cas
           { c_key = k; c_ver = guard; c_val = Ycsb.value_for ~size:9 k })
    | 4 ->
      ask
        (Protocol.Scan
           { sc_start = k; sc_stop = k + 12; sc_limit = 1 + (i mod 6) })
    | 5 ->
      let ver =
        match rpc c (Protocol.Getv k) with
        | Protocol.Version { v_ver; _ } -> v_ver
        | r -> Alcotest.failf "getv: %s" (Protocol.render r)
      in
      let guard = if i mod 16 < 8 then ver else ver + 3 in
      ask
        (Protocol.Txn
           [ Txn.T_get k; Txn.T_cas (k, guard, Ycsb.value_for ~size:8 k);
             Txn.T_set ((k + 1) mod 24, Ycsb.value_for ~size:7 (k + 1));
             Txn.T_del ((k + 5) mod 24) ])
    | 6 -> ask (Protocol.Del k)
    | _ -> ask (Protocol.Get k)
  done;
  Unix.close c.fd;
  Buffer.contents out

let test_differential_cells () =
  (* engine x backend x shards; the sharded cells route the session's
     multi-key transactions through the cross-shard 2PC path, and their
     transcripts must still be bit-equal to the unsharded oracle *)
  let cells =
    [ (Exec.Walk, `Sim, 1); (Exec.Walk, `Parallel, 1); (Exec.Image, `Sim, 1);
      (Exec.Image, `Parallel, 1); (Exec.Walk, `Sim, 3);
      (Exec.Image, `Parallel, 2) ]
  in
  let transcripts =
    List.map
      (fun (engine, backend, shards) ->
        let srv =
          start_server ~engine ~backend ~shards
            (plan_of (Programs.memcached ~nbuckets:64 ~vsize `Colored))
        in
        let t = session (Server.port srv) in
        let s = Server.stats srv in
        Server.drain srv;
        Alcotest.(check bool) "cell served txns" true (s.Server.s_txns > 0);
        Alcotest.(check bool) "cell served scans" true (s.Server.s_scans > 0);
        Alcotest.(check bool) "cell committed and aborted" true
          (s.Server.s_txn_commits > 0 && s.Server.s_txn_aborts > 0);
        if shards > 1 then
          Alcotest.(check bool) "sharded cell crossed shards" true
            (s.Server.s_xshard > 0);
        ( Printf.sprintf "%s/%s/%d" (Exec.engine_name engine)
            (match backend with `Sim -> "sim" | `Parallel -> "parallel")
            shards,
          t ))
      cells
  in
  match transcripts with
  | (_, first) :: rest ->
    List.iter
      (fun (cell, t) ->
        if t <> first then
          Alcotest.failf "cell %s diverged from walk/sim transcript" cell)
      rest
  | [] -> Alcotest.fail "no cells ran"

(* ------------------------------------------------------------------ *)
(* replica convergence: versions and indexes, not only value bytes *)

let test_replica_convergence () =
  let src = Programs.memcached ~nbuckets:64 ~vsize `Colored in
  let primary =
    start_server ~engine:(Exec.default_engine ()) ~backend:`Sim (plan_of src)
  in
  let pport = Server.port primary in
  let replica =
    start_server
      ~replica_of:(Printf.sprintf "127.0.0.1:%d" pport)
      ~engine:(Exec.default_engine ()) ~backend:`Sim (plan_of src)
  in
  let apply (d : Delta.t) =
    match d.Delta.op with
    | Delta.Put { key; payload; _ } ->
      Server.apply_put replica ~seq:d.Delta.seq ~key ~payload
    | Delta.Del { key } -> Server.apply_del replica ~seq:d.Delta.seq ~key
  in
  let link = Replica.start ~sync:true ~host:"127.0.0.1" ~port:pport ~apply () in
  (* writes through every commit path: set, cas, txn batch, del *)
  let c = connect pport in
  let expect_stored r =
    match r with
    | Protocol.Stored -> ()
    | r -> Alcotest.failf "write failed: %s" (Protocol.render r)
  in
  for k = 0 to 15 do
    expect_stored (rpc c (Protocol.Set (k, Printf.sprintf "base-%02d" k)))
  done;
  expect_stored
    (rpc c (Protocol.Cas { c_key = 3; c_ver = 1; c_val = "cas-upd" }));
  (match
     rpc c
       (Protocol.Txn
          [ Txn.T_cas (4, 1, "txn-upd"); Txn.T_set (20, "txn-new");
            Txn.T_del 5 ])
   with
  | Protocol.Txn_reply _ -> ()
  | r -> Alcotest.failf "txn failed: %s" (Protocol.render r));
  (match rpc c (Protocol.Del 6) with
  | Protocol.Deleted -> ()
  | r -> Alcotest.failf "del failed: %s" (Protocol.render r));
  (* wait until the replica applied the whole log *)
  let want_seq = (Server.stats primary).Server.s_repl_seq in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while
    (Server.stats replica).Server.s_repl_seq < want_seq
    && Unix.gettimeofday () < deadline
  do
    Unix.sleepf 0.02
  done;
  Alcotest.(check int) "replica applied the whole log" want_seq
    (Server.stats replica).Server.s_repl_seq;
  (* the replica must answer getv and scan exactly like the primary *)
  let cr = connect (Server.port replica) in
  let probe cl =
    let out = Buffer.create 1024 in
    for k = 0 to 21 do
      Buffer.add_string out (Protocol.render (rpc cl (Protocol.Getv k)))
    done;
    Buffer.add_string out
      (Protocol.render
         (rpc cl (Protocol.Scan { sc_start = 0; sc_stop = 30; sc_limit = 30 })));
    Buffer.contents out
  in
  let pt = probe c and rt = probe cr in
  Alcotest.(check string) "versions and index converged" pt rt;
  Replica.stop link;
  Unix.close c.fd;
  Unix.close cr.fd;
  Server.drain replica;
  Server.drain primary

(* ------------------------------------------------------------------ *)
(* socket roundtrip of every verb, on an unprotected plan so scans carry
   value bytes (SVAL) and the hash index is reachable *)

let test_socket_roundtrip () =
  let srv =
    start_server ~engine:(Exec.default_engine ()) ~backend:`Sim
      (plan_of (Programs.memcached ~nbuckets:64 ~vsize `Plain))
  in
  let c = connect (Server.port srv) in
  let check name want got =
    if got <> want then
      Alcotest.failf "%s: got %s, want %s" name (Protocol.render got)
        (Protocol.render want)
  in
  check "set" Protocol.Stored (rpc c (Protocol.Set (1, "alpha")));
  check "getv carries version and bytes"
    (Protocol.Version { v_key = 1; v_ver = 1; v_val = Some "alpha" })
    (rpc c (Protocol.Getv 1));
  check "getv miss"
    (Protocol.Version { v_key = 8; v_ver = 0; v_val = None })
    (rpc c (Protocol.Getv 8));
  check "stale cas conflicts" (Protocol.Cas_conflict 1)
    (rpc c (Protocol.Cas { c_key = 1; c_ver = 9; c_val = "x" }));
  check "fresh cas stores" Protocol.Stored
    (rpc c (Protocol.Cas { c_key = 1; c_ver = 1; c_val = "beta" }));
  check "cas expect-0 inserts" Protocol.Stored
    (rpc c (Protocol.Cas { c_key = 5; c_ver = 0; c_val = "ins" }));
  check "cas on absent key" Protocol.Not_found
    (rpc c (Protocol.Cas { c_key = 6; c_ver = 3; c_val = "x" }));
  (match
     rpc c
       (Protocol.Txn
          [ Txn.T_get 1; Txn.T_set (2, "two"); Txn.T_cas (5, 1, "upd");
            Txn.T_del 9; Txn.T_get 2 ])
   with
  | Protocol.Txn_reply
      [ Protocol.R_value (Some "beta"); Protocol.R_stored; Protocol.R_stored;
        Protocol.R_not_found; Protocol.R_value (Some "two") ] -> ()
  | r -> Alcotest.failf "txn batch: %s" (Protocol.render r));
  check "guarded txn aborts"
    (Protocol.Txn_abort { ta_key = 2; ta_expected = 99; ta_found = 1 })
    (rpc c (Protocol.Txn [ Txn.T_cas (2, 99, "z") ]));
  (* the wire accepts values past the program's vsize; validation must
     fail the whole transaction before anything applies *)
  (match
     rpc c
       (Protocol.Txn
          [ Txn.T_set (3, "pre"); Txn.T_set (4, String.make (vsize + 1) 'x') ])
   with
  | Protocol.Error_msg _ -> ()
  | r -> Alcotest.failf "oversize txn: %s" (Protocol.render r));
  check "oversize txn applied nothing"
    (Protocol.Version { v_key = 3; v_ver = 0; v_val = None })
    (rpc c (Protocol.Getv 3));
  (* scan on an unprotected plan returns SVAL items with live versions *)
  (match rpc c (Protocol.Scan { sc_start = 0; sc_stop = 100; sc_limit = 10 }) with
  | Protocol.Scan_reply
      [ { Protocol.si_key = 1; si_ver = 2; si_val = Some "beta" };
        { Protocol.si_key = 2; si_ver = 1; si_val = Some "two" };
        { Protocol.si_key = 5; si_ver = 2; si_val = Some "upd" } ] -> ()
  | r -> Alcotest.failf "scan: %s" (Protocol.render r));
  (* the limit truncates in ascending order *)
  (match rpc c (Protocol.Scan { sc_start = 0; sc_stop = 100; sc_limit = 2 }) with
  | Protocol.Scan_reply [ { Protocol.si_key = 1; _ }; { Protocol.si_key = 2; _ } ]
    -> ()
  | r -> Alcotest.failf "limited scan: %s" (Protocol.render r));
  check "del" Protocol.Deleted (rpc c (Protocol.Del 2));
  (match rpc c (Protocol.Scan { sc_start = 0; sc_stop = 100; sc_limit = 10 }) with
  | Protocol.Scan_reply [ { Protocol.si_key = 1; _ }; { Protocol.si_key = 5; _ } ]
    -> ()
  | r -> Alcotest.failf "scan after del: %s" (Protocol.render r));
  let s = Server.stats srv in
  Alcotest.(check int) "txns counted" 3 s.Server.s_txns;
  Alcotest.(check int) "cas counted" 4 s.Server.s_cas;
  Alcotest.(check int) "cas conflicts counted" 2 s.Server.s_cas_conflicts;
  Alcotest.(check int) "scans counted" 3 s.Server.s_scans;
  Alcotest.(check bool) "aborts counted" true (s.Server.s_txn_aborts >= 2);
  let fields = Server.stats_fields srv in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " in stats fields") true
        (List.mem_assoc k fields))
    [ "getv"; "cas"; "cas_conflicts"; "txns"; "txn_commits"; "txn_aborts";
      "scans"; "scan_items" ];
  Unix.close c.fd;
  Server.drain srv

(* ------------------------------------------------------------------ *)
(* the indexed-accounts example: both engines agree on every
   declassified result (cross-color RMW + unsafe index lookups) *)

let accounts_results engine =
  let plan = plan_of ~mode:Mode.Relaxed Programs.indexed_accounts in
  let store = Server.store_of_pinterp (Pinterp.create ~engine plan) in
  let call entry args =
    match
      store.Server.st_call entry
        (List.map (fun a -> Rvalue.Int (Int64.of_int a)) args)
    with
    | Ok (Rvalue.Int n) -> Int64.to_int n
    | Ok _ -> 0
    | Error m -> Alcotest.failf "%s: %s" entry m
  in
  ignore (call "acct_init" [] : int);
  (* List.map keeps the call order left-to-right (a bare list literal
     would not) *)
  List.map
    (fun (entry, args) -> call entry args)
    [ ("acct_open", [ 7; 100; 50 ]);    (* fresh *)
      ("acct_open", [ 7; 100; 10 ]);    (* duplicate id *)
      ("acct_open", [ 23; 100; 25 ]); ("acct_open", [ 9; 200; 5 ]);
      ("acct_deposit", [ 7; 25 ]);      (* cross-color RMW *)
      ("acct_deposit", [ 42; 5 ]);      (* absent account *)
      ("acct_balance", [ 7 ]); ("acct_balance", [ 23 ]);
      ("acct_balance", [ 42 ]);
      ("acct_find", [ 100 ]); ("acct_find", [ 200 ]);
      ("acct_find", [ 300 ]); ("acct_count", []) ]

let test_indexed_accounts () =
  let want = [ 1; 0; 1; 1; 1; 0; 75; 25; -1; 2; 1; 0; 3 ] in
  List.iter
    (fun engine ->
      Alcotest.(check (list int))
        (Exec.engine_name engine ^ " results")
        want (accounts_results engine))
    [ Exec.Walk; Exec.Image ]

(* ------------------------------------------------------------------ *)
(* cross-shard 2PC atomicity: a transaction straddling all four shards
   either applies everywhere or nowhere, and its replication deltas stay
   contiguous in the merged log *)

let test_cross_shard_2pc () =
  let shards = 4 in
  let srv =
    start_server ~shards ~engine:(Exec.default_engine ()) ~backend:`Sim
      (plan_of (Programs.memcached ~nbuckets:64 ~vsize `Plain))
  in
  let c = connect (Server.port srv) in
  let getv k =
    match rpc c (Protocol.Getv k) with
    | Protocol.Version { v_ver; v_val; _ } -> (v_ver, v_val)
    | r -> Alcotest.failf "getv %d: %s" k (Protocol.render r)
  in
  (* one key per shard *)
  for k = 0 to 3 do
    match rpc c (Protocol.Set (k, Printf.sprintf "base%d" k)) with
    | Protocol.Stored -> ()
    | r -> Alcotest.failf "seed set: %s" (Protocol.render r)
  done;
  (* abort: a stale guard on shard 3 must leave shards 0-2 untouched *)
  (match
     rpc c
       (Protocol.Txn
          [ Txn.T_set (0, "dirty0"); Txn.T_set (1, "dirty1");
            Txn.T_set (2, "dirty2"); Txn.T_cas (3, 99, "dirty3") ])
   with
  | Protocol.Txn_abort { ta_key = 3; ta_expected = 99; ta_found = 1 } -> ()
  | r -> Alcotest.failf "expected abort, got %s" (Protocol.render r));
  for k = 0 to 3 do
    let ver, v = getv k in
    Alcotest.(check int) "abort left version" 1 ver;
    Alcotest.(check (option string)) "abort left value"
      (Some (Printf.sprintf "base%d" k)) v
  done;
  (* validation failure on one shard (oversize) also applies nothing *)
  (match
     rpc c
       (Protocol.Txn
          [ Txn.T_set (0, "dirty0");
            Txn.T_set (1, String.make (vsize + 1) 'x') ])
   with
  | Protocol.Error_msg _ -> ()
  | r -> Alcotest.failf "oversize 2pc txn: %s" (Protocol.render r));
  Alcotest.(check int) "oversize applied nothing" 1 (fst (getv 0));
  (* commit: reads + writes across all four shards apply atomically *)
  let log_before =
    Privagic_replication.Log.head (Server.repl_log srv)
  in
  (match
     rpc c
       (Protocol.Txn
          [ Txn.T_get 0; Txn.T_cas (1, 1, "upd1"); Txn.T_set (2, "upd2");
            Txn.T_del 3; Txn.T_set (6, "new6") ])
   with
  | Protocol.Txn_reply
      [ Protocol.R_value (Some "base0"); Protocol.R_stored; Protocol.R_stored;
        Protocol.R_deleted; Protocol.R_stored ] -> ()
  | r -> Alcotest.failf "2pc commit: %s" (Protocol.render r));
  Alcotest.(check (pair int (option string))) "shard 1 applied" (2, Some "upd1")
    (getv 1);
  Alcotest.(check (pair int (option string))) "shard 2 applied" (2, Some "upd2")
    (getv 2);
  Alcotest.(check (pair int (option string))) "shard 3 deleted" (2, None)
    (getv 3);
  Alcotest.(check (pair int (option string))) "shard 2 insert" (1, Some "new6")
    (getv 6);
  (* the commit's four writes are one contiguous run in the merged log *)
  let log = Privagic_replication.Log.to_list (Server.repl_log srv) in
  let tail =
    List.filteri (fun i _ -> i >= log_before) log
    |> List.map (fun (d : Delta.t) ->
           match d.Delta.op with
           | Delta.Put { key; _ } -> (d.Delta.seq, `Put key)
           | Delta.Del { key } -> (d.Delta.seq, `Del key))
  in
  (match tail with
  | [ (s1, `Put 1); (s2, `Put 2); (s3, `Del 3); (s4, `Put 6) ]
    when s2 = s1 + 1 && s3 = s2 + 1 && s4 = s3 + 1 -> ()
  | _ ->
    Alcotest.failf "txn deltas not contiguous in log (%d entries after %d)"
      (List.length tail) log_before);
  let s = Server.stats srv in
  Alcotest.(check bool) "2pc txns crossed shards" true (s.Server.s_xshard > 0);
  Alcotest.(check int) "one txn committed" 1 s.Server.s_txn_commits;
  Alcotest.(check int) "one txn aborted" 1 s.Server.s_txn_aborts;
  Unix.close c.fd;
  Server.drain srv

let suite =
  [
    Alcotest.test_case "execute: snapshot reads, guards, atomic commit" `Quick
      test_execute_pure;
    Alcotest.test_case "execute: inapplicable writes fail before apply" `Quick
      test_execute_applicability;
    Alcotest.test_case "index: color inheritance rule" `Quick
      test_index_color_rule;
    Alcotest.test_case "scan: range oracle across lanes" `Quick
      test_range_oracle;
    Alcotest.test_case "differential transcript on all four cells" `Slow
      test_differential_cells;
    Alcotest.test_case "replica converges on versions and indexes" `Quick
      test_replica_convergence;
    Alcotest.test_case "socket roundtrip of every verb" `Quick
      test_socket_roundtrip;
    Alcotest.test_case "cross-shard 2PC: atomic or nothing" `Quick
      test_cross_shard_2pc;
    Alcotest.test_case "indexed accounts agree across engines" `Quick
      test_indexed_accounts;
  ]
