(* The secrecy trace monitor: shadow-taints planted secret sentinels
   through the VM's execution trace and asserts the robust-safety
   property — no live secret-colored value reaches unprotected memory,
   program output, or the wire unsealed.

   Mechanism. A sentinel (Rng.sentinel) is planted into an enclave
   through a victim's classify entry; from then on the monitor watches
   every choke point the value could escape through:

   - the heap store tap (Heap.set_store_tap): every committed store,
     from both engines, the externals' byte copies, parallel workers and
     the replication apply path — a live sentinel stored into the Unsafe
     or Rodata zone is a leak;
   - the extern tap (Exec.extern_tap): program output (the print
     externs), the
     simulated network (net_send), and the declassification externs —
     declassify marks a sentinel authorized *unless* it fires inside an
     adversarial window (a forged spawn the valid-spawn-sequence guard
     would have rejected), in which case the attacker coerced the
     enclave into declassifying and it counts as a leak;
   - whole-zone sweeps (Heap.fold_zone_pages): a byte-pattern scan of
     unprotected zones between adversarial actions, catching byte-
     granular copies the word-level store tap cannot attribute;
   - wire capture (check_wire): replication frames and server responses
     must not carry a live sentinel's bytes in the clear.

   The monitor serializes itself with one mutex: taps fire from every
   worker domain of the parallel backend. *)

open Privagic_vm

type violation = { v_kind : string; v_where : string; v_detail : string }

let pp_violation v = Printf.sprintf "[%s] %s: %s" v.v_kind v.v_where v.v_detail

type t = {
  mu : Mutex.t;
  mutable live : int64 list; (* planted, not yet legitimately declassified *)
  mutable declassified : int64 list;
  mutable adversarial : bool; (* inside a guard-bypassing injection *)
  mutable violations : violation list; (* newest first *)
}

let create () =
  {
    mu = Mutex.create ();
    live = [];
    declassified = [];
    adversarial = false;
    violations = [];
  }

let locked t f =
  Mutex.lock t.mu;
  let v = f () in
  Mutex.unlock t.mu;
  v

let plant t s = locked t (fun () -> t.live <- s :: t.live)
let set_adversarial t b = locked t (fun () -> t.adversarial <- b)
let violations t = locked t (fun () -> List.rev t.violations)
let ok t = locked t (fun () -> t.violations = [])

let violate_u t ~kind ~where detail =
  t.violations <- { v_kind = kind; v_where = where; v_detail = detail } :: t.violations

let violate t ~kind ~where detail =
  locked t (fun () -> violate_u t ~kind ~where detail)

(* little-endian byte image of a sentinel, the pattern byte-level copies
   leave behind *)
let le_bytes (s : int64) =
  String.init 8 (fun k ->
      Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical s (8 * k)) 0xffL)))

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln > 0 && go 0

(* a legitimate declassification moves the sentinel out of the live set;
   an adversarially coerced one is a leak *)
let declassify_value t ~where (v : int64) =
  locked t (fun () ->
      if List.mem v t.live then
        if t.adversarial then
          violate_u t ~kind:"declassify" ~where
            (Printf.sprintf
               "enclave declassified live secret %Lx under a forged spawn" v)
        else begin
          t.live <- List.filter (fun s -> not (Int64.equal s v)) t.live;
          t.declassified <- v :: t.declassified
        end)

let declassify_bytes t ~where (s : string) =
  let hits = locked t (fun () -> List.filter (fun v -> contains s (le_bytes v)) t.live) in
  List.iter (fun v -> declassify_value t ~where v) hits

(* ------------------------------------------------------------------ *)
(* taps                                                                *)

let unprotected = function
  | Heap.Unsafe | Heap.Rodata -> true
  | Heap.Enclave _ -> false

let store_tap t addr size v zone =
  if size = 8 && unprotected zone then
    locked t (fun () ->
        if List.mem v t.live then
          violate_u t ~kind:"store" ~where:(Heap.zone_to_string zone)
            (Printf.sprintf "live secret %Lx stored to unprotected %06x" v addr))

(* read [n] raw bytes of simulated memory (read_string would stop at NUL) *)
let read_bytes heap addr n =
  String.init n (fun k ->
      Char.chr (Int64.to_int (Heap.load heap (addr + k) 1) land 0xff))

let extern_tap t (ex : Exec.t) name (args : Rvalue.t array) =
  let heap = ex.Exec.heap in
  match name with
  | "declassify_i64" when Array.length args >= 2 ->
    declassify_value t ~where:"declassify_i64" (Rvalue.to_int64 args.(1))
  | "declassify" when Array.length args >= 3 ->
    let src = Rvalue.to_addr args.(1) and n = Rvalue.to_int args.(2) in
    if n > 0 && n <= 1 lsl 20 then
      (try declassify_bytes t ~where:"declassify" (read_bytes heap src n)
       with Heap.Fault _ -> ())
  | "print_int" when Array.length args >= 1 ->
    let v = Rvalue.to_int64 args.(0) in
    locked t (fun () ->
        if List.mem v t.live then
          violate_u t ~kind:"output" ~where:"print_int"
            (Printf.sprintf "live secret %Lx printed" v))
  | ("print_str" | "puts") when Array.length args >= 1 ->
    let s = try Heap.read_string heap (Rvalue.to_addr args.(0)) with _ -> "" in
    let hit =
      locked t (fun () ->
          List.exists
            (fun v -> contains s (le_bytes v) || contains s (Int64.to_string v))
            t.live)
    in
    if hit then violate t ~kind:"output" ~where:name "live secret in program output"
  | "net_send" when Array.length args >= 2 ->
    let src = Rvalue.to_addr args.(0) and n = Rvalue.to_int args.(1) in
    let hit =
      if n <= 0 || n > 1 lsl 20 then false
      else
        match read_bytes heap src n with
        | s ->
          locked t (fun () -> List.exists (fun v -> contains s (le_bytes v)) t.live)
        | exception Heap.Fault _ -> false
    in
    if hit then
      violate t ~kind:"net" ~where:"net_send" "live secret in simulated network send"
  | _ -> ()

let attach t (ex : Exec.t) =
  Heap.set_store_tap ex.Exec.heap (Some (store_tap t));
  ex.Exec.extern_tap <- Some (extern_tap t)

let detach (ex : Exec.t) =
  Heap.set_store_tap ex.Exec.heap None;
  ex.Exec.extern_tap <- None

(* ------------------------------------------------------------------ *)
(* sweeps and wire capture                                             *)

(* byte-pattern scan of a page for any live sentinel. A sentinel whose
   bytes straddle a page boundary is not seen here — the 8-byte store
   that wrote it was already checked by the store tap. *)
let scan_page t ~where base (page : Bytes.t) =
  let pats = locked t (fun () -> List.map (fun v -> (v, le_bytes v)) t.live) in
  List.iter
    (fun (v, pat) ->
      let s = Bytes.unsafe_to_string page in
      let lh = String.length s and c0 = pat.[0] in
      let rec go i =
        if i + 8 <= lh then
          match String.index_from_opt s i c0 with
          | Some j when j + 8 <= lh ->
            if String.sub s j 8 = pat then
              violate t ~kind:"memory" ~where
                (Printf.sprintf "live secret %Lx found in unprotected memory at %06x"
                   v (base + j))
            else go (j + 1)
          | _ -> ()
      in
      go 0)
    pats

let scan_heap t ~where (heap : Heap.t) =
  List.iter
    (fun z ->
      Heap.fold_zone_pages heap z ~init:() ~f:(fun () base page ->
          scan_page t ~where base page))
    [ Heap.Unsafe; Heap.Rodata ]

let check_wire t ~where (s : string) =
  let hits = locked t (fun () -> List.filter (fun v -> contains s (le_bytes v)) t.live) in
  List.iter
    (fun v ->
      violate t ~kind:"wire" ~where
        (Printf.sprintf "live secret %Lx on the wire unsealed" v))
    hits
