(* The one deterministic random stream shared by every seeded harness:
   the adversarial generator (Gen), the victim-program generator
   (Progen), and the random-program differential suite in
   test/test_image.ml. One LCG, one seed-mixing rule — so a failure
   report's "--seed N" reproduces the same corpus everywhere.

   The constants are the classic C-library LCG the image suite already
   pinned its corpus to; changing them invalidates every recorded
   reproducer, so don't. *)

type t = { mutable s : int }

let make seed = { s = (seed * 2654435761) land 0x3FFFFFFF }

(* uniform draw in [0, n) *)
let int r n =
  r.s <- ((r.s * 1103515245) + 12345) land 0x3FFFFFFF;
  r.s mod n

let bool r = int r 2 = 1

(* an independent stream for sub-generators: mixing the tag keeps two
   streams split from the same parent decorrelated *)
let split r tag = make ((r.s lxor (tag * 0x9e3779b)) land 0x3FFFFFFF)

(* A secret sentinel: a high-entropy 64-bit value tagged in the top
   bits. Victim programs and adversarial code only ever compute small
   integers, so a sentinel can neither collide with legitimate program
   data nor be guessed by generated attacker writes — seeing one outside
   protected memory means the planted secret itself flowed there. *)
let sentinel r =
  let a = int r 0x1000000 and b = int r 0x1000000 in
  Int64.logor 0x5EC0_0000_0000_0000L
    (Int64.of_int (((a lor 0x800001) lsl 24) lor b))
