(* The property-check driver: the robust-safety harness of DESIGN.md
   §8.11. For every cell of the {walk,image} × {sim,parallel} matrix it
   compiles victim programs (Progen), attacks them with seeded
   adversarial scripts (Gen), and watches the secrecy monitor
   (Monitor): an unmutated checked partition must survive every script
   with zero violations, and each planted leak mutant must be killed —
   caught by the monitor — in every cell.

   Counterexamples shrink greedily: drop one action at a time, re-run
   the whole case from a fresh VM, keep the drop if the violation
   persists. Every case is reproducible from its seed alone. *)

open Privagic_pir
open Privagic_secure
open Privagic_vm
module Plan = Privagic_partition.Plan
module Parallel = Privagic_parallel.Parallel
module Delta = Privagic_replication.Delta
module Seal = Privagic_replication.Seal
module Txn = Privagic_txn.Txn
module Index = Privagic_txn.Index
module Protocol = Privagic_server.Protocol

(* ------------------------------------------------------------------ *)
(* the matrix                                                          *)

type backend = Sim | Par

type cell = { c_engine : Exec.engine; c_backend : backend }

let all_cells =
  [
    { c_engine = Exec.Walk; c_backend = Sim };
    { c_engine = Exec.Image; c_backend = Sim };
    { c_engine = Exec.Walk; c_backend = Par };
    { c_engine = Exec.Image; c_backend = Par };
  ]

let cell_name c =
  Printf.sprintf "%s/%s"
    (match c.c_engine with Exec.Walk -> "walk" | Exec.Image -> "image")
    (match c.c_backend with Sim -> "sim" | Par -> "parallel")

(* ------------------------------------------------------------------ *)
(* victims -> plans                                                    *)

(* a diagnostic from a victim is a generator bug, not a finding *)
let plan_of (v : Progen.victim) : Plan.t =
  let m = Privagic_minic.Driver.compile ~file:v.Progen.v_name v.Progen.v_source in
  let infer = Infer.run ~mode:v.Progen.v_mode m in
  if not (Infer.ok infer) then
    failwith
      (Printf.sprintf "robust: victim %s rejected by the checker: %s"
         v.Progen.v_name
         (String.concat "; "
            (List.map Diagnostic.to_string infer.Infer.diagnostics)));
  let plan = Plan.build ~mode:v.Progen.v_mode infer in
  if plan.Plan.diagnostics <> [] then
    failwith
      (Printf.sprintf "robust: victim %s rejected by the partitioner: %s"
         v.Progen.v_name
         (String.concat "; " (List.map Diagnostic.to_string plan.Plan.diagnostics)));
  plan

(* ------------------------------------------------------------------ *)
(* backend-agnostic target                                             *)

type target = {
  t_exec : Exec.t;
  t_call : thread:int -> string -> Rvalue.t list -> (Rvalue.t, string) result;
  t_inject : color:Color.t -> chunk:string -> Rvalue.t list -> (unit, string) result;
  t_guard : bool -> unit;
  t_race : (string * Rvalue.t list) list -> unit;
  t_shutdown : unit -> unit;
}

let make_target (cell : cell) (plan : Plan.t) (mon : Monitor.t) : target =
  match cell.c_backend with
  | Sim ->
    let pt =
      Pinterp.create ~config:Privagic_sgx.Config.machine_test
        ~engine:cell.c_engine plan
    in
    Monitor.attach mon pt.Pinterp.exec;
    let call ~thread e args =
      match Pinterp.call_entry pt ~thread e args with
      | r -> Ok r.Pinterp.value
      | exception Pinterp.Error s -> Error s
      | exception Exec.Trap s -> Error s
      | exception Heap.Fault (_, s) -> Error s
    in
    {
      t_exec = pt.Pinterp.exec;
      t_call = call;
      t_inject =
        (fun ~color ~chunk args ->
          match Pinterp.inject_spawn pt ~color ~chunk args with
          | r -> r
          | exception Pinterp.Error s -> Error s
          | exception Exec.Trap s -> Error s
          | exception Heap.Fault (_, s) -> Error s);
      t_guard = Pinterp.set_spawn_guard pt;
      t_race =
        (* the simulator has no extra lanes: alternate virtual threads *)
        (fun calls ->
          List.iteri
            (fun i (e, args) -> ignore (call ~thread:(i mod 2) e args))
            calls);
      t_shutdown = (fun () -> Monitor.detach pt.Pinterp.exec);
    }
  | Par ->
    let p =
      Parallel.create ~config:Privagic_sgx.Config.machine_test ~lanes:2
        ~engine:cell.c_engine plan
    in
    (* workers clone the shared executor lazily, so attaching before the
       first call covers every domain *)
    Monitor.attach mon (Parallel.exec p);
    let call ~thread e args =
      match Parallel.call_entry p ~thread e args with
      | r -> Ok r.Parallel.value
      | exception Parallel.Error s -> Error s
      | exception Exec.Trap s -> Error s
      | exception Heap.Fault (_, s) -> Error s
    in
    {
      t_exec = Parallel.exec p;
      t_call = call;
      t_inject =
        (fun ~color ~chunk args ->
          match Parallel.inject_spawn p ~color ~chunk args with
          | r -> r
          | exception Parallel.Error s -> Error s
          | exception Exec.Trap s -> Error s
          | exception Heap.Fault (_, s) -> Error s);
      t_guard = Parallel.set_spawn_guard p;
      t_race =
        (fun calls ->
          let ths =
            List.mapi
              (fun i (e, args) ->
                Thread.create (fun () -> ignore (call ~thread:(i mod 2) e args)) ())
              calls
          in
          List.iter Thread.join ths);
      t_shutdown =
        (fun () ->
          ignore (Parallel.shutdown p : bool);
          Monitor.detach (Parallel.exec p));
    }

(* ------------------------------------------------------------------ *)
(* running one adversarial script                                      *)

type kvctx = {
  kc_put : string;
  kc_get : string;
  kc_vsize : int;
  kc_vbuf : int;  (* client staging buffer (unsafe, as a real caller's) *)
  kc_obuf : int;
  kc_txn : Txn.t;
      (* the txn/index layer over the store, carrying the store's value
         color — its scan replies and hash lookups are attack surface *)
}

type ctx = {
  x_tgt : target;
  x_mon : Monitor.t;
  x_kv : kvctx option;
  x_guard_on : bool;
  x_sentinel : int64;
}

let secret_key = 7001 (* the kv key the sentinel value is stored under *)

let setup_kv (tgt : target) (v : Progen.victim) =
  match v.Progen.v_shape with
  | Progen.Scalar _ -> None
  | Progen.Kv { put; get; vsize } ->
    let heap = tgt.t_exec.Exec.heap in
    Some
      {
        kc_put = put;
        kc_get = get;
        kc_vsize = vsize;
        kc_vbuf = Heap.alloc heap Heap.Unsafe vsize;
        kc_obuf = Heap.alloc heap Heap.Unsafe vsize;
        kc_txn = Txn.create ~value_color:v.Progen.v_secret_color ();
      }

(* the exact value bytes the sentinel plant stages: vsize zeros with the
   sentinel little-endian at offset 8 (what plant writes into vbuf) *)
let sentinel_value ~vsize sentinel =
  let b = Bytes.make vsize '\000' in
  Bytes.blit_string (Monitor.le_bytes sentinel) 0 b 8 8;
  Bytes.to_string b

let fill_buf heap addr n byte =
  let w = Int64.of_int (byte land 0xff) in
  for k = 0 to n - 1 do
    Heap.store heap (addr + k) 1 w
  done

let rv l = List.map (fun v -> Rvalue.Int v) l

(* Plant the sentinel. Scalar victims: register it first, then classify
   it through the plant entry — with the vault correctly colored the
   store lands in the enclave zone and the monitor stays silent; the
   miscolor mutant turns this exact store into the leak. Kv victims:
   the sentinel must transit the client's unsafe staging buffer (that
   is ingress plaintext, not a leak), so stage, put, wipe, and only
   then register it with the monitor. *)
let plant (x : ctx) (v : Progen.victim) sentinel =
  match (v.Progen.v_shape, x.x_kv) with
  | Progen.Scalar { plant_entry; _ }, _ -> (
    Monitor.plant x.x_mon sentinel;
    match x.x_tgt.t_call ~thread:0 plant_entry [ Rvalue.Int sentinel ] with
    | Ok _ -> ()
    | Error e -> failwith ("robust: planting the sentinel failed: " ^ e))
  | Progen.Kv _, Some k -> (
    let heap = x.x_tgt.t_exec.Exec.heap in
    fill_buf heap k.kc_vbuf k.kc_vsize 0;
    Heap.store heap k.kc_vbuf 8 sentinel;
    (match
       x.x_tgt.t_call ~thread:0 k.kc_put
         [ Rvalue.Int (Int64.of_int secret_key); Rvalue.Ptr k.kc_vbuf ]
     with
    | Ok _ -> ()
    | Error e -> failwith ("robust: planting the sentinel failed: " ^ e));
    fill_buf heap k.kc_vbuf k.kc_vsize 0;
    (* commit hook: the index entry for the secret inherits the store's
       color, so (unmutated) it caches no value bytes *)
    Txn.note_put k.kc_txn ~key:secret_key
      ~value:(sentinel_value ~vsize:k.kc_vsize sentinel);
    Monitor.plant x.x_mon sentinel)
  | Progen.Kv _, None -> assert false

let apply (x : ctx) (act : Gen.action) =
  let t = x.x_tgt and mon = x.x_mon in
  let heap = t.t_exec.Exec.heap in
  match act with
  | Gen.Call { entry; args } -> ignore (t.t_call ~thread:0 entry (rv args))
  | Gen.Kv_put { key; tag } -> (
    match x.x_kv with
    | None -> ()
    | Some k -> (
      fill_buf heap k.kc_vbuf k.kc_vsize tag;
      match
        t.t_call ~thread:0 k.kc_put
          [ Rvalue.Int (Int64.of_int key); Rvalue.Ptr k.kc_vbuf ]
      with
      | Ok _ ->
        Txn.note_put k.kc_txn ~key
          ~value:(String.make k.kc_vsize (Char.chr (tag land 0xff)))
      | Error _ -> ()))
  | Gen.Kv_get { key } -> (
    match x.x_kv with
    | None -> ()
    | Some k ->
      ignore
        (t.t_call ~thread:0 k.kc_get
           [ Rvalue.Int (Int64.of_int key); Rvalue.Ptr k.kc_obuf ]))
  | Gen.Kv_scan { start; limit } -> (
    match x.x_kv with
    | None -> ()
    | Some k ->
      (* the scan reply a server would write to the client: render it
         and hold it against the wire check — the secrecy property says
         no index path may carry the secret's bytes out *)
      let items =
        List.map
          (fun (e : Index.entry) ->
            {
              Protocol.si_key = e.Index.e_key;
              si_ver = e.Index.e_version;
              si_val = e.Index.e_value;
            })
          (Txn.scan k.kc_txn ~start ~stop:(start + (2 * limit)) ~limit)
      in
      Monitor.check_wire mon ~where:"scan-reply"
        (Protocol.render (Protocol.Scan_reply items));
      if
        Txn.lookup k.kc_txn
          ~value:(sentinel_value ~vsize:k.kc_vsize x.x_sentinel)
        <> []
      then
        Monitor.violate mon ~kind:"index" ~where:"lookup"
          "secret value bytes resolvable through the hash index")
  | Gen.Kv_txn { ops } -> (
    match x.x_kv with
    | None -> ()
    | Some k ->
      let value_of tag = String.make k.kc_vsize (Char.chr (tag land 0xff)) in
      let o_get key =
        match
          t.t_call ~thread:0 k.kc_get
            [ Rvalue.Int (Int64.of_int key); Rvalue.Ptr k.kc_obuf ]
        with
        | Ok v when Rvalue.truthy v ->
          Ok
            (Some
               (String.init k.kc_vsize (fun i ->
                    Char.chr
                      (Int64.to_int (Heap.load heap (k.kc_obuf + i) 1)
                      land 0xff))))
        | Ok _ -> Ok None
        | Error e -> Error e
      in
      let o_set key value =
        String.iteri
          (fun i c ->
            Heap.store heap (k.kc_vbuf + i) 1 (Int64.of_int (Char.code c)))
          value;
        match
          t.t_call ~thread:0 k.kc_put
            [ Rvalue.Int (Int64.of_int key); Rvalue.Ptr k.kc_vbuf ]
        with
        | Ok _ -> Ok ()
        | Error e -> Error e
      in
      (* the kv victims expose no delete entry: a deleted key simply
         drops from the index/version tables, so del never rejects and
         stays applicable ([o_can_del = true]) *)
      let o_del _ = Ok false in
      let ops =
        List.map
          (function
            | Gen.Tx_get key -> Txn.T_get key
            | Gen.Tx_set (key, tag) -> Txn.T_set (key, value_of tag)
            | Gen.Tx_del key -> Txn.T_del key
            | Gen.Tx_cas (key, expect, tag) ->
              Txn.T_cas (key, expect, value_of tag))
          ops
      in
      ignore
        (Txn.execute k.kc_txn
           { Txn.o_get; o_set; o_del; o_max_value = k.kc_vsize;
             o_can_del = true }
           ops
          : Txn.outcome))
  | Gen.Probe { global; off } -> (
    match Hashtbl.find_opt t.t_exec.Exec.globals global with
    | Some a -> ( try ignore (Heap.load heap (a + off) 8 : int64) with Heap.Fault _ -> ())
    | None -> ())
  | Gen.Forge { global; off; value } -> (
    match Hashtbl.find_opt t.t_exec.Exec.globals global with
    | Some a -> ( try Heap.store heap (a + off) 8 value with Heap.Fault _ -> ())
    | None -> ())
  | Gen.Replay { color; chunk; args; times } ->
    for _ = 1 to times do
      ignore (t.t_inject ~color ~chunk (rv args))
    done
  | Gen.Inject { color; chunk; args } -> (
    Monitor.set_adversarial mon true;
    let res = t.t_inject ~color ~chunk (rv args) in
    Monitor.set_adversarial mon false;
    match res with
    | Error _ -> () (* the valid-spawn-sequence guard did its job *)
    | Ok () ->
      if x.x_guard_on then
        Monitor.violate mon ~kind:"guard" ~where:chunk
          "forged spawn of a never-spawned chunk was accepted")
  | Gen.Wrong_color { color; chunk } -> (
    match t.t_inject ~color ~chunk [] with
    | Error _ -> ()
    | Ok () ->
      Monitor.violate mon ~kind:"trampoline" ~where:chunk
        "spawn addressed to the wrong partition was accepted")
  | Gen.Race { calls } -> t.t_race (List.map (fun (e, a) -> (e, rv a)) calls)
  | Gen.Race_kv { keys } -> (
    match x.x_kv with
    | None -> ()
    | Some k ->
      t.t_race
        (List.map
           (fun key ->
             (k.kc_get, [ Rvalue.Int (Int64.of_int key); Rvalue.Ptr k.kc_obuf ]))
           keys))
  | Gen.Sweep -> Monitor.scan_heap mon ~where:"sweep" heap

(* the wire control: a properly sealed frame carrying the secret's
   bytes must leave no live pattern for the capture check to find *)
let wire_control mon (v : Progen.victim) sentinel =
  let sealer ~color ~nonce payload =
    Seal.seal ~key:(Seal.derive ~cluster:"robust" color) ~nonce payload
  in
  let d =
    {
      Delta.seq = 1;
      op =
        Delta.Put
          {
            key = 1;
            color = v.Progen.v_secret_color;
            payload = Monitor.le_bytes sentinel;
          };
    }
  in
  Monitor.check_wire mon ~where:"sealed-frame" (Delta.render ~sealer:(Some sealer) d)

(* one full case from a fresh VM: plant, run the script, final sweep,
   wire control *)
let run_with (cell : cell) (v : Progen.victim) ~sentinel acts :
    Monitor.violation list =
  let plan = plan_of v in
  let mon = Monitor.create () in
  let tgt = make_target cell plan mon in
  let x =
    { x_tgt = tgt; x_mon = mon; x_kv = setup_kv tgt v; x_guard_on = true;
      x_sentinel = sentinel }
  in
  (try
     plant x v sentinel;
     List.iter (apply x) acts;
     Monitor.scan_heap mon ~where:"final" tgt.t_exec.Exec.heap;
     wire_control mon v sentinel
   with e ->
     tgt.t_shutdown ();
     raise e);
  tgt.t_shutdown ();
  Monitor.violations mon

(* greedy counterexample shrinking: drop one action, fresh re-run, keep
   the drop while the violation persists *)
let shrink ~recheck acts =
  let cur = ref acts in
  let i = ref 0 in
  while !i < List.length !cur do
    let cand = List.filteri (fun j _ -> j <> !i) !cur in
    if recheck cand then cur := cand else incr i
  done;
  !cur

type case = {
  cs_cell : string;
  cs_victim : string;
  cs_seed : int;
  cs_actions : int;
  cs_violations : Monitor.violation list;
  cs_repro : Gen.action list; (* shrunk script, when violations exist *)
}

let run_case (cell : cell) (v : Progen.victim) ~seed ~declass ~count : case =
  let r = Rng.make seed in
  let sentinel = Rng.sentinel (Rng.split r 3) in
  let srf = Gen.surface (plan_of v) in
  let acts = Gen.generate (Rng.split r 5) srf v.Progen.v_shape ~declass ~count in
  let vs = run_with cell v ~sentinel acts in
  let repro =
    if vs = [] then []
    else shrink ~recheck:(fun a -> run_with cell v ~sentinel a <> []) acts
  in
  {
    cs_cell = cell_name cell;
    cs_victim = v.Progen.v_name;
    cs_seed = seed;
    cs_actions = List.length acts;
    cs_violations = vs;
    cs_repro = repro;
  }

(* ------------------------------------------------------------------ *)
(* kill-rate mode: planted leak mutants                                *)

type mutant = Miscolor_global | Skip_seal | Drop_guard | Miscolor_index

let all_mutants = [ Miscolor_global; Skip_seal; Drop_guard; Miscolor_index ]

let mutant_name = function
  | Miscolor_global -> "miscolor_global"
  | Skip_seal -> "skip_seal"
  | Drop_guard -> "drop_guard"
  | Miscolor_index -> "miscolor_index"

type kill = {
  k_cell : string;
  k_mutant : string;
  k_killed : bool;
  k_detail : string;
}

let first_violation mon =
  match Monitor.violations mon with
  | [] -> "NOT KILLED: monitor saw nothing"
  | v :: _ -> Monitor.pp_violation v

let run_mutant (cell : cell) (mutant : mutant) ~seed : kill =
  let v = Progen.vault_fixture in
  let sentinel = Rng.sentinel (Rng.make (seed + 0x5ec)) in
  let mon = Monitor.create () in
  (match mutant with
  | Miscolor_global ->
    (* the partitioner "forgets" the vault's color: the global lands in
       unsafe memory and the very classify that plants the secret
       becomes an unprotected store *)
    let plan = plan_of v in
    let plan =
      {
        plan with
        Plan.global_placement =
          List.map
            (fun (g, c) ->
              if String.equal g v.Progen.v_secret_global then (g, Color.Unsafe)
              else (g, c))
            plan.Plan.global_placement;
      }
    in
    let tgt = make_target cell plan mon in
    Monitor.plant mon sentinel;
    ignore (tgt.t_call ~thread:0 "put_secret" [ Rvalue.Int sentinel ]);
    Monitor.scan_heap mon ~where:"mutant" tgt.t_exec.Exec.heap;
    tgt.t_shutdown ()
  | Skip_seal ->
    (* the replication shipper "forgets" to seal a secret-colored
       payload before it reaches the wire *)
    let tgt = make_target cell (plan_of v) mon in
    Monitor.plant mon sentinel;
    ignore (tgt.t_call ~thread:0 "put_secret" [ Rvalue.Int sentinel ]);
    let d =
      {
        Delta.seq = 1;
        op =
          Delta.Put
            {
              key = 1;
              color = v.Progen.v_secret_color;
              payload = Monitor.le_bytes sentinel;
            };
      }
    in
    Monitor.check_wire mon ~where:"mutant-wire" (Delta.render ~sealer:None d);
    tgt.t_shutdown ()
  | Drop_guard ->
    (* the §8 valid-spawn-sequence barrier is dropped: every forged
       spawn now executes, and the audit chunk declassifies the vault
       on the attacker's behalf *)
    let plan = plan_of v in
    let tgt = make_target cell plan mon in
    Monitor.plant mon sentinel;
    ignore (tgt.t_call ~thread:0 "put_secret" [ Rvalue.Int sentinel ]);
    tgt.t_guard false;
    let srf = Gen.surface plan in
    List.iter
      (fun (c, n, arity) ->
        Monitor.set_adversarial mon true;
        ignore (tgt.t_inject ~color:c ~chunk:n (rv (List.init arity (fun _ -> 1L))));
        Monitor.set_adversarial mon false)
      srf.Gen.s_illegal;
    tgt.t_shutdown ()
  | Miscolor_index -> (
    (* the txn layer "forgets" the store's color: index entries for a
       secret-colored value cache its bytes as if the store were
       unprotected, and the first scan reply — and the hash index —
       carry the sentinel straight to a client connection *)
    let v = Progen.kv_hashmap ~nbuckets:8 ~vsize:32 in
    let tgt = make_target cell (plan_of v) mon in
    match v.Progen.v_shape with
    | Progen.Kv { put; vsize; _ } ->
      let heap = tgt.t_exec.Exec.heap in
      let vbuf = Heap.alloc heap Heap.Unsafe vsize in
      fill_buf heap vbuf vsize 0;
      Heap.store heap vbuf 8 sentinel;
      ignore
        (tgt.t_call ~thread:0 put
           [ Rvalue.Int (Int64.of_int secret_key); Rvalue.Ptr vbuf ]);
      fill_buf heap vbuf vsize 0;
      Monitor.plant mon sentinel;
      let bytes = sentinel_value ~vsize sentinel in
      let txn = Txn.create ~value_color:Index.unprotected_color () in
      Txn.note_put txn ~key:secret_key ~value:bytes;
      let items =
        List.map
          (fun (e : Index.entry) ->
            {
              Protocol.si_key = e.Index.e_key;
              si_ver = e.Index.e_version;
              si_val = e.Index.e_value;
            })
          (Txn.scan txn ~start:secret_key ~stop:secret_key ~limit:8)
      in
      Monitor.check_wire mon ~where:"mutant-scan"
        (Protocol.render (Protocol.Scan_reply items));
      if Txn.lookup txn ~value:bytes <> [] then
        Monitor.violate mon ~kind:"index" ~where:"mutant-lookup"
          "secret value bytes resolvable through the hash index";
      tgt.t_shutdown ()
    | Progen.Scalar _ -> assert false));
  {
    k_cell = cell_name cell;
    k_mutant = mutant_name mutant;
    k_killed = not (Monitor.ok mon);
    k_detail = first_violation mon;
  }

(* ------------------------------------------------------------------ *)
(* the fuzz campaign                                                   *)

type cell_stats = {
  st_cell : string;
  st_programs : int;
  st_actions : int;
  st_failures : case list;
  st_wall : float;
}

type report = {
  rp_seed : int;
  rp_programs : int;
  rp_actions : int;
  rp_cells : cell_stats list;
  rp_kills : kill list;
  rp_wall : float;
}

let violations_total rp =
  List.fold_left
    (fun a st ->
      a
      + List.fold_left (fun a c -> a + List.length c.cs_violations) 0 st.st_failures)
    0 rp.rp_cells

let failures rp = List.concat_map (fun st -> st.st_failures) rp.rp_cells

let kill_rate rp =
  match rp.rp_kills with
  | [] -> 1.0
  | ks ->
    float_of_int (List.length (List.filter (fun k -> k.k_killed) ks))
    /. float_of_int (List.length ks)

let passed rp = violations_total rp = 0 && kill_rate rp = 1.0

(* program quota per cell: the simulator cells soak most of the corpus,
   the parallel cells cover the extra-lane races *)
let quotas programs =
  let share w = max 1 (programs * w / 100) in
  let ws = share 35 and ps = share 15 in
  match all_cells with
  | [ wsim; isim; wpar; ipar ] ->
    [ (wsim, ws); (isim, max 1 (programs - ws - (2 * ps))); (wpar, ps); (ipar, ps) ]
  | _ -> assert false

(* every 7th program is a key-value workload victim, the rest are
   seeded random vault programs *)
let pick_victim k pseed =
  if k mod 7 = 3 then Progen.kv_hashmap ~nbuckets:8 ~vsize:32
  else Progen.vault pseed

let fuzz ?(seed = 1) ?(programs = 500) ?(progress = fun (_ : case) -> ()) () :
    report =
  let t0 = Unix.gettimeofday () in
  let counter = ref 0 in
  let cells =
    List.map
      (fun (cell, n) ->
        let t1 = Unix.gettimeofday () in
        let cases =
          List.init n (fun _ ->
              let k = !counter in
              incr counter;
              let pseed = (seed * 1_000_003) + k in
              let v = pick_victim k pseed in
              let c =
                run_case cell v ~seed:pseed
                  ~declass:(k mod 3 <> 0)
                  ~count:(24 + (8 * (k mod 3)))
              in
              progress c;
              c)
        in
        {
          st_cell = cell_name cell;
          st_programs = n;
          st_actions = List.fold_left (fun a c -> a + c.cs_actions) 0 cases;
          st_failures = List.filter (fun c -> c.cs_violations <> []) cases;
          st_wall = Unix.gettimeofday () -. t1;
        })
      (quotas programs)
  in
  let kills =
    List.concat_map
      (fun cell -> List.map (fun m -> run_mutant cell m ~seed) all_mutants)
      all_cells
  in
  {
    rp_seed = seed;
    rp_programs = List.fold_left (fun a st -> a + st.st_programs) 0 cells;
    rp_actions = List.fold_left (fun a st -> a + st.st_actions) 0 cells;
    rp_cells = cells;
    rp_kills = kills;
    rp_wall = Unix.gettimeofday () -. t0;
  }

(* ------------------------------------------------------------------ *)
(* report rendering                                                    *)

let json_str s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let write_json ~path rp =
  let b = Buffer.create 4096 in
  let p fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  p "{\n";
  p "  \"bench\": \"robust\",\n";
  p "  \"seed\": %d,\n" rp.rp_seed;
  p "  \"programs\": %d,\n" rp.rp_programs;
  p "  \"actions\": %d,\n" rp.rp_actions;
  p "  \"violations\": %d,\n" (violations_total rp);
  p "  \"mutants\": %d,\n" (List.length rp.rp_kills);
  p "  \"mutants_killed\": %d,\n"
    (List.length (List.filter (fun k -> k.k_killed) rp.rp_kills));
  p "  \"kill_rate\": %.3f,\n" (kill_rate rp);
  p "  \"programs_per_sec\": %.1f,\n"
    (if rp.rp_wall > 0. then float_of_int rp.rp_programs /. rp.rp_wall else 0.);
  p "  \"wall_seconds\": %.3f,\n" rp.rp_wall;
  p "  \"cells\": [\n";
  List.iteri
    (fun i st ->
      p "    { \"cell\": %s, \"programs\": %d, \"actions\": %d,\n"
        (json_str st.st_cell) st.st_programs st.st_actions;
      p "      \"violations\": %d, \"programs_per_sec\": %.1f, \"wall_seconds\": %.3f }%s\n"
        (List.fold_left (fun a c -> a + List.length c.cs_violations) 0 st.st_failures)
        (if st.st_wall > 0. then float_of_int st.st_programs /. st.st_wall else 0.)
        st.st_wall
        (if i = List.length rp.rp_cells - 1 then "" else ","))
    rp.rp_cells;
  p "  ],\n";
  p "  \"kills\": [\n";
  List.iteri
    (fun i k ->
      p "    { \"cell\": %s, \"mutant\": %s, \"killed\": %b, \"detail\": %s }%s\n"
        (json_str k.k_cell) (json_str k.k_mutant) k.k_killed (json_str k.k_detail)
        (if i = List.length rp.rp_kills - 1 then "" else ","))
    rp.rp_kills;
  p "  ]\n";
  p "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc

(* the one-line reproducer a failing case prints *)
let reproducer rp (c : case) =
  Printf.sprintf
    "reproduce: privagic fuzz --seed %d --programs %d   (case seed %d, cell %s, victim %s)"
    rp.rp_seed rp.rp_programs c.cs_seed c.cs_cell c.cs_victim
