(* Victim programs for the robust-safety suite: fixed, checked colored
   partitions the adversarial generator (Gen) attacks.

   Every victim owns a secret-colored vault the driver plants a sentinel
   into through a classify entry. Scalar victims carry the vault in one
   blue global plus the audit pattern of examples/attack_surface.ml: an
   internal function, direct-called from a blue chunk, whose body
   declassifies the vault. Its chunk exists in the plan but is not a
   valid spawn target — the only way an attacker reaches it is a forged
   spawn message past the §8 guard, which is exactly what the drop-guard
   leak mutant removes. Key-value victims are the evaluation workloads
   (lib/workloads) unchanged; their vault is a value buffer classified
   into the colored store. *)

open Privagic_secure
module Programs = Privagic_workloads.Programs

let sp = Printf.sprintf

type shape =
  | Scalar of {
      plant_entry : string;  (** classify-the-sentinel entry, arity 1 *)
      safe_entries : (string * int) list;
          (** interface traffic that never declassifies the vault *)
      declass_entries : (string * int) list;
          (** interface traffic that legitimately declassifies it *)
    }
  | Kv of { put : string; get : string; vsize : int }

type victim = {
  v_name : string;
  v_mode : Mode.t;
  v_source : string;
  v_secret_global : string;  (** the vault global (miscolor-mutant target) *)
  v_secret_color : string;   (** its enclave color name *)
  v_shape : shape;
}

(* ------------------------------------------------------------------ *)
(* random scalar victims                                               *)

(* public integer expressions over the entry parameter, the public
   globals and a helper call; total operators only (no division), as in
   test_image.ml's generator *)
let rec gen_expr r ~helper depth =
  if depth = 0 || Rng.int r 3 = 0 then
    match Rng.int r 5 with
    | 0 -> string_of_int (1 + Rng.int r 96)
    | 1 -> "a"
    | 2 -> "y"
    | 3 -> "z"
    | _ -> "t"
  else
    match Rng.int r (if helper then 6 else 5) with
    | 0 -> sp "(%s + %s)" (gen_expr r ~helper (depth - 1)) (gen_expr r ~helper (depth - 1))
    | 1 -> sp "(%s - %s)" (gen_expr r ~helper (depth - 1)) (gen_expr r ~helper (depth - 1))
    | 2 -> sp "(%s * %s)" (gen_expr r ~helper (depth - 1)) (gen_expr r ~helper (depth - 1))
    | 3 -> sp "(%s & %s)" (gen_expr r ~helper (depth - 1)) (gen_expr r ~helper (depth - 1))
    | 4 -> sp "(%s >> %d)" (gen_expr r ~helper (depth - 1)) (1 + Rng.int r 3)
    | _ -> sp "helper(%s)" (gen_expr r ~helper (depth - 1))

let gen_cond r =
  let op = match Rng.int r 4 with 0 -> "<" | 1 -> ">" | 2 -> "==" | _ -> "!=" in
  sp "(%s %s %s)" (gen_expr r ~helper:true 1) op (gen_expr r ~helper:true 1)

(* Unlike the image suite's generator, victims never write the vault:
   the kill-rate mutants need [b] to still hold the planted sentinel
   when the adversary strikes, so the only blue access outside the
   fixed skeleton is reading it through the declassify entries. *)
let gen_simple r ~helper =
  match Rng.int r 3 with
  | 0 -> sp "y = %s;" (gen_expr r ~helper 2)
  | 1 -> sp "z = %s;" (gen_expr r ~helper 2)
  | _ -> sp "t = %s;" (gen_expr r ~helper 2)

let rec gen_stmt r loops depth =
  if depth = 0 then gen_simple r ~helper:true
  else
    match Rng.int r 5 with
    | 0 | 1 -> gen_simple r ~helper:true
    | 2 ->
      sp "if %s { %s } else { %s }" (gen_cond r)
        (gen_block r loops (depth - 1))
        (gen_block r loops (depth - 1))
    | _ ->
      if !loops >= 3 then gen_simple r ~helper:true
      else begin
        let c = sp "c%d" !loops in
        incr loops;
        let n = 2 + Rng.int r 5 in
        let body =
          String.concat " "
            (List.init (1 + Rng.int r 3) (fun _ -> gen_simple r ~helper:false))
        in
        sp "%s = 0; while (%s < %d) { %s %s = %s + 1; }" c c n body c c
      end

and gen_block r loops depth =
  String.concat " "
    (List.init (2 + Rng.int r 3) (fun _ -> gen_stmt r loops depth))

let gen_entry r name =
  let loops = ref 0 in
  sp
    "entry int %s(int a) {\n\
    \  int t = 0;\n\
    \  int c0 = 0;\n\
    \  int c1 = 0;\n\
    \  int c2 = 0;\n\
    \  %s\n\
    \  return y + z + t;\n\
     }\n"
    name
    (gen_block r loops 2)

(* the fixed skeleton around the random entries: the vault, its plant
   and declassify interface, and the audit pattern *)
let scalar_source body =
  sp
    {|
ignore extern void classify_i64(int* d, int v);
ignore extern void declassify_i64(int* d, int v);
int color(blue) b;
int y;
int z;
int rstatus;
int dbg;
int helper(int a) {
  return a * 3 + 1;
}
void audit(int color(blue) x) {
  declassify_i64(&dbg, b);
}
entry void put_secret(int v) {
  classify_i64(&b, v);
}
entry void maintenance(int v) {
  int color(blue) k;
  classify_i64(&k, v);
  audit(k);
}
%s
entry int readb() {
  declassify_i64(&rstatus, b);
  return rstatus;
}
|}
    body

let scalar_shape =
  Scalar
    {
      plant_entry = "put_secret";
      safe_entries = [ ("f0", 1); ("f1", 1) ];
      declass_entries = [ ("readb", 0); ("maintenance", 1) ];
    }

(* a seeded random victim: fixed secret skeleton, random public code *)
let vault seed =
  let r = Rng.make seed in
  {
    v_name = sp "vault-%d" seed;
    v_mode = Mode.Hardened;
    v_source = scalar_source (gen_entry r "f0" ^ gen_entry r "f1");
    v_secret_global = "b";
    v_secret_color = "blue";
    v_shape = scalar_shape;
  }

(* the deterministic scalar victim of the kill-rate mode: same skeleton,
   minimal public code — every mutant must leak through it identically
   on every cell *)
let vault_fixture =
  {
    v_name = "vault-fixture";
    v_mode = Mode.Hardened;
    v_source =
      scalar_source
        "entry int f0(int a) { y = a * 3 + 1; return y; }\n\
         entry int f1(int a) { z = a + y; return z; }\n";
    v_secret_global = "b";
    v_secret_color = "blue";
    v_shape = scalar_shape;
  }

(* ------------------------------------------------------------------ *)
(* workload victims                                                    *)

let kv_hashmap ~nbuckets ~vsize =
  {
    v_name = sp "hashmap-%dx%d" nbuckets vsize;
    v_mode = Mode.Hardened;
    v_source = Programs.hashmap ~nbuckets ~vsize `Colored;
    v_secret_global = "count";
    v_secret_color = "blue";
    v_shape = Kv { put = "hm_put"; get = "hm_get"; vsize };
  }

(* ------------------------------------------------------------------ *)
(* the attack-surface fixtures (examples/attack_surface.ml runs the
   same sources; test_robust.ml checks them as seeded regressions)     *)

(* forged spawn target: [audit]'s blue chunk is direct-called only, so
   the §8 guard must reject an injected spawn of it *)
let victim_forged_spawn =
  {|
ignore extern void classify_i64(int* d, int v);
void audit(int color(blue) x) { }
entry void set_vault(int v) {
  int color(blue) k;
  classify_i64(&k, v);
  audit(k);
}
|}

(* multi-color indirection: corrupting the unsafe [slot] pointer makes
   the enclave read from — and write secrets to — attacker memory,
   unless pointers are authenticated (--auth-pointers) *)
let victim_multicolor =
  {|
within extern void* malloc(int n);
ignore extern void classify_i64(int* d, int v);
ignore extern void declassify_i64(int* d, int v);
struct rec_ { int color(blue) key; int color(red) val; };
struct rec_* slot;
int rstatus;
entry void init() { slot = (struct rec_*) malloc(sizeof(struct rec_)); }
entry void set_key(int v) {
  int color(blue) k;
  classify_i64(&k, v);
  struct rec_* r = slot;
  r->key = k;
}
entry int get_key() {
  struct rec_* r = slot;
  declassify_i64(&rstatus, r->key);
  return rstatus;
}
|}
