(* The adversarial program generator: given a fixed, checked colored
   partition, synthesize hostile unsafe-side behaviour against it. The
   attacker of §8 owns unsafe memory and the message transport, nothing
   else — so the generated actions are exactly:

   - probing unsafe globals (reads of unprotected memory, looking for
     secret residue — asserted clean by the monitor's zone sweeps);
   - forging pointers with gep-style arithmetic into unsafe memory and
     writing through them (integrity pressure: the victim must not leak,
     whatever garbage its unsafe state holds);
   - replaying spawn messages the plan considers legal, repeatedly and
     out of context (the guard admits them; secrecy must still hold);
   - injecting spawns of chunks the plan never spawns (the §8 forged
     message; the valid-spawn-sequence guard must reject them);
   - calling trampolines with wrong-colored arguments (a spawn addressed
     to the wrong partition; the runtime must refuse);
   - racing the colored store from extra lanes (concurrent interface
     traffic on the parallel backend);

   interleaved with legitimate interface traffic and monitor sweep
   checkpoints. Everything is drawn from one seeded Rng stream.

   Forged activations only target chunks whose parameters are all
   integers: a forged pointer argument would fault inside a worker
   domain, which models a crash, not a leak — the secrecy property is
   about what executes, and the kill-rate mutants need the forged chunk
   to run. *)

open Privagic_pir
module Plan = Privagic_partition.Plan

(* transaction ops against the kv interface; tags stand for value bytes
   (the driver expands them to vsize-filled buffers) *)
type kv_txn_op =
  | Tx_get of int
  | Tx_set of int * int  (* key, tag *)
  | Tx_del of int
  | Tx_cas of int * int * int  (* key, expected version, tag *)

type action =
  | Call of { entry : string; args : int64 list }  (* legit interface traffic *)
  | Kv_put of { key : int; tag : int }  (* driver stages the value buffer *)
  | Kv_get of { key : int }
  | Kv_scan of { start : int; limit : int }
      (* range scan; the driver renders the reply and wire-checks it *)
  | Kv_txn of { ops : kv_txn_op list }  (* multi-op transaction *)
  | Probe of { global : string; off : int }
  | Forge of { global : string; off : int; value : int64 }
  | Replay of { color : Color.t; chunk : string; args : int64 list; times : int }
  | Inject of { color : Color.t; chunk : string; args : int64 list }
  | Wrong_color of { color : Color.t; chunk : string }
  | Race of { calls : (string * int64 list) list }
  | Race_kv of { keys : int list }
  | Sweep  (* monitor checkpoint: scan unprotected zones *)

let action_name = function
  | Call _ -> "call"
  | Kv_put _ -> "kv_put"
  | Kv_get _ -> "kv_get"
  | Kv_scan _ -> "kv_scan"
  | Kv_txn _ -> "kv_txn"
  | Probe _ -> "probe"
  | Forge _ -> "forge"
  | Replay _ -> "replay"
  | Inject _ -> "inject"
  | Wrong_color _ -> "wrong_color"
  | Race _ -> "race"
  | Race_kv _ -> "race_kv"
  | Sweep -> "sweep"

let describe = function
  | Call { entry; args } ->
    Printf.sprintf "call %s(%s)" entry
      (String.concat "," (List.map Int64.to_string args))
  | Kv_put { key; tag } -> Printf.sprintf "kv_put key=%d tag=%d" key tag
  | Kv_get { key } -> Printf.sprintf "kv_get key=%d" key
  | Kv_scan { start; limit } ->
    Printf.sprintf "kv_scan start=%d limit=%d" start limit
  | Kv_txn { ops } ->
    Printf.sprintf "kv_txn [%s]"
      (String.concat ";"
         (List.map
            (function
              | Tx_get k -> Printf.sprintf "get %d" k
              | Tx_set (k, tag) -> Printf.sprintf "set %d tag=%d" k tag
              | Tx_del k -> Printf.sprintf "del %d" k
              | Tx_cas (k, v, tag) ->
                Printf.sprintf "cas %d v=%d tag=%d" k v tag)
            ops))
  | Probe { global; off } -> Printf.sprintf "probe %s+%d" global off
  | Forge { global; off; value } ->
    Printf.sprintf "forge *(&%s+%d)=%Ld" global off value
  | Replay { chunk; times; _ } -> Printf.sprintf "replay %s x%d" chunk times
  | Inject { chunk; _ } -> Printf.sprintf "inject %s" chunk
  | Wrong_color { color; chunk } ->
    Printf.sprintf "wrong-color spawn %s->%s" chunk (Color.to_string color)
  | Race { calls } -> Printf.sprintf "race %d calls" (List.length calls)
  | Race_kv { keys } -> Printf.sprintf "race %d gets" (List.length keys)
  | Sweep -> "sweep"

(* ------------------------------------------------------------------ *)
(* the attack surface a plan exposes                                   *)

type surface = {
  s_unsafe_globals : string list;
  s_legal : (Color.t * string * int) list;  (* valid spawn targets, arity *)
  s_illegal : (Color.t * string * int) list;  (* guard-rejected chunks *)
}

let int_params (f : Func.t) =
  List.for_all
    (fun (_, (ty : Ty.t)) -> match ty.Ty.desc with Ty.I64 -> true | _ -> false)
    f.Func.params

let surface (plan : Plan.t) : surface =
  let named =
    List.filter_map
      (fun (f : Func.t) ->
        if not (int_params f) then None
        else
          match Privagic_vm.Dispatch.locate_chunk plan f.Func.name with
          | Some (_, _, c) -> Some (c, f.Func.name, List.length f.Func.params)
          | None -> None)
      (Privagic_vm.Dispatch.chunk_funcs plan)
  in
  let legal, illegal =
    List.partition (fun (c, n, _) -> Plan.spawn_allowed plan c n) named
  in
  {
    s_unsafe_globals =
      List.filter_map
        (fun (g, c) ->
          match c with Color.Named _ -> None | _ -> Some g)
        plan.Plan.global_placement;
    s_legal = legal;
    s_illegal = illegal;
  }

(* ------------------------------------------------------------------ *)
(* generation                                                          *)

let junk r = Int64.of_int (Rng.int r 1000)
let junk_args r arity = List.init arity (fun _ -> junk r)
let pick r = function [] -> None | l -> Some (List.nth l (Rng.int r (List.length l)))

(* traffic on the victim's interface; [declass] admits entries that
   legitimately declassify the vault (the kill-rate mode excludes them
   so the sentinel stays live for the mutant to leak) *)
let gen_traffic r (shape : Progen.shape) ~declass =
  match shape with
  | Progen.Scalar { safe_entries; declass_entries; _ } ->
    let pool = if declass then safe_entries @ declass_entries else safe_entries in
    (match pick r pool with
    | Some (e, arity) -> Call { entry = e; args = junk_args r arity }
    | None -> Sweep)
  | Progen.Kv _ ->
    let key = Rng.int r 64 in
    if Rng.bool r then Kv_put { key; tag = Rng.int r 256 } else Kv_get { key }

let gen_txn_ops r =
  List.init
    (1 + Rng.int r 4)
    (fun _ ->
      let key = Rng.int r 64 in
      match Rng.int r 4 with
      | 0 -> Tx_get key
      | 1 -> Tx_set (key, Rng.int r 256)
      | 2 -> Tx_del key
      | _ -> Tx_cas (key, Rng.int r 4, Rng.int r 256))

let gen_action r (s : surface) (shape : Progen.shape) ~declass =
  match Rng.int r 12 with
  | 0 | 1 | 2 -> gen_traffic r shape ~declass
  | 3 -> (
    match pick r s.s_unsafe_globals with
    | Some g -> Probe { global = g; off = 8 * Rng.int r 4 }
    | None -> Sweep)
  | 4 | 5 -> (
    match pick r s.s_unsafe_globals with
    | Some g ->
      Forge { global = g; off = 8 * Rng.int r 8; value = junk r }
    | None -> Sweep)
  | 6 -> (
    match pick r s.s_legal with
    | Some (c, n, arity) ->
      Replay
        { color = c; chunk = n; args = junk_args r arity; times = 1 + Rng.int r 3 }
    | None -> Sweep)
  | 7 -> (
    match pick r s.s_illegal with
    | Some (c, n, arity) -> Inject { color = c; chunk = n; args = junk_args r arity }
    | None -> Sweep)
  | 8 -> (
    (* a spawn addressed to a partition the chunk does not belong to *)
    match pick r (s.s_legal @ s.s_illegal) with
    | Some (c, n, _) ->
      let wrong =
        match c with
        | Color.Named e -> Color.Named (e ^ "_forged")
        | _ -> Color.Named "forged"
      in
      Wrong_color { color = wrong; chunk = n }
    | None -> Sweep)
  | 9 -> (
    match shape with
    | Progen.Scalar { safe_entries; _ } -> (
      match safe_entries with
      | [] -> Sweep
      | pool ->
        let calls =
          List.init
            (2 + Rng.int r 2)
            (fun _ ->
              let e, arity = Option.get (pick r pool) in
              (e, junk_args r arity))
        in
        Race { calls })
    | Progen.Kv _ -> Race_kv { keys = List.init (2 + Rng.int r 2) (fun _ -> Rng.int r 64) })
  | 10 -> (
    (* range scan over the colored store: its rendered reply goes
       through the wire check, so a value leaking into the index shows
       up as a live sentinel on a client connection *)
    match shape with
    | Progen.Kv _ -> Kv_scan { start = Rng.int r 64; limit = 1 + Rng.int r 8 }
    | Progen.Scalar _ -> gen_traffic r shape ~declass)
  | _ -> (
    match shape with
    | Progen.Kv _ -> Kv_txn { ops = gen_txn_ops r }
    | Progen.Scalar _ -> gen_traffic r shape ~declass)

(* the action script of one fuzz case: traffic and attacks interleaved,
   a sweep checkpoint every few actions and one at the end *)
let generate r (s : surface) (shape : Progen.shape) ~declass ~count =
  let acts = ref [] in
  for k = 1 to count do
    acts := gen_action r s shape ~declass :: !acts;
    if k mod 6 = 0 then acts := Sweep :: !acts
  done;
  List.rev (Sweep :: !acts)
