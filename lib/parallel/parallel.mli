(** Real-parallel execution backend: runs a {!Privagic_partition.Plan}
    on OCaml 5 domains, with the lock-free runtime queue as the
    inter-partition channel — the §7.3 architecture on actual hardware
    threads, measured in wall-clock time.

    {!Pinterp} executes the same architecture (and the same {!Dispatch}
    decisions) in virtual time on one core; it is the deterministic
    oracle this backend is differentially tested against. See DESIGN.md
    §8.7 for what transfers between the two and what deliberately
    differs. *)

open Privagic_pir
open Privagic_vm
module Sgx = Privagic_sgx
module Tel = Privagic_telemetry

exception Error of string

type t

(** Build the backend for a plan. [lanes] bounds the worker pool:
    application threads map onto [lanes] queues per color, so the domain
    count stays at [lanes × colors] no matter how many threads the
    program spawns (OCaml caps usable domains near the core count).
    [engine] selects the execution engine (default
    [Exec.default_engine ()]): [Image] builds the flattened linked image
    once before the first domain starts and every worker shares it
    read-only; [Walk] keeps the tree-walking oracle. *)
val create :
  ?config:Sgx.Config.t ->
  ?cost:Sgx.Cost.t ->
  ?lanes:int ->
  ?engine:Exec.engine ->
  Privagic_partition.Plan.t ->
  t

type entry_result = { value : Rvalue.t; wall_seconds : float }

(** Call an entry point through its §7.3.4 interface and wait for the
    response {e and} for pool quiescence (background threads spawned by
    the request finish first, matching the simulator's semantics).
    [timeout_s] (default 60) turns a deadlocked pool into an [Error]
    mentioning "timed out" instead of a hang.
    @raise Error on traps, timeouts, and runtime failures. *)
val call_entry :
  t -> ?thread:int -> ?timeout_s:float -> string -> Rvalue.t list ->
  entry_result

(** Close every worker queue and join the domains. Returns [false] if the
    pool failed to quiesce within [timeout_s] (default 10) — queues are
    closed anyway, but stuck domains are not joined. Call once, last. *)
val shutdown : ?timeout_s:float -> t -> bool

(** Combined stdout of all workers (deterministic worker order, not
    global emission order — wall-clock interleaving is not replayable). *)
val output : t -> string

(** The shared executor: differential tests read final heap and global
    state through it. *)
val exec : t -> Exec.t

(** Number of domains spawned so far (0 before the first entry call). *)
val domain_count : t -> int

(** Executed instructions summed over the base executor and all workers.
    Call between requests (quiescent pool) for an exact count. *)
val total_steps : t -> int

(** Monitoring snapshot of the pool. The fields are read individually
    (each one atomically); under concurrent activity they need not be
    mutually consistent — this is telemetry, not a synchronization
    primitive. *)
type pool_stats = {
  ps_lanes : int;
  ps_domains : int;
  ps_inflight : int;        (** chunks/entries created but not yet done *)
  ps_entries_served : int;  (** completed entry-interface requests *)
  ps_threads_started : int; (** §7.3 application threads ever created *)
}

val stats : t -> pool_stats

(** §8 extension: inject a forged spawn message into a partition's queue.
    The valid-spawn-target guard rejects it at dequeue, in the target
    partition. *)
val inject_spawn :
  t -> ?thread:int -> color:Color.t -> chunk:string -> Rvalue.t list ->
  (unit, string) result

val set_spawn_guard : t -> bool -> unit

(** Attach a telemetry recorder; events carry wall-clock microseconds
    since this call. Attach before the first entry call — workers
    created earlier recorded nothing. *)
val set_telemetry : t -> Tel.Recorder.t -> unit

(** {2 Observability (lib/obs)}

    Always-on unless [PRIVAGIC_OBS=off]: each worker owns a
    {!Privagic_obs.Lane} (phase accounting over run / pump-wait /
    queue-wait / barrier / park plus an event ring). Snapshots taken
    while the pool is active are monitoring-grade (at most one in-flight
    transition stale per lane); after [call_entry] returns or [shutdown]
    joins the domains they are exact. *)

(** Per-worker lanes in deterministic (lane, color) order; empty with
    obs off or before the first worker starts. *)
val obs_lanes : t -> Privagic_obs.Lane.t list

(** Phase decomposition of each lane's wall time, snapshotted now. *)
val lane_breakdowns : t -> Privagic_obs.Lane.breakdown list

(** All worker rings merged into one deterministic timeline. Call on a
    quiescent pool (see {!Privagic_obs.Ring.merge}). *)
val obs_events : t -> Privagic_obs.Ring.event array

(** Extern dispatches summed over the base executor and all workers. *)
val total_externs : t -> int

(** Declassification calls per color name, off the shared extern path
    (sorted by color). *)
val declass_counts : t -> (string * int) list

(** Register the pool's gauges (domains, inflight, steps, externs,
    per-lane phase times, per-color declassify counts, ring drops) on a
    registry. The gauges sample the live pool at exposition time. *)
val register_obs : t -> Privagic_obs.Registry.t -> unit
