(* Real-parallel execution backend: runs a partition plan on OCaml 5
   domains with the lock-free Michael–Scott queue as the inter-partition
   channel — the runtime architecture of §7.3 on actual hardware threads,
   where Pinterp executes the same architecture in virtual time.

   Topology. Application threads are mapped onto a bounded set of lanes
   (real runtimes bound their thread pools; OCaml additionally caps the
   number of domains). Each (lane, color) pair owns one worker: a domain
   spinning on its own message queue. Spawn messages start missing chunks
   on the worker of their partition, cont messages carry return values,
   entry messages carry whole requests into the untrusted worker (§7.3.4).

   Host-order discipline (shared with the simulator, DESIGN.md §8.2/§8.7):
   chunks of one activation are serialized — spawned siblings run in color
   order, an untrusted leader runs its body after the spawned enclave
   stage, an enclave leader before it — so declassified values written to
   unsafe memory flow forward exactly as in the simulator. Real
   parallelism happens across application threads (the §7.3 [spawn]
   instruction) and across concurrent entry calls.

   The one rule that keeps this deadlock-free: a worker that has to wait —
   for a return value, for the spawned stage, for a sibling, at a barrier
   — never blocks the domain. It *pumps* its own queue (executing nested
   spawns, stashing conts) until the condition holds. The simulator gets
   the same effect from fiber multiplexing; a parked domain would instead
   deadlock as soon as a nested spawn targeted it.

   Shutdown closes every queue (see msqueue.mli for the drain protocol)
   and joins the domains. *)

open Privagic_pir
open Privagic_secure
open Privagic_partition
open Privagic_vm
module Sgx = Privagic_sgx
module Msq = Privagic_runtime.Msqueue
module Tel = Privagic_telemetry
module Obs = Privagic_obs

exception Error of string

(* One executing instance of a function. Participants at a call site each
   build their own record (with the deterministically agreed sequence
   number, see Dispatch.child_seq); only the leader's record travels in
   spawn messages, so the leader and its spawned chunks share the pending
   count and completion set. *)
type activation = {
  act_seq : int;
  act_key : Infer.instance_key;
  act_pf : Plan.pfunc;
  act_participants : Color.t list;
  act_spawned : Color.t list;      (* colors started via spawn messages *)
  act_pending : int Atomic.t;      (* spawned chunks still running *)
  act_done : Color.t list Atomic.t; (* spawned chunks completed *)
}

type slot = {
  s_mu : Mutex.t;
  s_cv : Condition.t;
  mutable s_result : (Rvalue.t, string) result option;
}

type msg =
  | Spawn of {
      sp_act : activation;
      sp_args : Rvalue.t array;
      sp_reply_to : (int * Color.t) list; (* (thread, color) for the retval *)
      sp_forged : bool;                   (* attacker-injected (§8) *)
    }
  | Cont of { c_seq : int; c_value : Rvalue.t }
  | Entry of {
      e_act : activation;
      e_args : Rvalue.t array;
      e_direct : Color.t option; (* chunk the untrusted worker runs itself *)
      e_slot : slot;
    }

type worker = {
  w_lane : int;
  w_color : Color.t;
  w_queue : msg Msq.t;
  w_exec : Exec.t;                 (* per-domain executor, shared tables *)
  w_track : int;                   (* telemetry track *)
  mutable w_mail : (int * Rvalue.t) list; (* conts, own domain only *)
  mutable w_act : activation option;
  w_occ : (int * int, int ref) Hashtbl.t; (* barrier occurrence counters *)
  mutable w_domain : unit Domain.t option;
  w_obs : Obs.Lane.t option; (* phase accounting + event ring; None = obs off *)
}

type t = {
  plan : Plan.t;
  disp : Dispatch.t;
  base : Exec.t;                   (* template: shared heap/tables *)
  config : Sgx.Config.t;
  cost : Sgx.Cost.t option;
  lanes : int;
  workers : (int * string, worker) Hashtbl.t;
  wmu : Mutex.t;                   (* workers table + domain creation *)
  inflight : int Atomic.t;         (* chunks/entries created, not done *)
  next_thread : int Atomic.t;
  mutable guard : bool;            (* §8 valid-spawn-sequence guard *)
  tr_mu : Mutex.t;
  mutable traps : string list;
  bar_mu : Mutex.t;                (* barrier arrival/completion tables *)
  bar_arrived : (int * int * int * string, unit) Hashtbl.t;
  bar_done : (int * string, unit) Hashtbl.t;
  tel_mu : Mutex.t;                (* the recorder is not thread-safe *)
  mutable tel : Tel.Recorder.t;
  mutable t0 : float;              (* wall-clock epoch for telemetry *)
  mutable domains : int;
  entries_served : int Atomic.t;   (* completed call_entry requests *)
}

let dummy_hooks : Exec.hooks =
  {
    Exec.h_call = (fun _ _ _ _ -> Rvalue.zero);
    h_callind = (fun _ _ _ _ -> Rvalue.zero);
    h_spawn = (fun _ _ _ _ -> ());
    h_pre_instr = (fun _ _ -> ());
    h_alloca_zone = (fun _ _ -> Heap.Unsafe);
  }

(* Telemetry: same event vocabulary and sinks as the simulator, but
   timestamps are wall-clock microseconds since [set_telemetry]. *)
let now_us t = (Unix.gettimeofday () -. t.t0) *. 1e6

let tel_record t ~track ?name ?arg kind =
  if Tel.Recorder.enabled t.tel then begin
    Mutex.lock t.tel_mu;
    Tel.Recorder.record t.tel ~at:(now_us t) ~track ?name ?arg kind;
    Mutex.unlock t.tel_mu
  end

let add_trap t msg =
  Mutex.lock t.tr_mu;
  t.traps <- msg :: t.traps;
  Mutex.unlock t.tr_mu

let take_traps t =
  Mutex.lock t.tr_mu;
  let msgs = t.traps in
  t.traps <- [];
  Mutex.unlock t.tr_mu;
  List.rev msgs

let fill_slot (slot : slot) r =
  Mutex.lock slot.s_mu;
  slot.s_result <- Some r;
  Condition.broadcast slot.s_cv;
  Mutex.unlock slot.s_mu

(* Hybrid idle backoff: spin briefly (a message usually follows within the
   latency of one chunk), then yield the core. *)
let spin_budget = 1000

let idle_wait counter =
  incr counter;
  if !counter < spin_budget then Domain.cpu_relax () else Unix.sleepf 0.0001

(* Obs phase hooks. Transitions only happen at backoff boundaries and
   message/chunk edges, never inside the spin loop, so the obs-on cost is
   a few clock reads per message — see BENCH_obs.json for the measured
   budget. With obs off ([w_obs = None]) each hook is a match on None. *)
let[@inline] obs_enter w p =
  match w.w_obs with
  | None -> ()
  | Some l -> Obs.Lane.enter l p ~now_us:(Obs.now_us ())

let[@inline] obs_current w =
  match w.w_obs with None -> -1 | Some l -> Obs.Lane.current l

let[@inline] obs_enter_index w p =
  match w.w_obs with
  | None -> ()
  | Some l -> Obs.Lane.enter_index l p ~now_us:(Obs.now_us ())

let pfunc_exn t key =
  match Dispatch.find_pfunc t.disp key with
  | Some pf -> pf
  | None ->
    raise (Error ("no partitioned function for " ^ Infer.instance_name key))

let chunk_for_exn (pf : Plan.pfunc) (c : Color.t) : Func.t =
  match Dispatch.chunk_for pf c with
  | Some f -> f
  | None ->
    raise
      (Error
         (Printf.sprintf "no %s chunk in %s" (Color.to_string c)
            (Infer.instance_name pf.Plan.pf_key)))

let cur_act (w : worker) =
  match w.w_act with
  | Some a -> a
  | None -> raise (Error "no current activation")

(* ------------------------------------------------------------------ *)
(* the worker pool *)

let rec worker t thread color : worker =
  let lane = thread mod t.lanes in
  let key = (lane, Color.to_string color) in
  Mutex.lock t.wmu;
  match Hashtbl.find_opt t.workers key with
  | Some w ->
    Mutex.unlock t.wmu;
    w
  | None ->
    let machine = Sgx.Machine.create ?cost:t.cost t.config in
    let track =
      if Tel.Recorder.enabled t.tel then begin
        Mutex.lock t.tel_mu;
        let tr =
          Tel.Recorder.fresh_track t.tel
            (Printf.sprintf "d%d/%s" lane (Color.to_string color))
        in
        Mutex.unlock t.tel_mu;
        tr
      end
      else 0
    in
    let w =
      {
        w_lane = lane;
        w_color = color;
        w_queue = Msq.create ();
        w_exec = Exec.clone_shared t.base ~machine ~hooks:dummy_hooks;
        w_track = track;
        w_mail = [];
        w_act = None;
        w_occ = Hashtbl.create 16;
        w_domain = None;
        w_obs =
          (if Obs.enabled () then
             (* ring id = worker creation index: unique within the pool,
                which is the unit rings get merged over *)
             Some
               (Obs.Lane.create ~id:t.domains
                  ~label:(Printf.sprintf "d%d/%s" lane (Color.to_string color))
                  ~now_us:(Obs.now_us ()) ())
           else None);
      }
    in
    w.w_exec.Exec.cpu <- Dispatch.cpu_of_color color;
    w.w_exec.Exec.hooks <- hooks_for t w;
    (match w.w_obs with
    | Some l -> w.w_exec.Exec.obs_ring <- Some (Obs.Lane.ring l)
    | None -> ());
    Hashtbl.replace t.workers key w;
    t.domains <- t.domains + 1;
    let d = Domain.spawn (fun () -> worker_loop t w) in
    w.w_domain <- Some d;
    Mutex.unlock t.wmu;
    w

and worker_loop t w =
  let idle = ref 0 in
  let stop = ref false in
  while not !stop do
    match Msq.pop w.w_queue with
    | Some m ->
      idle := 0;
      obs_enter w Obs.Phase.Run;
      handle t w m;
      obs_enter w Obs.Phase.Queue_wait
    | None ->
      if Msq.is_closed w.w_queue then begin
        (* drain protocol (msqueue.mli): exit only on a None pop observed
           after the close flag, so no pre-close message is lost *)
        match Msq.pop w.w_queue with
        | Some m ->
          idle := 0;
          obs_enter w Obs.Phase.Run;
          handle t w m;
          obs_enter w Obs.Phase.Queue_wait
        | None -> stop := true
      end
      else begin
        (* transitions only at the backoff boundaries: queue-wait on the
           first empty pop, park when the spin budget runs out *)
        if !idle = 0 then obs_enter w Obs.Phase.Queue_wait
        else if !idle = spin_budget - 1 then obs_enter w Obs.Phase.Park;
        idle_wait idle
      end
  done

and handle t w (m : msg) =
  match m with
  | Cont { c_seq; c_value } -> w.w_mail <- (c_seq, c_value) :: w.w_mail
  | Spawn _ -> exec_spawn t w m
  | Entry _ -> exec_entry t w m

(* A wait that keeps the domain useful: pump the worker's own queue until
   [pred] holds. Nested spawns execute here; without this, a spawn
   targeting a waiting worker would deadlock the pool (the simulator gets
   the same effect from fiber multiplexing). *)
and wait_until ?(phase = Obs.Phase.Pump_wait) t w pred =
  let saved = obs_current w in
  obs_enter w phase;
  let idle = ref 0 in
  while not (pred ()) do
    match Msq.pop w.w_queue with
    | Some m ->
      idle := 0;
      (* back from a possible park; nested chunks re-enter Run themselves *)
      obs_enter w phase;
      handle t w m
    | None ->
      if !idle = spin_budget - 1 then obs_enter w Obs.Phase.Park;
      idle_wait idle
  done;
  obs_enter_index w saved

and wait_pending t w (act : activation) =
  wait_until t w (fun () -> Atomic.get act.act_pending = 0)

and wait_cont t w ~seq : Rvalue.t =
  wait_until t w (fun () -> List.exists (fun (s, _) -> s = seq) w.w_mail);
  let rec take acc = function
    | [] -> raise (Error "wait_cont: message vanished")
    | (s, v) :: rest when s = seq -> (v, List.rev_append acc rest)
    | m :: rest -> take (m :: acc) rest
  in
  let v, rest = take [] w.w_mail in
  w.w_mail <- rest;
  tel_record t ~track:w.w_track ~name:"retval" Tel.Event.Msg_recv;
  v

and send_cont t (from : worker) ~thread ~color ~seq v =
  let target = worker t thread color in
  tel_record t ~track:from.w_track ~name:"retval" Tel.Event.Msg_send;
  Msq.push target.w_queue (Cont { c_seq = seq; c_value = v })

(* The in-flight count covers every created chunk/entry; [call_entry] and
   [inject_spawn] wait for it to drain, which also covers background
   application threads started with the §7.3 [spawn] instruction. *)
and send_spawn t (from : worker option) ~thread (act : activation)
    (d : Color.t) ~reply_to ~forged (args : Rvalue.t array) =
  Atomic.incr t.inflight;
  Atomic.incr act.act_pending;
  let target = worker t thread d in
  (match from with
  | Some fw -> tel_record t ~track:fw.w_track ~name:"spawn" Tel.Event.Msg_send
  | None -> ());
  Msq.push target.w_queue
    (Spawn { sp_act = act; sp_args = args; sp_reply_to = reply_to; sp_forged = forged })

and mark_done (act : activation) (c : Color.t) =
  (* completion set first, then the count: a waiter that observes
     pending = 0 (SC atomics) also observes the color in the set *)
  let rec push () =
    let cur = Atomic.get act.act_done in
    if not (Atomic.compare_and_set act.act_done cur (c :: cur)) then push ()
  in
  push ();
  Atomic.decr act.act_pending

and exec_spawn t w (s : msg) =
  match s with
  | Spawn { sp_act = act; sp_args; sp_reply_to; sp_forged } ->
    let chunk_name =
      match Dispatch.chunk_for act.act_pf w.w_color with
      | Some f -> f.Func.name
      | None -> "<missing>"
    in
    (* §8 extension: the valid-spawn-sequence guard, enforced where the
       runtime actually learns about the message — at dequeue, in the
       target partition, before anything executes *)
    if
      t.guard && sp_forged
      && not (Plan.spawn_allowed t.plan w.w_color chunk_name)
    then begin
      add_trap t
        (Printf.sprintf "spawn guard: %s rejected in %s" chunk_name
           (Color.to_string w.w_color));
      mark_done act w.w_color;
      Atomic.decr t.inflight
    end
    else begin
      tel_record t ~track:w.w_track ~name:"spawn" Tel.Event.Msg_recv;
      (* host order: spawned siblings of one activation serialize in color
         order, so declassifications flow forward deterministically *)
      let earlier =
        List.filter (fun d -> Color.compare d w.w_color < 0) act.act_spawned
      in
      if earlier <> [] then
        wait_until t w (fun () ->
            let done_ = Atomic.get act.act_done in
            List.for_all
              (fun d -> List.exists (Color.equal d) done_)
              earlier);
      (match run_chunk t w act sp_args with
      | r ->
        List.iter
          (fun (th, color) ->
            send_cont t w ~thread:th ~color ~seq:act.act_seq r)
          sp_reply_to
      | exception Exec.Trap msg -> add_trap t (chunk_name ^ ": " ^ msg)
      | exception Error msg -> add_trap t (chunk_name ^ ": " ^ msg));
      mark_done act w.w_color;
      Atomic.decr t.inflight
    end
  | _ -> ()

and run_chunk t w (act : activation) (args : Rvalue.t array) : Rvalue.t =
  let f = chunk_for_exn act.act_pf w.w_color in
  let saved = w.w_act in
  w.w_act <- Some act;
  tel_record t ~track:w.w_track ~name:f.Func.name Tel.Event.Chunk_begin;
  let obs_saved = obs_current w in
  obs_enter w Obs.Phase.Run;
  (match w.w_obs with
  | Some l ->
    Obs.Ring.record (Obs.Lane.ring l) ~code:Obs.Ring.code_chunk
      ~arg:act.act_seq ~t_us:(Obs.now_us ())
  | None -> ());
  let finish () =
    w.w_act <- saved;
    obs_enter_index w obs_saved;
    (* completion record for barrier predecessor checks *)
    Mutex.lock t.bar_mu;
    Hashtbl.replace t.bar_done (act.act_seq, Color.to_string w.w_color) ();
    Mutex.unlock t.bar_mu
  in
  match Exec.exec_func w.w_exec f args with
  | r ->
    tel_record t ~track:w.w_track ~name:f.Func.name Tel.Event.Chunk_end;
    finish ();
    r
  | exception e ->
    finish ();
    raise e

(* ------------------------------------------------------------------ *)
(* call dispatch (the decisions come from Dispatch, shared with Pinterp) *)

and dispatch_call t w (i : Instr.t) callee (args : Rvalue.t array) : Rvalue.t =
  let act = cur_act w in
  match Hashtbl.find_opt act.act_pf.Plan.pf_calls i.Instr.id with
  | Some cp -> dispatch_local_call t w i cp args
  | None ->
    if Pmodule.is_defined t.base.Exec.m callee then
      raise
        (Error
           (Printf.sprintf "call to @%s at instr %d has no plan in %s" callee
              i.Instr.id
              (Infer.instance_name act.act_key)))
    else
      Dispatch.dispatch_extern t.disp w.w_exec ~color:w.w_color
        ~caller:act.act_key.Infer.ik_func i callee args

and dispatch_local_call t w (i : Instr.t) (cp : Plan.call_plan)
    (args : Rvalue.t array) : Rvalue.t =
  let c = w.w_color in
  let thread = w.w_lane in
  let act = cur_act w in
  let callee_pf = pfunc_exn t cp.Plan.cp_key in
  let callee_cs = callee_pf.Plan.pf_colorset in
  let p_site =
    if act.act_pf.Plan.pf_colorset = [] then act.act_participants
    else Dispatch.site_presence t.disp act.act_pf i.Instr.id
  in
  let seq =
    Dispatch.child_seq t.disp ~seq:act.act_seq ~who:c
      ~fname:(Infer.instance_name act.act_key) ~instr:i.Instr.id
  in
  let { Dispatch.s_leader = leader; s_inter = inter; s_spawned = spawned;
        s_ret_sender = ret_sender } =
    Dispatch.site_layout ~p_site ~callee_cs ~self:c
  in
  let child_act =
    {
      act_seq = seq;
      act_key = cp.Plan.cp_key;
      act_pf = callee_pf;
      act_participants = (if callee_cs = [] then p_site else callee_cs);
      act_spawned = spawned;
      act_pending = Atomic.make 0;
      act_done = Atomic.make [];
    }
  in
  let needers =
    Dispatch.ret_needers t.disp ~caller_pf:act.act_pf ~p_site ~callee_cs i
  in
  (* the leader starts the missing chunks *)
  if Color.equal c leader && spawned <> [] then begin
    List.iter
      (fun d ->
        let reply_to =
          if inter = [] && Some d = ret_sender then
            List.map (fun n -> (thread, n)) needers
          else []
        in
        send_spawn t (Some w) ~thread child_act d ~reply_to ~forged:false args)
      spawned;
    (* host order: an untrusted leader lets the spawned enclave stage
       complete before its own body, so declassified values are visible *)
    if not (Color.is_enclave c) then wait_pending t w child_act
  end;
  let result =
    if callee_cs = [] then
      (* pure-F callee: replicated, executes inline everywhere *)
      run_chunk t w child_act args
    else if List.mem c callee_cs then begin
      (* direct call (§7.3.2): inline execution in this worker *)
      let r = run_chunk t w child_act args in
      (if Some c = ret_sender && inter <> [] then
         List.iter
           (fun d -> send_cont t w ~thread ~color:d ~seq r)
           needers);
      r
    end
    else if List.mem c needers then wait_cont t w ~seq
    else Rvalue.zero
  in
  (* an enclave leader waits after its own (direct) work *)
  if Color.equal c leader && Color.is_enclave c then
    wait_pending t w child_act;
  result

(* Indirect call to a defined function (§6.3, §7.3.4): interface-style
   entry in the current worker, which starts the missing chunks itself. *)
and dispatch_indirect t w (i : Instr.t) name (args : Rvalue.t array) :
    Rvalue.t =
  let f = Pmodule.find_func_exn t.base.Exec.m name in
  let key = Dispatch.indirect_entry_key t.plan f in
  let pf = pfunc_exn t key in
  let cs = pf.Plan.pf_colorset in
  let c = w.w_color in
  let thread = w.w_lane in
  let spawned_cs = List.filter (fun d -> not (Color.equal d c)) cs in
  let act =
    {
      act_seq = Dispatch.fresh_seq t.disp;
      act_key = key;
      act_pf = pf;
      act_participants = (if cs = [] then [ c ] else cs);
      act_spawned = spawned_cs;
      act_pending = Atomic.make 0;
      act_done = Atomic.make [];
    }
  in
  if cs = [] then run_chunk t w act args
  else begin
    let parent = cur_act w in
    let i_need =
      match Instr.defines i with
      | None -> false
      | Some id -> (
        (not (List.mem c cs))
        &&
        match Dispatch.chunk_for parent.act_pf c with
        | Some cf -> Dispatch.chunk_needs t.disp cf id
        | None -> false)
    in
    let first = match cs with d :: _ -> Some d | [] -> None in
    List.iter
      (fun d ->
        let reply_to =
          if i_need && Some d = first then [ (thread, c) ] else []
        in
        send_spawn t (Some w) ~thread act d ~reply_to ~forged:false args)
      spawned_cs;
    if List.mem c cs then run_chunk t w act args
    else if i_need then wait_cont t w ~seq:act.act_seq
    else Rvalue.zero
  end

(* §7.3 thread creation: start every chunk of the target instance on the
   workers of a fresh application thread — this is where the backend's
   parallelism is real rather than simulated. *)
and dispatch_spawn t w (i : Instr.t) _callee (args : Rvalue.t array) =
  let act = cur_act w in
  match Infer.call_site t.plan.Plan.infer act.act_key i.Instr.id with
  | None -> raise (Error "spawn site without plan")
  | Some key ->
    let thread = Atomic.fetch_and_add t.next_thread 1 in
    let pf = pfunc_exn t key in
    let cs =
      if pf.Plan.pf_colorset = [] then [ Color.Free ]
      else pf.Plan.pf_colorset
    in
    let child =
      {
        act_seq = Dispatch.fresh_seq t.disp;
        act_key = key;
        act_pf = pf;
        act_participants = cs;
        act_spawned = cs;
        act_pending = Atomic.make 0;
        act_done = Atomic.make [];
      }
    in
    List.iter
      (fun d -> send_spawn t (Some w) ~thread child d ~reply_to:[] ~forged:false args)
      cs

(* §7.3.3 synchronization barrier, realized with real shared state: the
   arriving worker records its arrival under a mutex and waits (pumping)
   until every predecessor in the activation's host order has either
   completed its chunk or arrived at the same occurrence. Under the
   serialization discipline predecessors have always completed, so the
   wait is immediate — but it is checked against the shared tables, so a
   violation of the discipline blocks loudly instead of racing quietly. *)
and barrier t w (act : activation) (instr : int) =
  let okey = (act.act_seq, instr) in
  let occ =
    match Hashtbl.find_opt w.w_occ okey with
    | Some r ->
      let n = !r in
      incr r;
      n
    | None ->
      Hashtbl.replace w.w_occ okey (ref 1);
      0
  in
  let me = Color.to_string w.w_color in
  Mutex.lock t.bar_mu;
  Hashtbl.replace t.bar_arrived (act.act_seq, instr, occ, me) ();
  Mutex.unlock t.bar_mu;
  tel_record t ~track:w.w_track ~name:me Tel.Event.Barrier;
  let present = Dispatch.site_presence t.disp act.act_pf instr in
  let spawned d = List.exists (Color.equal d) act.act_spawned in
  let preds =
    if spawned w.w_color then
      (* spawned chunks serialize in color order *)
      List.filter
        (fun d -> spawned d && Color.compare d w.w_color < 0)
        present
    else if Color.is_enclave w.w_color then [] (* enclave direct runs first *)
    else List.filter spawned present (* untrusted body runs after the stage *)
  in
  if preds <> [] then
    wait_until ~phase:Obs.Phase.Barrier t w (fun () ->
        Mutex.lock t.bar_mu;
        let ok =
          List.for_all
            (fun d ->
              let ds = Color.to_string d in
              Hashtbl.mem t.bar_done (act.act_seq, ds)
              || Hashtbl.mem t.bar_arrived (act.act_seq, instr, occ, ds))
            preds
        in
        Mutex.unlock t.bar_mu;
        ok)

and hooks_for t w : Exec.hooks =
  {
    Exec.h_call = (fun _ i callee args -> dispatch_call t w i callee args);
    h_callind =
      (fun ex i fv args ->
        let name = Exec.resolve_func ex fv in
        if Pmodule.is_defined ex.Exec.m name then
          dispatch_indirect t w i name args
        else
          let act = cur_act w in
          Dispatch.dispatch_extern t.disp w.w_exec ~color:w.w_color
            ~caller:act.act_key.Infer.ik_func i name args);
    h_spawn = (fun _ i callee args -> dispatch_spawn t w i callee args);
    h_pre_instr =
      (fun _ i ->
        match w.w_act with
        | Some act
          when Dispatch.barrier_at act.act_pf i.Instr.id
                 ~participants:act.act_participants ->
          barrier t w act i.Instr.id
        | _ -> ());
    h_alloca_zone = (fun _ ty -> Dispatch.alloca_zone ty ~current:w.w_color);
  }

(* ------------------------------------------------------------------ *)
(* entry interface (§7.3.4) *)

and exec_entry t w (e : msg) =
  match e with
  | Entry { e_act = act; e_args; e_direct; e_slot } ->
    (match
       (let cs = act.act_pf.Plan.pf_colorset in
        let first = match cs with x :: _ -> Some x | [] -> None in
        List.iter
          (fun d ->
            let reply_to =
              if e_direct = None && Some d = first then
                [ (w.w_lane, Color.Unsafe) ]
              else []
            in
            send_spawn t (Some w) ~thread:w.w_lane act d ~reply_to
              ~forged:false e_args)
          act.act_spawned;
        (* host order: enclave chunks complete before the U body *)
        wait_pending t w act;
        match e_direct with
        | Some _ -> run_chunk t w act e_args
        | None -> wait_cont t w ~seq:act.act_seq)
     with
    | r -> fill_slot e_slot (Ok r)
    | exception Exec.Trap msg -> fill_slot e_slot (Result.Error msg)
    | exception Error msg -> fill_slot e_slot (Result.Error msg));
    Atomic.decr t.inflight
  | _ -> ()

(* ------------------------------------------------------------------ *)

let create ?(config = Sgx.Config.machine_b) ?cost ?(lanes = 2) ?engine
    (plan : Plan.t) : t =
  let engine =
    match engine with Some e -> e | None -> Exec.default_engine ()
  in
  let m = plan.Plan.pmodule in
  let machine = Sgx.Machine.create ?cost config in
  let heap = Heap.create () in
  let layout =
    Layout.create ~auth_pointers:plan.Plan.auth_pointers m plan.Plan.mode
  in
  let sites = Exec.alloc_sites m in
  let base = Exec.create m heap layout machine dummy_hooks in
  let disp = Dispatch.create ~sites plan in
  Exec.init_globals base (Dispatch.global_zone plan);
  (* everything lazily built and shared becomes read-only before the first
     domain starts; the heap serializes its own structures from here on *)
  Exec.warm_caches base ~extra:(Dispatch.chunk_funcs plan);
  (match engine with
  | Exec.Image -> Image.install base (Image.build ~plan ~sites base)
  | Exec.Walk -> ());
  Heap.set_concurrent heap true;
  {
    plan;
    disp;
    base;
    config;
    cost;
    lanes = max 1 lanes;
    workers = Hashtbl.create 16;
    wmu = Mutex.create ();
    inflight = Atomic.make 0;
    next_thread = Atomic.make 1;
    guard = true;
    tr_mu = Mutex.create ();
    traps = [];
    bar_mu = Mutex.create ();
    bar_arrived = Hashtbl.create 64;
    bar_done = Hashtbl.create 64;
    tel_mu = Mutex.create ();
    tel = Tel.Recorder.null;
    t0 = Unix.gettimeofday ();
    domains = 0;
    entries_served = Atomic.make 0;
  }

type entry_result = { value : Rvalue.t; wall_seconds : float }

let call_entry t ?(thread = 0) ?(timeout_s = 60.0) name (args : Rvalue.t list)
    : entry_result =
  let ep =
    match Dispatch.find_entry t.plan name with
    | Some e -> e
    | None -> raise (Error ("not an entry point: " ^ name))
  in
  let pf = pfunc_exn t ep.Plan.ep_key in
  let cs = pf.Plan.pf_colorset in
  Heap.reset_stacks t.base.Exec.heap;
  let direct =
    if List.mem Color.Unsafe cs then Some Color.Unsafe
    else if cs = [] then Some Color.Free
    else None
  in
  let participants = if cs = [] then [ Color.Free ] else cs in
  let spawned_cs =
    List.filter
      (fun d ->
        match direct with
        | Some dc -> not (Color.equal d dc)
        | None -> true)
      participants
  in
  let act =
    {
      act_seq = Dispatch.fresh_seq t.disp;
      act_key = ep.Plan.ep_key;
      act_pf = pf;
      act_participants = participants;
      act_spawned = spawned_cs;
      act_pending = Atomic.make 0;
      act_done = Atomic.make [];
    }
  in
  let slot =
    { s_mu = Mutex.create (); s_cv = Condition.create (); s_result = None }
  in
  let uw = worker t thread Color.Unsafe in
  let start = Unix.gettimeofday () in
  Atomic.incr t.inflight;
  Msq.push uw.w_queue
    (Entry { e_act = act; e_args = Array.of_list args; e_direct = direct;
             e_slot = slot });
  (* wait for the response, then for full quiescence: background threads
     the request spawned (§7.3) finish before it is declared complete,
     matching Sched.run in the simulator. The timeout turns a deadlocked
     worker pool into a failure instead of a hung test. *)
  let deadline = start +. timeout_s in
  let result = ref None in
  let rec await () =
    (if !result = None then begin
       Mutex.lock slot.s_mu;
       result := slot.s_result;
       Mutex.unlock slot.s_mu
     end);
    match !result with
    | Some r when Atomic.get t.inflight = 0 -> r
    | _ ->
      if Unix.gettimeofday () > deadline then
        raise
          (Error
             (Printf.sprintf
                "entry %s: timed out after %.0fs (worker pool stalled)" name
                timeout_s))
      else begin
        Unix.sleepf 0.0001;
        await ()
      end
  in
  let r = await () in
  (match take_traps t with
  | [] -> ()
  | msgs -> raise (Error (String.concat "; " msgs)));
  match r with
  | Ok value ->
    Atomic.incr t.entries_served;
    { value; wall_seconds = Unix.gettimeofday () -. start }
  | Result.Error msg -> raise (Error msg)

(* §8 attack surface, matching Pinterp.inject_spawn: write a forged spawn
   message into a partition's queue. The guard rejects it at dequeue. *)
let inject_spawn t ?(thread = 0) ~(color : Color.t) ~(chunk : string)
    (args : Rvalue.t list) : (unit, string) result =
  match Dispatch.locate_chunk t.plan chunk with
  | None -> Result.Error ("no such chunk: " ^ chunk)
  | Some (key, pf, cc) ->
    if not (Color.equal cc color) then
      Result.Error
        (Printf.sprintf "chunk %s belongs to partition %s" chunk
           (Color.to_string cc))
    else begin
      let act =
        {
          act_seq = Dispatch.fresh_seq t.disp;
          act_key = key;
          act_pf = pf;
          act_participants = [ color ];
          act_spawned = [];
          act_pending = Atomic.make 0;
          act_done = Atomic.make [];
        }
      in
      send_spawn t None ~thread act color ~reply_to:[] ~forged:true
        (Array.of_list args);
      let deadline = Unix.gettimeofday () +. 30.0 in
      let rec drain () =
        if Atomic.get t.inflight = 0 then ()
        else if Unix.gettimeofday () > deadline then
          raise (Error "inject_spawn: timed out")
        else begin
          Unix.sleepf 0.0001;
          drain ()
        end
      in
      drain ();
      match take_traps t with
      | [] -> Result.Ok ()
      | msgs -> Result.Error (String.concat "; " msgs)
    end

let set_spawn_guard t enabled = t.guard <- enabled

let set_telemetry t r =
  t.tel <- r;
  t.t0 <- Unix.gettimeofday ()

(* Quiesce, close every queue, join the domains. Returns [false] when the
   pool failed to quiesce in time — queues are closed anyway, but the
   domains are not joined (they may be stuck in a chunk). *)
let shutdown ?(timeout_s = 10.0) t : bool =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec quiesce () =
    if Atomic.get t.inflight = 0 then true
    else if Unix.gettimeofday () > deadline then false
    else begin
      Unix.sleepf 0.0001;
      quiesce ()
    end
  in
  let quiet = quiesce () in
  Mutex.lock t.wmu;
  let ws = Hashtbl.fold (fun _ w acc -> w :: acc) t.workers [] in
  Hashtbl.reset t.workers;
  t.domains <- 0;
  Mutex.unlock t.wmu;
  List.iter (fun w -> Msq.close w.w_queue) ws;
  if quiet then
    List.iter
      (fun w -> match w.w_domain with Some d -> Domain.join d | None -> ())
      ws;
  quiet

let exec t = t.base

(* Pool statistics for external drivers (the serving layer's `stats` verb
   and the CLI): a consistent snapshot is not needed — each field is read
   atomically and the numbers are monitoring data, not invariants. *)
type pool_stats = {
  ps_lanes : int;
  ps_domains : int;
  ps_inflight : int;            (* chunks/entries created but not done *)
  ps_entries_served : int;      (* completed entry-interface requests *)
  ps_threads_started : int;     (* §7.3 application threads ever created *)
}

let stats t =
  Mutex.lock t.wmu;
  let domains = t.domains in
  Mutex.unlock t.wmu;
  {
    ps_lanes = t.lanes;
    ps_domains = domains;
    ps_inflight = Atomic.get t.inflight;
    ps_entries_served = Atomic.get t.entries_served;
    ps_threads_started = Atomic.get t.next_thread - 1;
  }

let domain_count t =
  Mutex.lock t.wmu;
  let n = t.domains in
  Mutex.unlock t.wmu;
  n

let total_steps t =
  Mutex.lock t.wmu;
  let n =
    Hashtbl.fold (fun _ w acc -> acc + w.w_exec.Exec.steps) t.workers
      t.base.Exec.steps
  in
  Mutex.unlock t.wmu;
  n

let output t =
  Mutex.lock t.wmu;
  let ws =
    List.sort compare (Hashtbl.fold (fun k w acc -> (k, w) :: acc) t.workers [])
  in
  Mutex.unlock t.wmu;
  String.concat ""
    (Buffer.contents t.base.Exec.out
    :: List.map (fun (_, w) -> Buffer.contents w.w_exec.Exec.out) ws)

(* ------------------------------------------------------------------ *)
(* observability (lib/obs): per-lane phase accounting, event rings,
   metrics registration. Snapshots are monitoring-grade while the pool
   runs; after [call_entry] returns or [shutdown] joins the domains they
   are exact. *)

let sorted_workers t =
  Mutex.lock t.wmu;
  let ws =
    List.sort compare (Hashtbl.fold (fun k w acc -> (k, w) :: acc) t.workers [])
  in
  Mutex.unlock t.wmu;
  List.map snd ws

let obs_lanes t = List.filter_map (fun w -> w.w_obs) (sorted_workers t)

let lane_breakdowns t =
  let now = Obs.now_us () in
  List.map (fun l -> Obs.Lane.snapshot l ~now_us:now) (obs_lanes t)

let obs_events t = Obs.Ring.merge (List.map Obs.Lane.ring (obs_lanes t))

let total_externs t =
  List.fold_left
    (fun acc w -> acc + w.w_exec.Exec.externs)
    t.base.Exec.externs (sorted_workers t)

let declass_counts t : (string * int) list =
  let acc = Hashtbl.create 8 in
  let fold (ex : Exec.t) =
    Hashtbl.iter
      (fun color r ->
        match Hashtbl.find_opt acc color with
        | Some a -> a := !a + !r
        | None -> Hashtbl.add acc color (ref !r))
      ex.Exec.declass
  in
  fold t.base;
  List.iter (fun w -> fold w.w_exec) (sorted_workers t);
  List.sort compare (Hashtbl.fold (fun c r l -> (c, !r) :: l) acc [])

let register_obs t (reg : Obs.Registry.t) =
  let g = Obs.Registry.gauge reg in
  g ~help:"configured worker lanes" "privagic_pool_lanes" (fun () ->
      float_of_int t.lanes);
  g ~help:"live worker domains" "privagic_pool_domains" (fun () ->
      float_of_int (domain_count t));
  g ~help:"chunks and entries in flight" "privagic_pool_inflight" (fun () ->
      float_of_int (Atomic.get t.inflight));
  g ~help:"completed entry-interface requests"
    "privagic_pool_entries_served_total" (fun () ->
      float_of_int (Atomic.get (t.entries_served)));
  g ~help:"VM steps retired across all workers" "privagic_vm_steps_total"
    (fun () -> float_of_int (total_steps t));
  g ~help:"extern dispatches across all workers" "privagic_vm_externs_total"
    (fun () -> float_of_int (total_externs t));
  Obs.Registry.multi_gauge reg
    ~help:"cache-model LLC misses per lane" "privagic_vm_llc_misses_total"
    (fun () ->
      List.map
        (fun w ->
          let c = Sgx.Machine.counters w.w_exec.Exec.machine in
          ( [ ("lane",
               Printf.sprintf "d%d/%s" w.w_lane (Color.to_string w.w_color)) ],
            float_of_int c.Sgx.Machine.llc_misses ))
        (sorted_workers t));
  Obs.Registry.multi_gauge reg
    ~help:"declassification calls per color (shared extern path)"
    "privagic_declassify_total" (fun () ->
      List.map
        (fun (c, n) -> ([ ("color", c) ], float_of_int n))
        (declass_counts t));
  Obs.Registry.multi_gauge reg
    ~help:"per-lane wall time by phase (microseconds)"
    "privagic_lane_phase_us" (fun () ->
      List.concat_map
        (fun (b : Obs.Lane.breakdown) ->
          List.map
            (fun p ->
              ( [ ("lane", b.Obs.Lane.b_label); ("phase", Obs.Phase.name p) ],
                float_of_int b.Obs.Lane.b_phase_us.(Obs.Phase.index p) ))
            Obs.Phase.all)
        (lane_breakdowns t));
  Obs.Registry.multi_gauge reg
    ~help:"events lost to ring overwrite, per lane"
    "privagic_obs_ring_dropped_total" (fun () ->
      List.map
        (fun l ->
          let r = Obs.Lane.ring l in
          ([ ("lane", Obs.Ring.label r) ], float_of_int (Obs.Ring.dropped r)))
        (obs_lanes t))
