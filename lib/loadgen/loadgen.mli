(** Built-in load generator for the serving layer: a memtier/YCSB-style
    client driving {!Privagic_server} over real sockets.

    One thread, [clients] concurrent non-blocking connections, and two
    load models:
    - {b closed loop} ([rate = 0]): every connection keeps [depth]
      requests outstanding (1 = the classic one-at-a-time closed loop;
      higher pipelines the connection); throughput is whatever the
      server sustains.
    - {b open loop} ([rate > 0]): requests are scheduled at the fixed
      aggregate rate and sent when due, regardless of outstanding
      responses (connections pipeline; the server preserves per-
      connection ordering). Latency is measured from the {e scheduled}
      send time, so queueing delay under overload is visible — the
      coordinated-omission-free convention.

    [SERVER_BUSY] answers (a shedding server above its high-water mark)
    are counted and the op is retried without rescheduling, so shed
    requests pay their full latency.

    Mixes beyond the read/update dial: [Ycsb_e] is the standard
    scan-heavy mix (95% [scan], 5% insert) and [Ycsb_f] the
    read-modify-write mix (50% read, 50% RMW). An RMW is driven as the
    real two-leg protocol — [getv] for the version, then a [cas] guarded
    on it — and both legs share the {e original} schedule time, so the
    latency recorded for the op is the full read-modify-write, not the
    second leg alone. *)

module Tel = Privagic_telemetry

(** [Custom] is the read/update dial ([read_prop]); the YCSB presets
    override it. *)
type mix = Custom | Ycsb_e | Ycsb_f

val mix_name : mix -> string

type config = {
  host : string;
  port : int;
  clients : int;
  ops : int;              (** measured operations (excludes preload) *)
  rate : float;           (** aggregate ops/s; 0 = closed loop *)
  depth : int;            (** closed-loop in-flight requests per connection *)
  record_count : int;     (** key space; also the preload size *)
  vsize : int;            (** value bytes per set *)
  seed : int;
  read_prop : float;      (** reads vs sets in the [Custom] mix *)
  mix : mix;
  scan_len : int;         (** max requested scan length ([Ycsb_e]) *)
  preload : bool;         (** set keys 0..record_count-1 first, unmeasured *)
  shutdown : bool;        (** send [shutdown] when done (drains the server) *)
}

val default_config : config

type result = {
  r_ops_ok : int;         (** answered operations (an RMW counts once) *)
  r_busy : int;           (** SERVER_BUSY retries *)
  r_errors : int;         (** CLIENT_ERROR / malformed responses *)
  r_hits : int;
  r_misses : int;
  r_scans : int;          (** completed scan operations *)
  r_scan_items : int;     (** items returned across all scans *)
  r_rmw_conflicts : int;  (** RMW second legs that lost the CAS race *)
  r_preload_ops : int;
  r_wall_seconds : float; (** measured phase only *)
  r_throughput_kops : float;
  r_target_rate : float;  (** 0 in closed loop *)
  r_latency : Tel.Metrics.pctiles;  (** microseconds *)
}

(** Run the workload. @raise Failure when no connection can be
    established or the server dies mid-run. *)
val run : config -> result

(** Append/write the BENCH_server.json record (same shape as the other
    BENCH_*.json files: one top-level object). *)
val write_json : path:string -> config -> result -> unit

val pp_result : Format.formatter -> result -> unit
