(* See the .mli for the load models. One thread of plain select I/O: the
   generator must not be the bottleneck's bottleneck — at the rates the
   simulated store sustains (a few kops/s), one thread multiplexing a few
   dozen sockets has orders of magnitude of headroom. *)

module Tel = Privagic_telemetry
module Ycsb = Privagic_workloads.Ycsb
module Protocol = Privagic_server.Protocol

type mix = Custom | Ycsb_e | Ycsb_f

let mix_name = function
  | Custom -> "custom"
  | Ycsb_e -> "ycsb-e"
  | Ycsb_f -> "ycsb-f"

type config = {
  host : string;
  port : int;
  clients : int;
  ops : int;
  rate : float;
  depth : int;
  record_count : int;
  vsize : int;
  seed : int;
  read_prop : float;
  mix : mix;
  scan_len : int;
  preload : bool;
  shutdown : bool;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 11311;
    clients = 8;
    ops = 10_000;
    rate = 0.0;
    depth = 1;
    record_count = 1024;
    vsize = 32;
    seed = 42;
    read_prop = 0.95;
    mix = Custom;
    scan_len = 16;
    preload = true;
    shutdown = false;
  }

type result = {
  r_ops_ok : int;
  r_busy : int;
  r_errors : int;
  r_hits : int;
  r_misses : int;
  r_scans : int;
  r_scan_items : int;
  r_rmw_conflicts : int;
  r_preload_ops : int;
  r_wall_seconds : float;
  r_throughput_kops : float;
  r_target_rate : float;
  r_latency : Tel.Metrics.pctiles;
}

(* ------------------------------------------------------------------ *)

type client = {
  fd : Unix.file_descr;
  rd : Protocol.resp_reader;
  out : Buffer.t;                (* bytes not yet handed to the kernel *)
  mutable out_off : int;
  (* sent requests awaiting their response, in send order: the server
     answers each connection strictly in request order *)
  outstanding : (float * Protocol.request) Queue.t;
}

let connect cfg i =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd
       (Unix.ADDR_INET (Unix.inet_addr_of_string cfg.host, cfg.port));
     Unix.set_nonblock fd;
     Unix.setsockopt fd Unix.TCP_NODELAY true
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     failwith
       (Printf.sprintf "loadgen: cannot connect client %d to %s:%d (%s)" i
          cfg.host cfg.port (Printexc.to_string e)));
  { fd; rd = Protocol.resp_reader (); out = Buffer.create 512;
    out_off = 0; outstanding = Queue.create () }

let send c ~sched_at req =
  Buffer.add_string c.out (Protocol.render_request req);
  Queue.push (sched_at, req) c.outstanding

let flush_out c =
  let s = Buffer.contents c.out in
  let len = String.length s in
  if c.out_off < len then begin
    match
      Unix.write c.fd (Bytes.unsafe_of_string s) c.out_off (len - c.out_off)
    with
    | n ->
      c.out_off <- c.out_off + n;
      if c.out_off >= len then begin
        Buffer.clear c.out;
        c.out_off <- 0
      end
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
  end

type phase_counts = {
  mutable ok : int;
  mutable busy : int;
  mutable errors : int;
  mutable hits : int;
  mutable misses : int;
  mutable scans : int;
  mutable scan_items : int;
  mutable conflicts : int;
}

let fresh_counts () =
  { ok = 0; busy = 0; errors = 0; hits = 0; misses = 0; scans = 0;
    scan_items = 0; conflicts = 0 }

(* Per-connection pipelining bound in open loop: keeps memory finite when
   the offered rate exceeds the service rate. Far above anything a closed
   loop creates (1). *)
let max_outstanding = 128

exception Dead of string

(* Drive [total] requests from [next_req] to completion across the
   clients. [rate] = 0: closed loop, one outstanding per connection;
   [rate] > 0: open loop at the aggregate rate.

   An RMW op issues as [getv]; its [Version] answer does not complete
   the op but chains the [cas] second leg behind the same connection,
   keeping the original schedule time — the recorded latency spans the
   whole read-modify-write (the CO-free convention extends across
   legs). Only the [cas] answer counts the op. *)
let run_phase cfg clients ~total ~rate ~(next_req : unit -> Protocol.request)
    ~(hist : Tel.Metrics.histogram option) (counts : phase_counts) =
  let n = Array.length clients in
  let depth = max 1 cfg.depth in
  let start = Unix.gettimeofday () in
  let issued = ref 0 and completed = ref 0 in
  let next_client = ref 0 in
  let last_progress = ref start in
  let buf = Bytes.create 65536 in
  let complete () =
    incr completed;
    last_progress := Unix.gettimeofday ()
  in
  let observe sched_at =
    match hist with
    | Some h ->
      Tel.Metrics.observe h ((Unix.gettimeofday () -. sched_at) *. 1e6)
    | None -> ()
  in
  while !completed < total do
    let now = Unix.gettimeofday () in
    (* issue what is due *)
    if rate <= 0.0 then
      Array.iter
        (fun c ->
          (* closed loop with pipelining: keep [depth] requests in
             flight per connection, refilled as responses land *)
          while !issued < total && Queue.length c.outstanding < depth do
            incr issued;
            send c ~sched_at:(Unix.gettimeofday ()) (next_req ())
          done)
        clients
    else begin
      let due () = start +. (float_of_int !issued /. rate) in
      let guard = ref 0 in
      while !issued < total && due () <= now && !guard < 4096 do
        (* round-robin over connections with pipeline headroom *)
        let placed = ref false in
        let tries = ref 0 in
        while (not !placed) && !tries < n do
          let c = clients.(!next_client mod n) in
          incr next_client;
          incr tries;
          if Queue.length c.outstanding < max_outstanding then begin
            send c ~sched_at:(due ()) (next_req ());
            incr issued;
            placed := true
          end
        done;
        if not !placed then guard := 4096 (* all pipelines full: back off *)
        else incr guard
      done
    end;
    (* write, then wait for readability / writability *)
    Array.iter flush_out clients;
    let rds = Array.to_list (Array.map (fun c -> c.fd) clients) in
    let wrs =
      Array.to_list clients
      |> List.filter_map (fun c ->
             if Buffer.length c.out > c.out_off then Some c.fd else None)
    in
    let timeout =
      if rate > 0.0 && !issued < total then
        Float.max 0.001 (Float.min 0.05 (start +. (float_of_int !issued /. rate) -. now))
      else 0.05
    in
    (match Unix.select rds wrs [] timeout with
    | readable, _, _ ->
      Array.iter
        (fun c ->
          if List.mem c.fd readable then
            match Unix.read c.fd buf 0 (Bytes.length buf) with
            | 0 -> raise (Dead "server closed the connection mid-run")
            | nread ->
              List.iter
                (fun resp ->
                  match Queue.take_opt c.outstanding with
                  | None ->
                    (* unsolicited line (e.g. trailing OK): ignore *)
                    ()
                  | Some (sched_at, req) -> (
                    match resp with
                    | Protocol.Busy ->
                      counts.busy <- counts.busy + 1;
                      last_progress := Unix.gettimeofday ();
                      (* retry behind this connection's pipeline, keeping
                         the original schedule time: shed work pays its
                         full latency *)
                      send c ~sched_at req
                    | other -> (
                      match (req, other) with
                      | Protocol.Getv k,
                        Protocol.Version { v_ver; v_val; _ } ->
                        (* RMW first leg: account the read, chain the
                           guarded write on the same schedule time *)
                        (match v_val with
                        | Some _ -> counts.hits <- counts.hits + 1
                        | None -> counts.misses <- counts.misses + 1);
                        last_progress := Unix.gettimeofday ();
                        send c ~sched_at
                          (Protocol.Cas
                             { c_key = k; c_ver = v_ver;
                               c_val = Ycsb.value_for ~size:cfg.vsize k })
                      | Protocol.Cas _, Protocol.Stored ->
                        counts.ok <- counts.ok + 1;
                        complete (); observe sched_at
                      | Protocol.Cas _,
                        (Protocol.Cas_conflict _ | Protocol.Not_found) ->
                        (* lost the race to a concurrent writer: the op
                           still completes (and pays its latency) *)
                        counts.conflicts <- counts.conflicts + 1;
                        counts.ok <- counts.ok + 1;
                        complete (); observe sched_at
                      | Protocol.Scan _, Protocol.Scan_reply items ->
                        counts.scans <- counts.scans + 1;
                        counts.scan_items <-
                          counts.scan_items + List.length items;
                        counts.ok <- counts.ok + 1;
                        complete (); observe sched_at
                      | _, Protocol.Value _ ->
                        counts.hits <- counts.hits + 1;
                        counts.ok <- counts.ok + 1;
                        complete (); observe sched_at
                      | _, Protocol.Miss ->
                        counts.misses <- counts.misses + 1;
                        counts.ok <- counts.ok + 1;
                        complete (); observe sched_at
                      | _, (Protocol.Stored | Protocol.Deleted
                           | Protocol.Not_found) ->
                        counts.ok <- counts.ok + 1;
                        complete (); observe sched_at
                      | _, _ ->
                        counts.errors <- counts.errors + 1;
                        complete (); observe sched_at)))
                (Protocol.feed_resp c.rd buf nread)
            | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
            | exception Unix.Unix_error (e, _, _) ->
              raise (Dead (Unix.error_message e)))
        clients
    | exception Unix.Unix_error (EINTR, _, _) -> ());
    if Unix.gettimeofday () -. !last_progress > 60.0 then
      raise (Dead "no progress for 60 s")
  done;
  Unix.gettimeofday () -. start

(* ------------------------------------------------------------------ *)

let spec_of cfg =
  match cfg.mix with
  | Custom ->
    {
      Ycsb.record_count = cfg.record_count;
      operation_count = cfg.ops;
      read_proportion = cfg.read_prop;
      update_proportion = 1.0 -. cfg.read_prop;
      insert_proportion = 0.0;
      scan_proportion = 0.0;
      rmw_proportion = 0.0;
      max_scan_len = 1;
      distribution = Ycsb.Zipfian;
      value_size = cfg.vsize;
      seed = cfg.seed;
    }
  | Ycsb_e ->
    Ycsb.workload_e ~seed:cfg.seed ~max_scan_len:cfg.scan_len
      ~record_count:cfg.record_count ~operation_count:cfg.ops
      ~value_size:cfg.vsize ()
  | Ycsb_f ->
    Ycsb.workload_f ~seed:cfg.seed ~record_count:cfg.record_count
      ~operation_count:cfg.ops ~value_size:cfg.vsize ()

let run cfg =
  if cfg.clients < 1 then invalid_arg "loadgen: clients must be positive";
  if cfg.ops < 1 then invalid_arg "loadgen: ops must be positive";
  if cfg.scan_len < 1 then invalid_arg "loadgen: scan_len must be positive";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let clients = Array.init cfg.clients (connect cfg) in
  let close_all () =
    Array.iter
      (fun c -> try Unix.close c.fd with Unix.Unix_error _ -> ())
      clients
  in
  let metrics = Tel.Metrics.create () in
  let hist = Tel.Metrics.histogram metrics "latency (us)" in
  let counts = fresh_counts () in
  let finally f = try f () with e -> close_all (); raise e in
  finally @@ fun () ->
  (* preload: unmeasured closed-loop sets of the whole key space *)
  let preload_ops =
    if not cfg.preload then 0
    else begin
      let k = ref (-1) in
      let next_req () =
        incr k;
        Protocol.Set (!k, Ycsb.value_for ~size:cfg.vsize !k)
      in
      let pre = fresh_counts () in
      ignore
        (run_phase cfg clients ~total:cfg.record_count ~rate:0.0 ~next_req
           ~hist:None pre);
      if pre.errors > 0 then
        failwith
          (Printf.sprintf "loadgen: %d errors during preload" pre.errors);
      pre.ok
    end
  in
  (* measured phase: the YCSB mix *)
  let gen = Ycsb.create (spec_of cfg) in
  let next_req () =
    match Ycsb.next_op gen with
    | Ycsb.Read k -> Protocol.Get k
    | Ycsb.Update k | Ycsb.Insert k ->
      Protocol.Set (k, Ycsb.value_for ~size:cfg.vsize k)
    | Ycsb.Scan (k, len) ->
      (* a window of twice the requested length: sparse key spaces still
         return close to [len] items without walking to the end *)
      Protocol.Scan
        { sc_start = k; sc_stop = k + (2 * len);
          sc_limit = min len Protocol.max_scan_limit }
    | Ycsb.Rmw k -> Protocol.Getv k
  in
  let wall =
    try
      run_phase cfg clients ~total:cfg.ops ~rate:cfg.rate ~next_req
        ~hist:(Some hist) counts
    with Dead m -> failwith ("loadgen: " ^ m)
  in
  (if cfg.shutdown then begin
     (* ask the server to drain; it answers OK and then closes as part
        of the drain, so a short read-until-EOF is the clean goodbye *)
     let c = clients.(0) in
     Buffer.add_string c.out (Protocol.render_request Protocol.Shutdown);
     (try
        let deadline = Unix.gettimeofday () +. 10.0 in
        while Buffer.length c.out > c.out_off
              && Unix.gettimeofday () < deadline do
          flush_out c;
          ignore (Unix.select [] [ c.fd ] [] 0.05)
        done
      with Unix.Unix_error _ -> ())
   end);
  close_all ();
  {
    r_ops_ok = counts.ok;
    r_busy = counts.busy;
    r_errors = counts.errors;
    r_hits = counts.hits;
    r_misses = counts.misses;
    r_scans = counts.scans;
    r_scan_items = counts.scan_items;
    r_rmw_conflicts = counts.conflicts;
    r_preload_ops = preload_ops;
    r_wall_seconds = wall;
    r_throughput_kops =
      (if wall > 0.0 then float_of_int counts.ok /. wall /. 1000.0 else 0.0);
    r_target_rate = cfg.rate;
    r_latency = Tel.Metrics.pctiles hist;
  }

(* ------------------------------------------------------------------ *)

let write_json ~path cfg r =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  let l = r.r_latency in
  p "{\n";
  p "  \"bench\": \"server\",\n";
  p "  \"host\": \"%s\", \"port\": %d,\n" cfg.host cfg.port;
  p "  \"clients\": %d, \"ops\": %d, \"rate\": %g, \"depth\": %d,\n" cfg.clients
    cfg.ops cfg.rate (max 1 cfg.depth);
  p "  \"record_count\": %d, \"vsize\": %d, \"seed\": %d, \"read_prop\": %g,\n"
    cfg.record_count cfg.vsize cfg.seed cfg.read_prop;
  p "  \"mix\": \"%s\", \"scan_len\": %d,\n" (mix_name cfg.mix) cfg.scan_len;
  p "  \"preload_ops\": %d,\n" r.r_preload_ops;
  p "  \"ops_ok\": %d, \"busy\": %d, \"errors\": %d,\n" r.r_ops_ok r.r_busy
    r.r_errors;
  p "  \"hits\": %d, \"misses\": %d,\n" r.r_hits r.r_misses;
  p "  \"scans\": %d, \"scan_items\": %d, \"rmw_conflicts\": %d,\n" r.r_scans
    r.r_scan_items r.r_rmw_conflicts;
  p "  \"wall_seconds\": %.6f,\n" r.r_wall_seconds;
  p "  \"throughput_kops\": %.3f,\n" r.r_throughput_kops;
  (* open-loop honesty: the rate asked for next to the rate sustained —
     a saturated server shows up as achieved < target, not as a silently
     stretched run ("rate" above stays for existing readers) *)
  p "  \"target_rate_ops\": %g,\n" r.r_target_rate;
  p "  \"achieved_rate_ops\": %.1f,\n"
    (if r.r_wall_seconds > 0.0 then
       float_of_int r.r_ops_ok /. r.r_wall_seconds
     else 0.0);
  p "  \"latency_us\": { \"n\": %d, \"mean\": %.1f, \"p50\": %.1f, \"p95\": %.1f, \"p99\": %.1f, \"p999\": %.1f, \"max\": %.1f }\n"
    l.Tel.Metrics.n l.Tel.Metrics.p_mean l.Tel.Metrics.p50 l.Tel.Metrics.p95
    l.Tel.Metrics.p99 l.Tel.Metrics.p999 l.Tel.Metrics.p_max;
  p "}\n";
  close_out oc

let pp_result fmt r =
  let l = r.r_latency in
  Format.fprintf fmt
    "@[<v>ops ok        %d (hits %d, misses %d, busy retries %d, errors %d)@,\
     scans         %d (%d items), rmw conflicts %d@,\
     wall          %.3f s@,\
     throughput    %.2f kops/s%s@,\
     latency (us)  p50 %.0f  p95 %.0f  p99 %.0f  p99.9 %.0f  max %.0f  (mean %.0f)@]"
    r.r_ops_ok r.r_hits r.r_misses r.r_busy r.r_errors r.r_scans
    r.r_scan_items r.r_rmw_conflicts r.r_wall_seconds
    r.r_throughput_kops
    (if r.r_target_rate > 0.0 then
       Printf.sprintf " (target %.2f kops/s)" (r.r_target_rate /. 1000.0)
     else "")
    l.Tel.Metrics.p50 l.Tel.Metrics.p95 l.Tel.Metrics.p99 l.Tel.Metrics.p999
    l.Tel.Metrics.p_max l.Tel.Metrics.p_mean
