(** The mini-C programs of the evaluation (§9), each generated in two
    variants: [`Colored] — the Privagic version with explicit secure
    types — and [`Plain] — the legacy code the paper starts from (run by
    the Unprotected/Scone baselines). The variants differ only on the
    annotation lines, so {!modified_lines} implements the paper's
    "modified LoC" metric. *)

type variant = [ `Colored | `Plain ]

(** Longest-common-subsequence diff: lines of the colored variant not
    present in the plain one. *)
val modified_lines : string -> string -> int

(** Hash map with separate chaining, one color (§9.3). Entries: [hm_put],
    [hm_get], [hm_size]. Hardened mode. *)
val hashmap : ?nbuckets:int -> ?vsize:int -> variant -> string

(** Singly linked list used as a map (§9.3): [ll_put], [ll_get]. *)
val linked_list : ?vsize:int -> variant -> string

(** Red-black tree used as an ordered map (§9.3's treemap): [tm_put],
    [tm_get]. *)
val rbtree : ?vsize:int -> variant -> string

(** Two colors in one structure (Fig. 10): keys blue, values red; needs
    relaxed mode (or hardened with authenticated pointers). Entries:
    [h2_put], [h2_get]. *)
val hashmap_two_color : ?nbuckets:int -> ?vsize:int -> variant -> string

(** The legacy application (§9.2): chained hash table + LRU eviction +
    statistics + per-request network/lock syscalls. Entries: [mc_init],
    [mc_set], [mc_get], [mc_delete], [mc_touch], [mc_count], [mc_stat]. *)
val memcached : ?nbuckets:int -> ?vsize:int -> variant -> string

(** The paper's figures as runnable sources. *)

(** The bank account of Fig. 1 (a multi-color structure). *)
val fig1 : string

(** Fig. 3a: the racy program without annotations (data-flow baseline). *)
val fig3_dataflow : string

(** Fig. 3b: the same program with secure types; [x = &b] must fail. *)
val fig3_secure : string

(** Fig. 4: the implicit indirect leak through a conditional. *)
val fig4 : string

(** Figs. 6–7: the complete three-partition example. *)
val fig6 : string

(** Fig. 1 grown into a small indexed store (relaxed mode): blue ids and
    owner tags, red balances, and an unsafe bucket-occupancy index built
    only from declassified bucket ids. Entries: [acct_init], [acct_open],
    [acct_deposit] (a cross-color RMW), [acct_balance], [acct_find],
    [acct_count]. Same source as examples/indexed_accounts.mc. *)
val indexed_accounts : string
