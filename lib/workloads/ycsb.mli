(** YCSB workload generation (Cooper et al., SoCC'10 — the paper's [15]):
    zipfian (standard 0.99 constant), scrambled zipfian, uniform and
    latest key distributions, and the standard workload mixes. Fully
    deterministic given the seed. *)

(** splitmix64 PRNG. *)
type rng

val rng : int -> rng
val next_int64 : rng -> int64

(** Uniform float in [0, 1). *)
val next_float : rng -> float

(** Uniform int in [0, n). *)
val next_int : rng -> int -> int

val zipfian_constant : float

type zipfian

val zipfian : ?theta:float -> int -> zipfian
val zeta : int -> float -> float

(** Next zipfian item in [0, items); item 0 is the hottest. *)
val zipfian_next : zipfian -> rng -> int

val fnv_hash64 : int64 -> int64

(** Zipfian with the hot items spread over the key space (YCSB's
    ScrambledZipfianGenerator). *)
val scrambled_zipfian_next : zipfian -> rng -> int

type distribution = Uniform | Zipfian | Latest

type op =
  | Read of int
  | Update of int
  | Insert of int
  | Scan of int * int  (** start key, requested length (workload E) *)
  | Rmw of int  (** read-modify-write on one key (workload F) *)

type spec = {
  record_count : int;
  operation_count : int;
  read_proportion : float;
  update_proportion : float;
  insert_proportion : float;
  scan_proportion : float;
  rmw_proportion : float;
  max_scan_len : int;  (** scan lengths are uniform in [1, max_scan_len] *)
  distribution : distribution;
  value_size : int;
  seed : int;
}

(** The standard mixes: A = 50/50 read/update zipfian, B = 95/5,
    C = read-only, E = 95/5 scan/insert, F = 50/50 read/RMW. *)
val workload_a :
  ?seed:int -> record_count:int -> operation_count:int -> value_size:int ->
  unit -> spec

val workload_b :
  ?seed:int -> record_count:int -> operation_count:int -> value_size:int ->
  unit -> spec

val workload_c :
  ?seed:int -> record_count:int -> operation_count:int -> value_size:int ->
  unit -> spec

val workload_e :
  ?seed:int -> ?max_scan_len:int -> record_count:int -> operation_count:int ->
  value_size:int -> unit -> spec

val workload_f :
  ?seed:int -> record_count:int -> operation_count:int -> value_size:int ->
  unit -> spec

val uniform_mix :
  ?seed:int -> record_count:int -> operation_count:int -> value_size:int ->
  read_proportion:float -> unit -> spec

type t

val create : spec -> t
val load_keys : spec -> int list
val next_key : t -> int
val next_op : t -> op

(** Deterministic pseudo-random payload for a key. *)
val value_for : size:int -> int -> string
