(* The mini-C programs of the evaluation (§9), each in two variants:
   [`Colored] — the Privagic version with explicit secure types — and
   [`Plain] — the legacy version the paper starts from (runs unprotected or
   under the Scone-like baseline). The variants differ only in the
   annotation lines, so the engineering-effort experiment (§9.2.1, §9.3.1)
   counts modified lines by diffing the two sources.

   Substitution tokens:
   $(CB)   -> "color(blue)" | ""          field/pointer colors
   $(CR)   -> "color(red)"  | ""          second color (two-color variants)
   $(COPYIN)/$(COPYOUT) -> classify/declassify | memcpy
   $(DECLK) -> colored key localization | plain copy
   $(SETI64) -> declassify_i64 | plain store *)

type variant = [ `Colored | `Plain ]

let substitute (bindings : (string * string) list) (template : string) : string
    =
  List.fold_left
    (fun acc (key, value) ->
      Str_replace.replace_all acc ~pattern:(Printf.sprintf "$(%s)" key)
        ~with_:value)
    template bindings

(* Count the lines that differ between two sources (the paper's "modified
   lines of code" metric): lines of the colored variant not present in the
   plain one, via a longest-common-subsequence diff so that multi-line
   substitutions do not shift the comparison. *)
let modified_lines a b =
  let split s =
    List.filter
      (fun l -> l <> "")
      (List.map String.trim (String.split_on_char '\n' s))
  in
  let la = Array.of_list (split a) and lb = Array.of_list (split b) in
  let n = Array.length la and m = Array.length lb in
  let dp = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      dp.(i).(j) <-
        (if String.equal la.(i) lb.(j) then 1 + dp.(i + 1).(j + 1)
         else max dp.(i + 1).(j) dp.(i).(j + 1))
    done
  done;
  (* changed lines on the colored side: additions + modifications *)
  n - dp.(0).(0)

let common_externs = {|
within extern void* malloc(int n);
within extern void free(void* p);
within extern char* memcpy(char* dst, char* src, int n);
ignore extern void classify(char* dst, char* src, int n);
ignore extern void declassify(char* dst, char* src, int n);
ignore extern void classify_i64(int* dst, int v);
ignore extern void declassify_i64(int* dst, int v);
|}

let bindings (v : variant) ~nbuckets ~vsize =
  let colored = v = `Colored in
  [
    ("CB", if colored then "color(blue)" else "");
    ("CR", if colored then "color(red)" else "");
    ("COPYIN", if colored then "classify" else "memcpy");
    ("COPYOUT", if colored then "declassify" else "memcpy");
    ( "DECLK",
      if colored then
        "int color(blue) kslot;\n  classify_i64(&kslot, key);\n  int k = kslot;"
      else "int k = key;" );
    ( "SETSTATUS",
      if colored then "declassify_i64(&rstatus, fnd);"
      else "rstatus = fnd;" );
    ( "SETCOUNT",
      if colored then "declassify_i64(&rstatus, count);"
      else "rstatus = count;" );
    ( "SETGIDX",
      if colored then "declassify_i64(&gidx, hval(k));" else "gidx = hval(k);"
    );
    ( "SETGPOS",
      if colored then "declassify_i64(&gpos, fnd);" else "gpos = fnd;" );
    ("NB", string_of_int nbuckets);
    ("MASK", string_of_int (nbuckets - 1));
    ("VSIZE", string_of_int vsize);
  ]

(* ------------------------------------------------------------------ *)
(* hashmap with separate chaining (§9.3): one color protects the whole
   data structure *)

let hashmap_template = common_externs ^ {|
struct node {
  int $(CB) key;
  char $(CB) value[$(VSIZE)];
  struct node $(CB)* $(CB) next;
};

struct node $(CB)* $(CB) table[$(NB)];
int $(CB) count;
int rstatus;

int hidx(int k) {
  int h = k * 40503;
  h = h + (k >> 16);
  return h & $(MASK);
}

entry void hm_put(int key, char* value) {
  $(DECLK)
  int idx = hidx(k);
  struct node* n = table[idx];
  int ex = 0;
  while (n != NULL) {
    if (n->key == k) {
      $(COPYIN)(n->value, value, $(VSIZE));
      ex = 1;
    }
    n = n->next;
  }
  if (ex == 0) {
    struct node* m = (struct node $(CB)*) malloc(sizeof(struct node));
    m->key = k;
    $(COPYIN)(m->value, value, $(VSIZE));
    m->next = table[idx];
    table[idx] = m;
    count = count + 1;
  }
}

entry int hm_get(int key, char* out) {
  $(DECLK)
  int idx = hidx(k);
  int fnd = 0;
  struct node* n = table[idx];
  while (n != NULL) {
    if (n->key == k) {
      $(COPYOUT)(out, n->value, $(VSIZE));
      fnd = 1;
    }
    n = n->next;
  }
  $(SETSTATUS)
  return rstatus;
}

entry int hm_size() {
  $(SETCOUNT)
  return rstatus;
}
|}

let hashmap ?(nbuckets = 4096) ?(vsize = 1024) (v : variant) =
  substitute (bindings v ~nbuckets ~vsize) hashmap_template

(* ------------------------------------------------------------------ *)
(* singly linked list used as a map (§9.3) *)

let linked_list_template = common_externs ^ {|
struct lnode {
  int $(CB) key;
  char $(CB) value[$(VSIZE)];
  struct lnode $(CB)* $(CB) next;
};

struct lnode $(CB)* $(CB) head;
int $(CB) count;
int rstatus;

entry void ll_put(int key, char* value) {
  $(DECLK)
  struct lnode* n = head;
  int ex = 0;
  while (n != NULL) {
    if (n->key == k) {
      $(COPYIN)(n->value, value, $(VSIZE));
      ex = 1;
    }
    n = n->next;
  }
  if (ex == 0) {
    struct lnode* m = (struct lnode $(CB)*) malloc(sizeof(struct lnode));
    m->key = k;
    $(COPYIN)(m->value, value, $(VSIZE));
    m->next = head;
    head = m;
    count = count + 1;
  }
}

entry int ll_get(int key, char* out) {
  $(DECLK)
  int fnd = 0;
  struct lnode* n = head;
  while (n != NULL) {
    if (n->key == k) {
      $(COPYOUT)(out, n->value, $(VSIZE));
      fnd = 1;
    }
    n = n->next;
  }
  $(SETSTATUS)
  return rstatus;
}
|}

let linked_list ?(vsize = 1024) (v : variant) =
  substitute (bindings v ~nbuckets:16 ~vsize) linked_list_template

(* ------------------------------------------------------------------ *)
(* red-black tree used as an ordered map (§9.3's balanced treemap) *)

let rbtree_template = common_externs ^ {|
struct tnode {
  int $(CB) key;
  int $(CB) red;
  char $(CB) value[$(VSIZE)];
  struct tnode $(CB)* $(CB) left;
  struct tnode $(CB)* $(CB) right;
  struct tnode $(CB)* $(CB) parent;
};

struct tnode $(CB)* $(CB) root;
int $(CB) count;
int rstatus;

void rotate_left(struct tnode $(CB)* x) {
  struct tnode* y = x->right;
  x->right = y->left;
  if (y->left != NULL) y->left->parent = x;
  y->parent = x->parent;
  if (x->parent == NULL) root = y;
  else {
    if (x == x->parent->left) x->parent->left = y;
    else x->parent->right = y;
  }
  y->left = x;
  x->parent = y;
}

void rotate_right(struct tnode $(CB)* x) {
  struct tnode* y = x->left;
  x->left = y->right;
  if (y->right != NULL) y->right->parent = x;
  y->parent = x->parent;
  if (x->parent == NULL) root = y;
  else {
    if (x == x->parent->right) x->parent->right = y;
    else x->parent->left = y;
  }
  y->right = x;
  x->parent = y;
}

void insert_fixup(struct tnode $(CB)* z) {
  struct tnode* y;
  while (z->parent != NULL && z->parent->red == 1) {
    struct tnode* gp = z->parent->parent;
    if (z->parent == gp->left) {
      y = gp->right;
      if (y != NULL && y->red == 1) {
        z->parent->red = 0;
        y->red = 0;
        gp->red = 1;
        z = gp;
      } else {
        if (z == z->parent->right) {
          z = z->parent;
          rotate_left(z);
        }
        z->parent->red = 0;
        z->parent->parent->red = 1;
        rotate_right(z->parent->parent);
      }
    } else {
      y = gp->left;
      if (y != NULL && y->red == 1) {
        z->parent->red = 0;
        y->red = 0;
        gp->red = 1;
        z = gp;
      } else {
        if (z == z->parent->left) {
          z = z->parent;
          rotate_right(z);
        }
        z->parent->red = 0;
        z->parent->parent->red = 1;
        rotate_left(z->parent->parent);
      }
    }
  }
  root->red = 0;
}

entry void tm_put(int key, char* value) {
  $(DECLK)
  struct tnode* y = NULL;
  struct tnode* x = root;
  int ex = 0;
  while (x != NULL) {
    y = x;
    if (k == x->key) {
      $(COPYIN)(x->value, value, $(VSIZE));
      ex = 1;
      x = NULL;
    } else {
      if (k < x->key) x = x->left;
      else x = x->right;
    }
  }
  if (ex == 0) {
    struct tnode* z = (struct tnode $(CB)*) malloc(sizeof(struct tnode));
    z->key = k;
    z->red = 1;
    z->left = NULL;
    z->right = NULL;
    z->parent = y;
    $(COPYIN)(z->value, value, $(VSIZE));
    if (y == NULL) root = z;
    else {
      if (k < y->key) y->left = z;
      else y->right = z;
    }
    insert_fixup(z);
    count = count + 1;
  }
}

entry int tm_get(int key, char* out) {
  $(DECLK)
  int fnd = 0;
  struct tnode* x = root;
  while (x != NULL) {
    if (k == x->key) {
      $(COPYOUT)(out, x->value, $(VSIZE));
      fnd = 1;
      x = NULL;
    } else {
      if (k < x->key) x = x->left;
      else x = x->right;
    }
  }
  $(SETSTATUS)
  return rstatus;
}
|}

let rbtree ?(vsize = 1024) (v : variant) =
  substitute (bindings v ~nbuckets:16 ~vsize) rbtree_template

(* ------------------------------------------------------------------ *)
(* two-color hashmap (§9.3, Fig. 10): keys blue, values red. Relaxed mode
   only — the node is a multi-color structure. The hash of the (blue) key
   is declassified so that the chain walk stays on F control flow, and the
   per-node match bit is declassified too, exactly the extra lines the
   paper counts. *)

let hashmap2_template = common_externs ^ {|
ignore extern void alloc_node2(struct node2** dst, int size, int kkey);

struct node2 {
  int $(CB) key;
  char $(CR) value[$(VSIZE)];
  struct node2* next;
};

struct node2* table[$(NB)];
struct node2* gnode;
int gidx;
int gpos;
int count;

int hval(int k) {
  int h = k * 40503;
  h = h + (k >> 16);
  return h & $(MASK);
}

// Blue stage: localize the key, declassify its hash, walk the chain and
// declassify the match position (-1 when absent). The chain pointers live
// in shared memory, so every partition can walk them; only the key
// comparisons run in the blue enclave.
void find_blue(int key) {
  $(DECLK)
  $(SETGIDX)
  int pos = 0;
  int fnd = 0 - 1;
  struct node2* n = table[gidx];
  while (n != NULL) {
    if (n->key == k) {
      fnd = pos;
    }
    pos = pos + 1;
    n = n->next;
  }
  $(SETGPOS)
}

// Blue stage of a put: additionally allocate and key the new node when the
// key is absent (allocation of a multi-color node splits its fields across
// the enclaves, §7.2).
void prepare_put_blue(int key) {
  $(DECLK)
  $(SETGIDX)
  int pos = 0;
  int fnd = 0 - 1;
  struct node2* n = table[gidx];
  while (n != NULL) {
    if (n->key == k) {
      fnd = pos;
    }
    pos = pos + 1;
    n = n->next;
  }
  $(SETGPOS)
  if (fnd < 0) {
    alloc_node2(&gnode, sizeof(struct node2), k);
    struct node2* f = gnode;
    f->key = k;
  }
}

// Shared walk to the declassified position.
struct node2* node_at(int p) {
  struct node2* n = table[gidx];
  int i = 0;
  while (i < p) {
    n = n->next;
    i = i + 1;
  }
  return n;
}

entry void h2_put(int key, char* value) {
  prepare_put_blue(key);
  int p = gpos;
  if (p >= 0) {
    struct node2* n = node_at(p);
    $(COPYIN)(n->value, value, $(VSIZE));
  } else {
    struct node2* f = gnode;
    $(COPYIN)(f->value, value, $(VSIZE));
    f->next = table[gidx];
    table[gidx] = f;
    count = count + 1;
  }
}

entry int h2_get(int key, char* out) {
  find_blue(key);
  int p = gpos;
  int ok = 0;
  if (p >= 0) {
    struct node2* n = node_at(p);
    $(COPYOUT)(out, n->value, $(VSIZE));
    ok = 1;
  }
  return ok;
}
|}

let hashmap_two_color ?(nbuckets = 1024) ?(vsize = 1024) (v : variant) =
  substitute (bindings v ~nbuckets ~vsize) hashmap2_template

(* ------------------------------------------------------------------ *)
(* paper figures *)

let fig1 = {|
within extern void* malloc(int n);
within extern char* strncpy(char* dst, char* src, int n);

struct account {
  char color(blue) name[256];
  double color(red) balance;
};

entry struct account* create(char* name) {
  struct account* res = (struct account*) malloc(sizeof(struct account));
  strncpy(res->name, name, 256);
  res->balance = 0.0;
  return res;
}
|}

(* Fig. 3a: the program the data-flow tools mis-partition. *)
let fig3_dataflow = {|
int color(blue) a;
int b;
int* x;

void f(int s) {
  x = &a;
  *x = s;
}

void g() {
  x = &b;
}

entry int main() {
  spawn f(4242);
  spawn g();
  return 0;
}
|}

(* Fig. 3b: the same program with explicit secure types; line "x = &b"
   must be rejected. *)
let fig3_secure = {|
int color(blue) a;
int b;
int color(blue)* x;

void f(int color(blue) s) {
  x = &a;
  *x = s;
}

void g() {
  x = &b;
}

entry int main() {
  spawn f(0);
  spawn g();
  return 0;
}
|}

(* Fig. 4: implicit indirect leak through a conditional. *)
let fig4 = {|
int x = 0;
int y = 0;
int color(blue) b;

entry void f() {
  if (b == 42)
    x = 1;
  y = 2;
}
|}

(* Fig. 6: the complete three-partition example. *)
let fig6 = {|
int color(U) unsafe = 0;
int color(blue) blue = 10;
int color(red) red = 0;

extern void printf_hello();

void g(int n) {
  blue = n;
  red = n;
  printf_hello();
}

int f(int y) {
  g(21);
  return 42;
}

entry int main() {
  unsafe = 1;
  int x = f(blue);
  return x;
}
|}

(* ------------------------------------------------------------------ *)
(* indexed accounts: Fig. 1 grown into a small store with an unsafe
   secondary index. Ids and owner tags blue, balances red, bucket
   occupancy counts unsafe (derived only from declassified bucket ids).
   Relaxed mode — the node is a multi-color structure. Mirrors
   examples/indexed_accounts.mc. *)

let indexed_accounts = {|
within extern void* malloc(int n);
within extern void free(void* p);
within extern char* memcpy(char* dst, char* src, int n);
ignore extern void classify(char* dst, char* src, int n);
ignore extern void declassify(char* dst, char* src, int n);
ignore extern void classify_i64(int* dst, int v);
ignore extern void declassify_i64(int* dst, int v);
ignore extern void alloc_node2(struct acct** dst, int size, int kkey);

struct acct {
  int color(blue) id;
  int color(blue) owner;
  int color(red) balance;
  struct acct* next;
};

struct acct* table[16];
// unsafe secondary index: accounts per bucket. Updated only from
// declassified bucket ids, so it carries no secret bits.
int idx_count[16];
struct acct* gnode;
int gidx;
int gpos;
int count;
int rstatus;

int hval(int k) {
  int h = k * 40503;
  h = h + (k >> 16);
  return h & 15;
}

// Blue stage: localize the id, declassify its bucket, walk the chain
// and declassify the match position (-1 when absent). The chain
// pointers live in shared memory; only the id comparisons run in the
// blue enclave.
void find_blue(int id) {
  int color(blue) kslot;
  classify_i64(&kslot, id);
  int k = kslot;
  declassify_i64(&gidx, hval(k));
  int pos = 0;
  int fnd = 0 - 1;
  struct acct* n = table[gidx];
  while (n != NULL) {
    if (n->id == k) {
      fnd = pos;
    }
    pos = pos + 1;
    n = n->next;
  }
  declassify_i64(&gpos, fnd);
}

// Shared walk to the declassified position.
struct acct* node_at(int p) {
  struct acct* n = table[gidx];
  int i = 0;
  while (i < p) {
    n = n->next;
    i = i + 1;
  }
  return n;
}

entry void acct_init() {
  int i = 0;
  while (i < 16) {
    table[i] = NULL;
    idx_count[i] = 0;
    i = i + 1;
  }
  count = 0;
}

// Open an account: the id and owner tag are classified blue, the
// opening balance red; the unsafe index learns only the bucket.
entry int acct_open(int id, int owner, int amount) {
  find_blue(id);
  int fresh = 0;
  if (gpos < 0) {
    int color(blue) kslot;
    classify_i64(&kslot, id);
    int k = kslot;
    alloc_node2(&gnode, sizeof(struct acct), k);
    struct acct* a = gnode;
    a->id = k;
    int color(blue) oslot;
    classify_i64(&oslot, owner);
    a->owner = oslot;
    int color(red) bslot;
    classify_i64(&bslot, amount);
    a->balance = bslot;
    a->next = table[gidx];
    table[gidx] = a;
    idx_count[gidx] = idx_count[gidx] + 1;
    count = count + 1;
    fresh = 1;
  }
  declassify_i64(&rstatus, fresh);
  return rstatus;
}

// Cross-color read-modify-write: the blue stage locates the account,
// the red enclave adds the classified amount to the balance.
entry int acct_deposit(int id, int amount) {
  find_blue(id);
  int ok = 0;
  if (gpos >= 0) {
    struct acct* a = node_at(gpos);
    int color(red) amt;
    classify_i64(&amt, amount);
    a->balance = a->balance + amt;
    ok = 1;
  }
  declassify_i64(&rstatus, ok);
  return rstatus;
}

entry int acct_balance(int id) {
  find_blue(id);
  rstatus = 0 - 1;
  if (gpos >= 0) {
    struct acct* a = node_at(gpos);
    declassify_i64(&rstatus, a->balance);
  }
  return rstatus;
}

// Index lookup: the unsafe occupancy index prunes empty buckets; the
// blue enclave compares owner tags and the match count is declassified.
entry int acct_find(int owner) {
  int color(blue) oslot;
  classify_i64(&oslot, owner);
  int o = oslot;
  int matches = 0;
  int b = 0;
  while (b < 16) {
    if (idx_count[b] > 0) {
      struct acct* n = table[b];
      while (n != NULL) {
        if (n->owner == o) {
          matches = matches + 1;
        }
        n = n->next;
      }
    }
    b = b + 1;
  }
  declassify_i64(&rstatus, matches);
  return rstatus;
}

entry int acct_count() {
  declassify_i64(&rstatus, count);
  return rstatus;
}
|}

(* ------------------------------------------------------------------ *)
(* memcached-lite (§9.2): the paper's legacy application. A chained
   hashtable with an LRU list and eviction, statistics, and get / set /
   delete / touch operations. The Privagic variant colors the central map
   (keys, values, links) blue and declassifies results — the paper's
   "9 modified lines" experiment counts the diff against the plain
   variant. *)

let memcached_template = common_externs ^ {|
extern void net_recv();
extern void net_send();
extern void lock();
extern void unlock();

struct item {
  int $(CB) key;
  int $(CB) hidx;
  char $(CB) value[$(VSIZE)];
  struct item $(CB)* $(CB) hnext;
  struct item $(CB)* $(CB) prev;
  struct item $(CB)* $(CB) next;
};

struct item $(CB)* $(CB) table[$(NB)];
struct item $(CB)* $(CB) lru_head;
struct item $(CB)* $(CB) lru_tail;
int $(CB) count;
int $(CB) capacity;
int $(CB) stat_hits;
int $(CB) stat_misses;
int $(CB) stat_sets;
int $(CB) stat_evictions;
int rstatus;

int hidx(int k) {
  int h = k * 40503;
  h = h + (k >> 16);
  return h & $(MASK);
}

// unlink an item from the LRU list
void lru_unlink(struct item $(CB)* it) {
  if (it->prev != NULL) it->prev->next = it->next;
  else lru_head = it->next;
  if (it->next != NULL) it->next->prev = it->prev;
  else lru_tail = it->prev;
  it->prev = NULL;
  it->next = NULL;
}

// push an item at the head of the LRU list
void lru_push(struct item $(CB)* it) {
  it->prev = NULL;
  it->next = lru_head;
  if (lru_head != NULL) lru_head->prev = it;
  lru_head = it;
  if (lru_tail == NULL) lru_tail = it;
}

// unlink an item from its hash chain
void chain_unlink(struct item $(CB)* it) {
  struct item* n = table[it->hidx];
  if (n == it) {
    table[it->hidx] = it->hnext;
  } else {
    while (n != NULL) {
      if (n->hnext == it) {
        n->hnext = it->hnext;
        n = NULL;
      } else {
        n = n->hnext;
      }
    }
  }
  it->hnext = NULL;
}

struct item $(CB)* lookup(int $(CB) k) {
  struct item* n = table[hidx(k)];
  struct item* found = NULL;
  while (n != NULL) {
    if (n->key == k) found = n;
    n = n->hnext;
  }
  return found;
}

entry void mc_init(int cap) {
  int $(CB) c;
  classify_i64(&c, cap);
  capacity = c;
  count = 0;
}

entry void mc_set_capacity(int cap) {
  int $(CB) c;
  classify_i64(&c, cap);
  capacity = c;
}

// Background maintenance (memcached's LRU crawler): one pass evicting the
// tail until the cache fits its capacity. Runs on its own thread, with
// its own per-enclave workers.
void maintenance() {
  lock();
  while (count > capacity) {
    struct item $(CB)* victim = lru_tail;
    lru_unlink(victim);
    chain_unlink(victim);
    free(victim);
    count = count - 1;
    stat_evictions = stat_evictions + 1;
  }
  unlock();
}

entry void mc_maintain() {
  spawn maintenance();
}

entry void mc_set(int key, char* value) {
  net_recv();
  lock();
  $(DECLK)
  struct item* it = lookup(k);
  stat_sets = stat_sets + 1;
  if (it != NULL) {
    $(COPYIN)(it->value, value, $(VSIZE));
    lru_unlink(it);
    lru_push(it);
  } else {
    struct item* m = (struct item $(CB)*) malloc(sizeof(struct item));
    m->key = k;
    m->hidx = hidx(k);
    $(COPYIN)(m->value, value, $(VSIZE));
    m->hnext = table[m->hidx];
    table[m->hidx] = m;
    m->prev = NULL;
    m->next = NULL;
    lru_push(m);
    count = count + 1;
    if (count > capacity) {
      struct item* victim = lru_tail;
      if (victim != NULL) {
        lru_unlink(victim);
        chain_unlink(victim);
        free(victim);
        count = count - 1;
        stat_evictions = stat_evictions + 1;
      }
    }
  }
  unlock();
  net_send();
}

entry int mc_get(int key, char* out) {
  net_recv();
  lock();
  $(DECLK)
  int fnd = 0;
  struct item* it = lookup(k);
  if (it != NULL) {
    $(COPYOUT)(out, it->value, $(VSIZE));
    lru_unlink(it);
    lru_push(it);
    stat_hits = stat_hits + 1;
    fnd = 1;
  } else {
    stat_misses = stat_misses + 1;
  }
  $(SETSTATUS)
  unlock();
  net_send();
  return rstatus;
}

entry int mc_delete(int key) {
  $(DECLK)
  int fnd = 0;
  struct item* it = lookup(k);
  if (it != NULL) {
    lru_unlink(it);
    chain_unlink(it);
    free(it);
    count = count - 1;
    fnd = 1;
  }
  $(SETSTATUS)
  return rstatus;
}

entry int mc_touch(int key) {
  $(DECLK)
  int fnd = 0;
  struct item* it = lookup(k);
  if (it != NULL) {
    lru_unlink(it);
    lru_push(it);
    fnd = 1;
  }
  $(SETSTATUS)
  return rstatus;
}

entry int mc_count() {
  $(SETCOUNT)
  return rstatus;
}

entry int mc_stat(int which) {
  $(DECLW)
  int v = 0;
  if (w == 0) v = stat_hits;
  if (w == 1) v = stat_misses;
  if (w == 2) v = stat_sets;
  if (w == 3) v = stat_evictions;
  $(SETSTAT)
  return rstatus;
}
|}

let memcached ?(nbuckets = 4096) ?(vsize = 1024) (v : variant) =
  let extra =
    [
      ( "SETSTAT",
        if v = `Colored then "declassify_i64(&rstatus, v);"
        else "rstatus = v;" );
      ( "DECLW",
        if v = `Colored then
          "int color(blue) wslot;\n  classify_i64(&wslot, which);\n  int w = wslot;"
        else "int w = which;" );
    ]
  in
  substitute (extra @ bindings v ~nbuckets ~vsize) memcached_template
