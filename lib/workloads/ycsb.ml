(* YCSB workload generation (Cooper et al., SoCC'10 [15]): key-choosing
   distributions (zipfian with the standard 0.99 constant, scrambled
   zipfian, uniform, latest) and the standard workload mixes. Fully
   deterministic given the seed (splitmix64). *)

(* --- splitmix64 PRNG --- *)

type rng = { mutable state : int64 }

let rng seed = { state = Int64.of_int seed }

let next_int64 r =
  r.state <- Int64.add r.state 0x9E3779B97F4A7C15L;
  let z = r.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* uniform float in [0, 1) *)
let next_float r =
  let bits = Int64.shift_right_logical (next_int64 r) 11 in
  Int64.to_float bits /. 9007199254740992.0

(* uniform int in [0, n) *)
let next_int r n =
  if n <= 0 then 0
  else Int64.to_int (Int64.rem (Int64.logand (next_int64 r) Int64.max_int) (Int64.of_int n))

(* --- zipfian --- *)

let zipfian_constant = 0.99

type zipfian = {
  items : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
  zeta2 : float;
}

let zeta n theta =
  let sum = ref 0.0 in
  for i = 1 to n do
    sum := !sum +. (1.0 /. (float_of_int i ** theta))
  done;
  !sum

let zipfian ?(theta = zipfian_constant) items =
  let zetan = zeta items theta in
  let zeta2 = zeta 2 theta in
  {
    items;
    theta;
    alpha = 1.0 /. (1.0 -. theta);
    zetan;
    eta =
      (1.0 -. ((2.0 /. float_of_int items) ** (1.0 -. theta)))
      /. (1.0 -. (zeta2 /. zetan));
    zeta2;
  }

(* Next zipfian-distributed item in [0, items). Item 0 is the hottest. *)
let zipfian_next z r =
  let u = next_float r in
  let uz = u *. z.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. (0.5 ** z.theta) then 1
  else
    let v =
      float_of_int z.items *. (((z.eta *. u) -. z.eta +. 1.0) ** z.alpha)
    in
    min (z.items - 1) (int_of_float v)

(* FNV-style scrambling so hot keys spread over the key space, as YCSB's
   ScrambledZipfianGenerator does. *)
let fnv_hash64 v =
  let prime = 0x100000001B3L in
  let basis = 0xCBF29CE484222325L in
  let h = ref basis in
  let v = ref v in
  for _ = 0 to 7 do
    let octet = Int64.logand !v 0xffL in
    h := Int64.mul (Int64.logxor !h octet) prime;
    v := Int64.shift_right_logical !v 8
  done;
  !h

let scrambled_zipfian_next z r =
  let raw = zipfian_next z r in
  Int64.to_int
    (Int64.rem
       (Int64.logand (fnv_hash64 (Int64.of_int raw)) Int64.max_int)
       (Int64.of_int z.items))

(* --- workloads --- *)

type distribution = Uniform | Zipfian | Latest

type op =
  | Read of int
  | Update of int
  | Insert of int
  | Scan of int * int (* start key, requested length (YCSB-E) *)
  | Rmw of int (* read-modify-write on one key (YCSB-F) *)

type spec = {
  record_count : int;
  operation_count : int;
  read_proportion : float;
  update_proportion : float;
  insert_proportion : float;
  scan_proportion : float;
  rmw_proportion : float;
  max_scan_len : int; (* scan lengths are uniform in [1, max_scan_len] *)
  distribution : distribution;
  value_size : int;
  seed : int;
}

(* The standard mixes from the YCSB paper. *)
let workload_a ?(seed = 42) ~record_count ~operation_count ~value_size () =
  {
    record_count;
    operation_count;
    read_proportion = 0.5;
    update_proportion = 0.5;
    insert_proportion = 0.0;
    scan_proportion = 0.0;
    rmw_proportion = 0.0;
    max_scan_len = 1;
    distribution = Zipfian;
    value_size;
    seed;
  }

let workload_b ?(seed = 42) ~record_count ~operation_count ~value_size () =
  {
    record_count;
    operation_count;
    read_proportion = 0.95;
    update_proportion = 0.05;
    insert_proportion = 0.0;
    scan_proportion = 0.0;
    rmw_proportion = 0.0;
    max_scan_len = 1;
    distribution = Zipfian;
    value_size;
    seed;
  }

let workload_c ?(seed = 42) ~record_count ~operation_count ~value_size () =
  {
    record_count;
    operation_count;
    read_proportion = 1.0;
    update_proportion = 0.0;
    insert_proportion = 0.0;
    scan_proportion = 0.0;
    rmw_proportion = 0.0;
    max_scan_len = 1;
    distribution = Zipfian;
    value_size;
    seed;
  }

(* Workload E: short range scans (95%) + inserts (5%), zipfian start
   keys. Workload F: reads (50%) + read-modify-writes (50%). *)
let workload_e ?(seed = 42) ?(max_scan_len = 16) ~record_count
    ~operation_count ~value_size () =
  {
    record_count;
    operation_count;
    read_proportion = 0.0;
    update_proportion = 0.0;
    insert_proportion = 0.05;
    scan_proportion = 0.95;
    rmw_proportion = 0.0;
    max_scan_len;
    distribution = Zipfian;
    value_size;
    seed;
  }

let workload_f ?(seed = 42) ~record_count ~operation_count ~value_size () =
  {
    record_count;
    operation_count;
    read_proportion = 0.5;
    update_proportion = 0.0;
    insert_proportion = 0.0;
    scan_proportion = 0.0;
    rmw_proportion = 0.5;
    max_scan_len = 1;
    distribution = Zipfian;
    value_size;
    seed;
  }

let uniform_mix ?(seed = 42) ~record_count ~operation_count ~value_size
    ~read_proportion () =
  {
    record_count;
    operation_count;
    read_proportion;
    update_proportion = 1.0 -. read_proportion;
    insert_proportion = 0.0;
    scan_proportion = 0.0;
    rmw_proportion = 0.0;
    max_scan_len = 1;
    distribution = Uniform;
    value_size;
    seed;
  }

type t = {
  spec : spec;
  r : rng;
  z : zipfian option;
  mutable inserted : int;      (* for Latest / Insert *)
}

let create spec =
  {
    spec;
    r = rng spec.seed;
    z =
      (match spec.distribution with
      | Zipfian | Latest -> Some (zipfian spec.record_count)
      | Uniform -> None);
    inserted = spec.record_count;
  }

(* Keys of the initial dataset: 0 .. record_count-1 (the harness maps them
   to 8-byte keys). *)
let load_keys spec = List.init spec.record_count (fun i -> i)

let next_key t =
  match t.spec.distribution with
  | Uniform -> next_int t.r t.inserted
  | Zipfian -> (
    match t.z with
    | Some z -> scrambled_zipfian_next z t.r
    | None -> next_int t.r t.inserted)
  | Latest -> (
    match t.z with
    | Some z -> max 0 (t.inserted - 1 - zipfian_next z t.r)
    | None -> next_int t.r t.inserted)

let next_op t : op =
  let u = next_float t.r in
  let read = t.spec.read_proportion in
  let update = read +. t.spec.update_proportion in
  let scan = update +. t.spec.scan_proportion in
  let rmw = scan +. t.spec.rmw_proportion in
  if u < read then Read (next_key t)
  else if u < update then Update (next_key t)
  else if u < scan then
    Scan (next_key t, 1 + next_int t.r (max 1 t.spec.max_scan_len))
  else if u < rmw then Rmw (next_key t)
  else begin
    let k = t.inserted in
    t.inserted <- t.inserted + 1;
    Insert k
  end

(* Deterministic pseudo-random value payload for key [k]. *)
let value_for ~size k =
  let b = Bytes.create size in
  let r = rng (k * 7919) in
  for i = 0 to size - 1 do
    Bytes.set b i (Char.chr (Int64.to_int (Int64.logand (next_int64 r) 0x7fL)))
  done;
  Bytes.to_string b
