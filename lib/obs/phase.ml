(* The five places a parallel worker's wall-clock can go. Phase accounting
   is a continuous partition of a lane's lifetime: at every instant the
   worker is in exactly one phase, so the per-phase accumulators sum to
   the lane's wall time (modulo the open tail, which [Lane.snapshot]
   closes at read time).

   - [Run]        executing a chunk (instructions retiring)
   - [Pump_wait]  waiting for a continuation or spawn completion while
                  pumping its own queue (the pump-wait discipline)
   - [Queue_wait] idle in the worker loop, polling for new work
   - [Barrier]    waiting for predecessor activations at a barrier
   - [Park]       deep idle: the spin budget ran out and the worker is
                  sleeping in micro-naps *)
type t = Run | Pump_wait | Queue_wait | Barrier | Park

let count = 5

let index = function
  | Run -> 0
  | Pump_wait -> 1
  | Queue_wait -> 2
  | Barrier -> 3
  | Park -> 4

let of_index = function
  | 0 -> Run
  | 1 -> Pump_wait
  | 2 -> Queue_wait
  | 3 -> Barrier
  | 4 -> Park
  | n -> invalid_arg (Printf.sprintf "Phase.of_index %d" n)

let name = function
  | Run -> "run"
  | Pump_wait -> "pump-wait"
  | Queue_wait -> "queue-wait"
  | Barrier -> "barrier"
  | Park -> "park"

let all = [ Run; Pump_wait; Queue_wait; Barrier; Park ]
