(* Flat per-phase accumulators with an open current interval. Plain int
   fields: the owner domain is the only writer, and OCaml immediates
   cannot tear, so cross-domain snapshot reads are merely slightly stale
   (bounded by one transition), which is fine for live gauges. The stall
   report snapshots after the pool quiesces, where joins give exact
   visibility. *)

type t = {
  l_ring : Ring.t;
  acc : int array; (* Phase.count accumulated microseconds *)
  mutable cur : int;
  mutable since_us : int;
  start_us : int;
}

let create ?ring_cap ~id ~label ~now_us () =
  {
    l_ring = Ring.create ?cap:ring_cap ~id ~label ();
    acc = Array.make Phase.count 0;
    cur = Phase.index Phase.Queue_wait;
    since_us = now_us;
    start_us = now_us;
  }

let ring t = t.l_ring
let current t = t.cur

let enter_index t p ~now_us =
  if p <> t.cur then begin
    t.acc.(t.cur) <- t.acc.(t.cur) + (now_us - t.since_us);
    t.cur <- p;
    t.since_us <- now_us;
    Ring.record t.l_ring ~code:p ~arg:0 ~t_us:now_us
  end

let enter t phase ~now_us = enter_index t (Phase.index phase) ~now_us

type breakdown = {
  b_id : int;
  b_label : string;
  b_wall_us : int;
  b_phase_us : int array;
}

let snapshot t ~now_us =
  let phases = Array.copy t.acc in
  let cur = t.cur and since = t.since_us in
  if now_us > since then phases.(cur) <- phases.(cur) + (now_us - since);
  {
    b_id = Ring.id t.l_ring;
    b_label = Ring.label t.l_ring;
    b_wall_us = max 1 (now_us - t.start_us);
    b_phase_us = phases;
  }

let coverage b =
  float_of_int (Array.fold_left ( + ) 0 b.b_phase_us)
  /. float_of_int b.b_wall_us

let dominant_stall b =
  let best = ref (Phase.index Phase.Pump_wait) in
  for p = 1 to Phase.count - 1 do
    if b.b_phase_us.(p) > b.b_phase_us.(!best) then best := p
  done;
  Phase.of_index !best
