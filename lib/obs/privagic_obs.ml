(* Always-on runtime observability (§8.12 in DESIGN.md).

   This root module re-exports the pieces and owns the two process-wide
   bits of state every component shares: the obs epoch (so all rings
   timestamp against one clock and merge into one timeline) and the
   enabled switch. "Always-on" means the default is on; PRIVAGIC_OBS=off
   exists so the CI overhead gate has an off-state to compare against,
   not as something users are expected to set. *)

module Phase = Phase
module Ring = Ring
module Lane = Lane
module Registry = Registry

let enabled_ref =
  ref
    (match Sys.getenv_opt "PRIVAGIC_OBS" with
    | Some ("0" | "off" | "false" | "no") -> false
    | _ -> true)

let enabled () = !enabled_ref
let set_enabled b = enabled_ref := b

(* Process obs epoch: all ring timestamps are integer microseconds since
   this instant (see clock.ml — Ring's amortized clock shares it). *)
let epoch = Clock.epoch
let now_us = Clock.now_us
