(* The process obs clock: all ring timestamps are integer microseconds
   since this epoch. Integer timestamps are what keep Ring.record free of
   float boxing; the one gettimeofday float lives here, on the caller
   side of the record path. *)

let epoch = Unix.gettimeofday ()
let now_us () = int_of_float ((Unix.gettimeofday () -. epoch) *. 1e6)
