(* Single-writer event ring over three int arrays. See ring.mli for the
   contract; the key invariant is that [record] performs only unboxed int
   stores, so attaching a ring to a hot loop costs a handful of
   nanoseconds and zero GC pressure. *)

type t = {
  cap : int;
  mask : int;
  ts : int array; (* microseconds since the obs epoch *)
  codes : int array;
  args : int array;
  mutable pos : int; (* total events ever written; owner-domain only *)
  mutable last_us : int; (* amortized clock cache for [record_now] *)
  mutable refresh : int; (* [record_now] calls until the next real read *)
  id : int;
  label : string;
}

let rec round_pow2 n k = if k >= n then k else round_pow2 n (k * 2)

let create ?(cap = 4096) ~id ~label () =
  let cap = round_pow2 (max 2 cap) 2 in
  {
    cap;
    mask = cap - 1;
    ts = Array.make cap 0;
    codes = Array.make cap 0;
    args = Array.make cap 0;
    pos = 0;
    last_us = 0;
    refresh = 0;
    id;
    label;
  }

let[@inline] record t ~code ~arg ~t_us =
  let i = t.pos land t.mask in
  t.ts.(i) <- t_us;
  t.codes.(i) <- code;
  t.args.(i) <- arg;
  t.pos <- t.pos + 1;
  (* exact-time events keep the amortized cache fresh and monotone *)
  if t_us > t.last_us then t.last_us <- t_us

(* One real clock read per [refresh_every] events: gettimeofday allocates
   a boxed float, which at extern-dispatch frequency costs several percent
   of steps/s. Amortizing keeps point events in the timeline (stamped with
   the cached time, never behind the last exact-time event) at negligible
   hot-path cost; the (ring, seq) tiebreak keeps the merge deterministic
   for events sharing a cached stamp. *)
let refresh_every = 32

let[@inline] record_now t ~code ~arg =
  (if t.refresh <= 0 then begin
     t.refresh <- refresh_every;
     let u = Clock.now_us () in
     if u > t.last_us then t.last_us <- u
   end
   else t.refresh <- t.refresh - 1);
  record t ~code ~arg ~t_us:t.last_us

let capacity t = t.cap
let id t = t.id
let label t = t.label
let total t = t.pos
let length t = min t.pos t.cap
let dropped t = max 0 (t.pos - t.cap)

(* Codes below Phase.count are phase entries; these are point events. *)
let code_extern = 16
let code_chunk = 17

let code_name c =
  if c >= 0 && c < Phase.count then "phase:" ^ Phase.name (Phase.of_index c)
  else if c = code_extern then "extern"
  else if c = code_chunk then "chunk"
  else "code:" ^ string_of_int c

type event = {
  ev_t_us : int;
  ev_ring : int;
  ev_seq : int;
  ev_code : int;
  ev_arg : int;
}

let to_events t =
  let n = length t in
  let first = t.pos - n in
  Array.init n (fun k ->
      let seq = first + k in
      let i = seq land t.mask in
      {
        ev_t_us = t.ts.(i);
        ev_ring = t.id;
        ev_seq = seq;
        ev_code = t.codes.(i);
        ev_arg = t.args.(i);
      })

(* Total order: timestamp, then ring id, then per-ring sequence. Two
   events never compare equal across distinct rings (ids differ) or
   within one ring (seqs differ), so the sort is a permutation-free
   total order — merge output is independent of the input list order. *)
let compare_ev a b =
  if a.ev_t_us <> b.ev_t_us then compare a.ev_t_us b.ev_t_us
  else if a.ev_ring <> b.ev_ring then compare a.ev_ring b.ev_ring
  else compare a.ev_seq b.ev_seq

let merge rings =
  let arr =
    Array.concat (List.map to_events (List.sort (fun a b -> compare a.id b.id) rings))
  in
  Array.sort compare_ev arr;
  arr
