(** Registry of counters, gauges and summaries with Prometheus-style
    text exposition.

    A registry is an explicit instance, not a process global: the server
    owns one, [profile --live] builds one, tests build their own — so
    nothing leaks between components or test cases. Registration takes a
    small lock; reading a counter is a lock-free [Atomic] load, and
    gauges/summaries are pulled through their closures only at [expose]
    time (a closure may take its component's own lock). *)

module Metrics = Privagic_telemetry.Metrics

type t

val create : unit -> t

(** [counter t ~help name] registers (or returns the existing) counter
    for [(name, labels)]. Bump it with [Atomic.incr]/[fetch_and_add].
    @raise Invalid_argument if the pair is already registered as a
    different metric kind. *)
val counter :
  t -> ?labels:(string * string) list -> help:string -> string -> int Atomic.t

(** Register a gauge sampled at exposition time. *)
val gauge :
  t ->
  ?labels:(string * string) list ->
  help:string ->
  string ->
  (unit -> float) ->
  unit

(** Register a gauge family whose label sets are only known at sample
    time (per-lane, per-color series): the callback returns one
    [(labels, value)] pair per series. *)
val multi_gauge :
  t ->
  help:string ->
  string ->
  (unit -> ((string * string) list * float) list) ->
  unit

(** Register a quantile summary sampled at exposition time; rendered as
    Prometheus [quantile] series plus [_sum]/[_count]. *)
val summary :
  t ->
  ?labels:(string * string) list ->
  help:string ->
  string ->
  (unit -> Metrics.pctiles) ->
  unit

(** Render every metric in Prometheus text format, grouped by metric
    name in first-registration order, each name preceded by its
    [# HELP]/[# TYPE] header. Lines end in ["\n"]. *)
val expose : t -> string
