(** Per-worker phase accounting plus the worker's event ring.

    A lane tracks where one worker's wall-clock goes as a continuous
    partition over {!Phase.t}: [enter] closes the current phase into its
    accumulator and opens the next, also dropping a phase-entry event
    into the ring. Only the owning domain calls [enter]; [snapshot] may
    be called from any domain and closes the open tail at the snapshot
    instant, so the phase sums always cover the lane's full wall time
    (cross-domain reads are monitoring-grade: at most one in-flight
    transition stale). *)

type t

(** [create ~id ~label ~now_us ()] starts a lane in [Queue_wait] at
    [now_us]. [id]/[label] name the underlying ring. *)
val create : ?ring_cap:int -> id:int -> label:string -> now_us:int -> unit -> t

val ring : t -> Ring.t

(** Current phase index (owner view). *)
val current : t -> int

(** Transition to [phase] at [now_us]. No-op if already there. *)
val enter : t -> Phase.t -> now_us:int -> unit

(** Like [enter] but by phase index — for save/restore around nested
    sections (a chunk run inside a pump-wait restores the wait). *)
val enter_index : t -> int -> now_us:int -> unit

type breakdown = {
  b_id : int;
  b_label : string;
  b_wall_us : int;  (** lane lifetime at snapshot, >= 1 *)
  b_phase_us : int array;  (** indexed by [Phase.index], length [Phase.count] *)
}

val snapshot : t -> now_us:int -> breakdown

(** Fraction of wall time the phase accumulators explain, ~1.0 by
    construction. *)
val coverage : breakdown -> float

(** The non-[Run] phase with the largest share — the lane's dominant
    stall cause. *)
val dominant_stall : breakdown -> Phase.t
