module Metrics = Privagic_telemetry.Metrics

type value =
  | Counter of int Atomic.t
  | Gauge of (unit -> float)
  | Multi of (unit -> ((string * string) list * float) list)
  | Summary of (unit -> Metrics.pctiles)

type metric = {
  m_name : string;
  m_labels : (string * string) list;
  m_help : string;
  m_value : value;
}

type t = {
  mu : Mutex.t;
  mutable metrics : metric list; (* reverse registration order *)
}

let create () = { mu = Mutex.create (); metrics = [] }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let find t name labels =
  List.find_opt (fun m -> m.m_name = name && m.m_labels = labels) t.metrics

let counter t ?(labels = []) ~help name =
  locked t (fun () ->
      match find t name labels with
      | Some { m_value = Counter c; _ } -> c
      | Some _ ->
        invalid_arg ("Obs.Registry: " ^ name ^ " registered as non-counter")
      | None ->
        let c = Atomic.make 0 in
        t.metrics <-
          { m_name = name; m_labels = labels; m_help = help; m_value = Counter c }
          :: t.metrics;
        c)

let register t ~labels ~help name value =
  locked t (fun () ->
      match find t name labels with
      | Some _ ->
        (* re-registering a sampled metric replaces it: components like the
           server rebuild their gauge set when a backend store is swapped *)
        t.metrics <-
          { m_name = name; m_labels = labels; m_help = help; m_value = value }
          :: List.filter
               (fun m -> not (m.m_name = name && m.m_labels = labels))
               t.metrics
      | None ->
        t.metrics <-
          { m_name = name; m_labels = labels; m_help = help; m_value = value }
          :: t.metrics)

let gauge t ?(labels = []) ~help name f =
  register t ~labels ~help name (Gauge f)

let multi_gauge t ~help name f = register t ~labels:[] ~help name (Multi f)

let summary t ?(labels = []) ~help name f =
  register t ~labels ~help name (Summary f)

(* ---------------- exposition ---------------- *)

let escape_label v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let labels_str = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> k ^ "=\"" ^ escape_label v ^ "\"") labels)
    ^ "}"

let fmt_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let type_str = function
  | Counter _ -> "counter"
  | Gauge _ | Multi _ -> "gauge"
  | Summary _ -> "summary"

let expose t =
  let ms = locked t (fun () -> List.rev t.metrics) in
  (* Prometheus requires all samples of one metric name to be contiguous:
     group by name, names in first-registration order *)
  let names =
    List.fold_left
      (fun acc m -> if List.mem m.m_name acc then acc else m.m_name :: acc)
      [] ms
    |> List.rev
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun name ->
      let group = List.filter (fun m -> m.m_name = name) ms in
      (match group with
      | m :: _ ->
        if m.m_help <> "" then
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" name m.m_help);
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" name (type_str m.m_value))
      | [] -> ());
      List.iter
        (fun m ->
          match m.m_value with
          | Counter c ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %d\n" name (labels_str m.m_labels)
                 (Atomic.get c))
          | Gauge f ->
            Buffer.add_string buf
              (Printf.sprintf "%s%s %s\n" name (labels_str m.m_labels)
                 (fmt_float (f ())))
          | Multi f ->
            List.iter
              (fun (labels, v) ->
                Buffer.add_string buf
                  (Printf.sprintf "%s%s %s\n" name (labels_str labels)
                     (fmt_float v)))
              (f ())
          | Summary f ->
            let p = f () in
            let q qv v =
              Buffer.add_string buf
                (Printf.sprintf "%s%s %s\n" name
                   (labels_str (m.m_labels @ [ ("quantile", qv) ]))
                   (fmt_float v))
            in
            q "0.5" p.Metrics.p50;
            q "0.95" p.Metrics.p95;
            q "0.99" p.Metrics.p99;
            q "0.999" p.Metrics.p999;
            q "1" p.Metrics.p_max;
            Buffer.add_string buf
              (Printf.sprintf "%s_sum%s %s\n" name (labels_str m.m_labels)
                 (fmt_float (p.Metrics.p_mean *. float_of_int p.Metrics.n)));
            Buffer.add_string buf
              (Printf.sprintf "%s_count%s %d\n" name (labels_str m.m_labels)
                 p.Metrics.n))
        group)
    names;
  Buffer.contents buf
