(** Per-domain lock-free event ring.

    Fixed capacity (rounded up to a power of two), overwrite-oldest, and —
    the property the whole layer leans on — {b zero allocation on the
    record path}: the three backing stores are plain [int array]s, so
    [record] is three unboxed stores and an increment. Timestamps are
    integer microseconds since the process obs epoch (see
    {!Privagic_obs.now_us}); keeping them out of float-land is what keeps
    the path allocation-free in native code.

    Each ring has exactly one writer (the owning domain). Readers merge
    rings {e after} quiescence — [Domain.join] or pool shutdown provides
    the happens-before — so no fences are needed on the hot path. *)

type t

(** [create ~id ~label ()] makes a ring. [cap] (default 4096) is rounded
    up to a power of two. [id] must be unique among rings that will be
    merged together; it is the tiebreak that makes merge deterministic. *)
val create : ?cap:int -> id:int -> label:string -> unit -> t

(** Append one event. Single-writer; never allocates, never blocks.
    Overwrites the oldest event once the ring is full. *)
val record : t -> code:int -> arg:int -> t_us:int -> unit

(** [record] stamped with an amortized clock: the real clock is read once
    every 32 calls (a gettimeofday per event costs several percent of
    steps/s at extern-dispatch frequency) and cached in between, never
    going behind the last exact-time [record]. For high-frequency point
    events where a ~32-event-granular timestamp is acceptable. *)
val record_now : t -> code:int -> arg:int -> unit

val capacity : t -> int
val id : t -> int
val label : t -> string

(** Events ever written (monotone, not capped). *)
val total : t -> int

(** Events currently held, [min (total t) (capacity t)]. *)
val length : t -> int

(** Events lost to overwrite-oldest, [max 0 (total - capacity)]. *)
val dropped : t -> int

(** Event codes [0 .. Phase.count-1] are phase-entry events (the code is
    the {!Phase.index}); codes at and above {!code_extern} are point
    events. *)
val code_extern : int

val code_chunk : int
val code_name : int -> string

type event = {
  ev_t_us : int;  (** microseconds since the obs epoch *)
  ev_ring : int;  (** originating ring id *)
  ev_seq : int;  (** per-ring sequence number, monotone from ring start *)
  ev_code : int;
  ev_arg : int;
}

(** Surviving events, oldest first. *)
val to_events : t -> event array

(** Merge several quiesced rings into one timeline, sorted by
    [(t_us, ring, seq)]. The order is deterministic: it does not depend
    on the order of the input list, and merging the same rings twice
    yields identical arrays. *)
val merge : t list -> event array
