(* Pre-sized ring buffer of typed events, stamped with the virtual clock.

   Designed so that a disabled recorder costs one inlined boolean read on
   the hot path and nothing else: call sites guard with [if enabled r then
   record ...], and the event storage is column-wise (parallel arrays, the
   float columns unboxed) so an enabled recorder allocates nothing per
   event either.

   The recorder also owns the cross-layer context the SGX machine lacks:
   the current worker track and a virtual-clock source, both maintained by
   the VM as fibers switch. Scheduler and VM events pass explicit
   [~at]/[~track]; machine events use [here]. *)

type t = {
  mutable on : bool;
  cap : int;
  at : float array;
  track : int array;
  kind : Event.kind array;
  name : string array;
  arg : int array;
  farg : float array;
  mutable n : int;                   (* total events ever recorded *)
  mutable next_flow : int;
  mutable next_track : int;
  track_names : (int, string) Hashtbl.t;
  mutable cur_track : int;           (* context for [here] *)
  mutable now : unit -> float;       (* virtual-clock source for [here] *)
}

let no_clock () = 0.0

let make capacity =
  {
    on = capacity > 0;
    cap = capacity;
    at = Array.make (max 1 capacity) 0.0;
    track = Array.make (max 1 capacity) 0;
    kind = Array.make (max 1 capacity) Event.Fiber_start;
    name = Array.make (max 1 capacity) "";
    arg = Array.make (max 1 capacity) 0;
    farg = Array.make (max 1 capacity) 0.0;
    n = 0;
    next_flow = 0;
    next_track = 0;
    track_names = Hashtbl.create 16;
    cur_track = 0;
    now = no_clock;
  }

(* The shared disabled recorder: every sink defaults to it; [enabled] is
   false so no call site ever records into it. *)
let null = make 0

let create ?(capacity = 1 lsl 18) () = make (max 1 capacity)

let enabled t = t.on

let set_enabled t on = t.on <- on && t.cap > 0

let set_now t f = t.now <- f

let set_track t track = t.cur_track <- track

let fresh_flow t =
  let f = t.next_flow in
  t.next_flow <- f + 1;
  f

let fresh_track t name =
  let k = t.next_track in
  t.next_track <- k + 1;
  if t.cap > 0 then Hashtbl.replace t.track_names k name;
  k

let track_name t k =
  match Hashtbl.find_opt t.track_names k with
  | Some n -> n
  | None -> Printf.sprintf "track-%d" k

let record t ~at ~track ?(name = "") ?(arg = 0) ?(farg = 0.0)
    (kind : Event.kind) =
  if t.on then begin
    let i = t.n mod t.cap in
    t.at.(i) <- at;
    t.track.(i) <- track;
    t.kind.(i) <- kind;
    t.name.(i) <- name;
    t.arg.(i) <- arg;
    t.farg.(i) <- farg;
    t.n <- t.n + 1
  end

(* Record with the recorder's current context (the SGX machine's events:
   it knows neither the clock nor the worker). *)
let here t ?name ?arg (kind : Event.kind) =
  record t ~at:(t.now ()) ~track:t.cur_track ?name ?arg kind

let length t = min t.n t.cap

let dropped t = max 0 (t.n - t.cap)

(* Flow ids stay monotonic across [clear]: ids already handed out live on
   in program state (in-flight mail, completion signals) and must not
   collide with ids issued after the reset. *)
let clear t = t.n <- 0

let get t i : Event.t =
  (* [i]-th oldest retained event *)
  let len = length t in
  if i < 0 || i >= len then invalid_arg "Recorder.get";
  let j = if t.n <= t.cap then i else (t.n + i) mod t.cap in
  {
    Event.at = t.at.(j);
    track = t.track.(j);
    kind = t.kind.(j);
    name = t.name.(j);
    arg = t.arg.(j);
    farg = t.farg.(j);
  }

let events t : Event.t array = Array.init (length t) (get t)

let iter t f =
  for i = 0 to length t - 1 do
    f (get t i)
  done

let tracks t =
  List.sort compare
    (Hashtbl.fold (fun k name acc -> (k, name) :: acc) t.track_names [])
