(* Counters and log-scale histograms, snapshotted per run.

   A histogram has 64 power-of-two buckets: bucket [i] counts observations
   in [2^(i-1), 2^i) (bucket 0 holds everything below 1). Percentile
   estimates interpolate inside the bucket, which is accurate enough for
   latency distributions spanning decades of cycles. Registration is
   name-keyed and idempotent so call sites can look metrics up on the hot
   path without threading handles around. *)

type counter = { c_name : string; mutable count : int }

let nbuckets = 64

type histogram = {
  h_name : string;
  buckets : int array;
  mutable h_count : int;
  mutable sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type t = {
  counters : (string, counter) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
  mutable order : string list;       (* registration order, newest first *)
}

let create () =
  { counters = Hashtbl.create 16; histograms = Hashtbl.create 16; order = [] }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; count = 0 } in
    Hashtbl.replace t.counters name c;
    t.order <- name :: t.order;
    c

let incr ?(by = 1) c = c.count <- c.count + by

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
    let h =
      {
        h_name = name;
        buckets = Array.make nbuckets 0;
        h_count = 0;
        sum = 0.0;
        h_min = infinity;
        h_max = neg_infinity;
      }
    in
    Hashtbl.replace t.histograms name h;
    t.order <- name :: t.order;
    h

(* Bucket of value [v]: the exponent of its power-of-two magnitude. *)
let bucket_of v =
  if not (v >= 1.0) then 0
  else
    let _, e = Float.frexp v in
    (* v = m * 2^e, m in [0.5, 1) => 2^(e-1) <= v < 2^e *)
    min (nbuckets - 1) (max 0 e)

let observe h v =
  h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
  h.h_count <- h.h_count + 1;
  h.sum <- h.sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let mean h = if h.h_count = 0 then 0.0 else h.sum /. float_of_int h.h_count

(* The [p]-quantile (p in [0,1]), interpolated within its bucket and
   clamped to the observed min/max. *)
let percentile h p =
  if h.h_count = 0 then 0.0
  else begin
    let rank = p *. float_of_int h.h_count in
    let acc = ref 0.0 in
    let result = ref h.h_max in
    (try
       for i = 0 to nbuckets - 1 do
         let c = float_of_int h.buckets.(i) in
         if c > 0.0 then begin
           if !acc +. c >= rank then begin
             let lo = if i = 0 then 0.0 else Float.ldexp 1.0 (i - 1) in
             let hi = Float.ldexp 1.0 i in
             let frac = if c > 0.0 then (rank -. !acc) /. c else 0.0 in
             result := lo +. ((hi -. lo) *. Float.max 0.0 (Float.min 1.0 frac));
             raise Exit
           end;
           acc := !acc +. c
         end
       done
     with Exit -> ());
    Float.max h.h_min (Float.min h.h_max !result)
  end

(* The standard latency-report quartet, for any duration-class metric:
   sinks (summary, server stats, BENCH json) all report the same points. *)
type pctiles = { n : int; p_mean : float; p50 : float; p95 : float;
                 p99 : float; p999 : float; p_max : float }

let pctiles h =
  {
    n = h.h_count;
    p_mean = mean h;
    p50 = percentile h 0.50;
    p95 = percentile h 0.95;
    p99 = percentile h 0.99;
    p999 = percentile h 0.999;
    p_max = (if h.h_count = 0 then 0.0 else h.h_max);
  }

let fold_counters t f acc =
  List.fold_left
    (fun acc name ->
      match Hashtbl.find_opt t.counters name with
      | Some c -> f acc c
      | None -> acc)
    acc (List.rev t.order)

let fold_histograms t f acc =
  List.fold_left
    (fun acc name ->
      match Hashtbl.find_opt t.histograms name with
      | Some h -> f acc h
      | None -> acc)
    acc (List.rev t.order)

let pp fmt t =
  let open Format in
  fold_counters t
    (fun () c -> fprintf fmt "  %-32s %12d@." c.c_name c.count)
    ();
  fold_histograms t
    (fun () h ->
      if h.h_count = 0 then fprintf fmt "  %-32s (no samples)@." h.h_name
      else
        let p = pctiles h in
        fprintf fmt
          "  %-32s n=%-7d mean=%-10.0f p50=%-10.0f p95=%-10.0f p99=%-10.0f \
           p99.9=%-10.0f max=%-10.0f@."
          h.h_name p.n p.p_mean p.p50 p.p95 p.p99 p.p999 p.p_max)
    ()
