(* The typed events of the telemetry subsystem. Every execution layer
   (scheduler, SGX machine, partitioned VM) records into the same ring
   buffer; the sinks (Chrome trace, summary, critical path) interpret the
   events uniformly.

   Events are stored column-wise in the recorder (parallel arrays) so that
   recording never allocates; this module defines the row view the sinks
   consume and the kind enumeration. The generic payload fields are:

   - [arg]: an integer payload — the flow (correlation) id of a message
     event, the parent track of a fiber spawn, the page count of an EPC
     fault;
   - [farg]: a float payload — the causal arrival timestamp of a resume. *)

type kind =
  (* scheduler: one fiber's lifecycle on its worker track *)
  | Fiber_spawn    (* track = child; arg = spawning track (-1: external) *)
  | Fiber_start
  | Fiber_block
  | Fiber_resume   (* farg = arrival (causal timestamp of the wakeup) *)
  | Fiber_finish
  (* partitioned VM: chunk execution spans and runtime messages *)
  | Chunk_begin    (* name = chunk *)
  | Chunk_end
  (* serving layer: whole-request spans (parse -> response written);
     distinct from chunk spans so the summary sink can report end-to-end
     request latency separately from enclave chunk lengths *)
  | Req_begin      (* name = protocol op ("get"/"set"/"del") *)
  | Req_end
  | Msg_send       (* name = "spawn"|"retval"|"token"|"done"; arg = flow *)
  | Msg_recv       (* arg = flow of the matched send *)
  | Barrier
  (* SGX machine: transitions and faults *)
  | Ecall
  | Ocall          (* syscall issued from inside an enclave *)
  | Switchless
  | Queue_msg
  | Syscall
  | Epc_fault      (* arg = number of faulting pages *)
  | Thread_spawn

type t = {
  at : float;      (* virtual-clock timestamp, cycles *)
  track : int;     (* the worker track the event belongs to *)
  kind : kind;
  name : string;   (* chunk name / message tag; "" when unused *)
  arg : int;
  farg : float;
}

let kind_name = function
  | Fiber_spawn -> "fiber_spawn"
  | Fiber_start -> "fiber_start"
  | Fiber_block -> "fiber_block"
  | Fiber_resume -> "fiber_resume"
  | Fiber_finish -> "fiber_finish"
  | Chunk_begin -> "chunk_begin"
  | Chunk_end -> "chunk_end"
  | Req_begin -> "req_begin"
  | Req_end -> "req_end"
  | Msg_send -> "msg_send"
  | Msg_recv -> "msg_recv"
  | Barrier -> "barrier"
  | Ecall -> "ecall"
  | Ocall -> "ocall"
  | Switchless -> "switchless"
  | Queue_msg -> "queue_msg"
  | Syscall -> "syscall"
  | Epc_fault -> "epc_fault"
  | Thread_spawn -> "thread_spawn"
