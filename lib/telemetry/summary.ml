(* Plain-text summary sink: derives the standard per-run metrics from the
   recorded events — message (queue) latency, chunk span lengths,
   per-worker busy occupancy, transition/fault counts — and renders them
   with the histograms of {!Metrics}. *)

type t = {
  makespan : float;
  event_count : int;
  dropped : int;
  metrics : Metrics.t;
  occupancy : (int * float) list;  (* track -> busy fraction of makespan *)
}

(* Request spans per track, from paired Req_begin/Req_end events (the
   serving layer's end-to-end latency; same pairing as chunk spans). *)
let req_spans (evs : Event.t array) =
  let stacks : (int, (string * float) list ref) Hashtbl.t = Hashtbl.create 8 in
  let spans = ref [] in
  Array.iter
    (fun (e : Event.t) ->
      let stack =
        match Hashtbl.find_opt stacks e.Event.track with
        | Some s -> s
        | None ->
          let s = ref [] in
          Hashtbl.replace stacks e.Event.track s;
          s
      in
      match e.Event.kind with
      | Event.Req_begin -> stack := (e.Event.name, e.Event.at) :: !stack
      | Event.Req_end -> (
        match !stack with
        | (name, t0) :: rest ->
          stack := rest;
          spans := (e.Event.track, name, t0, e.Event.at) :: !spans
        | [] -> ())
      | _ -> ())
    evs;
  !spans

let of_events ?(dropped = 0) (evs : Event.t array) : t =
  let m = Metrics.create () in
  let queue_latency = Metrics.histogram m "queue latency (cycles)" in
  let span_len = Metrics.histogram m "chunk span length (cycles)" in
  let msgs = Metrics.counter m "messages" in
  let spawns = Metrics.counter m "spawn messages" in
  let conts = Metrics.counter m "cont messages" in
  let barriers = Metrics.counter m "barriers" in
  let ecalls = Metrics.counter m "ecalls" in
  let epc_faults = Metrics.counter m "epc faults (pages)" in
  let syscalls = Metrics.counter m "syscalls" in
  let send_at : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let busy : (int, float) Hashtbl.t = Hashtbl.create 8 in
  let makespan =
    Array.fold_left (fun acc (e : Event.t) -> Float.max acc e.Event.at) 0.0 evs
  in
  let spans = Critical_path.chunk_spans evs in
  (* busy time = union of the track's chunk intervals; a nested chunk
     (local call inside a chunk) would otherwise be double-counted *)
  let by_track : (int, (float * float) list) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (track, _name, t0, t1) ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt by_track track) in
      Hashtbl.replace by_track track ((t0, t1) :: prev))
    spans;
  Hashtbl.iter
    (fun track ivs ->
      match List.sort compare ivs with
      | [] -> ()
      | (lo0, hi0) :: rest ->
        let total, lo, hi =
          List.fold_left
            (fun (acc, lo, hi) (a, b) ->
              if a > hi then (acc +. (hi -. lo), a, b)
              else (acc, lo, Float.max hi b))
            (0.0, lo0, hi0) rest
        in
        Hashtbl.replace busy track (total +. (hi -. lo)))
    by_track;
  Array.iter
    (fun (e : Event.t) ->
      match e.Event.kind with
      | Event.Msg_send ->
        Metrics.incr msgs;
        (match e.Event.name with
        | "spawn" -> Metrics.incr spawns
        | "retval" | "token" -> Metrics.incr conts
        | _ -> ());
        Hashtbl.replace send_at e.Event.arg e.Event.at
      | Event.Msg_recv -> (
        match Hashtbl.find_opt send_at e.Event.arg with
        | Some t0 -> Metrics.observe queue_latency (Float.max 0.0 (e.Event.at -. t0))
        | None -> ())
      | Event.Chunk_begin -> ()
      | Event.Chunk_end -> ()
      | Event.Barrier -> Metrics.incr barriers
      | Event.Ecall -> Metrics.incr ecalls
      | Event.Epc_fault -> Metrics.incr ~by:(max 1 e.Event.arg) epc_faults
      | Event.Syscall | Event.Ocall -> Metrics.incr syscalls
      | _ -> ())
    evs;
  List.iter
    (fun (_track, _name, t0, t1) -> Metrics.observe span_len (t1 -. t0))
    spans;
  (* serving-layer request spans, when present: end-to-end latency in the
     recorder's clock units (cycles under the simulator, microseconds
     under the wall-clock backends) *)
  (match req_spans evs with
  | [] -> ()
  | rspans ->
    let requests = Metrics.counter m "requests" in
    let req_latency = Metrics.histogram m "request latency" in
    List.iter
      (fun (_track, _name, t0, t1) ->
        Metrics.incr requests;
        Metrics.observe req_latency (t1 -. t0))
      rspans);
  {
    makespan;
    event_count = Array.length evs;
    dropped;
    metrics = m;
    occupancy =
      List.sort
        (fun (_, a) (_, b) -> Float.compare b a)
        (Hashtbl.fold
           (fun k v acc ->
             (k, if makespan > 0.0 then v /. makespan else 0.0) :: acc)
           busy []);
  }

let of_recorder (r : Recorder.t) : t =
  of_events ~dropped:(Recorder.dropped r) (Recorder.events r)

let pp ?(track_name = fun k -> Printf.sprintf "track-%d" k) fmt t =
  let open Format in
  fprintf fmt "telemetry summary: %d events%s, makespan %.0f cycles@."
    t.event_count
    (if t.dropped > 0 then Printf.sprintf " (%d dropped)" t.dropped else "")
    t.makespan;
  Metrics.pp fmt t.metrics;
  fprintf fmt "per-worker occupancy (chunk-busy / makespan):@.";
  List.iter
    (fun (k, f) ->
      fprintf fmt "  %-24s %5.1f%%@." (track_name k) (100.0 *. f))
    t.occupancy
