(* Chrome trace_event JSON export, loadable in chrome://tracing and
   Perfetto. One process; one named thread track per worker; B/E duration
   slices for chunk execution; legacy flow events (s/f) draw the arrows
   between a message's send and its receive; machine transitions, faults
   and scheduler block/resume points are instants.

   Timestamps: the trace_event format nominally uses microseconds; we emit
   virtual cycles verbatim — only relative positions matter for reading a
   schedule, and cycles keep the numbers exact. *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let emit_to_buffer ~(track_name : int -> string) (evs : Event.t array)
    (b : Buffer.t) =
  let first = ref true in
  let obj fields =
    if !first then first := false else Buffer.add_string b ",\n";
    Buffer.add_string b "  {";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "\"%s\":%s" k v))
      fields;
    Buffer.add_char b '}'
  in
  let str s = Printf.sprintf "\"%s\"" (escape s) in
  let ts at = Printf.sprintf "%.3f" at in
  Buffer.add_string b "{\n\"traceEvents\": [\n";
  obj [ ("name", str "process_name"); ("ph", str "M"); ("pid", "1");
        ("tid", "0");
        ("args", Printf.sprintf "{\"name\":%s}" (str "privagic")) ];
  (* named thread per track, in track order *)
  let tracks = Hashtbl.create 8 in
  Array.iter
    (fun (e : Event.t) ->
      if not (Hashtbl.mem tracks e.Event.track) then
        Hashtbl.replace tracks e.Event.track ())
    evs;
  List.iter
    (fun k ->
      obj
        [ ("name", str "thread_name"); ("ph", str "M"); ("pid", "1");
          ("tid", string_of_int k);
          ("args", Printf.sprintf "{\"name\":%s}" (str (track_name k))) ])
    (List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) tracks []));
  (* flow names must match between the s and f ends *)
  let flow_name = Hashtbl.create 64 in
  Array.iter
    (fun (e : Event.t) ->
      match e.Event.kind with
      | Event.Msg_send -> Hashtbl.replace flow_name e.Event.arg e.Event.name
      | _ -> ())
    evs;
  let instant ?(cat = "sched") (e : Event.t) name =
    obj
      [ ("name", str name); ("ph", str "i"); ("s", str "t"); ("pid", "1");
        ("tid", string_of_int e.Event.track); ("ts", ts e.Event.at);
        ("cat", str cat) ]
  in
  Array.iter
    (fun (e : Event.t) ->
      let tid = string_of_int e.Event.track in
      match e.Event.kind with
      | Event.Chunk_begin ->
        obj
          [ ("name", str e.Event.name); ("ph", str "B"); ("pid", "1");
            ("tid", tid); ("ts", ts e.Event.at); ("cat", str "chunk") ]
      | Event.Chunk_end ->
        obj
          [ ("name", str e.Event.name); ("ph", str "E"); ("pid", "1");
            ("tid", tid); ("ts", ts e.Event.at); ("cat", str "chunk") ]
      | Event.Req_begin ->
        obj
          [ ("name", str ("req:" ^ e.Event.name)); ("ph", str "B");
            ("pid", "1"); ("tid", tid); ("ts", ts e.Event.at);
            ("cat", str "request") ]
      | Event.Req_end ->
        obj
          [ ("name", str ("req:" ^ e.Event.name)); ("ph", str "E");
            ("pid", "1"); ("tid", tid); ("ts", ts e.Event.at);
            ("cat", str "request") ]
      | Event.Msg_send ->
        obj
          [ ("name", str ("msg:" ^ e.Event.name)); ("ph", str "s");
            ("id", string_of_int e.Event.arg); ("pid", "1"); ("tid", tid);
            ("ts", ts e.Event.at); ("cat", str "msg") ]
      | Event.Msg_recv ->
        let name =
          match Hashtbl.find_opt flow_name e.Event.arg with
          | Some n -> "msg:" ^ n
          | None -> "msg"
        in
        obj
          [ ("name", str name); ("ph", str "f"); ("bp", str "e");
            ("id", string_of_int e.Event.arg); ("pid", "1"); ("tid", tid);
            ("ts", ts e.Event.at); ("cat", str "msg") ]
      | Event.Fiber_block -> instant e "block"
      | Event.Fiber_resume -> instant e "resume"
      | Event.Fiber_start -> instant e "fiber-start"
      | Event.Fiber_finish -> instant e "fiber-finish"
      | Event.Fiber_spawn -> ()
      | Event.Barrier -> instant ~cat:"sync" e "barrier"
      | Event.Epc_fault -> instant ~cat:"machine" e "epc-fault"
      | Event.Ecall -> instant ~cat:"machine" e "ecall"
      | Event.Ocall -> instant ~cat:"machine" e "ocall"
      | Event.Switchless -> instant ~cat:"machine" e "switchless"
      | Event.Queue_msg -> instant ~cat:"machine" e "queue-msg"
      | Event.Syscall -> instant ~cat:"machine" e "syscall"
      | Event.Thread_spawn -> instant ~cat:"machine" e "thread-spawn")
    evs;
  Buffer.add_string b "\n],\n\"displayTimeUnit\": \"ns\"\n}\n"

let to_string ~track_name (evs : Event.t array) =
  let b = Buffer.create 65536 in
  emit_to_buffer ~track_name evs b;
  Buffer.contents b

let to_file ~track_name (evs : Event.t array) path =
  let oc = open_out path in
  output_string oc (to_string ~track_name evs);
  close_out oc

let of_recorder (r : Recorder.t) =
  to_string ~track_name:(Recorder.track_name r) (Recorder.events r)

let recorder_to_file (r : Recorder.t) path =
  to_file ~track_name:(Recorder.track_name r) (Recorder.events r) path
