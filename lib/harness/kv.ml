(* Generic key-value benchmark runner: loads a dataset into one of the
   evaluation programs under a system configuration, replays a YCSB
   workload, and reports throughput / latency / cache statistics. *)

open Privagic_vm
module Sgx = Privagic_sgx
module Ycsb = Privagic_workloads.Ycsb
module Programs = Privagic_workloads.Programs
module System = Privagic_baselines.System

type family = Hashmap | Linked_list | Rbtree | Hashmap2 | Memcached

let family_name = function
  | Hashmap -> "hashmap"
  | Linked_list -> "linked-list"
  | Rbtree -> "treemap"
  | Hashmap2 -> "hashmap-2color"
  | Memcached -> "memcached"

let entries = function
  | Hashmap -> ("hm_put", "hm_get")
  | Linked_list -> ("ll_put", "ll_get")
  | Rbtree -> ("tm_put", "tm_get")
  | Hashmap2 -> ("h2_put", "h2_get")
  | Memcached -> ("mc_set", "mc_get")

let source family (variant : Programs.variant) ~nbuckets ~vsize =
  match family with
  | Hashmap -> Programs.hashmap ~nbuckets ~vsize variant
  | Linked_list -> Programs.linked_list ~vsize variant
  | Rbtree -> Programs.rbtree ~vsize variant
  | Hashmap2 -> Programs.hashmap_two_color ~nbuckets ~vsize variant
  | Memcached -> Programs.memcached ~nbuckets ~vsize variant

(* The secure-typing mode a family runs under: two colors in one structure
   require relaxed mode (§8). *)
let mode_for = function
  | Hashmap2 -> Privagic_secure.Mode.Relaxed
  | _ -> Privagic_secure.Mode.Hardened

type result = {
  family : family;
  system : string;
  record_count : int;
  dataset_bytes : int;
  operations : int;
  throughput_kops : float;       (* thousand operations per second *)
  mean_latency_us : float;
  p_found : float;               (* sanity: fraction of successful reads *)
  llc_miss_ratio : float;
  queue_msgs : int;
  ecalls_switchless : int;
}

(* --- real-parallel backend (OCaml 5 domains, wall-clock time) --- *)

module Parallel = Privagic_parallel.Parallel

type parallel_result = {
  pr_family : family;
  pr_record_count : int;
  pr_operations : int;
  pr_drivers : int;            (* issuing threads (1 = closed loop) *)
  pr_domains : int;            (* domains the worker pool actually spawned *)
  pr_wall_seconds : float;     (* run phase only, wall clock *)
  pr_throughput_kops : float;
  pr_p_found : float;
  pr_steps : int;              (* VM steps retired during the run phase *)
  pr_steps_per_sec : float;
  pr_stalls : Privagic_obs.Lane.breakdown list;
      (* per-lane phase decomposition at run end (empty with obs off) *)
}

let colored_plan ?(auth_pointers = false) ~mode src =
  let m = Privagic_minic.Driver.compile ~file:"program.mc" src in
  let infer = Privagic_secure.Infer.run ~mode ~auth_pointers m in
  if not (Privagic_secure.Infer.ok infer) then
    invalid_arg "run_parallel: program rejected by the checker";
  let plan = Privagic_partition.Plan.build ~mode ~auth_pointers infer in
  if plan.Privagic_partition.Plan.diagnostics <> [] then
    invalid_arg "run_parallel: partitioning rejected";
  plan

let run_parallel ?(nbuckets = 4096) ?(vsize = 1024) ?(seed = 42)
    ?(distribution = Ycsb.Zipfian) ?(lanes = 2) ?(drivers = 1) ?telemetry
    ?engine (family : family) ~(record_count : int) ~(operations : int) () :
    parallel_result =
  let src = source family `Colored ~nbuckets ~vsize in
  let plan = colored_plan ~mode:(mode_for family) src in
  let p = Parallel.create ~lanes ?engine plan in
  (match telemetry with
  | Some r -> Parallel.set_telemetry p r
  | None -> ());
  let heap = (Parallel.exec p).Exec.heap in
  let put_entry, get_entry = entries family in
  let vbuf = Heap.alloc heap Heap.Unsafe vsize in
  String.iteri
    (fun i c -> Heap.store heap (vbuf + i) 1 (Int64.of_int (Char.code c)))
    (Ycsb.value_for ~size:vsize 1);
  (if family = Memcached then
     ignore
       (Parallel.call_entry p "mc_init"
          [ Rvalue.Int (Int64.of_int (record_count * 2)) ]));
  for k = 0 to record_count - 1 do
    ignore
      (Parallel.call_entry p put_entry
         [ Rvalue.Int (Int64.of_int k); Rvalue.Ptr vbuf ])
  done;
  (* Measured phase. [drivers = 1] is the closed loop of old: one
     blocking caller, so with more than one lane the pool mostly parks
     waiting for the driver (E14) and the stall table measures the
     driver. [drivers > 1] is the multi-inflight mode: that many
     issuing threads keep the lanes fed concurrently, so stalls
     attribute to the engine. Each driver owns its generator (offset
     seeds), its output buffer and its share of the ops; keys are
     shared on purpose — that is the contended case. *)
  let drivers = max 1 drivers in
  let mk_gen i =
    let spec =
      { (Ycsb.workload_b ~seed:(seed + (i * 1000003)) ~record_count
           ~operation_count:operations ~value_size:vsize ())
        with Ycsb.distribution }
    in
    Ycsb.create spec
  in
  let obufs = Array.init drivers (fun _ -> Heap.alloc heap Heap.Unsafe vsize) in
  let founds = Array.make drivers 0 and readss = Array.make drivers 0 in
  let share i =
    (operations / drivers) + if i < operations mod drivers then 1 else 0
  in
  let drive i () =
    let gen = mk_gen i in
    let obuf = obufs.(i) in
    for _ = 1 to share i do
      match Ycsb.next_op gen with
      | Ycsb.Read k | Ycsb.Scan (k, _) ->
        readss.(i) <- readss.(i) + 1;
        let r =
          Parallel.call_entry p ~thread:i get_entry
            [ Rvalue.Int (Int64.of_int k); Rvalue.Ptr obuf ]
        in
        if Rvalue.truthy r.Parallel.value then founds.(i) <- founds.(i) + 1
      | Ycsb.Rmw k ->
        readss.(i) <- readss.(i) + 1;
        let r =
          Parallel.call_entry p ~thread:i get_entry
            [ Rvalue.Int (Int64.of_int k); Rvalue.Ptr obuf ]
        in
        if Rvalue.truthy r.Parallel.value then founds.(i) <- founds.(i) + 1;
        ignore
          (Parallel.call_entry p ~thread:i put_entry
             [ Rvalue.Int (Int64.of_int k); Rvalue.Ptr vbuf ])
      | Ycsb.Update k | Ycsb.Insert k ->
        ignore
          (Parallel.call_entry p ~thread:i put_entry
             [ Rvalue.Int (Int64.of_int k); Rvalue.Ptr vbuf ])
    done
  in
  let steps0 = Parallel.total_steps p in
  let start = Unix.gettimeofday () in
  (if drivers = 1 then drive 0 ()
   else
     let ths = List.init drivers (fun i -> Thread.create (drive i) ()) in
     List.iter Thread.join ths);
  let found = Array.fold_left ( + ) 0 founds
  and reads = Array.fold_left ( + ) 0 readss in
  let found = ref found and reads = ref reads in
  let wall = Unix.gettimeofday () -. start in
  let steps = Parallel.total_steps p - steps0 in
  let stalls = Parallel.lane_breakdowns p in
  let domains = Parallel.domain_count p in
  ignore (Parallel.shutdown p);
  {
    pr_family = family;
    pr_record_count = record_count;
    pr_operations = operations;
    pr_drivers = drivers;
    pr_domains = domains;
    pr_wall_seconds = wall;
    pr_throughput_kops =
      (if wall > 0.0 then float_of_int operations /. wall /. 1000.0 else 0.0);
    pr_p_found =
      (if !reads > 0 then float_of_int !found /. float_of_int !reads else 1.0);
    pr_steps = steps;
    pr_steps_per_sec =
      (if wall > 0.0 then float_of_int steps /. wall else 0.0);
    pr_stalls = stalls;
  }

let run ?(config = Sgx.Config.machine_b) ?cost ?(nbuckets = 4096)
    ?(vsize = 1024) ?(seed = 42) ?(distribution = Ycsb.Zipfian)
    ?(auth_pointers = false) ?telemetry ?engine (family : family)
    (kind : System.kind) ~(record_count : int) ~(operations : int) () :
    result =
  let src = source family (System.variant kind) ~nbuckets ~vsize in
  let sys =
    System.create ~config ?cost ~auth_pointers ?telemetry ?engine kind src
  in
  let put_entry, get_entry = entries family in
  let vbuf = System.alloc_buffer sys vsize in
  let obuf = System.alloc_buffer sys vsize in
  (* one deterministic payload per run: what matters to the cost model is
     the byte traffic, not the content *)
  System.write_bytes sys vbuf (Ycsb.value_for ~size:vsize 1);
  (if family = Memcached then
     (* capacity above the dataset: fig. 8 measures the cache effects, not
        evictions *)
     ignore (sys.System.call "mc_init" [ Rvalue.Int (Int64.of_int (record_count * 2)) ]));
  (* load phase *)
  for k = 0 to record_count - 1 do
    ignore (sys.System.call put_entry [ Rvalue.Int (Int64.of_int k); Rvalue.Ptr vbuf ])
  done;
  Sgx.Machine.reset_stats sys.System.machine;
  (* the load phase is warm-up: telemetry covers the measured phase only *)
  (match telemetry with
  | Some r -> Privagic_telemetry.Recorder.clear r
  | None -> ());
  (* run phase *)
  let spec =
    { (Ycsb.workload_b ~seed ~record_count ~operation_count:operations
         ~value_size:vsize ())
      with Ycsb.distribution }
  in
  let gen = Ycsb.create spec in
  let total_latency = ref 0.0 in
  let found = ref 0 and reads = ref 0 in
  for _ = 1 to operations do
    match Ycsb.next_op gen with
    | Ycsb.Read k | Ycsb.Scan (k, _) ->
      incr reads;
      let v, lat = sys.System.call get_entry
          [ Rvalue.Int (Int64.of_int k); Rvalue.Ptr obuf ]
      in
      if Rvalue.truthy v then incr found;
      total_latency := !total_latency +. lat
    | Ycsb.Rmw k ->
      incr reads;
      let v, lat = sys.System.call get_entry
          [ Rvalue.Int (Int64.of_int k); Rvalue.Ptr obuf ]
      in
      if Rvalue.truthy v then incr found;
      let _, lat2 = sys.System.call put_entry
          [ Rvalue.Int (Int64.of_int k); Rvalue.Ptr vbuf ]
      in
      total_latency := !total_latency +. lat +. lat2
    | Ycsb.Update k | Ycsb.Insert k ->
      let _, lat = sys.System.call put_entry
          [ Rvalue.Int (Int64.of_int k); Rvalue.Ptr vbuf ]
      in
      total_latency := !total_latency +. lat
  done;
  let machine = sys.System.machine in
  let seconds = Sgx.Machine.seconds machine !total_latency in
  let counters = Sgx.Machine.counters machine in
  {
    family;
    system = sys.System.name;
    record_count;
    dataset_bytes = record_count * vsize;
    operations;
    throughput_kops =
      (if seconds > 0.0 then float_of_int operations /. seconds /. 1000.0
       else 0.0);
    mean_latency_us =
      (if operations > 0 then
         Sgx.Machine.seconds machine (!total_latency /. float_of_int operations)
         *. 1e6
       else 0.0);
    p_found =
      (if !reads > 0 then float_of_int !found /. float_of_int !reads else 1.0);
    llc_miss_ratio = Sgx.Machine.llc_miss_ratio machine;
    queue_msgs = counters.Sgx.Machine.queue_msgs;
    ecalls_switchless = counters.Sgx.Machine.switchless_calls;
  }
