(** Observability benchmark ([privagic profile --stalls], [bench obs]):
    per-lane stall attribution of the Kv YCSB-B workloads on the
    real-parallel backend, plus the hot-path overhead of the lib/obs
    instrumentation itself (sim hashmap image replay, event ring attached
    vs detached). Writes BENCH_obs.json. *)

type workload_report = {
  ob_family : string;
  ob_lanes : int;              (** lanes requested from the pool *)
  ob_domains : int;            (** domains actually spawned *)
  ob_records : int;
  ob_operations : int;
  ob_wall_seconds : float;
  ob_throughput_kops : float;
  ob_steps : int;
  ob_steps_per_sec : float;
  ob_stalls : Privagic_obs.Lane.breakdown list;
}

type overhead = {
  oh_steps_per_sec_on : float;
  oh_steps_per_sec_off : float;
  oh_frac : float;  (** [(off - on) / off]; noise can go negative *)
}

(** Phase with the largest non-run time summed across the lanes. *)
val dominant_stall : workload_report -> Privagic_obs.Phase.t

(** Smallest per-lane coverage (accounted / wall time) of the report;
    1.0 when there are no lanes. *)
val min_coverage : workload_report -> float

(** One report per (lanes, family): {memcached, hashmap, hashmap-2color}
    at 2 lanes ([quick]) or 2 and 4 lanes. Forces obs on. *)
val stall_workloads :
  ?quick:bool -> ?lanes_list:int list -> unit -> workload_report list

(** Sim hashmap image replay with the ring attached vs detached:
    interleaved pass pairs, median of the per-pair overhead ratios (drift
    cancels within a pair, the median discards noisy pairs). *)
val measure_overhead : ?quick:bool -> unit -> overhead

val print_stall_table : workload_report list -> unit
val write_json : path:string -> workload_report list -> overhead -> unit

(** [stall_workloads] + [measure_overhead] + printed table +
    {!write_json} (default BENCH_obs.json). *)
val run :
  ?quick:bool -> ?path:string -> unit -> workload_report list * overhead
