(* Observability benchmark ([privagic profile --stalls], [bench obs]):
   two measurements over the always-on runtime observability of lib/obs.

   1. Stall attribution: replay the Kv YCSB-B protocol per workload family
      on the real-parallel backend and decompose each lane's wall time
      into the five phases of {!Privagic_obs.Phase} (run / pump-wait /
      queue-wait / barrier / park). The phases partition the lane's life
      continuously, so coverage — accounted time over wall time — is ~1.0
      by construction; the gate asserts >= 0.95.

   2. Overhead: the sim hashmap image-engine replay with the event ring
      attached vs detached, median over interleaved pass pairs. This is
      the hot-path cost of the instrumentation itself; the CI gate
      asserts <= 5% steps/s. *)

module Obs = Privagic_obs
module Ycsb = Privagic_workloads.Ycsb
open Privagic_vm

type workload_report = {
  ob_family : string;
  ob_lanes : int;              (* lanes requested from the pool *)
  ob_domains : int;            (* domains actually spawned *)
  ob_records : int;
  ob_operations : int;
  ob_wall_seconds : float;
  ob_throughput_kops : float;
  ob_steps : int;
  ob_steps_per_sec : float;
  ob_stalls : Obs.Lane.breakdown list;
}

type overhead = {
  oh_steps_per_sec_on : float;
  oh_steps_per_sec_off : float;
  oh_frac : float;             (* (off - on) / off; noise can go negative *)
}

let families =
  [ (Kv.Memcached, "memcached"); (Kv.Hashmap, "hashmap");
    (Kv.Hashmap2, "hashmap-2color") ]

(* Dominant stall of a whole workload: the non-run phase with the largest
   time summed across lanes. *)
let dominant_stall r =
  let sums = Array.make Obs.Phase.count 0 in
  List.iter
    (fun (b : Obs.Lane.breakdown) ->
      Array.iteri
        (fun i v -> sums.(i) <- sums.(i) + v)
        b.Obs.Lane.b_phase_us)
    r.ob_stalls;
  let best = ref Obs.Phase.Pump_wait in
  List.iter
    (fun p ->
      if
        p <> Obs.Phase.Run
        && sums.(Obs.Phase.index p) > sums.(Obs.Phase.index !best)
      then best := p)
    Obs.Phase.all;
  !best

let min_coverage r =
  List.fold_left
    (fun acc b -> Float.min acc (Obs.Lane.coverage b))
    1.0 r.ob_stalls

let stall_workloads ?(quick = false) ?lanes_list () =
  Obs.set_enabled true;
  let lanes_list =
    match lanes_list with
    | Some l -> l
    | None -> if quick then [ 2 ] else [ 2; 4 ]
  in
  let records = if quick then 128 else 512 in
  let operations = if quick then 200 else 1000 in
  List.concat_map
    (fun lanes ->
      List.map
        (fun (family, label) ->
          let r =
            Kv.run_parallel ~nbuckets:256 ~vsize:256 ~lanes family
              ~record_count:records ~operations ()
          in
          {
            ob_family = label;
            ob_lanes = lanes;
            ob_domains = r.Kv.pr_domains;
            ob_records = r.Kv.pr_record_count;
            ob_operations = r.Kv.pr_operations;
            ob_wall_seconds = r.Kv.pr_wall_seconds;
            ob_throughput_kops = r.Kv.pr_throughput_kops;
            ob_steps = r.Kv.pr_steps;
            ob_steps_per_sec = r.Kv.pr_steps_per_sec;
            ob_stalls = r.Kv.pr_stalls;
          })
        families)
    lanes_list

(* One measurement cell: a sim hashmap image-engine interpreter with the
   event ring attached ([obs]) or left detached, wrapped as a thunk that
   runs one load+replay pass and returns its steps/s. *)
let sim_cell ~obs ~records ~operations =
  let nbuckets = 8 and vsize = 64 in
  let src = Kv.source Kv.Hashmap `Colored ~nbuckets ~vsize in
  let m = Privagic_minic.Driver.compile ~file:"program.mc" src in
  let mode = Kv.mode_for Kv.Hashmap in
  let infer = Privagic_secure.Infer.run ~mode m in
  if not (Privagic_secure.Infer.ok infer) then
    invalid_arg "obsbench: program rejected by the checker";
  let plan = Privagic_partition.Plan.build ~mode infer in
  let pt = Pinterp.create ~engine:Exec.Image plan in
  let exec = pt.Pinterp.exec in
  exec.Exec.obs_ring <-
    (if obs then Some (Obs.Ring.create ~id:0 ~label:"sim" ()) else None);
  let put_entry, get_entry = Kv.entries Kv.Hashmap in
  let heap = exec.Exec.heap in
  let vbuf = Heap.alloc heap Heap.Unsafe vsize in
  let obuf = Heap.alloc heap Heap.Unsafe vsize in
  String.iteri
    (fun i c -> Heap.store heap (vbuf + i) 1 (Int64.of_int (Char.code c)))
    (Ycsb.value_for ~size:vsize 1);
  let spec =
    Ycsb.workload_b ~seed:42 ~record_count:records ~operation_count:operations
      ~value_size:vsize ()
  in
  fun () ->
    let steps0 = exec.Exec.steps in
    let t0 = Unix.gettimeofday () in
    for k = 0 to records - 1 do
      ignore
        (Pinterp.call_entry pt put_entry
           [ Rvalue.Int (Int64.of_int k); Rvalue.Ptr vbuf ])
    done;
    let gen = Ycsb.create spec in
    for _ = 1 to operations do
      match Ycsb.next_op gen with
      | Ycsb.Read k | Ycsb.Scan (k, _) | Ycsb.Rmw k ->
        ignore
          (Pinterp.call_entry pt get_entry
             [ Rvalue.Int (Int64.of_int k); Rvalue.Ptr obuf ])
      | Ycsb.Update k | Ycsb.Insert k ->
        ignore
          (Pinterp.call_entry pt put_entry
             [ Rvalue.Int (Int64.of_int k); Rvalue.Ptr vbuf ])
    done;
    let wall = Unix.gettimeofday () -. t0 in
    let d = exec.Exec.steps - steps0 in
    if wall > 0.0 then float_of_int d /. wall else 0.0

(* Paired comparison: run obs-off and obs-on passes back to back and
   take the MEDIAN of the per-pair overhead ratios. Adjacent passes see
   the same machine conditions, so drift cancels within a pair, and the
   median discards pairs a noisy neighbour lands in — the two properties
   a CI gate needs that fastest-of-separate-blocks lacks. *)
let measure_overhead ?(quick = false) () =
  (* passes must be long enough (hundreds of ms) that OS scheduling
     jitter averages out within a pass: the signal is well under 1% *)
  let records = if quick then 128 else 256 in
  let operations = if quick then 2000 else 4000 in
  let pairs = if quick then 5 else 7 in
  let pass_off = sim_cell ~obs:false ~records ~operations in
  let pass_on = sim_cell ~obs:true ~records ~operations in
  (* pass 1 on either cell inserts fresh records (extra allocation steps)
     and warms the code paths: warm both, then measure *)
  ignore (pass_off ());
  ignore (pass_on ());
  let offs = Array.make pairs 0.0 and ons = Array.make pairs 0.0 in
  for i = 0 to pairs - 1 do
    offs.(i) <- pass_off ();
    ons.(i) <- pass_on ()
  done;
  let median a =
    let s = Array.copy a in
    Array.sort compare s;
    s.(Array.length s / 2)
  in
  (* ratio of the median rates, not median of per-pair ratios: each side's
     median is taken over the same interleaved time span, so macro drift
     hits both, while a single noisy pass can no longer become the ratio
     the gate sees *)
  let m_on = median ons and m_off = median offs in
  {
    oh_steps_per_sec_on = m_on;
    oh_steps_per_sec_off = m_off;
    oh_frac = (if m_off > 0.0 then (m_off -. m_on) /. m_off else 0.0);
  }

let print_stall_table reports =
  List.iter
    (fun r ->
      Format.printf
        "  %-16s %d lanes  %8.1f kops/s  %10.0f steps/s  dominant stall: %s@."
        r.ob_family r.ob_lanes r.ob_throughput_kops r.ob_steps_per_sec
        (Obs.Phase.name (dominant_stall r));
      List.iter
        (fun (b : Obs.Lane.breakdown) ->
          let wall = float_of_int (max 1 b.Obs.Lane.b_wall_us) in
          Format.printf "    %-12s %8d us wall " b.Obs.Lane.b_label
            b.Obs.Lane.b_wall_us;
          List.iter
            (fun p ->
              Format.printf " %s %.1f%%" (Obs.Phase.name p)
                (100.0
                *. float_of_int
                     b.Obs.Lane.b_phase_us.(Obs.Phase.index p)
                /. wall))
            Obs.Phase.all;
          Format.printf "  (coverage %.3f)@." (Obs.Lane.coverage b))
        r.ob_stalls)
    reports

let write_json ~path reports overhead =
  let b = Buffer.create 4096 in
  let bp fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let overall_cov =
    List.fold_left (fun acc r -> Float.min acc (min_coverage r)) 1.0 reports
  in
  bp "{\n";
  bp "  \"benchmark\": \"obs-stall-attribution\",\n";
  bp "  \"backend\": \"domains\",\n";
  bp "  \"min_coverage\": %.4f,\n" overall_cov;
  bp "  \"overhead\": {\n";
  bp "    \"bench\": \"sim-hashmap-image\",\n";
  bp "    \"steps_per_sec_obs_on\": %.1f,\n" overhead.oh_steps_per_sec_on;
  bp "    \"steps_per_sec_obs_off\": %.1f,\n" overhead.oh_steps_per_sec_off;
  bp "    \"overhead_frac\": %.4f\n" overhead.oh_frac;
  bp "  },\n";
  bp "  \"workloads\": [";
  List.iteri
    (fun i r ->
      bp "%s\n    {\n" (if i = 0 then "" else ",");
      bp "      \"family\": %S,\n" r.ob_family;
      bp "      \"lanes\": %d,\n" r.ob_lanes;
      bp "      \"domains\": %d,\n" r.ob_domains;
      bp "      \"records\": %d,\n" r.ob_records;
      bp "      \"operations\": %d,\n" r.ob_operations;
      bp "      \"wall_seconds\": %.6f,\n" r.ob_wall_seconds;
      bp "      \"throughput_kops\": %.3f,\n" r.ob_throughput_kops;
      bp "      \"steps\": %d,\n" r.ob_steps;
      bp "      \"steps_per_sec\": %.1f,\n" r.ob_steps_per_sec;
      bp "      \"dominant_stall\": %S,\n"
        (Obs.Phase.name (dominant_stall r));
      bp "      \"min_coverage\": %.4f,\n" (min_coverage r);
      bp "      \"lanes_detail\": [";
      List.iteri
        (fun j (bd : Obs.Lane.breakdown) ->
          bp "%s\n        { \"lane\": %S, \"wall_us\": %d, \
              \"dominant_stall\": %S, \"coverage\": %.4f"
            (if j = 0 then "" else ",")
            bd.Obs.Lane.b_label bd.Obs.Lane.b_wall_us
            (Obs.Phase.name (Obs.Lane.dominant_stall bd))
            (Obs.Lane.coverage bd);
          List.iter
            (fun p ->
              bp ", \"%s_us\": %d" (Obs.Phase.name p)
                bd.Obs.Lane.b_phase_us.(Obs.Phase.index p))
            Obs.Phase.all;
          bp " }")
        r.ob_stalls;
      bp "\n      ]\n";
      bp "    }")
    reports;
  bp "\n  ]\n";
  bp "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc

let run ?(quick = false) ?(path = "BENCH_obs.json") () =
  Format.printf "== obs: per-lane stall attribution, parallel backend ==@.";
  let reports = stall_workloads ~quick () in
  print_stall_table reports;
  Format.printf "== obs: instrumentation overhead, sim hashmap image ==@.";
  let overhead = measure_overhead ~quick () in
  Format.printf
    "  steps/s obs-on %.0f, obs-off %.0f  -> overhead %.2f%%@."
    overhead.oh_steps_per_sec_on overhead.oh_steps_per_sec_off
    (100.0 *. overhead.oh_frac);
  write_json ~path reports overhead;
  Format.printf "  -> %s@.@." path;
  (reports, overhead)
