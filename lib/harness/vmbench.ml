(* Walk-vs-image VM benchmark: the same YCSB-B-style put/get protocol the
   Kv harness replays, executed once per (family, backend, engine) cell.
   The metric is raw interpreter speed — executed PIR instructions per
   wall-clock second — which is exactly what the image engine is supposed
   to improve; virtual-time results are engine-invariant (checked by the
   differential tests), so only host-side speed distinguishes the two. *)

module Sgx = Privagic_sgx
module Ycsb = Privagic_workloads.Ycsb
open Privagic_vm

type result = {
  vb_family : string;
  vb_backend : string;        (* "sim" | "parallel" *)
  vb_engine : string;         (* "walk" | "image" *)
  vb_records : int;
  vb_operations : int;
  vb_steps : int;             (* executed instructions, all executors *)
  vb_wall_seconds : float;    (* load + run phases *)
  vb_steps_per_sec : float;
  vb_ops_per_sec : float;
}

let families = [ Kv.Hashmap; Kv.Rbtree; Kv.Memcached ]

let plan_for family ~nbuckets ~vsize =
  let src = Kv.source family `Colored ~nbuckets ~vsize in
  let m = Privagic_minic.Driver.compile ~file:"program.mc" src in
  let mode = Kv.mode_for family in
  let infer = Privagic_secure.Infer.run ~mode m in
  if not (Privagic_secure.Infer.ok infer) then
    invalid_arg "vmbench: program rejected by the checker";
  let plan = Privagic_partition.Plan.build ~mode infer in
  if plan.Privagic_partition.Plan.diagnostics <> [] then
    invalid_arg "vmbench: partitioning rejected";
  plan

(* Replay the workload through [call]; the caller provides the measured
   executor-step counter. The pass runs [reps] times against the same
   store (puts overwrite in place, so every pass executes the same
   instruction sequence) and the fastest pass wins — single passes are
   tens of milliseconds, short enough that one GC major slice or a noisy
   neighbour skews the rate. Returns (steps, wall seconds). *)
let replay ~reps ~call ~steps ~heap family ~records ~operations ~vsize =
  let put_entry, get_entry = Kv.entries family in
  let vbuf = Heap.alloc heap Heap.Unsafe vsize in
  let obuf = Heap.alloc heap Heap.Unsafe vsize in
  String.iteri
    (fun i c -> Heap.store heap (vbuf + i) 1 (Int64.of_int (Char.code c)))
    (Ycsb.value_for ~size:vsize 1);
  (if family = Kv.Memcached then
     ignore (call "mc_init" [ Rvalue.Int (Int64.of_int (records * 2)) ]));
  let spec =
    Ycsb.workload_b ~seed:42 ~record_count:records ~operation_count:operations
      ~value_size:vsize ()
  in
  let best = ref None in
  (* pass 1 inserts fresh records (extra allocation steps); later passes
     overwrite in place. With reps > 1 it serves as warm-up only, so every
     measured pass executes the same step count on either engine. *)
  for rep = 1 to reps do
    let warmup = reps > 1 && rep = 1 in
    let steps0 = steps () in
    let t0 = Unix.gettimeofday () in
    for k = 0 to records - 1 do
      ignore (call put_entry [ Rvalue.Int (Int64.of_int k); Rvalue.Ptr vbuf ])
    done;
    let gen = Ycsb.create spec in
    for _ = 1 to operations do
      match Ycsb.next_op gen with
      | Ycsb.Read k | Ycsb.Scan (k, _) | Ycsb.Rmw k ->
        ignore (call get_entry [ Rvalue.Int (Int64.of_int k); Rvalue.Ptr obuf ])
      | Ycsb.Update k | Ycsb.Insert k ->
        ignore (call put_entry [ Rvalue.Int (Int64.of_int k); Rvalue.Ptr vbuf ])
    done;
    let wall = Unix.gettimeofday () -. t0 in
    let d = steps () - steps0 in
    if not warmup then
      match !best with
      | Some (_, w) when w <= wall -> ()
      | _ -> best := Some (d, wall)
  done;
  Option.get !best

let mk family backend engine ~records ~operations (steps, wall) =
  {
    vb_family = Kv.family_name family;
    vb_backend = backend;
    vb_engine = Exec.engine_name engine;
    vb_records = records;
    vb_operations = operations;
    vb_steps = steps;
    vb_wall_seconds = wall;
    vb_steps_per_sec =
      (if wall > 0.0 then float_of_int steps /. wall else 0.0);
    vb_ops_per_sec =
      (if wall > 0.0 then float_of_int operations /. wall else 0.0);
  }

let run_sim engine family ~reps ~nbuckets ~vsize ~records ~operations =
  let plan = plan_for family ~nbuckets ~vsize in
  let pt = Pinterp.create ~engine plan in
  let exec = pt.Pinterp.exec in
  let m =
    replay ~reps
      ~call:(fun entry args -> (Pinterp.call_entry pt entry args).Pinterp.value)
      ~steps:(fun () -> exec.Exec.steps)
      ~heap:exec.Exec.heap family ~records ~operations ~vsize
  in
  mk family "sim" engine ~records ~operations m

let run_par engine family ~reps ~nbuckets ~vsize ~records ~operations =
  let module Par = Privagic_parallel.Parallel in
  let plan = plan_for family ~nbuckets ~vsize in
  let p = Par.create ~lanes:2 ~engine plan in
  let m =
    replay ~reps
      ~call:(fun entry args -> (Par.call_entry p entry args).Par.value)
      ~steps:(fun () -> Par.total_steps p)
      ~heap:(Par.exec p).Exec.heap family ~records ~operations ~vsize
  in
  ignore (Par.shutdown p);
  mk family "parallel" engine ~records ~operations m

let run_all ?(quick = false) () : result list =
  let records = if quick then 128 else 256 in
  let operations = if quick then 300 else 4000 in
  let reps = if quick then 1 else 4 (* 1 warm-up + 3 measured *) in
  (* small bucket count on purpose: chains of ~32 nodes make the replay
     interpreter-bound (pointer-chasing loops) rather than dominated by
     the per-request scheduler hand-off, which both engines share *)
  let nbuckets = 8 and vsize = 64 in
  List.concat_map
    (fun family ->
      List.concat_map
        (fun engine ->
          [ run_sim engine family ~reps ~nbuckets ~vsize ~records ~operations;
            run_par engine family ~reps ~nbuckets ~vsize ~records ~operations
          ])
        [ Exec.Walk; Exec.Image ])
    families

(* image-vs-walk steps/sec ratio for one (family, backend) cell *)
let speedup results ~family ~backend =
  let rate engine =
    List.find_opt
      (fun r ->
        r.vb_family = family && r.vb_backend = backend
        && r.vb_engine = Exec.engine_name engine)
      results
    |> Option.map (fun r -> r.vb_steps_per_sec)
  in
  match (rate Exec.Walk, rate Exec.Image) with
  | Some w, Some i when w > 0.0 -> Some (i /. w)
  | _ -> None

let write_json ~path results =
  let b = Buffer.create 2048 in
  let bp fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  bp "{\n";
  bp "  \"benchmark\": \"vm-engine-walk-vs-image\",\n";
  (match speedup results ~family:"hashmap" ~backend:"sim" with
  | Some s -> bp "  \"speedup_sim_hashmap\": %.3f,\n" s
  | None -> ());
  bp "  \"cells\": [";
  List.iteri
    (fun i r ->
      bp "%s\n    {\n" (if i = 0 then "" else ",");
      bp "      \"family\": %S,\n" r.vb_family;
      bp "      \"backend\": %S,\n" r.vb_backend;
      bp "      \"engine\": %S,\n" r.vb_engine;
      bp "      \"records\": %d,\n" r.vb_records;
      bp "      \"operations\": %d,\n" r.vb_operations;
      bp "      \"steps\": %d,\n" r.vb_steps;
      bp "      \"wall_seconds\": %.6f,\n" r.vb_wall_seconds;
      bp "      \"steps_per_sec\": %.0f,\n" r.vb_steps_per_sec;
      bp "      \"ops_per_sec\": %.1f\n" r.vb_ops_per_sec;
      bp "    }")
    results;
  bp "\n  ]\n";
  bp "}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents b);
  close_out oc

let run ?(quick = false) ?(path = "BENCH_vm.json") () : result list =
  Format.printf "== vm engines: walk vs image, steps/sec ==@.";
  let results = run_all ~quick () in
  List.iter
    (fun r ->
      Format.printf "  %-10s %-8s %-5s %12.0f steps/s  (%d steps, %.3f s)@."
        r.vb_family r.vb_backend r.vb_engine r.vb_steps_per_sec r.vb_steps
        r.vb_wall_seconds)
    results;
  (match speedup results ~family:"hashmap" ~backend:"sim" with
  | Some s -> Format.printf "  image/walk speedup (sim, hashmap): %.2fx@." s
  | None -> ());
  write_json ~path results;
  Format.printf "  -> %s@.@." path;
  results
