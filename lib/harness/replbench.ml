(* See the .mli. Everything runs in-process but over real loopback TCP:
   a primary server, replica servers attached through the replication
   client, and the load generator driving the primary — so the measured
   path is the shipping path the paper's deployment would use, not a
   function-call model of it. The simulated backend keeps the store's
   per-op cost deterministic across cells; the deltas between cells are
   then attributable to replication alone. *)

module Tel = Privagic_telemetry
module Server = Privagic_server.Server
module Loadgen = Privagic_loadgen.Loadgen
module Repl = Privagic_replication
open Privagic_vm

type cell = {
  rb_mode : string;
  rb_replicas : int;
  rb_ops : int;
  rb_ops_ok : int;
  rb_wall_seconds : float;
  rb_throughput_kops : float;
  rb_latency_us : Tel.Metrics.pctiles;
  rb_lag_us : Tel.Metrics.pctiles;
  rb_shipped : int;
  rb_sealed : int;
  rb_primary_seq : int;
  rb_replica_seqs : int list;
}

type failover = { fo_seconds : float; fo_deltas : int }

let vsize = 32

let plan_for () =
  let src = Kv.source Kv.Memcached `Colored ~nbuckets:64 ~vsize in
  let m = Privagic_minic.Driver.compile ~file:"program.mc" src in
  let mode = Kv.mode_for Kv.Memcached in
  let infer = Privagic_secure.Infer.run ~mode m in
  if not (Privagic_secure.Infer.ok infer) then
    invalid_arg "replbench: program rejected by the checker";
  let plan = Privagic_partition.Plan.build ~mode infer in
  if plan.Privagic_partition.Plan.diagnostics <> [] then
    invalid_arg "replbench: partitioning rejected";
  plan

let make_server ?replica_of ~capacity () =
  let plan = plan_for () in
  let bnd = Option.get (Server.bindings_of_plan plan) in
  let store =
    let pt = Pinterp.create ~engine:(Exec.default_engine ()) plan in
    let store = Server.store_of_pinterp pt in
    (match bnd.Server.b_init with
    | Some entry ->
      (match store.Server.st_call entry [ Rvalue.Int (Int64.of_int capacity) ]
       with
      | Ok _ -> ()
      | Error m -> invalid_arg ("replbench: init failed: " ^ m))
    | None -> ());
    store
  in
  Server.start ?replica_of
    { Server.default_config with Server.port = 0; vsize }
    bnd [| store |]

(* A replica: its own server (read-only role) plus the replication
   client applying the primary's stream into it. [on_lost] defaults to
   promotion, as the CLI's --replica-of does. *)
let attach_replica ?on_lost ~sync ~capacity primary_port =
  let srv =
    make_server
      ~replica_of:(Printf.sprintf "127.0.0.1:%d" primary_port)
      ~capacity ()
  in
  let apply (d : Repl.Delta.t) =
    match d.Repl.Delta.op with
    | Repl.Delta.Put { key; payload; _ } ->
      Server.apply_put srv ~seq:d.Repl.Delta.seq ~key ~payload
    | Repl.Delta.Del { key } -> Server.apply_del srv ~seq:d.Repl.Delta.seq ~key
  in
  let on_lost =
    match on_lost with Some f -> f srv | None -> fun () -> Server.promote srv
  in
  let client =
    Repl.Replica.start ~sync ~on_lost ~host:"127.0.0.1" ~port:primary_port
      ~apply ()
  in
  (srv, client)

let drive ~ops ~records port =
  Loadgen.run
    {
      Loadgen.default_config with
      Loadgen.port;
      clients = 4;
      ops;
      record_count = records;
      vsize;
      read_prop = 0.5;
    }

(* Minimal blocking client for the failover drill's serving probe. *)
let rpc ~port req =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let b = Bytes.of_string req in
      let rec wr off =
        if off < Bytes.length b then
          wr (off + Unix.write fd b off (Bytes.length b - off))
      in
      wr 0;
      let buf = Bytes.create 256 in
      match Unix.read fd buf 0 256 with
      | 0 -> ""
      | n -> Bytes.sub_string buf 0 n)

let run_cell ~mode ~replicas ~ops ~records =
  let capacity = records * 4 in
  let primary = make_server ~capacity () in
  let pport = Server.port primary in
  let sync = mode = "sync" in
  let reps =
    List.init (if mode = "none" then 0 else replicas) (fun _ ->
        attach_replica ~sync ~capacity pport)
  in
  let r = drive ~ops ~records pport in
  let hub = Server.repl_hub primary in
  let primary_seq = Repl.Log.head (Server.repl_log primary) in
  (* drain flushes the log tail and waits for the replicas' final acks *)
  Server.drain primary;
  let replica_seqs =
    List.map
      (fun (rsrv, client) ->
        ignore (Repl.Replica.wait_lost client ~timeout_s:10.0);
        let seq = Repl.Replica.applied_seq client in
        Repl.Replica.stop client;
        Server.drain rsrv;
        seq)
      reps
  in
  {
    rb_mode = mode;
    rb_replicas = List.length reps;
    rb_ops = ops;
    rb_ops_ok = r.Loadgen.r_ops_ok;
    rb_wall_seconds = r.Loadgen.r_wall_seconds;
    rb_throughput_kops = r.Loadgen.r_throughput_kops;
    rb_latency_us = r.Loadgen.r_latency;
    rb_lag_us = Repl.Shipper.lag_pctiles hub;
    rb_shipped = Repl.Shipper.shipped hub;
    rb_sealed = Repl.Shipper.sealed_count hub;
    rb_primary_seq = primary_seq;
    rb_replica_seqs = replica_seqs;
  }

let run_failover ~ops ~records =
  let capacity = records * 4 in
  let primary = make_server ~capacity () in
  let pport = Server.port primary in
  let rsrv, client = attach_replica ~sync:false ~capacity pport in
  ignore (drive ~ops ~records pport);
  let t0 = Unix.gettimeofday () in
  Server.drain primary;
  if not (Repl.Replica.wait_lost client ~timeout_s:10.0) then
    invalid_arg "replbench: replica never noticed the drained primary";
  let deltas = Repl.Replica.applied_seq client in
  (* promotion runs in the client's on_lost; poll until the promoted
     replica stores a write (rejected with CLIENT_ERROR until then) *)
  let rport = Server.port rsrv in
  let deadline = t0 +. 10.0 in
  let rec until_stored () =
    let resp = rpc ~port:rport "set 1 5\r\nhello\r\n" in
    if String.length resp >= 6 && String.sub resp 0 6 = "STORED" then
      Unix.gettimeofday () -. t0
    else if Unix.gettimeofday () > deadline then
      invalid_arg "replbench: promoted replica never accepted a write"
    else begin
      Unix.sleepf 0.002;
      until_stored ()
    end
  in
  let fo_seconds = until_stored () in
  Repl.Replica.stop client;
  Server.drain rsrv;
  { fo_seconds; fo_deltas = deltas }

let run_all ?(quick = false) () =
  let records = if quick then 256 else 1024 in
  let ops = if quick then 2_000 else 8_000 in
  let cells =
    List.map
      (fun mode -> run_cell ~mode ~replicas:2 ~ops ~records)
      [ "none"; "async"; "sync" ]
  in
  let fo = run_failover ~ops:(ops / 4) ~records in
  (cells, fo)

let write_json ~path ~quick ((cells, fo) : cell list * failover) =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  let pct (x : Tel.Metrics.pctiles) =
    Printf.sprintf
      "{ \"n\": %d, \"mean\": %.1f, \"p50\": %.1f, \"p95\": %.1f, \"p99\": \
       %.1f, \"max\": %.1f }"
      x.Tel.Metrics.n x.Tel.Metrics.p_mean x.Tel.Metrics.p50 x.Tel.Metrics.p95
      x.Tel.Metrics.p99 x.Tel.Metrics.p_max
  in
  p "{\n";
  p "  \"bench\": \"replication\",\n";
  p "  \"quick\": %b,\n" quick;
  p "  \"family\": \"memcached\", \"backend\": \"sim\", \"vsize\": %d,\n" vsize;
  p "  \"cells\": [\n";
  List.iteri
    (fun i c ->
      p "    { \"mode\": %S, \"replicas\": %d, \"ops\": %d, \"ops_ok\": %d,\n"
        c.rb_mode c.rb_replicas c.rb_ops c.rb_ops_ok;
      p "      \"wall_seconds\": %.6f, \"throughput_kops\": %.3f,\n"
        c.rb_wall_seconds c.rb_throughput_kops;
      p "      \"latency_us\": %s,\n" (pct c.rb_latency_us);
      p "      \"lag_us\": %s,\n" (pct c.rb_lag_us);
      p "      \"shipped\": %d, \"sealed\": %d,\n" c.rb_shipped c.rb_sealed;
      p "      \"primary_seq\": %d, \"replica_seqs\": [%s] }%s\n"
        c.rb_primary_seq
        (String.concat ", " (List.map string_of_int c.rb_replica_seqs))
        (if i = List.length cells - 1 then "" else ","))
    cells;
  p "  ],\n";
  p "  \"failover\": { \"seconds\": %.6f, \"deltas_applied\": %d }\n"
    fo.fo_seconds fo.fo_deltas;
  p "}\n";
  close_out oc

let run ?(quick = false) ?(path = "BENCH_replication.json") () =
  let ((cells, fo) as r) = run_all ~quick () in
  Format.printf "@[<v>replication bench (memcached, sim backend)@,%s@]@."
    (String.concat "\n"
       (List.map
          (fun c ->
            Printf.sprintf
              "  %-5s  %d replicas  %6.2f kops/s  lag p50/p99 %.0f/%.0f us  \
               sealed %d/%d  seqs %d:[%s]"
              c.rb_mode c.rb_replicas c.rb_throughput_kops
              c.rb_lag_us.Tel.Metrics.p50 c.rb_lag_us.Tel.Metrics.p99
              c.rb_sealed c.rb_shipped c.rb_primary_seq
              (String.concat "," (List.map string_of_int c.rb_replica_seqs)))
          cells));
  Format.printf "  failover: %.3f s (%d deltas applied at promotion)@."
    fo.fo_seconds fo.fo_deltas;
  write_json ~path ~quick r;
  Format.printf "wrote %s@." path;
  r
