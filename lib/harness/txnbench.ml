(* See the .mli. Everything in-process over loopback TCP, like
   replbench: loadgen drives the YCSB-E and YCSB-F mixes through the
   public socket path, then a single blocking connection runs the
   multi-op transaction phase — half the transactions carry a CAS guard
   seeded with a stale version, so both the commit and the abort paths
   are measured and the server's commit/abort counters have known
   expected values. *)

module Tel = Privagic_telemetry
module Server = Privagic_server.Server
module Protocol = Privagic_server.Protocol
module Loadgen = Privagic_loadgen.Loadgen
open Privagic_vm

type mix_cell = {
  tb_mix : string;
  tb_ops_ok : int;
  tb_wall_seconds : float;
  tb_throughput_kops : float;
  tb_latency_us : Tel.Metrics.pctiles;
  tb_scans : int;
  tb_scan_items : int;
  tb_rmw_conflicts : int;
  tb_busy : int;
  tb_errors : int;
}

type txn_phase = {
  tp_txns : int;
  tp_commits : int;
  tp_aborts : int;
  tp_wall_seconds : float;
  tp_txns_per_sec : float;
}

type t = {
  tb_records : int;
  tb_ops : int;
  tb_mixes : mix_cell list;
  tb_txn : txn_phase;
  tb_srv_txns : int;
  tb_srv_txn_commits : int;
  tb_srv_txn_aborts : int;
  tb_srv_cas_conflicts : int;
  tb_srv_scans : int;
  tb_srv_scan_items : int;
}

let vsize = 32

(* two shards so the even-i transactions (keys k and k+1) exercise the
   cross-shard two-phase commit path, not just single-shard commits *)
let shards = 2

let make_server ~capacity () =
  let src = Kv.source Kv.Memcached `Colored ~nbuckets:256 ~vsize in
  let m = Privagic_minic.Driver.compile ~file:"program.mc" src in
  let mode = Kv.mode_for Kv.Memcached in
  let infer = Privagic_secure.Infer.run ~mode m in
  if not (Privagic_secure.Infer.ok infer) then
    invalid_arg "txnbench: program rejected by the checker";
  let plan = Privagic_partition.Plan.build ~mode infer in
  if plan.Privagic_partition.Plan.diagnostics <> [] then
    invalid_arg "txnbench: partitioning rejected";
  let bnd = Option.get (Server.bindings_of_plan plan) in
  let stores =
    Array.init shards (fun _ ->
        let pool = Privagic_parallel.Parallel.create ~lanes:2 plan in
        let store = Server.store_of_parallel pool in
        (match bnd.Server.b_init with
        | Some entry -> (
          match
            store.Server.st_call entry [ Rvalue.Int (Int64.of_int capacity) ]
          with
          | Ok _ -> ()
          | Error m -> invalid_arg ("txnbench: init failed: " ^ m))
        | None -> ());
        store)
  in
  Server.start
    { Server.default_config with Server.port = 0; shards; vsize }
    bnd stores

let cell_of mix (r : Loadgen.result) =
  {
    tb_mix = Loadgen.mix_name mix;
    tb_ops_ok = r.Loadgen.r_ops_ok;
    tb_wall_seconds = r.Loadgen.r_wall_seconds;
    tb_throughput_kops = r.Loadgen.r_throughput_kops;
    tb_latency_us = r.Loadgen.r_latency;
    tb_scans = r.Loadgen.r_scans;
    tb_scan_items = r.Loadgen.r_scan_items;
    tb_rmw_conflicts = r.Loadgen.r_rmw_conflicts;
    tb_busy = r.Loadgen.r_busy;
    tb_errors = r.Loadgen.r_errors;
  }

(* --- the multi-op transaction phase: one blocking connection --- *)

let send_all fd s =
  let b = Bytes.of_string s in
  let rec wr off =
    if off < Bytes.length b then
      wr (off + Unix.write fd b off (Bytes.length b - off))
  in
  wr 0

(* Read until the reader yields one response (the connection carries one
   outstanding request at a time). *)
let recv_one fd rd =
  let buf = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> invalid_arg "txnbench: server closed the txn connection"
    | n -> (
      match Protocol.feed_resp rd buf n with
      | [] -> go ()
      | [ r ] -> r
      | r :: _ -> r)
  in
  go ()

let run_txn_phase ~port ~txns ~base_key =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      Unix.setsockopt fd Unix.TCP_NODELAY true;
      let rd = Protocol.resp_reader () in
      (* the phase owns its key range (above anything the mixes touched),
         so committed versions are tracked exactly client-side *)
      let versions = Hashtbl.create 64 in
      let ver k = Option.value ~default:0 (Hashtbl.find_opt versions k) in
      let commits = ref 0 and aborts = ref 0 in
      let start = Unix.gettimeofday () in
      for i = 0 to txns - 1 do
        let k = base_key + (i mod 32) in
        let payload = Privagic_workloads.Ycsb.value_for ~size:vsize k in
        let req =
          if i mod 2 = 0 then
            (* read–check–write on one key plus a blind write on its
               neighbour: the canonical multi-key RMW commit *)
            Protocol.Txn
              [ Protocol.T_get k;
                Protocol.T_cas (k, ver k, payload);
                Protocol.T_set (k + 1, payload) ]
          else
            (* stale guard: must abort without touching the store *)
            Protocol.Txn [ Protocol.T_cas (k, ver k + 1000, payload) ]
        in
        send_all fd (Protocol.render_request req);
        (match recv_one fd rd with
        | Protocol.Txn_reply _ ->
          incr commits;
          Hashtbl.replace versions k (ver k + 1);
          Hashtbl.replace versions (k + 1) (ver (k + 1) + 1)
        | Protocol.Txn_abort _ -> incr aborts
        | Protocol.Busy -> invalid_arg "txnbench: unexpected SERVER_BUSY"
        | Protocol.Error_msg m -> invalid_arg ("txnbench: txn error: " ^ m)
        | _ -> invalid_arg "txnbench: unexpected txn response")
      done;
      let wall = Unix.gettimeofday () -. start in
      {
        tp_txns = txns;
        tp_commits = !commits;
        tp_aborts = !aborts;
        tp_wall_seconds = wall;
        tp_txns_per_sec =
          (if wall > 0.0 then float_of_int txns /. wall else 0.0);
      })

(* ------------------------------------------------------------------ *)

let run_all ~quick () =
  let records = if quick then 128 else 512 in
  let ops = if quick then 1_000 else 5_000 in
  let txns = if quick then 200 else 1_000 in
  let srv = make_server ~capacity:(records * 8) () in
  let port = Server.port srv in
  let base_cfg =
    {
      Loadgen.default_config with
      Loadgen.port;
      clients = 4;
      ops;
      record_count = records;
      vsize;
      scan_len = 16;
    }
  in
  let e =
    Loadgen.run { base_cfg with Loadgen.mix = Loadgen.Ycsb_e }
  in
  let f =
    Loadgen.run
      { base_cfg with Loadgen.mix = Loadgen.Ycsb_f; preload = false }
  in
  let tp = run_txn_phase ~port ~txns ~base_key:(records + 10_000) in
  let st = Server.stats srv in
  Server.drain srv;
  {
    tb_records = records;
    tb_ops = ops;
    tb_mixes =
      [ cell_of Loadgen.Ycsb_e e; cell_of Loadgen.Ycsb_f f ];
    tb_txn = tp;
    tb_srv_txns = st.Server.s_txns;
    tb_srv_txn_commits = st.Server.s_txn_commits;
    tb_srv_txn_aborts = st.Server.s_txn_aborts;
    tb_srv_cas_conflicts = st.Server.s_cas_conflicts;
    tb_srv_scans = st.Server.s_scans;
    tb_srv_scan_items = st.Server.s_scan_items;
  }

let write_json ~path ~quick (r : t) =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  let pct (x : Tel.Metrics.pctiles) =
    Printf.sprintf
      "{ \"n\": %d, \"mean\": %.1f, \"p50\": %.1f, \"p95\": %.1f, \"p99\": \
       %.1f, \"p999\": %.1f, \"max\": %.1f }"
      x.Tel.Metrics.n x.Tel.Metrics.p_mean x.Tel.Metrics.p50 x.Tel.Metrics.p95
      x.Tel.Metrics.p99 x.Tel.Metrics.p999 x.Tel.Metrics.p_max
  in
  p "{\n";
  p "  \"bench\": \"txn\",\n";
  p "  \"quick\": %b,\n" quick;
  p "  \"family\": \"memcached\", \"backend\": \"parallel\", \"vsize\": %d,\n"
    vsize;
  p "  \"records\": %d, \"ops\": %d,\n" r.tb_records r.tb_ops;
  p "  \"mixes\": [\n";
  List.iteri
    (fun i c ->
      p "    { \"mix\": %S, \"ops_ok\": %d, \"busy\": %d, \"errors\": %d,\n"
        c.tb_mix c.tb_ops_ok c.tb_busy c.tb_errors;
      p "      \"wall_seconds\": %.6f, \"throughput_kops\": %.3f,\n"
        c.tb_wall_seconds c.tb_throughput_kops;
      p "      \"achieved_rate_ops\": %.1f,\n"
        (if c.tb_wall_seconds > 0.0 then
           float_of_int c.tb_ops_ok /. c.tb_wall_seconds
         else 0.0);
      p "      \"scans\": %d, \"scan_items\": %d, \"rmw_conflicts\": %d,\n"
        c.tb_scans c.tb_scan_items c.tb_rmw_conflicts;
      p "      \"latency_us\": %s }%s\n" (pct c.tb_latency_us)
        (if i = List.length r.tb_mixes - 1 then "" else ","))
    r.tb_mixes;
  p "  ],\n";
  p "  \"txn_phase\": { \"txns\": %d, \"commits\": %d, \"aborts\": %d,\n"
    r.tb_txn.tp_txns r.tb_txn.tp_commits r.tb_txn.tp_aborts;
  p "    \"wall_seconds\": %.6f, \"txns_per_sec\": %.1f },\n"
    r.tb_txn.tp_wall_seconds r.tb_txn.tp_txns_per_sec;
  p "  \"server\": { \"txns\": %d, \"txn_commits\": %d, \"txn_aborts\": %d,\n"
    r.tb_srv_txns r.tb_srv_txn_commits r.tb_srv_txn_aborts;
  p "    \"cas_conflicts\": %d, \"scans\": %d, \"scan_items\": %d }\n"
    r.tb_srv_cas_conflicts r.tb_srv_scans r.tb_srv_scan_items;
  p "}\n";
  close_out oc

let run ?(quick = false) ?(path = "BENCH_txn.json") () =
  let r = run_all ~quick () in
  Format.printf "@[<v>txn bench (memcached, parallel backend)@,%s@]@."
    (String.concat "\n"
       (List.map
          (fun c ->
            Printf.sprintf
              "  %-7s %8.2f kops/s  p50/p99 %.0f/%.0f us  scans %d (%d \
               items)  rmw conflicts %d"
              c.tb_mix c.tb_throughput_kops c.tb_latency_us.Tel.Metrics.p50
              c.tb_latency_us.Tel.Metrics.p99 c.tb_scans c.tb_scan_items
              c.tb_rmw_conflicts)
          r.tb_mixes));
  Format.printf
    "  txn phase: %d txns, %d commits, %d aborts, %.0f txns/s@."
    r.tb_txn.tp_txns r.tb_txn.tp_commits r.tb_txn.tp_aborts
    r.tb_txn.tp_txns_per_sec;
  Format.printf
    "  server counters: txns %d, commits %d, aborts %d, cas_conflicts %d, \
     scans %d@."
    r.tb_srv_txns r.tb_srv_txn_commits r.tb_srv_txn_aborts
    r.tb_srv_cas_conflicts r.tb_srv_scans;
  write_json ~path ~quick r;
  Format.printf "wrote %s@." path;
  r
