(** Replication benchmark ([privagic bench replication]): the
    memcached-lite server under a write-heavy YCSB mix, measured without
    replicas, with async replicas, and with sync replicas — all
    in-process over real loopback TCP — plus a failover drill (drain the
    primary, time until a promoted replica serves writes).

    The metrics are the ones §8.10's design argues about: sync-vs-async
    throughput cost (the write fence), replication lag percentiles
    (send→ack, microseconds), sealed-frame counts (the ciphertext-only
    transport at work), and failover time. *)

type cell = {
  rb_mode : string;            (** "none" | "async" | "sync" *)
  rb_replicas : int;
  rb_ops : int;
  rb_ops_ok : int;
  rb_wall_seconds : float;
  rb_throughput_kops : float;
  rb_latency_us : Privagic_telemetry.Metrics.pctiles;  (** client side *)
  rb_lag_us : Privagic_telemetry.Metrics.pctiles;      (** send→ack *)
  rb_shipped : int;            (** delta frames written to the wire *)
  rb_sealed : int;             (** payloads sealed before shipping *)
  rb_primary_seq : int;        (** primary commit-log head at drain *)
  rb_replica_seqs : int list;  (** per-replica applied seq (convergence) *)
}

type failover = {
  fo_seconds : float;   (** drain start → promoted replica stores a write *)
  fo_deltas : int;      (** deltas the replica had applied at promotion *)
}

(** Run every cell. [quick] shrinks record/operation counts. *)
val run_all : ?quick:bool -> unit -> cell list * failover

val write_json : path:string -> quick:bool -> cell list * failover -> unit

(** [run_all] + printed table + {!write_json}. *)
val run : ?quick:bool -> ?path:string -> unit -> cell list * failover
