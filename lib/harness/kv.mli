(** Generic key-value benchmark runner: load a dataset into one of the
    evaluation programs under a system configuration, replay a YCSB
    workload, report throughput / latency / cache statistics in
    deterministic simulated time. *)

module Sgx = Privagic_sgx
module Ycsb = Privagic_workloads.Ycsb
module Programs = Privagic_workloads.Programs
module System = Privagic_baselines.System

type family = Hashmap | Linked_list | Rbtree | Hashmap2 | Memcached

val family_name : family -> string

(** [(put, get)] entry names of a family. *)
val entries : family -> string * string

val source :
  family -> Programs.variant -> nbuckets:int -> vsize:int -> string

(** The mode a family needs: two colors in one structure require relaxed
    mode (§8). *)
val mode_for : family -> Privagic_secure.Mode.t

type result = {
  family : family;
  system : string;
  record_count : int;
  dataset_bytes : int;
  operations : int;
  throughput_kops : float;
  mean_latency_us : float;
  p_found : float;          (** sanity: fraction of successful reads *)
  llc_miss_ratio : float;
  queue_msgs : int;
  ecalls_switchless : int;
}

type parallel_result = {
  pr_family : family;
  pr_record_count : int;
  pr_operations : int;
  pr_drivers : int;        (** issuing threads (1 = closed loop) *)
  pr_domains : int;        (** domains the worker pool actually spawned *)
  pr_wall_seconds : float; (** run phase only, wall clock *)
  pr_throughput_kops : float;
  pr_p_found : float;
  pr_steps : int;          (** VM steps retired during the run phase *)
  pr_steps_per_sec : float;
  pr_stalls : Privagic_obs.Lane.breakdown list;
      (** per-lane phase decomposition at run end (lib/obs), empty when
          obs is disabled *)
}

(** Same load/replay protocol as {!run}, but on the real-parallel backend
    ({!Privagic_parallel.Parallel}): OCaml 5 domains, wall-clock
    throughput. No machine counters — the cost model does not run here. *)
val run_parallel :
  ?nbuckets:int ->
  ?vsize:int ->
  ?seed:int ->
  ?distribution:Ycsb.distribution ->
  ?lanes:int ->
  ?drivers:int ->
  ?telemetry:Privagic_telemetry.Recorder.t ->
  ?engine:Privagic_vm.Exec.engine ->
  family ->
  record_count:int ->
  operations:int ->
  unit ->
  parallel_result

val run :
  ?config:Sgx.Config.t ->
  ?cost:Sgx.Cost.t ->
  ?nbuckets:int ->
  ?vsize:int ->
  ?seed:int ->
  ?distribution:Ycsb.distribution ->
  ?auth_pointers:bool ->
  ?telemetry:Privagic_telemetry.Recorder.t ->
  ?engine:Privagic_vm.Exec.engine ->
  family ->
  System.kind ->
  record_count:int ->
  operations:int ->
  unit ->
  result
