(** The transaction benchmark ([bench txn] → BENCH_txn.json): the
    scan-heavy and read-modify-write YCSB mixes (E and F) driven by
    {!Privagic_loadgen} against an in-process memcached server on the
    real-parallel backend, plus a raw-socket phase of multi-op
    [txn … exec] transactions exercising commit and CAS-guard abort.

    Reported per mix: wall-clock throughput, answered ops, achieved vs
    target rate, latency percentiles, scan and RMW-conflict counts; for
    the txn phase: commits, aborts and transactions/s; and the server's
    own txn/scan counters for cross-checking (the CI smoke gate greps
    them). *)

type mix_cell = {
  tb_mix : string;
  tb_ops_ok : int;
  tb_wall_seconds : float;
  tb_throughput_kops : float;
  tb_latency_us : Privagic_telemetry.Metrics.pctiles;
  tb_scans : int;
  tb_scan_items : int;
  tb_rmw_conflicts : int;
  tb_busy : int;
  tb_errors : int;
}

type txn_phase = {
  tp_txns : int;           (** transactions sent *)
  tp_commits : int;        (** TXN replies *)
  tp_aborts : int;         (** TXN_ABORT replies (the seeded CAS misses) *)
  tp_wall_seconds : float;
  tp_txns_per_sec : float;
}

type t = {
  tb_records : int;
  tb_ops : int;
  tb_mixes : mix_cell list;
  tb_txn : txn_phase;
  (* the server's own view, for cross-checking the client counts *)
  tb_srv_txns : int;
  tb_srv_txn_commits : int;
  tb_srv_txn_aborts : int;
  tb_srv_cas_conflicts : int;
  tb_srv_scans : int;
  tb_srv_scan_items : int;
}

(** Run both mixes and the txn phase; print a summary and write the JSON
    record. @raise Invalid_argument when the program is rejected or the
    server misbehaves. *)
val run : ?quick:bool -> ?path:string -> unit -> t

val write_json : path:string -> quick:bool -> t -> unit
