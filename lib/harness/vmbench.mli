(** Walk-vs-image VM benchmark ([privagic bench vm], [bench/main.exe vm]):
    replays the Kv harness's YCSB-B-style protocol once per
    (family × backend × engine) cell and reports raw interpreter speed —
    executed PIR instructions per wall-clock second. Virtual-time results
    are engine-invariant (the differential tests check that), so
    steps/sec is the one metric where the engines differ. *)

type result = {
  vb_family : string;
  vb_backend : string;        (** "sim" | "parallel" *)
  vb_engine : string;         (** "walk" | "image" *)
  vb_records : int;
  vb_operations : int;
  vb_steps : int;             (** executed instructions, all executors *)
  vb_wall_seconds : float;    (** load + run phases *)
  vb_steps_per_sec : float;
  vb_ops_per_sec : float;
}

(** All cells: {hashmap, treemap, memcached} × {sim, parallel} ×
    {walk, image}. [quick] shrinks record/operation counts. *)
val run_all : ?quick:bool -> unit -> result list

(** Image-over-walk steps/sec ratio for one (family, backend) cell, e.g.
    [~family:"hashmap" ~backend:"sim"]; [None] if a cell is missing. *)
val speedup : result list -> family:string -> backend:string -> float option

val write_json : path:string -> result list -> unit

(** [run_all] + a printed table + {!write_json} (default BENCH_vm.json). *)
val run : ?quick:bool -> ?path:string -> unit -> result list
