(** The simulated machine: cache hierarchy, EPC working set, cost and
    event counters. The VM charges every simulated memory access and every
    control event here and adds the returned cycles to the current
    worker's virtual clock. *)

type zone = Normal | Enclave of string

type counters = {
  mutable instrs : int;
  mutable mem_accesses : int;
  mutable l1_misses : int;
  mutable llc_misses : int;
  mutable enclave_llc_misses : int;
  mutable epc_faults : int;
  mutable ecalls : int;
  mutable switchless_calls : int;
  mutable queue_msgs : int;
  mutable syscalls : int;
  mutable enclave_syscalls : int;
  mutable threads_spawned : int;
}

val fresh_counters : unit -> counters

module Tel = Privagic_telemetry

type t = {
  config : Config.t;
  cost : Cost.t;
  l1 : Cache.t;
  llc : Cache.t;
  epc : Cache.t;
  c : counters;
  mutable trace : (int * int -> unit) option;
  mutable tel : Tel.Recorder.t;
}

val create : ?cost:Cost.t -> Config.t -> t

(** Optional per-machine access trace for debugging cache behaviour:
    receives [(addr, size)] before each access. A field rather than a
    global so two machines in one harness run (e.g. baseline vs.
    partitioned) cannot clobber each other's hooks. *)
val set_trace : t -> (int * int -> unit) option -> unit

(** Attach a telemetry recorder; transition and fault events (ecalls,
    ocalls, switchless calls, queue messages, EPC faults, thread spawns)
    are recorded with the recorder's current clock/track context. *)
val set_telemetry : t -> Tel.Recorder.t -> unit

val instr_cost : t -> int -> float

(** [mem_cost m ~cpu ~data addr size]: [cpu] is the processor mode (misses
    taken in enclave mode pay the Eleos multiplier), [data] is where the
    memory lives (enclave pages occupy EPC and may fault). *)
val mem_cost : t -> cpu:zone -> data:zone -> int -> int -> float

val ecall_cost : t -> float
val switchless_cost : t -> float
val queue_msg_cost : t -> float
val syscall_cost : t -> zone:zone -> float
val thread_spawn_cost : t -> float
val counters : t -> counters
val llc_miss_ratio : t -> float

(** Convert cycles to seconds at this machine's frequency. *)
val seconds : t -> float -> float

val reset_stats : t -> unit
