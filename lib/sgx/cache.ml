(* Set-associative LRU cache model, used for the L1, the shared LLC, and —
   at page granularity — the EPC working set. Addresses are simulated byte
   addresses. The model only answers hit/miss; latencies live in [Cost]. *)

type t = {
  line_bits : int;              (* log2 of the line (or page) size *)
  set_bits : int;               (* log2 of the number of sets *)
  assoc : int;
  sets : int array array;       (* per-set tags, LRU order: index 0 = MRU *)
  lengths : int array;          (* valid entries per set *)
  mutable accesses : int;
  mutable misses : int;
}

let log2 n =
  let rec go k v = if v >= n then k else go (k + 1) (v * 2) in
  go 0 1

(* [create ~size_bytes ~line_bytes ~assoc] builds a cache of the given total
   capacity. Sizes are rounded up to powers of two. *)
let create ~size_bytes ~line_bytes ~assoc =
  let line_bits = log2 line_bytes in
  let lines = max assoc (size_bytes / line_bytes) in
  let sets = max 1 (lines / assoc) in
  let set_bits = log2 sets in
  let nsets = 1 lsl set_bits in
  {
    line_bits;
    set_bits;
    assoc;
    sets = Array.init nsets (fun _ -> Array.make assoc (-1));
    lengths = Array.make nsets 0;
    accesses = 0;
    misses = 0;
  }

(* Access one line; true = hit. The caller splits multi-line accesses. *)
let access_line t addr =
  t.accesses <- t.accesses + 1;
  let line = addr lsr t.line_bits in
  (* the set index is masked, so the unsafe_gets below stay in bounds *)
  let set_idx = line land ((1 lsl t.set_bits) - 1) in
  let tag = line lsr t.set_bits in
  let set = Array.unsafe_get t.sets set_idx in
  let len = Array.unsafe_get t.lengths set_idx in
  (* tight loops hit the MRU way most of the time; skip the scan+shuffle *)
  if len > 0 && Array.unsafe_get set 0 = tag then true
  else
  let rec find i =
    if i >= len then -1
    else if Array.unsafe_get set i = tag then i
    else find (i + 1)
  in
  let pos = find 0 in
  if pos >= 0 then begin
    (* move to front (LRU update) *)
    for i = pos downto 1 do
      set.(i) <- set.(i - 1)
    done;
    set.(0) <- tag;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    let new_len = min t.assoc (len + 1) in
    for i = new_len - 1 downto 1 do
      set.(i) <- set.(i - 1)
    done;
    set.(0) <- tag;
    t.lengths.(set_idx) <- new_len;
    false
  end

(* Allocation-free variants for the interpreter hot path: the common case
   is a scalar access inside one line, which is a single [access_line]. *)
let lines_touched t addr size =
  let first = addr lsr t.line_bits in
  let last = (addr + max 1 size - 1) lsr t.line_bits in
  last - first + 1

let access_misses t addr size =
  let first = addr lsr t.line_bits in
  let last = (addr + max 1 size - 1) lsr t.line_bits in
  if first = last then if access_line t addr then 0 else 1
  else begin
    let misses = ref 0 in
    for line = first to last do
      if not (access_line t (line lsl t.line_bits)) then incr misses
    done;
    !misses
  end

(* Access [size] bytes at [addr]; returns the number of line misses and the
   number of lines touched. *)
let access t addr size =
  let line_size = 1 lsl t.line_bits in
  let first = addr lsr t.line_bits in
  let last = (addr + max 1 size - 1) lsr t.line_bits in
  let misses = ref 0 in
  for line = first to last do
    if not (access_line t (line lsl t.line_bits)) then incr misses
  done;
  ignore line_size;
  (!misses, last - first + 1)

let miss_ratio t =
  if t.accesses = 0 then 0.0
  else float_of_int t.misses /. float_of_int t.accesses

let reset_stats t =
  t.accesses <- 0;
  t.misses <- 0
