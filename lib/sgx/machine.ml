(* The simulated machine: cache hierarchy, EPC working set, cost and event
   counters. The VM charges every simulated memory access and every control
   event (transition, message, syscall) here and gets back a cycle count to
   add to the current worker's virtual clock. *)

type zone = Normal | Enclave of string

type counters = {
  mutable instrs : int;
  mutable mem_accesses : int;
  mutable l1_misses : int;
  mutable llc_misses : int;
  mutable enclave_llc_misses : int;
  mutable epc_faults : int;
  mutable ecalls : int;
  mutable switchless_calls : int;
  mutable queue_msgs : int;
  mutable syscalls : int;
  mutable enclave_syscalls : int;
  mutable threads_spawned : int;
}

let fresh_counters () =
  {
    instrs = 0;
    mem_accesses = 0;
    l1_misses = 0;
    llc_misses = 0;
    enclave_llc_misses = 0;
    epc_faults = 0;
    ecalls = 0;
    switchless_calls = 0;
    queue_msgs = 0;
    syscalls = 0;
    enclave_syscalls = 0;
    threads_spawned = 0;
  }

module Tel = Privagic_telemetry

type t = {
  config : Config.t;
  cost : Cost.t;
  l1 : Cache.t;
  llc : Cache.t;
  epc : Cache.t;                (* page-granular enclave working set *)
  c : counters;
  mutable trace : (int * int -> unit) option;
      (* per-machine access trace for debugging cache behaviour; a field
         (not a global) so two machines in one harness run cannot clobber
         each other's hooks *)
  mutable tel : Tel.Recorder.t;
      (* transition/fault events; timestamps and tracks come from the
         recorder's context, maintained by the VM *)
}

let create ?(cost = Cost.default) (config : Config.t) =
  {
    config;
    cost;
    l1 =
      Cache.create ~size_bytes:(config.l1_kib * 1024)
        ~line_bytes:config.line_bytes ~assoc:config.l1_assoc;
    llc =
      Cache.create ~size_bytes:(config.llc_kib * 1024)
        ~line_bytes:config.line_bytes ~assoc:config.llc_assoc;
    epc =
      Cache.create ~size_bytes:(config.epc_mib * 1024 * 1024) ~line_bytes:4096
        ~assoc:16;
    c = fresh_counters ();
    trace = None;
    tel = Tel.Recorder.null;
  }

let set_trace m f = m.trace <- f

let set_telemetry m r = m.tel <- r

(* Cost of executing [n] plain instructions. *)
let instr_cost m n =
  m.c.instrs <- m.c.instrs + n;
  float_of_int n *. m.cost.Cost.cycles_per_instr

(* Cost of a [size]-byte access at [addr]: [cpu] is the mode the processor
   runs in (misses taken in enclave mode pay the Eleos multiplier), [data]
   is where the memory lives (enclave pages occupy EPC and may fault).
   The hierarchy is L1 -> LLC -> DRAM. *)
let mem_cost m ~cpu ~data addr size =
  (match m.trace with Some f -> f (addr, size) | None -> ());
  m.c.mem_accesses <- m.c.mem_accesses + 1;
  let l1_misses = Cache.access_misses m.l1 addr size in
  let lines = Cache.lines_touched m.l1 addr size in
  let in_enclave = match cpu with Enclave _ -> true | Normal -> false in
  let data_in_enclave = match data with Enclave _ -> true | Normal -> false in
  (* accumulated through plain lets — a [float ref] would box every
     intermediate, and this runs once per simulated memory access *)
  let cost = m.cost.Cost.l1_hit *. float_of_int lines in
  let cost =
    if l1_misses > 0 then begin
      m.c.l1_misses <- m.c.l1_misses + l1_misses;
      let llc_misses = Cache.access_misses m.llc addr size in
      let llc_hits = l1_misses - llc_misses in
      let cost =
        cost +. (m.cost.Cost.llc_hit *. float_of_int (max 0 llc_hits))
      in
      if llc_misses > 0 then begin
        m.c.llc_misses <- m.c.llc_misses + llc_misses;
        let miss_cost =
          if in_enclave then begin
            m.c.enclave_llc_misses <- m.c.enclave_llc_misses + llc_misses;
            m.cost.Cost.llc_miss *. m.cost.Cost.enclave_miss_factor
          end
          else m.cost.Cost.llc_miss
        in
        cost +. (miss_cost *. float_of_int llc_misses)
      end
      else cost
    end
    else cost
  in
  (* EPC pressure: only enclave-zone memory occupies EPC pages. *)
  if data_in_enclave then begin
    let faults = Cache.access_misses m.epc addr size in
    if faults > 0 then begin
      m.c.epc_faults <- m.c.epc_faults + faults;
      if Tel.Recorder.enabled m.tel then
        Tel.Recorder.here m.tel ~arg:faults Tel.Event.Epc_fault;
      cost +. (m.cost.Cost.epc_fault *. float_of_int faults)
    end
    else cost
  end
  else cost

let ecall_cost m =
  m.c.ecalls <- m.c.ecalls + 1;
  if Tel.Recorder.enabled m.tel then Tel.Recorder.here m.tel Tel.Event.Ecall;
  m.cost.Cost.ecall

let switchless_cost m =
  m.c.switchless_calls <- m.c.switchless_calls + 1;
  if Tel.Recorder.enabled m.tel then
    Tel.Recorder.here m.tel Tel.Event.Switchless;
  m.cost.Cost.switchless_lock

let queue_msg_cost m =
  m.c.queue_msgs <- m.c.queue_msgs + 1;
  if Tel.Recorder.enabled m.tel then
    Tel.Recorder.here m.tel Tel.Event.Queue_msg;
  m.cost.Cost.queue_msg

let syscall_cost m ~zone =
  match zone with
  | Normal ->
    m.c.syscalls <- m.c.syscalls + 1;
    if Tel.Recorder.enabled m.tel then
      Tel.Recorder.here m.tel Tel.Event.Syscall;
    m.cost.Cost.syscall
  | Enclave _ ->
    m.c.enclave_syscalls <- m.c.enclave_syscalls + 1;
    if Tel.Recorder.enabled m.tel then
      Tel.Recorder.here m.tel Tel.Event.Ocall;
    m.cost.Cost.enclave_syscall

let thread_spawn_cost m =
  m.c.threads_spawned <- m.c.threads_spawned + 1;
  if Tel.Recorder.enabled m.tel then
    Tel.Recorder.here m.tel Tel.Event.Thread_spawn;
  m.cost.Cost.thread_spawn

let counters m = m.c

let llc_miss_ratio m = Cache.miss_ratio m.llc

(* Convert cycles to seconds on this machine. *)
let seconds m cycles = cycles /. (m.config.Config.freq_ghz *. 1e9)

let reset_stats m =
  Cache.reset_stats m.l1;
  Cache.reset_stats m.llc;
  Cache.reset_stats m.epc;
  let c = m.c in
  c.instrs <- 0;
  c.mem_accesses <- 0;
  c.l1_misses <- 0;
  c.llc_misses <- 0;
  c.enclave_llc_misses <- 0;
  c.epc_faults <- 0;
  c.ecalls <- 0;
  c.switchless_calls <- 0;
  c.queue_msgs <- 0;
  c.syscalls <- 0;
  c.enclave_syscalls <- 0;
  c.threads_spawned <- 0
