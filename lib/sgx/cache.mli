(** Set-associative LRU cache model, used for the L1, the shared LLC and —
    at page granularity — the EPC working set. Addresses are simulated
    byte addresses; the model answers hit/miss, latencies live in
    {!Cost}. *)

type t = {
  line_bits : int;
  set_bits : int;
  assoc : int;
  sets : int array array;
  lengths : int array;
  mutable accesses : int;
  mutable misses : int;
}

(** [create ~size_bytes ~line_bytes ~assoc]; sizes round up to powers of
    two. *)
val create : size_bytes:int -> line_bytes:int -> assoc:int -> t

(** Access one line; [true] = hit. *)
val access_line : t -> int -> bool

(** Access [size] bytes at [addr]; returns [(line_misses, lines_touched)]. *)
val access : t -> int -> int -> int * int

(** Same access as {!access}, returning only the miss count — no tuple
    allocation; single-line accesses reduce to one {!access_line}. *)
val access_misses : t -> int -> int -> int

(** Lines an access of [size] bytes at [addr] touches (pure arithmetic). *)
val lines_touched : t -> int -> int -> int

val miss_ratio : t -> float
val reset_stats : t -> unit
