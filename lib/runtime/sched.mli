(** Deterministic virtual-time scheduler.

    Workers are cooperative fibers (OCaml effect handlers). Each worker
    owns a virtual clock — a {!Vclock.t} of simulated cycles — that its
    code advances as it accounts work. A worker blocks by performing
    {!block}[ cond arrival]: it becomes runnable again when [cond ()]
    holds, and on resumption its clock jumps to at least [arrival ()]
    (the causal timestamp of whatever it waited for). The scheduler always
    resumes the runnable worker with the smallest clock, which makes the
    simulation a deterministic discrete-event execution.

    With a telemetry recorder attached ({!set_telemetry}), every fiber
    lifecycle edge — spawn, start, block, resume, finish — is recorded on
    the fiber's track, giving the critical-path analyzer its
    happens-before skeleton. Disabled telemetry costs one boolean read
    per edge. *)

module Tel = Privagic_telemetry

type worker_state =
  | Not_started of (Vclock.t -> unit)
  | Blocked of (unit -> bool) * (unit -> float)
      * (unit, unit) Effect.Deep.continuation
  | Running
  | Finished

type worker = {
  wid : int;
  name : string;
  track : int;       (** telemetry track the fiber's events land on *)
  clock : Vclock.t;
  mutable state : worker_state;
}

type t = {
  mutable workers : worker list;
  mutable next_id : int;
  mutable steps : int;
  mutable high_water : float;
  mutable tel : Tel.Recorder.t;
  mutable running : worker option;
}

(** How a {!run} ended: normally; with workers still blocked (servers
    awaiting messages); or because the step budget was hit — the payload
    is the total steps taken so far, and the execution is partial. *)
type outcome =
  | Completed
  | Blocked_workers of string list
  | Budget_exhausted of int

exception Deadlock of string list
(** Names of the workers blocked on unsatisfiable conditions (raised only
    when [run ~allow_blocked:false]). *)

val create : unit -> t

(** Attach a telemetry recorder (default: the shared disabled one). *)
val set_telemetry : t -> Tel.Recorder.t -> unit

(** [spawn t ~name ~at body] registers a fiber whose clock starts at [at];
    it runs when the scheduler first picks it. May be called from inside a
    running fiber. [track] assigns the fiber's telemetry track (several
    fibers of one logical worker may share one); fresh by default.
    [parent] overrides the spawning track recorded with the Fiber_spawn
    event (default: the running worker, or -1 for an external spawn); a
    parent equal to [track] marks the fiber as serialized after earlier
    work on its own track. *)
val spawn :
  t -> name:string -> ?track:int -> ?parent:int -> at:float ->
  (Vclock.t -> unit) -> worker

(** Block the calling fiber; only valid inside a fiber run by {!run}. *)
val block : (unit -> bool) -> (unit -> float) -> unit

(** Run until every worker has finished or is blocked on a false condition,
    or the per-invocation [max_steps] budget is hit (reported as
    {!Budget_exhausted}, never silently). Workers left blocked are servers
    awaiting messages unless [allow_blocked] is [false], in which case
    {!Deadlock} is raised. Finished fibers are pruned; their clocks remain
    visible through {!max_clock}. *)
val run : ?allow_blocked:bool -> ?max_steps:int -> t -> outcome

(** Largest clock ever observed across workers, including already-pruned
    finished fibers (the makespan). *)
val max_clock : t -> float

val worker_count : t -> int
