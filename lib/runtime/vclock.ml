(* A mutable virtual clock of simulated cycles.

   A record whose fields are all floats is stored flat, so bumping the
   clock writes the float in place. The previous representation —
   [float ref] — has a polymorphic contents field, which boxes every
   stored float: with one or more charges per executed instruction, that
   boxing was a measurable share of interpreter time (and minor-GC
   pressure) for both engines. *)

type t = { mutable cycles : float }

let make v = { cycles = v }
let[@inline] get c = c.cycles
let[@inline] set c v = c.cycles <- v
let[@inline] add c v = c.cycles <- c.cycles +. v
