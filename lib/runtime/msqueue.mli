(** Lock-free multi-producer multi-consumer FIFO queue (Michael & Scott,
    1996), the communication channel the Privagic runtime stores in unsafe
    memory between worker threads (paper §7.3.2, refs [21, 28]).

    The implementation relies on [Atomic] compare-and-set on the head and
    tail pointers; OCaml's GC plays the role of the hazard pointers of the
    original algorithm, so no manual reclamation is needed. Safe under true
    parallelism (domains). *)

type 'a t

val create : unit -> 'a t

(** Enqueue at the tail. Lock-free: at least one of any set of concurrently
    enqueueing threads makes progress. Pushing onto a closed queue is
    permitted (the flag is advisory, see {!close}); whether such late
    messages are drained is the consumer's protocol. *)
val push : 'a t -> 'a -> unit

(** Dequeue from the head; [None] when the queue is observed empty. *)
val pop : 'a t -> 'a option

val is_empty : 'a t -> bool

(** Close the queue: an advisory shutdown flag for consumers, used by the
    parallel backend's worker-pool teardown. [close] does not modify the
    list structure, so {!push}/{!pop} keep their exact lock-free semantics.

    Memory-ordering argument: OCaml [Atomic] operations are sequentially
    consistent, so the store of [closed := true] cannot be reordered with
    any push that happens-before it in the closing thread, and a consumer
    that observes [is_closed q = true] and subsequently observes
    [pop q = None] has therefore observed a queue state that includes every
    element the closer pushed before closing. The safe drain protocol for a
    consumer is hence: exit only when [is_closed q && pop q = None] — in
    that order the [None] pop linearizes after the close flag was read, so
    no pre-close message can be lost. Producers other than the closer must
    stop pushing once they can observe the flag, or accept that their late
    messages may never be drained. *)
val close : 'a t -> unit

val is_closed : 'a t -> bool

(** Blocking drain: wait (calling [idle] between attempts) until an
    element is available ([Some]) or the queue is both closed and
    observed empty per the drain protocol above ([None]). Consumers that
    loop on [pop_or_closed] until it returns [None] process every element
    pushed before {!close} — the serving layer's executors and the
    parallel backend's teardown both rely on this. *)
val pop_or_closed : 'a t -> idle:(unit -> unit) -> 'a option

(** Snapshot length — exact only in quiescent states; used by tests and by
    the simulator's queue-depth statistics. *)
val length : 'a t -> int
