(* Michael & Scott two-lock-free queue with a sentinel node. [head] always
   points at the sentinel; values live in the successors. *)

type 'a node = { value : 'a option; next : 'a node option Atomic.t }

type 'a t = {
  head : 'a node Atomic.t;
  tail : 'a node Atomic.t;
  closed : bool Atomic.t;
}

let mk_node value = { value; next = Atomic.make None }

let create () =
  let sentinel = mk_node None in
  {
    head = Atomic.make sentinel;
    tail = Atomic.make sentinel;
    closed = Atomic.make false;
  }

let rec push q v =
  let node = mk_node (Some v) in
  let tail = Atomic.get q.tail in
  match Atomic.get tail.next with
  | None ->
    if Atomic.compare_and_set tail.next None (Some node) then
      (* linearization point passed; swing the tail (may fail harmlessly
         if another thread already advanced it) *)
      ignore (Atomic.compare_and_set q.tail tail node)
    else push_retry q node
  | Some next ->
    (* help a stalled enqueuer finish, then retry *)
    ignore (Atomic.compare_and_set q.tail tail next);
    push_retry q node

and push_retry q node =
  let tail = Atomic.get q.tail in
  match Atomic.get tail.next with
  | None ->
    if Atomic.compare_and_set tail.next None (Some node) then
      ignore (Atomic.compare_and_set q.tail tail node)
    else push_retry q node
  | Some next ->
    ignore (Atomic.compare_and_set q.tail tail next);
    push_retry q node

let rec pop q =
  let head = Atomic.get q.head in
  match Atomic.get head.next with
  | None -> None
  | Some next ->
    if Atomic.compare_and_set q.head head next then (
      (* ensure the tail is not left behind the new head *)
      let tail = Atomic.get q.tail in
      if tail == head then ignore (Atomic.compare_and_set q.tail tail next);
      next.value)
    else pop q

let is_empty q = Atomic.get (Atomic.get q.head).next = None

let close q = Atomic.set q.closed true

let is_closed q = Atomic.get q.closed

(* Blocking drain helper implementing the documented protocol: exit only
   on a None pop observed after the close flag, so that no element pushed
   before [close] is ever lost. [idle] is the caller's backoff (the
   consumers of the parallel backend spin-then-yield; a server worker may
   sleep). *)
let rec pop_or_closed q ~idle =
  match pop q with
  | Some v -> Some v
  | None ->
    if is_closed q then
      (* the None pop below linearizes after the close flag was read *)
      match pop q with Some v -> Some v | None -> None
    else begin
      idle ();
      pop_or_closed q ~idle
    end

let length q =
  let rec go acc node =
    match Atomic.get node.next with
    | None -> acc
    | Some next -> go (acc + 1) next
  in
  go 0 (Atomic.get q.head)
