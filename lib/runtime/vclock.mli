(** A mutable virtual clock of simulated cycles.

    Flat single-float record: updates store the float in place, where a
    [float ref] would box every stored value — the executor charges the
    clock at least once per instruction, making that distinction matter.
    The type is exposed so hot loops can update [cycles] directly. *)

type t = { mutable cycles : float }

val make : float -> t
val get : t -> float
val set : t -> float -> unit
val add : t -> float -> unit
