(* Deterministic virtual-time scheduler.

   Workers are cooperative fibers (OCaml effect handlers). Each worker owns
   a virtual clock (a [Vclock.t] of simulated cycles) that its code
   advances as it accounts work; a worker blocks by performing
   [Block (cond, arrival)]: it becomes runnable again when [cond ()] holds,
   and on resumption its clock jumps to at least [arrival ()] — the causal
   timestamp of whatever it waited for. The scheduler always resumes the
   runnable worker with the smallest clock, making the simulation a
   deterministic discrete-event execution: no wall clock, no races,
   reproducible benchmark numbers.

   Telemetry: when a recorder is attached, every fiber lifecycle edge
   (spawn, start, block, resume, finish) is recorded on the fiber's track
   — the happens-before skeleton the critical-path analyzer walks. The
   spawner controls track identity ([spawn ~track]) so several fibers of
   one logical worker share a track; a disabled recorder costs one boolean
   read per edge. *)

module Tel = Privagic_telemetry

type _ Effect.t +=
  | Block : (unit -> bool) * (unit -> float) -> unit Effect.t

type worker_state =
  | Not_started of (Vclock.t -> unit)
  | Blocked of (unit -> bool) * (unit -> float)
      * (unit, unit) Effect.Deep.continuation
  | Running
  | Finished

type worker = {
  wid : int;
  name : string;
  track : int;
  clock : Vclock.t;
  mutable state : worker_state;
}

type t = { mutable workers : worker list; mutable next_id : int;
           mutable steps : int;
           mutable high_water : float;      (* clocks of pruned fibers *)
           mutable tel : Tel.Recorder.t;
           mutable running : worker option }

(* How a [run] ended. [Blocked_workers] names the workers still waiting
   (servers awaiting their next message, or a deadlock); [Budget_exhausted]
   reports that [max_steps] was hit — callers must not mistake the partial
   execution for a completed one. *)
type outcome =
  | Completed
  | Blocked_workers of string list
  | Budget_exhausted of int

exception Deadlock of string list

let create () =
  { workers = []; next_id = 0; steps = 0; high_water = 0.0;
    tel = Tel.Recorder.null; running = None }

let set_telemetry t r = t.tel <- r

(* [parent] overrides the spawning track recorded with the fiber's
   Fiber_spawn event (default: the currently running worker, -1 when the
   spawn comes from outside the scheduler). A parent equal to [track]
   marks the fiber as serialized after earlier work on its own track —
   how a request entering an already-busy thread is modeled. *)
let spawn t ~name ?track ?parent ~at body =
  let track =
    match track with
    | Some k -> k
    | None -> Tel.Recorder.fresh_track t.tel name
  in
  let w =
    { wid = t.next_id; name; track; clock = Vclock.make at; state = Not_started body }
  in
  t.next_id <- t.next_id + 1;
  t.workers <- t.workers @ [ w ];
  if Tel.Recorder.enabled t.tel then begin
    let arg =
      match parent with
      | Some p -> p
      | None -> ( match t.running with Some p -> p.track | None -> -1)
    in
    Tel.Recorder.record t.tel ~at ~track ~name ~arg Tel.Event.Fiber_spawn
  end;
  w

(* Called from inside a worker fiber: wait until [cond] holds; the clock
   then advances to at least [arrival ()]. *)
let block cond arrival = Effect.perform (Block (cond, arrival))

let handler (w : worker) =
  let open Effect.Deep in
  {
    retc = (fun () -> w.state <- Finished);
    exnc = (fun e -> raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Block (cond, arrival) ->
          Some
            (fun (k : (a, unit) continuation) ->
              w.state <- Blocked (cond, arrival, k))
        | _ -> None);
  }

let step_worker t w =
  let tel_on = Tel.Recorder.enabled t.tel in
  t.running <- Some w;
  (match w.state with
  | Not_started body ->
    w.state <- Running;
    if tel_on then
      Tel.Recorder.record t.tel ~at:(Vclock.get w.clock) ~track:w.track ~name:w.name
        Tel.Event.Fiber_start;
    Effect.Deep.match_with (fun () -> body w.clock) () (handler w)
  | Blocked (_, arrival, k) ->
    let arr = arrival () in
    Vclock.set w.clock (Float.max (Vclock.get w.clock) arr);
    w.state <- Running;
    if tel_on then
      Tel.Recorder.record t.tel ~at:(Vclock.get w.clock) ~track:w.track ~farg:arr
        Tel.Event.Fiber_resume;
    Effect.Deep.continue k ()
  | Running | Finished -> invalid_arg "Sched.step_worker");
  t.running <- None;
  if tel_on then (
    match w.state with
    | Blocked _ ->
      Tel.Recorder.record t.tel ~at:(Vclock.get w.clock) ~track:w.track
        Tel.Event.Fiber_block
    | Finished ->
      Tel.Recorder.record t.tel ~at:(Vclock.get w.clock) ~track:w.track ~name:w.name
        Tel.Event.Fiber_finish
    | Not_started _ | Running -> ())

let runnable w =
  match w.state with
  | Not_started _ -> true
  | Blocked (cond, _, _) -> cond ()
  | Running | Finished -> false

(* Run until every worker is finished or blocked on an unsatisfiable
   condition. New workers spawned during the run are picked up. Workers
   left blocked are not an error when [allow_blocked] — they are servers
   waiting for their next message. [max_steps] bounds the steps of *this*
   invocation; hitting it returns [Budget_exhausted] instead of raising,
   so callers can distinguish exhaustion from completion. *)
let run ?(allow_blocked = true) ?(max_steps = max_int) t : outcome =
  let result = ref Completed in
  let budget = ref max_steps in
  let continue = ref true in
  while !continue do
    if !budget <= 0 then begin
      result := Budget_exhausted t.steps;
      continue := false
    end
    else begin
      t.steps <- t.steps + 1;
      decr budget;
      (* drop finished fibers so long sessions do not accumulate garbage;
         remember their clocks for the makespan *)
      t.workers <-
        List.filter
          (fun w ->
            match w.state with
            | Finished ->
              t.high_water <- Float.max t.high_water (Vclock.get w.clock);
              false
            | _ -> true)
          t.workers;
      let candidates = List.filter runnable t.workers in
      match candidates with
      | [] ->
        let blocked =
          List.filter_map
            (fun w ->
              match w.state with Blocked _ -> Some w.name | _ -> None)
            t.workers
        in
        if blocked <> [] then begin
          if not allow_blocked then raise (Deadlock blocked);
          result := Blocked_workers blocked
        end;
        continue := false
      | first :: rest ->
        let best =
          List.fold_left
            (fun best w ->
              if
                (Vclock.get w.clock) < (Vclock.get best.clock)
                || ((Vclock.get w.clock) = (Vclock.get best.clock) && w.wid < best.wid)
              then w
              else best)
            first rest
        in
        step_worker t best
    end
  done;
  !result

(* Largest clock ever observed: the makespan of the simulated execution.
   Includes fibers already pruned after finishing. *)
let max_clock t =
  List.fold_left (fun acc w -> Float.max acc (Vclock.get w.clock)) t.high_water
    t.workers

let worker_count t = List.length t.workers
