(** Instruction-level executor shared by the plain interpreter ({!Interp})
    and the partitioned one ({!Pinterp}). The driver supplies hooks for
    everything that differs: call dispatch, thread spawning,
    per-instruction preludes (barriers), stack-slot placement. Every
    instruction charges [cycles_per_instr]; every memory access goes
    through the cache model with the current CPU zone and the zone the
    data lives in. *)

open Privagic_pir
module Sgx = Privagic_sgx

exception Trap of string

(** Which executor runs function bodies: the original tree-walker or the
    index-resolved loop over the flattened image ({!Image}). *)
type engine = Walk | Image

val engine_of_string : string -> engine option
val engine_name : engine -> string

(** The session default: [Image] unless overridden by the
    [PRIVAGIC_ENGINE] environment variable ([walk] or [image]).
    @raise Invalid_argument on an unknown engine name. *)
val default_engine : unit -> engine

type t = {
  m : Pmodule.t;
  heap : Heap.t;
  layout : Layout.t;
  machine : Sgx.Machine.t;
  globals : (string, int) Hashtbl.t;       (** global name -> address *)
  func_addrs : (string, int) Hashtbl.t;    (** function pointers *)
  addr_funcs : (int, string) Hashtbl.t;
  out : Buffer.t;                          (** program output *)
  mutable cpu : Sgx.Machine.zone;          (** current processor mode *)
  mutable clock : Privagic_runtime.Vclock.t;               (** current worker's clock *)
  mutable current_func : string;
  mutable steps : int;
  fuel : int;
  data_map : Heap.zone -> Sgx.Machine.zone;
  mutable hooks : hooks;
  reg_ty_cache : (string, (Func.t * (int, Ty.t) Hashtbl.t) list) Hashtbl.t;
      (** keyed by name, disambiguated by physical identity (specialized
          instances share a bare name but not their registers) *)
  mutable run_func : (t -> Func.t -> Rvalue.t array -> Rvalue.t) option;
      (** engine override, installed by [Image.install]; [None] walks *)
  mutable extern_tap : (t -> string -> Rvalue.t array -> unit) option;
      (** trace monitor hook ({!Privagic_robust}): observes every external
          call before it executes — declassification authorization, program
          output, simulated network sends. Copied by [clone_shared], so
          parallel workers inherit the monitor. *)
  mutable externs : int;
      (** extern dispatches retired on this executor (obs counter) *)
  declass : (string, int ref) Hashtbl.t;
      (** declassification calls per color name; per-executor, summed at
          obs metrics registration *)
  mutable obs_ring : Privagic_obs.Ring.t option;
      (** when attached, extern dispatches drop a point event here; [None]
          keeps the obs-off dispatch path a single int increment *)
}

and hooks = {
  h_call : t -> Instr.t -> string -> Rvalue.t array -> Rvalue.t;
  h_callind : t -> Instr.t -> Rvalue.t -> Rvalue.t array -> Rvalue.t;
  h_spawn : t -> Instr.t -> string -> Rvalue.t array -> unit;
  h_pre_instr : t -> Instr.t -> unit;
  h_alloca_zone : t -> Ty.t -> Heap.zone;
}

val default_data_map : Heap.zone -> Sgx.Machine.zone

(** Add cycles to the current clock. *)
val charge : t -> float -> unit

(** Charge one access through the cache model. *)
val charge_mem : t -> int -> int -> unit

val charge_range : t -> int -> int -> unit

val create :
  ?fuel:int ->
  ?data_map:(Heap.zone -> Sgx.Machine.zone) ->
  Pmodule.t -> Heap.t -> Layout.t -> Sgx.Machine.t -> hooks -> t

(** Per-worker executor for the parallel backend: shares the module, heap,
    layout and global/function-address tables, but owns its machine, clock,
    CPU mode, output buffer and hooks. Pre-warm the shared tables with
    {!warm_caches} before domains start so they are read-only at run time. *)
val clone_shared : t -> machine:Sgx.Machine.t -> hooks:hooks -> t

(** Populate the lazily-built shared tables (function addresses,
    register-type tables) for every module function plus [extra]
    (partition chunks), so concurrent readers never mutate them. *)
val warm_caches : t -> extra:Func.t list -> unit

val func_addr : t -> string -> int
val size_of_ty : t -> Ty.t -> int
val scalar_size : Ty.t -> int

(** Execute a function with the given arguments in registers 0..n-1.
    @raise Trap on runtime errors (division by zero, unknown externals,
    fuel exhaustion). *)
val exec_func : t -> Func.t -> Rvalue.t array -> Rvalue.t

(** The tree-walking executor body, bypassing [run_func]: the image
    engine's fallback for functions absent from the image. Does not
    save/restore [current_func] — callers go through {!exec_func}. *)
val exec_func_body : t -> Func.t -> Rvalue.t array -> Rvalue.t

(** Cached static register types of [f] (per physical instance). *)
val reg_tys : t -> Func.t -> (int, Ty.t) Hashtbl.t

(** {2 Shared evaluation helpers (used by the image engine)} *)

val exec_binop : Instr.binop -> Rvalue.t -> Rvalue.t -> Rvalue.t
val exec_icmp : Instr.icmp -> Rvalue.t -> Rvalue.t -> Rvalue.t
val exec_fcmp : Instr.icmp -> Rvalue.t -> Rvalue.t -> Rvalue.t
val exec_cast : Instr.castop -> Rvalue.t -> Ty.t -> Rvalue.t

(** Charge + perform one scalar memory access of the given static type. *)
val do_load : t -> int -> Ty.t -> Rvalue.t

val do_store : t -> int -> Ty.t -> Rvalue.t -> unit

(** Resolve an indirect-call target address back to a function name. *)
val resolve_func : t -> Rvalue.t -> string

(** Allocate every global in the zone [zone_of] assigns it and store the
    initializers. *)
val init_globals : t -> (string -> Heap.zone) -> unit

(** §7.2 extension point: [alloc_node2] allocates the struct its
    destination global points to (splitting multi-color fields) and
    publishes the address through that global. *)
val alloc_node2 :
  t -> zone_for:(Ty.t -> Heap.zone) -> Instr.t -> Rvalue.t option

(** Allocation-site analysis (§7.2): (function, malloc call id) -> the
    struct type its result is cast to. *)
val alloc_sites : Pmodule.t -> (string * int, Ty.t) Hashtbl.t
