(** Backend-agnostic dispatch math for executing a partition plan.

    The virtual-time simulator ({!Pinterp}) and the real-parallel backend
    ([Privagic_parallel.Parallel]) make the same decisions from the same
    plan: which chunk a participant runs, who leads a call site, who
    receives the return value, which child sequence number an activation
    gets. Holding those decisions here keeps the two backends from
    drifting; they keep only what genuinely differs (virtual clocks and
    fibers vs. domains and queues).

    All lookups are exception-free (option-returning); each backend wraps
    misses in its own error type. Only {!dispatch_extern} may raise, and
    only [Exec.Trap], which both backends already treat as a program
    trap. *)

open Privagic_pir
open Privagic_secure
open Privagic_partition
module Sgx = Privagic_sgx

type t

(** Build the dispatcher: all derived plan math (site presence, per-chunk
    register-use sets, allocation sites) is computed eagerly into
    immutable tables, so parallel workers share one instance without
    locking. Only the sequence agreement is runtime-mutable, behind its
    own internal mutex. [sites] reuses an existing allocation-site table
    (e.g. the image's) instead of recomputing one. *)
val create : ?sites:(string * int, Ty.t) Hashtbl.t -> Plan.t -> t

(** {1 Color/zone mapping} *)

val zone_of_color : Color.t -> Heap.zone
val cpu_of_color : Color.t -> Sgx.Machine.zone

(** §7.1: a global's zone per the plan's placement; unplaced → unsafe. *)
val global_zone : Plan.t -> string -> Heap.zone

(** Stack slots of a colored type go to that enclave; everything else
    follows the executing worker's partition. *)
val alloca_zone : Ty.t -> current:Color.t -> Heap.zone

(** {1 Plan lookups} *)

val find_pfunc : t -> Infer.instance_key -> Plan.pfunc option

(** The chunk a participant of color [c] executes: its own chunk, or the
    single Free chunk of a pure-F (replicated) function. *)
val chunk_for : Plan.pfunc -> Color.t -> Func.t option

val find_entry : Plan.t -> string -> Plan.entry_plan option

(** Every chunk function of the plan (for {!Exec.warm_caches}). *)
val chunk_funcs : Plan.t -> Func.t list

(** Resolve a chunk function name back to (instance, pfunc, color) — used
    by the forged-spawn injection of both backends. *)
val locate_chunk :
  Plan.t -> string -> (Infer.instance_key * Plan.pfunc * Color.t) option

(** Colors of the chunks containing instruction [id]: the participants of
    a call site within a non-pure-F caller. Precomputed at create. *)
val site_presence : t -> Plan.pfunc -> int -> Color.t list

(** Does chunk [f] read register [r]? Precomputed at create. *)
val chunk_needs : t -> Func.t -> int -> bool

(** §7.3.3: does instruction [id] carry a synchronization barrier for this
    set of participants? *)
val barrier_at : Plan.pfunc -> int -> participants:Color.t list -> bool

(** {1 Sequence agreement} *)

val fresh_seq : t -> int

(** Deterministically agreed child sequence number for the n-th execution
    of call site [instr] within parent activation [seq]; participants
    ([who]) agree without communication because they execute the
    replicated call site the same number of times. *)
val child_seq : t -> seq:int -> who:Color.t -> fname:string -> instr:int -> int

(** {1 Call-site layout (§7.3.2)} *)

type site = {
  s_leader : Color.t;  (** starts the missing chunks *)
  s_inter : Color.t list;  (** callee colors already at the site *)
  s_spawned : Color.t list;  (** callee colors that must be spawned *)
  s_ret_sender : Color.t option;  (** who sends the return value *)
}

val site_layout :
  p_site:Color.t list -> callee_cs:Color.t list -> self:Color.t -> site

(** Participants outside the callee whose chunk reads the call's result
    register — they receive it in a cont message. *)
val ret_needers :
  t ->
  caller_pf:Plan.pfunc ->
  p_site:Color.t list ->
  callee_cs:Color.t list ->
  Instr.t ->
  Color.t list

(** Computed (register) F arguments at a call site — each travels to the
    spawned chunks in its own cont message, costing one crossing. *)
val f_reg_args : Plan.call_plan -> Instr.t -> int

(** §6.3/§7.3.4: the instance key under which an indirect call enters a
    defined function. *)
val indirect_entry_key : Plan.t -> Func.t -> Infer.instance_key

(** {1 External dispatch} *)

(** Execute a call to an undefined function: §7.2 allocation special cases
    (multicolor structs, [alloc_node2]), syscall-cost charging, then
    {!Externals.dispatch}.
    @raise Exec.Trap on an unknown external. *)
val dispatch_extern :
  t ->
  Exec.t ->
  color:Color.t ->
  caller:string ->
  Instr.t ->
  string ->
  Rvalue.t array ->
  Rvalue.t
