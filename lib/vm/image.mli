(** The flattened linked program image and its index-resolved engine.

    {!build} lowers a checked plan (or a plain module) once into an
    immutable image: functions as dense arrays of flat blocks, branch
    targets and phi predecessors as integer indices, operand symbols /
    load-store element types / gep scales / barrier candidacy precomputed
    into side arrays, global addresses frozen to constants. {!install}
    then points an executor's [run_func] at the image engine — a tight
    loop with no per-step allocation or string hashing. Functions absent
    from the image fall back to the tree-walker, which stays available as
    the differential oracle ([--engine=walk]).

    String-literal interning and function-pointer materialization stay
    lazy on purpose: they allocate rodata on first touch and the cache
    model is address-sensitive, so resolving them at link time would
    shift every virtual-time latency relative to the walk oracle. *)

open Privagic_pir
open Privagic_partition

type t

(** Lower every module function — plus, when [plan] is given, every chunk
    function with its barrier-candidate flags — against executor [ex].
    Call after [Exec.init_globals] so global addresses freeze into the
    image. [sites] reuses an existing allocation-site table instead of
    recomputing one. *)
val build :
  ?plan:Plan.t -> ?sites:(string * int, Ty.t) Hashtbl.t -> Exec.t -> t

(** §7.2 allocation-site analysis, hoisted to link time. *)
val sites : t -> (string * int, Ty.t) Hashtbl.t

(** Point [ex.run_func] at the image engine. The executor (and any
    [Exec.clone_shared] made afterwards) then runs image code for every
    function in the image and walks the rest. *)
val install : Exec.t -> t -> unit

(** Whether this (physical) function was lowered into the image. *)
val covers : t -> Func.t -> bool

(** Number of lowered function bodies (diagnostics). *)
val func_count : t -> int
