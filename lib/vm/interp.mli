(** Plain (unpartitioned) interpreter: the functional reference and the
    whole-program baselines. Spawned threads run synchronously at the
    spawn point (sequential reference semantics); the interleaving
    explorer for Fig. 3 lives in the dataflow library. *)

module Sgx = Privagic_sgx

type policy = {
  p_name : string;
  p_cpu : Sgx.Machine.zone;                  (** processor mode *)
  p_zone : Heap.zone;                        (** where all data lives *)
  p_entry_overhead : Sgx.Machine.t -> float; (** charged per entry call *)
}

(** Normal mode, data in normal memory, free entry. *)
val unprotected : policy

(** Everything inside one enclave; syscalls are proxied (expensive);
    datasets beyond the EPC page. *)
val scone : policy

(** The single-enclave Intel-SDK port: one lock-based switchless ECALL per
    exported operation. *)
val intel_sdk : policy

type t = {
  exec : Exec.t;
  policy : policy;
  sites : (string * int, Privagic_pir.Ty.t) Hashtbl.t;
  mutable spawned : int;
}

(** [engine] selects the execution engine (default
    [Exec.default_engine ()]): [Image] lowers the module into a flattened
    linked image and runs the index-resolved hot loop; [Walk] keeps the
    tree-walking oracle. *)
val create :
  ?config:Sgx.Config.t ->
  ?cost:Sgx.Cost.t ->
  ?mode:Privagic_secure.Mode.t ->
  ?engine:Exec.engine ->
  Privagic_pir.Pmodule.t ->
  policy ->
  t

(** Execute an exported function (resets the stacks, charges the policy's
    entry overhead). *)
val call : t -> string -> Rvalue.t list -> Rvalue.t

val clock : t -> float
val output : t -> string
val machine : t -> Sgx.Machine.t
