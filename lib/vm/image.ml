(* The flattened linked program image (the "link" step of the runtime).

   A checked plan (or a plain module) is lowered ONCE into an immutable
   image: every function becomes a dense array of flat blocks; block
   labels, branch targets and phi predecessors are resolved to integer
   indices; operand symbols, load/store element types, gep field offsets
   and scales, allocation sites and barrier candidacy are precomputed into
   side arrays. The engine (run over the image by Exec.run_func) is then a
   tight index-resolved loop: no per-step allocation, no string hashing,
   no list scans.

   What stays deliberately *lazy* (resolved at run time, exactly like the
   tree-walker): string-literal interning and function-pointer
   materialization. Both allocate rodata on first touch, and the cache
   model is address-sensitive — resolving them eagerly at link time would
   shift heap addresses and change every virtual-time latency relative to
   the walk oracle. The parallel backend pre-warms function addresses
   (Exec.warm_caches) before domains start, in both engines alike.

   Fidelity contract: for every program the image engine must produce the
   same results, the same trap messages, the same step counts and the same
   virtual-time charges (in the same order) as the tree-walker. Functions
   the lowering cannot handle are simply left out of the image and fall
   back to the walker. *)

open Privagic_pir
open Privagic_partition
module Sgx = Privagic_sgx
module Vclock = Privagic_runtime.Vclock

(* ------------------------------------------------------------------ *)
(* image types *)

type operand =
  | OReg of int
  | OConst of Rvalue.t  (* ints, floats, null/undef, frozen global addrs *)
  | OStr of string      (* interned on first use, like the walker *)
  | OFunc of string     (* function pointer, materialized on first use *)
  | OGlobal of string   (* a global unknown at link time: traps like walk *)

type edge = { e_target : int; e_pos : int }
(* [e_pos]: the source block's index in the target's canonical predecessor
   order — the phi-input position this edge selects. -1 on function entry. *)

type lterm =
  | LBr of edge
  | LCondbr of operand * edge * edge
  | LRet_void
  | LRet of operand
  | LUnreachable

type lstep =
  | LFInline of int         (* inline field: add the precomputed offset *)
  | LFIndirect of int       (* indirection slot at offset: load + charge *)
  | LFIndirectAuth of int   (* same, slot also carries a verified MAC *)
  | LIndex of operand * int (* index operand, element size *)

type lop =
  | LAlloca of Ty.t
  | LLoad of operand * Ty.t          (* pointer, static element type *)
  | LStore of operand * operand * Ty.t  (* value, pointer, element type *)
  | LBinop of Instr.binop * operand * operand
  | LIcmp of Instr.icmp * operand * operand
  | LFcmp of Instr.icmp * operand * operand
  | LCast of Instr.castop * operand * Ty.t
  | LGep of operand * lstep array
  | LCall of string * operand array
  | LCallind of operand * operand array
  | LSelect of operand * operand * operand
  | LSpawn of string * operand array
  | LBad of string  (* statically detected type error; traps if executed *)

type lins = {
  l_instr : Instr.t;  (* the original instruction: unchanged hooks ABI *)
  l_op : lop;
  l_dst : int;        (* destination register; -1 when void *)
  l_pre : bool;       (* h_pre_instr may act here (barrier candidate) *)
}

type lphi = {
  ph_dst : int;
  ph_srcs : operand option array;
      (* indexed by predecessor position; None = the phi misses that
         CFG predecessor and executing the edge traps *)
}

type lblock = {
  lb_label : string;
  lb_preds : string array;  (* canonical predecessor labels (for traps) *)
  lb_phis : lphi array;
  lb_ins : lins array;
  lb_term : lterm;
}

type code = {
  c_func : Func.t;
  c_blocks : lblock array;
  c_nregs : int;
  c_maxphi : int;  (* widest phi row, sizes the per-frame scratch *)
}

type t = {
  codes : (string, (Func.t * code) list) Hashtbl.t;
      (* keyed by name, disambiguated by physical identity — specialized
         instances share a bare name but carry different bodies *)
  img_sites : (string * int, Ty.t) Hashtbl.t;
      (* §7.2 allocation-site analysis, hoisted to link time *)
}

let sites t = t.img_sites

(* ------------------------------------------------------------------ *)
(* lowering *)

exception Unsupported

let lower_operand (ex : Exec.t) (v : Value.t) : operand =
  match v with
  | Value.Reg r -> OReg r
  | Value.Int (i, _) -> OConst (Rvalue.Int i)
  | Value.Float f -> OConst (Rvalue.Flt f)
  | Value.Str s -> OStr s
  | Value.Global g -> (
    (* globals are allocated by init_globals before the image is built,
       so their addresses freeze into constants *)
    match Hashtbl.find_opt ex.Exec.globals g with
    | Some a -> OConst (Rvalue.Ptr a)
    | None -> OGlobal g)
  | Value.Func f -> OFunc f
  | Value.Null _ -> OConst (Rvalue.Ptr 0)
  | Value.Undef _ -> OConst (Rvalue.Int 0L)

(* Static element type behind the pointer operand of a load/store —
   the link-time twin of Exec.elem_ty. *)
let static_elem_ty (ex : Exec.t) (tys : (int, Ty.t) Hashtbl.t) (p : Value.t)
    (fallback : Ty.t) : Ty.t =
  match p with
  | Value.Reg r -> (
    match Hashtbl.find_opt tys r with
    | Some { Ty.desc = Ty.Ptr e; _ } -> e
    | _ -> fallback)
  | Value.Global g -> (
    match Pmodule.find_global ex.Exec.m g with
    | Some gl -> gl.Pmodule.gty
    | None -> fallback)
  | Value.Str _ -> Ty.i8
  | _ -> fallback

(* Gep steps: the type evolution along the step list is fully static, so
   field slots (offset, indirection, MAC) and element scales resolve at
   link time — the struct layouts are all frozen by Layout.create. A field
   step on a statically-non-struct type lowers to the walker's trap. *)
let lower_gep (ex : Exec.t) (pointee : Ty.t) (steps : Instr.gep_step list) :
    (lstep list, string) result =
  let cur = ref pointee in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | Instr.Field k :: rest -> (
      match !cur.Ty.desc with
      | Ty.Struct sname ->
        let l = Layout.struct_layout ex.Exec.layout sname in
        let step =
          match l.Layout.ls_fields.(k) with
          | Layout.Inline (off, _) -> LFInline off
          | Layout.Indirect (off, _, _) ->
            if ex.Exec.layout.Layout.auth then LFIndirectAuth off
            else LFIndirect off
        in
        cur := Pmodule.field_ty ex.Exec.m sname k;
        go (step :: acc) rest
      | _ -> Error "gep: field step on a non-struct")
    | Instr.Index v :: rest ->
      let o = lower_operand ex v in
      let scale =
        match !cur.Ty.desc with
        | Ty.Arr (elt, _) ->
          cur := elt;
          Exec.size_of_ty ex elt
        | _ -> Exec.size_of_ty ex !cur
      in
      go (LIndex (o, scale) :: acc) rest
  in
  go [] steps

let lower_ins (ex : Exec.t) (tys : (int, Ty.t) Hashtbl.t)
    (pre : int -> bool) (i : Instr.t) : lins =
  let lop = lower_operand ex in
  let dst_if_value = if Ty.equal i.Instr.ty Ty.void then -1 else i.Instr.id in
  let op, dst =
    match i.Instr.op with
    | Instr.Alloca ty -> (LAlloca ty, i.Instr.id)
    | Instr.Load p ->
      let ty =
        if Ty.equal i.Instr.ty Ty.void then static_elem_ty ex tys p Ty.i64
        else i.Instr.ty
      in
      (LLoad (lop p, ty), i.Instr.id)
    | Instr.Store (v, p) ->
      (LStore (lop v, lop p, static_elem_ty ex tys p Ty.i64), -1)
    | Instr.Binop (op, a, b) -> (LBinop (op, lop a, lop b), i.Instr.id)
    | Instr.Icmp (op, a, b) -> (LIcmp (op, lop a, lop b), i.Instr.id)
    | Instr.Fcmp (op, a, b) -> (LFcmp (op, lop a, lop b), i.Instr.id)
    | Instr.Cast (op, v, ty) -> (LCast (op, lop v, ty), i.Instr.id)
    | Instr.Gep (pointee, base, steps) -> (
      match lower_gep ex pointee steps with
      | Ok ls -> (LGep (lop base, Array.of_list ls), i.Instr.id)
      | Error msg -> (LBad msg, i.Instr.id))
    | Instr.Call (callee, args) ->
      (LCall (callee, Array.of_list (List.map lop args)), dst_if_value)
    | Instr.Callind (fv, args) ->
      (LCallind (lop fv, Array.of_list (List.map lop args)), dst_if_value)
    | Instr.Phi _ -> raise Unsupported (* handled per-block *)
    | Instr.Select (c, a, b) -> (LSelect (lop c, lop a, lop b), i.Instr.id)
    | Instr.Spawn (callee, args) ->
      (LSpawn (callee, Array.of_list (List.map lop args)), -1)
  in
  { l_instr = i; l_op = op; l_dst = dst; l_pre = pre i.Instr.id }

let lower_func (ex : Exec.t) (pre : int -> bool) (f : Func.t) : code =
  let tys = Exec.reg_tys ex f in
  let blocks = Array.of_list f.Func.blocks in
  let nb = Array.length blocks in
  if nb = 0 then raise Unsupported;
  let index = Hashtbl.create (nb * 2) in
  Array.iteri
    (fun bi (b : Block.t) -> Hashtbl.replace index b.Block.label bi)
    blocks;
  (* canonical predecessor order: discovery order over blocks in layout
     order, then successors in terminator order *)
  let preds_rev = Array.make nb [] in
  Array.iteri
    (fun bi (b : Block.t) ->
      List.iter
        (fun l ->
          match Hashtbl.find_opt index l with
          | Some ti -> preds_rev.(ti) <- bi :: preds_rev.(ti)
          | None -> raise Unsupported)
        (Block.successors b))
    blocks;
  let preds = Array.map (fun l -> Array.of_list (List.rev l)) preds_rev in
  let edge ~src l =
    match Hashtbl.find_opt index l with
    | None -> raise Unsupported
    | Some ti ->
      let ps = preds.(ti) in
      let rec find k =
        if k >= Array.length ps then raise Unsupported
        else if ps.(k) = src then k
        else find (k + 1)
      in
      { e_target = ti; e_pos = find 0 }
  in
  let maxphi = ref 0 in
  let lblocks =
    Array.mapi
      (fun bi (b : Block.t) ->
        let pred_labels =
          Array.map (fun pi -> blocks.(pi).Block.label) preds.(bi)
        in
        let phis, rest =
          List.partition
            (fun (i : Instr.t) ->
              match i.Instr.op with Instr.Phi _ -> true | _ -> false)
            b.Block.instrs
        in
        let lphis =
          Array.of_list
            (List.map
               (fun (i : Instr.t) ->
                 let entries =
                   match i.Instr.op with
                   | Instr.Phi entries -> entries
                   | _ -> assert false
                 in
                 {
                   ph_dst = i.Instr.id;
                   ph_srcs =
                     Array.map
                       (fun lbl ->
                         Option.map (lower_operand ex)
                           (List.assoc_opt lbl entries))
                       pred_labels;
                 })
               phis)
        in
        if Array.length lphis > !maxphi then maxphi := Array.length lphis;
        let lterm =
          match b.Block.term with
          | Instr.Br l -> LBr (edge ~src:bi l)
          | Instr.Condbr (c, tl, fl) ->
            LCondbr (lower_operand ex c, edge ~src:bi tl, edge ~src:bi fl)
          | Instr.Ret None -> LRet_void
          | Instr.Ret (Some v) -> LRet (lower_operand ex v)
          | Instr.Unreachable -> LUnreachable
        in
        {
          lb_label = b.Block.label;
          lb_preds = pred_labels;
          lb_phis = lphis;
          lb_ins = Array.of_list (List.map (lower_ins ex tys pre) rest);
          lb_term = lterm;
        })
      blocks
  in
  {
    c_func = f;
    c_blocks = lblocks;
    c_nregs = f.Func.next_reg;
    c_maxphi = !maxphi;
  }

(* ------------------------------------------------------------------ *)
(* building the image *)

let build ?plan ?sites (ex : Exec.t) : t =
  let img_sites =
    match sites with Some s -> s | None -> Exec.alloc_sites ex.Exec.m
  in
  (* barrier candidacy per chunk function: the union of pf_barriers over
     every pfunc owning the (physical) function. A superset is enough —
     the hooks re-check Dispatch.barrier_at precisely; instructions NOT in
     the set provably never act, so the hot loop skips the hook call. *)
  let barriers : (string, (Func.t * (int, unit) Hashtbl.t) list) Hashtbl.t =
    Hashtbl.create 16
  in
  let chunk_funcs = ref [] in
  (match plan with
  | None -> ()
  | Some (p : Plan.t) ->
    Hashtbl.iter
      (fun _ (pf : Plan.pfunc) ->
        List.iter
          (fun (ci : Plan.chunk_info) ->
            let f = ci.Plan.ci_func in
            let bucket =
              match Hashtbl.find_opt barriers f.Func.name with
              | Some l -> l
              | None -> []
            in
            match List.find_opt (fun (g, _) -> g == f) bucket with
            | Some (_, set) ->
              Hashtbl.iter
                (fun id () -> Hashtbl.replace set id ())
                pf.Plan.pf_barriers
            | None ->
              let set = Hashtbl.copy pf.Plan.pf_barriers in
              Hashtbl.replace barriers f.Func.name ((f, set) :: bucket);
              chunk_funcs := f :: !chunk_funcs)
          pf.Plan.pf_chunks)
      p.Plan.pfuncs);
  let pre_for (f : Func.t) : int -> bool =
    match plan with
    | None ->
      (* no plan: no barrier knowledge, keep exact walker semantics by
         always calling the hook (the plain interpreter's is a no-op) *)
      fun _ -> true
    | Some _ -> (
      match Hashtbl.find_opt barriers f.Func.name with
      | Some bucket -> (
        match List.find_opt (fun (g, _) -> g == f) bucket with
        | Some (_, set) -> fun id -> Hashtbl.mem set id
        | None -> fun _ -> true)
      | None -> fun _ -> true)
  in
  let codes = Hashtbl.create 64 in
  let add (f : Func.t) =
    let bucket =
      match Hashtbl.find_opt codes f.Func.name with Some l -> l | None -> []
    in
    if not (List.exists (fun (g, _) -> g == f) bucket) then
      match lower_func ex (pre_for f) f with
      | code -> Hashtbl.replace codes f.Func.name ((f, code) :: bucket)
      | exception Unsupported -> () (* falls back to the walker *)
  in
  Pmodule.iter_funcs ex.Exec.m add;
  List.iter add !chunk_funcs;
  { codes; img_sites }

let find_code t (f : Func.t) : code option =
  match Hashtbl.find_opt t.codes f.Func.name with
  | Some [ (g, c) ] when g == f -> Some c
  | Some bucket -> (
    match List.find_opt (fun (g, _) -> g == f) bucket with
    | Some (_, c) -> Some c
    | None -> None)
  | None -> None

let covers t f = find_code t f <> None

let func_count t =
  Hashtbl.fold (fun _ bucket n -> n + List.length bucket) t.codes 0

(* ------------------------------------------------------------------ *)
(* the engine: an index-resolved hot loop over one code *)

let[@inline] eval (ex : Exec.t) (regs : Rvalue.t array) (o : operand) :
    Rvalue.t =
  match o with
  | OReg r -> regs.(r)
  | OConst v -> v
  | OStr s -> Rvalue.Ptr (Heap.intern_string ex.Exec.heap s)
  | OFunc f -> Rvalue.Ptr (Exec.func_addr ex f)
  | OGlobal g -> raise (Exec.Trap (Printf.sprintf "unknown global @%s" g))

let[@inline] set_reg (regs : Rvalue.t array) id v =
  if id >= 0 && id < Array.length regs then regs.(id) <- v

let eval_args ex regs (ops : operand array) : Rvalue.t array =
  let n = Array.length ops in
  if n = 0 then [||]
  else begin
    let out = Array.make n Rvalue.Unit in
    for k = 0 to n - 1 do
      out.(k) <- eval ex regs ops.(k)
    done;
    out
  end

let exec_ins (ex : Exec.t) (regs : Rvalue.t array) (l : lins) =
  ex.Exec.steps <- ex.Exec.steps + 1;
  if ex.Exec.steps > ex.Exec.fuel then raise (Exec.Trap "fuel exhausted");
  if l.l_pre then ex.Exec.hooks.Exec.h_pre_instr ex l.l_instr;
  (* fused Machine.instr_cost 1 + Exec.charge: for n = 1 the cost is
     exactly [cycles_per_instr] (1.0 *. c = c), so the clock stays
     bit-identical to the walker's *)
  let mch = ex.Exec.machine in
  let ctr = mch.Sgx.Machine.c in
  ctr.Sgx.Machine.instrs <- ctr.Sgx.Machine.instrs + 1;
  let ck = ex.Exec.clock in
  ck.Vclock.cycles <-
    ck.Vclock.cycles +. mch.Sgx.Machine.cost.Sgx.Cost.cycles_per_instr;
  match l.l_op with
  | LBinop (op, a, b) ->
    set_reg regs l.l_dst (Exec.exec_binop op (eval ex regs a) (eval ex regs b))
  | LIcmp (op, a, b) ->
    set_reg regs l.l_dst (Exec.exec_icmp op (eval ex regs a) (eval ex regs b))
  | LFcmp (op, a, b) ->
    set_reg regs l.l_dst (Exec.exec_fcmp op (eval ex regs a) (eval ex regs b))
  | LCast (op, v, ty) ->
    set_reg regs l.l_dst (Exec.exec_cast op (eval ex regs v) ty)
  | LLoad (p, ty) ->
    let addr = Rvalue.to_addr (eval ex regs p) in
    set_reg regs l.l_dst (Exec.do_load ex addr ty)
  | LStore (v, p, ty) ->
    let addr = Rvalue.to_addr (eval ex regs p) in
    Exec.do_store ex addr ty (eval ex regs v)
  | LGep (base, steps) ->
    (* side-effect order per field step matches Exec.exec_gep exactly:
       the indirection load (and MAC check, which may fault) happens in
       Layout.field_address BEFORE the walker charges the slot access *)
    let addr = ref (Rvalue.to_addr (eval ex regs base)) in
    for k = 0 to Array.length steps - 1 do
      match Array.unsafe_get steps k with
      | LFInline off -> addr := !addr + off
      | LFIndirect off ->
        let slot = !addr + off in
        let ptr = Int64.to_int (Heap.load ex.Exec.heap slot 8) in
        Exec.charge_mem ex slot 8;
        addr := ptr
      | LFIndirectAuth off ->
        let slot = !addr + off in
        let ptr = Int64.to_int (Heap.load ex.Exec.heap slot 8) in
        let tag = Heap.load ex.Exec.heap (slot + 8) 8 in
        if not (Int64.equal tag (Layout.mac ptr)) then
          raise (Heap.Fault (slot, "pointer authentication failure"));
        Exec.charge_mem ex slot 16;
        Exec.charge ex ex.Exec.machine.Sgx.Machine.cost.Sgx.Cost.auth_check;
        addr := ptr
      | LIndex (o, scale) ->
        addr := !addr + (Rvalue.to_int (eval ex regs o) * scale)
    done;
    set_reg regs l.l_dst (Rvalue.Ptr !addr)
  | LSelect (c, a, b) ->
    set_reg regs l.l_dst
      (if Rvalue.truthy (eval ex regs c) then eval ex regs a
       else eval ex regs b)
  | LAlloca ty ->
    let zone = ex.Exec.hooks.Exec.h_alloca_zone ex ty in
    let addr = Layout.alloc_stack ex.Exec.layout ex.Exec.heap zone ty in
    set_reg regs l.l_dst (Rvalue.Ptr addr)
  | LCall (callee, ops) ->
    let argv = eval_args ex regs ops in
    let r = ex.Exec.hooks.Exec.h_call ex l.l_instr callee argv in
    if l.l_dst >= 0 then set_reg regs l.l_dst r
  | LCallind (fv, ops) ->
    let argv = eval_args ex regs ops in
    let f = eval ex regs fv in
    let r = ex.Exec.hooks.Exec.h_callind ex l.l_instr f argv in
    if l.l_dst >= 0 then set_reg regs l.l_dst r
  | LSpawn (callee, ops) ->
    let argv = eval_args ex regs ops in
    ex.Exec.hooks.Exec.h_spawn ex l.l_instr callee argv
  | LBad msg -> raise (Exec.Trap msg)

let phi_trap (code : code) (b : lblock) (pred : string) =
  raise
    (Exec.Trap
       (Printf.sprintf "phi in %%%s of @%s has no entry for predecessor %%%s"
          b.lb_label code.c_func.Func.name pred))

let run_code (ex : Exec.t) (code : code) (args : Rvalue.t array) : Rvalue.t =
  let regs = Array.make (max 1 code.c_nregs) Rvalue.zero in
  let nargs = min (Array.length args) (Array.length regs) in
  Array.blit args 0 regs 0 nargs;
  let scratch =
    if code.c_maxphi = 0 then [||] else Array.make code.c_maxphi Rvalue.zero
  in
  let blocks = code.c_blocks in
  let rec go (bi : int) (pos : int) : Rvalue.t =
    let b = Array.unsafe_get blocks bi in
    let phis = b.lb_phis in
    let np = Array.length phis in
    if np > 0 then begin
      (* parallel phi semantics: read all inputs, then assign *)
      for k = 0 to np - 1 do
        let ph = Array.unsafe_get phis k in
        let v =
          if pos < 0 then phi_trap code b "<entry>"
          else
            match Array.unsafe_get ph.ph_srcs pos with
            | Some o -> eval ex regs o
            | None -> phi_trap code b b.lb_preds.(pos)
        in
        scratch.(k) <- v
      done;
      for k = 0 to np - 1 do
        set_reg regs (Array.unsafe_get phis k).ph_dst scratch.(k)
      done
    end;
    let ins = b.lb_ins in
    for k = 0 to Array.length ins - 1 do
      exec_ins ex regs (Array.unsafe_get ins k)
    done;
    match b.lb_term with
    | LBr e -> go e.e_target e.e_pos
    | LCondbr (c, e1, e2) ->
      if Rvalue.truthy (eval ex regs c) then go e1.e_target e1.e_pos
      else go e2.e_target e2.e_pos
    | LRet_void -> Rvalue.Unit
    | LRet o -> eval ex regs o
    | LUnreachable -> raise (Exec.Trap "unreachable executed")
  in
  go 0 (-1)

(* ------------------------------------------------------------------ *)

let install (ex : Exec.t) (t : t) =
  ex.Exec.run_func <-
    Some
      (fun ex f args ->
        match find_code t f with
        | Some code -> run_code ex code args
        | None -> Exec.exec_func_body ex f args)
